package crawler

import (
	"errors"
	"math/rand/v2"
	"net/netip"
	"sync"
	"time"

	"repro/internal/addridx"
	"repro/internal/netgen"
	"repro/internal/wire"
)

// This file provides the population-simulation backend: the crawler runs
// against a netgen.Universe snapshot, which is fast enough to reproduce
// the paper's full 60-day, ~700K-address study offline.

// UniverseView is a Dialer and Prober over one instant of a synthetic
// universe. Create a fresh view per experiment: the candidate pools are
// frozen at construction, matching the paper's per-experiment snapshots.
//
// All dial randomness is a pure function of (universe seed, frozen
// instant, dense StationID) — see netgen.StationRand — so the view is
// safe for concurrent dials and the outcome of dialing a station is
// independent of dial order and worker count.
type UniverseView struct {
	u       *netgen.Universe
	at      time.Time
	online  []*netgen.Station
	visible []*netgen.Station
}

var (
	_ Dialer = (*UniverseView)(nil)
	_ Prober = (*UniverseView)(nil)
)

// NewUniverseView freezes the universe at t.
func NewUniverseView(u *netgen.Universe, t time.Time) *UniverseView {
	return &UniverseView{
		u:       u,
		at:      t,
		online:  u.OnlineReachable(t),
		visible: u.VisibleUnreachable(t),
	}
}

// At returns the frozen instant.
func (v *UniverseView) At() time.Time { return v.at }

// OnlineCount returns the number of online reachable stations.
func (v *UniverseView) OnlineCount() int { return len(v.online) }

// VisibleCount returns the number of gossip-visible unreachable
// addresses.
func (v *UniverseView) VisibleCount() int { return len(v.visible) }

// Universe returns the backing universe.
func (v *UniverseView) Universe() *netgen.Universe { return v.u }

// popSessPool recycles sessions — and, through them, the book and ID
// buffers they carry — across dials. A session returns to the pool on
// Close; the borrowed-buffer contract on Session.GetAddr (responses are
// invalid after Close) is what makes that sound.
var popSessPool = sync.Pool{
	New: func() any {
		s := &popSession{}
		s.rnd = rand.New(&s.pcg)
		return s
	},
}

// Dial implements Dialer: the target must be a reachable station that is
// online at the frozen instant, and even then dials fail with probability
// 1−ConnectSuccessRate (stale listings, full inbound slots). Failures
// return shared sentinel errors: a popsim crawl sees thousands of failed
// dials per experiment, and per-failure error wrapping was measurable
// crawl-path garbage.
func (v *UniverseView) Dial(addr netip.AddrPort) (Session, error) {
	st := v.u.ByAddr(addr)
	if st == nil {
		return nil, errDialTimeout
	}
	if st.Class != netgen.ClassReachable {
		return nil, errDialRefused
	}
	if !st.OnlineAt(v.at) {
		return nil, errDialTimeout
	}
	s := popSessPool.Get().(*popSession)
	s.pcg.Seed(netgen.StationSeed(v.u.Params.Seed, v.at, st.ID))
	if s.rnd.Float64() >= v.u.Params.ConnectSuccessRate {
		popSessPool.Put(s)
		return nil, errDialRefused
	}
	s.remote = addr
	s.cursor = 0
	s.closed = false
	if s.ids == nil {
		s.ids = make([]addridx.ID, 0, 64)
	}
	s.book, s.ids = v.u.CachedAddrBook(s.book[:0], s.ids[:0], st, v.at, v.online, v.visible)
	return s, nil
}

// Probe implements Prober using the station classes.
func (v *UniverseView) Probe(addr netip.AddrPort) (ProbeOutcome, error) {
	st := v.u.ByAddr(addr)
	if st == nil {
		return ProbeSilent, nil
	}
	switch st.Class {
	case netgen.ClassReachable:
		if st.OnlineAt(v.at) {
			return ProbeReachable, nil
		}
		return ProbeSilent, nil
	case netgen.ClassResponsive:
		if st.VisibleAt(v.at) {
			return ProbeResponsive, nil
		}
		return ProbeSilent, nil
	default:
		return ProbeSilent, nil
	}
}

// Dial failure sentinels (internal; callers only need the error).
var (
	errDialTimeout = errors.New("dial timeout")
	errDialRefused = errors.New("connection refused")
	errSessClosed  = errors.New("popsim: session closed")
)

// popSession pages through a station's address book. Bitcoin Core
// answers each GETADDR with a random min(23%, 1000) sample; Algorithm 1
// keeps re-asking until a response adds nothing new. Serving the book as
// a shuffled sequence of pages (then a repeat page) preserves those
// termination semantics while keeping each crawl linear in the book size
// — the with-replacement original needs Θ(n log n) transfers per node,
// which matters at the study's 8,270-nodes × 60-experiments scale.
//
// The session embeds its PCG so dialing reseeds in place, and the book
// carries a parallel dense-ID slice (ids[i] is book[i]'s StationID) that
// backs the GetAddrIDs fast path.
type popSession struct {
	remote netip.AddrPort
	book   []wire.NetAddress
	ids    []addridx.ID
	cursor int
	pcg    rand.PCG
	rnd    *rand.Rand
	closed bool
}

var (
	_ Session        = (*popSession)(nil)
	_ SessionWithIDs = (*popSession)(nil)
)

// Remote implements Session.
func (s *popSession) Remote() netip.AddrPort { return s.remote }

// GetAddr implements Session.
func (s *popSession) GetAddr() ([]wire.NetAddress, error) {
	addrs, _, err := s.page()
	return addrs, err
}

// GetAddrIDs implements SessionWithIDs: popsim books are sampled from an
// interned universe, so every entry's dense ID is known at sampling time.
func (s *popSession) GetAddrIDs() ([]wire.NetAddress, []addridx.ID, error) {
	return s.page()
}

// page serves the next GETADDR response: a book slice and the parallel
// ID slice, both borrowed until the next call or Close.
func (s *popSession) page() ([]wire.NetAddress, []addridx.ID, error) {
	if s.closed {
		return nil, nil, errSessClosed
	}
	if s.cursor == 0 {
		// Inline Fisher–Yates, drawing exactly like rand.Shuffle (IntN of
		// i+1, descending): the closure-free loop keeps the swap of the
		// 64-byte entries and their parallel IDs out of a callback.
		for i := len(s.book) - 1; i > 0; i-- {
			j := s.rnd.IntN(i + 1)
			s.book[i], s.book[j] = s.book[j], s.book[i]
			s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
		}
	}
	page := len(s.book) * 23 / 100
	if page > wire.MaxAddrPerMsg {
		page = wire.MaxAddrPerMsg
	}
	if page < 1 {
		page = len(s.book)
	}
	if s.cursor >= len(s.book) {
		// Tables drained: repeat already-served addresses, which is what
		// terminates Algorithm 1.
		n := min(page, len(s.book))
		return s.book[:n], s.ids[:n], nil
	}
	end := s.cursor + page
	if end > len(s.book) {
		end = len(s.book)
	}
	addrs, ids := s.book[s.cursor:end], s.ids[s.cursor:end]
	s.cursor = end
	return addrs, ids, nil
}

// Close implements Session and recycles the session. Closing invalidates
// every slice previous GetAddr calls returned.
func (s *popSession) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	popSessPool.Put(s)
	return nil
}

// ReachableReference builds the known-reachable reference set the paper
// uses (the union of the seed databases), from a seed view.
func ReachableReference(view *netgen.SeedView) map[netip.AddrPort]struct{} {
	out := make(map[netip.AddrPort]struct{},
		len(view.Bitnodes)+len(view.DNS))
	for _, s := range view.Bitnodes {
		out[s.Addr] = struct{}{}
	}
	for _, s := range view.DNS {
		out[s.Addr] = struct{}{}
	}
	return out
}

// TargetsOf extracts dialable target addresses from a seed view.
func TargetsOf(view *netgen.SeedView) []netip.AddrPort {
	out := make([]netip.AddrPort, len(view.Dialable))
	for i, s := range view.Dialable {
		out[i] = s.Addr
	}
	return out
}
