package crawler

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"repro/internal/netgen"
	"repro/internal/wire"
)

// This file provides the population-simulation backend: the crawler runs
// against a netgen.Universe snapshot, which is fast enough to reproduce
// the paper's full 60-day, ~700K-address study offline.

// UniverseView is a Dialer and Prober over one instant of a synthetic
// universe. Create a fresh view per experiment: the candidate pools are
// frozen at construction, matching the paper's per-experiment snapshots.
//
// All dial randomness is a pure function of (universe seed, frozen
// instant, dense StationID) — see netgen.StationRand — so the view is
// safe for concurrent dials and the outcome of dialing a station is
// independent of dial order and worker count.
type UniverseView struct {
	u       *netgen.Universe
	at      time.Time
	online  []*netgen.Station
	visible []*netgen.Station
}

var (
	_ Dialer = (*UniverseView)(nil)
	_ Prober = (*UniverseView)(nil)
)

// NewUniverseView freezes the universe at t.
func NewUniverseView(u *netgen.Universe, t time.Time) *UniverseView {
	return &UniverseView{
		u:       u,
		at:      t,
		online:  u.OnlineReachable(t),
		visible: u.VisibleUnreachable(t),
	}
}

// At returns the frozen instant.
func (v *UniverseView) At() time.Time { return v.at }

// OnlineCount returns the number of online reachable stations.
func (v *UniverseView) OnlineCount() int { return len(v.online) }

// VisibleCount returns the number of gossip-visible unreachable
// addresses.
func (v *UniverseView) VisibleCount() int { return len(v.visible) }

// Universe returns the backing universe.
func (v *UniverseView) Universe() *netgen.Universe { return v.u }

// Dial implements Dialer: the target must be a reachable station that is
// online at the frozen instant, and even then dials fail with probability
// 1−ConnectSuccessRate (stale listings, full inbound slots).
func (v *UniverseView) Dial(addr netip.AddrPort) (Session, error) {
	st := v.u.ByAddr(addr)
	if st == nil {
		return nil, fmt.Errorf("popsim: dial %v: %w", addr, errDialTimeout)
	}
	if st.Class != netgen.ClassReachable {
		return nil, fmt.Errorf("popsim: dial %v: %w", addr, errDialRefused)
	}
	if !st.OnlineAt(v.at) {
		return nil, fmt.Errorf("popsim: dial %v: %w", addr, errDialTimeout)
	}
	rng := netgen.StationRand(v.u.Params.Seed, v.at, st.ID)
	if rng.Float64() >= v.u.Params.ConnectSuccessRate {
		return nil, fmt.Errorf("popsim: dial %v: %w", addr, errDialRefused)
	}
	book := v.u.AddrBookFrom(st, v.at, v.online, v.visible)
	return &popSession{
		remote: addr,
		book:   book,
		rng:    rng,
	}, nil
}

// Probe implements Prober using the station classes.
func (v *UniverseView) Probe(addr netip.AddrPort) (ProbeOutcome, error) {
	st := v.u.ByAddr(addr)
	if st == nil {
		return ProbeSilent, nil
	}
	switch st.Class {
	case netgen.ClassReachable:
		if st.OnlineAt(v.at) {
			return ProbeReachable, nil
		}
		return ProbeSilent, nil
	case netgen.ClassResponsive:
		if st.VisibleAt(v.at) {
			return ProbeResponsive, nil
		}
		return ProbeSilent, nil
	default:
		return ProbeSilent, nil
	}
}

// Dial failure sentinels (internal; callers only need the error).
var (
	errDialTimeout = fmt.Errorf("dial timeout")
	errDialRefused = fmt.Errorf("connection refused")
)

// popSession pages through a station's address book. Bitcoin Core
// answers each GETADDR with a random min(23%, 1000) sample; Algorithm 1
// keeps re-asking until a response adds nothing new. Serving the book as
// a shuffled sequence of pages (then a repeat page) preserves those
// termination semantics while keeping each crawl linear in the book size
// — the with-replacement original needs Θ(n log n) transfers per node,
// which matters at the study's 8,270-nodes × 60-experiments scale.
type popSession struct {
	remote netip.AddrPort
	book   []wire.NetAddress
	cursor int
	rng    *rand.Rand
	closed bool
}

var _ Session = (*popSession)(nil)

// Remote implements Session.
func (s *popSession) Remote() netip.AddrPort { return s.remote }

// GetAddr implements Session.
func (s *popSession) GetAddr() ([]wire.NetAddress, error) {
	if s.closed {
		return nil, fmt.Errorf("popsim: session to %v closed", s.remote)
	}
	if s.cursor == 0 {
		s.rng.Shuffle(len(s.book), func(i, j int) {
			s.book[i], s.book[j] = s.book[j], s.book[i]
		})
	}
	page := len(s.book) * 23 / 100
	if page > wire.MaxAddrPerMsg {
		page = wire.MaxAddrPerMsg
	}
	if page < 1 {
		page = len(s.book)
	}
	if s.cursor >= len(s.book) {
		// Tables drained: repeat already-served addresses, which is what
		// terminates Algorithm 1.
		return s.book[:min(page, len(s.book))], nil
	}
	end := s.cursor + page
	if end > len(s.book) {
		end = len(s.book)
	}
	out := s.book[s.cursor:end]
	s.cursor = end
	return out, nil
}

// Close implements Session.
func (s *popSession) Close() error {
	s.closed = true
	return nil
}

// ReachableReference builds the known-reachable reference set the paper
// uses (the union of the seed databases), from a seed view.
func ReachableReference(view *netgen.SeedView) map[netip.AddrPort]struct{} {
	out := make(map[netip.AddrPort]struct{},
		len(view.Bitnodes)+len(view.DNS))
	for _, s := range view.Bitnodes {
		out[s.Addr] = struct{}{}
	}
	for _, s := range view.DNS {
		out[s.Addr] = struct{}{}
	}
	return out
}

// TargetsOf extracts dialable target addresses from a seed view.
func TargetsOf(view *netgen.SeedView) []netip.AddrPort {
	out := make([]netip.AddrPort, len(view.Dialable))
	for i, s := range view.Dialable {
		out[i] = s.Addr
	}
	return out
}
