// Package crawler implements the paper's measurement apparatus (§III,
// Figure 2): the address crawler that bootstraps from the Bitnodes and
// DNS-seeder databases, the network crawler that drains each reachable
// node's address tables through iterative GETADDR exchanges
// (Algorithm 1), and the scanner that classifies unreachable addresses as
// responsive or silent by probing them with a VER message (Algorithm 2).
//
// The crawler is generic over a Dialer/Prober pair. Three backends exist:
// the popsim backend over a netgen.Universe (snapshot-level, fast enough
// for 60-day × 700K-address reproductions), the simnet backend (live
// in-process nodes), and the tcpnet backend (real sockets speaking the
// real wire protocol).
//
// Both the crawl and the scan fan their per-target loops out through
// internal/par and merge results in target order, so output is
// byte-identical at any worker count. When Config.Index interns the
// address universe (the popsim backend always does), every membership
// set on the hot path is a dense addridx bitset; map sets survive only
// at the API boundary and as an overlay for uninterned addresses.
package crawler

import (
	"context"
	"errors"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addridx"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/wire"
)

// Session is an established connection to a reachable node, able to
// perform repeated GETADDR→ADDR exchanges.
type Session interface {
	// Remote returns the peer's address.
	Remote() netip.AddrPort
	// GetAddr performs one GETADDR→ADDR exchange and returns the
	// received addresses. The returned slice may be the session's reused
	// decode buffer: it is valid only until the next GetAddr or Close
	// call, and callers that retain addresses across calls must copy
	// what they keep (drainNode consumes each page before the next).
	GetAddr() ([]wire.NetAddress, error)
	// Close releases the session.
	Close() error
}

// SessionWithIDs is an optional Session extension for backends whose
// address space is interned in the same addridx.Index the crawler was
// configured with: GetAddrIDs returns the page's dense StationIDs
// alongside the addresses (None for out-of-index entries), saving the
// crawler one index hash lookup per received address — the single
// hottest operation of a popsim crawl. Both slices follow GetAddr's
// borrowed-buffer contract. The crawler uses this path only when
// Config.Index is set; a backend must implement it only if the IDs it
// returns are dense in that same index.
type SessionWithIDs interface {
	GetAddrIDs() ([]wire.NetAddress, []addridx.ID, error)
}

// Dialer opens crawl sessions. Dial must be safe for concurrent use:
// the crawl fans targets out across workers.
type Dialer interface {
	// Dial connects to a reachable address; it returns an error when the
	// node is gone, refuses, or times out.
	Dial(addr netip.AddrPort) (Session, error)
}

// ProbeOutcome classifies a scanner probe (Algorithm 2).
type ProbeOutcome int

// Probe outcomes.
const (
	// ProbeSilent targets never answered.
	ProbeSilent ProbeOutcome = iota + 1
	// ProbeResponsive targets answered the VER probe by closing the
	// connection: an unreachable node running Bitcoin.
	ProbeResponsive
	// ProbeReachable targets accepted the connection outright.
	ProbeReachable
)

// String returns the outcome name.
func (o ProbeOutcome) String() string {
	switch o {
	case ProbeSilent:
		return "silent"
	case ProbeResponsive:
		return "responsive"
	case ProbeReachable:
		return "reachable"
	default:
		return "unknown"
	}
}

// Prober sends the scanner's VER probe. Probe must be safe for
// concurrent use: the scan fans targets out across workers.
type Prober interface {
	// Probe classifies the endpoint at addr.
	Probe(addr netip.AddrPort) (ProbeOutcome, error)
}

// Exchange is one observed GETADDR→ADDR exchange: Source answered the
// Round-th GETADDR of its drain with Addrs. Observers receive exchanges
// exactly as the session returned them — duplicates, self-references
// and all — so downstream estimators choose their own filtering.
type Exchange struct {
	// At is the crawl's nominal time.
	At time.Time
	// Source is the crawled node that answered.
	Source netip.AddrPort
	// SourceID is Source's dense station ID, or addridx.None when the
	// crawler has no Index (or the address is outside it).
	SourceID addridx.ID
	// Round is the zero-based GETADDR round within Source's drain.
	Round int
	// Addrs is the raw ADDR response. The slice is owned by the
	// observer; the crawler does not reuse it.
	Addrs []wire.NetAddress
}

// Observer receives crawl exchanges. Deliveries happen on the merge
// goroutine in target order (and round order within a target), so an
// observer needs no locking and sees a byte-identical stream at any
// worker count. Attaching an observer does not perturb the snapshot.
type Observer func(Exchange)

// Config bounds crawler behaviour.
type Config struct {
	// MaxGetAddrRounds caps the Algorithm 1 repeat loop per node
	// (default 50).
	MaxGetAddrRounds int
	// MaxNodes caps how many reachable nodes are crawled (0 = no cap).
	// The cap is defined by dial order, so a non-zero value pins the
	// crawl to one worker.
	MaxNodes int
	// Workers is the crawl fan-out width; zero or negative means
	// GOMAXPROCS. Results are merged in target order and are
	// byte-identical at any width.
	Workers int
	// Index, when set, interns the address universe: membership sets on
	// the drain/dedup hot path become dense addridx bitsets instead of
	// address-keyed maps, and snapshots carry parallel StationID slices.
	// The popsim backend always provides it; backends whose address
	// space is open (simnet, tcpnet) may leave it nil and get the map
	// fallback.
	Index *addridx.Index
	// Metrics, when set, receives the crawl reachability series
	// (crawl.* counters: dials, connections, GETADDR rounds, address
	// composition; crawl.workers / crawl.targets.pending gauges for
	// live progress). Nil disables instrumentation.
	Metrics *obs.Registry
	// Observer, when set, receives every GETADDR→ADDR exchange in
	// deterministic target order (see Observer). Nil disables capture —
	// and its buffering cost — entirely.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.MaxGetAddrRounds == 0 {
		c.MaxGetAddrRounds = 50
	}
	return c
}

// NodeReport is the per-reachable-node crawl record.
type NodeReport struct {
	// Addr is the crawled node.
	Addr netip.AddrPort
	// Connected reports whether the dial succeeded.
	Connected bool
	// Rounds is the number of GETADDR exchanges performed.
	Rounds int
	// TotalSent counts all addresses received from the node (with
	// repetition across rounds deduplicated).
	TotalSent int
	// ReachableSent and UnreachableSent split TotalSent against the
	// known-reachable reference set.
	ReachableSent   int
	UnreachableSent int
	// SentOwnAddr reports whether the node advertised itself — honest
	// nodes always do; its absence is the §IV-B malice heuristic.
	SentOwnAddr bool
	// CloseErr records a session-teardown failure after a successful
	// drain. The drained data is kept: a failed FIN must not discard an
	// experiment.
	CloseErr string
}

// Snapshot is the outcome of one crawl experiment.
type Snapshot struct {
	// Time is the experiment's nominal time.
	Time time.Time
	// Dialed is the number of dial attempts.
	Dialed int
	// Connected lists nodes that accepted and completed the crawl, in
	// target order.
	Connected []netip.AddrPort
	// ConnectedIDs holds dense station IDs parallel to Connected. It is
	// nil when the crawler has no Index; entries are addridx.None for
	// addresses outside the index.
	ConnectedIDs []addridx.ID
	// Reports holds the per-node records, keyed by address.
	Reports map[netip.AddrPort]*NodeReport
	// Unreachable is the deduplicated list of collected addresses that
	// are not in the known-reachable reference set (the paper's N_u),
	// in deterministic first-seen order: targets in crawl order,
	// addresses in receipt order within a target.
	Unreachable []netip.AddrPort
	// UnreachableIDs holds dense station IDs parallel to Unreachable,
	// under the same convention as ConnectedIDs.
	UnreachableIDs []addridx.ID
}

// Crawler drives crawl experiments over a backend.
type Crawler struct {
	cfg    Config
	dialer Dialer

	// Metric handles, nil-safe no-ops when Config.Metrics is nil.
	mDials        *obs.Counter
	mConnected    *obs.Counter
	mRounds       *obs.Counter
	mAddrsTotal   *obs.Counter
	mAddrsReach   *obs.Counter
	mAddrsUnreach *obs.Counter
	mWorkers      *obs.Gauge
	mPending      *obs.Gauge
}

// New creates a crawler over the given dialer.
func New(cfg Config, dialer Dialer) *Crawler {
	cfg = cfg.withDefaults()
	return &Crawler{
		cfg:    cfg,
		dialer: dialer,

		mDials:        cfg.Metrics.Counter("crawl.dials"),
		mConnected:    cfg.Metrics.Counter("crawl.connected"),
		mRounds:       cfg.Metrics.Counter("crawl.getaddr.rounds"),
		mAddrsTotal:   cfg.Metrics.Counter("crawl.addrs.total"),
		mAddrsReach:   cfg.Metrics.Counter("crawl.addrs.reachable"),
		mAddrsUnreach: cfg.Metrics.Counter("crawl.addrs.unreachable"),
		mWorkers:      cfg.Metrics.Gauge("crawl.workers"),
		mPending:      cfg.Metrics.Gauge("crawl.targets.pending"),
	}
}

// knownView is the read-only membership view of the known-reachable
// reference set, resolved once per crawl: interned addresses collapse
// into a dense bitset probe, the rest stay behind the API-boundary map.
type knownView struct {
	bits *addridx.Set
	rest map[netip.AddrPort]struct{}
}

func newKnownView(idx *addridx.Index, known map[netip.AddrPort]struct{}) *knownView {
	v := &knownView{}
	if idx == nil {
		v.rest = known
		return v
	}
	v.bits = addridx.NewSet(idx.Len())
	for a := range known {
		if id, ok := idx.Lookup(a); ok {
			v.bits.Add(id)
		} else {
			if v.rest == nil {
				v.rest = make(map[netip.AddrPort]struct{})
			}
			v.rest[a] = struct{}{}
		}
	}
	return v
}

func (v *knownView) contains(addr netip.AddrPort, id addridx.ID) bool {
	if id != addridx.None && v.bits != nil {
		return v.bits.Contains(id)
	}
	_, ok := v.rest[addr]
	return ok
}

// memberSet is a mutable membership set over addresses: an
// epoch-versioned dense array for interned addresses, a map overlay for
// the rest (always empty under popsim, where the whole universe is
// interned). Epoch versioning makes clear O(1) — the per-target "seen"
// set is cleared once per crawled node, and a full memset of an
// index-sized bitset per node was a measurable slice of crawl CPU.
type memberSet struct {
	idx    *addridx.Index
	epochs []uint32 // epochs[id] == epoch ⇔ id is a member
	epoch  uint32
	rest   map[netip.AddrPort]struct{}
}

func newMemberSet(idx *addridx.Index) *memberSet {
	m := &memberSet{epoch: 1}
	m.idx = idx
	if idx != nil {
		m.epochs = make([]uint32, idx.Len())
	}
	return m
}

// resolve returns addr's dense ID, or addridx.None.
func (m *memberSet) resolve(addr netip.AddrPort) addridx.ID {
	if m.idx == nil {
		return addridx.None
	}
	id, ok := m.idx.Lookup(addr)
	if !ok {
		return addridx.None
	}
	return id
}

// add inserts addr (with its pre-resolved id) and reports whether it
// was newly added.
func (m *memberSet) add(addr netip.AddrPort, id addridx.ID) bool {
	if id != addridx.None {
		if m.epochs[id] == m.epoch {
			return false
		}
		m.epochs[id] = m.epoch
		return true
	}
	if m.rest == nil {
		m.rest = make(map[netip.AddrPort]struct{})
	}
	if _, dup := m.rest[addr]; dup {
		return false
	}
	m.rest[addr] = struct{}{}
	return true
}

func (m *memberSet) clear() {
	m.epoch++
	if m.epoch == 0 {
		// Epoch wrapped: pay the one-in-four-billion full reset.
		clear(m.epochs)
		m.epoch = 1
	}
	clear(m.rest)
}

// crawlJob is one target's private crawl outcome, handed from its
// worker to the in-order merge loop — the Runner pattern: workers write
// only their own slot, the merge loop alone touches the snapshot, so
// output is byte-identical at any worker count and memory for merged
// slots is released while later targets are still crawling.
type crawlJob struct {
	report         *NodeReport // nil when the target was skipped (MaxNodes)
	unreachable    []netip.AddrPort // exact-size, nil when none
	unreachableIDs []addridx.ID     // parallel to unreachable
	exchanges      []Exchange       // captured only when Config.Observer != nil
}

// drainBufs is an unreachable-accumulation arena: drainNode appends one
// target's entries, and the job keeps a capped three-index view of its
// own range instead of a copy. The arena is never truncated while a
// crawl runs — later appends either land past every view or move to a
// fresh backing array, leaving old views intact either way — so each
// worker pays amortized-nothing per target. The Get/Put pair lives
// entirely inside the worker body: recycling must not depend on the
// merge goroutine keeping pace, which on few cores it does not.
type drainBufs struct {
	addrs []netip.AddrPort
	ids   []addridx.ID
}

// drainBufsPool recycles arenas across crawls. Arenas enter it only
// from Crawl's success path, truncated, after the snapshot is built and
// every job view into them is dead.
var drainBufsPool sync.Pool

// Crawl runs Algorithm 1 against every address in targets: connect, issue
// GETADDR until a response adds nothing new, classify each collected
// address against knownReachable, and accumulate the unreachable set.
// Targets are crawled concurrently on Config.Workers workers and merged
// in target order; ctx cancellation aborts mid-crawl with ctx.Err().
func (c *Crawler) Crawl(ctx context.Context, at time.Time, targets []netip.AddrPort,
	knownReachable map[netip.AddrPort]struct{}) (*Snapshot, error) {
	if len(targets) == 0 {
		return nil, errors.New("crawler: no targets")
	}
	workers := par.Workers(c.cfg.Workers)
	if c.cfg.MaxNodes > 0 {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	c.mWorkers.Set(int64(workers))
	c.mPending.Set(int64(len(targets)))

	known := newKnownView(c.cfg.Index, knownReachable)
	jobs := make([]crawlJob, len(targets))
	// Completion is a flag per job plus one shared wake-up token, not a
	// channel per job: after every flag store a token is pending (the
	// one-slot send either succeeds or finds one already there), and the
	// merge loop re-checks its flag after every token, so no wake-up is
	// ever lost.
	jobDone := make([]atomic.Bool, len(targets))
	notify := make(chan struct{}, 1)
	scratch := sync.Pool{New: func() any { return newMemberSet(c.cfg.Index) }}
	var bufPool sync.Pool // *drainBufs, recycled by the merge loop
	var connected atomic.Int64 // MaxNodes accounting; workers == 1 then

	forEachErr := make(chan error, 1)
	go func() {
		forEachErr <- par.ForEach(ctx, workers, len(targets), func(ctx context.Context, i int) error {
			defer func() {
				jobDone[i].Store(true)
				select {
				case notify <- struct{}{}:
				default:
				}
			}()
			if c.cfg.MaxNodes > 0 && int(connected.Load()) >= c.cfg.MaxNodes {
				return nil // skipped: report stays nil
			}
			seen := scratch.Get().(*memberSet)
			bufs, _ := bufPool.Get().(*drainBufs)
			if bufs == nil {
				if bufs, _ = drainBufsPool.Get().(*drainBufs); bufs == nil {
					bufs = &drainBufs{}
				}
			}
			c.crawlTarget(targets[i], known, seen, &jobs[i], bufs)
			seen.clear()
			scratch.Put(seen)
			bufPool.Put(bufs)
			if jobs[i].report.Connected {
				connected.Add(1)
			}
			c.mPending.Add(-1)
			return nil
		})
	}()

	// Merge, phase one: fold per-target reports into the snapshot in
	// target order as they complete. Jobs skipped after a cancellation
	// never flag done, so the merge also watches ctx. The per-job
	// unreachable slices are left in place for phase two, which sizes the
	// aggregate exactly.
	snap := &Snapshot{
		Time:    at,
		Reports: make(map[netip.AddrPort]*NodeReport, len(targets)),
	}
	global := newMemberSet(c.cfg.Index)
	mergeErr := func() error {
		for i := range jobs {
			for !jobDone[i].Load() {
				select {
				case <-notify:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			rep := jobs[i].report
			if rep == nil {
				continue
			}
			snap.Dialed++
			snap.Reports[rep.Addr] = rep
			if !rep.Connected {
				continue
			}
			if snap.Connected == nil {
				// Connected is bounded by the target count: reserve it
				// whole rather than paying append's growth churn.
				snap.Connected = make([]netip.AddrPort, 0, len(targets))
			}
			snap.Connected = append(snap.Connected, rep.Addr)
			if c.cfg.Index != nil {
				if snap.ConnectedIDs == nil {
					snap.ConnectedIDs = make([]addridx.ID, 0, len(targets))
				}
				snap.ConnectedIDs = append(snap.ConnectedIDs, global.resolve(rep.Addr))
			}
			if c.cfg.Observer != nil {
				// Deliver from the merge goroutine, never from workers:
				// the observer stream inherits the merge order and needs
				// no synchronization of its own.
				srcID := global.resolve(rep.Addr)
				for _, ex := range jobs[i].exchanges {
					ex.At = at
					ex.SourceID = srcID
					c.cfg.Observer(ex)
				}
				jobs[i].exchanges = nil
			}
		}
		return nil
	}()
	if err := <-forEachErr; err != nil {
		return nil, err
	}
	if mergeErr != nil {
		return nil, mergeErr
	}
	// Merge, phase two: aggregate the unreachable sets. Every job is
	// complete now, so a counting pass sizes the aggregate exactly and the
	// fill pass allocates it once — incremental appending paid for the
	// accumulated set again and again in growth copies. The membership set
	// is cleared between the passes; both replay the identical add
	// sequence, so first-seen order is preserved.
	total := 0
	for i := range jobs {
		for k, a := range jobs[i].unreachable {
			if global.add(a, jobs[i].unreachableIDs[k]) {
				total++
			}
		}
	}
	global.clear()
	if total > 0 {
		snap.Unreachable = make([]netip.AddrPort, 0, total)
		if c.cfg.Index != nil {
			snap.UnreachableIDs = make([]addridx.ID, 0, total)
		}
	}
	for i := range jobs {
		for k, a := range jobs[i].unreachable {
			id := jobs[i].unreachableIDs[k]
			if !global.add(a, id) {
				continue
			}
			snap.Unreachable = append(snap.Unreachable, a)
			if c.cfg.Index != nil {
				snap.UnreachableIDs = append(snap.UnreachableIDs, id)
			}
		}
		jobs[i] = crawlJob{}
	}
	// Every view into the arenas is dead now: truncate them and hand them
	// to the cross-crawl pool so the next crawl starts at full capacity.
	for {
		bufs, _ := bufPool.Get().(*drainBufs)
		if bufs == nil {
			break
		}
		bufs.addrs = bufs.addrs[:0]
		bufs.ids = bufs.ids[:0]
		drainBufsPool.Put(bufs)
	}
	c.mPending.Set(0)
	return snap, nil
}

// crawlTarget dials one target and drains it into its private job slot,
// accumulating through the worker's reusable bufs.
func (c *Crawler) crawlTarget(target netip.AddrPort, known *knownView,
	seen *memberSet, job *crawlJob, bufs *drainBufs) {
	c.mDials.Inc()
	job.report = &NodeReport{Addr: target}
	sess, err := c.dialer.Dial(target)
	if err != nil {
		return
	}
	job.report.Connected = true
	c.mConnected.Inc()
	lo := len(bufs.addrs)
	c.drainNode(sess, known, seen, bufs, job)
	if hi := len(bufs.addrs); hi > lo {
		// The job's record is a capped view of its arena range: no copy,
		// and no way for later appends to touch it.
		job.unreachable = bufs.addrs[lo:hi:hi]
		job.unreachableIDs = bufs.ids[lo:hi:hi]
	}
	if err := sess.Close(); err != nil {
		// Teardown failed after a successful drain: record it on the
		// report and keep the snapshot.
		job.report.CloseErr = err.Error()
	}
}

// drainNode implements the Algorithm 1 inner loop for one node,
// appending the node's unreachable addresses to bufs.
func (c *Crawler) drainNode(sess Session, known *knownView, seen *memberSet,
	bufs *drainBufs, job *crawlJob) {
	report := job.report
	// Sessions that know their addresses' dense IDs save the per-address
	// index lookup; the IDs are only meaningful against Config.Index.
	var idSess SessionWithIDs
	if c.cfg.Index != nil {
		idSess, _ = sess.(SessionWithIDs)
	}
	for round := 0; round < c.cfg.MaxGetAddrRounds; round++ {
		var addrs []wire.NetAddress
		var ids []addridx.ID
		var err error
		if idSess != nil {
			addrs, ids, err = idSess.GetAddrIDs()
		} else {
			addrs, err = sess.GetAddr()
		}
		if err != nil {
			return
		}
		report.Rounds++
		c.mRounds.Inc()
		if c.cfg.Observer != nil {
			// Copy: the session may reuse its response buffer.
			captured := make([]wire.NetAddress, len(addrs))
			copy(captured, addrs)
			job.exchanges = append(job.exchanges, Exchange{
				Source: report.Addr,
				Round:  round,
				Addrs:  captured,
			})
		}
		fresh := 0
		for k, na := range addrs {
			var id addridx.ID
			if ids != nil {
				id = ids[k]
			} else {
				id = seen.resolve(na.Addr)
			}
			if !seen.add(na.Addr, id) {
				continue
			}
			fresh++
			report.TotalSent++
			c.mAddrsTotal.Inc()
			if na.Addr == report.Addr {
				report.SentOwnAddr = true
			}
			if known.contains(na.Addr, id) {
				report.ReachableSent++
				c.mAddrsReach.Inc()
			} else {
				report.UnreachableSent++
				c.mAddrsUnreach.Inc()
				bufs.addrs = append(bufs.addrs, na.Addr)
				bufs.ids = append(bufs.ids, id)
			}
		}
		// Algorithm 1 termination: a response with no new addresses
		// means the node's tables are drained.
		if fresh == 0 {
			return
		}
	}
}

// ProbeObservation is one scanner probe outcome as seen by a scan
// observer. Failed probes carry Err = true and a zero Outcome.
type ProbeObservation struct {
	// At is the scan's nominal time.
	At time.Time
	// Addr is the probed address.
	Addr netip.AddrPort
	// Outcome is the probe classification (zero when Err).
	Outcome ProbeOutcome
	// Err reports a probe that failed outright.
	Err bool
}

// ScanConfig bounds scanner behaviour.
type ScanConfig struct {
	// Workers is the probe fan-out width; zero or negative means
	// GOMAXPROCS. Results are merged in target order and are
	// byte-identical at any width.
	Workers int
	// Metrics, when set, receives the crawl.probe.errors counter.
	Metrics *obs.Registry
	// Observer, when set, receives every probe outcome in target order
	// from the merge fold — the same determinism contract as
	// Config.Observer on the crawl side.
	Observer func(ProbeObservation)
}

// ScanResult is the outcome of one Algorithm 2 scan.
type ScanResult struct {
	// Time is the scan's nominal time.
	Time time.Time
	// Probed is the number of probes issued, including failed ones.
	Probed int
	// ProbeErrors counts probes that failed outright (socket errors,
	// not silence). Failed probes are skipped, mirroring how the crawl
	// tolerates dial failures.
	ProbeErrors int
	// Responsive lists addresses that answered the VER probe.
	Responsive []netip.AddrPort
	// ReachableSurprises lists addresses that accepted outright (they
	// were misclassified as unreachable).
	ReachableSurprises []netip.AddrPort
}

// Scan runs Algorithm 2 sequentially with default options: probe every
// address and collect the responsive ones.
func Scan(at time.Time, prober Prober, addrs []netip.AddrPort) (*ScanResult, error) {
	return ScanWith(context.Background(), ScanConfig{Workers: 1}, at, prober, addrs)
}

// ScanWith runs Algorithm 2 with explicit fan-out and instrumentation:
// probe every address on cfg.Workers workers and collect the responsive
// ones in target order. Probe failures are counted and skipped — a
// single refused socket must not abort a 100K-address sweep — so the
// only error returned is ctx cancellation.
func ScanWith(ctx context.Context, cfg ScanConfig, at time.Time, prober Prober,
	addrs []netip.AddrPort) (*ScanResult, error) {
	res := &ScanResult{Time: at}
	outcomes := make([]ProbeOutcome, len(addrs))
	failed := make([]bool, len(addrs))
	mProbeErrs := cfg.Metrics.Counter("crawl.probe.errors")
	err := par.ForEach(ctx, par.Workers(cfg.Workers), len(addrs), func(ctx context.Context, i int) error {
		outcome, err := prober.Probe(addrs[i])
		if err != nil {
			failed[i] = true
			mProbeErrs.Inc()
			return nil
		}
		outcomes[i] = outcome
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range addrs {
		res.Probed++
		if cfg.Observer != nil {
			cfg.Observer(ProbeObservation{At: at, Addr: a, Outcome: outcomes[i], Err: failed[i]})
		}
		if failed[i] {
			res.ProbeErrors++
			continue
		}
		switch outcomes[i] {
		case ProbeResponsive:
			res.Responsive = append(res.Responsive, a)
		case ProbeReachable:
			res.ReachableSurprises = append(res.ReachableSurprises, a)
		}
	}
	return res, nil
}

// SuspectedMalicious returns the crawled nodes matching the §IV-B
// heuristic: connected nodes whose ADDR responses contained no reachable
// address at all (an honest node always advertises at least itself).
// minSent filters out nodes that sent too few addresses to judge. The
// result is sorted by flood volume (then address) — the Reports map
// iteration feeding it has no stable order of its own.
func (s *Snapshot) SuspectedMalicious(minSent int) []*NodeReport {
	var out []*NodeReport
	for _, r := range s.Reports {
		if !r.Connected || r.TotalSent < minSent {
			continue
		}
		if r.ReachableSent == 0 && !r.SentOwnAddr {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UnreachableSent != out[j].UnreachableSent {
			return out[i].UnreachableSent > out[j].UnreachableSent
		}
		return addridx.Compare(out[i].Addr, out[j].Addr) < 0
	})
	return out
}

// AddrComposition returns the aggregate reachable/unreachable shares of
// all collected addresses (the paper's 14.9% / 85.1% split).
func (s *Snapshot) AddrComposition() (reachable, unreachable float64) {
	var r, u int
	for _, rep := range s.Reports {
		r += rep.ReachableSent
		u += rep.UnreachableSent
	}
	total := r + u
	if total == 0 {
		return 0, 0
	}
	return float64(r) / float64(total), float64(u) / float64(total)
}
