// Package crawler implements the paper's measurement apparatus (§III,
// Figure 2): the address crawler that bootstraps from the Bitnodes and
// DNS-seeder databases, the network crawler that drains each reachable
// node's address tables through iterative GETADDR exchanges
// (Algorithm 1), and the scanner that classifies unreachable addresses as
// responsive or silent by probing them with a VER message (Algorithm 2).
//
// The crawler is generic over a Dialer/Prober pair. Three backends exist:
// the popsim backend over a netgen.Universe (snapshot-level, fast enough
// for 60-day × 700K-address reproductions), the simnet backend (live
// in-process nodes), and the tcpnet backend (real sockets speaking the
// real wire protocol).
package crawler

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Session is an established connection to a reachable node, able to
// perform repeated GETADDR→ADDR exchanges.
type Session interface {
	// Remote returns the peer's address.
	Remote() netip.AddrPort
	// GetAddr performs one GETADDR→ADDR exchange and returns the
	// received addresses.
	GetAddr() ([]wire.NetAddress, error)
	// Close releases the session.
	Close() error
}

// Dialer opens crawl sessions.
type Dialer interface {
	// Dial connects to a reachable address; it returns an error when the
	// node is gone, refuses, or times out.
	Dial(addr netip.AddrPort) (Session, error)
}

// ProbeOutcome classifies a scanner probe (Algorithm 2).
type ProbeOutcome int

// Probe outcomes.
const (
	// ProbeSilent targets never answered.
	ProbeSilent ProbeOutcome = iota + 1
	// ProbeResponsive targets answered the VER probe by closing the
	// connection: an unreachable node running Bitcoin.
	ProbeResponsive
	// ProbeReachable targets accepted the connection outright.
	ProbeReachable
)

// String returns the outcome name.
func (o ProbeOutcome) String() string {
	switch o {
	case ProbeSilent:
		return "silent"
	case ProbeResponsive:
		return "responsive"
	case ProbeReachable:
		return "reachable"
	default:
		return "unknown"
	}
}

// Prober sends the scanner's VER probe.
type Prober interface {
	// Probe classifies the endpoint at addr.
	Probe(addr netip.AddrPort) (ProbeOutcome, error)
}

// Config bounds crawler behaviour.
type Config struct {
	// MaxGetAddrRounds caps the Algorithm 1 repeat loop per node
	// (default 50).
	MaxGetAddrRounds int
	// MaxNodes caps how many reachable nodes are crawled (0 = no cap).
	MaxNodes int
	// Metrics, when set, receives the crawl reachability series
	// (crawl.* counters: dials, connections, GETADDR rounds, address
	// composition). Nil disables instrumentation.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxGetAddrRounds == 0 {
		c.MaxGetAddrRounds = 50
	}
	return c
}

// NodeReport is the per-reachable-node crawl record.
type NodeReport struct {
	// Addr is the crawled node.
	Addr netip.AddrPort
	// Connected reports whether the dial succeeded.
	Connected bool
	// Rounds is the number of GETADDR exchanges performed.
	Rounds int
	// TotalSent counts all addresses received from the node (with
	// repetition across rounds deduplicated).
	TotalSent int
	// ReachableSent and UnreachableSent split TotalSent against the
	// known-reachable reference set.
	ReachableSent   int
	UnreachableSent int
	// SentOwnAddr reports whether the node advertised itself — honest
	// nodes always do; its absence is the §IV-B malice heuristic.
	SentOwnAddr bool
}

// Snapshot is the outcome of one crawl experiment.
type Snapshot struct {
	// Time is the experiment's nominal time.
	Time time.Time
	// Dialed is the number of dial attempts.
	Dialed int
	// Connected lists nodes that accepted and completed the crawl.
	Connected []netip.AddrPort
	// Reports holds the per-node records, keyed by address.
	Reports map[netip.AddrPort]*NodeReport
	// Unreachable is the deduplicated set of collected addresses that
	// are not in the known-reachable reference set (the paper's N_u).
	Unreachable map[netip.AddrPort]struct{}
}

// Crawler drives crawl experiments over a backend.
type Crawler struct {
	cfg    Config
	dialer Dialer

	// Metric handles, nil-safe no-ops when Config.Metrics is nil.
	mDials        *obs.Counter
	mConnected    *obs.Counter
	mRounds       *obs.Counter
	mAddrsTotal   *obs.Counter
	mAddrsReach   *obs.Counter
	mAddrsUnreach *obs.Counter
}

// New creates a crawler over the given dialer.
func New(cfg Config, dialer Dialer) *Crawler {
	cfg = cfg.withDefaults()
	return &Crawler{
		cfg:    cfg,
		dialer: dialer,

		mDials:        cfg.Metrics.Counter("crawl.dials"),
		mConnected:    cfg.Metrics.Counter("crawl.connected"),
		mRounds:       cfg.Metrics.Counter("crawl.getaddr.rounds"),
		mAddrsTotal:   cfg.Metrics.Counter("crawl.addrs.total"),
		mAddrsReach:   cfg.Metrics.Counter("crawl.addrs.reachable"),
		mAddrsUnreach: cfg.Metrics.Counter("crawl.addrs.unreachable"),
	}
}

// Crawl runs Algorithm 1 against every address in targets: connect, issue
// GETADDR until a response adds nothing new, classify each collected
// address against knownReachable, and accumulate the unreachable set.
func (c *Crawler) Crawl(at time.Time, targets []netip.AddrPort,
	knownReachable map[netip.AddrPort]struct{}) (*Snapshot, error) {
	if len(targets) == 0 {
		return nil, errors.New("crawler: no targets")
	}
	snap := &Snapshot{
		Time:        at,
		Reports:     make(map[netip.AddrPort]*NodeReport, len(targets)),
		Unreachable: make(map[netip.AddrPort]struct{}),
	}
	for _, target := range targets {
		if c.cfg.MaxNodes > 0 && len(snap.Connected) >= c.cfg.MaxNodes {
			break
		}
		snap.Dialed++
		c.mDials.Inc()
		report := &NodeReport{Addr: target}
		snap.Reports[target] = report
		sess, err := c.dialer.Dial(target)
		if err != nil {
			continue
		}
		report.Connected = true
		c.mConnected.Inc()
		snap.Connected = append(snap.Connected, target)
		c.drainNode(sess, report, knownReachable, snap.Unreachable)
		if err := sess.Close(); err != nil {
			return nil, fmt.Errorf("crawler: close %v: %w", target, err)
		}
	}
	return snap, nil
}

// drainNode implements the Algorithm 1 inner loop for one node.
func (c *Crawler) drainNode(sess Session, report *NodeReport,
	knownReachable map[netip.AddrPort]struct{},
	unreachable map[netip.AddrPort]struct{}) {
	seen := make(map[netip.AddrPort]struct{})
	for round := 0; round < c.cfg.MaxGetAddrRounds; round++ {
		addrs, err := sess.GetAddr()
		if err != nil {
			return
		}
		report.Rounds++
		c.mRounds.Inc()
		fresh := 0
		for _, na := range addrs {
			if _, dup := seen[na.Addr]; dup {
				continue
			}
			seen[na.Addr] = struct{}{}
			fresh++
			report.TotalSent++
			c.mAddrsTotal.Inc()
			if na.Addr == report.Addr {
				report.SentOwnAddr = true
			}
			if _, ok := knownReachable[na.Addr]; ok {
				report.ReachableSent++
				c.mAddrsReach.Inc()
			} else {
				report.UnreachableSent++
				c.mAddrsUnreach.Inc()
				unreachable[na.Addr] = struct{}{}
			}
		}
		// Algorithm 1 termination: a response with no new addresses
		// means the node's tables are drained.
		if fresh == 0 {
			return
		}
	}
}

// ScanResult is the outcome of one Algorithm 2 scan.
type ScanResult struct {
	// Time is the scan's nominal time.
	Time time.Time
	// Probed is the number of probes issued.
	Probed int
	// Responsive lists addresses that answered the VER probe.
	Responsive []netip.AddrPort
	// ReachableSurprises lists addresses that accepted outright (they
	// were misclassified as unreachable).
	ReachableSurprises []netip.AddrPort
}

// Scan runs Algorithm 2: probe every address and collect the responsive
// ones.
func Scan(at time.Time, prober Prober, addrs []netip.AddrPort) (*ScanResult, error) {
	res := &ScanResult{Time: at}
	for _, a := range addrs {
		outcome, err := prober.Probe(a)
		if err != nil {
			return nil, fmt.Errorf("crawler: probe %v: %w", a, err)
		}
		res.Probed++
		switch outcome {
		case ProbeResponsive:
			res.Responsive = append(res.Responsive, a)
		case ProbeReachable:
			res.ReachableSurprises = append(res.ReachableSurprises, a)
		}
	}
	return res, nil
}

// SuspectedMalicious returns the crawled nodes matching the §IV-B
// heuristic: connected nodes whose ADDR responses contained no reachable
// address at all (an honest node always advertises at least itself).
// minSent filters out nodes that sent too few addresses to judge.
func (s *Snapshot) SuspectedMalicious(minSent int) []*NodeReport {
	var out []*NodeReport
	for _, r := range s.Reports {
		if !r.Connected || r.TotalSent < minSent {
			continue
		}
		if r.ReachableSent == 0 && !r.SentOwnAddr {
			out = append(out, r)
		}
	}
	return out
}

// AddrComposition returns the aggregate reachable/unreachable shares of
// all collected addresses (the paper's 14.9% / 85.1% split).
func (s *Snapshot) AddrComposition() (reachable, unreachable float64) {
	var r, u int
	for _, rep := range s.Reports {
		r += rep.ReachableSent
		u += rep.UnreachableSent
	}
	total := r + u
	if total == 0 {
		return 0, 0
	}
	return float64(r) / float64(total), float64(u) / float64(total)
}
