package crawler

import (
	"context"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/addridx"
	"repro/internal/wire"
)

func TestCrawlObserverOrdering(t *testing.T) {
	// Exchanges arrive in target order, round order within a target, with
	// raw (undeduplicated) responses and the crawl time stamped on.
	t1, t2 := tAddr(1), tAddr(2)
	books := map[netip.AddrPort][]wire.NetAddress{
		t1: {na(t1), na(tAddr(101)), na(tAddr(102)), na(tAddr(103))},
		t2: {na(t2), na(tAddr(104))},
	}
	at := time.Unix(1586000000, 0)
	var got []Exchange
	c := New(Config{Observer: func(ex Exchange) { got = append(got, ex) }},
		&fakeDialer{books: books})
	if _, err := c.Crawl(context.Background(), at, []netip.AddrPort{t1, t2}, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no exchanges observed")
	}
	lastSource, lastRound := netip.AddrPort{}, -1
	seenT1 := false
	for _, ex := range got {
		if !ex.At.Equal(at) {
			t.Errorf("exchange At = %v, want %v", ex.At, at)
		}
		if ex.SourceID != addridx.None {
			t.Errorf("SourceID = %v without an Index, want None", ex.SourceID)
		}
		if ex.Source == lastSource {
			if ex.Round != lastRound+1 {
				t.Errorf("rounds not consecutive for %v: %d after %d", ex.Source, ex.Round, lastRound)
			}
		} else {
			if ex.Round != 0 {
				t.Errorf("first round for %v = %d, want 0", ex.Source, ex.Round)
			}
			if ex.Source == t1 {
				seenT1 = true
			}
			if ex.Source == t2 && !seenT1 {
				t.Error("t2 exchanges delivered before t1: not target order")
			}
		}
		lastSource, lastRound = ex.Source, ex.Round
	}
	// The final exchange per target is the repeat page that terminated
	// Algorithm 1 — observers must see it (drain detection depends on it).
	var t1Total int
	for _, ex := range got {
		if ex.Source == t1 {
			t1Total += len(ex.Addrs)
		}
	}
	if t1Total <= len(books[t1]) {
		t.Errorf("t1 announcements = %d, want > %d (repeat page included)", t1Total, len(books[t1]))
	}
}

func TestCrawlObserverWorkerCountInvariance(t *testing.T) {
	// The observer stream is delivered from the in-order merge loop, so
	// it must be identical at any fan-out width — and attaching it must
	// not perturb the snapshot.
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	seedView := u.SeedViewAt(at)
	targets := TargetsOf(seedView)
	known := ReachableReference(seedView)

	crawlWith := func(workers int, obsr Observer) *Snapshot {
		view := NewUniverseView(u, at)
		c := New(Config{Workers: workers, Index: u.Index, Observer: obsr}, view)
		snap, err := c.Crawl(context.Background(), at, targets, known)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	var seqEx, parEx []Exchange
	seqSnap := crawlWith(1, func(ex Exchange) { seqEx = append(seqEx, ex) })
	parSnap := crawlWith(4, func(ex Exchange) { parEx = append(parEx, ex) })
	if len(seqEx) == 0 {
		t.Fatal("no exchanges observed")
	}
	if !reflect.DeepEqual(seqEx, parEx) {
		t.Errorf("observer streams differ between workers=1 and workers=4: %d vs %d exchanges",
			len(seqEx), len(parEx))
	}
	bare := crawlWith(4, nil)
	if !reflect.DeepEqual(seqSnap, parSnap) || !reflect.DeepEqual(parSnap, bare) {
		t.Error("attaching an observer perturbed the snapshot")
	}
	// SourceIDs must be resolved against the index for popsim targets.
	for _, ex := range seqEx {
		if ex.SourceID == addridx.None {
			t.Fatalf("unresolved SourceID for %v with Index set", ex.Source)
		}
	}
}

func TestScanObserver(t *testing.T) {
	// Probe observations arrive in target order with failures flagged.
	p := &flakyProber{
		fail:     map[netip.AddrPort]bool{tAddr(2): true},
		outcomes: map[netip.AddrPort]ProbeOutcome{tAddr(1): ProbeResponsive},
	}
	at := time.Unix(0, 0)
	targets := []netip.AddrPort{tAddr(1), tAddr(2), tAddr(3)}
	var got []ProbeObservation
	_, err := ScanWith(context.Background(),
		ScanConfig{Workers: 2, Observer: func(po ProbeObservation) { got = append(got, po) }},
		at, p, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := []ProbeObservation{
		{At: at, Addr: tAddr(1), Outcome: ProbeResponsive},
		{At: at, Addr: tAddr(2), Err: true},
		{At: at, Addr: tAddr(3), Outcome: ProbeSilent},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("observations = %+v, want %+v", got, want)
	}
}

func TestAddrCompositionEmpty(t *testing.T) {
	// Zero-observation composition must be 0/0, not NaN — an empty
	// snapshot's shares feed straight into CSVs.
	empty := &Snapshot{Reports: map[netip.AddrPort]*NodeReport{}}
	r, u := empty.AddrComposition()
	if r != 0 || u != 0 {
		t.Errorf("empty composition = %v/%v, want 0/0", r, u)
	}
	// Same with a report present but nothing collected.
	empty.Reports[tAddr(1)] = &NodeReport{Addr: tAddr(1), Connected: true}
	r, u = empty.AddrComposition()
	if r != 0 || u != 0 {
		t.Errorf("zero-sent composition = %v/%v, want 0/0", r, u)
	}
}
