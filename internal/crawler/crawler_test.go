package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/netgen"
	"repro/internal/wire"
)

// fakeDialer serves scripted books for testing the crawl logic in
// isolation from the popsim backend.
type fakeDialer struct {
	books map[netip.AddrPort][]wire.NetAddress
	fails map[netip.AddrPort]bool
	page  int
}

func (d *fakeDialer) Dial(addr netip.AddrPort) (Session, error) {
	if d.fails[addr] {
		return nil, errors.New("refused")
	}
	book, ok := d.books[addr]
	if !ok {
		return nil, errors.New("timeout")
	}
	page := d.page
	if page == 0 {
		page = 3
	}
	return &fakeSession{remote: addr, book: book, page: page}, nil
}

type fakeSession struct {
	remote netip.AddrPort
	book   []wire.NetAddress
	cursor int
	page   int
	closed bool
}

func (s *fakeSession) Remote() netip.AddrPort { return s.remote }

func (s *fakeSession) GetAddr() ([]wire.NetAddress, error) {
	if s.closed {
		return nil, errors.New("closed")
	}
	if s.cursor >= len(s.book) {
		// Repeat the first page: terminates Algorithm 1.
		end := s.page
		if end > len(s.book) {
			end = len(s.book)
		}
		return s.book[:end], nil
	}
	end := s.cursor + s.page
	if end > len(s.book) {
		end = len(s.book)
	}
	out := s.book[s.cursor:end]
	s.cursor = end
	return out, nil
}

func (s *fakeSession) Close() error {
	s.closed = true
	return nil
}

func tAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, byte(i >> 8), byte(i)}), 8333)
}

func na(addr netip.AddrPort) wire.NetAddress {
	return wire.NetAddress{Addr: addr, Timestamp: time.Unix(1586000000, 0)}
}

func TestCrawlEmptyTargets(t *testing.T) {
	c := New(Config{}, &fakeDialer{})
	if _, err := c.Crawl(context.Background(), time.Now(), nil, nil); err == nil {
		t.Error("empty targets: want error")
	}
}

func TestCrawlDrainsFullBook(t *testing.T) {
	target := tAddr(1)
	book := []wire.NetAddress{na(target)} // self first
	for i := 10; i < 30; i++ {
		book = append(book, na(tAddr(i)))
	}
	d := &fakeDialer{books: map[netip.AddrPort][]wire.NetAddress{target: book}}
	c := New(Config{}, d)
	known := map[netip.AddrPort]struct{}{target: {}}
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), []netip.AddrPort{target}, known)
	if err != nil {
		t.Fatal(err)
	}
	rep := snap.Reports[target]
	if !rep.Connected {
		t.Fatal("not connected")
	}
	if rep.TotalSent != len(book) {
		t.Errorf("TotalSent = %d, want %d (full book drained)", rep.TotalSent, len(book))
	}
	if !rep.SentOwnAddr {
		t.Error("self-advertisement not detected")
	}
	if rep.ReachableSent != 1 || rep.UnreachableSent != 20 {
		t.Errorf("split = %d/%d, want 1/20", rep.ReachableSent, rep.UnreachableSent)
	}
	if len(snap.Unreachable) != 20 {
		t.Errorf("unreachable set = %d, want 20", len(snap.Unreachable))
	}
	// Termination requires one extra repeat round beyond the book pages.
	wantRounds := (len(book)+2)/3 + 1
	if rep.Rounds != wantRounds {
		t.Errorf("rounds = %d, want %d", rep.Rounds, wantRounds)
	}
}

func TestCrawlFailedDialRecorded(t *testing.T) {
	alive, dead := tAddr(1), tAddr(2)
	d := &fakeDialer{
		books: map[netip.AddrPort][]wire.NetAddress{alive: {na(alive)}},
		fails: map[netip.AddrPort]bool{dead: true},
	}
	c := New(Config{}, d)
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), []netip.AddrPort{alive, dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dialed != 2 {
		t.Errorf("Dialed = %d, want 2", snap.Dialed)
	}
	if len(snap.Connected) != 1 {
		t.Errorf("Connected = %d, want 1", len(snap.Connected))
	}
	if snap.Reports[dead].Connected {
		t.Error("failed dial marked connected")
	}
}

func TestCrawlMaxRoundsBound(t *testing.T) {
	// A pathological session that always returns fresh addresses must be
	// cut off by MaxGetAddrRounds.
	target := tAddr(1)
	var big []wire.NetAddress
	for i := 0; i < 1000; i++ {
		big = append(big, na(tAddr(i+100)))
	}
	d := &fakeDialer{books: map[netip.AddrPort][]wire.NetAddress{target: big}, page: 5}
	c := New(Config{MaxGetAddrRounds: 10}, d)
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), []netip.AddrPort{target}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Reports[target].Rounds; got != 10 {
		t.Errorf("rounds = %d, want 10 (capped)", got)
	}
}

func TestCrawlMaxNodes(t *testing.T) {
	books := map[netip.AddrPort][]wire.NetAddress{}
	var targets []netip.AddrPort
	for i := 1; i <= 5; i++ {
		a := tAddr(i)
		books[a] = []wire.NetAddress{na(a)}
		targets = append(targets, a)
	}
	c := New(Config{MaxNodes: 2}, &fakeDialer{books: books})
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Connected) != 2 {
		t.Errorf("Connected = %d, want 2 (capped)", len(snap.Connected))
	}
}

func TestSuspectedMalicious(t *testing.T) {
	honest, evil := tAddr(1), tAddr(2)
	honestBook := []wire.NetAddress{na(honest), na(tAddr(50)), na(tAddr(51))}
	var evilBook []wire.NetAddress
	for i := 100; i < 140; i++ {
		evilBook = append(evilBook, na(tAddr(i)))
	}
	d := &fakeDialer{books: map[netip.AddrPort][]wire.NetAddress{
		honest: honestBook,
		evil:   evilBook,
	}}
	c := New(Config{}, d)
	known := map[netip.AddrPort]struct{}{honest: {}, evil: {}}
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), []netip.AddrPort{honest, evil}, known)
	if err != nil {
		t.Fatal(err)
	}
	suspects := snap.SuspectedMalicious(10)
	if len(suspects) != 1 || suspects[0].Addr != evil {
		t.Fatalf("suspects = %+v, want exactly the evil node", suspects)
	}
	// The honest node must not be flagged even with a lower threshold.
	for _, s := range snap.SuspectedMalicious(1) {
		if s.Addr == honest {
			t.Error("honest node flagged as malicious")
		}
	}
}

func TestAddrComposition(t *testing.T) {
	target := tAddr(1)
	book := []wire.NetAddress{na(target)}
	for i := 0; i < 3; i++ {
		book = append(book, na(tAddr(10+i))) // reachable
	}
	for i := 0; i < 6; i++ {
		book = append(book, na(tAddr(100+i))) // unreachable
	}
	known := map[netip.AddrPort]struct{}{target: {}}
	for i := 0; i < 3; i++ {
		known[tAddr(10+i)] = struct{}{}
	}
	d := &fakeDialer{books: map[netip.AddrPort][]wire.NetAddress{target: book}}
	c := New(Config{}, d)
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0), []netip.AddrPort{target}, known)
	if err != nil {
		t.Fatal(err)
	}
	r, u := snap.AddrComposition()
	if r < 0.39 || r > 0.41 { // 4 of 10
		t.Errorf("reachable share = %v, want 0.4", r)
	}
	if u < 0.59 || u > 0.61 {
		t.Errorf("unreachable share = %v, want 0.6", u)
	}
}

// fakeProber classifies by a fixed map.
type fakeProber struct {
	outcomes map[netip.AddrPort]ProbeOutcome
}

func (p *fakeProber) Probe(addr netip.AddrPort) (ProbeOutcome, error) {
	if o, ok := p.outcomes[addr]; ok {
		return o, nil
	}
	return ProbeSilent, nil
}

func TestScan(t *testing.T) {
	p := &fakeProber{outcomes: map[netip.AddrPort]ProbeOutcome{
		tAddr(1): ProbeResponsive,
		tAddr(2): ProbeSilent,
		tAddr(3): ProbeReachable,
	}}
	res, err := Scan(time.Unix(0, 0), p,
		[]netip.AddrPort{tAddr(1), tAddr(2), tAddr(3), tAddr(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 4 {
		t.Errorf("Probed = %d, want 4", res.Probed)
	}
	if len(res.Responsive) != 1 || res.Responsive[0] != tAddr(1) {
		t.Errorf("Responsive = %v", res.Responsive)
	}
	if len(res.ReachableSurprises) != 1 || res.ReachableSurprises[0] != tAddr(3) {
		t.Errorf("ReachableSurprises = %v", res.ReachableSurprises)
	}
}

// flakyProber fails on a fixed subset of addresses.
type flakyProber struct {
	fail     map[netip.AddrPort]bool
	outcomes map[netip.AddrPort]ProbeOutcome
}

func (p *flakyProber) Probe(addr netip.AddrPort) (ProbeOutcome, error) {
	if p.fail[addr] {
		return 0, fmt.Errorf("raw socket failure")
	}
	if o, ok := p.outcomes[addr]; ok {
		return o, nil
	}
	return ProbeSilent, nil
}

func TestScanToleratesProbeErrors(t *testing.T) {
	// A failed probe must be counted and skipped, not abort the sweep:
	// the responsive address after the failure is still found.
	p := &flakyProber{
		fail:     map[netip.AddrPort]bool{tAddr(1): true},
		outcomes: map[netip.AddrPort]ProbeOutcome{tAddr(2): ProbeResponsive},
	}
	res, err := Scan(time.Unix(0, 0), p, []netip.AddrPort{tAddr(1), tAddr(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 2 {
		t.Errorf("Probed = %d, want 2", res.Probed)
	}
	if res.ProbeErrors != 1 {
		t.Errorf("ProbeErrors = %d, want 1", res.ProbeErrors)
	}
	if len(res.Responsive) != 1 || res.Responsive[0] != tAddr(2) {
		t.Errorf("Responsive = %v, want [%v]", res.Responsive, tAddr(2))
	}
}

func TestScanCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScanWith(ctx, ScanConfig{Workers: 1}, time.Unix(0, 0),
		&fakeProber{}, []netip.AddrPort{tAddr(1)})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// closeFailDialer wraps fakeDialer so every session's Close fails.
type closeFailDialer struct{ fakeDialer }

func (d *closeFailDialer) Dial(addr netip.AddrPort) (Session, error) {
	sess, err := d.fakeDialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &closeFailSession{Session: sess}, nil
}

type closeFailSession struct{ Session }

func (s *closeFailSession) Close() error { return errors.New("connection reset during FIN") }

func TestCrawlKeepsSnapshotOnCloseError(t *testing.T) {
	// A session-teardown failure after a successful drain must not
	// discard the drained data — it is recorded on the report instead.
	target := tAddr(1)
	book := []wire.NetAddress{na(target), na(tAddr(10)), na(tAddr(11))}
	d := &closeFailDialer{fakeDialer{books: map[netip.AddrPort][]wire.NetAddress{target: book}}}
	c := New(Config{}, d)
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0),
		[]netip.AddrPort{target}, map[netip.AddrPort]struct{}{target: {}})
	if err != nil {
		t.Fatal(err)
	}
	rep := snap.Reports[target]
	if !rep.Connected || rep.TotalSent != len(book) {
		t.Fatalf("drained data lost: %+v", rep)
	}
	if rep.CloseErr == "" {
		t.Error("close failure not recorded on the report")
	}
	if len(snap.Unreachable) != 2 {
		t.Errorf("unreachable set = %d, want 2", len(snap.Unreachable))
	}
}

func TestCrawlWorkerCountInvariance(t *testing.T) {
	// The snapshot must be byte-identical at any fan-out width: the
	// popsim backend keys all randomness by StationID and the merge is
	// in target order.
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	seedView := u.SeedViewAt(at)
	targets := TargetsOf(seedView)
	known := ReachableReference(seedView)

	crawlWith := func(workers int) *Snapshot {
		view := NewUniverseView(u, at)
		c := New(Config{Workers: workers, Index: u.Index}, view)
		snap, err := c.Crawl(context.Background(), at, targets, known)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	seq, par4 := crawlWith(1), crawlWith(4)
	if !reflect.DeepEqual(seq, par4) {
		t.Errorf("snapshots differ between workers=1 and workers=4:\n"+
			"seq: dialed=%d connected=%d unreachable=%d\n"+
			"par: dialed=%d connected=%d unreachable=%d",
			seq.Dialed, len(seq.Connected), len(seq.Unreachable),
			par4.Dialed, len(par4.Connected), len(par4.Unreachable))
	}
}

func TestCrawlUnreachableOrderIsFirstSeen(t *testing.T) {
	// Unreachable addresses are listed in first-seen order: targets in
	// crawl order, receipt order within a target, duplicates dropped.
	t1, t2 := tAddr(1), tAddr(2)
	shared := tAddr(100)
	books := map[netip.AddrPort][]wire.NetAddress{
		t1: {na(t1), na(tAddr(101)), na(shared)},
		t2: {na(t2), na(shared), na(tAddr(102))},
	}
	known := map[netip.AddrPort]struct{}{t1: {}, t2: {}}
	c := New(Config{}, &fakeDialer{books: books})
	snap, err := c.Crawl(context.Background(), time.Unix(0, 0),
		[]netip.AddrPort{t1, t2}, known)
	if err != nil {
		t.Fatal(err)
	}
	want := []netip.AddrPort{tAddr(101), shared, tAddr(102)}
	if !reflect.DeepEqual(snap.Unreachable, want) {
		t.Errorf("Unreachable = %v, want %v", snap.Unreachable, want)
	}
}

// --- popsim backend integration -----------------------------------------

func smallUniverse(t *testing.T) *netgen.Universe {
	t.Helper()
	u, err := netgen.Generate(netgen.DefaultParams(7, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniverseViewCrawl(t *testing.T) {
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	view := NewUniverseView(u, at)
	seedView := u.SeedViewAt(at)
	targets := TargetsOf(seedView)
	known := ReachableReference(seedView)

	c := New(Config{}, view)
	snap, err := c.Crawl(context.Background(), at, targets, known)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Connected) == 0 {
		t.Fatal("no nodes connected")
	}
	// Connection success rate should be below 1 (stale listings).
	rate := float64(len(snap.Connected)) / float64(snap.Dialed)
	if rate > 0.95 {
		t.Errorf("connect rate = %.2f; expected failures from stale listings", rate)
	}
	if rate < 0.5 {
		t.Errorf("connect rate = %.2f; too many failures", rate)
	}
	// Collected unreachable set should approach the visible pool.
	coverage := float64(len(snap.Unreachable)) / float64(view.VisibleCount())
	if coverage < 0.5 {
		t.Errorf("unreachable coverage = %.2f, want most of the pool", coverage)
	}
	// Composition should be near the planted 14.9/85.1 split.
	r, unr := snap.AddrComposition()
	if r < 0.08 || r > 0.25 {
		t.Errorf("reachable composition = %.3f, want ≈0.149", r)
	}
	if unr < 0.75 {
		t.Errorf("unreachable composition = %.3f, want ≈0.851", unr)
	}
}

func TestUniverseViewScan(t *testing.T) {
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	view := NewUniverseView(u, at)

	var targets []netip.AddrPort
	wantResponsive := 0
	for _, s := range u.Unreachable {
		if !s.VisibleAt(at) {
			continue
		}
		targets = append(targets, s.Addr)
		if s.Class == netgen.ClassResponsive {
			wantResponsive++
		}
	}
	res, err := Scan(at, view, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responsive) != wantResponsive {
		t.Errorf("responsive = %d, want %d", len(res.Responsive), wantResponsive)
	}
}

func TestUniverseViewDialSemantics(t *testing.T) {
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(5 * 24 * time.Hour)
	view := NewUniverseView(u, at)
	// Dialing an unreachable station must fail.
	for _, s := range u.Unreachable[:5] {
		if _, err := view.Dial(s.Addr); err == nil {
			t.Fatalf("dial to unreachable %v succeeded", s.Addr)
		}
	}
	// Dialing an unknown address must fail.
	ghost := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.99"), 8333)
	if _, err := view.Dial(ghost); err == nil {
		t.Error("dial to unknown address succeeded")
	}
	// Dialing an offline reachable station must fail.
	for _, s := range u.Reachable {
		if !s.OnlineAt(at) {
			if _, err := view.Dial(s.Addr); err == nil {
				t.Error("dial to offline station succeeded")
			}
			break
		}
	}
}

func TestUniverseViewMaliciousDetection(t *testing.T) {
	u, err := netgen.Generate(netgen.DefaultParams(8, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	view := NewUniverseView(u, at)
	seedView := u.SeedViewAt(at)
	c := New(Config{}, view)
	snap, err := c.Crawl(context.Background(), at, TargetsOf(seedView), ReachableReference(seedView))
	if err != nil {
		t.Fatal(err)
	}
	suspects := snap.SuspectedMalicious(5)
	planted := 0
	for _, s := range u.Reachable {
		if s.Malicious && !s.Critical {
			planted++
		}
	}
	if len(suspects) == 0 {
		t.Fatalf("no suspects found; planted %d", planted)
	}
	// Every suspect must actually be a planted flooder (no false
	// positives at this threshold).
	for _, rep := range suspects {
		st := u.ByAddr(rep.Addr)
		if st == nil || !st.Malicious {
			t.Errorf("false positive: %v flagged", rep.Addr)
		}
	}
	// Detection should find most planted flooders (they are persistent,
	// so they are online and dialable).
	if len(suspects) < planted*6/10 {
		t.Errorf("found %d of %d planted flooders", len(suspects), planted)
	}
}

func TestProbeOutcomeString(t *testing.T) {
	for _, o := range []ProbeOutcome{ProbeSilent, ProbeResponsive, ProbeReachable, ProbeOutcome(9)} {
		if o.String() == "" {
			t.Errorf("empty string for outcome %d", int(o))
		}
	}
}

func TestUniverseViewAccessors(t *testing.T) {
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(24 * time.Hour)
	view := NewUniverseView(u, at)
	if !view.At().Equal(at) {
		t.Error("At mismatch")
	}
	if view.OnlineCount() <= 0 || view.VisibleCount() <= 0 {
		t.Error("empty pools")
	}
	sess, err := view.Dial(TargetsOf(u.SeedViewAt(at))[0])
	if err != nil {
		// The first dialable target may be offline-at-t or refused;
		// find one that works.
		for _, tgt := range TargetsOf(u.SeedViewAt(at)) {
			if sess, err = view.Dial(tgt); err == nil {
				break
			}
		}
	}
	if err != nil {
		t.Fatalf("no dialable targets: %v", err)
	}
	if !sess.Remote().IsValid() {
		t.Error("invalid Remote()")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.GetAddr(); err == nil {
		t.Error("GetAddr on closed session should fail")
	}
}

func TestUniverseViewProbeOfflineReachable(t *testing.T) {
	u := smallUniverse(t)
	at := u.Params.Epoch.Add(24 * time.Hour)
	view := NewUniverseView(u, at)
	for _, s := range u.Reachable {
		if !s.OnlineAt(at) {
			out, err := view.Probe(s.Addr)
			if err != nil {
				t.Fatal(err)
			}
			if out != ProbeSilent {
				t.Errorf("offline reachable probe = %v, want silent", out)
			}
			return
		}
	}
	t.Skip("no offline reachable station found")
}
