package crawler

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netgen"
)

// benchUniverse generates the benchmark universe at the guard scale.
func benchUniverse(b *testing.B, seed int64) *netgen.Universe {
	b.Helper()
	u, err := netgen.Generate(netgen.DefaultParams(seed, 0.02))
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// BenchmarkCrawlSnapshot measures one full Algorithm 1 crawl over a
// small synthetic universe, with the dense index and default fan-out —
// the hot path of the longitudinal study.
func BenchmarkCrawlSnapshot(b *testing.B) {
	u := benchUniverse(b, 55)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	seedView := u.SeedViewAt(at)
	targets := TargetsOf(seedView)
	known := ReachableReference(seedView)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := NewUniverseView(u, at)
		c := New(Config{Index: u.Index}, view)
		if _, err := c.Crawl(context.Background(), at, targets, known); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScan measures the Algorithm 2 probe sweep.
func BenchmarkScan(b *testing.B) {
	u := benchUniverse(b, 56)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	view := NewUniverseView(u, at)
	var targets []netip.AddrPort
	for _, s := range u.Unreachable {
		if s.VisibleAt(at) {
			targets = append(targets, s.Addr)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(at, view, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniverseView measures freezing a universe instant (the
// per-experiment pool scan every crawl and scan starts from).
func BenchmarkUniverseView(b *testing.B) {
	u := benchUniverse(b, 57)
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := NewUniverseView(u, at)
		if view.OnlineCount() == 0 {
			b.Fatal("empty view")
		}
	}
}
