package crawler

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netgen"
)

// BenchmarkCrawlExperiment measures one full Algorithm 1 crawl over a
// small synthetic universe.
func BenchmarkCrawlExperiment(b *testing.B) {
	u, err := netgen.Generate(netgen.DefaultParams(55, 0.02))
	if err != nil {
		b.Fatal(err)
	}
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	seedView := u.SeedViewAt(at)
	targets := TargetsOf(seedView)
	known := ReachableReference(seedView)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := NewUniverseView(u, at)
		c := New(Config{}, view)
		if _, err := c.Crawl(at, targets, known); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanExperiment measures the Algorithm 2 probe sweep.
func BenchmarkScanExperiment(b *testing.B) {
	u, err := netgen.Generate(netgen.DefaultParams(56, 0.02))
	if err != nil {
		b.Fatal(err)
	}
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	view := NewUniverseView(u, at)
	var targets []netip.AddrPort
	for _, s := range u.Unreachable {
		if s.VisibleAt(at) {
			targets = append(targets, s.Addr)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(at, view, targets); err != nil {
			b.Fatal(err)
		}
	}
}
