package tcpnet

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/wire"
)

// mkBook builds n synthetic book addresses.
func mkBook(n int) []wire.NetAddress {
	out := make([]wire.NetAddress, n)
	for i := range out {
		out[i] = wire.NetAddress{
			Addr: netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 8333),
			Services:  wire.SFNodeNetwork,
			Timestamp: time.Now(),
		}
	}
	return out
}

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Logf("server close: %v", err)
		}
	})
	return s
}

func TestDialAndGetAddrOverTCP(t *testing.T) {
	book := mkBook(50)
	srv := newTestServer(t, ServerConfig{Book: book})
	d := &Dialer{}
	sess, err := d.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sess.Close() }()
	addrs, err := sess.GetAddr()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) == 0 {
		t.Fatal("empty ADDR response")
	}
	// The first address must be the server's self-advertisement.
	if addrs[0].Addr != srv.Addr() {
		t.Errorf("first addr = %v, want self %v", addrs[0].Addr, srv.Addr())
	}
}

func TestCrawlOverRealTCP(t *testing.T) {
	// Full Algorithm 1 over loopback: the crawler must drain the whole
	// book through multiple GETADDR rounds.
	book := mkBook(60)
	srv := newTestServer(t, ServerConfig{Book: book})
	c := crawler.New(crawler.Config{}, &Dialer{})
	known := map[netip.AddrPort]struct{}{srv.Addr(): {}}
	snap, err := c.Crawl(context.Background(), time.Now(), []netip.AddrPort{srv.Addr()}, known)
	if err != nil {
		t.Fatal(err)
	}
	rep := snap.Reports[srv.Addr()]
	if rep == nil || !rep.Connected {
		t.Fatal("crawler did not connect")
	}
	if !rep.SentOwnAddr {
		t.Error("self-advertisement missing")
	}
	if rep.Rounds < 2 {
		t.Errorf("rounds = %d; the book should need several pages", rep.Rounds)
	}
	// The full book must be collected as unreachable (none of it is in
	// the known set).
	if len(snap.Unreachable) != len(book) {
		t.Errorf("collected %d unreachable, want %d", len(snap.Unreachable), len(book))
	}
}

func TestMaliciousServerDetectedOverTCP(t *testing.T) {
	book := mkBook(40)
	evil := newTestServer(t, ServerConfig{Book: book, OmitSelf: true})
	honest := newTestServer(t, ServerConfig{Book: mkBook(10)})
	c := crawler.New(crawler.Config{}, &Dialer{})
	known := map[netip.AddrPort]struct{}{
		evil.Addr():   {},
		honest.Addr(): {},
	}
	snap, err := c.Crawl(context.Background(), time.Now(),
		[]netip.AddrPort{evil.Addr(), honest.Addr()}, known)
	if err != nil {
		t.Fatal(err)
	}
	suspects := snap.SuspectedMalicious(5)
	if len(suspects) != 1 || suspects[0].Addr != evil.Addr() {
		t.Fatalf("suspects = %+v, want exactly the malicious server", suspects)
	}
}

func TestProbeReachableServer(t *testing.T) {
	srv := newTestServer(t, ServerConfig{Book: mkBook(5)})
	p := &Prober{}
	outcome, err := p.Probe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if outcome != crawler.ProbeReachable {
		t.Errorf("probe = %v, want reachable", outcome)
	}
}

func TestProbeResponsiveStub(t *testing.T) {
	stub, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stub.Close() }()
	p := &Prober{}
	outcome, err := p.Probe(stub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if outcome != crawler.ProbeResponsive {
		t.Errorf("probe = %v, want responsive", outcome)
	}
}

func TestProbeClosedPort(t *testing.T) {
	// Bind a listener to learn a free port, close it, then probe: the
	// kernel answers RST, which maps to responsive per the Scapy
	// semantics (an active refusal).
	stub, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := stub.Addr()
	if err := stub.Close(); err != nil {
		t.Fatal(err)
	}
	p := &Prober{}
	outcome, err := p.Probe(addr)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != crawler.ProbeResponsive {
		t.Errorf("probe of closed port = %v, want responsive (RST)", outcome)
	}
}

func TestDialFailsOnDeadEndpoint(t *testing.T) {
	stub, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := stub.Addr()
	if err := stub.Close(); err != nil {
		t.Fatal(err)
	}
	d := &Dialer{DialTimeout: 500 * time.Millisecond}
	if _, err := d.Dial(addr); err == nil {
		t.Error("dial to dead endpoint succeeded")
	}
}

func TestDialToResponsiveStubFailsHandshake(t *testing.T) {
	stub, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stub.Close() }()
	d := &Dialer{IOTimeout: time.Second}
	if _, err := d.Dial(stub.Addr()); err == nil {
		t.Error("handshake with a responsive stub should fail")
	}
}

func TestServerPingPong(t *testing.T) {
	srv := newTestServer(t, ServerConfig{Book: mkBook(3)})
	d := &Dialer{}
	sess, err := d.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sess.Close() }()
	ts := sess.(*tcpSession)
	ts.deadline()
	if _, err := wire.WriteMessage(ts.conn, &wire.MsgPing{Nonce: 99}, ts.net); err != nil {
		t.Fatal(err)
	}
	for {
		ts.deadline()
		msg, err := wire.ReadMessage(ts.conn, ts.net)
		if err != nil {
			t.Fatal(err)
		}
		if pong, ok := msg.(*wire.MsgPong); ok {
			if pong.Nonce != 99 {
				t.Errorf("pong nonce = %d, want 99", pong.Nonce)
			}
			return
		}
	}
}

func TestEndToEndScanMixedPopulation(t *testing.T) {
	// A miniature end-to-end study over loopback: one reachable server,
	// two responsive stubs, one dead address.
	srv := newTestServer(t, ServerConfig{Book: mkBook(8)})
	stub1, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stub1.Close() }()
	stub2, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stub2.Close() }()
	deadStub, err := NewResponsiveStub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := deadStub.Addr()
	if err := deadStub.Close(); err != nil {
		t.Fatal(err)
	}

	targets := []netip.AddrPort{srv.Addr(), stub1.Addr(), stub2.Addr(), dead}
	res, err := crawler.Scan(time.Now(), &Prober{}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responsive) != 3 {
		// dead port answers RST → also "responsive" per Scapy semantics;
		// genuinely silent requires a firewall DROP, which loopback
		// cannot fake.
		t.Errorf("responsive = %d (%v), want 3", len(res.Responsive), res.Responsive)
	}
	if len(res.ReachableSurprises) != 1 {
		t.Errorf("reachable = %d, want 1", len(res.ReachableSurprises))
	}
}

func TestSessionRemote(t *testing.T) {
	srv := newTestServer(t, ServerConfig{Book: mkBook(3)})
	d := &Dialer{}
	sess, err := d.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sess.Close() }()
	if sess.Remote() != srv.Addr() {
		t.Errorf("Remote = %v, want %v", sess.Remote(), srv.Addr())
	}
}

func TestProbeUnroutable(t *testing.T) {
	// TEST-NET-3 (RFC 5737) is unroutable: the probe must classify it as
	// silent (or at worst responsive on an odd network), never error.
	p := &Prober{DialTimeout: 300 * time.Millisecond}
	ap := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.254"), 8333)
	outcome, err := p.Probe(ap)
	if err != nil {
		t.Fatalf("probe errored: %v", err)
	}
	if outcome != crawler.ProbeSilent && outcome != crawler.ProbeResponsive {
		t.Errorf("unroutable probe = %v", outcome)
	}
}
