package tcpnet

import (
	"errors"
	"net"
	"net/netip"
	"syscall"
	"testing"
	"time"
)

// flakyDial fails the first n attempts with err, then reports success
// with a closed pipe end (enough for connect; the tests here never
// handshake through it).
type flakyDial struct {
	failures int
	err      error
	attempts int
	sleeps   []time.Duration
}

func (f *flakyDial) dial(addr string, timeout time.Duration) (net.Conn, error) {
	f.attempts++
	if f.attempts <= f.failures {
		return nil, f.err
	}
	c1, c2 := net.Pipe()
	_ = c2.Close()
	return c1, nil
}

func (f *flakyDial) sleep(d time.Duration) { f.sleeps = append(f.sleeps, d) }

func TestConnectRetriesTransientFailures(t *testing.T) {
	f := &flakyDial{failures: 2, err: syscall.ECONNREFUSED}
	d := &Dialer{RetryBackoff: 10 * time.Millisecond, dialFn: f.dial, sleepFn: f.sleep}
	conn, err := d.connect(mustAddr(t), time.Second)
	if err != nil {
		t.Fatalf("connect failed despite retries: %v", err)
	}
	_ = conn.Close()
	if f.attempts != 3 {
		t.Errorf("attempts = %d, want 3", f.attempts)
	}
	// Backoff doubles: 10ms before the first retry, 20ms before the second.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(f.sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", f.sleeps, want)
	}
	for i := range want {
		if f.sleeps[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, f.sleeps[i], want[i])
		}
	}
}

func TestConnectGivesUpAfterBoundedRetries(t *testing.T) {
	f := &flakyDial{failures: 100, err: syscall.ECONNRESET}
	d := &Dialer{RetryBackoff: time.Millisecond, dialFn: f.dial, sleepFn: f.sleep}
	if _, err := d.connect(mustAddr(t), time.Second); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET", err)
	}
	if f.attempts != 1+DefaultDialRetries {
		t.Errorf("attempts = %d, want %d", f.attempts, 1+DefaultDialRetries)
	}
}

func TestConnectDoesNotRetryPermanentErrors(t *testing.T) {
	f := &flakyDial{failures: 100, err: errors.New("no route to host")}
	d := &Dialer{dialFn: f.dial, sleepFn: f.sleep}
	if _, err := d.connect(mustAddr(t), time.Second); err == nil {
		t.Fatal("connect succeeded unexpectedly")
	}
	if f.attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent error)", f.attempts)
	}
	if len(f.sleeps) != 0 {
		t.Errorf("slept %v before a permanent failure", f.sleeps)
	}
}

func TestConnectNegativeRetriesDisables(t *testing.T) {
	f := &flakyDial{failures: 100, err: syscall.ECONNREFUSED}
	d := &Dialer{DialRetries: -1, dialFn: f.dial, sleepFn: f.sleep}
	if _, err := d.connect(mustAddr(t), time.Second); err == nil {
		t.Fatal("connect succeeded unexpectedly")
	}
	if f.attempts != 1 {
		t.Errorf("attempts = %d, want 1 (retries disabled)", f.attempts)
	}
}

func TestDialRetriesThroughToHandshake(t *testing.T) {
	// End to end: the first connect attempt is refused, the retry reaches
	// a real server and the handshake completes.
	srv := newTestServer(t, ServerConfig{})
	refusals := 0
	d := &Dialer{
		RetryBackoff: time.Millisecond,
		dialFn: func(addr string, timeout time.Duration) (net.Conn, error) {
			if refusals == 0 {
				refusals++
				return nil, syscall.ECONNREFUSED
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
	sess, err := d.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial with one refusal failed: %v", err)
	}
	defer func() { _ = sess.Close() }()
	if refusals != 1 {
		t.Errorf("refusals = %d, want 1", refusals)
	}
}

func mustAddr(t *testing.T) netip.AddrPort {
	t.Helper()
	return netip.MustParseAddrPort("127.0.0.1:1")
}
