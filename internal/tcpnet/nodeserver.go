package tcpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/wire"
)

// NodeServer runs the full node state machine (internal/node) over real
// TCP sockets: the same protocol logic that powers the virtual-time
// simulations, here driven by an actor loop with wall-clock timers and a
// per-connection reader/writer pair. This closes the loop on the
// reproduction's realism claim — the node under simulation is the node on
// the wire.
//
// Concurrency model: the node itself is single-threaded by contract, so
// every interaction (timers, inbound messages, dial results) is funneled
// through a single actor goroutine via the calls channel. Socket readers
// and writers run in their own goroutines and communicate only through
// that channel and per-connection outboxes.
type NodeServer struct {
	cfg      node.Config
	netMagic wire.BitcoinNet

	listener net.Listener
	node     *node.Node

	calls chan func()
	done  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[node.ConnID]*serverConn
	nextID node.ConnID
	closed bool

	rng *rand.Rand
}

// serverConn is one live TCP connection owned by a NodeServer.
type serverConn struct {
	id     node.ConnID
	conn   net.Conn
	outbox chan wire.Message
	closed chan struct{}
	once   sync.Once
}

// NewNodeServer starts a full node listening on listenAddr. The node's
// Self address is filled from the listener when unset.
func NewNodeServer(cfg node.Config, netMagic wire.BitcoinNet, listenAddr string) (*NodeServer, error) {
	if netMagic == 0 {
		netMagic = wire.SimNet
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	if !cfg.Self.Addr.IsValid() {
		ap, err := netip.ParseAddrPort(l.Addr().String())
		if err != nil {
			_ = l.Close()
			return nil, fmt.Errorf("tcpnet: parse listener addr: %w", err)
		}
		cfg.Self = wire.NetAddress{
			Addr: ap, Services: wire.SFNodeNetwork, Timestamp: time.Now(),
		}
	}
	s := &NodeServer{
		cfg:      cfg,
		netMagic: netMagic,
		listener: l,
		calls:    make(chan func(), 256),
		done:     make(chan struct{}),
		conns:    make(map[node.ConnID]*serverConn),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	s.node = node.New(cfg, (*serverEnv)(s))
	s.wg.Add(2)
	go s.actorLoop()
	go s.acceptLoop()
	s.call(func() { s.node.Start() })
	return s, nil
}

// Addr returns the node's advertised address.
func (s *NodeServer) Addr() netip.AddrPort { return s.cfg.Self.Addr }

// Do runs fn on the actor goroutine with access to the node, blocking
// until it completes. Use it to query or drive the node safely.
func (s *NodeServer) Do(fn func(n *node.Node)) {
	var wg sync.WaitGroup
	wg.Add(1)
	if !s.call(func() {
		defer wg.Done()
		fn(s.node)
	}) {
		wg.Done()
	}
	wg.Wait()
}

// call enqueues fn for the actor loop; it reports false after shutdown.
func (s *NodeServer) call(fn func()) bool {
	select {
	case <-s.done:
		return false
	case s.calls <- fn:
		return true
	}
}

// Close stops the node, the listener, and every connection.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.Do(func(n *node.Node) { n.Stop() })
	close(s.done)
	err := s.listener.Close()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return err
}

// actorLoop serializes all node access.
func (s *NodeServer) actorLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			// Drain a final batch so Do callers are not stranded.
			for {
				select {
				case fn := <-s.calls:
					fn()
				default:
					return
				}
			}
		case fn := <-s.calls:
			fn()
		}
	}
}

// acceptLoop registers inbound connections with the node.
func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		remote, err := netip.ParseAddrPort(conn.RemoteAddr().String())
		if err != nil {
			_ = conn.Close()
			continue
		}
		sc := s.register(conn)
		if sc == nil {
			_ = conn.Close()
			return
		}
		accepted := make(chan bool, 1)
		if !s.call(func() { accepted <- s.node.OnInbound(remote, sc.id) }) {
			sc.close()
			return
		}
		go func() {
			if !<-accepted {
				s.dropConn(sc, false)
				return
			}
			s.startConnIO(sc)
		}()
	}
}

// register allocates a ConnID and bookkeeping for a socket.
func (s *NodeServer) register(conn net.Conn) *serverConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.nextID++
	sc := &serverConn{
		id:     s.nextID,
		conn:   conn,
		outbox: make(chan wire.Message, 1024),
		closed: make(chan struct{}),
	}
	s.conns[sc.id] = sc
	return sc
}

// startConnIO launches the reader and writer goroutines for a connection.
func (s *NodeServer) startConnIO(sc *serverConn) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.readLoop(sc)
	}()
	go func() {
		defer s.wg.Done()
		s.writeLoop(sc)
	}()
}

// readLoop decodes frames and feeds them to the node.
func (s *NodeServer) readLoop(sc *serverConn) {
	for {
		_ = sc.conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		msg, err := wire.ReadMessage(sc.conn, s.netMagic)
		if err != nil {
			if errors.Is(err, wire.ErrUnknownCommand) {
				continue
			}
			s.dropConn(sc, true)
			return
		}
		if !s.call(func() { s.node.OnMessage(sc.id, msg) }) {
			return
		}
	}
}

// writeLoop drains the outbox onto the socket.
func (s *NodeServer) writeLoop(sc *serverConn) {
	for {
		select {
		case <-sc.closed:
			return
		case msg := <-sc.outbox:
			_ = sc.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := wire.WriteMessage(sc.conn, msg, s.netMagic); err != nil {
				s.dropConn(sc, true)
				return
			}
		}
	}
}

// dropConn tears a connection down and, when notify is set, informs the
// node.
func (s *NodeServer) dropConn(sc *serverConn, notify bool) {
	sc.close()
	s.mu.Lock()
	delete(s.conns, sc.id)
	s.mu.Unlock()
	if notify {
		s.call(func() { s.node.OnDisconnect(sc.id) })
	}
}

// close shuts the socket and wakes the writer exactly once.
func (c *serverConn) close() {
	c.once.Do(func() {
		close(c.closed)
		_ = c.conn.Close()
	})
}

// serverEnv adapts NodeServer to node.Env. All methods run on the actor
// goroutine (the node only calls Env from within its own callbacks).
type serverEnv NodeServer

var _ node.Env = (*serverEnv)(nil)

// Now implements node.Env.
func (e *serverEnv) Now() time.Time { return time.Now() }

// Rand implements node.Env.
func (e *serverEnv) Rand() *rand.Rand { return e.rng }

// Schedule implements node.Env with a wall-clock timer that re-enters the
// actor loop.
func (e *serverEnv) Schedule(d time.Duration, fn func()) {
	s := (*NodeServer)(e)
	time.AfterFunc(d, func() {
		select {
		case <-s.done:
		default:
			s.call(fn)
		}
	})
}

// Dial implements node.Env: connect asynchronously and report the result.
func (e *serverEnv) Dial(remote netip.AddrPort) {
	s := (*NodeServer)(e)
	go func() {
		conn, err := net.DialTimeout("tcp", remote.String(), 5*time.Second)
		if err != nil {
			s.call(func() { s.node.OnDialResult(remote, 0, err) })
			return
		}
		sc := s.register(conn)
		if sc == nil {
			_ = conn.Close()
			return
		}
		s.startConnIO(sc)
		s.call(func() { s.node.OnDialResult(remote, sc.id, nil) })
	}()
}

// Transmit implements node.Env: the simulated serialization delay is
// already paid on a real socket, so the message goes straight to the
// outbox (dropping the connection when the peer cannot drain it).
func (e *serverEnv) Transmit(conn node.ConnID, msg wire.Message, delay time.Duration) {
	s := (*NodeServer)(e)
	s.mu.Lock()
	sc := s.conns[conn]
	s.mu.Unlock()
	if sc == nil {
		return
	}
	select {
	case sc.outbox <- msg:
	default:
		// Outbox full: the peer is not reading. Drop it.
		go s.dropConn(sc, true)
	}
}

// Disconnect implements node.Env.
func (e *serverEnv) Disconnect(conn node.ConnID) {
	s := (*NodeServer)(e)
	s.mu.Lock()
	sc := s.conns[conn]
	s.mu.Unlock()
	if sc != nil {
		// The node already forgot the peer; do not notify back.
		go s.dropConn(sc, false)
	}
}
