// Package tcpnet carries the Bitcoin wire protocol over real TCP
// sockets, so the crawler and scanner from internal/crawler run
// end-to-end against genuine network I/O rather than in-process stubs.
//
// Three endpoint behaviours cover the paper's node classes:
//
//   - Server: a reachable endpoint that completes the VERSION/VERACK
//     handshake and serves GETADDR from a configured address book
//     (optionally with the §IV-B malicious unreachable-only behaviour);
//   - responsive stub: accepts the TCP connection and immediately closes
//     it (the FIN answer the paper's Scapy probe classifies as an
//     unreachable node running Bitcoin);
//   - silent: no listener at all — dials time out.
package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/wire"
)

// Defaults for socket deadlines.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 2 * time.Second
	// DefaultIOTimeout bounds individual reads and writes.
	DefaultIOTimeout = 5 * time.Second
	// DefaultDialRetries is how many extra connection attempts a Dialer
	// makes after a transient failure (refused/reset/timeout).
	DefaultDialRetries = 2
	// DefaultRetryBackoff is the delay before the first retry; it doubles
	// on each further attempt.
	DefaultRetryBackoff = 100 * time.Millisecond
)

// ServerConfig parameterizes a reachable TCP endpoint.
type ServerConfig struct {
	// Net is the wire network magic (SimNet default).
	Net wire.BitcoinNet
	// Self is the address the server advertises in handshakes and
	// self-ADDR; when zero it is filled from the listener address.
	Self wire.NetAddress
	// Book is the address set served to GETADDR, paged at min(23%,
	// 1000) per response like Bitcoin Core.
	Book []wire.NetAddress
	// OmitSelf suppresses the self-advertisement — the malicious flooder
	// behaviour the detection heuristic keys on.
	OmitSelf bool
	// UserAgent is advertised in VERSION.
	UserAgent string
	// IOTimeout bounds per-message socket I/O.
	IOTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Net == 0 {
		c.Net = wire.SimNet
	}
	if c.UserAgent == "" {
		c.UserAgent = "/Satoshi:0.20.1(repro-tcp)/"
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	return c
}

// Server is a reachable wire-protocol endpoint over TCP.
type Server struct {
	cfg      ServerConfig
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts a server listening on listenAddr (use "127.0.0.1:0"
// for an ephemeral port).
func NewServer(cfg ServerConfig, listenAddr string) (*Server, error) {
	cfg = cfg.withDefaults()
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	s := &Server{
		cfg:      cfg,
		listener: l,
		conns:    make(map[net.Conn]struct{}),
	}
	if !s.cfg.Self.Addr.IsValid() {
		if ap, err := netip.ParseAddrPort(l.Addr().String()); err == nil {
			s.cfg.Self = wire.NetAddress{
				Addr:      ap,
				Services:  wire.SFNodeNetwork,
				Timestamp: time.Now(),
			}
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() netip.AddrPort { return s.cfg.Self.Addr }

// Close stops the listener and all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		// Close errors on teardown are expected (peer may have gone).
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// acceptLoop serves connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serve handles one inbound connection: handshake, then request loop. The
// connection owns a pooled Encoder/Decoder pair for its lifetime, so the
// per-message framing path does not allocate. Messages from dec are reused
// per command; serve never retains one across reads.
func (s *Server) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	enc := wire.GetEncoder()
	defer enc.Release()
	dec := wire.GetDecoder()
	defer dec.Release()
	deadline := func() { _ = conn.SetDeadline(time.Now().Add(s.cfg.IOTimeout)) }

	// Expect the initiator's VERSION.
	deadline()
	msg, err := dec.ReadMessage(conn, s.cfg.Net)
	if err != nil {
		return
	}
	if _, ok := msg.(*wire.MsgVersion); !ok {
		return
	}
	// Respond VERSION then VERACK.
	ours := &wire.MsgVersion{
		ProtocolVersion: wire.ProtocolVersion,
		Services:        wire.SFNodeNetwork,
		Timestamp:       time.Now(),
		AddrMe:          s.cfg.Self,
		UserAgent:       s.cfg.UserAgent,
	}
	deadline()
	if _, err := enc.WriteMessage(conn, ours, s.cfg.Net); err != nil {
		return
	}
	deadline()
	if _, err := enc.WriteMessage(conn, &wire.MsgVerAck{}, s.cfg.Net); err != nil {
		return
	}

	cursor := 0
	pong := &wire.MsgPong{}
	reply := &wire.MsgAddr{}
	var pageBuf []wire.NetAddress
	for {
		deadline()
		msg, err := dec.ReadMessage(conn, s.cfg.Net)
		if err != nil {
			if errors.Is(err, wire.ErrUnknownCommand) {
				continue // skip and keep serving
			}
			return
		}
		switch m := msg.(type) {
		case *wire.MsgVerAck:
			// Handshake complete; nothing to do.
		case *wire.MsgPing:
			pong.Nonce = m.Nonce
			deadline()
			if _, err := enc.WriteMessage(conn, pong, s.cfg.Net); err != nil {
				return
			}
		case *wire.MsgGetAddr:
			pageBuf = s.page(&cursor, pageBuf[:0])
			reply.AddrList = pageBuf
			deadline()
			if _, err := enc.WriteMessage(conn, reply, s.cfg.Net); err != nil {
				return
			}
		default:
			// Ignore everything else; the crawler only needs ADDR.
		}
	}
}

// page appends the next GETADDR response slice to out, advancing the
// cursor; a drained book repeats its first page (Algorithm 1's stop
// condition). Callers reuse out across pages — the previous page must be
// fully written to the socket first.
func (s *Server) page(cursor *int, out []wire.NetAddress) []wire.NetAddress {
	book := s.cfg.Book
	if !s.cfg.OmitSelf {
		out = append(out, s.cfg.Self)
	}
	if len(book) == 0 {
		return out
	}
	size := len(book) * 23 / 100
	if size > wire.MaxAddrPerMsg-len(out) {
		size = wire.MaxAddrPerMsg - len(out)
	}
	if size < 1 {
		size = 1
	}
	if *cursor >= len(book) {
		end := size
		if end > len(book) {
			end = len(book)
		}
		return append(out, book[:end]...)
	}
	end := *cursor + size
	if end > len(book) {
		end = len(book)
	}
	out = append(out, book[*cursor:end]...)
	*cursor = end
	return out
}

// ResponsiveStub listens and immediately closes every accepted
// connection — the unreachable-but-running-Bitcoin behaviour the scanner
// classifies as responsive.
type ResponsiveStub struct {
	listener net.Listener
	wg       sync.WaitGroup
}

// NewResponsiveStub starts a stub on listenAddr.
func NewResponsiveStub(listenAddr string) (*ResponsiveStub, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	s := &ResponsiveStub{listener: l}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Read nothing; close immediately (FIN).
			_ = conn.Close()
		}
	}()
	return s, nil
}

// Addr returns the stub's listening address.
func (s *ResponsiveStub) Addr() netip.AddrPort {
	ap, err := netip.ParseAddrPort(s.listener.Addr().String())
	if err != nil {
		return netip.AddrPort{}
	}
	return ap
}

// Close stops the stub.
func (s *ResponsiveStub) Close() error {
	err := s.listener.Close()
	s.wg.Wait()
	return err
}
