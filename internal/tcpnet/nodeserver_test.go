package tcpnet

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/crawler"
	"repro/internal/node"
	"repro/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// newNodeServer starts a full node over loopback with fast maintenance
// cadence for testing.
func newNodeServer(t *testing.T, genesis *wire.MsgBlock, seeds []wire.NetAddress) *NodeServer {
	t.Helper()
	cfg := node.Config{
		Reachable:       true,
		Genesis:         genesis,
		SeedAddrs:       seeds,
		ConnectInterval: 50 * time.Millisecond,
	}
	s, err := NewNodeServer(cfg, wire.SimNet, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Logf("close: %v", err)
		}
	})
	return s
}

func TestNodeServerHandshakeOverTCP(t *testing.T) {
	genesis := chain.GenesisBlock("tcp-node-test")
	a := newNodeServer(t, genesis, nil)
	seeds := []wire.NetAddress{{
		Addr: a.Addr(), Services: wire.SFNodeNetwork, Timestamp: time.Now(),
	}}
	b := newNodeServer(t, genesis, seeds)

	waitFor(t, 10*time.Second, "outbound handshake", func() bool {
		var out int
		b.Do(func(n *node.Node) { out, _, _ = n.ConnCounts() })
		return out == 1
	})
	waitFor(t, 10*time.Second, "inbound registered at A", func() bool {
		var in int
		a.Do(func(n *node.Node) { _, in, _ = n.ConnCounts() })
		return in == 1
	})
	// B must have promoted A into its tried table.
	var tried bool
	b.Do(func(n *node.Node) { tried = n.AddrMan().InTried(a.Addr()) })
	if !tried {
		t.Error("peer not promoted to tried after real-TCP handshake")
	}
}

func TestNodeServerBlockPropagationOverTCP(t *testing.T) {
	genesis := chain.GenesisBlock("tcp-node-test")
	a := newNodeServer(t, genesis, nil)
	b := newNodeServer(t, genesis, []wire.NetAddress{{
		Addr: a.Addr(), Services: wire.SFNodeNetwork, Timestamp: time.Now(),
	}})
	waitFor(t, 10*time.Second, "connection", func() bool {
		var out int
		b.Do(func(n *node.Node) { out, _, _ = n.ConnCounts() })
		return out == 1
	})
	a.Do(func(n *node.Node) {
		if _, err := n.MineBlock(0); err != nil {
			t.Errorf("mine: %v", err)
		}
	})
	waitFor(t, 10*time.Second, "block propagation", func() bool {
		var h int32
		b.Do(func(n *node.Node) { h = n.Chain().Height() })
		return h == 1
	})
}

func TestNodeServerTxPropagationOverTCP(t *testing.T) {
	genesis := chain.GenesisBlock("tcp-node-test")
	a := newNodeServer(t, genesis, nil)
	b := newNodeServer(t, genesis, []wire.NetAddress{{
		Addr: a.Addr(), Services: wire.SFNodeNetwork, Timestamp: time.Now(),
	}})
	waitFor(t, 10*time.Second, "connection", func() bool {
		var out int
		b.Do(func(n *node.Node) { out, _, _ = n.ConnCounts() })
		return out == 1
	})
	tx := &wire.MsgTx{
		Version: 2,
		TxIn:    []wire.TxIn{{Sequence: 7, SignatureScript: []byte{9}}},
		TxOut:   []wire.TxOut{{Value: 123, PkScript: []byte{0x51}}},
	}
	h := tx.TxHash()
	b.Do(func(n *node.Node) { n.SubmitTx(tx) })
	waitFor(t, 10*time.Second, "tx propagation", func() bool {
		var have bool
		a.Do(func(n *node.Node) { have = n.Mempool().Have(h) })
		return have
	})
}

func TestNodeServerAnswersCrawler(t *testing.T) {
	// The real crawler (Algorithm 1) must be able to drain a live
	// NodeServer's address tables over TCP.
	genesis := chain.GenesisBlock("tcp-node-test")
	seeds := make([]wire.NetAddress, 30)
	for i := range seeds {
		seeds[i] = wire.NetAddress{
			Addr: netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{172, 18, 0, byte(i + 1)}), 8333),
			Services:  wire.SFNodeNetwork,
			Timestamp: time.Now(),
		}
	}
	s := newNodeServer(t, genesis, seeds)
	c := crawler.New(crawler.Config{}, &Dialer{})
	snap, err := c.Crawl(context.Background(), time.Now(), []netip.AddrPort{s.Addr()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := snap.Reports[s.Addr()]
	if rep == nil || !rep.Connected {
		t.Fatal("crawler could not connect to the live node")
	}
	if !rep.SentOwnAddr {
		t.Error("node did not self-advertise in its ADDR response")
	}
	if rep.TotalSent < 5 {
		t.Errorf("crawler drained only %d addresses", rep.TotalSent)
	}
}
