package tcpnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"syscall"
	"time"

	"repro/internal/crawler"
	"repro/internal/wire"
)

// Dialer implements crawler.Dialer over real TCP: it connects, performs
// the VERSION/VERACK handshake, and exposes GETADDR→ADDR exchanges.
type Dialer struct {
	// Net is the wire network magic (SimNet default).
	Net wire.BitcoinNet
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// IOTimeout bounds per-message socket I/O.
	IOTimeout time.Duration
	// UserAgent is advertised in VERSION.
	UserAgent string
	// DialRetries bounds additional connection attempts after a transient
	// failure (refused, reset, or timed out). Zero means
	// DefaultDialRetries; negative disables retrying. Handshake failures
	// are never retried — only the TCP connect is.
	DialRetries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// further attempt (zero → DefaultRetryBackoff).
	RetryBackoff time.Duration

	// dialFn and sleepFn are test seams; nil selects the real
	// net.DialTimeout and time.Sleep.
	dialFn  func(addr string, timeout time.Duration) (net.Conn, error)
	sleepFn func(time.Duration)
}

var _ crawler.Dialer = (*Dialer)(nil)

func (d *Dialer) defaults() (wire.BitcoinNet, time.Duration, time.Duration, string) {
	network := d.Net
	if network == 0 {
		network = wire.SimNet
	}
	dt := d.DialTimeout
	if dt == 0 {
		dt = DefaultDialTimeout
	}
	iot := d.IOTimeout
	if iot == 0 {
		iot = DefaultIOTimeout
	}
	ua := d.UserAgent
	if ua == "" {
		ua = "/repro-crawler:1.0/"
	}
	return network, dt, iot, ua
}

// transientDialError reports whether a connect failure is worth
// retrying: the endpoint exists but refused/reset us, or the attempt
// timed out. Permanent conditions (unroutable address, bad argument)
// fail immediately.
func transientDialError(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr) && netErr.Timeout()
}

// connect establishes the TCP connection, retrying transient failures
// with bounded exponential backoff.
func (d *Dialer) connect(addr netip.AddrPort, dialTimeout time.Duration) (net.Conn, error) {
	retries := d.DialRetries
	if retries == 0 {
		retries = DefaultDialRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := d.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	dial := d.dialFn
	if dial == nil {
		dial = func(a string, to time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", a, to)
		}
	}
	sleep := d.sleepFn
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			sleep(backoff << (attempt - 1))
		}
		conn, err := dial(addr.String(), dialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if !transientDialError(err) {
			break
		}
	}
	return nil, lastErr
}

// Dial implements crawler.Dialer.
func (d *Dialer) Dial(addr netip.AddrPort) (crawler.Session, error) {
	network, dialTimeout, ioTimeout, ua := d.defaults()
	conn, err := d.connect(addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %v: %w", addr, err)
	}
	sess := &tcpSession{
		conn:      conn,
		remote:    addr,
		net:       network,
		ioTimeout: ioTimeout,
		enc:       wire.GetEncoder(),
		dec:       wire.GetDecoder(),
	}
	if err := sess.handshake(ua); err != nil {
		_ = sess.Close()
		return nil, fmt.Errorf("tcpnet: handshake with %v: %w", addr, err)
	}
	return sess, nil
}

// tcpSession is a live crawl connection. It owns a pooled Encoder/Decoder
// pair for its lifetime so per-message framing does not allocate; both are
// returned to their pools by Close.
type tcpSession struct {
	conn      net.Conn
	remote    netip.AddrPort
	net       wire.BitcoinNet
	ioTimeout time.Duration
	enc       *wire.Encoder
	dec       *wire.Decoder
}

var _ crawler.Session = (*tcpSession)(nil)

func (s *tcpSession) deadline() { _ = s.conn.SetDeadline(time.Now().Add(s.ioTimeout)) }

// handshake performs the initiator side of VERSION/VERACK.
func (s *tcpSession) handshake(userAgent string) error {
	ver := &wire.MsgVersion{
		ProtocolVersion: wire.ProtocolVersion,
		Timestamp:       time.Now(),
		UserAgent:       userAgent,
	}
	s.deadline()
	if _, err := s.enc.WriteMessage(s.conn, ver, s.net); err != nil {
		return err
	}
	s.deadline()
	if _, err := s.enc.WriteMessage(s.conn, &wire.MsgVerAck{}, s.net); err != nil {
		return err
	}
	// Expect the responder's VERSION then VERACK (order may interleave
	// with other control messages).
	sawVersion, sawVerack := false, false
	for !sawVersion || !sawVerack {
		s.deadline()
		msg, err := s.dec.ReadMessage(s.conn, s.net)
		if err != nil {
			if errors.Is(err, wire.ErrUnknownCommand) {
				continue
			}
			return err
		}
		switch msg.(type) {
		case *wire.MsgVersion:
			sawVersion = true
		case *wire.MsgVerAck:
			sawVerack = true
		}
	}
	return nil
}

// Remote implements crawler.Session.
func (s *tcpSession) Remote() netip.AddrPort { return s.remote }

// GetAddr implements crawler.Session: one GETADDR→ADDR exchange. The
// returned slice is the session's reused decode buffer — valid until the
// next GetAddr or Close, per the crawler.Session contract.
func (s *tcpSession) GetAddr() ([]wire.NetAddress, error) {
	s.deadline()
	if _, err := s.enc.WriteMessage(s.conn, &wire.MsgGetAddr{}, s.net); err != nil {
		return nil, err
	}
	for {
		s.deadline()
		msg, err := s.dec.ReadMessage(s.conn, s.net)
		if err != nil {
			if errors.Is(err, wire.ErrUnknownCommand) {
				continue
			}
			return nil, err
		}
		if addr, ok := msg.(*wire.MsgAddr); ok {
			return addr.AddrList, nil
		}
		// Skip unrelated traffic (pings, invs).
	}
}

// Close implements crawler.Session.
func (s *tcpSession) Close() error {
	if s.enc != nil {
		s.enc.Release()
		s.enc = nil
	}
	if s.dec != nil {
		s.dec.Release()
		s.dec = nil
	}
	return s.conn.Close()
}

// Prober implements crawler.Prober over TCP, mirroring the paper's Scapy
// probe semantics:
//
//   - connection refused or reset → the host is up but not accepting:
//     responsive (running Bitcoin behind NAT, it answers with RST/FIN);
//   - accepted but closed before completing a handshake → responsive;
//   - accepted and handshake completes → reachable;
//   - timeout / no route → silent.
type Prober struct {
	// Net is the wire network magic (SimNet default).
	Net wire.BitcoinNet
	// DialTimeout bounds the probe.
	DialTimeout time.Duration
	// IOTimeout bounds the handshake attempt after connecting.
	IOTimeout time.Duration
}

var _ crawler.Prober = (*Prober)(nil)

// Probe implements crawler.Prober.
func (p *Prober) Probe(addr netip.AddrPort) (crawler.ProbeOutcome, error) {
	dialTimeout := p.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = DefaultDialTimeout
	}
	ioTimeout := p.IOTimeout
	if ioTimeout == 0 {
		ioTimeout = DefaultIOTimeout
	}
	network := p.Net
	if network == 0 {
		network = wire.SimNet
	}
	conn, err := net.DialTimeout("tcp", addr.String(), dialTimeout)
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
			return crawler.ProbeResponsive, nil
		}
		var netErr net.Error
		if errors.As(err, &netErr) && netErr.Timeout() {
			return crawler.ProbeSilent, nil
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return crawler.ProbeSilent, nil
		}
		// Unroutable and friends: treat as silent rather than failing
		// the scan.
		return crawler.ProbeSilent, nil
	}
	defer func() { _ = conn.Close() }()
	// Send the VER probe and see whether the peer completes a handshake
	// or slams the connection shut.
	_ = conn.SetDeadline(time.Now().Add(ioTimeout))
	ver := &wire.MsgVersion{
		ProtocolVersion: wire.ProtocolVersion,
		Timestamp:       time.Now(),
		UserAgent:       "/repro-scanner:1.0/",
	}
	enc := wire.GetEncoder()
	if _, err := enc.WriteMessage(conn, ver, network); err != nil {
		enc.Release()
		return crawler.ProbeResponsive, nil // write failed: closed on us
	}
	enc.Release()
	dec := wire.GetDecoder()
	defer dec.Release()
	msg, err := dec.ReadMessage(conn, network)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.Is(err, syscall.ECONNRESET) {
			return crawler.ProbeResponsive, nil // FIN/RST after accept
		}
		var netErr net.Error
		if errors.As(err, &netErr) && netErr.Timeout() {
			return crawler.ProbeSilent, nil
		}
		return crawler.ProbeResponsive, nil
	}
	if _, ok := msg.(*wire.MsgVersion); ok {
		return crawler.ProbeReachable, nil
	}
	return crawler.ProbeResponsive, nil
}
