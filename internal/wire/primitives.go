package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Little-endian helpers over fixed buffers. These avoid the interface
// allocations of binary.Read/Write on the hot encode/decode paths.
//
// Each helper carries a concrete fast path: writes recognize the
// Encoder's *frameBuilder and append in place; reads recognize
// *bytes.Reader (the Decoder's payload reader) and copy straight out of
// it. The fast paths matter because a fixed-size scratch array passed
// through an io.Writer/io.Reader interface call escapes to the heap —
// exactly the per-field allocation this package is meant to avoid. The
// slow paths keep their scratch in separate functions so the escape does
// not leak into the fast path's frame.

func putUint16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func putUint32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getUint16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }
func getUint32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getUint64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// readFull copies exactly len(p) bytes from a *bytes.Reader with
// io.ReadFull's error contract, without the interface indirection that
// would force p's backing array to the heap at the caller.
func readFull(br *bytes.Reader, p []byte) error {
	n, _ := br.Read(p)
	if n < len(p) {
		if n == 0 {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	return nil
}

func writeUint8(w io.Writer, v uint8) error {
	if fb, ok := w.(*frameBuilder); ok {
		fb.buf = append(fb.buf, v)
		return nil
	}
	return writeUint8Slow(w, v)
}

func writeUint8Slow(w io.Writer, v uint8) error {
	_, err := w.Write([]byte{v})
	return err
}

func readUint8(r io.Reader) (uint8, error) {
	if br, ok := r.(*bytes.Reader); ok {
		v, err := br.ReadByte()
		return v, err
	}
	return readUint8Slow(r)
}

func readUint8Slow(r io.Reader) (uint8, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func writeUint16(w io.Writer, v uint16) error {
	if fb, ok := w.(*frameBuilder); ok {
		fb.buf = append(fb.buf, byte(v), byte(v>>8))
		return nil
	}
	return writeUint16Slow(w, v)
}

func writeUint16Slow(w io.Writer, v uint16) error {
	var b [2]byte
	putUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint16(r io.Reader) (uint16, error) {
	if br, ok := r.(*bytes.Reader); ok {
		var b [2]byte
		if err := readFull(br, b[:]); err != nil {
			return 0, err
		}
		return getUint16(b[:]), nil
	}
	return readUint16Slow(r)
}

func readUint16Slow(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return getUint16(b[:]), nil
}

func writeUint32(w io.Writer, v uint32) error {
	if fb, ok := w.(*frameBuilder); ok {
		fb.buf = append(fb.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		return nil
	}
	return writeUint32Slow(w, v)
}

func writeUint32Slow(w io.Writer, v uint32) error {
	var b [4]byte
	putUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	if br, ok := r.(*bytes.Reader); ok {
		var b [4]byte
		if err := readFull(br, b[:]); err != nil {
			return 0, err
		}
		return getUint32(b[:]), nil
	}
	return readUint32Slow(r)
}

func readUint32Slow(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return getUint32(b[:]), nil
}

func writeUint64(w io.Writer, v uint64) error {
	if fb, ok := w.(*frameBuilder); ok {
		fb.buf = append(fb.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		return nil
	}
	return writeUint64Slow(w, v)
}

func writeUint64Slow(w io.Writer, v uint64) error {
	var b [8]byte
	putUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	if br, ok := r.(*bytes.Reader); ok {
		var b [8]byte
		if err := readFull(br, b[:]); err != nil {
			return 0, err
		}
		return getUint64(b[:]), nil
	}
	return readUint64Slow(r)
}

func readUint64Slow(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return getUint64(b[:]), nil
}

// WriteVarInt writes a Bitcoin variable-length integer: values below 0xfd
// encode as one byte; larger values use a 0xfd/0xfe/0xff discriminator
// followed by 2/4/8 little-endian bytes.
func WriteVarInt(w io.Writer, v uint64) error {
	switch {
	case v < 0xfd:
		return writeUint8(w, uint8(v))
	case v <= 0xffff:
		if err := writeUint8(w, 0xfd); err != nil {
			return err
		}
		return writeUint16(w, uint16(v))
	case v <= 0xffffffff:
		if err := writeUint8(w, 0xfe); err != nil {
			return err
		}
		return writeUint32(w, uint32(v))
	default:
		if err := writeUint8(w, 0xff); err != nil {
			return err
		}
		return writeUint64(w, v)
	}
}

// ReadVarInt reads a Bitcoin variable-length integer. Non-canonical
// encodings (a wider form used for a value that fits a narrower one) are
// rejected, matching Bitcoin Core's strict mode.
func ReadVarInt(r io.Reader) (uint64, error) {
	disc, err := readUint8(r)
	if err != nil {
		return 0, err
	}
	switch disc {
	case 0xfd:
		v, err := readUint16(r)
		if err != nil {
			return 0, err
		}
		if v < 0xfd {
			return 0, fmt.Errorf("wire: non-canonical varint %d as uint16", v)
		}
		return uint64(v), nil
	case 0xfe:
		v, err := readUint32(r)
		if err != nil {
			return 0, err
		}
		if v <= 0xffff {
			return 0, fmt.Errorf("wire: non-canonical varint %d as uint32", v)
		}
		return uint64(v), nil
	case 0xff:
		v, err := readUint64(r)
		if err != nil {
			return 0, err
		}
		if v <= 0xffffffff {
			return 0, fmt.Errorf("wire: non-canonical varint %d as uint64", v)
		}
		return v, nil
	default:
		return uint64(disc), nil
	}
}

// VarIntSerializeSize returns the encoded size of v in bytes.
func VarIntSerializeSize(v uint64) int {
	switch {
	case v < 0xfd:
		return 1
	case v <= 0xffff:
		return 3
	case v <= 0xffffffff:
		return 5
	default:
		return 9
	}
}

// maxVarStringLen caps variable strings well below the payload limit; the
// longest legitimate string on the wire is a user agent.
const maxVarStringLen = 16 * 1024

// WriteVarString writes a length-prefixed string.
func WriteVarString(w io.Writer, s string) error {
	if err := WriteVarInt(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadVarString reads a length-prefixed string, rejecting lengths above
// maxVarStringLen to bound allocation from hostile peers.
func ReadVarString(r io.Reader) (string, error) {
	n, err := ReadVarInt(r)
	if err != nil {
		return "", err
	}
	if n > maxVarStringLen {
		return "", fmt.Errorf("wire: var string of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ServiceFlag identifies the services a node advertises in VERSION and
// ADDR messages.
type ServiceFlag uint64

// Service flags (subset relevant to the paper).
const (
	// SFNodeNetwork indicates a full node serving the whole chain.
	SFNodeNetwork ServiceFlag = 1 << 0
	// SFNodeWitness indicates segregated-witness support.
	SFNodeWitness ServiceFlag = 1 << 3
	// SFNodeNetworkLimited indicates a pruned node serving recent blocks.
	SFNodeNetworkLimited ServiceFlag = 1 << 10
)

// NetAddress is a network address as carried in ADDR messages: a last-seen
// timestamp, advertised services, a 16-byte IP (IPv4 mapped into IPv6),
// and a big-endian port.
type NetAddress struct {
	// Timestamp is the last-seen time the advertising peer claims. Not
	// present in the VERSION message encoding.
	Timestamp time.Time
	// Services advertised for the address.
	Services ServiceFlag
	// Addr is the IP address and port.
	Addr netip.AddrPort
}

// NewNetAddress builds a NetAddress from an AddrPort with the given
// services and timestamp.
func NewNetAddress(ap netip.AddrPort, services ServiceFlag, ts time.Time) NetAddress {
	return NetAddress{Timestamp: ts, Services: services, Addr: ap}
}

// writeNetAddress encodes na; the timestamp is included iff withTS.
func writeNetAddress(w io.Writer, na *NetAddress, withTS bool) error {
	if withTS {
		if err := writeUint32(w, uint32(na.Timestamp.Unix())); err != nil {
			return err
		}
	}
	if err := writeUint64(w, uint64(na.Services)); err != nil {
		return err
	}
	// Port is big-endian on the wire, unlike everything else.
	port := na.Addr.Port()
	if fb, ok := w.(*frameBuilder); ok {
		ip := na.Addr.Addr().As16()
		fb.buf = append(fb.buf, ip[:]...)
		fb.buf = append(fb.buf, byte(port>>8), byte(port))
		return nil
	}
	return writeNetAddressSlow(w, na, port)
}

func writeNetAddressSlow(w io.Writer, na *NetAddress, port uint16) error {
	ip := na.Addr.Addr().As16()
	if _, err := w.Write(ip[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(port >> 8), byte(port)}); err != nil {
		return err
	}
	return nil
}

// readNetAddress decodes into na; the timestamp is expected iff withTS.
func readNetAddress(r io.Reader, na *NetAddress, withTS bool) error {
	if withTS {
		ts, err := readUint32(r)
		if err != nil {
			return err
		}
		na.Timestamp = time.Unix(int64(ts), 0).UTC()
	}
	svc, err := readUint64(r)
	if err != nil {
		return err
	}
	na.Services = ServiceFlag(svc)
	var ip [16]byte
	var portBuf [2]byte
	if br, ok := r.(*bytes.Reader); ok {
		if err := readFull(br, ip[:]); err != nil {
			return err
		}
		if err := readFull(br, portBuf[:]); err != nil {
			return err
		}
	} else {
		// The slow path returns by value so its heap-escaping scratch does
		// not drag the fast path's stack arrays along with it.
		var err error
		if ip, portBuf, err = readNetAddressTailSlow(r); err != nil {
			return err
		}
	}
	port := uint16(portBuf[0])<<8 | uint16(portBuf[1])
	addr := netip.AddrFrom16(ip)
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	na.Addr = netip.AddrPortFrom(addr, port)
	return nil
}

func readNetAddressTailSlow(r io.Reader) ([16]byte, [2]byte, error) {
	var ip [16]byte
	var portBuf [2]byte
	if _, err := io.ReadFull(r, ip[:]); err != nil {
		return ip, portBuf, err
	}
	_, err := io.ReadFull(r, portBuf[:])
	return ip, portBuf, err
}

// InvType identifies the kind of object an inventory vector refers to.
type InvType uint32

// Inventory vector types.
const (
	// InvTypeError is the error/ignore type.
	InvTypeError InvType = 0
	// InvTypeTx refers to a transaction.
	InvTypeTx InvType = 1
	// InvTypeBlock refers to a full block.
	InvTypeBlock InvType = 2
	// InvTypeCmpctBlock refers to a compact block (BIP-152).
	InvTypeCmpctBlock InvType = 4
)

// String returns a human-readable inventory type name.
func (t InvType) String() string {
	switch t {
	case InvTypeError:
		return "ERROR"
	case InvTypeTx:
		return "MSG_TX"
	case InvTypeBlock:
		return "MSG_BLOCK"
	case InvTypeCmpctBlock:
		return "MSG_CMPCT_BLOCK"
	default:
		return fmt.Sprintf("InvType(%d)", uint32(t))
	}
}
