package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/chainhash"
)

// mustAddrPort parses an addr:port string or fails the test.
func mustAddrPort(t *testing.T, s string) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return ap
}

func testNetAddress(t *testing.T) NetAddress {
	t.Helper()
	return NewNetAddress(mustAddrPort(t, "203.0.113.7:8333"),
		SFNodeNetwork, time.Unix(1586000000, 0).UTC())
}

// roundTrip frames msg over an in-memory buffer and decodes it back,
// asserting structural equality.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
		t.Fatalf("WriteMessage(%s): %v", msg.Command(), err)
	}
	got, err := ReadMessage(&buf, SimNet)
	if err != nil {
		t.Fatalf("ReadMessage(%s): %v", msg.Command(), err)
	}
	if got.Command() != msg.Command() {
		t.Fatalf("command = %q, want %q", got.Command(), msg.Command())
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("%s round trip mismatch:\n got %#v\nwant %#v",
			msg.Command(), got, msg)
	}
	return got
}

func TestVersionRoundTrip(t *testing.T) {
	na := testNetAddress(t)
	msg := &MsgVersion{
		ProtocolVersion: ProtocolVersion,
		Services:        SFNodeNetwork | SFNodeWitness,
		Timestamp:       time.Unix(1586312000, 0).UTC(),
		AddrYou:         NetAddress{Services: SFNodeNetwork, Addr: na.Addr},
		AddrMe:          NetAddress{Services: SFNodeNetwork, Addr: mustAddrPort(t, "198.51.100.3:8333")},
		Nonce:           0xdeadbeefcafe,
		UserAgent:       "/Satoshi:0.20.1/",
		StartHeight:     630000,
		Relay:           true,
	}
	roundTrip(t, msg)
}

func TestVersionMissingRelayFlag(t *testing.T) {
	// Old peers omit the trailing relay byte; decoding must default to
	// relay=true rather than failing.
	msg := &MsgVersion{
		ProtocolVersion: 60001,
		Timestamp:       time.Unix(1586312000, 0).UTC(),
		UserAgent:       "/old/",
	}
	var buf bytes.Buffer
	if err := msg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-1] // strip relay byte
	var got MsgVersion
	if err := got.Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("decode without relay byte: %v", err)
	}
	if !got.Relay {
		t.Error("Relay should default to true when the byte is absent")
	}
}

func TestEmptyPayloadMessages(t *testing.T) {
	roundTrip(t, &MsgVerAck{})
	roundTrip(t, &MsgGetAddr{})
}

func TestPingPongRoundTrip(t *testing.T) {
	roundTrip(t, &MsgPing{Nonce: 42})
	roundTrip(t, &MsgPong{Nonce: 42})
}

func TestRejectRoundTrip(t *testing.T) {
	roundTrip(t, &MsgReject{Cmd: CmdTx, Code: 0x10, Reason: "bad-txns"})
}

func TestAddrRoundTrip(t *testing.T) {
	msg := &MsgAddr{}
	for i := 0; i < 25; i++ {
		ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 1}), uint16(8333+i))
		msg.AddrList = append(msg.AddrList,
			NewNetAddress(ap, SFNodeNetwork, time.Unix(int64(1586000000+i), 0).UTC()))
	}
	roundTrip(t, msg)
}

func TestAddrIPv6RoundTrip(t *testing.T) {
	msg := &MsgAddr{AddrList: []NetAddress{
		NewNetAddress(mustAddrPort(t, "[2001:db8::1]:8333"), SFNodeNetwork,
			time.Unix(1586000000, 0).UTC()),
	}}
	roundTrip(t, msg)
}

func TestAddrTooMany(t *testing.T) {
	msg := &MsgAddr{AddrList: make([]NetAddress, MaxAddrPerMsg+1)}
	var buf bytes.Buffer
	if err := msg.Encode(&buf); !errors.Is(err, ErrTooMany) {
		t.Errorf("encode err = %v, want ErrTooMany", err)
	}
}

func TestAddrDecodeTooMany(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarInt(&buf, MaxAddrPerMsg+1); err != nil {
		t.Fatal(err)
	}
	var msg MsgAddr
	if err := msg.Decode(&buf); !errors.Is(err, ErrTooMany) {
		t.Errorf("decode err = %v, want ErrTooMany", err)
	}
}

func makeHash(seed byte) (h [32]byte) {
	for i := range h {
		h[i] = seed + byte(i)
	}
	return h
}

func TestInvRoundTrip(t *testing.T) {
	msg := &MsgInv{}
	msg.InvList = []InvVect{
		{Type: InvTypeTx, Hash: makeHash(1)},
		{Type: InvTypeBlock, Hash: makeHash(2)},
		{Type: InvTypeCmpctBlock, Hash: makeHash(3)},
	}
	roundTrip(t, msg)

	gd := &MsgGetData{}
	gd.InvList = msg.InvList
	roundTrip(t, gd)

	nf := &MsgNotFound{}
	nf.InvList = msg.InvList[:1]
	roundTrip(t, nf)
}

func makeTestTx(seed byte) MsgTx {
	return MsgTx{
		Version: 2,
		TxIn: []TxIn{{
			PreviousOutPoint: OutPoint{Hash: makeHash(seed), Index: uint32(seed)},
			SignatureScript:  []byte{0x01, seed},
			Sequence:         0xffffffff,
		}},
		TxOut: []TxOut{{
			Value:    50_0000_0000,
			PkScript: []byte{0x76, 0xa9, seed},
		}},
		LockTime: 0,
	}
}

func TestTxRoundTrip(t *testing.T) {
	tx := makeTestTx(7)
	roundTrip(t, &tx)
}

func TestTxSerializeSizeMatchesEncoding(t *testing.T) {
	tx := makeTestTx(9)
	var buf bytes.Buffer
	if err := tx.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got := tx.SerializeSize(); got != buf.Len() {
		t.Errorf("SerializeSize = %d, encoded %d bytes", got, buf.Len())
	}
}

func TestTxHashDeterministic(t *testing.T) {
	a, b := makeTestTx(5), makeTestTx(5)
	if a.TxHash() != b.TxHash() {
		t.Error("identical transactions must share a hash")
	}
	c := makeTestTx(6)
	if a.TxHash() == c.TxHash() {
		t.Error("distinct transactions must not share a hash")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	blk := &MsgBlock{
		Header: BlockHeader{
			Version:    4,
			PrevBlock:  makeHash(11),
			MerkleRoot: makeHash(12),
			Timestamp:  1586312000,
			Bits:       0x1d00ffff,
			Nonce:      12345,
		},
		Transactions: []MsgTx{makeTestTx(1), makeTestTx(2), makeTestTx(3)},
	}
	roundTrip(t, blk)
}

func TestBlockSerializeSizeMatchesEncoding(t *testing.T) {
	blk := &MsgBlock{
		Header:       BlockHeader{Version: 4},
		Transactions: []MsgTx{makeTestTx(1), makeTestTx(2)},
	}
	var buf bytes.Buffer
	if err := blk.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got := blk.SerializeSize(); got != buf.Len() {
		t.Errorf("SerializeSize = %d, encoded %d bytes", got, buf.Len())
	}
}

func TestBlockHeaderHashStable(t *testing.T) {
	h := BlockHeader{Version: 4, Timestamp: 1586312000, Bits: 0x1d00ffff}
	if h.BlockHash() != h.BlockHash() {
		t.Error("header hash must be deterministic")
	}
	h2 := h
	h2.Nonce++
	if h.BlockHash() == h2.BlockHash() {
		t.Error("nonce change must change the hash")
	}
}

func TestHeadersRoundTrip(t *testing.T) {
	msg := &MsgHeaders{Headers: []BlockHeader{
		{Version: 4, PrevBlock: makeHash(1), Timestamp: 1},
		{Version: 4, PrevBlock: makeHash(2), Timestamp: 2},
	}}
	roundTrip(t, msg)
}

func TestGetHeadersRoundTrip(t *testing.T) {
	msg := &MsgGetHeaders{
		ProtocolVersion:    ProtocolVersion,
		BlockLocatorHashes: []chainhash.Hash{makeHash(1), makeHash(9)},
		HashStop:           makeHash(30),
	}
	roundTrip(t, msg)
}

func TestSendCmpctRoundTrip(t *testing.T) {
	roundTrip(t, &MsgSendCmpct{Announce: true, Version: 1})
	roundTrip(t, &MsgSendCmpct{Announce: false, Version: 2})
}

func TestCmpctBlockRoundTrip(t *testing.T) {
	msg := &MsgCmpctBlock{
		Header: BlockHeader{Version: 4, PrevBlock: makeHash(3)},
		Nonce:  99,
		ShortIDs: []ShortID{
			{1, 2, 3, 4, 5, 6},
			{7, 8, 9, 10, 11, 12},
		},
		PrefilledTxs: []PrefilledTx{
			{Index: 0, Tx: makeTestTx(1)},
			{Index: 3, Tx: makeTestTx(2)},
		},
	}
	roundTrip(t, msg)
	if got := msg.TotalTxCount(); got != 4 {
		t.Errorf("TotalTxCount = %d, want 4", got)
	}
}

func TestCmpctBlockBadPrefilledOrder(t *testing.T) {
	msg := &MsgCmpctBlock{
		PrefilledTxs: []PrefilledTx{
			{Index: 3, Tx: makeTestTx(1)},
			{Index: 3, Tx: makeTestTx(2)}, // duplicate index
		},
	}
	var buf bytes.Buffer
	if err := msg.Encode(&buf); err == nil {
		t.Error("non-increasing prefilled indexes: want error")
	}
}

func TestGetBlockTxnRoundTrip(t *testing.T) {
	msg := &MsgGetBlockTxn{
		BlockHash: makeHash(8),
		Indexes:   []uint16{0, 2, 7, 100},
	}
	roundTrip(t, msg)
}

func TestBlockTxnRoundTrip(t *testing.T) {
	msg := &MsgBlockTxn{
		BlockHash:    makeHash(8),
		Transactions: []MsgTx{makeTestTx(1), makeTestTx(4)},
	}
	roundTrip(t, msg)
}

func TestComputeShortIDProperties(t *testing.T) {
	blockHash := [32]byte(makeHash(1))
	a := ComputeShortID(blockHash, 7, makeHash(2))
	b := ComputeShortID(blockHash, 7, makeHash(2))
	if a != b {
		t.Error("short ID must be deterministic")
	}
	if a == ComputeShortID(blockHash, 8, makeHash(2)) {
		t.Error("nonce must alter the short ID")
	}
	if a == ComputeShortID(blockHash, 7, makeHash(3)) {
		t.Error("txid must alter the short ID")
	}
}

func TestReadMessageBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &MsgPing{Nonce: 1}, MainNet); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, SimNet); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadMessageBadChecksum(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &MsgPing{Nonce: 1}, SimNet); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // corrupt payload
	if _, err := ReadMessage(bytes.NewReader(raw), SimNet); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestReadMessageUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	hdr := &messageHeader{magic: SimNet, command: "bogus"}
	hdr.checksum = [4]byte{0x5d, 0xf6, 0xe0, 0xe2} // checksum of empty payload
	if _, err := writeMessageHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, SimNet); !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("err = %v, want ErrUnknownCommand", err)
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &MsgPing{Nonce: 1}, SimNet); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]
	_, err := ReadMessage(bytes.NewReader(raw), SimNet)
	if err == nil {
		t.Fatal("truncated payload: want error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadMessageOversizedHeader(t *testing.T) {
	hdr := &messageHeader{magic: SimNet, command: CmdPing, length: MaxMessagePayload + 1}
	var buf bytes.Buffer
	if _, err := writeMessageHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, SimNet); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestWriteMessageStream(t *testing.T) {
	// Multiple messages over one stream must decode in order.
	var buf bytes.Buffer
	msgs := []Message{
		&MsgPing{Nonce: 1},
		&MsgGetAddr{},
		&MsgPong{Nonce: 2},
	}
	for _, m := range msgs {
		if _, err := WriteMessage(&buf, m, SimNet); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf, SimNet)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Command() != want.Command() {
			t.Errorf("message %d command = %s, want %s", i, got.Command(), want.Command())
		}
	}
}

func TestVarIntRoundTrip(t *testing.T) {
	values := []uint64{
		0, 1, 0xfc, 0xfd, 0xfe, 0xffff, 0x10000,
		0xffffffff, 0x100000000, 1<<64 - 1,
	}
	for _, v := range values {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatalf("write %d: %v", v, err)
		}
		if buf.Len() != VarIntSerializeSize(v) {
			t.Errorf("value %d: size %d, VarIntSerializeSize %d",
				v, buf.Len(), VarIntSerializeSize(v))
		}
		got, err := ReadVarInt(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestVarIntNonCanonical(t *testing.T) {
	cases := [][]byte{
		{0xfd, 0x01, 0x00},                               // 1 as uint16
		{0xfe, 0x01, 0x00, 0x00, 0x00},                   // 1 as uint32
		{0xff, 0x01, 0, 0, 0, 0, 0, 0, 0},                // 1 as uint64
		{0xfe, 0xff, 0xff, 0x00, 0x00},                   // 0xffff as uint32
		{0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0, 0, 0x00}, // fits uint32
	}
	for i, raw := range cases {
		if _, err := ReadVarInt(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: non-canonical varint accepted", i)
		}
	}
}

func TestVarStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "/Satoshi:0.20.1/", string(make([]byte, 300))} {
		var buf bytes.Buffer
		if err := WriteVarString(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadVarString(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestVarStringTooLong(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarInt(&buf, maxVarStringLen+1); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVarString(&buf); err == nil {
		t.Error("oversized var string accepted")
	}
}

func TestNetAddressIPv4Mapping(t *testing.T) {
	// IPv4 addresses travel as 4-in-6 and must come back as plain IPv4.
	na := NewNetAddress(mustAddrPort(t, "192.0.2.1:8333"), SFNodeNetwork,
		time.Unix(1586000000, 0).UTC())
	var buf bytes.Buffer
	if err := writeNetAddress(&buf, &na, true); err != nil {
		t.Fatal(err)
	}
	var got NetAddress
	if err := readNetAddress(&buf, &got, true); err != nil {
		t.Fatal(err)
	}
	if !got.Addr.Addr().Is4() {
		t.Errorf("decoded address %v should be IPv4", got.Addr)
	}
	if got.Addr != na.Addr {
		t.Errorf("addr = %v, want %v", got.Addr, na.Addr)
	}
}

func TestInvTypeString(t *testing.T) {
	if InvTypeTx.String() != "MSG_TX" {
		t.Errorf("InvTypeTx = %q", InvTypeTx.String())
	}
	if InvType(77).String() == "" {
		t.Error("unknown InvType should still render")
	}
}

func TestBitcoinNetString(t *testing.T) {
	for _, n := range []BitcoinNet{MainNet, TestNet3, SimNet, BitcoinNet(1)} {
		if n.String() == "" {
			t.Errorf("BitcoinNet(%#x).String() empty", uint32(n))
		}
	}
}

// Property: VarInt round-trips for random values.
func TestVarIntRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatal(err)
		}
		got, err := ReadVarInt(&buf)
		if err != nil || got != v {
			t.Fatalf("round trip %d -> %d (err %v)", v, got, err)
		}
	}
}

// Property: random ADDR messages round-trip through full framing.
func TestAddrRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		n := rng.Intn(60)
		msg := &MsgAddr{AddrList: make([]NetAddress, n)}
		for j := range msg.AddrList {
			var ipBytes [4]byte
			rng.Read(ipBytes[:])
			if ipBytes[0] == 0 {
				ipBytes[0] = 1 // avoid 0.x addresses for realism
			}
			ap := netip.AddrPortFrom(netip.AddrFrom4(ipBytes), uint16(rng.Intn(65535)+1))
			msg.AddrList[j] = NewNetAddress(ap, ServiceFlag(rng.Uint64()),
				time.Unix(rng.Int63n(2_000_000_000), 0).UTC())
		}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMessage(&buf, SimNet)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("iteration %d: mismatch", i)
		}
	}
}

// Property: random transactions round-trip and their declared size is
// exact.
func TestTxRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		tx := MsgTx{Version: int32(rng.Int31()), LockTime: rng.Uint32()}
		for j := 0; j < rng.Intn(4); j++ {
			script := make([]byte, rng.Intn(80))
			rng.Read(script)
			var h [32]byte
			rng.Read(h[:])
			tx.TxIn = append(tx.TxIn, TxIn{
				PreviousOutPoint: OutPoint{Hash: h, Index: rng.Uint32()},
				SignatureScript:  script,
				Sequence:         rng.Uint32(),
			})
		}
		for j := 0; j < rng.Intn(4); j++ {
			script := make([]byte, rng.Intn(40))
			rng.Read(script)
			tx.TxOut = append(tx.TxOut, TxOut{
				Value:    rng.Int63(),
				PkScript: script,
			})
		}
		var buf bytes.Buffer
		if err := tx.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != tx.SerializeSize() {
			t.Fatalf("iteration %d: size mismatch %d vs %d", i, buf.Len(), tx.SerializeSize())
		}
		var got MsgTx
		if err := got.Decode(&buf); err != nil {
			t.Fatal(err)
		}
		// Normalize nil vs empty slices for comparison.
		if got.TxHash() != tx.TxHash() {
			t.Fatalf("iteration %d: hash mismatch", i)
		}
	}
}

func BenchmarkWriteMessageAddr(b *testing.B) {
	msg := &MsgAddr{AddrList: make([]NetAddress, MaxAddrPerMsg)}
	for i := range msg.AddrList {
		ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{byte(i), byte(i >> 8), 1, 1}), 8333)
		msg.AddrList[i] = NewNetAddress(ap, SFNodeNetwork, time.Unix(1586000000, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMessageAddr(b *testing.B) {
	msg := &MsgAddr{AddrList: make([]NetAddress, MaxAddrPerMsg)}
	for i := range msg.AddrList {
		ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{byte(i), byte(i >> 8), 1, 1}), 8333)
		msg.AddrList[i] = NewNetAddress(ap, SFNodeNetwork, time.Unix(1586000000, 0))
	}
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMessage(bytes.NewReader(raw), SimNet); err != nil {
			b.Fatal(err)
		}
	}
}
