package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/chainhash"
)

// limitedWriter fails after n bytes, exercising encoder error paths.
type limitedWriter struct {
	n int
}

var errWriterFull = errors.New("writer full")

func (w *limitedWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errWriterFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errWriterFull
	}
	w.n -= len(p)
	return len(p), nil
}

// TestEncodeShortWriter drives every message encoder against writers that
// fail at each possible byte offset: encoders must propagate the error,
// never panic or report success.
func TestEncodeShortWriter(t *testing.T) {
	messages := []Message{
		&MsgVersion{UserAgent: "/short/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 3)},
		&MsgInv{invList{InvList: make([]InvVect, 2)}},
		&MsgGetData{invList{InvList: make([]InvVect, 2)}},
		&MsgNotFound{invList{InvList: make([]InvVect, 1)}},
		&MsgTx{Version: 1, TxIn: []TxIn{{SignatureScript: []byte{1}}},
			TxOut: []TxOut{{Value: 5, PkScript: []byte{2}}}},
		&MsgBlock{Header: BlockHeader{Version: 4},
			Transactions: []MsgTx{{Version: 1}}},
		&MsgHeaders{Headers: make([]BlockHeader, 2)},
		&MsgGetHeaders{BlockLocatorHashes: make([]chainhash.Hash, 2)},
		&MsgPing{Nonce: 1},
		&MsgPong{Nonce: 2},
		&MsgReject{Cmd: "tx", Code: 1, Reason: "nope"},
		&MsgSendCmpct{Announce: true, Version: 1},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 2),
			PrefilledTxs: []PrefilledTx{{Index: 0, Tx: MsgTx{Version: 1}}}},
		&MsgGetBlockTxn{Indexes: []uint16{0, 4}},
		&MsgBlockTxn{Transactions: []MsgTx{{Version: 1}}},
	}
	for _, msg := range messages {
		var full bytes.Buffer
		if err := msg.Encode(&full); err != nil {
			t.Fatalf("%s baseline encode: %v", msg.Command(), err)
		}
		for limit := 0; limit < full.Len(); limit++ {
			if err := msg.Encode(&limitedWriter{n: limit}); err == nil {
				t.Errorf("%s: encode succeeded with a writer capped at %d/%d bytes",
					msg.Command(), limit, full.Len())
			}
		}
	}
}

// TestWriteMessageShortWriter covers framing-layer write failures.
func TestWriteMessageShortWriter(t *testing.T) {
	msg := &MsgPing{Nonce: 3}
	var full bytes.Buffer
	if _, err := WriteMessage(&full, msg, SimNet); err != nil {
		t.Fatal(err)
	}
	for limit := 0; limit < full.Len(); limit++ {
		if _, err := WriteMessage(&limitedWriter{n: limit}, msg, SimNet); err == nil {
			t.Errorf("WriteMessage succeeded with writer capped at %d/%d", limit, full.Len())
		}
	}
}

// TestWriteMessageRejectsOversizedCommand guards the header invariant.
func TestWriteMessageRejectsOversizedCommand(t *testing.T) {
	bad := badCommandMsg{}
	if _, err := WriteMessage(&bytes.Buffer{}, bad, SimNet); err == nil {
		t.Error("13-byte command accepted")
	}
}

type badCommandMsg struct{}

func (badCommandMsg) Command() string        { return "thirteenchars" }
func (badCommandMsg) Encode(io.Writer) error { return nil }
func (badCommandMsg) Decode(io.Reader) error { return nil }
