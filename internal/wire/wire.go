// Package wire implements the Bitcoin P2P wire protocol: message framing
// with the 24-byte header (network magic, command, payload length,
// double-SHA256 checksum), the variable-length integer and string
// primitives, network addresses with timestamps, and the protocol messages
// the paper's measurement apparatus depends on (VERSION/VERACK handshake,
// ADDR/GETADDR address gossip, INV/GETDATA/TX/BLOCK data relay, the
// BIP-152 compact-block family, and PING/PONG keepalives).
//
// Encoding follows the Bitcoin protocol documentation; integers are
// little-endian unless noted. Every message round-trips through
// Encode/Decode, and ReadMessage/WriteMessage frame messages over any
// io.Reader/io.Writer, which lets the same implementation serve both the
// real-TCP transport and in-memory tests.
package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/chainhash"
)

// BitcoinNet identifies which Bitcoin network a message belongs to via the
// 4-byte magic prefix of the message header.
type BitcoinNet uint32

// Network magic values.
const (
	// MainNet is the main Bitcoin network magic.
	MainNet BitcoinNet = 0xd9b4bef9
	// TestNet3 is the test network (version 3) magic.
	TestNet3 BitcoinNet = 0x0709110b
	// SimNet is the magic used by this repository's simulated networks so
	// stray mainnet traffic can never be confused with test traffic.
	SimNet BitcoinNet = 0x12141c16
)

// String returns a human-readable network name.
func (n BitcoinNet) String() string {
	switch n {
	case MainNet:
		return "mainnet"
	case TestNet3:
		return "testnet3"
	case SimNet:
		return "simnet"
	default:
		return fmt.Sprintf("BitcoinNet(%#x)", uint32(n))
	}
}

// Protocol constants.
const (
	// ProtocolVersion is the protocol version this implementation speaks,
	// matching Bitcoin Core v0.20.1 as analyzed by the paper.
	ProtocolVersion uint32 = 70015

	// MaxMessagePayload is the largest permitted payload (4 MB, matching
	// Bitcoin Core's MAX_PROTOCOL_MESSAGE_LENGTH).
	MaxMessagePayload = 4 * 1024 * 1024

	// CommandSize is the fixed size of the command field in the header.
	CommandSize = 12

	// headerSize is magic(4) + command(12) + length(4) + checksum(4).
	headerSize = 24

	// MaxAddrPerMsg is the maximum number of addresses in one ADDR
	// message, the 1000-address cap the paper's crawler exploits.
	MaxAddrPerMsg = 1000

	// MaxInvPerMsg is the maximum number of inventory vectors per INV.
	MaxInvPerMsg = 50000

	// DefaultPort is the well-known Bitcoin port; the paper reports 95.78%
	// of reachable nodes using it.
	DefaultPort = 8333
)

// Message command strings.
const (
	CmdVersion     = "version"
	CmdVerAck      = "verack"
	CmdAddr        = "addr"
	CmdGetAddr     = "getaddr"
	CmdInv         = "inv"
	CmdGetData     = "getdata"
	CmdTx          = "tx"
	CmdBlock       = "block"
	CmdHeaders     = "headers"
	CmdGetHeaders  = "getheaders"
	CmdPing        = "ping"
	CmdPong        = "pong"
	CmdSendCmpct   = "sendcmpct"
	CmdCmpctBlock  = "cmpctblock"
	CmdGetBlockTxn = "getblocktxn"
	CmdBlockTxn    = "blocktxn"
	CmdReject      = "reject"
	CmdNotFound    = "notfound"
)

// Message is the interface implemented by every wire protocol message.
type Message interface {
	// Command returns the protocol command string for the message.
	Command() string
	// Encode writes the message payload to w.
	Encode(w io.Writer) error
	// Decode reads the message payload from r.
	Decode(r io.Reader) error
}

// Error sentinels for framing failures; use errors.Is to test.
var (
	// ErrBadMagic indicates a header with an unexpected network magic.
	ErrBadMagic = errors.New("wire: bad network magic")
	// ErrBadChecksum indicates a payload whose checksum does not match
	// the header.
	ErrBadChecksum = errors.New("wire: bad payload checksum")
	// ErrPayloadTooLarge indicates a header declaring a payload beyond
	// MaxMessagePayload.
	ErrPayloadTooLarge = errors.New("wire: payload exceeds maximum")
	// ErrUnknownCommand indicates an unrecognized command string.
	ErrUnknownCommand = errors.New("wire: unknown command")
	// ErrTooMany indicates a count field exceeding a per-message limit.
	ErrTooMany = errors.New("wire: count exceeds message limit")
)

// makeEmptyMessage returns a zero message value for a command string.
func makeEmptyMessage(command string) (Message, error) {
	switch command {
	case CmdVersion:
		return &MsgVersion{}, nil
	case CmdVerAck:
		return &MsgVerAck{}, nil
	case CmdAddr:
		return &MsgAddr{}, nil
	case CmdGetAddr:
		return &MsgGetAddr{}, nil
	case CmdInv:
		return &MsgInv{}, nil
	case CmdGetData:
		return &MsgGetData{}, nil
	case CmdNotFound:
		return &MsgNotFound{}, nil
	case CmdTx:
		return &MsgTx{}, nil
	case CmdBlock:
		return &MsgBlock{}, nil
	case CmdHeaders:
		return &MsgHeaders{}, nil
	case CmdGetHeaders:
		return &MsgGetHeaders{}, nil
	case CmdPing:
		return &MsgPing{}, nil
	case CmdPong:
		return &MsgPong{}, nil
	case CmdSendCmpct:
		return &MsgSendCmpct{}, nil
	case CmdCmpctBlock:
		return &MsgCmpctBlock{}, nil
	case CmdGetBlockTxn:
		return &MsgGetBlockTxn{}, nil
	case CmdBlockTxn:
		return &MsgBlockTxn{}, nil
	case CmdReject:
		return &MsgReject{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownCommand, command)
	}
}

// messageHeader is the fixed 24-byte frame preceding every payload.
type messageHeader struct {
	magic    BitcoinNet
	command  string
	length   uint32
	checksum [4]byte
}

// writeMessageHeader writes the 24-byte header and returns the number of
// bytes actually written, so short-write totals stay truthful.
func writeMessageHeader(w io.Writer, h *messageHeader) (int, error) {
	var buf [headerSize]byte
	putUint32(buf[0:4], uint32(h.magic))
	copy(buf[4:4+CommandSize], h.command) // zero-padded by array init
	putUint32(buf[16:20], h.length)
	copy(buf[20:24], h.checksum[:])
	return w.Write(buf[:])
}

// internCommand returns the canonical constant for a known command name so
// header parsing does not allocate a string per message. Unknown commands
// (the rare path; they fail makeEmptyMessage anyway) fall back to a fresh
// allocation. Comparing a []byte converted to string against constants is
// allocation-free in Go.
func internCommand(cmd []byte) string {
	switch string(cmd) {
	case CmdVersion:
		return CmdVersion
	case CmdVerAck:
		return CmdVerAck
	case CmdAddr:
		return CmdAddr
	case CmdGetAddr:
		return CmdGetAddr
	case CmdInv:
		return CmdInv
	case CmdGetData:
		return CmdGetData
	case CmdTx:
		return CmdTx
	case CmdBlock:
		return CmdBlock
	case CmdHeaders:
		return CmdHeaders
	case CmdGetHeaders:
		return CmdGetHeaders
	case CmdPing:
		return CmdPing
	case CmdPong:
		return CmdPong
	case CmdSendCmpct:
		return CmdSendCmpct
	case CmdCmpctBlock:
		return CmdCmpctBlock
	case CmdGetBlockTxn:
		return CmdGetBlockTxn
	case CmdBlockTxn:
		return CmdBlockTxn
	case CmdReject:
		return CmdReject
	case CmdNotFound:
		return CmdNotFound
	default:
		return string(cmd)
	}
}

// readMessageHeader parses the 24-byte header using caller-provided
// scratch; a Decoder passes its own field so the buffer does not escape to
// the heap on every message.
func readMessageHeader(r io.Reader, buf *[headerSize]byte) (messageHeader, error) {
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return messageHeader{}, err
	}
	h := messageHeader{
		magic:  BitcoinNet(getUint32(buf[0:4])),
		length: getUint32(buf[16:20]),
	}
	// Command is NUL-padded to 12 bytes.
	cmd := buf[4 : 4+CommandSize]
	if i := bytes.IndexByte(cmd, 0); i >= 0 {
		cmd = cmd[:i]
	}
	h.command = internCommand(cmd)
	copy(h.checksum[:], buf[20:24])
	return h, nil
}

// WriteMessage frames msg with a header for network net and writes it to w.
// It returns the total number of bytes written. Internally it borrows a
// pooled Encoder; hold an Encoder directly to skip the pool round-trip.
func WriteMessage(w io.Writer, msg Message, net BitcoinNet) (int, error) {
	e := GetEncoder()
	n, err := e.WriteMessage(w, msg, net)
	e.Release()
	return n, err
}

// writeMessageBuffered is the legacy two-pass framing path: encode the
// payload into a bytes.Buffer, write the header, write the payload. It is
// kept as the reference implementation for FuzzEncoderParity, which pins
// the pooled Encoder to this byte stream.
func writeMessageBuffered(w io.Writer, msg Message, net BitcoinNet) (int, error) {
	var payload bytes.Buffer
	if err := msg.Encode(&payload); err != nil {
		return 0, fmt.Errorf("wire: encode %s: %w", msg.Command(), err)
	}
	if payload.Len() > MaxMessagePayload {
		return 0, fmt.Errorf("%w: %s payload is %d bytes", ErrPayloadTooLarge,
			msg.Command(), payload.Len())
	}
	if len(msg.Command()) > CommandSize {
		return 0, fmt.Errorf("wire: command %q exceeds %d bytes",
			msg.Command(), CommandSize)
	}
	hdr := &messageHeader{
		magic:    net,
		command:  msg.Command(),
		length:   uint32(payload.Len()),
		checksum: chainhash.Checksum(payload.Bytes()),
	}
	hn, err := writeMessageHeader(w, hdr)
	if err != nil {
		return hn, fmt.Errorf("wire: write header: %w", err)
	}
	n, err := w.Write(payload.Bytes())
	if err != nil {
		return hn + n, fmt.Errorf("wire: write payload: %w", err)
	}
	return hn + n, nil
}

// ReadMessage reads one framed message for network net from r. It verifies
// the magic and checksum and decodes the payload into the appropriate
// message type. Unknown commands return ErrUnknownCommand (wrapped), with
// the payload consumed, so callers may skip them and continue.
//
// The returned message is freshly allocated and caller-owned. Internally a
// pooled Decoder supplies the payload scratch; hold a Decoder directly for
// the full zero-allocation path (with its message-reuse caveat).
func ReadMessage(r io.Reader, net BitcoinNet) (Message, error) {
	d := GetDecoder()
	msg, err := d.readMessage(r, net, false)
	d.Release()
	return msg, err
}

// readMessageBuffered is the legacy allocation-per-message read path, kept
// as the reference implementation for FuzzEncoderParity.
func readMessageBuffered(r io.Reader, net BitcoinNet) (Message, error) {
	var scratch [headerSize]byte
	hdr, err := readMessageHeader(r, &scratch)
	if err != nil {
		return nil, err
	}
	if hdr.magic != net {
		return nil, fmt.Errorf("%w: got %#x, want %#x", ErrBadMagic,
			uint32(hdr.magic), uint32(net))
	}
	if hdr.length > MaxMessagePayload {
		return nil, fmt.Errorf("%w: header declares %d bytes",
			ErrPayloadTooLarge, hdr.length)
	}
	payload := make([]byte, hdr.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read %s payload: %w", hdr.command, err)
	}
	if sum := chainhash.Checksum(payload); sum != hdr.checksum {
		return nil, fmt.Errorf("%w: %s payload", ErrBadChecksum, hdr.command)
	}
	msg, err := makeEmptyMessage(hdr.command)
	if err != nil {
		return nil, err
	}
	if err := msg.Decode(bytes.NewReader(payload)); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", hdr.command, err)
	}
	return msg, nil
}
