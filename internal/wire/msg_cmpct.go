package wire

import (
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/chainhash"
)

// MsgSendCmpct negotiates BIP-152 compact block relay with a peer. The
// paper's §IV-C explains how compact-block relay entangles transaction
// relay delay with block reconstruction delay.
type MsgSendCmpct struct {
	// Announce requests that new blocks be announced via CMPCTBLOCK
	// instead of INV when true.
	Announce bool
	// Version of the compact block protocol (1 for non-witness).
	Version uint64
}

var _ Message = (*MsgSendCmpct)(nil)

// Command implements Message.
func (m *MsgSendCmpct) Command() string { return CmdSendCmpct }

// Encode implements Message.
func (m *MsgSendCmpct) Encode(w io.Writer) error {
	b := uint8(0)
	if m.Announce {
		b = 1
	}
	if err := writeUint8(w, b); err != nil {
		return err
	}
	return writeUint64(w, m.Version)
}

// Decode implements Message.
func (m *MsgSendCmpct) Decode(r io.Reader) error {
	b, err := readUint8(r)
	if err != nil {
		return err
	}
	m.Announce = b != 0
	m.Version, err = readUint64(r)
	return err
}

// ShortIDSize is the size of a BIP-152 short transaction ID in bytes.
const ShortIDSize = 6

// ShortID is a 6-byte compact transaction identifier.
type ShortID [ShortIDSize]byte

// ComputeShortID derives the short ID of txid for a compact block keyed by
// (blockHash, nonce).
//
// Deviation from BIP-152: the BIP specifies SipHash-2-4 keyed by
// SHA256(header||nonce); the Go standard library does not expose SipHash,
// so we key a single SHA256 over (blockHash, nonce, txid) and truncate.
// The property the measurements rely on — a cheap 6-byte identifier with
// negligible collision probability within one block — is preserved.
func ComputeShortID(blockHash chainhash.Hash, nonce uint64, txid chainhash.Hash) ShortID {
	var buf [32 + 8 + 32]byte
	copy(buf[:32], blockHash[:])
	putUint64(buf[32:40], nonce)
	copy(buf[40:], txid[:])
	sum := sha256.Sum256(buf[:])
	var id ShortID
	copy(id[:], sum[:ShortIDSize])
	return id
}

// PrefilledTx is a transaction included verbatim in a compact block,
// indexed by its position (differentially encoded on the wire).
type PrefilledTx struct {
	// Index is the absolute position of the transaction in the block.
	Index uint16
	// Tx is the included transaction.
	Tx MsgTx
}

// maxShortIDsPerBlock bounds compact-block decoding allocation.
const maxShortIDsPerBlock = maxTxPerBlock

// MsgCmpctBlock is a BIP-152 compact block: the header, a nonce keying the
// short IDs, the short IDs of transactions the receiver should already
// hold in its mempool, and prefilled transactions (always including the
// coinbase).
type MsgCmpctBlock struct {
	// Header of the announced block.
	Header BlockHeader
	// Nonce keys the short ID computation.
	Nonce uint64
	// ShortIDs of the block's non-prefilled transactions, in block order.
	ShortIDs []ShortID
	// PrefilledTxs are transactions sent in full.
	PrefilledTxs []PrefilledTx
}

var _ Message = (*MsgCmpctBlock)(nil)

// Command implements Message.
func (m *MsgCmpctBlock) Command() string { return CmdCmpctBlock }

// Encode implements Message.
func (m *MsgCmpctBlock) Encode(w io.Writer) error {
	if err := m.Header.Encode(w); err != nil {
		return err
	}
	if err := writeUint64(w, m.Nonce); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.ShortIDs))); err != nil {
		return err
	}
	for i := range m.ShortIDs {
		if _, err := w.Write(m.ShortIDs[i][:]); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(m.PrefilledTxs))); err != nil {
		return err
	}
	// Prefilled indexes are differentially encoded: each stored index is
	// the gap since the previous prefilled index minus one.
	prev := -1
	for i := range m.PrefilledTxs {
		p := &m.PrefilledTxs[i]
		diff := int(p.Index) - prev - 1
		if diff < 0 {
			return fmt.Errorf("wire: prefilled tx indexes not strictly increasing at %d", p.Index)
		}
		if err := WriteVarInt(w, uint64(diff)); err != nil {
			return err
		}
		if err := p.Tx.Encode(w); err != nil {
			return err
		}
		prev = int(p.Index)
	}
	return nil
}

// Decode implements Message.
func (m *MsgCmpctBlock) Decode(r io.Reader) error {
	if err := m.Header.Decode(r); err != nil {
		return err
	}
	var err error
	if m.Nonce, err = readUint64(r); err != nil {
		return err
	}
	nIDs, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nIDs > maxShortIDsPerBlock {
		return fmt.Errorf("%w: %d short IDs", ErrTooMany, nIDs)
	}
	m.ShortIDs = make([]ShortID, nIDs)
	for i := range m.ShortIDs {
		if _, err := io.ReadFull(r, m.ShortIDs[i][:]); err != nil {
			return err
		}
	}
	nPre, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nPre > maxShortIDsPerBlock {
		return fmt.Errorf("%w: %d prefilled transactions", ErrTooMany, nPre)
	}
	m.PrefilledTxs = make([]PrefilledTx, nPre)
	prev := -1
	for i := range m.PrefilledTxs {
		diff, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		idx := prev + 1 + int(diff)
		if idx > int(^uint16(0)) {
			return fmt.Errorf("wire: prefilled tx index %d overflows", idx)
		}
		m.PrefilledTxs[i].Index = uint16(idx)
		if err := m.PrefilledTxs[i].Tx.Decode(r); err != nil {
			return err
		}
		prev = idx
	}
	return nil
}

// BlockHash returns the announced block's identifier.
func (m *MsgCmpctBlock) BlockHash() chainhash.Hash { return m.Header.BlockHash() }

// TotalTxCount returns the number of transactions the full block holds.
func (m *MsgCmpctBlock) TotalTxCount() int {
	return len(m.ShortIDs) + len(m.PrefilledTxs)
}

// MsgGetBlockTxn requests, by index, the transactions of a compact block
// the receiver could not reconstruct from its mempool.
type MsgGetBlockTxn struct {
	// BlockHash identifies the compact block being completed.
	BlockHash chainhash.Hash
	// Indexes are the absolute positions of the missing transactions,
	// strictly increasing (differentially encoded on the wire).
	Indexes []uint16
}

var _ Message = (*MsgGetBlockTxn)(nil)

// Command implements Message.
func (m *MsgGetBlockTxn) Command() string { return CmdGetBlockTxn }

// Encode implements Message.
func (m *MsgGetBlockTxn) Encode(w io.Writer) error {
	if _, err := w.Write(m.BlockHash[:]); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.Indexes))); err != nil {
		return err
	}
	prev := -1
	for _, idx := range m.Indexes {
		diff := int(idx) - prev - 1
		if diff < 0 {
			return fmt.Errorf("wire: getblocktxn indexes not strictly increasing at %d", idx)
		}
		if err := WriteVarInt(w, uint64(diff)); err != nil {
			return err
		}
		prev = int(idx)
	}
	return nil
}

// Decode implements Message.
func (m *MsgGetBlockTxn) Decode(r io.Reader) error {
	if _, err := io.ReadFull(r, m.BlockHash[:]); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxShortIDsPerBlock {
		return fmt.Errorf("%w: %d requested indexes", ErrTooMany, count)
	}
	m.Indexes = make([]uint16, count)
	prev := -1
	for i := range m.Indexes {
		diff, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		idx := prev + 1 + int(diff)
		if idx > int(^uint16(0)) {
			return fmt.Errorf("wire: getblocktxn index %d overflows", idx)
		}
		m.Indexes[i] = uint16(idx)
		prev = idx
	}
	return nil
}

// MsgBlockTxn supplies the transactions requested by GETBLOCKTXN.
type MsgBlockTxn struct {
	// BlockHash identifies the compact block being completed.
	BlockHash chainhash.Hash
	// Transactions requested, in index order.
	Transactions []MsgTx
}

var _ Message = (*MsgBlockTxn)(nil)

// Command implements Message.
func (m *MsgBlockTxn) Command() string { return CmdBlockTxn }

// Encode implements Message.
func (m *MsgBlockTxn) Encode(w io.Writer) error {
	if _, err := w.Write(m.BlockHash[:]); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.Transactions))); err != nil {
		return err
	}
	for i := range m.Transactions {
		if err := m.Transactions[i].Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Message.
func (m *MsgBlockTxn) Decode(r io.Reader) error {
	if _, err := io.ReadFull(r, m.BlockHash[:]); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxShortIDsPerBlock {
		return fmt.Errorf("%w: %d transactions", ErrTooMany, count)
	}
	m.Transactions = make([]MsgTx, count)
	for i := range m.Transactions {
		if err := m.Transactions[i].Decode(r); err != nil {
			return err
		}
	}
	return nil
}
