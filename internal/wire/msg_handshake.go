package wire

import (
	"io"
	"time"
)

// MsgVersion is the first message a peer sends when a connection is
// established; the paper's scanner (Algorithm 2) probes unreachable nodes
// with exactly this "VER" message and classifies them as responsive by the
// way they close the connection.
type MsgVersion struct {
	// ProtocolVersion the sender speaks.
	ProtocolVersion uint32
	// Services advertised by the sender.
	Services ServiceFlag
	// Timestamp at the sender (seconds precision on the wire).
	Timestamp time.Time
	// AddrYou is the receiver's address as seen by the sender.
	AddrYou NetAddress
	// AddrMe is the sender's own address.
	AddrMe NetAddress
	// Nonce detects self-connections.
	Nonce uint64
	// UserAgent identifies the software.
	UserAgent string
	// StartHeight is the sender's chain tip height.
	StartHeight int32
	// Relay requests transaction relay (BIP-37).
	Relay bool
}

var _ Message = (*MsgVersion)(nil)

// Command implements Message.
func (m *MsgVersion) Command() string { return CmdVersion }

// Encode implements Message.
func (m *MsgVersion) Encode(w io.Writer) error {
	if err := writeUint32(w, m.ProtocolVersion); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(m.Services)); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(m.Timestamp.Unix())); err != nil {
		return err
	}
	if err := writeNetAddress(w, &m.AddrYou, false); err != nil {
		return err
	}
	if err := writeNetAddress(w, &m.AddrMe, false); err != nil {
		return err
	}
	if err := writeUint64(w, m.Nonce); err != nil {
		return err
	}
	if err := WriteVarString(w, m.UserAgent); err != nil {
		return err
	}
	if err := writeUint32(w, uint32(m.StartHeight)); err != nil {
		return err
	}
	relay := uint8(0)
	if m.Relay {
		relay = 1
	}
	return writeUint8(w, relay)
}

// Decode implements Message.
func (m *MsgVersion) Decode(r io.Reader) error {
	var err error
	if m.ProtocolVersion, err = readUint32(r); err != nil {
		return err
	}
	svc, err := readUint64(r)
	if err != nil {
		return err
	}
	m.Services = ServiceFlag(svc)
	ts, err := readUint64(r)
	if err != nil {
		return err
	}
	m.Timestamp = time.Unix(int64(ts), 0).UTC()
	if err := readNetAddress(r, &m.AddrYou, false); err != nil {
		return err
	}
	if err := readNetAddress(r, &m.AddrMe, false); err != nil {
		return err
	}
	if m.Nonce, err = readUint64(r); err != nil {
		return err
	}
	if m.UserAgent, err = ReadVarString(r); err != nil {
		return err
	}
	h, err := readUint32(r)
	if err != nil {
		return err
	}
	m.StartHeight = int32(h)
	relay, err := readUint8(r)
	if err != nil {
		// The relay flag is optional for old protocol versions; absence
		// means relay.
		if err == io.EOF {
			m.Relay = true
			return nil
		}
		return err
	}
	m.Relay = relay != 0
	return nil
}

// MsgVerAck acknowledges a VERSION message and completes the handshake.
type MsgVerAck struct{}

var _ Message = (*MsgVerAck)(nil)

// Command implements Message.
func (m *MsgVerAck) Command() string { return CmdVerAck }

// Encode implements Message.
func (m *MsgVerAck) Encode(io.Writer) error { return nil }

// Decode implements Message.
func (m *MsgVerAck) Decode(io.Reader) error { return nil }

// MsgPing is a keepalive probe carrying a nonce the peer echoes in PONG.
type MsgPing struct {
	// Nonce correlates the eventual PONG.
	Nonce uint64
}

var _ Message = (*MsgPing)(nil)

// Command implements Message.
func (m *MsgPing) Command() string { return CmdPing }

// Encode implements Message.
func (m *MsgPing) Encode(w io.Writer) error { return writeUint64(w, m.Nonce) }

// Decode implements Message.
func (m *MsgPing) Decode(r io.Reader) error {
	var err error
	m.Nonce, err = readUint64(r)
	return err
}

// MsgPong answers a PING, echoing its nonce.
type MsgPong struct {
	// Nonce from the PING being answered.
	Nonce uint64
}

var _ Message = (*MsgPong)(nil)

// Command implements Message.
func (m *MsgPong) Command() string { return CmdPong }

// Encode implements Message.
func (m *MsgPong) Encode(w io.Writer) error { return writeUint64(w, m.Nonce) }

// Decode implements Message.
func (m *MsgPong) Decode(r io.Reader) error {
	var err error
	m.Nonce, err = readUint64(r)
	return err
}

// MsgReject reports a rejected message back to its sender.
type MsgReject struct {
	// Cmd is the command of the rejected message.
	Cmd string
	// Code is the machine-readable rejection code.
	Code uint8
	// Reason is the human-readable rejection reason.
	Reason string
}

var _ Message = (*MsgReject)(nil)

// Command implements Message.
func (m *MsgReject) Command() string { return CmdReject }

// Encode implements Message.
func (m *MsgReject) Encode(w io.Writer) error {
	if err := WriteVarString(w, m.Cmd); err != nil {
		return err
	}
	if err := writeUint8(w, m.Code); err != nil {
		return err
	}
	return WriteVarString(w, m.Reason)
}

// Decode implements Message.
func (m *MsgReject) Decode(r io.Reader) error {
	var err error
	if m.Cmd, err = ReadVarString(r); err != nil {
		return err
	}
	if m.Code, err = readUint8(r); err != nil {
		return err
	}
	m.Reason, err = ReadVarString(r)
	return err
}
