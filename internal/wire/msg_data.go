package wire

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/chainhash"
)

// InvVect is a single inventory vector: a typed object hash.
type InvVect struct {
	// Type of the referenced object.
	Type InvType
	// Hash of the referenced object.
	Hash chainhash.Hash
}

func writeInvVect(w io.Writer, iv *InvVect) error {
	if err := writeUint32(w, uint32(iv.Type)); err != nil {
		return err
	}
	_, err := w.Write(iv.Hash[:])
	return err
}

func readInvVect(r io.Reader, iv *InvVect) error {
	t, err := readUint32(r)
	if err != nil {
		return err
	}
	iv.Type = InvType(t)
	_, err = io.ReadFull(r, iv.Hash[:])
	return err
}

// invList is the shared payload shape of INV, GETDATA, and NOTFOUND.
type invList struct {
	InvList []InvVect
}

func (m *invList) encode(w io.Writer) error {
	if len(m.InvList) > MaxInvPerMsg {
		return fmt.Errorf("%w: %d inventory vectors (max %d)", ErrTooMany,
			len(m.InvList), MaxInvPerMsg)
	}
	if err := WriteVarInt(w, uint64(len(m.InvList))); err != nil {
		return err
	}
	for i := range m.InvList {
		if err := writeInvVect(w, &m.InvList[i]); err != nil {
			return err
		}
	}
	return nil
}

func (m *invList) decode(r io.Reader) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > MaxInvPerMsg {
		return fmt.Errorf("%w: %d inventory vectors (max %d)", ErrTooMany,
			count, MaxInvPerMsg)
	}
	// Reuse capacity when a Decoder recycles this message; every element
	// is fully overwritten below. A fresh message still allocates (even
	// for count 0) so decode results stay identical to the legacy path.
	if m.InvList != nil && cap(m.InvList) >= int(count) {
		m.InvList = m.InvList[:count]
	} else {
		m.InvList = make([]InvVect, count)
	}
	for i := range m.InvList {
		if err := readInvVect(r, &m.InvList[i]); err != nil {
			return err
		}
	}
	return nil
}

// MsgInv announces object availability (transactions, blocks).
type MsgInv struct {
	invList
}

var _ Message = (*MsgInv)(nil)

// Command implements Message.
func (m *MsgInv) Command() string { return CmdInv }

// Encode implements Message.
func (m *MsgInv) Encode(w io.Writer) error { return m.encode(w) }

// Decode implements Message.
func (m *MsgInv) Decode(r io.Reader) error { return m.decode(r) }

// MsgGetData requests objects previously announced by INV.
type MsgGetData struct {
	invList
}

var _ Message = (*MsgGetData)(nil)

// Command implements Message.
func (m *MsgGetData) Command() string { return CmdGetData }

// Encode implements Message.
func (m *MsgGetData) Encode(w io.Writer) error { return m.encode(w) }

// Decode implements Message.
func (m *MsgGetData) Decode(r io.Reader) error { return m.decode(r) }

// MsgNotFound answers a GETDATA for objects the peer no longer has.
type MsgNotFound struct {
	invList
}

var _ Message = (*MsgNotFound)(nil)

// Command implements Message.
func (m *MsgNotFound) Command() string { return CmdNotFound }

// Encode implements Message.
func (m *MsgNotFound) Encode(w io.Writer) error { return m.encode(w) }

// Decode implements Message.
func (m *MsgNotFound) Decode(r io.Reader) error { return m.decode(r) }

// OutPoint references a specific output of a previous transaction.
type OutPoint struct {
	// Hash of the transaction holding the output.
	Hash chainhash.Hash
	// Index of the output within that transaction.
	Index uint32
}

// TxIn is a transaction input.
type TxIn struct {
	// PreviousOutPoint is the output being spent.
	PreviousOutPoint OutPoint
	// SignatureScript unlocks the previous output.
	SignatureScript []byte
	// Sequence is the input sequence number.
	Sequence uint32
}

// TxOut is a transaction output.
type TxOut struct {
	// Value in satoshi.
	Value int64
	// PkScript locks the output.
	PkScript []byte
}

// maxScriptLen bounds script allocation when decoding hostile input.
const maxScriptLen = 10000

// maxTxInOut bounds per-transaction input/output counts when decoding.
const maxTxInOut = 100000

// MsgTx is a Bitcoin transaction in the legacy (pre-segwit) serialization,
// which is sufficient for the relay-delay measurements the paper performs.
type MsgTx struct {
	// Version of the transaction format.
	Version int32
	// TxIn holds the inputs.
	TxIn []TxIn
	// TxOut holds the outputs.
	TxOut []TxOut
	// LockTime is the earliest time/height the tx may be mined.
	LockTime uint32
}

var _ Message = (*MsgTx)(nil)

// Command implements Message.
func (m *MsgTx) Command() string { return CmdTx }

// Encode implements Message.
func (m *MsgTx) Encode(w io.Writer) error {
	if err := writeUint32(w, uint32(m.Version)); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.TxIn))); err != nil {
		return err
	}
	for i := range m.TxIn {
		in := &m.TxIn[i]
		if _, err := w.Write(in.PreviousOutPoint.Hash[:]); err != nil {
			return err
		}
		if err := writeUint32(w, in.PreviousOutPoint.Index); err != nil {
			return err
		}
		if err := writeByteSlice(w, in.SignatureScript); err != nil {
			return err
		}
		if err := writeUint32(w, in.Sequence); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(m.TxOut))); err != nil {
		return err
	}
	for i := range m.TxOut {
		out := &m.TxOut[i]
		if err := writeUint64(w, uint64(out.Value)); err != nil {
			return err
		}
		if err := writeByteSlice(w, out.PkScript); err != nil {
			return err
		}
	}
	return writeUint32(w, m.LockTime)
}

// Decode implements Message.
func (m *MsgTx) Decode(r io.Reader) error {
	v, err := readUint32(r)
	if err != nil {
		return err
	}
	m.Version = int32(v)
	nIn, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nIn > maxTxInOut {
		return fmt.Errorf("%w: %d tx inputs", ErrTooMany, nIn)
	}
	m.TxIn = make([]TxIn, nIn)
	for i := range m.TxIn {
		in := &m.TxIn[i]
		if _, err := io.ReadFull(r, in.PreviousOutPoint.Hash[:]); err != nil {
			return err
		}
		if in.PreviousOutPoint.Index, err = readUint32(r); err != nil {
			return err
		}
		if in.SignatureScript, err = readByteSlice(r); err != nil {
			return err
		}
		if in.Sequence, err = readUint32(r); err != nil {
			return err
		}
	}
	nOut, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nOut > maxTxInOut {
		return fmt.Errorf("%w: %d tx outputs", ErrTooMany, nOut)
	}
	m.TxOut = make([]TxOut, nOut)
	for i := range m.TxOut {
		out := &m.TxOut[i]
		val, err := readUint64(r)
		if err != nil {
			return err
		}
		out.Value = int64(val)
		if out.PkScript, err = readByteSlice(r); err != nil {
			return err
		}
	}
	m.LockTime, err = readUint32(r)
	return err
}

// TxHash returns the double-SHA256 of the serialized transaction, its
// canonical identifier.
func (m *MsgTx) TxHash() chainhash.Hash {
	var buf bytes.Buffer
	// Encoding to a buffer cannot fail.
	_ = m.Encode(&buf)
	return chainhash.DoubleSHA256(buf.Bytes())
}

// SerializeSize returns the number of bytes the transaction occupies on
// the wire.
func (m *MsgTx) SerializeSize() int {
	n := 4 + 4 // version + locktime
	n += VarIntSerializeSize(uint64(len(m.TxIn)))
	for i := range m.TxIn {
		n += 32 + 4 + 4 // prevout hash + index + sequence
		n += VarIntSerializeSize(uint64(len(m.TxIn[i].SignatureScript)))
		n += len(m.TxIn[i].SignatureScript)
	}
	n += VarIntSerializeSize(uint64(len(m.TxOut)))
	for i := range m.TxOut {
		n += 8
		n += VarIntSerializeSize(uint64(len(m.TxOut[i].PkScript)))
		n += len(m.TxOut[i].PkScript)
	}
	return n
}

func writeByteSlice(w io.Writer, b []byte) error {
	if err := WriteVarInt(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readByteSlice(r io.Reader) ([]byte, error) {
	n, err := ReadVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > maxScriptLen {
		return nil, fmt.Errorf("%w: %d-byte script", ErrTooMany, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// BlockHeader is the fixed 80-byte block header.
type BlockHeader struct {
	// Version of the block format.
	Version int32
	// PrevBlock is the hash of the preceding block header.
	PrevBlock chainhash.Hash
	// MerkleRoot commits to the block's transactions.
	MerkleRoot chainhash.Hash
	// Timestamp of block creation (seconds precision on the wire).
	Timestamp uint32
	// Bits is the compact difficulty target.
	Bits uint32
	// Nonce is the proof-of-work nonce.
	Nonce uint32
}

func (h *BlockHeader) fill(buf *[80]byte) {
	putUint32(buf[0:4], uint32(h.Version))
	copy(buf[4:36], h.PrevBlock[:])
	copy(buf[36:68], h.MerkleRoot[:])
	putUint32(buf[68:72], h.Timestamp)
	putUint32(buf[72:76], h.Bits)
	putUint32(buf[76:80], h.Nonce)
}

func (h *BlockHeader) unfill(buf *[80]byte) {
	h.Version = int32(getUint32(buf[0:4]))
	copy(h.PrevBlock[:], buf[4:36])
	copy(h.MerkleRoot[:], buf[36:68])
	h.Timestamp = getUint32(buf[68:72])
	h.Bits = getUint32(buf[72:76])
	h.Nonce = getUint32(buf[76:80])
}

// Encode writes the 80-byte header serialization.
func (h *BlockHeader) Encode(w io.Writer) error {
	if fb, ok := w.(*frameBuilder); ok {
		var buf [80]byte
		h.fill(&buf)
		fb.buf = append(fb.buf, buf[:]...)
		return nil
	}
	return h.encodeSlow(w)
}

func (h *BlockHeader) encodeSlow(w io.Writer) error {
	var buf [80]byte
	h.fill(&buf)
	_, err := w.Write(buf[:])
	return err
}

// Decode reads the 80-byte header serialization.
func (h *BlockHeader) Decode(r io.Reader) error {
	var buf [80]byte
	if br, ok := r.(*bytes.Reader); ok {
		if err := readFull(br, buf[:]); err != nil {
			return err
		}
	} else {
		var err error
		if buf, err = readBlockHeaderSlow(r); err != nil {
			return err
		}
	}
	h.unfill(&buf)
	return nil
}

func readBlockHeaderSlow(r io.Reader) ([80]byte, error) {
	var buf [80]byte
	_, err := io.ReadFull(r, buf[:])
	return buf, err
}

// BlockHash returns the double-SHA256 of the serialized header, the
// block's canonical identifier.
func (h *BlockHeader) BlockHash() chainhash.Hash {
	var buf bytes.Buffer
	_ = h.Encode(&buf)
	return chainhash.DoubleSHA256(buf.Bytes())
}

// maxTxPerBlock bounds block decoding allocation.
const maxTxPerBlock = 1 << 17

// MsgBlock is a full block: header plus transactions.
type MsgBlock struct {
	// Header is the block header.
	Header BlockHeader
	// Transactions in the block, coinbase first.
	Transactions []MsgTx
}

var _ Message = (*MsgBlock)(nil)

// Command implements Message.
func (m *MsgBlock) Command() string { return CmdBlock }

// Encode implements Message.
func (m *MsgBlock) Encode(w io.Writer) error {
	if err := m.Header.Encode(w); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.Transactions))); err != nil {
		return err
	}
	for i := range m.Transactions {
		if err := m.Transactions[i].Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Message.
func (m *MsgBlock) Decode(r io.Reader) error {
	if err := m.Header.Decode(r); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxTxPerBlock {
		return fmt.Errorf("%w: %d transactions in block", ErrTooMany, count)
	}
	m.Transactions = make([]MsgTx, count)
	for i := range m.Transactions {
		if err := m.Transactions[i].Decode(r); err != nil {
			return err
		}
	}
	return nil
}

// BlockHash returns the block's canonical identifier.
func (m *MsgBlock) BlockHash() chainhash.Hash { return m.Header.BlockHash() }

// SerializeSize returns the block's on-wire size in bytes.
func (m *MsgBlock) SerializeSize() int {
	n := 80 + VarIntSerializeSize(uint64(len(m.Transactions)))
	for i := range m.Transactions {
		n += m.Transactions[i].SerializeSize()
	}
	return n
}

// maxHeadersPerMsg is the HEADERS message cap (matches Bitcoin Core).
const maxHeadersPerMsg = 2000

// MsgHeaders delivers block headers in response to GETHEADERS.
type MsgHeaders struct {
	// Headers delivered, each followed on the wire by a zero tx count.
	Headers []BlockHeader
}

var _ Message = (*MsgHeaders)(nil)

// Command implements Message.
func (m *MsgHeaders) Command() string { return CmdHeaders }

// Encode implements Message.
func (m *MsgHeaders) Encode(w io.Writer) error {
	if len(m.Headers) > maxHeadersPerMsg {
		return fmt.Errorf("%w: %d headers (max %d)", ErrTooMany,
			len(m.Headers), maxHeadersPerMsg)
	}
	if err := WriteVarInt(w, uint64(len(m.Headers))); err != nil {
		return err
	}
	for i := range m.Headers {
		if err := m.Headers[i].Encode(w); err != nil {
			return err
		}
		// Headers on the wire carry a trailing varint tx count of zero.
		if err := WriteVarInt(w, 0); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Message.
func (m *MsgHeaders) Decode(r io.Reader) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxHeadersPerMsg {
		return fmt.Errorf("%w: %d headers (max %d)", ErrTooMany,
			count, maxHeadersPerMsg)
	}
	m.Headers = make([]BlockHeader, count)
	for i := range m.Headers {
		if err := m.Headers[i].Decode(r); err != nil {
			return err
		}
		txCount, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		if txCount != 0 {
			return fmt.Errorf("wire: headers message with %d transactions", txCount)
		}
	}
	return nil
}

// maxLocatorHashes caps the block locator length.
const maxLocatorHashes = 101

// MsgGetHeaders requests headers after the most recent known block in a
// locator.
type MsgGetHeaders struct {
	// ProtocolVersion of the requester.
	ProtocolVersion uint32
	// BlockLocatorHashes walk back from the tip at exponentially growing
	// gaps, letting the peer find the fork point.
	BlockLocatorHashes []chainhash.Hash
	// HashStop ends the returned range (zero for as-many-as-possible).
	HashStop chainhash.Hash
}

var _ Message = (*MsgGetHeaders)(nil)

// Command implements Message.
func (m *MsgGetHeaders) Command() string { return CmdGetHeaders }

// Encode implements Message.
func (m *MsgGetHeaders) Encode(w io.Writer) error {
	if len(m.BlockLocatorHashes) > maxLocatorHashes {
		return fmt.Errorf("%w: %d locator hashes (max %d)", ErrTooMany,
			len(m.BlockLocatorHashes), maxLocatorHashes)
	}
	if err := writeUint32(w, m.ProtocolVersion); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(m.BlockLocatorHashes))); err != nil {
		return err
	}
	for i := range m.BlockLocatorHashes {
		if _, err := w.Write(m.BlockLocatorHashes[i][:]); err != nil {
			return err
		}
	}
	_, err := w.Write(m.HashStop[:])
	return err
}

// Decode implements Message.
func (m *MsgGetHeaders) Decode(r io.Reader) error {
	var err error
	if m.ProtocolVersion, err = readUint32(r); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxLocatorHashes {
		return fmt.Errorf("%w: %d locator hashes (max %d)", ErrTooMany,
			count, maxLocatorHashes)
	}
	m.BlockLocatorHashes = make([]chainhash.Hash, count)
	for i := range m.BlockLocatorHashes {
		if _, err := io.ReadFull(r, m.BlockLocatorHashes[i][:]); err != nil {
			return err
		}
	}
	_, err = io.ReadFull(r, m.HashStop[:])
	return err
}
