package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/chainhash"
)

// FuzzReadMessage is a native fuzz target over the frame decoder. Under
// plain `go test` it exercises the seed corpus; under `go test -fuzz` it
// explores mutations. The invariant: ReadMessage never panics, and any
// message it accepts re-encodes through WriteMessage without error.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames of every message family plus garbage.
	seeds := []Message{
		&MsgPing{Nonce: 7},
		&MsgVersion{UserAgent: "/fuzz/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 2)},
		&MsgInv{invList{InvList: make([]InvVect, 1)}},
		&MsgTx{Version: 1, TxIn: []TxIn{{SignatureScript: []byte{1}}}},
		&MsgHeaders{Headers: make([]BlockHeader, 1)},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 1)},
		&MsgGetBlockTxn{Indexes: []uint16{0}},
	}
	for _, msg := range seeds {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data), SimNet)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			t.Fatalf("accepted message %q fails to re-encode: %v", msg.Command(), err)
		}
	})
}

// FuzzVarInt checks the canonical varint round trip under mutation.
func FuzzVarInt(f *testing.F) {
	f.Add([]byte{0x05})
	f.Add([]byte{0xfd, 0xff, 0x00})
	f.Add([]byte{0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadVarInt(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatal(err)
		}
		back, err := ReadVarInt(&buf)
		if err != nil || back != v {
			t.Fatalf("varint %d round trip: %d, %v", v, back, err)
		}
	})
}

// FuzzReadWriteMessage strengthens FuzzReadMessage to a full round-trip
// invariant: any frame the decoder accepts must re-encode, decode again,
// and re-encode to byte-identical output — i.e. one decode/encode pass
// reaches a serialization fixed point. This is what protects the
// persisted trace formats and the simulator's size accounting from
// drifting between encoder and decoder.
func FuzzReadWriteMessage(f *testing.F) {
	seeds := []Message{
		&MsgPing{Nonce: 1},
		&MsgPong{Nonce: 2},
		&MsgVerAck{},
		&MsgGetAddr{},
		&MsgVersion{UserAgent: "/rt/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 3)},
		&MsgInv{invList{InvList: make([]InvVect, 2)}},
		&MsgGetData{invList{InvList: make([]InvVect, 1)}},
		&MsgTx{Version: 2, TxIn: []TxIn{{SignatureScript: []byte{0xab}}}},
		&MsgBlock{Header: BlockHeader{Version: 1}},
		&MsgHeaders{Headers: make([]BlockHeader, 2)},
		&MsgGetHeaders{BlockLocatorHashes: make([]chainhash.Hash, 1)},
		&MsgSendCmpct{Announce: true, Version: 1},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 2)},
		&MsgGetBlockTxn{Indexes: []uint16{0, 1}},
	}
	for _, msg := range seeds {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data), SimNet)
		if err != nil {
			return
		}
		var first bytes.Buffer
		if _, err := WriteMessage(&first, msg, SimNet); err != nil {
			t.Fatalf("accepted %q fails to encode: %v", msg.Command(), err)
		}
		again, err := ReadMessage(bytes.NewReader(first.Bytes()), SimNet)
		if err != nil {
			t.Fatalf("re-encoded %q fails to decode: %v", msg.Command(), err)
		}
		var second bytes.Buffer
		if _, err := WriteMessage(&second, again, SimNet); err != nil {
			t.Fatalf("second encode of %q: %v", msg.Command(), err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%q encode not a fixed point: %d vs %d bytes",
				msg.Command(), first.Len(), second.Len())
		}
	})
}
