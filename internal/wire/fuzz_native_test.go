package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadMessage is a native fuzz target over the frame decoder. Under
// plain `go test` it exercises the seed corpus; under `go test -fuzz` it
// explores mutations. The invariant: ReadMessage never panics, and any
// message it accepts re-encodes through WriteMessage without error.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames of every message family plus garbage.
	seeds := []Message{
		&MsgPing{Nonce: 7},
		&MsgVersion{UserAgent: "/fuzz/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 2)},
		&MsgInv{invList{InvList: make([]InvVect, 1)}},
		&MsgTx{Version: 1, TxIn: []TxIn{{SignatureScript: []byte{1}}}},
		&MsgHeaders{Headers: make([]BlockHeader, 1)},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 1)},
		&MsgGetBlockTxn{Indexes: []uint16{0}},
	}
	for _, msg := range seeds {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data), SimNet)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
			t.Fatalf("accepted message %q fails to re-encode: %v", msg.Command(), err)
		}
	})
}

// FuzzVarInt checks the canonical varint round trip under mutation.
func FuzzVarInt(f *testing.F) {
	f.Add([]byte{0x05})
	f.Add([]byte{0xfd, 0xff, 0x00})
	f.Add([]byte{0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadVarInt(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatal(err)
		}
		back, err := ReadVarInt(&buf)
		if err != nil || back != v {
			t.Fatalf("varint %d round trip: %d, %v", v, back, err)
		}
	})
}
