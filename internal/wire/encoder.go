package wire

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/chainhash"
)

// This file holds the pooled, zero-allocation framing path. The package
// level WriteMessage/ReadMessage delegate to pooled Encoder/Decoder
// instances, so every caller gets the allocation win; long-lived callers
// (one per connection or per benchmark loop) can hold an Encoder/Decoder
// directly and skip even the pool round-trip.
//
// Ownership rules (see DESIGN "Hot-path memory discipline"):
//
//   - An Encoder's scratch is private; the frame it assembles is written
//     to w in a single Write call and never escapes.
//   - A Decoder's returned Message and any slices reachable from it are
//     valid only until the next ReadMessage call on that Decoder. Callers
//     that retain a message (or its slices) across reads must copy first.
//     The package-level ReadMessage has no such caveat: it always
//     allocates a fresh message.
//   - Message.Decode implementations never alias the payload scratch:
//     every byte they keep is copied out (fixed-size arrays, fresh byte
//     slices, strings), which is what makes payload reuse sound.

// maxRetainedScratch bounds the scratch capacity a pooled Encoder or
// Decoder keeps between uses. A rare 4 MB block frame must not pin its
// buffer in the pool forever.
const maxRetainedScratch = 1 << 20

// frameBuilder is the io.Writer that Message.Encode targets inside an
// Encoder: an append-only byte slice. It implements io.StringWriter so
// WriteVarString via io.WriteString does not allocate a byte-slice copy.
type frameBuilder struct{ buf []byte }

func (b *frameBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *frameBuilder) WriteString(s string) (int, error) {
	b.buf = append(b.buf, s...)
	return len(s), nil
}

// Encoder frames messages into reusable scratch and writes each frame with
// a single Write call. The encode is single-pass: the payload is appended
// directly after a reserved 24-byte header slot, the checksum is computed
// over the payload in place, and the header is back-filled — no
// intermediate bytes.Buffer, no separate header write.
//
// An Encoder is not safe for concurrent use.
type Encoder struct {
	frame frameBuilder
}

// WriteMessage frames msg for network net and writes it to w. It returns
// the number of bytes actually written — on a short write this is the true
// count from w, not an assumed header size (the frame goes out in one
// Write call).
func (e *Encoder) WriteMessage(w io.Writer, msg Message, net BitcoinNet) (int, error) {
	cmd := msg.Command()
	if len(cmd) > CommandSize {
		return 0, fmt.Errorf("wire: command %q exceeds %d bytes", cmd, CommandSize)
	}
	// Reserve the header slot; the command field must be NUL-padded, so
	// clear it. Payload bytes are appended after it by msg.Encode.
	if cap(e.frame.buf) < headerSize {
		e.frame.buf = make([]byte, headerSize, 512)
	} else {
		e.frame.buf = e.frame.buf[:headerSize]
	}
	clear(e.frame.buf[:headerSize])
	if err := msg.Encode(&e.frame); err != nil {
		return 0, fmt.Errorf("wire: encode %s: %w", cmd, err)
	}
	frame := e.frame.buf
	payload := frame[headerSize:]
	if len(payload) > MaxMessagePayload {
		return 0, fmt.Errorf("%w: %s payload is %d bytes", ErrPayloadTooLarge,
			cmd, len(payload))
	}
	hdr := frame[:headerSize]
	putUint32(hdr[0:4], uint32(net))
	copy(hdr[4:4+CommandSize], cmd)
	putUint32(hdr[16:20], uint32(len(payload)))
	sum := chainhash.Checksum(payload)
	copy(hdr[20:24], sum[:])
	n, err := w.Write(frame)
	if err != nil {
		return n, fmt.Errorf("wire: write frame: %w", err)
	}
	return n, nil
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled Encoder. Pair with Release when done.
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// Release returns the Encoder to the pool. The Encoder must not be used
// after Release.
func (e *Encoder) Release() {
	if cap(e.frame.buf) > maxRetainedScratch {
		e.frame.buf = nil
	}
	encoderPool.Put(e)
}

// Decoder reads framed messages using reusable payload scratch and, for
// known commands, a reused message value per command. The Message returned
// by ReadMessage (and anything reachable from it) is valid only until the
// next ReadMessage call on the same Decoder.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	payload []byte
	hdr     [headerSize]byte
	rd      bytes.Reader
	msgs    map[string]Message
}

// ReadMessage reads one framed message for network net from r, reusing the
// Decoder's cached message value for the command. See the type comment for
// the ownership rule on the returned Message.
func (d *Decoder) ReadMessage(r io.Reader, net BitcoinNet) (Message, error) {
	return d.readMessage(r, net, true)
}

func (d *Decoder) readMessage(r io.Reader, net BitcoinNet, reuse bool) (Message, error) {
	hdr, err := readMessageHeader(r, &d.hdr)
	if err != nil {
		return nil, err
	}
	if hdr.magic != net {
		return nil, fmt.Errorf("%w: got %#x, want %#x", ErrBadMagic,
			uint32(hdr.magic), uint32(net))
	}
	if hdr.length > MaxMessagePayload {
		return nil, fmt.Errorf("%w: header declares %d bytes",
			ErrPayloadTooLarge, hdr.length)
	}
	if cap(d.payload) < int(hdr.length) {
		d.payload = make([]byte, hdr.length)
	} else {
		d.payload = d.payload[:hdr.length]
	}
	if _, err := io.ReadFull(r, d.payload); err != nil {
		return nil, fmt.Errorf("wire: read %s payload: %w", hdr.command, err)
	}
	if sum := chainhash.Checksum(d.payload); sum != hdr.checksum {
		return nil, fmt.Errorf("%w: %s payload", ErrBadChecksum, hdr.command)
	}
	var msg Message
	if reuse {
		// hdr.command is interned for known commands, so this lookup does
		// not allocate; unknown commands fail makeEmptyMessage below.
		msg = d.msgs[hdr.command]
	}
	if msg == nil {
		msg, err = makeEmptyMessage(hdr.command)
		if err != nil {
			return nil, err
		}
		if reuse {
			if d.msgs == nil {
				d.msgs = make(map[string]Message)
			}
			d.msgs[hdr.command] = msg
		}
	}
	d.rd.Reset(d.payload)
	if err := msg.Decode(&d.rd); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", hdr.command, err)
	}
	return msg, nil
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled Decoder. Pair with Release when done.
func GetDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// Release returns the Decoder to the pool. The Decoder must not be used —
// and no message obtained from its ReadMessage may be read — after
// Release, except for messages from the fresh-allocation path (the
// package-level ReadMessage), which are caller-owned.
func (d *Decoder) Release() {
	if cap(d.payload) > maxRetainedScratch {
		d.payload = nil
	}
	decoderPool.Put(d)
}
