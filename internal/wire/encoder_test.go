package wire

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/chainhash"
)

func parityAddrPort(b byte) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 1, b, 1}), 8333)
}

// FuzzEncoderParity is the differential fuzz target pinning the pooled
// Encoder/Decoder to the legacy bytes.Buffer framing path: any frame the
// legacy reader accepts must decode identically through a pooled Decoder
// (twice, to exercise scratch reuse), and the decoded message must
// re-encode byte-identically through both writers.
func FuzzEncoderParity(f *testing.F) {
	seeds := []Message{
		&MsgPing{Nonce: 1},
		&MsgPong{Nonce: 2},
		&MsgVerAck{},
		&MsgGetAddr{},
		&MsgVersion{UserAgent: "/parity/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 3)},
		&MsgInv{invList{InvList: make([]InvVect, 2)}},
		&MsgGetData{invList{InvList: make([]InvVect, 1)}},
		&MsgTx{Version: 2, TxIn: []TxIn{{SignatureScript: []byte{0xab}}}},
		&MsgBlock{Header: BlockHeader{Version: 1}},
		&MsgHeaders{Headers: make([]BlockHeader, 2)},
		&MsgGetHeaders{BlockLocatorHashes: make([]chainhash.Hash, 1)},
		&MsgSendCmpct{Announce: true, Version: 1},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 2)},
		&MsgGetBlockTxn{Indexes: []uint16{0, 1}},
		&MsgReject{Cmd: CmdTx, Code: 0x10, Reason: "bad"},
	}
	for _, msg := range seeds {
		var buf bytes.Buffer
		if _, err := writeMessageBuffered(&buf, msg, SimNet); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		legacy, legacyErr := readMessageBuffered(bytes.NewReader(data), SimNet)
		dec := GetDecoder()
		defer dec.Release()
		pooled, pooledErr := dec.ReadMessage(bytes.NewReader(data), SimNet)
		if (legacyErr == nil) != (pooledErr == nil) {
			t.Fatalf("acceptance mismatch: legacy err %v, pooled err %v",
				legacyErr, pooledErr)
		}
		if legacyErr != nil {
			return
		}
		if !reflect.DeepEqual(legacy, pooled) {
			t.Fatalf("decode mismatch for %q:\nlegacy %#v\npooled %#v",
				legacy.Command(), legacy, pooled)
		}
		// Second decode through the same Decoder reuses scratch and the
		// cached message value; the result must not change.
		again, err := dec.ReadMessage(bytes.NewReader(data), SimNet)
		if err != nil {
			t.Fatalf("pooled re-decode of %q: %v", legacy.Command(), err)
		}
		if !reflect.DeepEqual(legacy, again) {
			t.Fatalf("reused-decoder mismatch for %q", legacy.Command())
		}

		var bufLegacy, bufPooled bytes.Buffer
		nLegacy, err := writeMessageBuffered(&bufLegacy, legacy, SimNet)
		if err != nil {
			t.Fatalf("legacy re-encode of %q: %v", legacy.Command(), err)
		}
		enc := GetEncoder()
		defer enc.Release()
		nPooled, err := enc.WriteMessage(&bufPooled, again, SimNet)
		if err != nil {
			t.Fatalf("pooled re-encode of %q: %v", legacy.Command(), err)
		}
		if nLegacy != nPooled {
			t.Fatalf("byte count mismatch for %q: legacy %d, pooled %d",
				legacy.Command(), nLegacy, nPooled)
		}
		if !bytes.Equal(bufLegacy.Bytes(), bufPooled.Bytes()) {
			t.Fatalf("frame mismatch for %q:\nlegacy %x\npooled %x",
				legacy.Command(), bufLegacy.Bytes(), bufPooled.Bytes())
		}
	})
}

// TestEncoderReuseNoPoisoning recycles one Encoder across messages of very
// different sizes and shapes: no byte of an earlier frame may leak into a
// later one.
func TestEncoderReuseNoPoisoning(t *testing.T) {
	big := &MsgAddr{AddrList: make([]NetAddress, 200)}
	for i := range big.AddrList {
		big.AddrList[i] = NetAddress{
			Timestamp: time.Unix(1586000000+int64(i), 0).UTC(),
			Services:  SFNodeNetwork,
			Addr:      parityAddrPort(byte(i)),
		}
	}
	small := &MsgPing{Nonce: 0xdeadbeef}

	enc := GetEncoder()
	defer enc.Release()
	var scratch bytes.Buffer
	if _, err := enc.WriteMessage(&scratch, big, SimNet); err != nil {
		t.Fatal(err)
	}

	var got, want bytes.Buffer
	if _, err := enc.WriteMessage(&got, small, SimNet); err != nil {
		t.Fatal(err)
	}
	if _, err := writeMessageBuffered(&want, small, SimNet); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("recycled encoder poisoned the frame:\ngot  %x\nwant %x",
			got.Bytes(), want.Bytes())
	}

	// Pool round-trip: release and re-acquire must behave the same.
	enc2 := GetEncoder()
	defer enc2.Release()
	var got2 bytes.Buffer
	if _, err := enc2.WriteMessage(&got2, small, SimNet); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Bytes(), want.Bytes()) {
		t.Fatal("pooled encoder poisoned the frame after Release/Get")
	}
}

// TestDecoderReuseNoPoisoning decodes a large ADDR, then a smaller one,
// then an unrelated message on the same Decoder; earlier payload content
// must not survive into later results.
func TestDecoderReuseNoPoisoning(t *testing.T) {
	mkAddrMsg := func(n int, salt byte) *MsgAddr {
		m := &MsgAddr{AddrList: make([]NetAddress, n)}
		for i := range m.AddrList {
			m.AddrList[i] = NetAddress{
				Timestamp: time.Unix(1586000000+int64(i), 0).UTC(),
				Services:  SFNodeWitness,
				Addr:      parityAddrPort(byte(i) ^ salt),
			}
		}
		return m
	}
	frame := func(m Message) []byte {
		var buf bytes.Buffer
		if _, err := writeMessageBuffered(&buf, m, SimNet); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	big := mkAddrMsg(50, 0xa5)
	small := mkAddrMsg(2, 0x3c)

	dec := GetDecoder()
	defer dec.Release()
	if _, err := dec.ReadMessage(bytes.NewReader(frame(big)), SimNet); err != nil {
		t.Fatal(err)
	}
	got, err := dec.ReadMessage(bytes.NewReader(frame(small)), SimNet)
	if err != nil {
		t.Fatal(err)
	}
	gotAddr, ok := got.(*MsgAddr)
	if !ok {
		t.Fatalf("decoded %T, want *MsgAddr", got)
	}
	if len(gotAddr.AddrList) != 2 {
		t.Fatalf("recycled decoder kept %d addresses, want 2", len(gotAddr.AddrList))
	}
	if !reflect.DeepEqual(gotAddr.AddrList, small.AddrList) {
		t.Fatalf("recycled decoder poisoned the result:\ngot  %+v\nwant %+v",
			gotAddr.AddrList, small.AddrList)
	}

	ping := &MsgPing{Nonce: 42}
	gotPing, err := dec.ReadMessage(bytes.NewReader(frame(ping)), SimNet)
	if err != nil {
		t.Fatal(err)
	}
	if n := gotPing.(*MsgPing).Nonce; n != 42 {
		t.Fatalf("ping nonce = %d, want 42", n)
	}
}

// TestWriteMessageHeaderShortWrite pins the satellite fix: a frame write
// that fails partway must report the bytes actually written, not a
// fabricated headerSize + n total.
func TestWriteMessageHeaderShortWrite(t *testing.T) {
	// limitWriter accepts `limit` bytes then fails.
	for _, limit := range []int{0, 5, headerSize, headerSize + 3} {
		lw := &limitWriter{limit: limit}
		n, err := writeMessageBuffered(lw, &MsgPing{Nonce: 9}, SimNet)
		if err == nil {
			t.Fatalf("limit %d: want error", limit)
		}
		if n != lw.written {
			t.Errorf("limit %d: reported %d bytes, actually wrote %d",
				limit, n, lw.written)
		}
		lw2 := &limitWriter{limit: limit}
		enc := GetEncoder()
		n2, err := enc.WriteMessage(lw2, &MsgPing{Nonce: 9}, SimNet)
		enc.Release()
		if err == nil {
			t.Fatalf("limit %d: pooled want error", limit)
		}
		if n2 != lw2.written {
			t.Errorf("limit %d: pooled reported %d bytes, actually wrote %d",
				limit, n2, lw2.written)
		}
	}
}

// limitWriter writes up to limit bytes total, then errors, tracking the
// bytes it actually accepted.
type limitWriter struct {
	limit   int
	written int
}

func (w *limitWriter) Write(p []byte) (int, error) {
	room := w.limit - w.written
	if room >= len(p) {
		w.written += len(p)
		return len(p), nil
	}
	if room < 0 {
		room = 0
	}
	w.written += room
	return room, errTestShortWrite
}

var errTestShortWrite = &shortWriteError{}

type shortWriteError struct{}

func (*shortWriteError) Error() string { return "test: short write" }

// TestInternCommand checks every known command interns to its constant
// (same backing string, no allocation) and unknown commands still parse.
func TestInternCommand(t *testing.T) {
	known := []string{
		CmdVersion, CmdVerAck, CmdAddr, CmdGetAddr, CmdInv, CmdGetData,
		CmdTx, CmdBlock, CmdHeaders, CmdGetHeaders, CmdPing, CmdPong,
		CmdSendCmpct, CmdCmpctBlock, CmdGetBlockTxn, CmdBlockTxn,
		CmdReject, CmdNotFound,
	}
	for _, cmd := range known {
		if got := internCommand([]byte(cmd)); got != cmd {
			t.Errorf("internCommand(%q) = %q", cmd, got)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf := [CommandSize]byte{'p', 'i', 'n', 'g'}
		if internCommand(buf[:4]) != CmdPing {
			t.Fatal("intern mismatch")
		}
	})
	if allocs != 0 {
		t.Errorf("internCommand allocates %.1f per run, want 0", allocs)
	}
	if got := internCommand([]byte("bogus")); got != "bogus" {
		t.Errorf("unknown command = %q, want \"bogus\"", got)
	}
}

// BenchmarkWireRoundTrip measures a full encode+decode of a relay-mix
// frame pair (PING and a one-entry INV) through a held Encoder/Decoder.
// Gated at 0 allocs/op by benchguard -require-zero.
func BenchmarkWireRoundTrip(b *testing.B) {
	var enc Encoder
	var dec Decoder
	var buf bytes.Buffer
	ping := &MsgPing{}
	inv := &MsgInv{}
	inv.InvList = []InvVect{{Type: InvTypeTx}}

	// Warm scratch, the decoder's message cache, and the buffer.
	for i := 0; i < 2; i++ {
		buf.Reset()
		if _, err := enc.WriteMessage(&buf, ping, SimNet); err != nil {
			b.Fatal(err)
		}
		if _, err := enc.WriteMessage(&buf, inv, SimNet); err != nil {
			b.Fatal(err)
		}
		if _, err := dec.ReadMessage(&buf, SimNet); err != nil {
			b.Fatal(err)
		}
		if _, err := dec.ReadMessage(&buf, SimNet); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		ping.Nonce = uint64(i)
		inv.InvList[0].Hash[0] = byte(i)
		if _, err := enc.WriteMessage(&buf, ping, SimNet); err != nil {
			b.Fatal(err)
		}
		if _, err := enc.WriteMessage(&buf, inv, SimNet); err != nil {
			b.Fatal(err)
		}
		got, err := dec.ReadMessage(&buf, SimNet)
		if err != nil {
			b.Fatal(err)
		}
		if got.(*MsgPing).Nonce != uint64(i) {
			b.Fatal("nonce mismatch")
		}
		got, err = dec.ReadMessage(&buf, SimNet)
		if err != nil {
			b.Fatal(err)
		}
		if got.(*MsgInv).InvList[0].Hash[0] != byte(i) {
			b.Fatal("inv mismatch")
		}
	}
}
