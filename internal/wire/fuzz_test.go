package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// These tests feed hostile and corrupted inputs to the decoder: a public
// crawler endpoint must survive anything the network throws at it. The
// property under test is "no panic, bounded allocation, error returned" —
// not any particular error.

// TestReadMessageRandomGarbage hammers ReadMessage with random bytes.
func TestReadMessageRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; almost always errors (a random checksum match
		// is a ~2^-32 event).
		_, _ = ReadMessage(bytes.NewReader(buf), SimNet)
	}
}

// TestReadMessageBitFlippedFrames corrupts valid frames at every byte
// position and asserts the decoder never panics and never returns a
// message from a corrupted-payload frame without noticing.
func TestReadMessageBitFlippedFrames(t *testing.T) {
	msg := &MsgPing{Nonce: 0x1122334455667788}
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, msg, SimNet); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for pos := 0; pos < len(valid); pos++ {
		corrupted := make([]byte, len(valid))
		copy(corrupted, valid)
		corrupted[pos] ^= 0x01
		got, err := ReadMessage(bytes.NewReader(corrupted), SimNet)
		if err != nil {
			continue // detection is the expected outcome
		}
		// A flip that still decodes must be a header-only field change
		// that keeps magic, length, and checksum consistent — impossible
		// for a single bit flip except inside the command padding, which
		// would change the command; so any successful decode must still
		// be a ping with intact payload.
		ping, ok := got.(*MsgPing)
		if !ok || ping.Nonce != msg.Nonce {
			t.Fatalf("flip at %d produced silent corruption: %#v", pos, got)
		}
	}
}

// TestDecodeTruncations decodes every prefix of valid payloads; all must
// fail cleanly.
func TestDecodeTruncations(t *testing.T) {
	messages := []Message{
		&MsgVersion{UserAgent: "/trunc/", Timestamp: time.Unix(1586000000, 0)},
		&MsgAddr{AddrList: make([]NetAddress, 5)},
		&MsgTx{Version: 1, TxIn: []TxIn{{SignatureScript: []byte{1, 2, 3}}}},
		&MsgHeaders{Headers: make([]BlockHeader, 3)},
		&MsgCmpctBlock{ShortIDs: make([]ShortID, 4)},
		&MsgGetBlockTxn{Indexes: []uint16{1, 5, 9}},
	}
	for _, msg := range messages {
		var buf bytes.Buffer
		if err := msg.Encode(&buf); err != nil {
			t.Fatalf("%s encode: %v", msg.Command(), err)
		}
		full := buf.Bytes()
		for cut := 0; cut < len(full); cut++ {
			fresh, err := makeEmptyMessage(msg.Command())
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Decode(bytes.NewReader(full[:cut])); err == nil {
				// Some prefixes are legitimately valid messages (e.g. a
				// shorter address list is not, because the count prefix
				// pins the length — but VERSION without the relay byte
				// is). Only VERSION has such an optional tail.
				if msg.Command() != CmdVersion {
					t.Errorf("%s: truncation at %d/%d decoded successfully",
						msg.Command(), cut, len(full))
				}
			}
		}
	}
}

// TestHostileCountFields builds frames whose count prefixes promise
// enormous contents and asserts decoding fails fast (bounded allocation)
// rather than attempting multi-gigabyte allocations.
func TestHostileCountFields(t *testing.T) {
	cases := []struct {
		name    string
		command string
		payload func() []byte
	}{
		{"addr-1e9", CmdAddr, func() []byte {
			var b bytes.Buffer
			_ = WriteVarInt(&b, 1_000_000_000)
			return b.Bytes()
		}},
		{"inv-huge", CmdInv, func() []byte {
			var b bytes.Buffer
			_ = WriteVarInt(&b, 1<<40)
			return b.Bytes()
		}},
		{"tx-huge-inputs", CmdTx, func() []byte {
			var b bytes.Buffer
			_ = writeUint32(&b, 1)
			_ = WriteVarInt(&b, 1<<30)
			return b.Bytes()
		}},
		{"headers-huge", CmdHeaders, func() []byte {
			var b bytes.Buffer
			_ = WriteVarInt(&b, 1<<20)
			return b.Bytes()
		}},
		{"blocktxn-huge", CmdBlockTxn, func() []byte {
			var b bytes.Buffer
			b.Write(make([]byte, 32))
			_ = WriteVarInt(&b, 1<<33)
			return b.Bytes()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg, err := makeEmptyMessage(tc.command)
			if err != nil {
				t.Fatal(err)
			}
			if err := msg.Decode(bytes.NewReader(tc.payload())); err == nil {
				t.Error("hostile count accepted")
			}
		})
	}
}
