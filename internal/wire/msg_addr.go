package wire

import (
	"fmt"
	"io"
)

// MsgGetAddr requests known addresses from a peer. The paper's crawler
// (Algorithm 1) issues GETADDR repeatedly until the peer's ADDR responses
// stop yielding new addresses, draining its new and tried tables.
type MsgGetAddr struct{}

var _ Message = (*MsgGetAddr)(nil)

// Command implements Message.
func (m *MsgGetAddr) Command() string { return CmdGetAddr }

// Encode implements Message.
func (m *MsgGetAddr) Encode(io.Writer) error { return nil }

// Decode implements Message.
func (m *MsgGetAddr) Decode(io.Reader) error { return nil }

// MsgAddr carries up to MaxAddrPerMsg (1000) timestamped network
// addresses. The paper's §IV-B shows these are 85.1% unreachable addresses
// on average, which it identifies as a root cause of connection failures.
type MsgAddr struct {
	// AddrList is the advertised addresses, at most MaxAddrPerMsg.
	AddrList []NetAddress
}

var _ Message = (*MsgAddr)(nil)

// Command implements Message.
func (m *MsgAddr) Command() string { return CmdAddr }

// Encode implements Message.
func (m *MsgAddr) Encode(w io.Writer) error {
	if len(m.AddrList) > MaxAddrPerMsg {
		return fmt.Errorf("%w: %d addresses (max %d)", ErrTooMany,
			len(m.AddrList), MaxAddrPerMsg)
	}
	if err := WriteVarInt(w, uint64(len(m.AddrList))); err != nil {
		return err
	}
	for i := range m.AddrList {
		if err := writeNetAddress(w, &m.AddrList[i], true); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Message.
func (m *MsgAddr) Decode(r io.Reader) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > MaxAddrPerMsg {
		return fmt.Errorf("%w: %d addresses (max %d)", ErrTooMany,
			count, MaxAddrPerMsg)
	}
	// Reuse capacity when a Decoder recycles this message; every element
	// is fully overwritten below. A fresh message still allocates (even
	// for count 0) so decode results stay identical to the legacy path.
	if m.AddrList != nil && cap(m.AddrList) >= int(count) {
		m.AddrList = m.AddrList[:count]
	} else {
		m.AddrList = make([]NetAddress, count)
	}
	for i := range m.AddrList {
		if err := readNetAddress(r, &m.AddrList[i], true); err != nil {
			return err
		}
	}
	return nil
}
