package netgen

import (
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/addridx"
	"repro/internal/wire"
)

// This file models the ADDR-gossip content of the synthetic universe: the
// address book a reachable station reveals to the crawler's iterative
// GETADDR (Algorithm 1), the seed-database views (Bitnodes, DNS), and the
// NetAddress conversions.

// NetAddr renders a station as a wire NetAddress with a gossip timestamp
// slightly in the past of t.
func (u *Universe) NetAddr(s *Station, t time.Time, rng *rand.Rand) wire.NetAddress {
	jitter := time.Duration(rng.Int64N(int64(3 * time.Hour)))
	return wire.NetAddress{
		Addr:      s.Addr,
		Services:  wire.SFNodeNetwork,
		Timestamp: t.Add(-jitter),
	}
}

// AddrBook returns the full address set station s would reveal through
// iterative GETADDR at time t: its own address first, then a mixture of
// reachable and unreachable addresses at the paper's measured 14.9/85.1
// composition. Malicious stations return an unreachable-only flood slice
// of their budget (no self-advertisement — the detection heuristic's
// tell). The book is sampled deterministically from the pools current at
// t using a per-(station, crawl-interval) PCG stream keyed by the dense
// StationID, so book content is independent of crawl order.
func (u *Universe) AddrBook(s *Station, t time.Time) []wire.NetAddress {
	return u.AddrBookFrom(s, t, u.OnlineReachable(t), u.VisibleUnreachable(t))
}

// AddrBookFrom is AddrBook with the candidate pools precomputed, so a
// crawl over thousands of stations scans the universe once per
// experiment rather than once per station.
func (u *Universe) AddrBookFrom(s *Station, t time.Time, online, visible []*Station) []wire.NetAddress {
	book, _ := u.AppendAddrBook(nil, nil, s, t, online, visible)
	return book
}

// AppendAddrBook appends station s's address book at t to addrs and
// returns the extended slice, sampling exactly as AddrBookFrom but
// reusing the caller's capacity — the crawl hot path keeps one book
// buffer per pooled session instead of allocating ~BookSize entries per
// dial. When ids is non-nil, the dense StationID of every appended entry
// is appended to it in parallel (the self entry carries s.ID), which
// lets crawl consumers skip the per-address index hash lookup; a nil ids
// skips ID tracking and returns nil.
func (u *Universe) AppendAddrBook(addrs []wire.NetAddress, ids []addridx.ID,
	s *Station, t time.Time, online, visible []*Station) ([]wire.NetAddress, []addridx.ID) {
	p := u.Params
	crawlIdx := int64(t.Sub(p.Epoch) / p.CrawlInterval)
	rng := bookRand(p.Seed, crawlIdx, s.ID)
	wantIDs := ids != nil

	if s.Malicious {
		experiments := int(p.Horizon / p.CrawlInterval)
		if experiments < 1 {
			experiments = 1
		}
		per := s.FloodBudget / experiments
		if per < 1 {
			per = 1
		}
		if addrs == nil {
			addrs = make([]wire.NetAddress, 0, per)
		}
		for i := 0; i < per && len(visible) > 0; i++ {
			target := visible[rng.IntN(len(visible))]
			addrs = append(addrs, u.NetAddr(target, t, rng))
			if wantIDs {
				ids = append(ids, target.ID)
			}
		}
		return addrs, ids
	}

	size := p.scaled(p.BookSize)
	if size < 2 {
		size = 2
	}
	if addrs == nil {
		addrs = make([]wire.NetAddress, 0, size+1)
	}
	self := wire.NetAddress{Addr: s.Addr, Services: wire.SFNodeNetwork, Timestamp: t}
	addrs = append(addrs, self)
	if wantIDs {
		ids = append(ids, s.ID)
	}
	for i := 0; i < size; i++ {
		var target *Station
		if rng.Float64() < p.AddrReachableShare && len(online) > 0 {
			target = online[rng.IntN(len(online))]
		} else if len(visible) > 0 {
			target = visible[rng.IntN(len(visible))]
		} else {
			continue
		}
		addrs = append(addrs, u.NetAddr(target, t, rng))
		if wantIDs {
			ids = append(ids, target.ID)
		}
	}
	return addrs, ids
}

// bookCache memoizes sampled address books for one instant. Book
// content is a pure function of (station, instant, candidate pools), so
// workloads that revisit an instant — repeated experiments over one
// frozen universe view, the intervention grid's per-policy crawls, a
// benchmark loop — can skip resampling entirely. Like instantPools, the
// cache holds a single instant and drops wholesale when a new instant is
// queried, bounding it to one crawl's worth of dialed books.
type bookCache struct {
	mu    sync.Mutex
	at    time.Time
	ok    bool
	books map[addridx.ID]cachedBook
}

type cachedBook struct {
	addrs []wire.NetAddress
	ids   []addridx.ID
}

// CachedAddrBook returns station s's address book at t copied into the
// caller's buffers (appended; both may be nil), serving from the
// universe's per-instant book cache and sampling on a miss. The copy is
// what keeps the cache sound: sessions shuffle and page their books in
// place, so they must own their bytes.
func (u *Universe) CachedAddrBook(addrs []wire.NetAddress, ids []addridx.ID,
	s *Station, t time.Time, online, visible []*Station) ([]wire.NetAddress, []addridx.ID) {
	u.bookMemo.mu.Lock()
	if !u.bookMemo.ok || !u.bookMemo.at.Equal(t) {
		u.bookMemo.at, u.bookMemo.ok = t, true
		u.bookMemo.books = make(map[addridx.ID]cachedBook)
	}
	cb, hit := u.bookMemo.books[s.ID]
	if !hit {
		a, i := u.AppendAddrBook(nil, make([]addridx.ID, 0, 8), s, t, online, visible)
		cb = cachedBook{addrs: a, ids: i}
		u.bookMemo.books[s.ID] = cb
	}
	u.bookMemo.mu.Unlock()
	// Cached entries are immutable once inserted; copying outside the
	// lock is safe.
	return append(addrs, cb.addrs...), append(ids, cb.ids...)
}

// SeedView is the crawl bootstrap picture at one instant: the two seed
// databases and their blacklist-filtered remainders (Figure 3).
type SeedView struct {
	// Bitnodes is the Bitnodes-style list (currently-online covered
	// stations).
	Bitnodes []*Station
	// DNS is the DNS-seeder database (listed stations, online or not).
	DNS []*Station
	// Common counts stations on both lists.
	Common int
	// BitnodesExcluded and DNSExcluded count blacklisted entries.
	BitnodesExcluded int
	DNSExcluded      int
	// CommonExcluded counts blacklisted entries present on both lists.
	CommonExcluded int
	// Dialable is the deduplicated, blacklist-filtered union.
	Dialable []*Station
}

// SeedViewAt builds the seed databases as of t.
func (u *Universe) SeedViewAt(t time.Time) *SeedView {
	v := &SeedView{}
	seen := addridx.NewSet(len(u.stations))
	for _, s := range u.Reachable {
		onBit := s.OnBitnodes && s.OnlineAt(t)
		onDNS := s.OnDNS
		if !onBit && !onDNS {
			continue
		}
		if onBit {
			v.Bitnodes = append(v.Bitnodes, s)
			if s.Critical {
				v.BitnodesExcluded++
			}
		}
		if onDNS {
			v.DNS = append(v.DNS, s)
			if s.Critical {
				v.DNSExcluded++
			}
		}
		if onBit && onDNS {
			v.Common++
			if s.Critical {
				v.CommonExcluded++
			}
		}
		if !s.Critical && seen.Add(s.ID) {
			v.Dialable = append(v.Dialable, s)
		}
	}
	return v
}
