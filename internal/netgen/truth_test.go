package netgen

import (
	"net/netip"
	"testing"
	"time"
)

func TestUnreachableCensusAt(t *testing.T) {
	u, err := Generate(DefaultParams(11, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	visible, responsive, silent := u.UnreachableCensusAt(at)
	if visible != responsive+silent {
		t.Errorf("census split %d+%d != visible %d", responsive, silent, visible)
	}
	if got := len(u.VisibleUnreachable(at)); got != visible {
		t.Errorf("census visible = %d, VisibleUnreachable = %d", visible, got)
	}
	if visible == 0 || responsive == 0 || silent == 0 {
		t.Errorf("degenerate census %d/%d/%d at mid-horizon", visible, responsive, silent)
	}
	// Past the horizon plus the TTL everything has expired.
	far := u.End().Add(10 * u.Params.UnreachableTTL)
	if v, _, _ := u.UnreachableCensusAt(far); v != 0 {
		t.Errorf("census after expiry = %d, want 0", v)
	}
}

func TestTrueDegreeMatchesBookDistinct(t *testing.T) {
	u, err := Generate(DefaultParams(11, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	at := u.Params.Epoch.Add(10 * 24 * time.Hour)
	online := u.OnlineReachable(at)
	visible := u.VisibleUnreachable(at)
	checked := 0
	for _, s := range u.Reachable {
		if !s.OnlineAt(at) {
			continue
		}
		deg := u.TrueDegreeFrom(s, at, online, visible)
		if deg != u.TrueDegree(s, at) {
			t.Fatalf("TrueDegreeFrom %d != TrueDegree %d for %v", deg,
				u.TrueDegree(s, at), s.Addr)
		}
		book := u.AddrBookFrom(s, at, online, visible)
		distinct := make(map[netip.AddrPort]struct{})
		for _, na := range book {
			distinct[na.Addr] = struct{}{}
		}
		if deg != len(distinct) {
			t.Fatalf("TrueDegree = %d, book distinct = %d for %v", deg, len(distinct), s.Addr)
		}
		if deg > len(book) {
			t.Fatalf("TrueDegree %d exceeds book length %d", deg, len(book))
		}
		// Books sample with replacement, so repeats are expected at sim
		// scales: distinct must be a strict undercount somewhere.
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no online reachable stations to check")
	}
}

func TestTrueDegreeDeterministic(t *testing.T) {
	// The truth must be a pure function of (Params, t) — two universes
	// from the same params agree station by station.
	a, err := Generate(DefaultParams(13, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultParams(13, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	at := a.Params.Epoch.Add(5 * 24 * time.Hour)
	for i, s := range a.Reachable[:10] {
		if got, want := a.TrueDegree(s, at), b.TrueDegree(b.Reachable[i], at); got != want {
			t.Fatalf("station %d degree %d != %d across identical universes", i, got, want)
		}
	}
}
