package netgen

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// testParams returns a small-scale 2020 calibration for fast tests.
func testParams() Params {
	return DefaultParams(1, 0.02)
}

func generate(t *testing.T, p Params) *Universe {
	t.Helper()
	u, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := testParams()
	p.Scale = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero scale: want error")
	}
	p = testParams()
	p.Horizon = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, testParams())
	b := generate(t, testParams())
	if len(a.Reachable) != len(b.Reachable) || len(a.Unreachable) != len(b.Unreachable) {
		t.Fatal("same seed produced different population sizes")
	}
	for i := range a.Reachable {
		if a.Reachable[i].Addr != b.Reachable[i].Addr {
			t.Fatal("same seed produced different addresses")
		}
	}
}

func TestPopulationSizes(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	// Unique reachable ≈ persistent + recurring pool + ephemeral stock +
	// fresh arrivals (the generator's steady-state accounting).
	steady := p.scaled(p.SteadyReachable)
	persistent := p.scaled(p.PersistentReachable)
	duty := float64(p.MeanSessionOn) / float64(p.MeanSessionOn+p.MeanSessionOff)
	ephemSteady := p.scaledF(p.FreshPerDay) * p.EphemeralLifetime.Hours() / 24
	pool := int((float64(steady-persistent) - ephemSteady) / duty)
	expReachable := persistent + pool + int(ephemSteady) +
		int(p.scaledF(p.FreshPerDay)*60)
	got := len(u.Reachable)
	if got < expReachable*9/10 || got > expReachable*11/10 {
		t.Errorf("reachable population = %d, want ≈%d", got, expReachable)
	}
	expUnreachable := p.scaled(p.InitialUnreachable) + int(p.scaledF(p.UnreachablePerDay)*60)
	gotU := len(u.Unreachable)
	if gotU < expUnreachable*9/10 || gotU > expUnreachable*11/10 {
		t.Errorf("unreachable population = %d, want ≈%d", gotU, expUnreachable)
	}
}

func TestSteadyOnlineCount(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	steady := p.scaled(p.SteadyReachable)
	// Sample mid-horizon: the online count should be near steady state.
	mid := p.Epoch.Add(30 * 24 * time.Hour)
	online := len(u.OnlineReachable(mid))
	if online < steady*75/100 || online > steady*125/100 {
		t.Errorf("online at mid-horizon = %d, want ≈%d", online, steady)
	}
}

func TestPersistentAlwaysOnline(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	count := 0
	for _, s := range u.Reachable {
		if !s.Persistent {
			continue
		}
		count++
		for d := 0; d < 60; d += 7 {
			at := p.Epoch.Add(time.Duration(d) * 24 * time.Hour)
			if !s.OnlineAt(at) {
				t.Fatalf("persistent station %v offline at day %d", s.Addr, d)
			}
		}
	}
	if count != p.scaled(p.PersistentReachable) {
		t.Errorf("persistent count = %d, want %d", count, p.scaled(p.PersistentReachable))
	}
}

func TestSessionsAreOrderedAndDisjoint(t *testing.T) {
	u := generate(t, testParams())
	for _, s := range u.Reachable {
		for i := 1; i < len(s.Sessions); i++ {
			if s.Sessions[i].Start.Before(s.Sessions[i-1].End) {
				t.Fatalf("station %v sessions overlap or are unordered", s.Addr)
			}
		}
		for _, iv := range s.Sessions {
			if !iv.End.After(iv.Start) {
				t.Fatalf("station %v has empty session", s.Addr)
			}
		}
	}
}

func TestFreshStationsAppearLate(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	for _, s := range u.Reachable {
		if s.Fresh && len(s.Sessions) > 0 {
			if s.Sessions[0].Start.Before(p.Epoch) {
				t.Fatalf("fresh station %v starts before epoch", s.Addr)
			}
		}
	}
}

func TestResponsiveFraction(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	resp := 0
	for _, s := range u.Unreachable {
		if s.Class == ClassResponsive {
			resp++
		}
	}
	frac := float64(resp) / float64(len(u.Unreachable))
	if frac < 0.20 || frac > 0.28 {
		t.Errorf("responsive fraction = %.3f, want ≈0.235", frac)
	}
}

func TestUnreachableVisibilityWindows(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	mid := p.Epoch.Add(30 * 24 * time.Hour)
	visible := u.VisibleUnreachable(mid)
	// Steady visible should be near the initial stock (arrivals balance
	// expiries by calibration).
	want := p.scaled(p.InitialUnreachable)
	if len(visible) < want*70/100 || len(visible) > want*140/100 {
		t.Errorf("visible unreachable at mid = %d, want ≈%d", len(visible), want)
	}
	for _, s := range visible {
		if !s.VisibleAt(mid) {
			t.Fatal("VisibleUnreachable returned an invisible station")
		}
	}
}

func TestMaliciousAssignment(t *testing.T) {
	p := testParams()
	p.Scale = 0.2 // enough stations for the full malicious cast
	u := generate(t, p)
	var malicious []*Station
	in3320 := 0
	for _, s := range u.Reachable {
		if s.Malicious {
			malicious = append(malicious, s)
			if s.ASN == 3320 {
				in3320++
			}
			if s.FloodBudget < 1 {
				t.Error("malicious station with empty flood budget")
			}
			if !s.Persistent {
				t.Error("malicious station not persistent")
			}
		}
	}
	want := p.scaled(p.MaliciousCount)
	if len(malicious) != want {
		t.Errorf("malicious count = %d, want %d", len(malicious), want)
	}
	if in3320 < p.scaled(p.MaliciousInAS3320)*7/10 {
		t.Errorf("malicious in AS3320 = %d, want ≈%d", in3320, p.scaled(p.MaliciousInAS3320))
	}
}

func TestAddrBookComposition(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	mid := p.Epoch.Add(20 * 24 * time.Hour)
	online := u.OnlineReachable(mid)
	visible := u.VisibleUnreachable(mid)
	reach, unreach := 0, 0
	for _, s := range online[:10] {
		book := u.AddrBookFrom(s, mid, online, visible)
		if len(book) == 0 {
			t.Fatal("empty book from honest station")
		}
		if book[0].Addr != s.Addr {
			t.Error("honest book must lead with self-advertisement")
		}
		for _, na := range book[1:] {
			st := u.ByAddr(na.Addr)
			if st == nil {
				t.Fatalf("book contains unknown address %v", na.Addr)
			}
			if st.Class == ClassReachable {
				reach++
			} else {
				unreach++
			}
		}
	}
	frac := float64(reach) / float64(reach+unreach)
	if frac < 0.10 || frac > 0.20 {
		t.Errorf("reachable share in books = %.3f, want ≈0.149", frac)
	}
}

func TestMaliciousBookUnreachableOnly(t *testing.T) {
	p := testParams()
	p.Scale = 0.2
	u := generate(t, p)
	mid := p.Epoch.Add(10 * 24 * time.Hour)
	online := u.OnlineReachable(mid)
	visible := u.VisibleUnreachable(mid)
	checked := 0
	for _, s := range u.Reachable {
		if !s.Malicious {
			continue
		}
		book := u.AddrBookFrom(s, mid, online, visible)
		for _, na := range book {
			if na.Addr == s.Addr {
				t.Error("malicious book contains self-advertisement")
			}
			st := u.ByAddr(na.Addr)
			if st != nil && st.Class == ClassReachable {
				t.Error("malicious book contains a reachable address")
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no malicious stations found")
	}
}

func TestAddrBookDeterministicPerCrawl(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	mid := p.Epoch.Add(5 * 24 * time.Hour)
	online := u.OnlineReachable(mid)
	visible := u.VisibleUnreachable(mid)
	s := online[0]
	a := u.AddrBookFrom(s, mid, online, visible)
	b := u.AddrBookFrom(s, mid, online, visible)
	if len(a) != len(b) {
		t.Fatal("book not deterministic")
	}
	for i := range a {
		if a[i].Addr != b[i].Addr {
			t.Fatal("book not deterministic")
		}
	}
	// A different crawl day yields a different sample.
	other := u.AddrBookFrom(s, mid.Add(p.CrawlInterval), online, visible)
	same := true
	for i := range a {
		if i >= len(other) || a[i].Addr != other[i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Error("book identical across crawl days; expected resampling")
	}
}

func TestSeedViewStructure(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	mid := p.Epoch.Add(15 * 24 * time.Hour)
	v := u.SeedViewAt(mid)
	if len(v.Bitnodes) == 0 || len(v.DNS) == 0 {
		t.Fatal("empty seed views")
	}
	if v.Common > len(v.Bitnodes) || v.Common > len(v.DNS) {
		t.Error("common exceeds list sizes")
	}
	if v.BitnodesExcluded > len(v.Bitnodes) || v.DNSExcluded > len(v.DNS) {
		t.Error("excluded exceeds list sizes")
	}
	// Dialable excludes critical stations and has no duplicates.
	seen := map[*Station]bool{}
	for _, s := range v.Dialable {
		if s.Critical {
			t.Fatal("critical station in dialable set")
		}
		if seen[s] {
			t.Fatal("duplicate in dialable set")
		}
		seen[s] = true
	}
	// DNS list size target (scaled).
	want := p.scaled(p.DNSListSize)
	if len(v.DNS) < want*8/10 || len(v.DNS) > want*12/10 {
		t.Errorf("DNS list = %d, want ≈%d", len(v.DNS), want)
	}
}

func TestSyncedAtSemantics(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	// A persistent station is synced shortly after epoch + rejoin IBD.
	var persistent *Station
	for _, s := range u.Reachable {
		if s.Persistent {
			persistent = s
			break
		}
	}
	if persistent == nil {
		t.Fatal("no persistent station")
	}
	if persistent.SyncedAt(p.Epoch.Add(time.Minute), p) {
		t.Error("synced during IBD window")
	}
	if !persistent.SyncedAt(p.Epoch.Add(time.Hour), p) {
		t.Error("not synced after IBD window")
	}
	// A fresh station needs the long first-join IBD.
	var fresh *Station
	for _, s := range u.Reachable {
		if s.Fresh && len(s.Sessions) > 0 &&
			s.Sessions[0].Duration() > p.IBDFirstJoin+time.Hour {
			fresh = s
			break
		}
	}
	if fresh != nil {
		start := fresh.Sessions[0].Start
		if fresh.SyncedAt(start.Add(p.IBDRejoin+time.Minute), p) {
			t.Error("fresh station synced before first-join IBD completes")
		}
		if !fresh.SyncedAt(start.Add(p.IBDFirstJoin+time.Minute), p) {
			t.Error("fresh station not synced after first-join IBD")
		}
	}
}

func TestNetAddrTimestampPast(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	mid := p.Epoch.Add(10 * 24 * time.Hour)
	s := u.Reachable[0]
	na := u.NetAddr(s, mid, StationRand(p.Seed, mid, s.ID))
	if na.Timestamp.After(mid) {
		t.Error("gossip timestamp in the future")
	}
	if mid.Sub(na.Timestamp) > 3*time.Hour {
		t.Error("gossip timestamp too old")
	}
	if na.Services != wire.SFNodeNetwork {
		t.Error("missing service flags")
	}
}

func TestParams2019LowerChurn(t *testing.T) {
	p20 := DefaultParams(1, 1)
	p19 := Params2019(1, 1)
	if p19.MeanSessionOn <= p20.MeanSessionOn {
		t.Error("2019 sessions should be longer than 2020")
	}
	if p19.FlapperFraction >= p20.FlapperFraction {
		t.Error("2019 should have fewer flappers")
	}
}

func TestPortAssignment(t *testing.T) {
	p := testParams()
	u := generate(t, p)
	def := 0
	for _, s := range u.Reachable {
		if s.Addr.Port() == wire.DefaultPort {
			def++
		}
	}
	frac := float64(def) / float64(len(u.Reachable))
	if frac < 0.92 || frac > 0.99 {
		t.Errorf("default-port share (reachable) = %.3f, want ≈0.958", frac)
	}
	defU := 0
	for _, s := range u.Unreachable {
		if s.Addr.Port() == wire.DefaultPort {
			defU++
		}
	}
	fracU := float64(defU) / float64(len(u.Unreachable))
	if fracU < 0.85 || fracU > 0.92 {
		t.Errorf("default-port share (unreachable) = %.3f, want ≈0.885", fracU)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	p := DefaultParams(1, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
