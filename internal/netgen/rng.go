package netgen

import (
	"math/rand/v2"
	"time"

	"repro/internal/addridx"
)

// This file derives the deterministic per-station RNG streams used on
// the crawl hot paths. Every stream is a pure function of (universe
// seed, experiment instant, dense StationID), so the parallel crawl
// fan-out produces byte-identical results at any worker count — no
// shared sequential generator is consumed in dial order.
//
// The streams are PCG (math/rand/v2), seeded in O(1). The previous
// implementation seeded one math/rand lagged-Fibonacci source per dial
// and per address book, and that 607-word seeding dominated crawl CPU
// profiles (~50% of samples) before any address was even sampled.

// splitmix64 is the SplitMix64 finalizer, used to decorrelate the seed
// components before they select a PCG stream.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stationStream folds a stream selector and a dense station ID into the
// second PCG seed word.
func stationStream(sel uint64, id addridx.ID) uint64 {
	return splitmix64(sel ^ splitmix64(uint64(id)+0x9e3779b97f4a7c15))
}

// StationSeed returns the two PCG seed words for station id at instant
// at — the stream StationRand draws from, exposed so hot paths can
// reseed a pooled rand.PCG in place instead of allocating a fresh
// generator per dial.
func StationSeed(seed int64, at time.Time, id addridx.ID) (uint64, uint64) {
	return uint64(seed), stationStream(uint64(at.UnixNano()), id)
}

// StationRand returns the RNG stream for station id at the instant at —
// the dial/session randomness of the popsim crawler backend.
func StationRand(seed int64, at time.Time, id addridx.ID) *rand.Rand {
	return rand.New(rand.NewPCG(StationSeed(seed, at, id)))
}

// bookRand returns the RNG stream for station id's address book in
// crawl interval crawlIdx. Book content is keyed to the interval, not
// the instant, so repeated GETADDR drains within one crawl see one
// stable book.
func bookRand(seed int64, crawlIdx int64, id addridx.ID) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), stationStream(splitmix64(uint64(crawlIdx)), id)))
}
