// Package netgen generates the synthetic network populations and churn
// traces that stand in for the live Bitcoin network the paper measured.
// Every calibration constant is taken from the paper's reported
// measurements (cited inline); the generator plants the *inputs*
// (population sizes, AS placement, lifetime mixtures, gossip composition)
// and the analyses recompute the paper's *outputs* from the generated
// data, so the reproduction exercises the same estimation pipeline as the
// original study.
package netgen

import "time"

// Params holds every knob of the synthetic universe. DefaultParams
// returns the 2020 calibration; Params2019 returns the 2019 regime used
// for the Figure 1 contrast.
type Params struct {
	// Seed drives all generation randomness.
	Seed int64
	// Scale multiplies every population size; tests use small scales,
	// figure reproduction uses 1.0.
	Scale float64
	// Horizon is the measurement duration (paper: 60 days, 04 Apr –
	// 04 Jun 2020).
	Horizon time.Duration
	// Epoch is the trace start time.
	Epoch time.Time

	// --- Reachable population (§III-A, Figure 3) ---

	// SteadyReachable is the average number of reachable nodes online at
	// any time (paper: 10,114 from Bitnodes).
	SteadyReachable int
	// PersistentReachable is the number of nodes that never leave
	// (paper Figure 12: 3,034 end-to-end lines).
	PersistentReachable int
	// FreshPerDay is the arrival rate of ephemeral nodes: addresses that
	// appear once, stay for EphemeralLifetime on average, and never
	// return. Together with the recurring transients this reproduces the
	// paper's 28,781 uniques, ≈708 daily departures, and ≈16.6-day mean
	// lifetime.
	FreshPerDay float64
	// EphemeralLifetime is the mean single-session lifetime of fresh
	// arrivals.
	EphemeralLifetime time.Duration
	// MeanSessionOn and MeanSessionOff parameterize the exponential
	// on/off sessions of recurring transient nodes. The on/off ratio
	// sets their duty cycle; the generator sizes the pool so the steady
	// online population matches SteadyReachable.
	MeanSessionOn  time.Duration
	MeanSessionOff time.Duration
	// FlapperFraction is the share of transient nodes with fast on/off
	// cycles (MeanSessionOn/8); these drive the 10-minute-granularity
	// synchronized-departure counts (3.9/10 min in 2019 vs 7.6/10 min in
	// 2020) without inflating the daily churn much.
	FlapperFraction float64
	// ReachableDefaultPortPct is the share of reachable nodes on port
	// 8333 (paper: 95.78%).
	ReachableDefaultPortPct float64
	// IBDFirstJoin is how long a brand-new node needs to download the
	// blockchain before contributing to synchronization (paper: "a few
	// days"; we use 2 days).
	IBDFirstJoin time.Duration
	// IBDRejoin is the catch-up time for a returning node (paper §IV-D:
	// 11 minutes 14 seconds measured).
	IBDRejoin time.Duration

	// --- Unreachable population (§IV-A, Figures 4–5) ---

	// InitialUnreachable is the number of unreachable addresses visible
	// in gossip at the trace start (paper: ≈195K per experiment).
	InitialUnreachable int
	// UnreachablePerDay is the arrival rate of new unique unreachable
	// addresses (paper: (694,696 − 195K)/60 ≈ 8.3K/day).
	UnreachablePerDay float64
	// UnreachableTTL is how long an unreachable address stays visible in
	// gossip (tuned so the per-experiment count holds at ≈195K).
	UnreachableTTL time.Duration
	// ResponsiveFraction is the share of unreachable addresses that are
	// actually running Bitcoin behind NAT (paper: 163,496/694,696 =
	// 23.54%).
	ResponsiveFraction float64
	// ResponsiveTTLBoost multiplies the TTL of responsive addresses:
	// real nodes outlive stale gossip entries, which is why the paper
	// sees 27.7% responsive per experiment against 23.5% cumulative.
	ResponsiveTTLBoost float64
	// UnreachableDefaultPortPct is the share of unreachable addresses on
	// port 8333 (paper: 88.54%; the rest spread over 9,414 ports).
	UnreachableDefaultPortPct float64

	// --- Addressing protocol (§IV-B, Figures 7–8) ---

	// AddrReachableShare is the fraction of reachable addresses in an
	// average ADDR message (paper: 14.9%).
	AddrReachableShare float64
	// MaliciousCount is the number of reachable nodes flooding
	// unreachable-only ADDR responses (paper: 73).
	MaliciousCount int
	// MaliciousInAS3320 is how many of them share AS3320 (paper: 43).
	MaliciousInAS3320 int
	// MaliciousHeavyCount is how many flooders sent >100K addresses
	// (paper: 8, with the maximum >400K).
	MaliciousHeavyCount int

	// --- AS placement (§IV-A1, Table I) ---

	// ReachableASes, UnreachableASes, and ResponsiveASes are the numbers
	// of distinct ASes hosting each class (paper: 2,000 / 8,494 / 4,453).
	ReachableASes   int
	UnreachableASes int
	ResponsiveASes  int
	// TailAlpha shapes each class's AS long tail; tuned so the ASes
	// needed to cover 50% of nodes are ≈25 / 36 / 24.
	ReachableTailAlpha   float64
	UnreachableTailAlpha float64
	ResponsiveTailAlpha  float64

	// --- Seed databases (§III-A, Figure 3) ---

	// BitnodesCoverage is the fraction of online reachable nodes the
	// Bitnodes view lists (≈1.0; the view also lags by BitnodesLag).
	BitnodesCoverage float64
	// DNSListSize targets the DNS seeder database size (paper: 6,637
	// with 6,078 common with Bitnodes).
	DNSListSize int
	// DNSOverlapFraction is the share of the DNS list also on Bitnodes.
	DNSOverlapFraction float64
	// CriticalInfraPct is the share of addresses blacklisted as critical
	// infrastructure (paper: 439/10,114 ≈ 4.3%).
	CriticalInfraPct float64

	// --- Crawl model (§III, Figures 3–5) ---

	// CrawlInterval is the cadence of crawl experiments (paper: roughly
	// daily over 60 days).
	CrawlInterval time.Duration
	// ConnectSuccessRate is the probability that dialing a listed
	// reachable node succeeds (listings go stale and inbound slots fill;
	// paper: connected to 8,270 of ~9,700 dialable listings ≈ 0.855).
	ConnectSuccessRate float64
	// BookSize is the number of addresses a reachable node's tables
	// reveal to the iterative GETADDR crawl (Algorithm 1).
	BookSize int
}

// Paper-reported AS shares for Table I (percent of nodes per ASN). These
// seed the generator's AS distributions; the analysis recovers them from
// the placed populations.
var (
	// ReachableASShares is Table I column "% Rb".
	ReachableASShares = map[uint32]float64{
		3320: 8.08, 24940: 5.05, 8881: 4.60, 16509: 3.62, 6805: 2.97,
		14061: 2.84, 7922: 2.55, 16276: 2.43, 3209: 2.06, 12322: 1.37,
		7545: 1.33, 15169: 1.03, 3303: 0.99, 6830: 0.95, 12389: 0.94,
		701: 0.88, 20676: 0.83, 51167: 0.82, 3352: 0.80, 4134: 0.76,
	}
	// UnreachableASShares is Table I column "% Urb".
	UnreachableASShares = map[uint32]float64{
		3320: 6.36, 4134: 5.34, 7922: 4.24, 6939: 3.69, 8881: 2.59,
		4837: 2.28, 12389: 2.04, 6830: 1.89, 3209: 1.65, 16509: 1.54,
		7018: 1.32, 6805: 1.31, 9009: 1.19, 2856: 1.14, 3215: 0.80,
		4808: 0.80, 14061: 0.78, 22773: 0.74, 1221: 0.74, 24940: 0.72,
	}
	// ResponsiveASShares is Table I column "% Resp".
	ResponsiveASShares = map[uint32]float64{
		4134: 6.18, 3320: 5.90, 12389: 4.03, 4837: 3.77, 9009: 3.28,
		8881: 3.07, 6805: 2.87, 3209: 2.51, 7922: 1.56, 14061: 1.44,
		6830: 1.43, 3352: 1.25, 24940: 1.18, 3269: 1.15, 4808: 1.13,
		60068: 1.12, 209: 1.11, 7545: 1.10, 701: 1.07, 16276: 0.99,
	}
)

// DefaultParams returns the 2020 calibration at the given scale.
func DefaultParams(seed int64, scale float64) Params {
	return Params{
		Seed:    seed,
		Scale:   scale,
		Horizon: 60 * 24 * time.Hour,
		Epoch:   time.Date(2020, time.April, 4, 0, 0, 0, 0, time.UTC),

		SteadyReachable:         10114,
		PersistentReachable:     3034,
		FreshPerDay:             177,
		EphemeralLifetime:       4 * 24 * time.Hour,
		MeanSessionOn:           12 * 24 * time.Hour,
		MeanSessionOff:          24 * 24 * time.Hour,
		FlapperFraction:         0.08,
		ReachableDefaultPortPct: 0.9578,
		IBDFirstJoin:            48 * time.Hour,
		IBDRejoin:               11*time.Minute + 14*time.Second,

		InitialUnreachable:        195000,
		UnreachablePerDay:         8300,
		UnreachableTTL:            21 * 24 * time.Hour,
		ResponsiveFraction:        0.2354,
		ResponsiveTTLBoost:        1.7,
		UnreachableDefaultPortPct: 0.8854,

		AddrReachableShare:  0.149,
		MaliciousCount:      73,
		MaliciousInAS3320:   43,
		MaliciousHeavyCount: 8,

		ReachableASes:        2000,
		UnreachableASes:      8494,
		ResponsiveASes:       4453,
		ReachableTailAlpha:   0.65,
		UnreachableTailAlpha: 0.82,
		ResponsiveTailAlpha:  0.68,

		BitnodesCoverage:   0.96,
		DNSListSize:        6637,
		DNSOverlapFraction: 0.916, // 6,078 / 6,637
		CriticalInfraPct:   0.0434,

		CrawlInterval:      24 * time.Hour,
		ConnectSuccessRate: 0.855,
		BookSize:           2500,
	}
}

// Params2019 returns the 2019 regime: identical protocol but roughly half
// the churn among synchronized nodes (paper §IV-D: 3.9 vs 7.6
// synchronized departures per 10 minutes), realized as longer sessions
// and fewer flappers.
func Params2019(seed int64, scale float64) Params {
	p := DefaultParams(seed, scale)
	p.Epoch = time.Date(2019, time.September, 1, 0, 0, 0, 0, time.UTC)
	p.MeanSessionOn = 24 * 24 * time.Hour
	p.MeanSessionOff = 48 * 24 * time.Hour
	p.FlapperFraction = 0.06
	p.FreshPerDay = 90
	p.EphemeralLifetime = 6 * 24 * time.Hour
	return p
}

// scaled applies the Scale factor to a population size, with a floor of
// one when the unscaled value is positive.
func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 && n > 0 {
		v = 1
	}
	return v
}

// scaledF applies the Scale factor to a rate.
func (p Params) scaledF(v float64) float64 { return v * p.Scale }
