package netgen

import (
	"testing"
	"testing/quick"
	"time"
)

// Property-based tests over the generator's structural invariants.

// TestUniverseInvariantsProperty: for arbitrary seeds and scales, every
// generated universe satisfies the structural contract — disjoint address
// spaces, session ordering, visibility windows, persistent coverage.
func TestUniverseInvariantsProperty(t *testing.T) {
	f := func(seed int64, scalePct uint8) bool {
		scale := 0.005 + float64(scalePct%20)/1000 // 0.005 .. 0.024
		u, err := Generate(DefaultParams(seed, scale))
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		for _, s := range u.Reachable {
			key := s.Addr.String()
			if seen[key] {
				return false // duplicate address
			}
			seen[key] = true
			if s.Class != ClassReachable {
				return false
			}
			for i := 1; i < len(s.Sessions); i++ {
				if s.Sessions[i].Start.Before(s.Sessions[i-1].End) {
					return false // overlapping sessions
				}
			}
			if s.Persistent && len(s.Sessions) != 1 {
				return false
			}
		}
		for _, s := range u.Unreachable {
			key := s.Addr.String()
			if seen[key] {
				return false
			}
			seen[key] = true
			if s.Class != ClassResponsive && s.Class != ClassSilent {
				return false
			}
			if !s.Visible.End.After(s.Visible.Start) {
				return false // empty visibility window
			}
		}
		// ByAddr agrees with the population lists.
		for _, s := range u.Reachable[:min(len(u.Reachable), 20)] {
			if u.ByAddr(s.Addr) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestOnlineCountStationaryProperty: the online population stays within a
// band around the steady-state target across the horizon (no drift from
// the session process).
func TestOnlineCountStationaryProperty(t *testing.T) {
	u, err := Generate(DefaultParams(44, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	p := u.Params
	steady := p.scaled(p.SteadyReachable)
	for day := 5; day < 60; day += 10 {
		at := p.Epoch.Add(time.Duration(day) * 24 * time.Hour)
		online := len(u.OnlineReachable(at))
		if online < steady*70/100 || online > steady*130/100 {
			t.Errorf("day %d: online = %d, want within 30%% of %d", day, online, steady)
		}
	}
}
