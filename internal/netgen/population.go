package netgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/addridx"
	"repro/internal/asmap"
	"repro/internal/wire"
)

// Class labels the node populations of the study.
type Class int

// Node classes.
const (
	// ClassReachable nodes accept inbound connections.
	ClassReachable Class = iota + 1
	// ClassResponsive nodes are unreachable but run Bitcoin (they answer
	// the scanner's VER probe).
	ClassResponsive
	// ClassSilent addresses never answer: stale gossip, firewalled
	// hosts, or fabricated advertisements.
	ClassSilent
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassReachable:
		return "reachable"
	case ClassResponsive:
		return "responsive"
	case ClassSilent:
		return "silent"
	default:
		return "unknown"
	}
}

// Interval is a half-open time range [Start, End).
type Interval struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Station is one endpoint of the synthetic universe across the whole
// measurement horizon.
type Station struct {
	// Addr is the station's address (IP embeds the AS assignment).
	Addr netip.AddrPort
	// ID is the station's dense identifier, interned at Universe
	// construction (see internal/addridx): reachable stations in
	// generation order, then unreachable stations in appearance order.
	// Hot paths key membership bitsets and per-target RNG streams off
	// it instead of hashing the 28-byte address.
	ID addridx.ID
	// ASN hosts the station.
	ASN uint32
	// Class is the station's population.
	Class Class
	// Persistent reachable stations never leave the network.
	Persistent bool
	// Flapper reachable stations cycle on/off quickly.
	Flapper bool
	// Fresh marks stations whose first appearance is after the trace
	// start (never seen before).
	Fresh bool
	// Critical marks addresses on the critical-infrastructure blacklist
	// (excluded from crawling, §III-A).
	Critical bool
	// Malicious reachable stations answer GETADDR with unreachable-only
	// floods (§IV-B).
	Malicious bool
	// FloodBudget is the number of unreachable addresses a malicious
	// station will advertise in total.
	FloodBudget int
	// Sessions are the online intervals (reachable stations).
	Sessions []Interval
	// Visible is the gossip-visibility window (unreachable stations).
	Visible Interval
	// OnDNS marks reachable stations listed in the DNS seeder database.
	OnDNS bool
	// OnBitnodes marks reachable stations covered by the Bitnodes view.
	OnBitnodes bool
}

// OnlineAt reports whether a reachable station is online at t.
func (s *Station) OnlineAt(t time.Time) bool {
	for _, iv := range s.Sessions {
		if iv.Contains(t) {
			return true
		}
		if iv.Start.After(t) {
			return false
		}
	}
	return false
}

// VisibleAt reports whether an unreachable station's address is gossiped
// at t.
func (s *Station) VisibleAt(t time.Time) bool { return s.Visible.Contains(t) }

// FirstSeen returns the station's first appearance time.
func (s *Station) FirstSeen() time.Time {
	if s.Class == ClassReachable {
		if len(s.Sessions) == 0 {
			return time.Time{}
		}
		return s.Sessions[0].Start
	}
	return s.Visible.Start
}

// TotalOnline returns the station's cumulative online time.
func (s *Station) TotalOnline() time.Duration {
	var total time.Duration
	for _, iv := range s.Sessions {
		total += iv.Duration()
	}
	return total
}

// SyncedAt reports whether a reachable station is synchronized with the
// chain tip at t: online, and past the IBD period of its current session
// (a long first-join IBD for fresh nodes, the measured 11-minute rejoin
// catch-up otherwise).
func (s *Station) SyncedAt(t time.Time, p Params) bool {
	for i, iv := range s.Sessions {
		if !iv.Contains(t) {
			continue
		}
		ibd := p.IBDRejoin
		if i == 0 && s.Fresh {
			ibd = p.IBDFirstJoin
		}
		return t.Sub(iv.Start) >= ibd
	}
	return false
}

// Universe is the generated synthetic network.
type Universe struct {
	// Params used for generation.
	Params Params
	// Reachable stations, in generation order.
	Reachable []*Station
	// Unreachable stations (responsive and silent).
	Unreachable []*Station
	// Alloc maps the universe's IPs back to ASNs.
	Alloc *asmap.IPAllocator
	// Index interns every station address into a dense StationID; it is
	// built once at the end of Generate and backs ByAddr/ByID plus every
	// crawl-path membership bitset.
	Index *addridx.Index

	stations []*Station // by dense ID
	rng      *rand.Rand

	pools    instantPools // memoized per-instant candidate pools
	bookMemo bookCache    // memoized per-instant address books
}

// instantPools memoizes the candidate pools of the most recently queried
// instant. A crawl experiment freezes one instant and then asks for the
// same pools once per view (and once per AddrBook in the slow path), so
// remembering the last answer turns the repeated full-population scans
// into pointer returns. The cached slices are allocated exactly (no
// spare capacity) and never mutated afterwards, so handing the same
// slice to multiple callers is safe: callers treat the pools as
// read-only, and an append by any caller reallocates.
type instantPools struct {
	mu      sync.Mutex
	at      time.Time
	ok      bool
	online  []*Station
	visible []*Station
}

// Generate builds the universe from p.
func Generate(p Params) (*Universe, error) {
	if p.Scale <= 0 {
		return nil, fmt.Errorf("netgen: scale must be positive, got %v", p.Scale)
	}
	if p.Horizon <= 0 {
		return nil, fmt.Errorf("netgen: horizon must be positive, got %v", p.Horizon)
	}
	u := &Universe{
		Params: p,
		Alloc:  asmap.NewIPAllocator(0),
		rng:    rand.New(rand.NewSource(p.Seed)),
	}
	if err := u.generateReachable(); err != nil {
		return nil, err
	}
	if err := u.generateUnreachable(); err != nil {
		return nil, err
	}
	u.assignSeedViews()
	u.assignMalicious()
	if err := u.buildIndex(); err != nil {
		return nil, err
	}
	return u, nil
}

// buildIndex interns every station into the dense ID space. It runs
// after generation (the unreachable list is sorted by appearance first),
// so IDs are stable properties of (Params): reachable stations in
// generation order, then unreachable stations in appearance order.
func (u *Universe) buildIndex() error {
	n := len(u.Reachable) + len(u.Unreachable)
	addrs := make([]netip.AddrPort, 0, n)
	u.stations = make([]*Station, 0, n)
	intern := func(s *Station) {
		s.ID = addridx.ID(len(u.stations))
		u.stations = append(u.stations, s)
		addrs = append(addrs, s.Addr)
	}
	for _, s := range u.Reachable {
		intern(s)
	}
	for _, s := range u.Unreachable {
		intern(s)
	}
	idx, err := addridx.Build(addrs)
	if err != nil {
		return fmt.Errorf("netgen: intern stations: %w", err)
	}
	u.Index = idx
	return nil
}

// ByAddr returns the station at addr, or nil.
func (u *Universe) ByAddr(addr netip.AddrPort) *Station {
	id, ok := u.Index.Lookup(addr)
	if !ok {
		return nil
	}
	return u.stations[id]
}

// ByID returns the station with the given dense ID, or nil.
func (u *Universe) ByID(id addridx.ID) *Station {
	if int(id) >= len(u.stations) {
		return nil
	}
	return u.stations[id]
}

// NumStations returns the total interned station count (reachable plus
// unreachable) — the sizing bound for addridx.Set bitsets over this
// universe.
func (u *Universe) NumStations() int { return len(u.stations) }

// End returns the end of the measurement horizon.
func (u *Universe) End() time.Time { return u.Params.Epoch.Add(u.Params.Horizon) }

// toShares converts Table I percentages into fractional shares.
func toShares(pct map[uint32]float64) map[uint32]float64 {
	out := make(map[uint32]float64, len(pct))
	for asn, v := range pct {
		out[asn] = v / 100
	}
	return out
}

// pickPort picks the default port with probability pct, otherwise a
// random ephemeral-looking port.
func (u *Universe) pickPort(pct float64) uint16 {
	if u.rng.Float64() < pct {
		return wire.DefaultPort
	}
	return uint16(1024 + u.rng.Intn(64000))
}

// generateReachable builds the reachable population with sessions.
func (u *Universe) generateReachable() error {
	p := u.Params
	dist, err := asmap.NewDistribution(asmap.PowerLawWeights(
		toShares(ReachableASShares), p.ReachableASes-len(ReachableASShares),
		100000, p.ReachableTailAlpha))
	if err != nil {
		return fmt.Errorf("netgen: reachable AS distribution: %w", err)
	}

	steady := p.scaled(p.SteadyReachable)
	persistent := p.scaled(p.PersistentReachable)
	if persistent > steady {
		persistent = steady
	}
	// Steady-state accounting: persistent + recurring-transient duty +
	// ephemeral stock must add to the steady online population.
	duty := float64(p.MeanSessionOn) / float64(p.MeanSessionOn+p.MeanSessionOff)
	freshPerDay := p.scaledF(p.FreshPerDay)
	ephemSteady := freshPerDay * p.EphemeralLifetime.Hours() / 24
	transientSteady := float64(steady-persistent) - ephemSteady
	if transientSteady < 0 {
		transientSteady = 0
	}
	transientPool := int(transientSteady / duty)
	freshTotal := int(freshPerDay * p.Horizon.Hours() / 24)
	initialEphemerals := int(ephemSteady)

	end := u.End()
	newStation := func(fresh bool) (*Station, error) {
		asn := dist.Sample(u.rng)
		ip, err := u.Alloc.Alloc(asn)
		if err != nil {
			return nil, fmt.Errorf("netgen: alloc reachable IP: %w", err)
		}
		s := &Station{
			Addr:     netip.AddrPortFrom(ip, u.pickPort(p.ReachableDefaultPortPct)),
			ASN:      asn,
			Class:    ClassReachable,
			Fresh:    fresh,
			Critical: u.rng.Float64() < p.CriticalInfraPct,
		}
		u.Reachable = append(u.Reachable, s)
		return s, nil
	}

	// Persistent core: online for the whole horizon.
	for i := 0; i < persistent; i++ {
		s, err := newStation(false)
		if err != nil {
			return err
		}
		s.Persistent = true
		s.Sessions = []Interval{{Start: p.Epoch, End: end}}
	}

	// Recurring transient pool: start online with probability equal to
	// the duty cycle (the stationary distribution of the on/off process).
	for i := 0; i < transientPool; i++ {
		s, err := newStation(false)
		if err != nil {
			return err
		}
		s.Flapper = u.rng.Float64() < p.FlapperFraction
		startOnline := u.rng.Float64() < duty
		u.fillSessions(s, p.Epoch, end, startOnline)
	}

	// Ephemeral stock present at the epoch, with residual lifetimes.
	for i := 0; i < initialEphemerals; i++ {
		s, err := newStation(false)
		if err != nil {
			return err
		}
		u.fillEphemeralSession(s, p.Epoch, end)
	}

	// Fresh ephemeral arrivals, uniform over the horizon: one session,
	// never seen again.
	for i := 0; i < freshTotal; i++ {
		s, err := newStation(true)
		if err != nil {
			return err
		}
		arrive := p.Epoch.Add(time.Duration(u.rng.Float64() * float64(p.Horizon)))
		u.fillEphemeralSession(s, arrive, end)
	}
	return nil
}

// fillEphemeralSession gives s a single online session of exponential
// length starting at from.
func (u *Universe) fillEphemeralSession(s *Station, from, end time.Time) {
	d := time.Duration(u.rng.ExpFloat64() * float64(u.Params.EphemeralLifetime))
	if d < time.Minute {
		d = time.Minute
	}
	segEnd := from.Add(d)
	if segEnd.After(end) {
		segEnd = end
	}
	if segEnd.After(from) {
		s.Sessions = []Interval{{Start: from, End: segEnd}}
	}
}

// fillSessions generates alternating exponential on/off sessions for s in
// [from, end).
func (u *Universe) fillSessions(s *Station, from, end time.Time, startOnline bool) {
	p := u.Params
	onMean, offMean := p.MeanSessionOn, p.MeanSessionOff
	if s.Flapper {
		onMean /= 6
		offMean /= 6
	}
	t := from
	online := startOnline
	for t.Before(end) {
		mean := offMean
		if online {
			mean = onMean
		}
		d := time.Duration(u.rng.ExpFloat64() * float64(mean))
		if d < time.Minute {
			d = time.Minute
		}
		segEnd := t.Add(d)
		if segEnd.After(end) {
			segEnd = end
		}
		if online {
			s.Sessions = append(s.Sessions, Interval{Start: t, End: segEnd})
		}
		t = segEnd
		online = !online
	}
}

// generateUnreachable builds the unreachable population: the initial
// visible stock plus Poisson arrivals, split responsive/silent with
// distinct AS distributions and TTLs.
func (u *Universe) generateUnreachable() error {
	p := u.Params
	// The responsive population is a subset of the unreachable one, so
	// its tail draws from the same synthetic ASN range; it just spans
	// fewer ASes with its own skew.
	respDist, err := asmap.NewDistribution(asmap.PowerLawWeights(
		toShares(ResponsiveASShares), p.ResponsiveASes-len(ResponsiveASShares),
		300000, p.ResponsiveTailAlpha))
	if err != nil {
		return fmt.Errorf("netgen: responsive AS distribution: %w", err)
	}
	silentDist, err := asmap.NewDistribution(asmap.PowerLawWeights(
		toShares(UnreachableASShares), p.UnreachableASes-len(UnreachableASShares),
		300000, p.UnreachableTailAlpha))
	if err != nil {
		return fmt.Errorf("netgen: unreachable AS distribution: %w", err)
	}

	initial := p.scaled(p.InitialUnreachable)
	arrivals := int(p.scaledF(p.UnreachablePerDay) * p.Horizon.Hours() / 24)
	end := u.End()

	add := func(appear time.Time) error {
		responsive := u.rng.Float64() < p.ResponsiveFraction
		class := ClassSilent
		dist := silentDist
		ttl := p.UnreachableTTL
		if responsive {
			class = ClassResponsive
			dist = respDist
			ttl = time.Duration(float64(p.UnreachableTTL) * p.ResponsiveTTLBoost)
		}
		// Jitter TTL ±30% so expiry is not synchronized.
		ttl = time.Duration(float64(ttl) * (0.7 + 0.6*u.rng.Float64()))
		asn := dist.Sample(u.rng)
		ip, err := u.Alloc.Alloc(asn)
		if err != nil {
			return fmt.Errorf("netgen: alloc unreachable IP: %w", err)
		}
		expire := appear.Add(ttl)
		if expire.After(end.Add(p.UnreachableTTL)) {
			expire = end.Add(p.UnreachableTTL)
		}
		s := &Station{
			Addr:    netip.AddrPortFrom(ip, u.pickPort(p.UnreachableDefaultPortPct)),
			ASN:     asn,
			Class:   class,
			Visible: Interval{Start: appear, End: expire},
		}
		u.Unreachable = append(u.Unreachable, s)
		return nil
	}

	// Initial stock: appeared before the epoch, with residual lifetime;
	// model by back-dating the appearance uniformly within one TTL.
	for i := 0; i < initial; i++ {
		back := time.Duration(u.rng.Float64() * float64(p.UnreachableTTL))
		if err := add(p.Epoch.Add(-back)); err != nil {
			return err
		}
	}
	for i := 0; i < arrivals; i++ {
		at := p.Epoch.Add(time.Duration(u.rng.Float64() * float64(p.Horizon)))
		if err := add(at); err != nil {
			return err
		}
	}
	// Keep unreachable stations sorted by appearance for reproducible
	// iteration.
	sort.Slice(u.Unreachable, func(i, j int) bool {
		return u.Unreachable[i].Visible.Start.Before(u.Unreachable[j].Visible.Start)
	})
	return nil
}

// assignSeedViews marks which reachable stations appear in the Bitnodes
// and DNS-seeder databases (Figure 3's source overlap structure). The DNS
// database records nodes that recently queried the seeder, so its entries
// skew heavily toward long-lived, frequently-online stations — which is
// why the paper finds 92% of its DNS list concurrently on Bitnodes.
func (u *Universe) assignSeedViews() {
	p := u.Params
	for _, s := range u.Reachable {
		s.OnBitnodes = u.rng.Float64() < p.BitnodesCoverage
	}
	dnsTarget := p.scaled(p.DNSListSize)
	overlap := int(float64(dnsTarget) * p.DNSOverlapFraction)

	// Weighted sampling without replacement (exponential-key trick):
	// key = -ln(u)/w; the smallest keys win. Weight is the squared
	// online fraction, pushing the DNS list toward stable stations.
	type cand struct {
		s   *Station
		key float64
	}
	var onBit, offBit []cand
	horizon := float64(p.Horizon)
	for _, s := range u.Reachable {
		frac := float64(s.TotalOnline()) / horizon
		w := frac*frac*frac*frac + 1e-9
		c := cand{s: s, key: -logFloat(u.rng.Float64()) / w}
		if s.OnBitnodes {
			onBit = append(onBit, c)
		} else {
			offBit = append(offBit, c)
		}
	}
	sort.Slice(onBit, func(i, j int) bool { return onBit[i].key < onBit[j].key })
	sort.Slice(offBit, func(i, j int) bool { return offBit[i].key < offBit[j].key })
	for i := 0; i < overlap && i < len(onBit); i++ {
		onBit[i].s.OnDNS = true
	}
	for i := 0; i < dnsTarget-overlap && i < len(offBit); i++ {
		offBit[i].s.OnDNS = true
	}
}

// logFloat guards math.Log against a zero draw.
func logFloat(v float64) float64 {
	if v <= 0 {
		v = 1e-12
	}
	return math.Log(v)
}

// assignMalicious marks flooder stations (§IV-B): preferentially placed
// in AS3320, persistent (they were observable across the crawl), with a
// heavy-tailed flood budget (8 nodes >100K, max >400K).
func (u *Universe) assignMalicious() {
	p := u.Params
	want := p.scaled(p.MaliciousCount)
	wantAS3320 := p.scaled(p.MaliciousInAS3320)
	heavy := p.scaled(p.MaliciousHeavyCount)
	if want == 0 {
		return
	}
	var in3320, others []*Station
	for _, s := range u.Reachable {
		if !s.Persistent || s.Critical {
			continue
		}
		if s.ASN == 3320 {
			in3320 = append(in3320, s)
		} else {
			others = append(others, s)
		}
	}
	u.rng.Shuffle(len(in3320), func(i, j int) { in3320[i], in3320[j] = in3320[j], in3320[i] })
	u.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	var chosen []*Station
	for _, s := range in3320 {
		if len(chosen) >= wantAS3320 {
			break
		}
		chosen = append(chosen, s)
	}
	for _, s := range others {
		if len(chosen) >= want {
			break
		}
		chosen = append(chosen, s)
	}
	for i, s := range chosen {
		s.Malicious = true
		// Flood budgets: heavy nodes 100K–450K, the rest log-uniform
		// 1K–100K (Figure 8's shape).
		if i < heavy {
			budget := 100000 + u.rng.Intn(350000)
			if i == 0 {
				budget = 400000 + u.rng.Intn(50000)
			}
			s.FloodBudget = int(float64(budget) * p.Scale)
		} else {
			lo, hi := math.Log(1000), math.Log(100000)
			s.FloodBudget = int(math.Exp(lo+u.rng.Float64()*(hi-lo)) * p.Scale)
		}
		if s.FloodBudget < 1 {
			s.FloodBudget = 1
		}
	}
}

// OnlineReachable returns the reachable stations online at t. The
// returned slice is shared with other callers asking about the same
// instant and must be treated as read-only.
func (u *Universe) OnlineReachable(t time.Time) []*Station {
	online, _ := u.poolsAt(t)
	return online
}

// VisibleUnreachable returns the unreachable stations gossiped at t,
// under the same shared read-only contract as OnlineReachable.
func (u *Universe) VisibleUnreachable(t time.Time) []*Station {
	_, visible := u.poolsAt(t)
	return visible
}

// poolsAt returns both candidate pools for instant t, computing and
// memoizing them on first request. The memo holds one instant only; a
// series sweep computes each instant once and never revisits, while
// repeated experiments at one instant (and the online+visible pair every
// caller wants together) hit the cache. Cached slices are exact-sized
// fresh allocations, so a superseded instant's slices stay valid in the
// hands of whoever holds them.
func (u *Universe) poolsAt(t time.Time) (online, visible []*Station) {
	u.pools.mu.Lock()
	defer u.pools.mu.Unlock()
	if u.pools.ok && u.pools.at.Equal(t) {
		return u.pools.online, u.pools.visible
	}
	nOnline, nVisible := 0, 0
	for _, s := range u.Reachable {
		if s.OnlineAt(t) {
			nOnline++
		}
	}
	for _, s := range u.Unreachable {
		if s.VisibleAt(t) {
			nVisible++
		}
	}
	if nOnline > 0 {
		online = make([]*Station, 0, nOnline)
	}
	if nVisible > 0 {
		visible = make([]*Station, 0, nVisible)
	}
	for _, s := range u.Reachable {
		if s.OnlineAt(t) {
			online = append(online, s)
		}
	}
	for _, s := range u.Unreachable {
		if s.VisibleAt(t) {
			visible = append(visible, s)
		}
	}
	u.pools.at, u.pools.ok = t, true
	u.pools.online, u.pools.visible = online, visible
	return online, visible
}
