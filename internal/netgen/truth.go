package netgen

import (
	"net/netip"
	"time"
)

// This file exposes the simulator's ground truth for estimator
// validation (ROADMAP item 4): the true unreachable census and the true
// per-station gossip out-degree that live-network measurements can only
// infer. Both are pure functions of (Params, t), like everything else
// derived from the universe, so estimator-error experiments are
// deterministic and cacheable.

// UnreachableCensusAt returns the true unreachable population at t: the
// number of gossip-visible unreachable stations, split into responsive
// (running Bitcoin behind NAT/firewall) and silent. visible is always
// responsive + silent. This is the quantity the announcement-recurrence
// estimator (arXiv:2102.12774) targets — every visible unreachable
// address is in the gossip pools reachable books sample from.
func (u *Universe) UnreachableCensusAt(t time.Time) (visible, responsive, silent int) {
	for _, s := range u.Unreachable {
		if !s.VisibleAt(t) {
			continue
		}
		visible++
		if s.Class == ClassResponsive {
			responsive++
		} else {
			silent++
		}
	}
	return visible, responsive, silent
}

// TrueDegree returns station s's true gossip out-degree at t: the
// number of DISTINCT addresses in the address book it would reveal
// through exhaustive GETADDR. Books are sampled with replacement, so
// this is strictly less than the book length whenever a draw repeats —
// and the distinct count is the exact quantity iterative
// address-return sampling (arXiv:2108.00815) converges to, since a
// crawler can never distinguish one book slot from a repeated draw of
// the same address.
func (u *Universe) TrueDegree(s *Station, t time.Time) int {
	return u.TrueDegreeFrom(s, t, u.OnlineReachable(t), u.VisibleUnreachable(t))
}

// TrueDegreeFrom is TrueDegree with the candidate pools precomputed
// (the AddrBookFrom pattern): an experiment measuring thousands of
// stations scans the universe once, not once per station. The book is
// regenerated from the same deterministic per-(station, crawl-interval)
// stream AddrBookFrom uses, so the truth matches what any crawl at t
// actually observes.
func (u *Universe) TrueDegreeFrom(s *Station, t time.Time, online, visible []*Station) int {
	book := u.AddrBookFrom(s, t, online, visible)
	distinct := make(map[netip.AddrPort]struct{}, len(book))
	for _, na := range book {
		distinct[na.Addr] = struct{}{}
	}
	return len(distinct)
}
