package stats

import (
	"reflect"
	"testing"
)

func TestCountersSnapshotSorted(t *testing.T) {
	var c Counters
	c.Inc("zeta")
	c.Add("alpha", 3)
	c.Inc("mid")
	c.Inc("alpha")
	want := []Counter{{"alpha", 4}, {"mid", 1}, {"zeta", 1}}
	if got := c.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("Snapshot() = %v, want %v", got, want)
	}
	if got := c.Get("alpha"); got != 4 {
		t.Errorf("Get(alpha) = %d, want 4", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	if got, want := c.String(), "alpha=4 mid=1 zeta=1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCountersZeroValue(t *testing.T) {
	var c Counters
	if got := c.Snapshot(); len(got) != 0 {
		t.Errorf("zero-value Snapshot() = %v, want empty", got)
	}
	if c.String() != "" {
		t.Errorf("zero-value String() = %q, want empty", c.String())
	}
}
