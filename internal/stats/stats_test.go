package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 {
		t.Errorf("Std of single sample = %v, want 0", s.Std)
	}
	if s.Mean != 7 || s.Median != 7 {
		t.Errorf("Mean/Median = %v/%v, want 7/7", s.Mean, s.Median)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},
		{0.25, 17.5},
		{-1, 10},  // clamped
		{1.5, 40}, // clamped
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	got := Quantiles(xs, qs)
	for i, q := range qs {
		want := Quantile(xs, q)
		if !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != len(xs) {
		t.Errorf("Total = %d, want %d", h.Total, len(xs))
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Errorf("sum of counts = %d, want %d", sum, len(xs))
	}
	// Max value must land in the last bin, not overflow.
	if h.Counts[4] == 0 {
		t.Error("last bin empty; max value lost")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Errorf("Total = %d, want 3", h.Total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err != ErrEmpty {
		t.Errorf("empty err = %v, want ErrEmpty", err)
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins: want error")
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	h, err := NewHistogram(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.Width
	}
	if !almostEqual(integral, 1, 1e-9) {
		t.Errorf("histogram density integral = %v, want 1", integral)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	grid := []float64{0, 1, 2.5, 4, 5}
	got := ECDF(xs, grid)
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("ECDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	got := ECDF(nil, []float64{1, 2})
	for i, v := range got {
		if v != 0 {
			t.Errorf("ECDF(empty)[%d] = %v, want 0", i, v)
		}
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n<2: want error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance: want error")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + 50
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid(0, 100, 2001)
	dens := k.Evaluate(grid)
	integral := Integrate(grid, dens)
	if !almostEqual(integral, 1, 0.01) {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEPeakNearMean(t *testing.T) {
	xs := []float64{10, 10.5, 9.5, 10.2, 9.8}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.At(10) <= k.At(20) {
		t.Error("density at sample mean should exceed density far away")
	}
}

func TestKDEExplicitBandwidth(t *testing.T) {
	k, err := NewKDE([]float64{1, 2, 3}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() != 2.5 {
		t.Errorf("Bandwidth = %v, want 2.5", k.Bandwidth())
	}
}

func TestKDEEmpty(t *testing.T) {
	if _, err := NewKDE(nil, 1); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestKDEDegenerateSample(t *testing.T) {
	// All-identical samples must not produce a zero bandwidth.
	k, err := NewKDE([]float64{5, 5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Errorf("Bandwidth = %v, want > 0", k.Bandwidth())
	}
	if v := k.At(5); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("At(5) = %v, want finite", v)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0, 10, 11)
	if len(g) != 11 {
		t.Fatalf("len = %d, want 11", len(g))
	}
	if g[0] != 0 || g[10] != 10 {
		t.Errorf("endpoints = %v, %v; want 0, 10", g[0], g[10])
	}
	if !almostEqual(g[5], 5, 1e-12) {
		t.Errorf("midpoint = %v, want 5", g[5])
	}
	if g := Grid(3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Errorf("Grid(n=1) = %v, want [3]", g)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		s := MustSummarize(xs)
		return va <= vb+1e-9 && va >= s.Min-1e-9 && vb <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ECDF is monotone non-decreasing over a sorted grid and ends at 1.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Clamp to a moderate range; extreme magnitudes make the
				// grid arithmetic itself lossy, which is not what this
				// property is about.
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := MustSummarize(xs)
		grid := Grid(s.Min-1, s.Max+1, 50)
		cdf := ECDF(xs, grid)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[len(cdf)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKDEEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		b.Fatal(err)
	}
	grid := Grid(-4, 4, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Evaluate(grid)
	}
}
