package stats

import (
	"math"
)

// KDE is a one-dimensional Gaussian kernel density estimator, the tool used
// to render the paper's Figure 1 (network synchronization density in 2019
// vs 2020).
type KDE struct {
	samples   []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth <= 0, Silverman's
// rule of thumb is used: h = 0.9 * min(std, IQR/1.34) * n^(-1/5).
// It returns ErrEmpty when xs is empty.
func NewKDE(xs []float64, bandwidth float64) (*KDE, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	samples := make([]float64, len(xs))
	copy(samples, xs)
	if bandwidth <= 0 {
		bandwidth = silverman(samples)
	}
	return &KDE{samples: samples, bandwidth: bandwidth}, nil
}

// silverman computes Silverman's rule-of-thumb bandwidth. It guards against
// degenerate (zero-spread) samples by falling back to a small constant.
func silverman(xs []float64) float64 {
	s := MustSummarize(xs)
	qs := Quantiles(xs, []float64{0.25, 0.75})
	iqr := qs[1] - qs[0]
	spread := s.Std
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread <= 0 {
		spread = 1e-3
	}
	return 0.9 * spread * math.Pow(float64(s.N), -0.2)
}

// Bandwidth reports the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// At evaluates the estimated density at x.
func (k *KDE) At(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	h := k.bandwidth
	for _, s := range k.samples {
		u := (x - s) / h
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.samples)) * h)
}

// Evaluate evaluates the density at every point of grid.
func (k *KDE) Evaluate(grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, g := range grid {
		out[i] = k.At(g)
	}
	return out
}

// Grid returns n evenly spaced points spanning [lo, hi] inclusive.
// For n < 2 it returns a single point at lo.
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Integrate approximates the integral of ys over xs using the trapezoid
// rule. xs must be sorted ascending and have the same length as ys; when
// these preconditions are violated the result is unspecified.
func Integrate(xs, ys []float64) float64 {
	var area float64
	for i := 1; i < len(xs) && i < len(ys); i++ {
		area += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return area
}
