// Package stats provides the statistical primitives used by the
// root-cause analyses: summary statistics, histograms, empirical CDFs,
// quantiles, and Gaussian kernel density estimation.
//
// The package is dependency-free and operates on plain float64 slices.
// All functions treat their inputs as read-only and never retain them.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
	Sum    float64
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f median=%.4f std=%.4f min=%.4f max=%.4f",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// Summarize computes descriptive statistics for xs.
// It returns ErrEmpty if xs has no elements.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:   len(xs),
		Min: xs[0],
		Max: xs[0],
	}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// MustSummarize is Summarize but panics on an empty sample. It is intended
// for analysis code paths where the sample is known to be non-empty.
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty sample
// and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles computes multiple quantiles in one pass over a single sorted
// copy of xs. The result has the same length as qs.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Histogram is a fixed-width binned count of a sample.
type Histogram struct {
	// Lo is the left edge of the first bin.
	Lo float64
	// Width is the width of every bin.
	Width float64
	// Counts holds the per-bin counts, left to right.
	Counts []int
	// Total is the number of samples binned (equals sum of Counts).
	Total int
}

// NewHistogram bins xs into n equal-width bins spanning [min, max].
// Values exactly equal to max land in the final bin. It returns ErrEmpty
// when xs is empty and an error when n < 1.
func NewHistogram(xs []float64, n int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", n)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	width := (hi - lo) / float64(n)
	if width == 0 {
		width = 1 // degenerate sample: single bin catches everything
	}
	h := &Histogram{Lo: lo, Width: width, Counts: make([]int, n)}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
		h.Total++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Density returns the normalized density of bin i such that the histogram
// integrates to 1.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.Total) * h.Width)
}

// ECDF returns the empirical CDF of xs evaluated at each point of grid.
// The grid does not need to be sorted.
func ECDF(xs, grid []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(grid))
	if len(sorted) == 0 {
		return out
	}
	for i, g := range grid {
		// Number of samples <= g.
		k := sort.SearchFloat64s(sorted, math.Nextafter(g, math.Inf(1)))
		out[i] = float64(k) / float64(len(sorted))
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error when the lengths differ or fewer than two samples
// are provided.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
