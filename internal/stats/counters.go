package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named event counters. The zero value is ready to
// use. Snapshots are sorted by name, so two counter sets accumulated by
// deterministic processes compare equal with reflect.DeepEqual.
//
// Deprecated: use obs.Registry counters instead. Counters allocates a
// map lookup per increment and sorts on every Snapshot; the obs
// registry hands out atomic handles resolved once and keeps its name
// index sorted at registration. All in-repo call sites have migrated;
// this type remains only for external users of the stats package.
type Counters struct {
	m map[string]int64
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the named counter's value (zero when never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Counter is one name/value pair of a snapshot.
type Counter struct {
	Name  string
	Value int64
}

// Snapshot returns all counters sorted by name.
func (c *Counters) Snapshot() []Counter {
	out := make([]Counter, 0, len(c.m))
	for name, v := range c.m {
		out = append(out, Counter{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as "name=value" pairs, sorted by name.
func (c *Counters) String() string {
	snap := c.Snapshot()
	parts := make([]string, len(snap))
	for i, ctr := range snap {
		parts[i] = fmt.Sprintf("%s=%d", ctr.Name, ctr.Value)
	}
	return strings.Join(parts, " ")
}
