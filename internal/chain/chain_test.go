package chain

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// makeTx builds a deterministic dummy transaction distinguished by seed.
func makeTx(seed uint32) wire.MsgTx {
	return wire.MsgTx{
		Version: 2,
		TxIn: []wire.TxIn{{
			PreviousOutPoint: wire.OutPoint{Index: seed},
			SignatureScript:  []byte{byte(seed), byte(seed >> 8), byte(seed >> 16)},
			Sequence:         0xffffffff,
		}},
		TxOut: []wire.TxOut{{Value: int64(seed) * 1000, PkScript: []byte{0x51}}},
	}
}

// nextBlock builds a valid successor of the chain tip with n extra txs.
func nextBlock(t *testing.T, c *Chain, n int, seedBase uint32) *wire.MsgBlock {
	t.Helper()
	tip, height := c.Tip()
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:   4,
			PrevBlock: tip,
			Timestamp: uint32(1586000000 + height*600),
			Bits:      0x207fffff,
		},
		Transactions: []wire.MsgTx{makeTx(seedBase)}, // coinbase stand-in
	}
	for i := 1; i <= n; i++ {
		blk.Transactions = append(blk.Transactions, makeTx(seedBase+uint32(i)))
	}
	blk.Header.MerkleRoot = BlockMerkleRoot(blk)
	return blk
}

func TestMerkleRootEmpty(t *testing.T) {
	if got := MerkleRoot(nil); !got.IsZero() {
		t.Errorf("MerkleRoot(nil) = %s, want zero", got)
	}
}

func TestMerkleRootSingle(t *testing.T) {
	h := chainhash.DoubleSHA256([]byte("tx"))
	if got := MerkleRoot([]chainhash.Hash{h}); got != h {
		t.Errorf("single-tx merkle root = %s, want the txid %s", got, h)
	}
}

func TestMerkleRootOddDuplication(t *testing.T) {
	a := chainhash.DoubleSHA256([]byte("a"))
	b := chainhash.DoubleSHA256([]byte("b"))
	c := chainhash.DoubleSHA256([]byte("c"))
	// Odd level duplicates the last element: root(a,b,c) == root over
	// pairs (a,b), (c,c).
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	ab := chainhash.DoubleSHA256(buf[:])
	copy(buf[:32], c[:])
	copy(buf[32:], c[:])
	cc := chainhash.DoubleSHA256(buf[:])
	copy(buf[:32], ab[:])
	copy(buf[32:], cc[:])
	want := chainhash.DoubleSHA256(buf[:])
	if got := MerkleRoot([]chainhash.Hash{a, b, c}); got != want {
		t.Errorf("3-leaf merkle root = %s, want %s", got, want)
	}
}

func TestMerkleRootDoesNotMutateInput(t *testing.T) {
	a := chainhash.DoubleSHA256([]byte("a"))
	b := chainhash.DoubleSHA256([]byte("b"))
	c := chainhash.DoubleSHA256([]byte("c"))
	in := []chainhash.Hash{a, b, c}
	MerkleRoot(in)
	if in[0] != a || in[1] != b || in[2] != c {
		t.Error("MerkleRoot mutated its input slice")
	}
}

func TestGenesisDeterministic(t *testing.T) {
	a, b := GenesisBlock("sim"), GenesisBlock("sim")
	if a.BlockHash() != b.BlockHash() {
		t.Error("same tag must produce the same genesis")
	}
	if a.BlockHash() == GenesisBlock("other").BlockHash() {
		t.Error("different tags must produce different geneses")
	}
	if err := CheckBlock(a); err != nil {
		t.Errorf("genesis invalid: %v", err)
	}
}

func TestChainAcceptAndQuery(t *testing.T) {
	c := New(GenesisBlock("t"))
	if c.Height() != 0 {
		t.Fatalf("initial height = %d, want 0", c.Height())
	}
	var blocks []*wire.MsgBlock
	for i := 0; i < 5; i++ {
		blk := nextBlock(t, c, 2, uint32(i*100))
		h, err := c.Accept(blk)
		if err != nil {
			t.Fatalf("accept block %d: %v", i, err)
		}
		if h != int32(i+1) {
			t.Errorf("height = %d, want %d", h, i+1)
		}
		blocks = append(blocks, blk)
	}
	tip, height := c.Tip()
	if height != 5 {
		t.Errorf("tip height = %d, want 5", height)
	}
	if tip != blocks[4].BlockHash() {
		t.Error("tip hash mismatch")
	}
	got, err := c.BlockByHeight(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockHash() != blocks[2].BlockHash() {
		t.Error("BlockByHeight(3) mismatch")
	}
	hh, err := c.HeightOf(blocks[1].BlockHash())
	if err != nil || hh != 2 {
		t.Errorf("HeightOf = %d, %v; want 2, nil", hh, err)
	}
	if !c.HaveBlock(blocks[0].BlockHash()) {
		t.Error("HaveBlock false for stored block")
	}
}

func TestChainRejectsDuplicate(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 0, 1)
	if _, err := c.Accept(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Accept(blk); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("err = %v, want ErrDuplicateBlock", err)
	}
}

func TestChainRejectsOrphan(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 0, 1)
	blk.Header.PrevBlock = chainhash.DoubleSHA256([]byte("elsewhere"))
	blk.Header.MerkleRoot = BlockMerkleRoot(blk)
	if _, err := c.Accept(blk); !errors.Is(err, ErrOrphanBlock) {
		t.Errorf("err = %v, want ErrOrphanBlock", err)
	}
}

func TestChainRejectsBadMerkle(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 1, 1)
	blk.Header.MerkleRoot = chainhash.Hash{} // corrupt
	if _, err := c.Accept(blk); !errors.Is(err, ErrBadMerkleRoot) {
		t.Errorf("err = %v, want ErrBadMerkleRoot", err)
	}
}

func TestChainRejectsEmptyBlock(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := &wire.MsgBlock{Header: wire.BlockHeader{PrevBlock: c.Genesis()}}
	if _, err := c.Accept(blk); !errors.Is(err, ErrNoCoinbase) {
		t.Errorf("err = %v, want ErrNoCoinbase", err)
	}
}

func TestChainUnknownLookups(t *testing.T) {
	c := New(GenesisBlock("t"))
	bogus := chainhash.DoubleSHA256([]byte("missing"))
	if _, err := c.BlockByHash(bogus); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("BlockByHash err = %v, want ErrUnknownBlock", err)
	}
	if _, err := c.BlockByHeight(9); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("BlockByHeight err = %v, want ErrUnknownBlock", err)
	}
	if _, err := c.HeightOf(bogus); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("HeightOf err = %v, want ErrUnknownBlock", err)
	}
	if _, err := c.BlockByHeight(-1); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("BlockByHeight(-1) err = %v, want ErrUnknownBlock", err)
	}
}

func TestLocatorAndHeadersAfter(t *testing.T) {
	c := New(GenesisBlock("t"))
	for i := 0; i < 40; i++ {
		if _, err := c.Accept(nextBlock(t, c, 0, uint32(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	loc := c.Locator()
	if len(loc) == 0 {
		t.Fatal("empty locator")
	}
	tip, _ := c.Tip()
	if loc[0] != tip {
		t.Error("locator must start at the tip")
	}
	if loc[len(loc)-1] != c.Genesis() {
		t.Error("locator must end at genesis")
	}
	// A peer behind by 5 blocks asks with its own locator: it should get
	// exactly the 5 newer headers.
	peer := New(GenesisBlock("t"))
	for i := 0; i < 35; i++ {
		blk, err := c.BlockByHeight(int32(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := peer.Accept(blk); err != nil {
			t.Fatal(err)
		}
	}
	hdrs := c.HeadersAfter(peer.Locator(), 2000)
	if len(hdrs) != 5 {
		t.Fatalf("got %d headers, want 5", len(hdrs))
	}
	if hdrs[0].PrevBlock != mustTipOf(t, peer) {
		t.Error("first header must chain from the peer tip")
	}
	// Unknown locator falls back to genesis: full chain of headers.
	all := c.HeadersAfter([]chainhash.Hash{chainhash.DoubleSHA256([]byte("x"))}, 2000)
	if len(all) != 40 {
		t.Errorf("fallback headers = %d, want 40", len(all))
	}
	// Cap is respected.
	if got := c.HeadersAfter(nil, 7); len(got) != 7 {
		t.Errorf("capped headers = %d, want 7", len(got))
	}
}

func mustTipOf(t *testing.T, c *Chain) chainhash.Hash {
	t.Helper()
	h, _ := c.Tip()
	return h
}

func TestMempoolBasics(t *testing.T) {
	p := NewMempool()
	tx := makeTx(1)
	h, added := p.Add(&tx)
	if !added {
		t.Fatal("first Add should report new")
	}
	if _, again := p.Add(&tx); again {
		t.Error("second Add should report duplicate")
	}
	if !p.Have(h) {
		t.Error("Have = false after Add")
	}
	if p.Get(h) == nil {
		t.Error("Get = nil after Add")
	}
	if p.Size() != 1 {
		t.Errorf("Size = %d, want 1", p.Size())
	}
	p.Remove(h)
	if p.Have(h) {
		t.Error("Have = true after Remove")
	}
}

func TestMempoolRemoveBlockTxs(t *testing.T) {
	p := NewMempool()
	blk := &wire.MsgBlock{Transactions: []wire.MsgTx{makeTx(1), makeTx(2), makeTx(3)}}
	for i := range blk.Transactions {
		p.Add(&blk.Transactions[i])
	}
	extra := makeTx(99)
	p.Add(&extra)
	p.RemoveBlockTxs(blk)
	if p.Size() != 1 {
		t.Errorf("Size after eviction = %d, want 1", p.Size())
	}
	if !p.Have(extra.TxHash()) {
		t.Error("unrelated tx evicted")
	}
}

func TestCompactBlockFullMempoolReconstruction(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 10, 500)
	cb := BuildCompactBlock(blk, 777)
	if len(cb.PrefilledTxs) != 1 || cb.PrefilledTxs[0].Index != 0 {
		t.Fatal("coinbase must be the sole prefilled tx")
	}
	if len(cb.ShortIDs) != 10 {
		t.Fatalf("short IDs = %d, want 10", len(cb.ShortIDs))
	}
	pool := NewMempool()
	for i := 1; i < len(blk.Transactions); i++ {
		pool.Add(&blk.Transactions[i])
	}
	res, err := ReconstructCompactBlock(cb, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete: missing %v", res.MissingIndexes)
	}
	if res.MempoolHits != 10 {
		t.Errorf("MempoolHits = %d, want 10", res.MempoolHits)
	}
	if res.Block.BlockHash() != blk.BlockHash() {
		t.Error("reconstructed block hash mismatch")
	}
}

func TestCompactBlockMissingTxRoundTrip(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 6, 900)
	cb := BuildCompactBlock(blk, 1234)
	pool := NewMempool()
	// Only half the non-coinbase transactions are pooled.
	for i := 1; i < len(blk.Transactions); i += 2 {
		pool.Add(&blk.Transactions[i])
	}
	res, err := ReconstructCompactBlock(cb, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("reconstruction should be incomplete")
	}
	if len(res.MissingIndexes) == 0 {
		t.Fatal("missing indexes expected")
	}
	req := &wire.MsgGetBlockTxn{BlockHash: cb.BlockHash(), Indexes: res.MissingIndexes}
	resp, err := BlockTxnFor(blk, req)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CompleteReconstruction(cb, res, pool, resp)
	if err != nil {
		t.Fatal(err)
	}
	if full.BlockHash() != blk.BlockHash() {
		t.Error("completed block hash mismatch")
	}
}

func TestCompleteReconstructionWrongBlock(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 2, 40)
	cb := BuildCompactBlock(blk, 5)
	pool := NewMempool()
	res, err := ReconstructCompactBlock(cb, pool)
	if err != nil {
		t.Fatal(err)
	}
	bad := &wire.MsgBlockTxn{BlockHash: chainhash.DoubleSHA256([]byte("no"))}
	if _, err := CompleteReconstruction(cb, res, pool, bad); !errors.Is(err, ErrWrongBlockTxn) {
		t.Errorf("err = %v, want ErrWrongBlockTxn", err)
	}
}

func TestBlockTxnForErrors(t *testing.T) {
	c := New(GenesisBlock("t"))
	blk := nextBlock(t, c, 2, 60)
	wrong := &wire.MsgGetBlockTxn{BlockHash: chainhash.DoubleSHA256([]byte("x"))}
	if _, err := BlockTxnFor(blk, wrong); !errors.Is(err, ErrWrongBlockTxn) {
		t.Errorf("err = %v, want ErrWrongBlockTxn", err)
	}
	oob := &wire.MsgGetBlockTxn{BlockHash: blk.BlockHash(), Indexes: []uint16{99}}
	if _, err := BlockTxnFor(blk, oob); err == nil {
		t.Error("out-of-range index: want error")
	}
}

// Property: merkle root is stable under recomputation and sensitive to any
// single-leaf change.
func TestMerkleRootSensitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(n uint8, flip uint8) bool {
		count := int(n%16) + 1
		leaves := make([]chainhash.Hash, count)
		for i := range leaves {
			rng.Read(leaves[i][:])
		}
		root := MerkleRoot(leaves)
		if root != MerkleRoot(leaves) {
			return false
		}
		mutated := make([]chainhash.Hash, count)
		copy(mutated, leaves)
		mutated[int(flip)%count][0] ^= 0xff
		return MerkleRoot(mutated) != root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: compact-block reconstruction with a fully primed mempool is
// lossless for arbitrary block sizes.
func TestCompactReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(n uint8, nonce uint64) bool {
		c := New(GenesisBlock("q"))
		blk := &wire.MsgBlock{
			Header: wire.BlockHeader{
				Version:   4,
				PrevBlock: c.Genesis(),
				Timestamp: 1586000600,
			},
		}
		count := int(n%24) + 1
		for i := 0; i < count; i++ {
			blk.Transactions = append(blk.Transactions, makeTx(rng.Uint32()))
		}
		blk.Header.MerkleRoot = BlockMerkleRoot(blk)
		cb := BuildCompactBlock(blk, nonce)
		pool := NewMempool()
		for i := 1; i < len(blk.Transactions); i++ {
			pool.Add(&blk.Transactions[i])
		}
		res, err := ReconstructCompactBlock(cb, pool)
		if err != nil {
			// Short-ID collisions are theoretically possible; treat as a
			// pass only if genuinely flagged as a collision.
			return errors.Is(err, ErrShortIDCollision)
		}
		return res.Complete && res.Block.BlockHash() == blk.BlockHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerkleRoot1000(b *testing.B) {
	leaves := make([]chainhash.Hash, 1000)
	rng := rand.New(rand.NewSource(23))
	for i := range leaves {
		rng.Read(leaves[i][:])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MerkleRoot(leaves)
	}
}

func BenchmarkCompactReconstruct(b *testing.B) {
	c := New(GenesisBlock("b"))
	blk := &wire.MsgBlock{Header: wire.BlockHeader{Version: 4, PrevBlock: c.Genesis()}}
	for i := 0; i < 200; i++ {
		blk.Transactions = append(blk.Transactions, makeTx(uint32(i)))
	}
	blk.Header.MerkleRoot = BlockMerkleRoot(blk)
	cb := BuildCompactBlock(blk, 9)
	pool := NewMempool()
	for i := 1; i < len(blk.Transactions); i++ {
		pool.Add(&blk.Transactions[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructCompactBlock(cb, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLocatorSingleBlock(t *testing.T) {
	c := New(GenesisBlock("solo"))
	loc := c.Locator()
	if len(loc) != 1 || loc[0] != c.Genesis() {
		t.Errorf("genesis-only locator = %v", loc)
	}
}

func TestLocatorExponentialSpacing(t *testing.T) {
	c := New(GenesisBlock("exp"))
	for i := 0; i < 200; i++ {
		if _, err := c.Accept(nextBlock(t, c, 0, uint32(i*7))); err != nil {
			t.Fatal(err)
		}
	}
	loc := c.Locator()
	// Far fewer entries than blocks: the walk-back doubles its stride
	// after the first ten.
	if len(loc) >= 40 {
		t.Errorf("locator has %d entries for 200 blocks; expected ~10+log2", len(loc))
	}
	// All entries must be known blocks, tip first, genesis last.
	for _, h := range loc {
		if !c.HaveBlock(h) {
			t.Fatalf("locator references unknown block %s", h)
		}
	}
}

func TestHeadersAfterEmptyLocator(t *testing.T) {
	c := New(GenesisBlock("empty-loc"))
	for i := 0; i < 3; i++ {
		if _, err := c.Accept(nextBlock(t, c, 0, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A nil locator falls back to genesis: all headers returned.
	hdrs := c.HeadersAfter(nil, 10)
	if len(hdrs) != 3 {
		t.Errorf("headers = %d, want 3", len(hdrs))
	}
}
