package chain

import (
	"sync"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// Mempool is a transaction memory pool. Compact-block reconstruction
// (§IV-C of the paper) pulls missing transactions from here; when they are
// absent the node must issue a GETBLOCKTXN round trip, which is exactly
// the delay coupling the paper highlights between transaction relay and
// block relay.
type Mempool struct {
	mu  sync.RWMutex
	txs map[chainhash.Hash]*wire.MsgTx
}

// NewMempool returns an empty mempool.
func NewMempool() *Mempool {
	return &Mempool{txs: make(map[chainhash.Hash]*wire.MsgTx)}
}

// Add inserts tx, returning its hash and whether it was newly added.
func (m *Mempool) Add(tx *wire.MsgTx) (chainhash.Hash, bool) {
	h := tx.TxHash()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.txs[h]; ok {
		return h, false
	}
	m.txs[h] = tx
	return h, true
}

// Have reports whether the pool contains the transaction.
func (m *Mempool) Have(h chainhash.Hash) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.txs[h]
	return ok
}

// Get returns the transaction with the given hash, or nil.
func (m *Mempool) Get(h chainhash.Hash) *wire.MsgTx {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.txs[h]
}

// Remove deletes the transaction with the given hash if present.
func (m *Mempool) Remove(h chainhash.Hash) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.txs, h)
}

// RemoveBlockTxs evicts every transaction confirmed by blk.
func (m *Mempool) RemoveBlockTxs(blk *wire.MsgBlock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range blk.Transactions {
		delete(m.txs, blk.Transactions[i].TxHash())
	}
}

// Size returns the number of pooled transactions.
func (m *Mempool) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.txs)
}

// Hashes returns the hashes of all pooled transactions in unspecified
// order.
func (m *Mempool) Hashes() []chainhash.Hash {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]chainhash.Hash, 0, len(m.txs))
	for h := range m.txs {
		out = append(out, h)
	}
	return out
}
