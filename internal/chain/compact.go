package chain

import (
	"errors"
	"fmt"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// Errors specific to compact-block reconstruction.
var (
	// ErrShortIDCollision indicates two mempool transactions mapping to
	// the same short ID, making reconstruction ambiguous.
	ErrShortIDCollision = errors.New("chain: short ID collision")
	// ErrWrongBlockTxn indicates a BLOCKTXN answering a different request.
	ErrWrongBlockTxn = errors.New("chain: blocktxn does not match request")
)

// BuildCompactBlock converts a full block into its BIP-152 compact form.
// The coinbase (index 0) is always prefilled; every other transaction is
// carried as a short ID.
func BuildCompactBlock(blk *wire.MsgBlock, nonce uint64) *wire.MsgCmpctBlock {
	blockHash := blk.BlockHash()
	cb := &wire.MsgCmpctBlock{
		Header: blk.Header,
		Nonce:  nonce,
	}
	for i := range blk.Transactions {
		if i == 0 {
			cb.PrefilledTxs = append(cb.PrefilledTxs, wire.PrefilledTx{
				Index: 0,
				Tx:    blk.Transactions[0],
			})
			continue
		}
		txid := blk.Transactions[i].TxHash()
		cb.ShortIDs = append(cb.ShortIDs,
			wire.ComputeShortID(blockHash, nonce, txid))
	}
	return cb
}

// ReconstructResult is the outcome of attempting to rebuild a full block
// from a compact block and a mempool.
type ReconstructResult struct {
	// Block is the reconstructed block; nil unless Complete.
	Block *wire.MsgBlock
	// Complete reports whether every transaction was available.
	Complete bool
	// MissingIndexes lists block positions whose transactions were not in
	// the mempool; these feed a GETBLOCKTXN request.
	MissingIndexes []uint16
	// MempoolHits counts short IDs satisfied from the mempool.
	MempoolHits int
}

// ReconstructCompactBlock attempts to rebuild the full block for cb using
// transactions from pool. When transactions are missing it reports their
// indexes rather than failing, mirroring Bitcoin Core's flow of following
// up with GETBLOCKTXN.
func ReconstructCompactBlock(cb *wire.MsgCmpctBlock, pool *Mempool) (*ReconstructResult, error) {
	blockHash := cb.BlockHash()

	// Index mempool transactions by their short ID under this block's key.
	idToTx := make(map[wire.ShortID]*wire.MsgTx, pool.Size())
	for _, h := range pool.Hashes() {
		id := wire.ComputeShortID(blockHash, cb.Nonce, h)
		if _, dup := idToTx[id]; dup {
			return nil, fmt.Errorf("%w: id %x", ErrShortIDCollision, id)
		}
		idToTx[id] = pool.Get(h)
	}

	total := cb.TotalTxCount()
	slots := make([]*wire.MsgTx, total)
	prefilled := make(map[int]bool, len(cb.PrefilledTxs))
	for i := range cb.PrefilledTxs {
		p := &cb.PrefilledTxs[i]
		if int(p.Index) >= total {
			return nil, fmt.Errorf("chain: prefilled index %d out of range %d",
				p.Index, total)
		}
		slots[p.Index] = &p.Tx
		prefilled[int(p.Index)] = true
	}

	res := &ReconstructResult{}
	sid := 0
	for i := 0; i < total; i++ {
		if prefilled[i] {
			continue
		}
		id := cb.ShortIDs[sid]
		sid++
		if tx := idToTx[id]; tx != nil {
			slots[i] = tx
			res.MempoolHits++
			continue
		}
		res.MissingIndexes = append(res.MissingIndexes, uint16(i))
	}

	if len(res.MissingIndexes) > 0 {
		return res, nil
	}
	blk := &wire.MsgBlock{Header: cb.Header}
	blk.Transactions = make([]wire.MsgTx, total)
	for i, tx := range slots {
		blk.Transactions[i] = *tx
	}
	if err := CheckBlock(blk); err != nil {
		return nil, fmt.Errorf("chain: reconstructed block invalid: %w", err)
	}
	res.Block = blk
	res.Complete = true
	return res, nil
}

// CompleteReconstruction fills the transactions missing from a previous
// ReconstructCompactBlock attempt using a BLOCKTXN response and returns
// the full block.
func CompleteReconstruction(cb *wire.MsgCmpctBlock, partial *ReconstructResult,
	pool *Mempool, btxn *wire.MsgBlockTxn) (*wire.MsgBlock, error) {
	if btxn.BlockHash != cb.BlockHash() {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrWrongBlockTxn,
			btxn.BlockHash, cb.BlockHash())
	}
	if len(btxn.Transactions) != len(partial.MissingIndexes) {
		return nil, fmt.Errorf("%w: %d transactions for %d missing indexes",
			ErrWrongBlockTxn, len(btxn.Transactions), len(partial.MissingIndexes))
	}
	// Feed the supplied transactions into the pool and retry: any short-ID
	// keyed slot they fill will now resolve.
	for i := range btxn.Transactions {
		pool.Add(&btxn.Transactions[i])
	}
	res, err := ReconstructCompactBlock(cb, pool)
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("%w: still missing %d transactions",
			ErrWrongBlockTxn, len(res.MissingIndexes))
	}
	return res.Block, nil
}

// BlockTxnFor answers a GETBLOCKTXN request from the full block.
func BlockTxnFor(blk *wire.MsgBlock, req *wire.MsgGetBlockTxn) (*wire.MsgBlockTxn, error) {
	if req.BlockHash != blk.BlockHash() {
		return nil, fmt.Errorf("%w: request for %s, have %s", ErrWrongBlockTxn,
			req.BlockHash, blk.BlockHash())
	}
	out := &wire.MsgBlockTxn{BlockHash: req.BlockHash}
	for _, idx := range req.Indexes {
		if int(idx) >= len(blk.Transactions) {
			return nil, fmt.Errorf("chain: getblocktxn index %d out of range %d",
				idx, len(blk.Transactions))
		}
		out.Transactions = append(out.Transactions, blk.Transactions[idx])
	}
	return out, nil
}

// TxIDsOf returns the transaction hashes of blk in block order.
func TxIDsOf(blk *wire.MsgBlock) []chainhash.Hash {
	out := make([]chainhash.Hash, len(blk.Transactions))
	for i := range blk.Transactions {
		out[i] = blk.Transactions[i].TxHash()
	}
	return out
}
