// Package chain provides the blockchain substrate the node implementation
// builds on: merkle roots, a linear chain state with header/block storage,
// a transaction memory pool, and BIP-152 compact block construction and
// reconstruction.
//
// Consensus validation is intentionally thin (structural checks and chain
// linkage only): the paper measures propagation and synchronization, not
// proof-of-work, so blocks are produced by a scheduler rather than mined.
package chain

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// Errors returned by chain operations; test with errors.Is.
var (
	// ErrOrphanBlock indicates a block whose parent is unknown.
	ErrOrphanBlock = errors.New("chain: orphan block")
	// ErrDuplicateBlock indicates a block already in the chain.
	ErrDuplicateBlock = errors.New("chain: duplicate block")
	// ErrNoCoinbase indicates a block missing its coinbase transaction.
	ErrNoCoinbase = errors.New("chain: block has no transactions")
	// ErrBadMerkleRoot indicates a merkle root not matching the
	// transactions.
	ErrBadMerkleRoot = errors.New("chain: merkle root mismatch")
	// ErrUnknownBlock indicates a lookup for a block not stored.
	ErrUnknownBlock = errors.New("chain: unknown block")
)

// MerkleRoot computes the Bitcoin merkle root of the given transaction
// hashes: pairwise double-SHA256, duplicating the final element of odd
// levels. An empty input returns the zero hash.
func MerkleRoot(txids []chainhash.Hash) chainhash.Hash {
	if len(txids) == 0 {
		return chainhash.Hash{}
	}
	level := make([]chainhash.Hash, len(txids))
	copy(level, txids)
	var buf [64]byte
	for len(level) > 1 {
		if len(level)%2 != 0 {
			level = append(level, level[len(level)-1])
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			copy(buf[:32], level[i][:])
			copy(buf[32:], level[i+1][:])
			next = append(next, chainhash.DoubleSHA256(buf[:]))
		}
		level = next
	}
	return level[0]
}

// BlockMerkleRoot computes the merkle root over a block's transactions.
func BlockMerkleRoot(blk *wire.MsgBlock) chainhash.Hash {
	txids := make([]chainhash.Hash, len(blk.Transactions))
	for i := range blk.Transactions {
		txids[i] = blk.Transactions[i].TxHash()
	}
	return MerkleRoot(txids)
}

// entry is a stored block with its height.
type entry struct {
	block  *wire.MsgBlock
	height int32
}

// Chain is a linear (best-chain-only) block store. Heights start at 0 for
// the genesis block. It is safe for concurrent use.
type Chain struct {
	mu      sync.RWMutex
	byHash  map[chainhash.Hash]entry
	byIdx   []chainhash.Hash // byIdx[h] = hash of block at height h
	genesis chainhash.Hash
}

// New creates a chain rooted at the given genesis block.
func New(genesis *wire.MsgBlock) *Chain {
	gh := genesis.BlockHash()
	c := &Chain{
		byHash:  map[chainhash.Hash]entry{gh: {block: genesis, height: 0}},
		byIdx:   []chainhash.Hash{gh},
		genesis: gh,
	}
	return c
}

// GenesisBlock builds a deterministic genesis block for a simulated
// network identified by tag.
func GenesisBlock(tag string) *wire.MsgBlock {
	coinbase := wire.MsgTx{
		Version: 1,
		TxIn: []wire.TxIn{{
			PreviousOutPoint: wire.OutPoint{Index: 0xffffffff},
			SignatureScript:  []byte(tag),
			Sequence:         0xffffffff,
		}},
		TxOut: []wire.TxOut{{Value: 50_0000_0000, PkScript: []byte{0x51}}},
	}
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:   1,
			Timestamp: 1586000000,
			Bits:      0x207fffff,
		},
		Transactions: []wire.MsgTx{coinbase},
	}
	blk.Header.MerkleRoot = BlockMerkleRoot(blk)
	return blk
}

// Tip returns the hash and height of the best block.
func (c *Chain) Tip() (chainhash.Hash, int32) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := c.byIdx[len(c.byIdx)-1]
	return h, int32(len(c.byIdx) - 1)
}

// Height returns the best block height.
func (c *Chain) Height() int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int32(len(c.byIdx) - 1)
}

// Genesis returns the genesis block hash.
func (c *Chain) Genesis() chainhash.Hash { return c.genesis }

// HaveBlock reports whether the chain stores the given block.
func (c *Chain) HaveBlock(h chainhash.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.byHash[h]
	return ok
}

// BlockByHash returns the stored block with the given hash.
func (c *Chain) BlockByHash(h chainhash.Hash) (*wire.MsgBlock, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.byHash[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBlock, h)
	}
	return e.block, nil
}

// BlockByHeight returns the block at the given height.
func (c *Chain) BlockByHeight(height int32) (*wire.MsgBlock, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height < 0 || int(height) >= len(c.byIdx) {
		return nil, fmt.Errorf("%w: height %d (tip %d)", ErrUnknownBlock,
			height, len(c.byIdx)-1)
	}
	return c.byHash[c.byIdx[height]].block, nil
}

// HeightOf returns the height of a stored block.
func (c *Chain) HeightOf(h chainhash.Hash) (int32, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.byHash[h]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, h)
	}
	return e.height, nil
}

// CheckBlock performs the structural validation this substrate enforces:
// a coinbase must exist and the header's merkle root must commit to the
// transactions.
func CheckBlock(blk *wire.MsgBlock) error {
	if len(blk.Transactions) == 0 {
		return ErrNoCoinbase
	}
	if got := BlockMerkleRoot(blk); got != blk.Header.MerkleRoot {
		return fmt.Errorf("%w: computed %s, header %s", ErrBadMerkleRoot,
			got, blk.Header.MerkleRoot)
	}
	return nil
}

// Accept validates blk and appends it to the chain. The block's parent
// must be the current tip (linear chain). It returns the new height.
func (c *Chain) Accept(blk *wire.MsgBlock) (int32, error) {
	if err := CheckBlock(blk); err != nil {
		return 0, err
	}
	h := blk.BlockHash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byHash[h]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateBlock, h)
	}
	tip := c.byIdx[len(c.byIdx)-1]
	if blk.Header.PrevBlock != tip {
		return 0, fmt.Errorf("%w: parent %s not tip %s", ErrOrphanBlock,
			blk.Header.PrevBlock, tip)
	}
	height := int32(len(c.byIdx))
	c.byHash[h] = entry{block: blk, height: height}
	c.byIdx = append(c.byIdx, h)
	return height, nil
}

// Locator returns a block locator for the current tip: the last 10 hashes,
// then hashes at exponentially increasing gaps, ending at genesis.
func (c *Chain) Locator() []chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var loc []chainhash.Hash
	idx := len(c.byIdx) - 1
	step := 1
	for idx >= 0 {
		loc = append(loc, c.byIdx[idx])
		if len(loc) >= 10 {
			step *= 2
		}
		if idx == 0 {
			break
		}
		idx -= step
		if idx < 0 {
			idx = 0
		}
	}
	return loc
}

// HeadersAfter returns up to max headers following the most recent locator
// hash present in the chain. Unknown locators fall back to genesis.
func (c *Chain) HeadersAfter(locator []chainhash.Hash, max int) []wire.BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()
	start := 0 // default: everything after genesis
	for _, lh := range locator {
		if e, ok := c.byHash[lh]; ok {
			start = int(e.height)
			break
		}
	}
	var out []wire.BlockHeader
	for h := start + 1; h < len(c.byIdx) && len(out) < max; h++ {
		out = append(out, c.byHash[c.byIdx[h]].block.Header)
	}
	return out
}
