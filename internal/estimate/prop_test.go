package estimate

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"testing"
)

// Property suite: both estimators against closed-form populations with
// analytically known answers. Every randomized case prints the (seed,
// config) needed to reproduce a failure.

// popConfig is one closed-form population case for the recurrence
// estimator.
type popConfig struct {
	seed       uint64
	population int // true N
	sources    int
	perSource  int // draws announced by each source
	tolerance  float64
}

func TestPopulationEstimateConverges(t *testing.T) {
	// Uniform draws from a fixed N-address pool: the estimate must land
	// within tolerance of N once the draw count passes a few multiples of
	// N, and the final run of checkpoints must be within tolerance too
	// (not just a lucky last sample).
	cases := []popConfig{
		{seed: 1, population: 200, sources: 40, perSource: 50, tolerance: 0.15},
		{seed: 2, population: 1000, sources: 50, perSource: 120, tolerance: 0.10},
		{seed: 3, population: 5000, sources: 80, perSource: 250, tolerance: 0.10},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewPCG(c.seed, 99))
		pool := make([]netip.AddrPort, c.population)
		for i := range pool {
			pool[i] = eAddr(1000 + i)
		}
		e := NewPopulationEstimator()
		for s := 0; s < c.sources; s++ {
			src := eAddr(s)
			for k := 0; k < c.perSource; k++ {
				e.Observe(src, pool[rng.IntN(len(pool))])
			}
		}
		got := e.Estimate()
		rel := RelativeError(got, float64(c.population))
		if rel > c.tolerance {
			t.Errorf("population estimate off: got %.1f, truth %d, rel err %.3f > %.3f\n"+
				"reproduce with %+v", got, c.population, rel, c.tolerance, c)
		}
	}
}

func TestPopulationErrorMonotoneOnDeterministicStream(t *testing.T) {
	// Deterministic cyclic stream: each source announces the whole
	// N-address pool in order. After the first source the estimator has
	// full coverage and every further announcement is a recurrence, so
	// the estimate decreases monotonically toward N from above — error is
	// monotone non-increasing in sample count. This is the strict
	// monotonicity statement (random streams only converge in
	// expectation).
	const n = 120
	const sources = 6
	pool := make([]netip.AddrPort, n)
	for i := range pool {
		pool[i] = eAddr(2000 + i)
	}
	e := NewPopulationEstimator()
	prevErr := math.Inf(1)
	for s := 0; s < sources; s++ {
		src := eAddr(s)
		for k := 0; k < n; k++ {
			e.Observe(src, pool[k])
			if s == 0 {
				continue // no recurrence yet; the fallback regime
			}
			err := RelativeError(e.Estimate(), n)
			if err > prevErr*(1+1e-9)+1e-12 {
				t.Fatalf("error increased at source %d draw %d: %v after %v\n"+
					"reproduce with n=%d sources=%d (deterministic)", s, k, err, prevErr, n, sources)
			}
			prevErr = err
		}
	}
	final := RelativeError(e.Estimate(), n)
	if final > 0.02 {
		t.Errorf("final error %.4f > 0.02 after %d full passes (deterministic n=%d)",
			final, sources, n)
	}
}

// degConfig is one closed-form case for the degree estimator.
type degConfig struct {
	seed      uint64
	degree    int // true distinct-address degree
	pct, cap  int
	exchanges int
}

func TestDegreeErrorMonotoneAndConverges(t *testing.T) {
	// The combined degree estimate is max(distinct, first·100/pct) — two
	// lower bounds, one of which is monotone non-decreasing — so its
	// error is monotone non-increasing in the exchange count on ANY
	// stream the popsim-style server produces (pages never exceed pct%),
	// and it must reach the exact degree once the book demonstrably
	// repeats.
	cases := []degConfig{
		{seed: 10, degree: 400, pct: 23, cap: 1000, exchanges: 30},
		{seed: 11, degree: 50, pct: 23, cap: 1000, exchanges: 40},
		{seed: 12, degree: 5000, pct: 23, cap: 1000, exchanges: 60},
		{seed: 13, degree: 9000, pct: 23, cap: 500, exchanges: 80}, // cap-limited pages
	}
	for _, c := range cases {
		rng := rand.New(rand.NewPCG(c.seed, 7))
		book := make([]netip.AddrPort, c.degree)
		for i := range book {
			book[i] = eAddr(10000 + i)
		}
		page := c.degree * c.pct / 100
		if page > c.cap {
			page = c.cap
		}
		if page < 1 {
			page = 1
		}
		e := NewDegreeEstimator(c.pct, c.cap)
		src := eAddr(1)
		prevErr := math.Inf(1)
		for x := 0; x < c.exchanges; x++ {
			// Random pct% sample without replacement per page — the
			// Bitcoin Core response model.
			rng.Shuffle(len(book), func(i, j int) { book[i], book[j] = book[j], book[i] })
			e.ObserveExchange(src, book[:page])
			sd, _ := e.EstimateOf(src)
			if sd.Estimate > float64(c.degree)+1e-9 {
				t.Fatalf("estimate %v exceeds truth %d (must be a lower bound)\nreproduce with %+v",
					sd.Estimate, c.degree, c)
			}
			err := RelativeError(sd.Estimate, float64(c.degree))
			if err > prevErr+1e-12 {
				t.Fatalf("error increased at exchange %d: %v after %v\nreproduce with %+v",
					x, err, prevErr, c)
			}
			prevErr = err
		}
		if prevErr > 0.05 {
			t.Errorf("final degree error %.4f > 0.05\nreproduce with %+v", prevErr, c)
		}
	}
}

func TestDegreeExactOnPagedDrain(t *testing.T) {
	// Deterministic paged serving (the popsim session model): fixed pages
	// then a repeat page. The estimate must equal the true degree exactly
	// at drain, for a spread of book sizes including non-divisible ones.
	for _, n := range []int{5, 23, 100, 437, 1000, 2600} {
		book := make([]netip.AddrPort, n)
		for i := range book {
			book[i] = eAddr(20000 + i)
		}
		page := n * 23 / 100
		if page < 1 {
			page = n
		}
		e := NewDegreeEstimator(23, 1000)
		src := eAddr(1)
		for cursor := 0; cursor < n; cursor += page {
			end := cursor + page
			if end > n {
				end = n
			}
			e.ObserveExchange(src, book[cursor:end])
		}
		e.ObserveExchange(src, book[:page]) // repeat page: Algorithm 1 terminator
		sd, _ := e.EstimateOf(src)
		if !sd.Drained || sd.Estimate != float64(n) {
			t.Errorf("n=%d: drained=%v estimate=%v, want exact %d", n, sd.Drained, sd.Estimate, n)
		}
	}
}
