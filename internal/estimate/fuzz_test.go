package estimate

import (
	"encoding/binary"
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/wire"
)

// FuzzEstimateObservations feeds arbitrary observation streams —
// malformed timestamps, duplicate and self-referential announcements,
// zero-length rounds, nonsense counts — through the full Collector and
// asserts the package contract: never panic, and every estimate stays
// finite and non-negative at every step.
func FuzzEstimateObservations(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 3, 10, 11, 12, 2, 0, 1, 10, 10})         // dup + zero round
	f.Add([]byte{5, 2, 5, 5, 5, 1, 5})                       // self-referential
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0}) // garbage timestamps
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollector(Config{
			// Odd low bytes are "reachable": exercises the filter.
			IsReachable: func(a netip.AddrPort) bool { return a.Addr().As4()[3]%2 == 1 },
		})
		check := func() {
			if v := c.PopulationEstimate(); !isFiniteNonNeg(v) {
				t.Fatalf("population estimate %v not finite non-negative", v)
			}
			est, ratio := c.MeanDegree()
			if !isFiniteNonNeg(est) || !isFiniteNonNeg(ratio) {
				t.Fatalf("degree estimates %v/%v not finite non-negative", est, ratio)
			}
			for _, sd := range c.Deg.Estimates() {
				if !isFiniteNonNeg(sd.Estimate) || !isFiniteNonNeg(sd.Ratio) {
					t.Fatalf("source %v estimates %v/%v not finite non-negative",
						sd.Source, sd.Estimate, sd.Ratio)
				}
			}
		}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			src := eAddr(int(next()))
			n := int(next()) % 40 // zero-length rounds included
			addrs := make([]wire.NetAddress, 0, n)
			for i := 0; i < n; i++ {
				// Timestamps assembled from raw bytes: negative epochs,
				// far-future values, whatever the fuzzer finds.
				var raw [8]byte
				raw[0], raw[7] = next(), next()
				ts := time.Unix(int64(binary.LittleEndian.Uint64(raw[:])), 0)
				addrs = append(addrs, wire.NetAddress{Addr: eAddr(int(next())), Timestamp: ts})
			}
			c.Exchange(src, addrs)
			check()
		}
		check()
		// The raw inversion must hold the contract on arbitrary float
		// pairs reconstructed from the input too.
		if len(data) >= 16 {
			d := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			tt := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
			if v := InvertRecurrence(d, tt); !isFiniteNonNeg(v) {
				t.Fatalf("InvertRecurrence(%v, %v) = %v", d, tt, v)
			}
		}
	})
}
