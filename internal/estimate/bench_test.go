package estimate

import (
	"net/netip"
	"testing"

	"repro/internal/wire"
)

// BenchmarkEstimateUpdate measures the per-exchange ingestion cost on
// the crawl hot path: one 100-address ADDR response through the full
// Collector (population dedup + filter, degree enumeration). This is
// the marginal cost an attached observer adds per GETADDR round, so it
// is baselined in BENCH_baseline.json — the seam must not silently
// regress BenchmarkCrawlSnapshot.
func BenchmarkEstimateUpdate(b *testing.B) {
	const sources = 64
	const perPage = 100
	reach := make(map[netip.AddrPort]struct{})
	pages := make([][]wire.NetAddress, sources)
	for s := range pages {
		page := make([]wire.NetAddress, perPage)
		for i := range page {
			a := eAddr(1000 + (s*61+i*17)%4096)
			page[i] = wire.NetAddress{Addr: a}
			if i%7 == 0 {
				reach[a] = struct{}{}
			}
		}
		pages[s] = page
	}
	c := NewCollector(Config{
		IsReachable: func(a netip.AddrPort) bool { _, ok := reach[a]; return ok },
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exchange(eAddr(i%sources), pages[i%sources])
	}
	sinkPop = c.PopulationEstimate()
}

var sinkPop float64
