// Package estimate implements the two Grundmann et al. inference
// methods that live-network researchers use to see past the crawler's
// horizon, adapted to this repository's crawl observations so the
// simulator — which knows the true population — can benchmark them:
//
//   - Unreachable-peer-count estimation from ADDR announcements
//     (arXiv:2102.12774): every unreachable address carried in an ADDR
//     response is modelled as a uniform draw from the hidden
//     gossip-visible population, and the population size is recovered
//     from announcement recurrence — how often draws repeat addresses
//     already seen — by inverting the expected-coverage curve.
//
//   - Peer-degree estimation from GETADDR return sampling
//     (arXiv:2108.00815): a Bitcoin Core node answers GETADDR with
//     min(23% of its address tables, 1000) addresses, so the response
//     size is a linear probe of the table size, and repeated exchanges
//     enumerate distinct addresses up to the full table. Both are lower
//     bounds that converge to the true degree from below.
//
// The package is a leaf: it depends only on the wire types and the
// metrics registry, consumes observations through plain method calls
// (the crawler's Observer seam feeds it in deterministic merge order),
// and performs no I/O. Every estimate is guaranteed finite and
// non-negative on arbitrary input streams — a property the fuzz target
// FuzzEstimateObservations pins — and every ratio is guarded against
// zero-observation division.
package estimate

import (
	"math"
	"net/netip"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Defaults mirror Bitcoin Core's GETADDR response policy (and
// internal/addrman's constants): a response carries at most
// GetAddrMaxPct percent of the responder's known addresses, hard-capped
// at GetAddrMax entries.
const (
	// DefaultGetAddrMaxPct is the percentage of the address tables
	// returned per GETADDR.
	DefaultGetAddrMaxPct = 23
	// DefaultGetAddrMax is the hard cap on addresses per response.
	DefaultGetAddrMax = 1000
)

// maxPopulation caps the recurrence inversion when no (or almost no)
// recurrence has been observed yet: the maximum-likelihood estimate
// diverges there, and the estimator contract is to stay finite.
const maxPopulation = 1e12

// Config tunes a Collector.
type Config struct {
	// GetAddrMaxPct and GetAddrMax describe the responder's GETADDR
	// sampling policy; zero values select the Bitcoin Core defaults.
	GetAddrMaxPct int
	GetAddrMax    int
	// IsReachable classifies an announced address against the
	// known-reachable reference set: addresses for which it returns true
	// are excluded from the unreachable-population sample (the crawl's
	// N_u definition). Nil treats every announcement as unreachable.
	IsReachable func(netip.AddrPort) bool
	// Metrics, when set, receives the est.* observation counters
	// (est.exchanges, est.announcements, est.announcements.unreachable,
	// est.sources). Nil disables instrumentation.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.GetAddrMaxPct <= 0 {
		c.GetAddrMaxPct = DefaultGetAddrMaxPct
	}
	if c.GetAddrMax <= 0 {
		c.GetAddrMax = DefaultGetAddrMax
	}
	return c
}

// PopulationEstimator recovers the size of the hidden unreachable
// population from announcement recurrence. Each observed announcement
// is one (source, address) pair; announcements are deduplicated per
// source, because a node's address book is paged repeatedly by the
// iterative crawl and a re-served page is a re-observation of the same
// draw, not evidence about the population. Self-referential
// announcements (a node advertising itself) are discarded for the same
// reason. What remains is, under the gossip model, a sequence of
// uniform draws from the visible unreachable population; the estimate
// inverts the expected coverage curve
//
//	E[distinct] = N·(1 − (1 − 1/N)^total)
//
// for N given the observed (distinct, total) pair.
type PopulationEstimator struct {
	perSource map[netip.AddrPort]map[netip.AddrPort]struct{}
	seen      map[netip.AddrPort]struct{}
	distinct  int
	total     int
}

// NewPopulationEstimator creates an empty estimator.
func NewPopulationEstimator() *PopulationEstimator {
	return &PopulationEstimator{
		perSource: make(map[netip.AddrPort]map[netip.AddrPort]struct{}),
		seen:      make(map[netip.AddrPort]struct{}),
	}
}

// Observe ingests one announcement of addr by source. Self-referential
// and per-source-duplicate announcements are ignored; the method
// reports whether the announcement was counted as a fresh draw.
func (e *PopulationEstimator) Observe(source, addr netip.AddrPort) bool {
	if source == addr {
		return false
	}
	srcSeen := e.perSource[source]
	if srcSeen == nil {
		srcSeen = make(map[netip.AddrPort]struct{})
		e.perSource[source] = srcSeen
	}
	if _, dup := srcSeen[addr]; dup {
		return false
	}
	srcSeen[addr] = struct{}{}
	e.total++
	if _, dup := e.seen[addr]; !dup {
		e.seen[addr] = struct{}{}
		e.distinct++
	}
	return true
}

// Distinct returns the number of distinct addresses observed.
func (e *PopulationEstimator) Distinct() int { return e.distinct }

// Total returns the number of counted draws (per-source deduplicated
// announcements).
func (e *PopulationEstimator) Total() int { return e.total }

// Estimate returns the population estimate. It is always finite and
// non-negative: zero before any observation, and capped when no
// recurrence has been observed yet (where the MLE diverges).
func (e *PopulationEstimator) Estimate() float64 {
	return InvertRecurrence(float64(e.distinct), float64(e.total))
}

// InvertRecurrence solves E[distinct] = N·(1 − (1 − 1/N)^total) for N
// given an observed (distinct, total) pair. The coverage function is
// strictly increasing in N, so the inversion is a bisection. Degenerate
// inputs collapse safely: non-positive (or NaN) counts return 0, and a
// stream with no recurrence at all (distinct == total, where the MLE is
// unbounded) returns the finite all-singletons fallback
// d + d·(d−1)/2 — the Chao1 richness bound with no observed doubletons.
func InvertRecurrence(distinct, total float64) float64 {
	d, t := distinct, total
	if !(d > 0) || !(t > 0) || math.IsInf(d, 0) || math.IsInf(t, 0) {
		return 0
	}
	if d > t {
		// More distinct addresses than draws is impossible under the
		// model; clamp defensively (arbitrary streams may claim it).
		d = t
	}
	if d == 1 {
		return 1
	}
	if d >= t {
		est := d + d*(d-1)/2
		return math.Min(est, maxPopulation)
	}
	// Bracket: coverage(N) < d for small N, > d for large N.
	lo, hi := d, 2*d
	for expectedCoverage(hi, t) < d {
		if hi >= maxPopulation {
			return maxPopulation
		}
		lo = hi
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := lo + (hi-lo)/2
		if expectedCoverage(mid, t) < d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// expectedCoverage is E[distinct] after t uniform draws (with
// replacement) from a population of n addresses.
func expectedCoverage(n, t float64) float64 {
	if n <= 1 {
		return math.Min(n, 1)
	}
	return n * (1 - math.Exp(t*math.Log1p(-1/n)))
}

// sourceDegree is the per-peer degree-estimation state.
type sourceDegree struct {
	distinct map[netip.AddrPort]struct{}
	// first is the first observed response size — the GETADDR percentage
	// probe; -1 until an exchange has been seen.
	first int
	// exchanges counts observed exchanges.
	exchanges int
	// drained records that an exchange added no new address: the
	// responder's tables repeated, so distinct enumerates them exactly.
	drained bool
}

// SourceDegree is one peer's degree-estimation outcome.
type SourceDegree struct {
	// Source is the crawled peer.
	Source netip.AddrPort
	// Estimate is the combined estimate (see DegreeEstimator).
	Estimate float64
	// Ratio is the single-exchange probe estimate
	// first·100/GetAddrMaxPct — what a one-shot GETADDR measurement
	// yields without iterative sampling.
	Ratio float64
	// Distinct is the number of distinct addresses enumerated.
	Distinct int
	// Exchanges counts the observed GETADDR exchanges.
	Exchanges int
	// Drained reports whether an exchange repeated entirely — under
	// paged serving, the signal that Distinct enumerates the tables
	// exactly.
	Drained bool
}

// DegreeEstimator estimates each crawled peer's gossip out-degree — the
// number of distinct addresses its tables reveal — from GETADDR return
// sampling. Two lower bounds are combined:
//
//   - the percentage probe: the first response holds
//     min(⌈pct·n/100⌉, cap) addresses, so first·100/pct ≤ n whenever
//     the tables hold at least 100/pct addresses;
//   - the enumeration: the distinct addresses seen so far, which grows
//     monotonically to n as exchanges page through the tables.
//
// The estimate is the maximum of the two. Both are lower bounds on the
// true degree whenever responses respect the pct/cap contract, and the
// enumeration only grows, so the estimate never decreases and its error
// is monotone non-increasing in the number of exchanges — a property
// the property-test suite asserts round by round on arbitrary
// contract-respecting streams. Under paged (without-replacement)
// serving — the popsim session model — a repeat exchange sets Drained
// and the enumeration equals the true degree exactly, so the estimate
// is exact at Algorithm 1 termination. The one caveat is books smaller
// than 100/pct addresses (< 5 at the Bitcoin Core 23%), where a
// responder serves its whole book in one response and the ratio probe
// over-certifies; simulation books are well past that floor.
type DegreeEstimator struct {
	pct, cap int
	sources  map[netip.AddrPort]*sourceDegree
	order    []netip.AddrPort // first-observation order, for deterministic iteration
}

// NewDegreeEstimator creates an estimator for the given GETADDR policy
// (zero values select the Bitcoin Core defaults).
func NewDegreeEstimator(pct, cap int) *DegreeEstimator {
	if pct <= 0 {
		pct = DefaultGetAddrMaxPct
	}
	if cap <= 0 {
		cap = DefaultGetAddrMax
	}
	return &DegreeEstimator{
		pct:     pct,
		cap:     cap,
		sources: make(map[netip.AddrPort]*sourceDegree),
	}
}

// ObserveExchange ingests one GETADDR→ADDR exchange from source. A
// zero-length response carries no information and is ignored (it is not
// evidence of drained tables — a refused or empty reply is not a
// repeat). It reports whether this created a new source.
func (e *DegreeEstimator) ObserveExchange(source netip.AddrPort, addrs []netip.AddrPort) bool {
	if len(addrs) == 0 {
		return false
	}
	st := e.sources[source]
	created := false
	if st == nil {
		st = &sourceDegree{distinct: make(map[netip.AddrPort]struct{}), first: -1}
		e.sources[source] = st
		e.order = append(e.order, source)
		created = true
	}
	if st.first < 0 {
		st.first = len(addrs)
	}
	st.exchanges++
	fresh := 0
	for _, a := range addrs {
		if _, dup := st.distinct[a]; dup {
			continue
		}
		st.distinct[a] = struct{}{}
		fresh++
	}
	if fresh == 0 {
		st.drained = true
	}
	return created
}

// NumSources returns the number of peers observed.
func (e *DegreeEstimator) NumSources() int { return len(e.order) }

// estimateOf computes one source's SourceDegree.
func (e *DegreeEstimator) estimateOf(source netip.AddrPort, st *sourceDegree) SourceDegree {
	out := SourceDegree{
		Source:    source,
		Distinct:  len(st.distinct),
		Exchanges: st.exchanges,
		Drained:   st.drained,
	}
	probe := st.first
	if probe > e.cap {
		probe = e.cap // over-cap responses still only certify cap·100/pct
	}
	out.Ratio = float64(probe) * 100 / float64(e.pct)
	out.Estimate = math.Max(float64(out.Distinct), out.Ratio)
	return out
}

// Estimates returns the per-source outcomes in first-observation order —
// which, fed from the crawler's merge loop, is crawl target order, so
// the listing is deterministic at any worker count.
func (e *DegreeEstimator) Estimates() []SourceDegree {
	out := make([]SourceDegree, 0, len(e.order))
	for _, src := range e.order {
		out = append(out, e.estimateOf(src, e.sources[src]))
	}
	return out
}

// EstimateOf returns one source's outcome and whether the source has
// been observed.
func (e *DegreeEstimator) EstimateOf(source netip.AddrPort) (SourceDegree, bool) {
	st := e.sources[source]
	if st == nil || st.first < 0 {
		return SourceDegree{}, false
	}
	return e.estimateOf(source, st), true
}

// Mean returns the mean combined estimate and the mean single-exchange
// probe estimate across all observed sources. With no sources both are
// 0 — never NaN (the zero-observation division guard).
func (e *DegreeEstimator) Mean() (estimate, ratio float64) {
	if len(e.order) == 0 {
		return 0, 0
	}
	var sumEst, sumRatio float64
	for _, src := range e.order {
		sd := e.estimateOf(src, e.sources[src])
		sumEst += sd.Estimate
		sumRatio += sd.Ratio
	}
	n := float64(len(e.order))
	return sumEst / n, sumRatio / n
}

// Collector feeds both estimators from a stream of GETADDR exchanges —
// the shape the crawler's Observer seam delivers. It owns the est.*
// metrics and applies the reachable-reference filter for the population
// estimator; the degree estimator sees the full response (a peer's
// tables hold reachable addresses too).
type Collector struct {
	cfg Config
	// Pop is the unreachable-population estimator.
	Pop *PopulationEstimator
	// Deg is the per-peer degree estimator.
	Deg *DegreeEstimator

	scratch []netip.AddrPort

	mExchanges *obs.Counter
	mAnnounce  *obs.Counter
	mUnreach   *obs.Counter
	mSources   *obs.Counter
}

// NewCollector creates a collector over cfg.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg: cfg,
		Pop: NewPopulationEstimator(),
		Deg: NewDegreeEstimator(cfg.GetAddrMaxPct, cfg.GetAddrMax),

		mExchanges: cfg.Metrics.Counter("est.exchanges"),
		mAnnounce:  cfg.Metrics.Counter("est.announcements"),
		mUnreach:   cfg.Metrics.Counter("est.announcements.unreachable"),
		mSources:   cfg.Metrics.Counter("est.sources"),
	}
}

// Exchange ingests one GETADDR→ADDR exchange: source answered with
// addrs. Malformed entries (invalid addresses) are skipped; the method
// never panics on arbitrary input.
func (c *Collector) Exchange(source netip.AddrPort, addrs []wire.NetAddress) {
	c.mExchanges.Inc()
	c.scratch = c.scratch[:0]
	for _, na := range addrs {
		c.mAnnounce.Inc()
		c.scratch = append(c.scratch, na.Addr)
		if c.cfg.IsReachable != nil && c.cfg.IsReachable(na.Addr) {
			continue
		}
		if c.Pop.Observe(source, na.Addr) {
			c.mUnreach.Inc()
		}
	}
	if c.Deg.ObserveExchange(source, c.scratch) {
		c.mSources.Inc()
	}
}

// PopulationEstimate returns the current unreachable-population
// estimate (finite, non-negative; 0 before any observation).
func (c *Collector) PopulationEstimate() float64 { return c.Pop.Estimate() }

// MeanDegree returns the mean combined and mean probe degree estimates
// across observed peers (0, 0 before any observation).
func (c *Collector) MeanDegree() (estimate, ratio float64) { return c.Deg.Mean() }

// RelativeError returns |estimate − truth| / truth, or 0 when truth is
// 0 — the NaN-free convention every estimator-error table in the
// fig_est family uses.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 || math.IsNaN(truth) {
		return 0
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}
