package estimate

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

func eAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 8333)
}

func TestInvertRecurrenceDegenerate(t *testing.T) {
	cases := []struct {
		d, t, want float64
	}{
		{0, 0, 0},
		{0, 10, 0},
		{-3, 10, 0},
		{10, -1, 0},
		{math.NaN(), 10, 0},
		{10, math.NaN(), 0},
		{math.Inf(1), 10, 0},
		{1, 1, 1},
		{1, 100, 1},
	}
	for _, c := range cases {
		if got := InvertRecurrence(c.d, c.t); got != c.want {
			t.Errorf("InvertRecurrence(%v, %v) = %v, want %v", c.d, c.t, got, c.want)
		}
	}
}

func TestInvertRecurrenceNoRecurrenceFallback(t *testing.T) {
	// All-singletons streams hit the finite Chao-style fallback instead
	// of the divergent MLE.
	got := InvertRecurrence(50, 50)
	want := 50 + 50*49/2.0
	if got != want {
		t.Errorf("fallback = %v, want %v", got, want)
	}
	// d > t is impossible under the model; it must clamp, not blow up.
	if got := InvertRecurrence(100, 50); !isFiniteNonNeg(got) {
		t.Errorf("clamped estimate = %v, want finite non-negative", got)
	}
}

func TestInvertRecurrenceRecoversTruth(t *testing.T) {
	// Feeding the exact expected coverage back through the inversion must
	// recover the population it was computed from.
	for _, n := range []float64{100, 1000, 25000} {
		for _, mult := range []float64{0.5, 1, 2, 5} {
			draws := n * mult
			d := expectedCoverage(n, draws)
			got := InvertRecurrence(d, draws)
			if rel := math.Abs(got-n) / n; rel > 1e-6 {
				t.Errorf("n=%v draws=%v: recovered %v (rel err %v)", n, draws, got, rel)
			}
		}
	}
}

func TestPopulationEstimatorDedup(t *testing.T) {
	e := NewPopulationEstimator()
	s1, s2 := eAddr(1), eAddr(2)
	a := eAddr(100)
	if !e.Observe(s1, a) {
		t.Error("first observation not counted")
	}
	if e.Observe(s1, a) {
		t.Error("per-source duplicate counted")
	}
	if !e.Observe(s2, a) {
		t.Error("same address from a second source must count (a fresh draw)")
	}
	if e.Observe(s1, s1) {
		t.Error("self-referential announcement counted")
	}
	if e.Distinct() != 1 || e.Total() != 2 {
		t.Errorf("distinct/total = %d/%d, want 1/2", e.Distinct(), e.Total())
	}
}

func TestPopulationEstimatorEmpty(t *testing.T) {
	e := NewPopulationEstimator()
	if got := e.Estimate(); got != 0 {
		t.Errorf("empty estimate = %v, want 0", got)
	}
}

func TestDegreeEstimatorDrainedExact(t *testing.T) {
	// A 20-address book paged 4 at a time (20% ≤ the 23% contract): the
	// ratio probe dominates early, enumeration takes over, and the
	// estimate is exact at the repeat page that terminates Algorithm 1.
	e := NewDegreeEstimator(23, 1000)
	src := eAddr(1)
	book := make([]netip.AddrPort, 20)
	for i := range book {
		book[i] = eAddr(10 + i)
	}
	e.ObserveExchange(src, book[0:4])
	sd, ok := e.EstimateOf(src)
	if !ok {
		t.Fatal("source not found")
	}
	if sd.Drained {
		t.Error("drained before any repeat")
	}
	// First response of 4 at 23% certifies ≈17.4 addresses, above the 4
	// enumerated so far.
	if want := 4 * 100.0 / 23; sd.Ratio != want || sd.Estimate != want {
		t.Errorf("ratio/estimate = %v/%v, want %v", sd.Ratio, sd.Estimate, want)
	}
	for cursor := 4; cursor < 20; cursor += 4 {
		e.ObserveExchange(src, book[cursor:cursor+4])
	}
	e.ObserveExchange(src, book[0:4]) // repeat page: Algorithm 1 terminator
	sd, _ = e.EstimateOf(src)
	if !sd.Drained || sd.Estimate != 20 || sd.Distinct != 20 {
		t.Errorf("after drain: %+v, want drained exact 20", sd)
	}
	if sd.Exchanges != 6 {
		t.Errorf("exchanges = %d, want 6", sd.Exchanges)
	}
}

func TestDegreeEstimatorZeroLengthIgnored(t *testing.T) {
	e := NewDegreeEstimator(0, 0) // defaults
	src := eAddr(1)
	if e.ObserveExchange(src, nil) {
		t.Error("zero-length exchange created a source")
	}
	if _, ok := e.EstimateOf(src); ok {
		t.Error("source exists after only an empty exchange")
	}
	if est, ratio := e.Mean(); est != 0 || ratio != 0 {
		t.Errorf("empty mean = %v/%v, want 0/0 (zero-observation guard)", est, ratio)
	}
}

func TestDegreeEstimatorCapClamp(t *testing.T) {
	// A response larger than the cap only certifies cap·100/pct.
	e := NewDegreeEstimator(23, 10)
	var page []netip.AddrPort
	for i := 0; i < 50; i++ {
		page = append(page, eAddr(100+i))
	}
	e.ObserveExchange(eAddr(1), page)
	sd, _ := e.EstimateOf(eAddr(1))
	if want := 10 * 100.0 / 23; sd.Ratio != want {
		t.Errorf("over-cap ratio = %v, want %v", sd.Ratio, want)
	}
	// But enumeration still counts all 50 distinct addresses.
	if sd.Estimate != 50 {
		t.Errorf("estimate = %v, want 50 (distinct dominates)", sd.Estimate)
	}
}

func TestDegreeEstimatorDeterministicOrder(t *testing.T) {
	e := NewDegreeEstimator(23, 1000)
	order := []netip.AddrPort{eAddr(3), eAddr(1), eAddr(2)}
	for _, src := range order {
		e.ObserveExchange(src, []netip.AddrPort{eAddr(100)})
	}
	ests := e.Estimates()
	if len(ests) != 3 {
		t.Fatalf("sources = %d, want 3", len(ests))
	}
	for i, sd := range ests {
		if sd.Source != order[i] {
			t.Errorf("Estimates()[%d] = %v, want first-observation order %v", i, sd.Source, order[i])
		}
	}
}

func TestCollector(t *testing.T) {
	reg := obs.NewRegistry()
	reach := eAddr(1)
	c := NewCollector(Config{
		IsReachable: func(a netip.AddrPort) bool { return a == reach },
		Metrics:     reg,
	})
	src := eAddr(2)
	c.Exchange(src, []wire.NetAddress{
		{Addr: reach}, // filtered from the population sample
		{Addr: eAddr(100)},
		{Addr: eAddr(101)},
	})
	if c.Pop.Total() != 2 {
		t.Errorf("population draws = %d, want 2 (reachable filtered)", c.Pop.Total())
	}
	if c.Deg.NumSources() != 1 {
		t.Errorf("degree sources = %d, want 1", c.Deg.NumSources())
	}
	sd, _ := c.Deg.EstimateOf(src)
	if sd.Distinct != 3 {
		t.Errorf("degree distinct = %d, want 3 (reachable NOT filtered)", sd.Distinct)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, m := range snap.Counters {
		counters[m.Name] = m.Value
	}
	want := map[string]int64{
		"est.exchanges":                 1,
		"est.announcements":             3,
		"est.announcements.unreachable": 2,
		"est.sources":                   1,
	}
	for name, v := range want {
		if counters[name] != v {
			t.Errorf("%s = %d, want %d", name, counters[name], v)
		}
	}
	if got := c.PopulationEstimate(); !isFiniteNonNeg(got) {
		t.Errorf("population estimate = %v", got)
	}
	if est, ratio := c.MeanDegree(); !isFiniteNonNeg(est) || !isFiniteNonNeg(ratio) {
		t.Errorf("mean degree = %v/%v", est, ratio)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(5, 0); got != 0 {
		t.Errorf("zero-truth relative error = %v, want 0 (guard)", got)
	}
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError(110, 100) = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError(90, 100) = %v, want 0.1", got)
	}
}

func isFiniteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}
