// Package addridx interns a fixed universe of netip.AddrPort endpoints
// into dense uint32 station identifiers.
//
// The crawl hot paths (Algorithm 1's per-node drain, the longitudinal
// study's cumulative bookkeeping) are membership-set bound: with
// map[netip.AddrPort] sets, every received address pays 28-byte key
// hashing and every snapshot pays map growth and rehash churn. Interning
// the universe once at construction replaces all of that with a single
// sorted dense-table lookup per address (binary search over a flat
// table) followed by O(1) bitset operations — and the dense IDs double
// as the deterministic per-target RNG-derivation component for the
// parallel crawl fan-out.
//
// addridx is a leaf package (no repo-internal imports) so netgen,
// crawler, churn, and analysis can all share it without cycles.
package addridx

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"net/netip"
	"sort"
)

// ID is a dense station identifier: the position of the address in the
// interning order (for a netgen universe, generation order).
type ID uint32

// None marks an address outside the interned universe.
const None ID = math.MaxUint32

// Compare orders two endpoints by address then port — a total order for
// callers breaking output-ordering ties without reimplementing it.
func Compare(a, b netip.AddrPort) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Port() < b.Port():
		return -1
	case a.Port() > b.Port():
		return 1
	default:
		return 0
	}
}

// key is the integer form of an endpoint the sorted table is ordered by:
// the 16-byte address (IPv4 mapped into IPv6 space) split into two
// big-endian words, then the port. Binary search over keys costs three
// register compares per step where netip.Addr.Compare pays format
// dispatch on every call — the difference is ~40% of a whole crawl.
// Zones are ignored; a scoped-address universe is not a crawl target.
type key struct {
	hi, lo uint64
	port   uint16
}

func keyOf(a netip.AddrPort) key {
	b := a.Addr().As16()
	return key{
		hi:   binary.BigEndian.Uint64(b[:8]),
		lo:   binary.BigEndian.Uint64(b[8:]),
		port: a.Port(),
	}
}

func (k key) less(o key) bool {
	if k.hi != o.hi {
		return k.hi < o.hi
	}
	if k.lo != o.lo {
		return k.lo < o.lo
	}
	return k.port < o.port
}

// Index is an immutable intern table: Addr resolves an ID back to its
// endpoint in O(1), Lookup resolves an endpoint to its ID in O(1)
// expected via a flat open-addressing probe table over the integer keys
// (the sorted dense table stays the canonical structure — it defines
// ascending iteration and duplicate detection — but binary-searching it
// costs ~14 dependent cache misses per address at universe scale, which
// profiling showed was the single largest slice of a crawl). An Index
// is safe for concurrent use once built.
type Index struct {
	addrs  []netip.AddrPort // dense table, addrs[id]
	keys   []key            // integer keys in ascending order
	sorted []ID             // ids parallel to keys
	slots  []slot           // open-addressing lookup table, len = 2^k
	mask   uint64
}

// slot is one probe-table entry; id == None marks an empty slot.
type slot struct {
	k  key
	id ID
}

func hashKey(k key) uint64 {
	// splitmix64 finalizer over the folded key words.
	x := k.hi ^ (k.lo * 0x9e3779b97f4a7c15) ^ uint64(k.port)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Build interns addrs in the given order: addrs[i] gets ID(i). The
// input must be duplicate-free (a universe has one station per
// endpoint); duplicates are reported as an error rather than silently
// collapsed.
func Build(addrs []netip.AddrPort) (*Index, error) {
	if len(addrs) >= int(None) {
		return nil, fmt.Errorf("addridx: %d addresses overflow the ID space", len(addrs))
	}
	x := &Index{
		addrs:  append([]netip.AddrPort(nil), addrs...),
		sorted: make([]ID, len(addrs)),
	}
	for i := range x.sorted {
		x.sorted[i] = ID(i)
	}
	sort.Slice(x.sorted, func(i, j int) bool {
		return keyOf(x.addrs[x.sorted[i]]).less(keyOf(x.addrs[x.sorted[j]]))
	})
	x.keys = make([]key, len(x.sorted))
	for i, id := range x.sorted {
		x.keys[i] = keyOf(x.addrs[id])
	}
	for i := 1; i < len(x.keys); i++ {
		if x.keys[i-1] == x.keys[i] {
			return nil, fmt.Errorf("addridx: duplicate address %v", x.addrs[x.sorted[i]])
		}
	}

	// Probe table at ≤50% load: linear probing stays a one-cache-line
	// affair on average.
	size := uint64(1)
	for size < uint64(2*len(addrs)+1) {
		size <<= 1
	}
	x.slots = make([]slot, size)
	x.mask = size - 1
	for i := range x.slots {
		x.slots[i].id = None
	}
	for i, k := range x.keys {
		h := hashKey(k) & x.mask
		for x.slots[h].id != None {
			h = (h + 1) & x.mask
		}
		x.slots[h] = slot{k: k, id: x.sorted[i]}
	}
	return x, nil
}

// Len returns the number of interned addresses.
func (x *Index) Len() int { return len(x.addrs) }

// Addr returns the endpoint interned as id.
func (x *Index) Addr(id ID) netip.AddrPort { return x.addrs[id] }

// Lookup resolves addr to its dense ID, or (None, false) when addr is
// outside the interned universe.
func (x *Index) Lookup(addr netip.AddrPort) (ID, bool) {
	if len(x.slots) == 0 {
		return None, false
	}
	k := keyOf(addr)
	h := hashKey(k) & x.mask
	for {
		s := &x.slots[h]
		if s.id == None {
			return None, false
		}
		if s.k == k {
			return s.id, true
		}
		h = (h + 1) & x.mask
	}
}

// Set is a bitset over dense IDs — the hot-path replacement for
// map[netip.AddrPort]struct{} membership sets. The zero Set is empty
// and usable; it grows on Add. A Set is not safe for concurrent
// mutation.
type Set struct {
	words []uint64
	count int
}

// NewSet returns a set pre-sized for IDs in [0, n).
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Add inserts id and reports whether it was newly added.
func (s *Set) Add(id ID) bool {
	w := int(id >> 6)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	mask := uint64(1) << (id & 63)
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	s.count++
	return true
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id ID) bool {
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(1<<(id&63)) != 0
}

// Count returns the number of members.
func (s *Set) Count() int { return s.count }

// Clear empties the set, keeping its capacity for reuse.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Union merges t into s.
func (s *Set) Union(t *Set) {
	if t == nil {
		return
	}
	if len(t.words) > len(s.words) {
		grown := make([]uint64, len(t.words))
		copy(grown, s.words)
		s.words = grown
	}
	count := 0
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] |= t.words[i]
		}
		count += bits.OnesCount64(s.words[i])
	}
	s.count = count
}

// AppendIDs appends the members to dst in ascending ID order.
func (s *Set) AppendIDs(dst []ID) []ID {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, ID(w<<6+b))
			word &= word - 1
		}
	}
	return dst
}
