package addridx

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

// randAddrs generates n distinct random endpoints.
func randAddrs(rng *rand.Rand, n int) []netip.AddrPort {
	seen := make(map[netip.AddrPort]struct{}, n)
	out := make([]netip.AddrPort, 0, n)
	for len(out) < n {
		var b [4]byte
		rng.Read(b[:])
		a := netip.AddrPortFrom(netip.AddrFrom4(b), uint16(rng.Intn(65536)))
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// TestIndexRoundTripProperty: for random address sets, intern→resolve
// must round-trip exactly — Addr(Lookup(a)) == a for every member, in
// interning order — and non-members must miss.
func TestIndexRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		addrs := randAddrs(rng, n)
		x, err := Build(addrs)
		if err != nil {
			t.Fatal(err)
		}
		if x.Len() != n {
			t.Fatalf("trial %d: Len = %d, want %d", trial, x.Len(), n)
		}
		for i, a := range addrs {
			id, ok := x.Lookup(a)
			if !ok || id != ID(i) {
				t.Fatalf("trial %d: Lookup(%v) = (%d, %v), want (%d, true)", trial, a, id, ok, i)
			}
			if x.Addr(id) != a {
				t.Fatalf("trial %d: Addr(%d) = %v, want %v", trial, id, x.Addr(id), a)
			}
		}
		// Probing addresses outside the set must miss.
		for _, ghost := range randAddrs(rng, 20) {
			member := false
			for _, a := range addrs {
				if a == ghost {
					member = true
					break
				}
			}
			if id, ok := x.Lookup(ghost); ok != member {
				t.Fatalf("trial %d: Lookup(ghost %v) = (%d, %v), member = %v", trial, ghost, id, ok, member)
			}
		}
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	a := netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 8333)
	b := netip.AddrPortFrom(netip.MustParseAddr("10.0.0.2"), 8333)
	if _, err := Build([]netip.AddrPort{a, b, a}); err == nil {
		t.Error("duplicate addresses not rejected")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	addrs := randAddrs(rng, 100)
	sort.Slice(addrs, func(i, j int) bool { return Compare(addrs[i], addrs[j]) < 0 })
	for i := 1; i < len(addrs); i++ {
		if Compare(addrs[i-1], addrs[i]) >= 0 {
			t.Fatalf("order violated at %d: %v vs %v", i, addrs[i-1], addrs[i])
		}
		if Compare(addrs[i], addrs[i-1]) <= 0 {
			t.Fatalf("asymmetry violated at %d", i)
		}
	}
	if Compare(addrs[0], addrs[0]) != 0 {
		t.Error("Compare(a, a) != 0")
	}
}

// TestSetAgainstReferenceMap: a long random op sequence over Set must
// agree with a map-based reference implementation at every step.
func TestSetAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSet(64)
	ref := make(map[ID]struct{})
	for op := 0; op < 5000; op++ {
		id := ID(rng.Intn(1000))
		switch rng.Intn(3) {
		case 0:
			_, dup := ref[id]
			ref[id] = struct{}{}
			if added := s.Add(id); added == dup {
				t.Fatalf("op %d: Add(%d) = %v, reference dup = %v", op, id, added, dup)
			}
		case 1:
			_, want := ref[id]
			if got := s.Contains(id); got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", op, id, got, want)
			}
		case 2:
			if s.Count() != len(ref) {
				t.Fatalf("op %d: Count = %d, want %d", op, s.Count(), len(ref))
			}
		}
	}
	// Iteration must visit exactly the members, ascending.
	ids := s.AppendIDs(nil)
	if len(ids) != len(ref) {
		t.Fatalf("AppendIDs returned %d members, want %d", len(ids), len(ref))
	}
	for i, id := range ids {
		if _, ok := ref[id]; !ok {
			t.Fatalf("AppendIDs produced non-member %d", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("AppendIDs not ascending at %d", i)
		}
	}
}

// TestSetUnionAgainstReferenceMap: union must match the reference map
// union, including when the operand is larger than the receiver.
func TestSetUnionAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		a, b := NewSet(0), NewSet(0)
		ref := make(map[ID]struct{})
		for i := 0; i < rng.Intn(300); i++ {
			id := ID(rng.Intn(2000))
			a.Add(id)
			ref[id] = struct{}{}
		}
		for i := 0; i < rng.Intn(300); i++ {
			id := ID(rng.Intn(2000))
			b.Add(id)
			ref[id] = struct{}{}
		}
		a.Union(b)
		if a.Count() != len(ref) {
			t.Fatalf("trial %d: union Count = %d, want %d", trial, a.Count(), len(ref))
		}
		for id := range ref {
			if !a.Contains(id) {
				t.Fatalf("trial %d: union missing %d", trial, id)
			}
		}
	}
	s := NewSet(10)
	s.Union(nil) // nil operand is a no-op
	if s.Count() != 0 {
		t.Error("Union(nil) changed the set")
	}
}

func TestSetClearKeepsCapacity(t *testing.T) {
	s := NewSet(128)
	for i := 0; i < 128; i++ {
		s.Add(ID(i))
	}
	words := len(s.words)
	s.Clear()
	if s.Count() != 0 || s.Contains(5) {
		t.Error("Clear left members behind")
	}
	if len(s.words) != words {
		t.Error("Clear dropped capacity")
	}
	if !s.Add(5) {
		t.Error("Add after Clear not fresh")
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	addrs := randAddrs(rng, 1<<16)
	x, err := Build(addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := x.Lookup(addrs[i&(1<<16-1)]); !ok {
			b.Fatal("miss")
		}
	}
}
