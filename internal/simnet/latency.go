package simnet

import (
	"encoding/binary"
	"net/netip"
	"time"

	"repro/internal/asmap"
	"repro/internal/chainhash"
)

// LatencyFunc returns the one-way propagation delay between two
// addresses. Implementations must be deterministic: the same pair always
// yields the same latency, which preserves per-link FIFO ordering in the
// event queue.
type LatencyFunc func(a, b netip.Addr) time.Duration

// ConstantLatency returns d for every pair.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(netip.Addr, netip.Addr) time.Duration { return d }
}

// addrHash produces a deterministic 64-bit hash of a single address —
// used where an outcome must be a property of one endpoint alone (e.g.
// the FastFailPct refusal/timeout split for dead addresses).
func addrHash(a netip.Addr) uint64 {
	return pairHash(a, a)
}

// pairHash produces a symmetric deterministic 64-bit hash of an address
// pair.
func pairHash(a, b netip.Addr) uint64 {
	if b.Less(a) {
		a, b = b, a
	}
	ab := a.As16()
	bb := b.As16()
	var buf [32]byte
	copy(buf[:16], ab[:])
	copy(buf[16:], bb[:])
	h := chainhash.DoubleSHA256(buf[:])
	return binary.LittleEndian.Uint64(h[:8])
}

// HashLatency draws a deterministic per-pair latency uniformly from
// [min, max].
func HashLatency(min, max time.Duration) LatencyFunc {
	if max < min {
		max = min
	}
	span := uint64(max - min)
	return func(a, b netip.Addr) time.Duration {
		if span == 0 {
			return min
		}
		return min + time.Duration(pairHash(a, b)%(span+1))
	}
}

// ASLatency models the paper's observation that Bitcoin latency is
// dominated by inter-AS routes: pairs within one AS see intra; pairs in
// different ASes see a deterministic per-AS-pair latency in
// [interMin, interMax]. Addresses the allocator cannot resolve fall back
// to the inter-AS range.
func ASLatency(al *asmap.IPAllocator, intra, interMin, interMax time.Duration) LatencyFunc {
	if interMax < interMin {
		interMax = interMin
	}
	span := uint64(interMax - interMin)
	return func(a, b netip.Addr) time.Duration {
		asnA, okA := al.ASNOf(a)
		asnB, okB := al.ASNOf(b)
		if okA && okB && asnA == asnB {
			return intra
		}
		if span == 0 {
			return interMin
		}
		return interMin + time.Duration(pairHash(a, b)%(span+1))
	}
}
