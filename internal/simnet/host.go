package simnet

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/node"
	"repro/internal/wire"
)

// Host is one simulated endpoint. Full-node hosts own a node.Node
// instance per online session; stubs only participate in dial/probe
// semantics. Host implements node.Env for its current node.
type Host struct {
	net     *Network
	addr    netip.AddrPort
	kind    HostKind
	nodeCfg node.Config

	node   *node.Node
	online bool
	// epoch increments on every Start/Stop so callbacks scheduled for a
	// previous session become no-ops.
	epoch int

	links map[node.ConnID]*link
	rng   *rand.Rand
}

// Addr returns the host's address.
func (h *Host) Addr() netip.AddrPort { return h.addr }

// Kind returns the host kind.
func (h *Host) Kind() HostKind { return h.kind }

// Online reports whether the host is currently up.
func (h *Host) Online() bool { return h.online }

// Node returns the current node instance (nil for stubs and offline
// full-node hosts).
func (h *Host) Node() *node.Node { return h.node }

// Config returns the node configuration template used at Start.
func (h *Host) Config() node.Config { return h.nodeCfg }

// SetConfig replaces the node configuration template used by the next
// Start (it does not affect a running node).
func (h *Host) SetConfig(cfg node.Config) { h.nodeCfg = cfg }

// Start brings the host online. Full-node hosts construct and start a
// fresh node instance (a restart models a node rejoining the network:
// its addrman starts from the configured seeds, and its chain from
// genesis unless the previous session's state was explicitly carried
// over via SetConfig hooks).
func (h *Host) Start() {
	if h.online {
		return
	}
	h.online = true
	h.epoch++
	if h.kind != KindFull {
		return
	}
	h.node = node.New(h.nodeCfg, h)
	h.node.Start()
}

// Stop takes the host offline, closing every link.
func (h *Host) Stop() {
	if !h.online {
		return
	}
	h.online = false
	h.epoch++
	// Close links under iteration: collect first.
	ids := make([]node.ConnID, 0, len(h.links))
	for id := range h.links {
		ids = append(ids, id)
	}
	for _, id := range ids {
		h.net.closeLink(h, id)
	}
	if h.node != nil {
		h.node.Stop()
		h.node = nil
	}
}

// --- node.Env implementation -------------------------------------------

var _ node.Env = (*Host)(nil)

// Now implements node.Env.
func (h *Host) Now() time.Time { return h.net.sched.Now() }

// Rand implements node.Env.
func (h *Host) Rand() *rand.Rand {
	if h.rng == nil {
		h.rng = rand.New(rand.NewSource(int64(addrHash(h.addr.Addr()))))
	}
	return h.rng
}

// Schedule implements node.Env. Callbacks are dropped if the host session
// that scheduled them has ended.
func (h *Host) Schedule(d time.Duration, fn func()) {
	epoch := h.epoch
	h.net.sched.After(d, func() {
		if h.epoch != epoch || !h.online {
			return
		}
		fn()
	})
}

// Dial implements node.Env.
func (h *Host) Dial(remote netip.AddrPort) {
	h.net.dial(h, remote)
}

// Transmit implements node.Env.
func (h *Host) Transmit(conn node.ConnID, msg wire.Message, delay time.Duration) {
	h.net.transmit(h, conn, msg, delay)
}

// Disconnect implements node.Env.
func (h *Host) Disconnect(conn node.ConnID) {
	h.net.closeLink(h, conn)
}
