package simnet

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/wire"
)

func addr4(a, b, c, d byte, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{a, b, c, d}), port)
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	var got []int
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(1*time.Second, func() { got = append(got, 11) }) // FIFO among ties
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.RunUntil(time.Unix(10, 0))
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != time.Unix(10, 0) {
		t.Errorf("Now = %v, want deadline", s.Now())
	}
}

func TestSchedulerRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	fired := false
	s.After(5*time.Second, func() { fired = true })
	s.RunUntil(time.Unix(3, 0))
	if fired {
		t.Error("event beyond deadline fired")
	}
	s.RunUntil(time.Unix(6, 0))
	if !fired {
		t.Error("event within extended deadline did not fire")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(0, tick)
	s.RunUntil(time.Unix(100, 0))
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := NewScheduler(time.Unix(100, 0))
	ran := false
	s.At(time.Unix(1, 0), func() { ran = true })
	s.RunFor(time.Second)
	if !ran {
		t.Error("past-scheduled event must run immediately")
	}
	if s.Now().Before(time.Unix(100, 0)) {
		t.Error("clock went backwards")
	}
}

func TestHashLatencyDeterministicSymmetric(t *testing.T) {
	f := HashLatency(20*time.Millisecond, 100*time.Millisecond)
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")
	l1, l2 := f(a, b), f(b, a)
	if l1 != l2 {
		t.Errorf("latency not symmetric: %v vs %v", l1, l2)
	}
	if l1 != f(a, b) {
		t.Error("latency not deterministic")
	}
	if l1 < 20*time.Millisecond || l1 > 100*time.Millisecond {
		t.Errorf("latency %v out of range", l1)
	}
}

// genesis shared across simnet tests.
var testGenesis = chain.GenesisBlock("simnet-test")

// newTestNet builds a network with fast, deterministic parameters.
func newTestNet(seed int64) *Network {
	return New(Config{
		Seed:        seed,
		Latency:     ConstantLatency(10 * time.Millisecond),
		DialTimeout: 3 * time.Second,
	})
}

// nodeCfg builds a standard reachable full-node config.
func nodeCfg(self netip.AddrPort, seeds []wire.NetAddress) node.Config {
	return node.Config{
		Self:      wire.NetAddress{Addr: self, Services: wire.SFNodeNetwork},
		Reachable: true,
		Genesis:   testGenesis,
		SeedAddrs: seeds,
	}
}

// seedsOf converts addresses into seed NetAddresses stamped at epoch.
func seedsOf(epoch time.Time, addrs ...netip.AddrPort) []wire.NetAddress {
	out := make([]wire.NetAddress, len(addrs))
	for i, a := range addrs {
		out[i] = wire.NetAddress{Addr: a, Services: wire.SFNodeNetwork, Timestamp: epoch}
	}
	return out
}

func TestTwoNodeHandshake(t *testing.T) {
	net := newTestNet(1)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)

	outA, _, _ := ha.Node().ConnCounts()
	if outA != 1 {
		t.Fatalf("node A outbound = %d, want 1", outA)
	}
	_, inB, _ := hb.Node().ConnCounts()
	if inB != 1 {
		t.Fatalf("node B inbound = %d, want 1", inB)
	}
	// A should have promoted B to tried after the successful handshake.
	if !ha.Node().AddrMan().InTried(b) {
		t.Error("B not in A's tried table after successful connection")
	}
	attempts, successes := ha.Node().DialStats()
	if attempts < 1 || successes != 1 {
		t.Errorf("dial stats = %d/%d, want >=1/1", attempts, successes)
	}
}

func TestDialToDeadAddressTimesOut(t *testing.T) {
	net := newTestNet(2)
	a := addr4(10, 0, 0, 1, 8333)
	ghost := addr4(10, 9, 9, 9, 8333) // never registered
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), ghost)))
	var fails int
	cfg := ha.Config()
	cfg.Sink = node.SinkFunc(func(ev node.Event) {
		if ev.Type == node.EvDialFail {
			fails++
		}
	})
	ha.SetConfig(cfg)
	ha.Start()
	net.Scheduler().RunFor(20 * time.Second)
	if fails == 0 {
		t.Error("dials to a dead address never failed")
	}
	attempts, successes := ha.Node().DialStats()
	if successes != 0 {
		t.Errorf("successes = %d, want 0", successes)
	}
	if attempts == 0 {
		t.Error("no attempts recorded")
	}
}

func TestDialToResponsiveStubRefused(t *testing.T) {
	net := newTestNet(3)
	a := addr4(10, 0, 0, 1, 8333)
	nat := addr4(10, 5, 5, 5, 8333)
	net.AddStub(nat, true).Start()
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), nat)))
	var refusedQuickly bool
	start := net.Now()
	cfg := ha.Config()
	cfg.Sink = node.SinkFunc(func(ev node.Event) {
		if ev.Type == node.EvDialFail && ev.Peer == nat {
			// An active refusal resolves in RTTs, far below the timeout.
			if ev.Time.Sub(start) < 15*time.Second && ev.Err != nil {
				refusedQuickly = true
			}
		}
	})
	ha.SetConfig(cfg)
	ha.Start()
	net.Scheduler().RunFor(10 * time.Second)
	if !refusedQuickly {
		t.Error("responsive stub did not refuse the dial")
	}
}

func TestUnreachableFullNodeRefusesInbound(t *testing.T) {
	net := newTestNet(4)
	a := addr4(10, 0, 0, 1, 8333)
	u := addr4(10, 0, 0, 2, 8333)
	ucfg := nodeCfg(u, nil)
	ucfg.Reachable = false
	hu := net.AddFullNode(ucfg)
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), u)))
	hu.Start()
	ha.Start()
	net.Scheduler().RunFor(20 * time.Second)
	outA, _, _ := ha.Node().ConnCounts()
	if outA != 0 {
		t.Errorf("outbound to unreachable node = %d, want 0", outA)
	}
}

func TestUnreachableNodeCanDialOut(t *testing.T) {
	net := newTestNet(5)
	r := addr4(10, 0, 0, 1, 8333)
	u := addr4(10, 0, 0, 2, 8333)
	hr := net.AddFullNode(nodeCfg(r, nil))
	ucfg := nodeCfg(u, seedsOf(net.Now(), r))
	ucfg.Reachable = false
	hu := net.AddFullNode(ucfg)
	hr.Start()
	hu.Start()
	net.Scheduler().RunFor(20 * time.Second)
	outU, _, _ := hu.Node().ConnCounts()
	if outU != 1 {
		t.Errorf("unreachable node outbound = %d, want 1", outU)
	}
	_, inR, _ := hr.Node().ConnCounts()
	if inR != 1 {
		t.Errorf("reachable node inbound = %d, want 1", inR)
	}
}

func TestAddrGossipPropagates(t *testing.T) {
	// A knows B; B knows C. After A connects to B and GETADDRs, A should
	// learn C's address.
	net := newTestNet(6)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	c := addr4(10, 0, 0, 3, 8333)
	net.AddFullNode(nodeCfg(c, nil)).Start()
	hb := net.AddFullNode(nodeCfg(b, seedsOf(net.Now(), c)))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(60 * time.Second)
	if !ha.Node().AddrMan().Have(c) {
		t.Error("A never learned C's address from B's ADDR response")
	}
}

func TestBlockPropagationAndSync(t *testing.T) {
	// A chain of three nodes: miner -> relay -> leaf. A mined block must
	// reach the leaf.
	net := newTestNet(7)
	miner := addr4(10, 0, 0, 1, 8333)
	relay := addr4(10, 0, 0, 2, 8333)
	leaf := addr4(10, 0, 0, 3, 8333)
	hm := net.AddFullNode(nodeCfg(miner, nil))
	hr := net.AddFullNode(nodeCfg(relay, seedsOf(net.Now(), miner)))
	hl := net.AddFullNode(nodeCfg(leaf, seedsOf(net.Now(), relay)))
	hm.Start()
	hr.Start()
	hl.Start()
	net.Scheduler().RunFor(30 * time.Second)

	net.Scheduler().After(0, func() {
		if _, err := hm.Node().MineBlock(0); err != nil {
			t.Errorf("mine: %v", err)
		}
	})
	net.Scheduler().RunFor(60 * time.Second)

	if got := hm.Node().Chain().Height(); got != 1 {
		t.Fatalf("miner height = %d, want 1", got)
	}
	if got := hr.Node().Chain().Height(); got != 1 {
		t.Errorf("relay height = %d, want 1", got)
	}
	if got := hl.Node().Chain().Height(); got != 1 {
		t.Errorf("leaf height = %d, want 1", got)
	}
}

func TestTxPropagation(t *testing.T) {
	net := newTestNet(8)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	ha := net.AddFullNode(nodeCfg(a, nil))
	hb := net.AddFullNode(nodeCfg(b, seedsOf(net.Now(), a)))
	ha.Start()
	hb.Start()
	net.Scheduler().RunFor(30 * time.Second)

	tx := &wire.MsgTx{
		Version: 2,
		TxIn:    []wire.TxIn{{Sequence: 0xffffffff, SignatureScript: []byte{1}}},
		TxOut:   []wire.TxOut{{Value: 1000, PkScript: []byte{0x51}}},
	}
	var txHash = tx.TxHash()
	net.Scheduler().After(0, func() { ha.Node().SubmitTx(tx) })
	net.Scheduler().RunFor(30 * time.Second)

	if !hb.Node().Mempool().Have(txHash) {
		t.Error("transaction did not propagate to B")
	}
}

func TestLateJoinerSyncsChain(t *testing.T) {
	// Miner builds 5 blocks; then a fresh node joins and must IBD to
	// height 5.
	net := newTestNet(9)
	miner := addr4(10, 0, 0, 1, 8333)
	hm := net.AddFullNode(nodeCfg(miner, nil))
	hm.Start()
	net.Scheduler().RunFor(5 * time.Second)
	for i := 0; i < 5; i++ {
		net.Scheduler().After(0, func() {
			if _, err := hm.Node().MineBlock(0); err != nil {
				t.Errorf("mine: %v", err)
			}
		})
		net.Scheduler().RunFor(time.Second)
	}
	late := addr4(10, 0, 0, 9, 8333)
	hl := net.AddFullNode(nodeCfg(late, seedsOf(net.Now(), miner)))
	var synced bool
	cfg := hl.Config()
	cfg.Sink = node.SinkFunc(func(ev node.Event) {
		if ev.Type == node.EvSyncDone {
			synced = true
		}
	})
	hl.SetConfig(cfg)
	hl.Start()
	net.Scheduler().RunFor(2 * time.Minute)
	if got := hl.Node().Chain().Height(); got != 5 {
		t.Fatalf("late joiner height = %d, want 5", got)
	}
	if !synced {
		t.Error("late joiner never emitted EvSyncDone")
	}
	if !hl.Node().IsSynced() {
		t.Error("IsSynced = false after IBD")
	}
}

func TestChurnDisconnectsPeers(t *testing.T) {
	net := newTestNet(10)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)
	outA, _, _ := ha.Node().ConnCounts()
	if outA != 1 {
		t.Fatalf("precondition failed: outbound = %d", outA)
	}
	net.Scheduler().After(0, func() { hb.Stop() })
	net.Scheduler().RunFor(5 * time.Second)
	outA, _, _ = ha.Node().ConnCounts()
	if outA != 0 {
		t.Errorf("outbound after peer churn = %d, want 0", outA)
	}
}

func TestHostRestartGetsFreshNode(t *testing.T) {
	net := newTestNet(11)
	a := addr4(10, 0, 0, 1, 8333)
	ha := net.AddFullNode(nodeCfg(a, nil))
	ha.Start()
	n1 := ha.Node()
	net.Scheduler().RunFor(time.Second)
	ha.Stop()
	if ha.Node() != nil {
		t.Fatal("offline host should have no node")
	}
	if !n1.Stopped() {
		t.Error("old node not stopped")
	}
	ha.Start()
	net.Scheduler().RunFor(time.Second)
	if ha.Node() == n1 {
		t.Error("restart must create a fresh node instance")
	}
}

func TestCompactBlockRelay(t *testing.T) {
	// With CompactBlocks enabled and the tx already in B's mempool, a
	// block should propagate via CMPCTBLOCK reconstruction.
	net := newTestNet(12)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	acfg := nodeCfg(a, nil)
	acfg.CompactBlocks = true
	bcfg := nodeCfg(b, seedsOf(net.Now(), a))
	bcfg.CompactBlocks = true
	ha := net.AddFullNode(acfg)
	hb := net.AddFullNode(bcfg)
	ha.Start()
	hb.Start()
	net.Scheduler().RunFor(30 * time.Second)

	tx := &wire.MsgTx{
		Version: 2,
		TxIn:    []wire.TxIn{{Sequence: 1, SignatureScript: []byte{7}}},
		TxOut:   []wire.TxOut{{Value: 5000, PkScript: []byte{0x51}}},
	}
	net.Scheduler().After(0, func() { ha.Node().SubmitTx(tx) })
	net.Scheduler().RunFor(10 * time.Second)
	if !hb.Node().Mempool().Have(tx.TxHash()) {
		t.Fatal("tx not propagated before block")
	}
	net.Scheduler().After(0, func() {
		if _, err := ha.Node().MineBlock(0); err != nil {
			t.Errorf("mine: %v", err)
		}
	})
	net.Scheduler().RunFor(30 * time.Second)
	if got := hb.Node().Chain().Height(); got != 1 {
		t.Errorf("B height = %d, want 1 (compact relay failed)", got)
	}
}

func TestCompactBlockMissingTxFallback(t *testing.T) {
	// The block contains a tx B never saw: B must do the GETBLOCKTXN
	// round trip (§IV-C's coupling of tx relay and block relay).
	net := newTestNet(13)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	acfg := nodeCfg(a, nil)
	acfg.CompactBlocks = true
	bcfg := nodeCfg(b, seedsOf(net.Now(), a))
	bcfg.CompactBlocks = true
	ha := net.AddFullNode(acfg)
	hb := net.AddFullNode(bcfg)
	ha.Start()
	hb.Start()
	net.Scheduler().RunFor(30 * time.Second)

	tx := &wire.MsgTx{
		Version: 2,
		TxIn:    []wire.TxIn{{Sequence: 2, SignatureScript: []byte{8}}},
		TxOut:   []wire.TxOut{{Value: 7000, PkScript: []byte{0x51}}},
	}
	net.Scheduler().After(0, func() {
		// Inject the tx directly into A's mempool without announcing:
		// mine immediately after so B cannot have it.
		ha.Node().Mempool().Add(tx)
		if _, err := ha.Node().MineBlock(0); err != nil {
			t.Errorf("mine: %v", err)
		}
	})
	net.Scheduler().RunFor(30 * time.Second)
	if got := hb.Node().Chain().Height(); got != 1 {
		t.Errorf("B height = %d, want 1 (GETBLOCKTXN path failed)", got)
	}
}

func TestProbeSemantics(t *testing.T) {
	net := newTestNet(14)
	r := addr4(10, 0, 0, 1, 8333)
	resp := addr4(10, 0, 0, 2, 8333)
	silent := addr4(10, 0, 0, 3, 8333)
	ghost := addr4(10, 0, 0, 4, 8333)
	hr := net.AddFullNode(nodeCfg(r, nil))
	hr.Start()
	net.AddStub(resp, true).Start()
	net.AddStub(silent, false).Start()

	results := map[netip.AddrPort]ProbeResult{}
	src := netip.MustParseAddr("10.0.0.100")
	for _, target := range []netip.AddrPort{r, resp, silent, ghost} {
		target := target
		net.Probe(src, target, func(res ProbeResult) { results[target] = res })
	}
	net.Scheduler().RunFor(30 * time.Second)

	if results[r] != ProbeReachable {
		t.Errorf("reachable probe = %v, want ProbeReachable", results[r])
	}
	if results[resp] != ProbeResponsive {
		t.Errorf("responsive probe = %v, want ProbeResponsive", results[resp])
	}
	if results[silent] != ProbeSilent {
		t.Errorf("silent probe = %v, want ProbeSilent", results[silent])
	}
	if results[ghost] != ProbeSilent {
		t.Errorf("ghost probe = %v, want ProbeSilent", results[ghost])
	}
}

func TestMaliciousGetAddrResponder(t *testing.T) {
	// A node whose GETADDR responder floods unreachable-only addresses:
	// the victim's addrman fills with them (the §IV-B attack).
	net := newTestNet(15)
	evil := addr4(10, 0, 0, 1, 8333)
	victim := addr4(10, 0, 0, 2, 8333)
	// Flooded addresses must span many /16 groups: addrman concentrates
	// one (group, source-group) pair into a single 64-slot bucket, so a
	// single-prefix flood self-limits (which a real attacker avoids by
	// advertising addresses across prefixes).
	flood := make([]wire.NetAddress, 500)
	for i := range flood {
		flood[i] = wire.NetAddress{
			Addr:      addr4(172, byte(i%200), byte(i/200), byte(i%250+1), 8333),
			Timestamp: net.Now(),
		}
	}
	ecfg := nodeCfg(evil, nil)
	ecfg.GetAddrResponder = func() []wire.NetAddress { return flood }
	he := net.AddFullNode(ecfg)
	hv := net.AddFullNode(nodeCfg(victim, seedsOf(net.Now(), evil)))
	he.Start()
	hv.Start()
	net.Scheduler().RunFor(60 * time.Second)

	size := hv.Node().AddrMan().Size()
	if size < 400 {
		t.Errorf("victim addrman size = %d, want ~501 (flooded)", size)
	}
}

func TestConnectionMaintenanceFillsSlots(t *testing.T) {
	// One node seeded with 12 live peers should reach its full outbound
	// target of 8.
	net := newTestNet(16)
	var seeds []netip.AddrPort
	for i := 0; i < 12; i++ {
		peer := addr4(10, 1, 0, byte(i+1), 8333)
		net.AddFullNode(nodeCfg(peer, nil)).Start()
		seeds = append(seeds, peer)
	}
	self := addr4(10, 0, 0, 1, 8333)
	h := net.AddFullNode(nodeCfg(self, seedsOf(net.Now(), seeds...)))
	h.Start()
	net.Scheduler().RunFor(2 * time.Minute)
	out, _, _ := h.Node().ConnCounts()
	if out != node.DefaultMaxOutbound {
		t.Errorf("outbound = %d, want %d", out, node.DefaultMaxOutbound)
	}
}
