package simnet

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// schedulerVolume runs a fixed nested-tick workload on a fresh scheduler
// wired to a fresh registry and returns the event-volume instruments:
// one initial After allocates the event struct, each of the four
// reschedules reuses it off the free list.
func schedulerVolume() (alloc, reused, freeLen, executed int64) {
	reg := obs.NewRegistry()
	s := NewScheduler(time.Unix(0, 0))
	s.SetMetrics(reg)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(0, tick)
	s.RunUntil(time.Unix(100, 0))
	return reg.Counter("simnet.sched.events.alloc").Value(),
		reg.Counter("simnet.sched.events.reused").Value(),
		reg.Gauge("simnet.sched.freelist.len").Value(),
		reg.Counter("simnet.sched.executed").Value()
}

// TestSchedulerEventVolumeMetrics pins the allocation/reuse split of the
// scheduler's event free list: events are recycled as soon as they pop,
// so a self-rescheduling tick allocates exactly once.
func TestSchedulerEventVolumeMetrics(t *testing.T) {
	alloc, reused, freeLen, executed := schedulerVolume()
	if alloc != 1 {
		t.Errorf("events.alloc = %d, want 1 (one struct serves the whole chain)", alloc)
	}
	if reused != 4 {
		t.Errorf("events.reused = %d, want 4", reused)
	}
	if executed != 5 {
		t.Errorf("executed = %d, want 5", executed)
	}
	// The last execution returned the struct without a reschedule taking
	// it back out.
	if freeLen != 1 {
		t.Errorf("freelist.len = %d, want 1", freeLen)
	}
}

// TestSchedulerEventVolumeDeterministic: the alloc/reuse split is a pure
// function of the workload — identical across runs, which is what lets
// it live in the deterministic series rather than the live-only view.
func TestSchedulerEventVolumeDeterministic(t *testing.T) {
	a1, r1, f1, e1 := schedulerVolume()
	a2, r2, f2, e2 := schedulerVolume()
	if a1 != a2 || r1 != r2 || f1 != f2 || e1 != e2 {
		t.Errorf("event-volume metrics differ across identical runs: (%d %d %d %d) vs (%d %d %d %d)",
			a1, r1, f1, e1, a2, r2, f2, e2)
	}
}

// TestSchedulerBurstAllocates: concurrent pending events cannot share a
// struct, so a burst of N scheduled before any executes allocates N.
func TestSchedulerBurstAllocates(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(time.Unix(0, 0))
	s.SetMetrics(reg)
	for i := 0; i < 8; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	if got := reg.Counter("simnet.sched.events.alloc").Value(); got != 8 {
		t.Errorf("burst alloc = %d, want 8", got)
	}
	s.RunUntil(time.Unix(100, 0))
	// All eight structs are back on the free list...
	if got := reg.Gauge("simnet.sched.freelist.len").Value(); got != 8 {
		t.Errorf("freelist.len after drain = %d, want 8", got)
	}
	// ...and a follow-up burst reuses them all.
	for i := 0; i < 8; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	if got := reg.Counter("simnet.sched.events.alloc").Value(); got != 8 {
		t.Errorf("second burst allocated fresh structs: alloc = %d, want 8", got)
	}
	if got := reg.Counter("simnet.sched.events.reused").Value(); got != 8 {
		t.Errorf("second burst reused = %d, want 8", got)
	}
}
