package simnet

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/asmap"
	"repro/internal/node"
	"repro/internal/wire"
)

// Additional simnet tests: latency models, fast-fail semantics, host
// lifecycle corners, and larger-network convergence.

func TestASLatency(t *testing.T) {
	al := asmap.NewIPAllocator(64)
	a1, err := al.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := al.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := al.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	f := ASLatency(al, 5*time.Millisecond, 40*time.Millisecond, 100*time.Millisecond)
	if got := f(a1, a2); got != 5*time.Millisecond {
		t.Errorf("intra-AS latency = %v, want 5ms", got)
	}
	inter := f(a1, b1)
	if inter < 40*time.Millisecond || inter > 100*time.Millisecond {
		t.Errorf("inter-AS latency = %v, out of range", inter)
	}
	if f(a1, b1) != f(b1, a1) {
		t.Error("inter-AS latency not symmetric")
	}
	// Unknown addresses fall back to the inter-AS range.
	unknown := netip.MustParseAddr("203.0.113.1")
	got := f(unknown, a1)
	if got < 40*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("fallback latency = %v, out of range", got)
	}
}

func TestFastFailTiming(t *testing.T) {
	// End-to-end: a node seeded with only dead addresses sees a mix of
	// quick refusals and slow timeouts under the default 50% split.
	net := New(Config{
		Seed:        5,
		Latency:     ConstantLatency(10 * time.Millisecond),
		DialTimeout: 5 * time.Second,
	})
	self := addr4(10, 0, 0, 1, 8333)
	var seeds []wire.NetAddress
	for i := 0; i < 40; i++ {
		seeds = append(seeds, wire.NetAddress{
			Addr:      addr4(172, 30, 0, byte(i+1), 8333),
			Timestamp: net.Now(),
		})
	}
	var quick, slow int
	start := net.Now()
	cfg := nodeCfg(self, seeds)
	cfg.Sink = node.SinkFunc(func(ev node.Event) {
		if ev.Type != node.EvDialFail {
			return
		}
		if ev.Time.Sub(start) < time.Minute {
			if errors.Is(ev.Err, ErrRefused) {
				quick++
			} else if errors.Is(ev.Err, ErrTimeout) {
				slow++
			}
		}
	})
	h := net.AddFullNode(cfg)
	h.Start()
	net.Scheduler().RunFor(time.Minute)
	if quick == 0 || slow == 0 {
		t.Errorf("fast/slow failure split = %d/%d; both kinds expected", quick, slow)
	}
}

func TestRemoveHost(t *testing.T) {
	net := newTestNet(30)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)
	net.RemoveHost(b)
	if net.Host(b) != nil {
		t.Fatal("host still registered after removal")
	}
	net.Scheduler().RunFor(10 * time.Second)
	out, _, _ := ha.Node().ConnCounts()
	if out != 0 {
		t.Errorf("connections to a removed host remain: %d", out)
	}
}

func TestTransmitAfterCloseDropped(t *testing.T) {
	// Messages in flight when a link closes must not be delivered.
	net := newTestNet(31)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)
	// Stop B and immediately run: any queued deliveries to B must be
	// dropped without panicking.
	net.Scheduler().After(0, hb.Stop)
	net.Scheduler().RunFor(10 * time.Second)
	if hb.Online() {
		t.Fatal("B still online")
	}
}

func TestSchedulerDrainBounded(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(time.Second, tick) // infinite chain
	}
	s.After(0, tick)
	s.Drain(10)
	if count != 10 {
		t.Errorf("Drain executed %d events, want 10", count)
	}
}

func TestProbeOfflineStub(t *testing.T) {
	net := newTestNet(32)
	stub := net.AddStub(addr4(10, 0, 0, 5, 8333), true)
	stub.Start()
	stub.Stop()
	var result ProbeResult
	net.Probe(netip.MustParseAddr("10.0.0.9"), stub.Addr(), func(r ProbeResult) { result = r })
	net.Scheduler().RunFor(30 * time.Second)
	if result != ProbeSilent {
		t.Errorf("offline stub probe = %v, want silent", result)
	}
}

func TestMediumNetworkConverges(t *testing.T) {
	// 60 nodes bootstrap from one seed and converge on a mined chain.
	if testing.Short() {
		t.Skip("medium network test")
	}
	net := newTestNet(33)
	first := addr4(10, 1, 0, 1, 8333)
	var hosts []*Host
	for i := 0; i < 60; i++ {
		self := addr4(10, 1, byte(i/250), byte(i+1), 8333)
		cfg := nodeCfg(self, nil)
		if self != first {
			cfg.SeedAddrs = seedsOf(net.Now(), first)
		}
		h := net.AddFullNode(cfg)
		h.Start()
		hosts = append(hosts, h)
	}
	net.Scheduler().RunFor(5 * time.Minute)

	// Everyone should have found peers via gossip.
	isolated := 0
	for _, h := range hosts {
		out, in, _ := h.Node().ConnCounts()
		if out+in == 0 {
			isolated++
		}
	}
	if isolated > 0 {
		t.Errorf("%d nodes isolated after bootstrap", isolated)
	}

	// Mine 3 blocks; within 2 minutes everyone converges.
	for b := 0; b < 3; b++ {
		net.Scheduler().After(0, func() {
			if _, err := hosts[0].Node().MineBlock(0); err != nil {
				t.Errorf("mine: %v", err)
			}
		})
		net.Scheduler().RunFor(2 * time.Minute)
	}
	behind := 0
	for _, h := range hosts {
		if h.Node().Chain().Height() != 3 {
			behind++
		}
	}
	if behind > 3 {
		t.Errorf("%d of 60 nodes behind after propagation window", behind)
	}
}

func TestNetworkAccessors(t *testing.T) {
	net := newTestNet(77)
	if net.Rand() == nil {
		t.Error("nil Rand")
	}
	a := addr4(10, 0, 0, 1, 8333)
	h := net.AddFullNode(nodeCfg(a, nil))
	if h.Kind() != KindFull {
		t.Errorf("Kind = %v, want KindFull", h.Kind())
	}
	if got := net.HostList(); len(got) != 1 || got[0] != h {
		t.Error("HostList inconsistent")
	}
	s := net.Scheduler()
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
	s.After(-time.Second, func() {}) // negative delay clamps to zero
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(time.Millisecond)
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
}
