package simnet

import (
	"errors"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Dial failure modes, distinguishable with errors.Is.
var (
	// ErrTimeout reports a dial that never received an answer (the
	// target is offline or silently drops SYNs) — resolved only after
	// the full dial timeout, the cost §IV-B attributes to unreachable
	// addresses in addrman.
	ErrTimeout = errors.New("simnet: dial timeout")
	// ErrRefused reports an active refusal: the target is up but does
	// not accept inbound connections (NATed/unreachable node answering
	// with RST/FIN, the paper's "responsive" class) or is out of inbound
	// capacity.
	ErrRefused = errors.New("simnet: connection refused")
)

// HostKind classifies simulated endpoints.
type HostKind int

// Host kinds.
const (
	// KindFull hosts run the complete node state machine.
	KindFull HostKind = iota + 1
	// KindResponsiveStub models an unreachable node that is running
	// Bitcoin but only refuses inbound connections (answers the
	// scanner's VER probe with a FIN). It generates no traffic.
	KindResponsiveStub
	// KindSilentStub models an address whose firewall drops everything;
	// dials and probes time out.
	KindSilentStub
	// KindBlackholeStub models a stalling peer: it accepts the TCP
	// connection (the dial succeeds and a link forms) but never sends a
	// byte, so the dialer's handshake hangs until its own stall
	// detection gives up. This is the adversity class behind the
	// node-side handshake and keepalive timeouts.
	KindBlackholeStub
)

// DialVerdict is a fault injector's decision about one dial attempt.
type DialVerdict int

// Dial verdicts.
const (
	// DialProceed lets the dial run its normal course.
	DialProceed DialVerdict = iota
	// DialBlock silently discards the SYN: the dial fails with
	// ErrTimeout after the full dial timeout (a partitioned or
	// black-holed route).
	DialBlock
	// DialRefuse answers the dial with an immediate RST: the dial fails
	// with ErrRefused after the handshake RTT.
	DialRefuse
)

// TransmitVerdict is a fault injector's decision about one message
// transmission. The zero value delivers the message normally.
type TransmitVerdict struct {
	// Drop discards the message entirely (the link stays up — the
	// receiver simply never sees it, like a lost TCP segment on a
	// connection that later resets).
	Drop bool
	// ExtraDelay is added on top of the link latency (a latency spike).
	// Because other messages on the link are not delayed, a spike lets
	// later messages overtake this one — delay doubles as reordering.
	ExtraDelay time.Duration
	// Duplicate delivers a second copy DuplicateDelay after the first.
	Duplicate      bool
	DuplicateDelay time.Duration
}

// Injector intercepts the network's dial and transmit paths. The
// internal/faults package provides a deterministic, seeded
// implementation; the interface lives here so simnet does not depend on
// it. Implementations are called from inside scheduler callbacks and
// must be deterministic for a given call sequence.
type Injector interface {
	// FilterDial is consulted for every connection attempt before any
	// target semantics apply.
	FilterDial(from, to netip.AddrPort) DialVerdict
	// FilterTransmit is consulted for every message put on an
	// established link.
	FilterTransmit(from, to netip.AddrPort, msg wire.Message) TransmitVerdict
}

// Config parameterizes a Network.
type Config struct {
	// Epoch is the virtual start time.
	Epoch time.Time
	// Seed drives all randomness in the network and its nodes.
	Seed int64
	// Latency is the one-way link delay model (defaults to a 20–100 ms
	// hash latency).
	Latency LatencyFunc
	// DialTimeout is how long an unanswered dial takes to fail
	// (default 5 s, Bitcoin Core's connect timeout).
	DialTimeout time.Duration
	// HandshakeRTTs is the number of latency units consumed by TCP
	// connection establishment before the protocol handshake
	// (default 2: SYN + SYNACK/ACK).
	HandshakeRTTs int
	// FastFailPct is the percentage of dials to dead addresses that fail
	// quickly with a refusal (RST from a host that departed) instead of
	// waiting out the full timeout (SYN silently dropped by a NAT). The
	// outcome is deterministic per address. Default 50.
	FastFailPct int
	// Metrics, when set, receives the network's instrumentation:
	// scheduler queue depth, dial outcome counters, and the transmit
	// latency histogram (simnet.* names). Nil disables instrumentation
	// at negligible cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Epoch.IsZero() {
		c.Epoch = time.Unix(1585958400, 0).UTC() // 04 Apr 2020, the crawl start
	}
	if c.Latency == nil {
		c.Latency = HashLatency(20*time.Millisecond, 100*time.Millisecond)
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HandshakeRTTs == 0 {
		c.HandshakeRTTs = 2
	}
	if c.FastFailPct == 0 {
		c.FastFailPct = 50
	}
	return c
}

// link is an established connection between two hosts. Both endpoints
// address it by the same ConnID.
type link struct {
	id     node.ConnID
	a, b   *Host
	closed bool
}

// other returns the opposite endpoint.
func (l *link) other(h *Host) *Host {
	if l.a == h {
		return l.b
	}
	return l.a
}

// Network owns the simulated hosts, links, and the event scheduler.
type Network struct {
	cfg      Config
	sched    *Scheduler
	rng      *rand.Rand
	hosts    map[netip.AddrPort]*Host
	links    map[node.ConnID]*link
	next     node.ConnID
	injector Injector

	// Metric handles, resolved once at construction; nil-safe no-ops
	// when Config.Metrics is nil.
	mDialOK      *obs.Counter
	mDialRefused *obs.Counter
	mDialTimeout *obs.Counter
	mTransmit    *obs.Counter
	mTransmitDup *obs.Counter
	hTransmit    *obs.Histogram
}

// New creates an empty simulated network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:   cfg,
		sched: NewScheduler(cfg.Epoch),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		hosts: make(map[netip.AddrPort]*Host),
		links: make(map[node.ConnID]*link),

		mDialOK:      cfg.Metrics.Counter("simnet.dial.ok"),
		mDialRefused: cfg.Metrics.Counter("simnet.dial.refused"),
		mDialTimeout: cfg.Metrics.Counter("simnet.dial.timeout"),
		mTransmit:    cfg.Metrics.Counter("simnet.transmit.count"),
		mTransmitDup: cfg.Metrics.Counter("simnet.transmit.duplicated"),
		hTransmit:    cfg.Metrics.Histogram("simnet.transmit.delay"),
	}
	n.sched.SetMetrics(cfg.Metrics)
	return n
}

// Metrics returns the registry the network reports into (nil when
// observability is off).
func (n *Network) Metrics() *obs.Registry { return n.cfg.Metrics }

// Scheduler exposes the event scheduler for harness-driven workloads
// (block mining ticks, churn traces, measurements).
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.sched.Now() }

// Rand returns the network-wide random source. Only use from inside
// scheduled callbacks.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Host returns the host registered at addr, or nil.
func (n *Network) Host(addr netip.AddrPort) *Host { return n.hosts[addr] }

// HostList returns the registered hosts sorted by address. Returning a
// fresh sorted slice (rather than the internal map, as the removed
// Hosts() accessor did) keeps iteration deterministic and prevents
// callers from aliasing or mutating the network's host table.
func (n *Network) HostList() []*Host {
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].addr, out[j].addr
		if c := ai.Addr().Compare(aj.Addr()); c != 0 {
			return c < 0
		}
		return ai.Port() < aj.Port()
	})
	return out
}

// AddFullNode registers a host at cfg.Self running the full node state
// machine. The host starts offline; call Host.Start.
func (n *Network) AddFullNode(cfg node.Config) *Host {
	h := &Host{
		net:   n,
		addr:  cfg.Self.Addr,
		kind:  KindFull,
		links: make(map[node.ConnID]*link),
		rng:   rand.New(rand.NewSource(n.rng.Int63())),
	}
	h.nodeCfg = cfg
	n.hosts[h.addr] = h
	return h
}

// AddStub registers a lightweight unreachable endpoint.
func (n *Network) AddStub(addr netip.AddrPort, responsive bool) *Host {
	kind := KindSilentStub
	if responsive {
		kind = KindResponsiveStub
	}
	return n.addStub(addr, kind)
}

// AddBlackholeStub registers a stalling endpoint: dials to it succeed
// but it never transmits, so connections to it hang until the dialer's
// stall detection fires. Call Start to bring it online like any stub.
func (n *Network) AddBlackholeStub(addr netip.AddrPort) *Host {
	return n.addStub(addr, KindBlackholeStub)
}

func (n *Network) addStub(addr netip.AddrPort, kind HostKind) *Host {
	h := &Host{
		net:   n,
		addr:  addr,
		kind:  kind,
		links: make(map[node.ConnID]*link),
	}
	n.hosts[addr] = h
	return h
}

// SetInjector installs (or, with nil, removes) the fault injector
// consulted on every dial and transmit. Install it before the scenario
// runs; swapping injectors mid-run is allowed and takes effect for
// subsequent calls.
func (n *Network) SetInjector(i Injector) { n.injector = i }

// RemoveHost unregisters addr entirely (stopping it first).
func (n *Network) RemoveHost(addr netip.AddrPort) {
	h := n.hosts[addr]
	if h == nil {
		return
	}
	h.Stop()
	delete(n.hosts, addr)
}

// latencyBetween returns the one-way delay between two hosts.
func (n *Network) latencyBetween(a, b *Host) time.Duration {
	return n.cfg.Latency(a.addr.Addr(), b.addr.Addr())
}

// dial implements the connection attempt semantics. Called by a Host on
// behalf of its node.
func (n *Network) dial(from *Host, remote netip.AddrPort) {
	fromEpoch := from.epoch
	target := n.hosts[remote]

	fail := func(after time.Duration, err error) {
		if errors.Is(err, ErrRefused) {
			n.mDialRefused.Inc()
		} else {
			n.mDialTimeout.Inc()
		}
		n.sched.After(after, func() {
			if from.epoch != fromEpoch || from.node == nil {
				return
			}
			from.node.OnDialResult(remote, 0, err)
		})
	}

	// Fault injection comes first: a partitioned or black-holed route
	// fails regardless of what the target would have answered.
	if n.injector != nil {
		switch n.injector.FilterDial(from.addr, remote) {
		case DialBlock:
			fail(n.cfg.DialTimeout, ErrTimeout)
			return
		case DialRefuse:
			rtt := n.cfg.Latency(from.addr.Addr(), remote.Addr()) *
				time.Duration(n.cfg.HandshakeRTTs)
			fail(rtt, ErrRefused)
			return
		}
	}

	// Unknown or offline targets: a deterministic per-address split
	// between fast refusals (RST) and full SYN timeouts. The split is
	// intentionally a property of the target alone — whether a dead
	// address answers with an RST (departed host, route still up) or
	// silently swallows the SYN (NAT/firewall) does not depend on who
	// dials it, so every dialer observes the same failure mode.
	if target == nil || !target.online {
		if int(addrHash(remote.Addr())%100) < n.cfg.FastFailPct {
			rtt := n.cfg.Latency(from.addr.Addr(), remote.Addr()) *
				time.Duration(n.cfg.HandshakeRTTs)
			fail(rtt, ErrRefused)
		} else {
			fail(n.cfg.DialTimeout, ErrTimeout)
		}
		return
	}
	rtt := n.latencyBetween(from, target) * time.Duration(n.cfg.HandshakeRTTs)
	switch target.kind {
	case KindSilentStub:
		fail(n.cfg.DialTimeout, ErrTimeout)
		return
	case KindResponsiveStub:
		// Running Bitcoin behind NAT: actively refuses (FIN/RST).
		fail(rtt, ErrRefused)
		return
	}
	// Full node or black-hole target: the accept decision happens at the
	// target after the connection-establishment RTT.
	targetEpoch := target.epoch
	n.sched.After(rtt, func() {
		if from.epoch != fromEpoch || from.node == nil {
			return
		}
		if target.epoch != targetEpoch || !target.online {
			fail(n.cfg.DialTimeout-rtt, ErrTimeout)
			return
		}
		if target.kind == KindBlackholeStub {
			// The black hole accepts the connection and then says
			// nothing, ever: the link exists but no handshake will
			// complete on it.
			n.next++
			id := n.next
			l := &link{id: id, a: from, b: target}
			n.links[id] = l
			from.links[id] = l
			target.links[id] = l
			n.mDialOK.Inc()
			from.node.OnDialResult(remote, id, nil)
			return
		}
		if target.node == nil {
			fail(n.cfg.DialTimeout-rtt, ErrTimeout)
			return
		}
		n.next++
		id := n.next
		l := &link{id: id, a: from, b: target}
		if !target.node.OnInbound(from.addr, id) {
			fail(n.latencyBetween(from, target), ErrRefused)
			return
		}
		n.links[id] = l
		from.links[id] = l
		target.links[id] = l
		n.mDialOK.Inc()
		from.node.OnDialResult(remote, id, nil)
	})
}

// transmit delivers msg over the link after the sender-side delay plus
// link latency, subject to the fault injector's verdict.
func (n *Network) transmit(from *Host, id node.ConnID, msg wire.Message, delay time.Duration) {
	l := n.links[id]
	if l == nil || l.closed {
		return
	}
	to := l.other(from)
	var verdict TransmitVerdict
	if n.injector != nil {
		verdict = n.injector.FilterTransmit(from.addr, to.addr, msg)
		if verdict.Drop {
			return
		}
	}
	toEpoch := to.epoch
	total := delay + n.latencyBetween(from, to) + verdict.ExtraDelay
	n.mTransmit.Inc()
	n.hTransmit.ObserveDuration(total)
	deliver := func() {
		if l.closed || to.epoch != toEpoch || to.node == nil || !to.online {
			return
		}
		to.node.OnMessage(id, msg)
	}
	n.sched.After(total, deliver)
	if verdict.Duplicate {
		n.mTransmitDup.Inc()
		n.sched.After(total+verdict.DuplicateDelay, deliver)
	}
}

// closeLink tears a link down, notifying the remote endpoint after the
// link latency and the local endpoint immediately.
func (n *Network) closeLink(from *Host, id node.ConnID) {
	l := n.links[id]
	if l == nil || l.closed {
		return
	}
	l.closed = true
	delete(n.links, id)
	delete(l.a.links, id)
	delete(l.b.links, id)
	local, remote := l.a, l.b
	if from != nil && l.b == from {
		local, remote = l.b, l.a
	}
	if local.node != nil {
		local.node.OnDisconnect(id)
	}
	remoteEpoch := remote.epoch
	lat := n.latencyBetween(l.a, l.b)
	n.sched.After(lat, func() {
		if remote.epoch != remoteEpoch || remote.node == nil {
			return
		}
		remote.node.OnDisconnect(id)
	})
}

// ProbeResult classifies the scanner's VER probe outcome (Algorithm 2).
type ProbeResult int

// Probe outcomes.
const (
	// ProbeSilent means nothing answered within the timeout.
	ProbeSilent ProbeResult = iota + 1
	// ProbeResponsive means the target answered the probe by closing the
	// connection (FIN) — an unreachable node running Bitcoin.
	ProbeResponsive
	// ProbeReachable means the target accepted the connection — a
	// reachable node.
	ProbeReachable
)

// Probe models the Scapy VER-message scan: it reports how the endpoint at
// addr responds, after the appropriate delay, via done. The from address
// is only used for latency computation.
func (n *Network) Probe(from netip.Addr, addr netip.AddrPort, done func(ProbeResult)) {
	target := n.hosts[addr]
	if target == nil || !target.online {
		n.sched.After(n.cfg.DialTimeout, func() { done(ProbeSilent) })
		return
	}
	lat := n.cfg.Latency(from, addr.Addr()) * time.Duration(n.cfg.HandshakeRTTs)
	switch target.kind {
	case KindSilentStub:
		n.sched.After(n.cfg.DialTimeout, func() { done(ProbeSilent) })
	case KindBlackholeStub:
		// Accepts the connection but never answers the VER probe; the
		// scanner's read deadline expires and classifies it silent.
		n.sched.After(n.cfg.DialTimeout, func() { done(ProbeSilent) })
	case KindResponsiveStub:
		n.sched.After(lat, func() { done(ProbeResponsive) })
	default:
		// Full nodes: reachable ones accept; unreachable full nodes
		// refuse like responsive stubs.
		if target.nodeCfg.Reachable {
			n.sched.After(lat, func() { done(ProbeReachable) })
		} else {
			n.sched.After(lat, func() { done(ProbeResponsive) })
		}
	}
}
