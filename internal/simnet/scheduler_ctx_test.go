package simnet

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunUntilCtxCancellation checks a cancelled context stops the run
// loop mid-simulation and leaves the remaining events queued.
func TestRunUntilCtxCancellation(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0).UTC())
	ctx, cancel := context.WithCancel(context.Background())
	executed := 0
	var tick func()
	tick = func() {
		executed++
		if executed == ctxCheckInterval {
			cancel()
		}
		s.After(time.Millisecond, tick)
	}
	s.After(time.Millisecond, tick)

	err := s.RunUntilCtx(ctx, s.Now().Add(24*time.Hour))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntilCtx = %v, want context.Canceled", err)
	}
	// The loop polls every ctxCheckInterval events, so it must stop at
	// the first check after the cancel, far short of the 86.4M events a
	// full day of millisecond ticks would execute.
	if executed > 2*ctxCheckInterval {
		t.Fatalf("executed %d events after cancellation", executed)
	}
	if s.Pending() == 0 {
		t.Fatal("cancelled run drained the queue")
	}
}

// TestRunUntilCtxBackgroundMatchesRunUntil checks the ctx-aware loop with
// a background context behaves exactly like RunUntil: runs to the
// deadline and advances the clock there.
func TestRunUntilCtxBackgroundMatchesRunUntil(t *testing.T) {
	run := func(ctx context.Context) (int, time.Time) {
		s := NewScheduler(time.Unix(0, 0).UTC())
		n := 0
		for i := 0; i < 10; i++ {
			s.After(time.Duration(i)*time.Second, func() { n++ })
		}
		deadline := s.Now().Add(5 * time.Second)
		if ctx == nil {
			s.RunUntil(deadline)
		} else if err := s.RunUntilCtx(ctx, deadline); err != nil {
			t.Fatal(err)
		}
		return n, s.Now()
	}
	n1, t1 := run(nil)
	n2, t2 := run(context.Background())
	if n1 != n2 || !t1.Equal(t2) {
		t.Fatalf("RunUntil (%d, %v) != RunUntilCtx (%d, %v)", n1, t1, n2, t2)
	}
	if n1 != 6 { // events at 0..5 seconds inclusive
		t.Fatalf("executed %d events, want 6", n1)
	}
}

// TestEventPoolRecycles checks pooled event structs are reused and that
// the pool drops the fn reference on recycle.
func TestEventPoolRecycles(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0).UTC())
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.RunFor(time.Second)
	if len(s.free) != 10 {
		t.Fatalf("free list has %d events, want 10", len(s.free))
	}
	for _, ev := range s.free {
		if ev.fn != nil {
			t.Fatal("recycled event retains its closure")
		}
	}
	// Re-scheduling must come from the pool, not fresh allocations.
	s.After(time.Millisecond, func() {})
	if len(s.free) != 9 {
		t.Fatalf("free list has %d events after reuse, want 9", len(s.free))
	}
	s.RunFor(time.Second)
}

// TestHostListSortedDeterministic checks HostList returns addresses in
// sorted order and fresh slices.
func TestHostListSortedDeterministic(t *testing.T) {
	net := newTestNet(1)
	addrs := [][4]byte{{10, 0, 0, 9}, {10, 0, 0, 1}, {172, 16, 0, 2}, {10, 0, 0, 5}}
	for _, a := range addrs {
		ap := addr4(a[0], a[1], a[2], a[3], 8333)
		net.AddStub(ap, true)
	}
	l1 := net.HostList()
	l2 := net.HostList()
	if len(l1) != len(addrs) {
		t.Fatalf("HostList len = %d, want %d", len(l1), len(addrs))
	}
	for i := 1; i < len(l1); i++ {
		prev, cur := l1[i-1].Addr(), l1[i].Addr()
		if prev.Addr().Compare(cur.Addr()) > 0 {
			t.Fatalf("HostList unsorted: %v before %v", prev, cur)
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("HostList order not stable")
		}
	}
	l1[0] = nil // mutating the returned slice must not alias internal state
	if net.HostList()[0] == nil {
		t.Fatal("HostList aliases internal storage")
	}
}
