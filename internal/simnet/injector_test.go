package simnet

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/wire"
)

// scriptInjector is a minimal Injector for plumbing tests.
type scriptInjector struct {
	dial     func(from, to netip.AddrPort) DialVerdict
	transmit func(from, to netip.AddrPort, msg wire.Message) TransmitVerdict
}

func (s *scriptInjector) FilterDial(from, to netip.AddrPort) DialVerdict {
	if s.dial == nil {
		return DialProceed
	}
	return s.dial(from, to)
}

func (s *scriptInjector) FilterTransmit(from, to netip.AddrPort, msg wire.Message) TransmitVerdict {
	if s.transmit == nil {
		return TransmitVerdict{}
	}
	return s.transmit(from, to, msg)
}

// TestFastFailSplitIsPerAddress pins the intentional semantics of
// Config.FastFailPct: whether a dial to a dead address fails fast
// (refused) or slow (timeout) is a property of the target address alone,
// so every dialer observes the same failure mode for a given address.
func TestFastFailSplitIsPerAddress(t *testing.T) {
	net := newTestNet(11)
	dialerA := addr4(10, 0, 0, 1, 8333)
	dialerB := addr4(10, 0, 0, 2, 8333)

	// A handful of dead targets exercises both sides of the split.
	var deads []netip.AddrPort
	for i := byte(1); i <= 8; i++ {
		deads = append(deads, addr4(172, 16, 0, i, 8333))
	}

	outcome := make(map[netip.AddrPort]map[netip.AddrPort]error) // dialer -> target -> err
	mkSink := func(self netip.AddrPort) node.SinkFunc {
		outcome[self] = make(map[netip.AddrPort]error)
		return func(ev node.Event) {
			if ev.Type == node.EvDialFail {
				outcome[self][ev.Peer] = ev.Err
			}
		}
	}
	for _, self := range []netip.AddrPort{dialerA, dialerB} {
		cfg := nodeCfg(self, seedsOf(net.Now(), deads...))
		cfg.Sink = mkSink(self)
		cfg.MaxFeelers = -1
		net.AddFullNode(cfg).Start()
	}
	net.Scheduler().RunFor(2 * time.Minute)

	var fast, slow int
	for _, target := range deads {
		errA, okA := outcome[dialerA][target]
		errB, okB := outcome[dialerB][target]
		if !okA || !okB {
			continue // not every address is necessarily dialed by both
		}
		if errors.Is(errA, ErrRefused) != errors.Is(errB, ErrRefused) {
			t.Errorf("target %v: dialer A saw %v, dialer B saw %v — split must be per-address",
				target, errA, errB)
		}
		want := int(addrHash(target.Addr())%100) < net.cfg.FastFailPct
		if got := errors.Is(errA, ErrRefused); got != want {
			t.Errorf("target %v: refused=%v, want %v from addrHash split", target, got, want)
		}
		if errors.Is(errA, ErrRefused) {
			fast++
		} else {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Logf("split coverage: fast=%d slow=%d (want both >0 for a thorough pin)", fast, slow)
	}
}

func TestInjectorDialVerdicts(t *testing.T) {
	for _, tc := range []struct {
		name    string
		verdict DialVerdict
		wantErr error
	}{
		{"block", DialBlock, ErrTimeout},
		{"refuse", DialRefuse, ErrRefused},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := newTestNet(21)
			a := addr4(10, 0, 0, 1, 8333)
			b := addr4(10, 0, 0, 2, 8333)
			net.SetInjector(&scriptInjector{
				dial: func(from, to netip.AddrPort) DialVerdict { return tc.verdict },
			})
			net.AddFullNode(nodeCfg(b, nil)).Start()
			ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
			var got error
			cfg := ha.Config()
			cfg.Sink = node.SinkFunc(func(ev node.Event) {
				if ev.Type == node.EvDialFail && ev.Peer == b && got == nil {
					got = ev.Err
				}
			})
			ha.SetConfig(cfg)
			ha.Start()
			net.Scheduler().RunFor(30 * time.Second)
			if !errors.Is(got, tc.wantErr) {
				t.Fatalf("dial error = %v, want %v", got, tc.wantErr)
			}
		})
	}
}

func TestInjectorTransmitDropBlocksHandshake(t *testing.T) {
	net := newTestNet(22)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	dropped := 0
	net.SetInjector(&scriptInjector{
		transmit: func(from, to netip.AddrPort, msg wire.Message) TransmitVerdict {
			dropped++
			return TransmitVerdict{Drop: true}
		},
	})
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)
	if dropped == 0 {
		t.Fatal("injector never consulted on transmit")
	}
	// With every message dropped the VERSION never arrives: the link
	// exists but no handshake completes, so no addrman promotion.
	if ha.Node().AddrMan().InTried(b) {
		t.Error("handshake completed despite all messages dropped")
	}
}

func TestInjectorTransmitDuplicateAndDelay(t *testing.T) {
	net := newTestNet(23)
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	net.SetInjector(&scriptInjector{
		transmit: func(from, to netip.AddrPort, msg wire.Message) TransmitVerdict {
			if _, ok := msg.(*wire.MsgVersion); ok {
				return TransmitVerdict{
					ExtraDelay:     200 * time.Millisecond,
					Duplicate:      true,
					DuplicateDelay: 50 * time.Millisecond,
				}
			}
			return TransmitVerdict{}
		},
	})
	hb := net.AddFullNode(nodeCfg(b, nil))
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), b)))
	hb.Start()
	ha.Start()
	net.Scheduler().RunFor(30 * time.Second)
	// Duplicated VERSION messages are ignored as duplicates by the
	// handler; the handshake must still complete despite delay + dup.
	outA, _, _ := ha.Node().ConnCounts()
	if outA != 1 {
		t.Fatalf("outbound = %d, want 1 (handshake must survive dup/delay)", outA)
	}
}

func TestBlackholeStubStallsDialer(t *testing.T) {
	net := newTestNet(24)
	a := addr4(10, 0, 0, 1, 8333)
	hole := addr4(10, 7, 7, 7, 8333)
	net.AddBlackholeStub(hole).Start()
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), hole)))
	var dialOK bool
	cfg := ha.Config()
	cfg.MaxFeelers = -1
	cfg.HandshakeTimeout = -1 // isolate the stall: no eviction here
	cfg.Sink = node.SinkFunc(func(ev node.Event) {
		if ev.Type == node.EvDialSuccess && ev.Peer == hole {
			dialOK = true
		}
	})
	ha.SetConfig(cfg)
	ha.Start()
	net.Scheduler().RunFor(45 * time.Second)
	if !dialOK {
		t.Fatal("dial to black-hole stub must succeed")
	}
	// The connection exists but the handshake never completes: the peer
	// said nothing, so it must not be promoted to tried.
	if ha.Node().AddrMan().InTried(hole) {
		t.Error("black-hole peer promoted to tried without a handshake")
	}
	out, _, _ := ha.Node().ConnCounts()
	if out != 1 {
		t.Errorf("outbound = %d, want 1 stalled connection", out)
	}
}
