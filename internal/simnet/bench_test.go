package simnet

import (
	"testing"
	"time"
)

// BenchmarkSchedulerThroughput measures raw event dispatch.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(time.Unix(0, 0))
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.RunUntil(time.Unix(0, 0).Add(time.Duration(b.N+1) * time.Millisecond))
	if count < b.N {
		b.Fatalf("executed %d of %d", count, b.N)
	}
}

// BenchmarkSmallNetworkMinute measures a 20-node network advancing one
// virtual minute with block production.
func BenchmarkSmallNetworkMinute(b *testing.B) {
	net := newTestNet(99)
	first := addr4(10, 4, 0, 1, 8333)
	var hosts []*Host
	for i := 0; i < 20; i++ {
		self := addr4(10, 4, 0, byte(i+1), 8333)
		cfg := nodeCfg(self, nil)
		if self != first {
			cfg.SeedAddrs = seedsOf(net.Now(), first)
		}
		h := net.AddFullNode(cfg)
		h.Start()
		hosts = append(hosts, h)
	}
	net.Scheduler().RunFor(2 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Scheduler().After(0, func() {
			_, _ = hosts[i%len(hosts)].Node().MineBlock(0)
		})
		net.Scheduler().RunFor(time.Minute)
	}
}
