// Package simnet is the discrete-event network simulator that stands in
// for the live Bitcoin network: a virtual-time event scheduler, hosts
// running the internal/node state machine, link latencies (optionally
// AS-aware), NAT semantics for unreachable nodes, and dial/timeout
// behaviour. It is the substrate for the paper's propagation-side
// experiments (Figures 1, 6, 7, 10, 11 and the §V ablations).
package simnet

import (
	"container/heap"
	"context"
	"time"

	"repro/internal/obs"
)

// event is a scheduled callback. Times are kept as Unix nanoseconds so
// heap comparisons are plain integer compares.
type event struct {
	at  int64  // UnixNano
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler executes callbacks in virtual-time order. It is
// single-threaded: all simulation state (nodes, hosts, addrman) is only
// touched from inside scheduled callbacks, so no locking is needed
// anywhere in the simulation.
type Scheduler struct {
	now    time.Time
	seq    uint64
	events eventHeap
	count  uint64 // total events executed, for reporting

	// free recycles event structs popped from the heap. The scheduler is
	// single-threaded, so a plain slice beats sync.Pool: no locking, and
	// the structs stay warm in cache. Capped so a burst does not pin
	// memory forever.
	free []*event

	// Metric handles are nil (no-op) until SetMetrics installs a
	// registry, so the hot loop pays one predictable branch when
	// observability is off.
	mDepth    *obs.Gauge
	mDepthMax *obs.Gauge
	mExecuted *obs.Counter
	mEvAlloc  *obs.Counter
	mEvReused *obs.Counter
	mFreeLen  *obs.Gauge
}

// NewScheduler creates a scheduler starting at epoch.
func NewScheduler(epoch time.Time) *Scheduler {
	return &Scheduler{now: epoch}
}

// SetMetrics wires the scheduler's queue-depth gauges, executed-event
// counter, and event-volume/free-list instruments into reg
// (simnet.sched.* names). A nil registry detaches them. The scheduler is
// single-threaded and virtual-time, so every one of these values —
// including the allocation/reuse split — is a pure function of the
// seeded workload and belongs in the deterministic series.
func (s *Scheduler) SetMetrics(reg *obs.Registry) {
	s.mDepth = reg.Gauge("simnet.sched.depth")
	s.mDepthMax = reg.Gauge("simnet.sched.depth.max")
	s.mExecuted = reg.Counter("simnet.sched.executed")
	s.mEvAlloc = reg.Counter("simnet.sched.events.alloc")
	s.mEvReused = reg.Counter("simnet.sched.events.reused")
	s.mFreeLen = reg.Gauge("simnet.sched.freelist.len")
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Scheduler) Executed() uint64 { return s.count }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// maxFree bounds the event free list so a transient queue-depth spike
// does not pin its structs for the rest of the run.
const maxFree = 4096

// getEvent takes a recycled event struct or allocates a fresh one.
func (s *Scheduler) getEvent(at int64, fn func()) *event {
	s.seq++
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn = at, s.seq, fn
		s.mEvReused.Inc()
		s.mFreeLen.Set(int64(n - 1))
		return ev
	}
	s.mEvAlloc.Inc()
	return &event{at: at, seq: s.seq, fn: fn}
}

// putEvent returns a popped event to the free list, dropping the fn
// reference so the closure (and anything it captures) is released even
// while the struct sits in the pool.
func (s *Scheduler) putEvent(ev *event) {
	ev.fn = nil
	if len(s.free) < maxFree {
		s.free = append(s.free, ev)
		s.mFreeLen.Set(int64(len(s.free)))
	}
}

// At schedules fn at the absolute virtual time t. Times in the past run
// at the current time (never rewinding the clock).
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	heap.Push(&s.events, s.getEvent(t.UnixNano(), fn))
	s.mDepth.Set(int64(len(s.events)))
	s.mDepthMax.SetMax(int64(len(s.events)))
}

// After schedules fn d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn at a fixed period, first firing d from now, and
// returns a cancel function. Cancellation is lazy: the pending event
// stays queued but becomes a no-op and stops rechaining — the natural
// pattern for a single-threaded scheduler, and how the sim-time metrics
// sampler hooks its ticks in. d must be positive.
func (s *Scheduler) Every(d time.Duration, fn func()) (cancel func()) {
	if d <= 0 {
		panic("simnet: Every requires a positive period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		s.After(d, tick)
	}
	s.After(d, tick)
	return func() { stopped = true }
}

// ctxCheckInterval is how many executed events pass between cancellation
// checks in RunUntilCtx. Long simulations execute millions of events, so
// checking a channel on every pop would be measurable; every 4096 events
// keeps the response to Ctrl-C well under a millisecond of real time.
const ctxCheckInterval = 4096

// RunUntil executes events in order until the queue is empty or the next
// event is after deadline. The clock ends at deadline (or the last event
// time if it ran dry earlier and advanceToDeadline is honored).
func (s *Scheduler) RunUntil(deadline time.Time) {
	_ = s.RunUntilCtx(context.Background(), deadline)
}

// RunUntilCtx is RunUntil with cooperative cancellation: every
// ctxCheckInterval executed events it polls ctx and stops mid-simulation
// with ctx.Err() if the context is done. On cancellation the virtual
// clock is left at the last executed event, not advanced to deadline.
func (s *Scheduler) RunUntilCtx(ctx context.Context, deadline time.Time) error {
	deadlineNS := deadline.UnixNano()
	cancellable := ctx.Done() != nil
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > deadlineNS {
			break
		}
		heap.Pop(&s.events)
		s.now = time.Unix(0, next.at).UTC()
		s.count++
		s.mDepth.Set(int64(len(s.events)))
		s.mExecuted.Inc()
		fn := next.fn
		s.putEvent(next)
		fn()
		if cancellable && s.count%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	if cancellable {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// RunForCtx advances the simulation by d with cooperative cancellation
// (see RunUntilCtx).
func (s *Scheduler) RunForCtx(ctx context.Context, d time.Duration) error {
	return s.RunUntilCtx(ctx, s.now.Add(d))
}

// Drain executes every queued event regardless of time. Useful only for
// tests on bounded workloads; simulations with self-rescheduling ticks
// must use RunUntil.
func (s *Scheduler) Drain(maxEvents int) {
	for len(s.events) > 0 && maxEvents > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = time.Unix(0, ev.at).UTC()
		s.count++
		s.mDepth.Set(int64(len(s.events)))
		s.mExecuted.Inc()
		maxEvents--
		fn := ev.fn
		s.putEvent(ev)
		fn()
	}
}
