// Package simnet is the discrete-event network simulator that stands in
// for the live Bitcoin network: a virtual-time event scheduler, hosts
// running the internal/node state machine, link latencies (optionally
// AS-aware), NAT semantics for unreachable nodes, and dial/timeout
// behaviour. It is the substrate for the paper's propagation-side
// experiments (Figures 1, 6, 7, 10, 11 and the §V ablations).
package simnet

import (
	"container/heap"
	"time"

	"repro/internal/obs"
)

// event is a scheduled callback. Times are kept as Unix nanoseconds so
// heap comparisons are plain integer compares.
type event struct {
	at  int64  // UnixNano
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler executes callbacks in virtual-time order. It is
// single-threaded: all simulation state (nodes, hosts, addrman) is only
// touched from inside scheduled callbacks, so no locking is needed
// anywhere in the simulation.
type Scheduler struct {
	now    time.Time
	seq    uint64
	events eventHeap
	count  uint64 // total events executed, for reporting

	// Metric handles are nil (no-op) until SetMetrics installs a
	// registry, so the hot loop pays one predictable branch when
	// observability is off.
	mDepth    *obs.Gauge
	mDepthMax *obs.Gauge
	mExecuted *obs.Counter
}

// NewScheduler creates a scheduler starting at epoch.
func NewScheduler(epoch time.Time) *Scheduler {
	return &Scheduler{now: epoch}
}

// SetMetrics wires the scheduler's queue-depth gauges and executed-event
// counter into reg (simnet.sched.* names). A nil registry detaches them.
func (s *Scheduler) SetMetrics(reg *obs.Registry) {
	s.mDepth = reg.Gauge("simnet.sched.depth")
	s.mDepthMax = reg.Gauge("simnet.sched.depth.max")
	s.mExecuted = reg.Counter("simnet.sched.executed")
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Scheduler) Executed() uint64 { return s.count }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn at the absolute virtual time t. Times in the past run
// at the current time (never rewinding the clock).
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t.UnixNano(), seq: s.seq, fn: fn})
	s.mDepth.Set(int64(len(s.events)))
	s.mDepthMax.SetMax(int64(len(s.events)))
}

// After schedules fn d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// RunUntil executes events in order until the queue is empty or the next
// event is after deadline. The clock ends at deadline (or the last event
// time if it ran dry earlier and advanceToDeadline is honored).
func (s *Scheduler) RunUntil(deadline time.Time) {
	deadlineNS := deadline.UnixNano()
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > deadlineNS {
			break
		}
		heap.Pop(&s.events)
		s.now = time.Unix(0, next.at).UTC()
		s.count++
		s.mDepth.Set(int64(len(s.events)))
		s.mExecuted.Inc()
		next.fn()
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Drain executes every queued event regardless of time. Useful only for
// tests on bounded workloads; simulations with self-rescheduling ticks
// must use RunUntil.
func (s *Scheduler) Drain(maxEvents int) {
	for len(s.events) > 0 && maxEvents > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = time.Unix(0, ev.at).UTC()
		s.count++
		s.mDepth.Set(int64(len(s.events)))
		s.mExecuted.Inc()
		maxEvents--
		ev.fn()
	}
}
