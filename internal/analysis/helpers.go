package analysis

import (
	"time"

	"repro/internal/chain"
	"repro/internal/wire"
)

// chainGenesis builds the genesis block used by analysis experiments.
func chainGenesis(tag string) *wire.MsgBlock {
	return chain.GenesisBlock(tag)
}

// DurationsToSeconds converts a duration slice to float seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// RelayDelaysSeconds extracts the last-connection delays in seconds.
func RelayDelaysSeconds(obs []RelayObservation) []float64 {
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = o.LastDelay.Seconds()
	}
	return out
}
