package analysis

import (
	"context"
	"testing"
	"time"
)

func TestRunChaosConvergesAndRecovers(t *testing.T) {
	res, err := RunChaos(context.Background(), ChaosConfig{
		Seed:     9,
		NumNodes: 8,
		Duration: 30 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("chaos scenario did not converge: %d/%d at tip, spread %d",
			res.SyncedNodes, res.TotalNodes, res.HeightSpread)
	}
	if res.RecoveryTime <= 0 {
		t.Error("recovery time never recorded despite convergence window")
	}
	if res.MinerHeight < 20 {
		t.Errorf("miner height = %d, want ≥ 20", res.MinerHeight)
	}
	if len(res.FaultCounters) == 0 {
		t.Error("no fault counters recorded")
	}
	// The crash wave must show up as non-persistent rows in the presence
	// matrix.
	if res.PersistentShare != 0 {
		t.Errorf("persistent share = %.2f, want 0 (every tracked node crashed)",
			res.PersistentShare)
	}
}
