package analysis

import (
	"context"
	"fmt"
	"time"

	"repro/internal/node"
	"repro/internal/par"
	"repro/internal/stats"
)

// This file implements the §V refinement ablation: the same network is
// run under the stock Bitcoin Core configuration and under each proposed
// refinement (tried-only ADDR responses, the 17-day eviction horizon,
// priority block relay), measuring connection success, relay delay, and
// observed synchronization.

// AblationVariant names one configuration under test.
type AblationVariant struct {
	// Name labels the variant.
	Name string
	// RelayPolicy, TriedOnlyGetAddr, and AddrHorizon are the §V toggles
	// in their legacy spelling. StockVariants keeps using them so the
	// canonical ladder's output stays byte-identical across the policy
	// API introduction.
	RelayPolicy      node.RelayPolicy
	TriedOnlyGetAddr bool
	AddrHorizon      time.Duration
	// Policies optionally expresses the variant as a policy set instead
	// of (or on top of) the legacy toggles; node.Config folds it over
	// them, policies winning.
	Policies node.PolicySet
}

// StockVariants returns the canonical ablation ladder: stock Bitcoin
// Core, each refinement alone, and all three together.
func StockVariants() []AblationVariant {
	const seventeenDays = 17 * 24 * time.Hour
	return []AblationVariant{
		{Name: "stock", RelayPolicy: node.RoundRobin},
		{Name: "tried-only-addr", RelayPolicy: node.RoundRobin, TriedOnlyGetAddr: true},
		{Name: "17d-horizon", RelayPolicy: node.RoundRobin, AddrHorizon: seventeenDays},
		{Name: "priority-relay", RelayPolicy: node.PriorityOutbound},
		{Name: "all-refinements", RelayPolicy: node.PriorityOutbound,
			TriedOnlyGetAddr: true, AddrHorizon: seventeenDays},
		{Name: "ideal-broadcast", RelayPolicy: node.Broadcast},
	}
}

// AblationRow is one variant's measured outcomes.
type AblationRow struct {
	// Variant identifies the configuration.
	Variant AblationVariant
	// DialSuccessRate is network-wide outbound successes/attempts.
	DialSuccessRate float64
	// ColdStartSuccessRate is a fresh node's dial success during its
	// first five minutes under this variant's gossip (the Figure 7
	// setting) — where the §V addressing refinements bite.
	ColdStartSuccessRate float64
	// MeanObservedSync is the Figure 1 metric under this variant.
	MeanObservedSync float64
	// MeanBlockRelay and MaxBlockRelay summarize last-connection block
	// relay delays.
	MeanBlockRelay, MaxBlockRelay time.Duration
	// MeanOutdegree is the average outbound connection count.
	MeanOutdegree float64
}

// AblationResult is the §V comparison table.
type AblationResult struct {
	// Rows, in StockVariants order.
	Rows []AblationRow
}

// RunAblation measures every variant on an identical workload, plus a
// cold-start connection experiment per variant for the addressing
// refinements. Variants run concurrently (par.Replicate); each writes
// its row into a variant-indexed slot, so Rows keeps StockVariants
// order and every variant still sees the identical base seed.
func RunAblation(ctx context.Context, base PropagationConfig, variants []AblationVariant) (*AblationResult, error) {
	if len(variants) == 0 {
		variants = StockVariants()
	}
	res := &AblationResult{Rows: make([]AblationRow, len(variants))}
	err := par.Replicate(ctx, len(variants), func(ctx context.Context, i int) error {
		v := variants[i]
		cfg := base
		cfg.RelayPolicy = v.RelayPolicy
		cfg.TriedOnlyGetAddr = v.TriedOnlyGetAddr
		cfg.AddrHorizon = v.AddrHorizon
		cfg.Policies = v.Policies
		out, err := RunPropagation(ctx, cfg)
		if err != nil {
			return fmt.Errorf("analysis: ablation %q: %w", v.Name, err)
		}
		cold, err := RunConnExperiment(ctx, ConnExperimentConfig{
			Seed:              base.Seed,
			LivePeers:         base.NumReachable / 2,
			Duration:          5 * time.Minute,
			PeerChurnPer10Min: 2,
			ConnDropEvery:     40 * time.Second,
			TriedOnlyGetAddr:  v.TriedOnlyGetAddr,
			AddrHorizon:       v.AddrHorizon,
			Policies:          v.Policies,
			Runs:              3,
		})
		if err != nil {
			return fmt.Errorf("analysis: ablation cold-start %q: %w", v.Name, err)
		}
		row := AblationRow{
			Variant:              v,
			MeanOutdegree:        out.MeanOutdegree,
			ColdStartSuccessRate: cold.SuccessRate,
		}
		if out.DialAttempts > 0 {
			row.DialSuccessRate = float64(out.DialSuccesses) / float64(out.DialAttempts)
		}
		if len(out.ObservedSyncSamples) > 0 {
			row.MeanObservedSync = stats.Mean(out.ObservedSyncSamples)
		}
		if len(out.BlockRelays) > 0 {
			var sum, max time.Duration
			for _, o := range out.BlockRelays {
				sum += o.LastDelay
				if o.LastDelay > max {
					max = o.LastDelay
				}
			}
			row.MeanBlockRelay = sum / time.Duration(len(out.BlockRelays))
			row.MaxBlockRelay = max
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RelayDelayStats summarizes a relay-delay distribution (Figures 10/11).
type RelayDelayStats struct {
	// Count is the number of (node, object) observations.
	Count int
	// Mean, Max, P50, P90, P99, P997 are in seconds. P997 approximates
	// the maximum the paper would observe in its ~288-observation
	// two-day single-node sample (1/288 ≈ the 99.7th percentile); the
	// raw Max over our much larger sample sits deeper in the tail.
	Mean, Max, P50, P90, P99, P997 float64
	// Series is the raw per-observation delay series in seconds (for
	// figure output).
	Series []float64
}

// SummarizeRelays folds observations into RelayDelayStats.
func SummarizeRelays(obs []RelayObservation) RelayDelayStats {
	out := RelayDelayStats{Count: len(obs)}
	if len(obs) == 0 {
		return out
	}
	out.Series = RelayDelaysSeconds(obs)
	s := stats.MustSummarize(out.Series)
	qs := stats.Quantiles(out.Series, []float64{0.5, 0.9, 0.99, 0.9965})
	out.Mean, out.Max = s.Mean, s.Max
	out.P50, out.P90, out.P99, out.P997 = qs[0], qs[1], qs[2], qs[3]
	return out
}
