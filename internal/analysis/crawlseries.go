package analysis

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/addridx"
	"repro/internal/asmap"
	"repro/internal/crawler"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// CrawlSeriesConfig parameterizes the longitudinal crawl study (§III,
// Figures 3–5 and 8, Table I).
type CrawlSeriesConfig struct {
	// Params is the universe calibration (scale it down for tests).
	Params netgen.Params
	// Experiments caps the number of crawl experiments (0 = one per
	// CrawlInterval over the whole horizon, the paper's 60).
	Experiments int
	// ScannerStartExperiment delays the responsive scan, reproducing the
	// two-week gap the paper reports for Figure 5 (expressed in
	// experiments; 14 at daily cadence).
	ScannerStartExperiment int
	// ScanSampleFraction probes only this share of collected unreachable
	// addresses per experiment and scales up the count (1.0 probes all;
	// lower values keep large runs fast with negligible estimator
	// variance at these population sizes).
	ScanSampleFraction float64
	// Workers is the per-experiment crawl/scan fan-out width (0 =
	// GOMAXPROCS). The result is byte-identical at any width: per-target
	// randomness is keyed by StationID and results merge in target
	// order.
	Workers int
	// Metrics, when set, receives the crawl.* counters cumulatively
	// across all experiments — the live /metrics view for btccrawl
	// -series. Nil keeps the study allocation-free of observability.
	Metrics *obs.Registry
	// OnExperiment, when set, is called with each experiment's stats as
	// soon as that crawl (and its scan) completes, in experiment order
	// and never concurrently — the incremental-output hook btccrawl uses
	// to land one CSV row per experiment, so a cancelled series still
	// leaves every finished experiment on disk.
	OnExperiment func(ExperimentStats)
}

// ExperimentStats is one crawl experiment's outcome (one x-axis point of
// Figures 3–5).
type ExperimentStats struct {
	// Index is the experiment number; Time its virtual date.
	Index int
	Time  time.Time
	// Figure 3(a–b): seed database sizes and blacklist exclusions.
	Bitnodes, DNS, Common                         int
	BitnodesExcluded, DNSExcluded, CommonExcluded int
	// Figure 3(c–d): dial outcomes.
	Dialed, Connected, ConnectedDNSOnly int
	// Figure 4: unreachable address collection.
	UniqueUnreachable, CumulativeUnreachable int
	// Figure 5: responsive scan (zero before the scanner starts).
	Responsive, CumulativeResponsive int
	// ADDR composition for this experiment.
	ReachableShare, UnreachableShare float64
}

// MaliciousRecord aggregates one flagged flooder across the whole series
// (Figure 8).
type MaliciousRecord struct {
	// Addr is the flooder.
	Addr netip.AddrPort
	// ASN hosts it.
	ASN uint32
	// UnreachableSent is the total unreachable addresses it advertised.
	UnreachableSent int
	// Experiments is how many crawls flagged it.
	Experiments int
}

// ASClassCensus is Table I's view for one node class.
type ASClassCensus struct {
	// Class label ("reachable", "unreachable", "responsive").
	Class string
	// Total is the number of nodes counted.
	Total int
	// NumASes is the number of distinct ASes observed.
	NumASes int
	// Top holds the largest ASes.
	Top []asmap.ASShare
	// CoverageFor50Pct is how many ASes host half the nodes.
	CoverageFor50Pct int
}

// CrawlSeriesResult aggregates the longitudinal study.
type CrawlSeriesResult struct {
	// Experiments holds the per-crawl series.
	Experiments []ExperimentStats
	// TotalUniqueUnreachable is the cumulative Figure 4 endpoint
	// (paper: 694,696).
	TotalUniqueUnreachable int
	// TotalResponsive is the cumulative Figure 5 endpoint
	// (paper: 163,496).
	TotalResponsive int
	// UniqueConnected counts distinct reachable nodes contacted
	// (paper: 28,781).
	UniqueConnected int
	// MeanConnected is the per-experiment average (paper: 8,270).
	MeanConnected float64
	// MeanAddrReachableShare is the ADDR composition (paper: 14.9%).
	MeanAddrReachableShare float64
	// DefaultPortShareUnreachable is the port-8333 share among collected
	// unreachable addresses (paper: 88.54%).
	DefaultPortShareUnreachable float64
	// Malicious lists flagged flooders sorted by flood volume
	// (Figure 8; paper: 73 nodes, 8 above 100K, max above 400K).
	Malicious []MaliciousRecord
	// Censuses holds Table I (reachable / unreachable / responsive).
	Censuses []ASClassCensus
}

// RunCrawlSeries generates the universe and performs the full
// longitudinal crawl + scan study.
func RunCrawlSeries(ctx context.Context, cfg CrawlSeriesConfig) (*CrawlSeriesResult, error) {
	u, err := netgen.Generate(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("analysis: generate universe: %w", err)
	}
	return RunCrawlSeriesOn(ctx, u, cfg)
}

// RunCrawlSeriesOn runs the study over an existing universe. The
// per-experiment loop checks ctx between crawls and stops with ctx.Err()
// when cancelled.
//
// Every station address is interned in u.Index, so the cross-experiment
// cumulative sets (Figure 4/5 unions, the unique-connected set, the
// census dedup sets) are dense addridx bitsets rather than address-keyed
// maps; the only map that survives the loop is the malicious-flooder
// aggregation, whose population is tiny.
func RunCrawlSeriesOn(ctx context.Context, u *netgen.Universe, cfg CrawlSeriesConfig) (*CrawlSeriesResult, error) {
	p := u.Params
	total := int(p.Horizon / p.CrawlInterval)
	if cfg.Experiments > 0 && cfg.Experiments < total {
		total = cfg.Experiments
	}
	if total < 1 {
		return nil, fmt.Errorf("analysis: horizon %v shorter than crawl interval %v",
			p.Horizon, p.CrawlInterval)
	}
	if cfg.ScanSampleFraction <= 0 || cfg.ScanSampleFraction > 1 {
		cfg.ScanSampleFraction = 1
	}

	n := u.Index.Len()
	res := &CrawlSeriesResult{}
	cumulativeUnreachable := addridx.NewSet(n)
	cumulativeResponsive := addridx.NewSet(n)
	uniqueConnected := addridx.NewSet(n)
	malicious := make(map[netip.AddrPort]*MaliciousRecord)
	var reachShareSum float64
	var connectedSum int
	defaultPort, totalPorts := 0, 0

	reachableCensus := asmap.NewCensus()
	responsiveCensus := asmap.NewCensus()
	unreachableCensus := asmap.NewCensus()
	countedReachable := addridx.NewSet(n)
	countedResponsive := addridx.NewSet(n)
	onBitnodes := addridx.NewSet(n)

	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		at := p.Epoch.Add(time.Duration(i) * p.CrawlInterval)
		view := crawler.NewUniverseView(u, at)
		seedView := u.SeedViewAt(at)
		targets := crawler.TargetsOf(seedView)
		known := crawler.ReachableReference(seedView)

		c := crawler.New(crawler.Config{
			Metrics: cfg.Metrics,
			Workers: cfg.Workers,
			Index:   u.Index,
		}, view)
		snap, err := c.Crawl(ctx, at, targets, known)
		if err != nil {
			return nil, fmt.Errorf("analysis: crawl %d: %w", i, err)
		}

		st := ExperimentStats{
			Index:            i,
			Time:             at,
			Bitnodes:         len(seedView.Bitnodes),
			DNS:              len(seedView.DNS),
			Common:           seedView.Common,
			BitnodesExcluded: seedView.BitnodesExcluded,
			DNSExcluded:      seedView.DNSExcluded,
			CommonExcluded:   seedView.CommonExcluded,
			Dialed:           snap.Dialed,
			Connected:        len(snap.Connected),
		}
		connectedSum += len(snap.Connected)

		// Figure 3(d): connected nodes absent from the Bitnodes list.
		onBitnodes.Clear()
		for _, s := range seedView.Bitnodes {
			onBitnodes.Add(s.ID)
		}
		for k, a := range snap.Connected {
			id := snap.ConnectedIDs[k]
			uniqueConnected.Add(id)
			if !onBitnodes.Contains(id) {
				st.ConnectedDNSOnly++
			}
			if countedReachable.Add(id) {
				if asn, ok := u.Alloc.ASNOf(a.Addr()); ok {
					reachableCensus.Add(asn)
				}
			}
		}

		// Figure 4 bookkeeping.
		st.UniqueUnreachable = len(snap.Unreachable)
		for k, a := range snap.Unreachable {
			if !cumulativeUnreachable.Add(snap.UnreachableIDs[k]) {
				continue
			}
			if asn, ok := u.Alloc.ASNOf(a.Addr()); ok {
				unreachableCensus.Add(asn)
			}
			if a.Port() == 8333 {
				defaultPort++
			}
			totalPorts++
		}
		st.CumulativeUnreachable = cumulativeUnreachable.Count()

		// ADDR composition.
		r, unr := snap.AddrComposition()
		st.ReachableShare, st.UnreachableShare = r, unr
		reachShareSum += r

		// Malicious flooders.
		for _, rep := range snap.SuspectedMalicious(10) {
			rec := malicious[rep.Addr]
			if rec == nil {
				asn, _ := u.Alloc.ASNOf(rep.Addr.Addr())
				rec = &MaliciousRecord{Addr: rep.Addr, ASN: asn}
				malicious[rep.Addr] = rec
			}
			rec.UnreachableSent += rep.UnreachableSent
			rec.Experiments++
		}

		// Figure 5: responsive scan, delayed by the configured start.
		if i >= cfg.ScannerStartExperiment {
			probeTargets := make([]netip.AddrPort, 0, len(snap.Unreachable))
			stride := int(1 / cfg.ScanSampleFraction)
			if stride < 1 {
				stride = 1
			}
			// Membership in the probe sample is a deterministic function
			// of the address, so the same subset is probed in every
			// experiment and the scaled cumulative count is an unbiased
			// estimator of the full union.
			for _, a := range snap.Unreachable {
				if addrSampleBucket(a, stride) == 0 {
					probeTargets = append(probeTargets, a)
				}
			}
			scan, err := crawler.ScanWith(ctx, crawler.ScanConfig{
				Workers: cfg.Workers,
				Metrics: cfg.Metrics,
			}, at, view, probeTargets)
			if err != nil {
				return nil, fmt.Errorf("analysis: scan %d: %w", i, err)
			}
			st.Responsive = len(scan.Responsive) * stride
			for _, a := range scan.Responsive {
				id, ok := u.Index.Lookup(a)
				if !ok {
					continue
				}
				if cumulativeResponsive.Add(id) && countedResponsive.Add(id) {
					if asn, ok := u.Alloc.ASNOf(a.Addr()); ok {
						responsiveCensus.Add(asn)
					}
				}
			}
			st.CumulativeResponsive = cumulativeResponsive.Count() * stride
		}

		res.Experiments = append(res.Experiments, st)
		if cfg.OnExperiment != nil {
			cfg.OnExperiment(st)
		}
	}

	res.TotalUniqueUnreachable = cumulativeUnreachable.Count()
	res.TotalResponsive = cumulativeResponsive.Count()
	if cfg.ScanSampleFraction < 1 {
		res.TotalResponsive = int(float64(res.TotalResponsive) / cfg.ScanSampleFraction)
	}
	res.UniqueConnected = uniqueConnected.Count()
	res.MeanConnected = float64(connectedSum) / float64(total)
	res.MeanAddrReachableShare = reachShareSum / float64(total)
	if totalPorts > 0 {
		res.DefaultPortShareUnreachable = float64(defaultPort) / float64(totalPorts)
	}

	for _, rec := range malicious {
		res.Malicious = append(res.Malicious, *rec)
	}
	// Map iteration feeds this sort, so the ordering needs a total
	// tie-break to stay deterministic when flood volumes collide.
	sort.Slice(res.Malicious, func(i, j int) bool {
		a, b := res.Malicious[i], res.Malicious[j]
		if a.UnreachableSent != b.UnreachableSent {
			return a.UnreachableSent > b.UnreachableSent
		}
		return addridx.Compare(a.Addr, b.Addr) < 0
	})

	res.Censuses = []ASClassCensus{
		censusOf("reachable", reachableCensus),
		censusOf("unreachable", unreachableCensus),
		censusOf("responsive", responsiveCensus),
	}
	return res, nil
}

// addrSampleBucket deterministically buckets an address into [0, stride).
func addrSampleBucket(a netip.AddrPort, stride int) int {
	if stride <= 1 {
		return 0
	}
	b := a.Addr().As4()
	h := (uint32(b[0])*2654435761 + uint32(b[1])*40503 +
		uint32(b[2])*97 + uint32(b[3])) ^ uint32(a.Port())
	return int(h % uint32(stride))
}

// censusOf folds an asmap census into the Table I row format.
func censusOf(class string, c *asmap.Census) ASClassCensus {
	return ASClassCensus{
		Class:            class,
		Total:            c.Total(),
		NumASes:          c.NumASes(),
		Top:              c.TopN(20),
		CoverageFor50Pct: c.CoverageCount(0.5),
	}
}
