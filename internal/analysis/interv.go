package analysis

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/estimate"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/wire"
)

// This file implements the intervention grid: every §V refinement (and
// the related-work remedies) expressed as a node.PolicySet, swept
// against churn regime and unreachable-population mix on a common
// random-number environment. Each (churn, mix) environment reuses one
// seed across all policy sets, so a policy's recovery is a paired
// contrast against stock under the identical workload — the same
// common-random-numbers discipline the Figure 1 regime comparison uses.

// IntervChurn labels one churn regime of the grid.
type IntervChurn struct {
	// Name labels the regime ("2019", "2020").
	Name string
	// DeparturesPer10Min is the synchronized-node departure rate driven
	// through the propagation run (already scaled to the network size).
	DeparturesPer10Min float64
}

// InterventionGridConfig parameterizes the sweep.
type InterventionGridConfig struct {
	// Base is the propagation environment every cell derives from. Its
	// Seed anchors the per-environment seeds; its ChurnDeparturesPer10Min,
	// UnreachableShare, Policies, and Metrics fields are overridden per
	// cell (Metrics must stay nil — cells run concurrently).
	Base PropagationConfig
	// PolicySets is the intervention axis, swept in slice order.
	// Empty selects DefaultPolicySets.
	PolicySets []node.PolicySet
	// Churns is the churn axis. Empty selects the paper's 2019/2020
	// regimes scaled to Base.NumReachable.
	Churns []IntervChurn
	// UnreachableShares is the population-mix axis: each entry adds
	// round(share·NumReachable) unreachable nodes. Empty selects
	// {0, 0.3}.
	UnreachableShares []float64
	// ColdStartRuns is the number of cold-start connection runs per cell
	// (0 disables the cold-start column; the cold-start network halves
	// Base.NumReachable and needs at least 16 reachable nodes).
	ColdStartRuns int
	// Workers is the fan-out width across cells (0 = GOMAXPROCS).
	// Results are byte-identical at any width: cells land in private
	// index slots merged in grid order.
	Workers int
}

// DefaultPolicySets is the canonical intervention axis: stock, each §V
// refinement alone, the two related-work remedies, and the combined §V
// set.
func DefaultPolicySets() []node.PolicySet {
	return []node.PolicySet{
		node.MustPolicySet(node.StockPolicyName),
		node.MustPolicySet("tried-only-addr"),
		node.MustPolicySet("horizon-17d"),
		node.MustPolicySet("priority-relay"),
		node.MustPolicySet("unreachable-tx-relay"),
		node.MustPolicySet("churn-resilient-peering"),
		node.MustPolicySet("tried-only-addr+horizon-17d+priority-relay"),
	}
}

// IntervCell is one grid cell's outcome.
type IntervCell struct {
	// Name is the compact cell label ("<set>.<churn>.u<pct>").
	Name string
	// PolicySet is the canonical policy-set encoding.
	PolicySet string
	// Churn names the churn regime.
	Churn string
	// UnreachableShare is the population-mix axis value.
	UnreachableShare float64
	// Seed is the cell's environment seed (shared across policy sets
	// within the same churn × mix environment).
	Seed int64

	// MeanSync and MeanObservedSync are the Figure 1 metrics: the true
	// at-tip fraction and the Bitnodes-style observed one.
	MeanSync, MeanObservedSync float64
	// DialSuccessRate is network-wide outbound successes/attempts.
	DialSuccessRate float64
	// ColdStartSuccessRate is the fresh-node dial success rate under
	// this cell's policies (0 when ColdStartRuns is 0).
	ColdStartSuccessRate float64
	// MeanBlockRelay and MaxBlockRelay summarize last-connection block
	// relay delays.
	MeanBlockRelay, MaxBlockRelay time.Duration
	// MeanOutdegree is the average outbound connection count.
	MeanOutdegree float64
	// NumUnreachable is the number of unreachable nodes the cell ran.
	NumUnreachable int

	// PopTruth and PopEst are the gossip-visible non-reachable address
	// population (dead pool + unreachable nodes) and its Grundmann
	// announcement-recurrence estimate from the observer's ADDR intake;
	// PopRelErr is the relative error.
	PopTruth, PopEst, PopRelErr float64
	// DegTruthMean, DegEstMean, and DegRelErr score the GETADDR
	// return-sampling degree estimator against the final addrman sizes
	// of the observer's sources; Sources counts scored sources.
	DegTruthMean, DegEstMean, DegRelErr float64
	Sources                             int
}

// InterventionGridResult aggregates the sweep.
type InterventionGridResult struct {
	// Cells holds the grid in deterministic order: policy-set major,
	// then churn, then unreachable share.
	Cells []IntervCell
	// Series carries each cell's synchronization trajectories under
	// cell-qualified names (interv.sync.<cell>, interv.sync.observed.<cell>).
	Series *obs.SeriesSet
}

// intervCellSpec is one grid point.
type intervCellSpec struct {
	set   node.PolicySet
	churn IntervChurn
	share float64
	seed  int64
}

// intervGrid expands the axes into cell specs in deterministic order and
// assigns the per-environment seeds.
func intervGrid(cfg InterventionGridConfig) []intervCellSpec {
	var out []intervCellSpec
	for _, set := range cfg.PolicySets {
		for ci, churn := range cfg.Churns {
			for si, share := range cfg.UnreachableShares {
				envIdx := ci*len(cfg.UnreachableShares) + si
				out = append(out, intervCellSpec{
					set:   set,
					churn: churn,
					share: share,
					// One seed per (churn, mix) environment, shared by
					// every policy set: paired contrasts.
					seed: cfg.Base.Seed + int64(envIdx)*7919,
				})
			}
		}
	}
	return out
}

// intervCellName renders the compact cell label.
func intervCellName(spec intervCellSpec) string {
	return fmt.Sprintf("%s.%s.u%.0f", spec.set.String(), spec.churn.Name, spec.share*100)
}

// RunInterventionGrid executes the sweep. Cells fan out via par.ForEach
// into index slots and merge in grid order, so the result is
// byte-identical at any worker count.
func RunInterventionGrid(ctx context.Context, cfg InterventionGridConfig) (*InterventionGridResult, error) {
	if len(cfg.PolicySets) == 0 {
		cfg.PolicySets = DefaultPolicySets()
	}
	if len(cfg.Churns) == 0 {
		cfg.Churns = []IntervChurn{
			{Name: "2019", DeparturesPer10Min: 0.9 * float64(cfg.Base.NumReachable) / 80},
			{Name: "2020", DeparturesPer10Min: 3.0 * float64(cfg.Base.NumReachable) / 80},
		}
	}
	if len(cfg.UnreachableShares) == 0 {
		cfg.UnreachableShares = []float64{0, 0.3}
	}
	if cfg.Base.Metrics != nil {
		return nil, fmt.Errorf("analysis: intervention grid cells must own their registries (Base.Metrics set)")
	}
	grid := intervGrid(cfg)
	cells := make([]IntervCell, len(grid))
	sets := make([]*obs.SeriesSet, len(grid))
	err := par.ForEach(ctx, par.Workers(cfg.Workers), len(grid), func(ctx context.Context, i int) error {
		cell, set, err := runIntervCell(ctx, cfg, grid[i])
		if err != nil {
			return fmt.Errorf("analysis: interv cell %s: %w", intervCellName(grid[i]), err)
		}
		cells[i], sets[i] = cell, set
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &InterventionGridResult{Cells: cells, Series: obs.MergeSeriesSets(sets...)}, nil
}

// runIntervCell runs one grid cell: the propagation experiment with the
// Grundmann estimators riding the observer's ADDR intake, plus the
// optional cold-start connection experiment.
func runIntervCell(ctx context.Context, cfg InterventionGridConfig, spec intervCellSpec) (IntervCell, *obs.SeriesSet, error) {
	cell := IntervCell{
		Name:             intervCellName(spec),
		PolicySet:        spec.set.String(),
		Churn:            spec.churn.Name,
		UnreachableShare: spec.share,
		Seed:             spec.seed,
	}
	// The estimators observe through the propagation run's observer
	// node: every multi-address ADDR payload it ingests is a GETADDR
	// response chunk from one of its peers.
	col := estimate.NewCollector(estimate.Config{
		// The reachable plan uses 10.0.0.0/8; the dead pool (172/8) and
		// the unreachable nodes (11/8) are the hidden population.
		IsReachable: func(a netip.AddrPort) bool { return a.Addr().As4()[0] == 10 },
	})
	pcfg := cfg.Base
	pcfg.Seed = spec.seed
	pcfg.ChurnDeparturesPer10Min = spec.churn.DeparturesPer10Min
	pcfg.UnreachableShare = spec.share
	pcfg.Policies = spec.set
	pcfg.ObserverAddrSink = func(from netip.AddrPort, addrs []wire.NetAddress) {
		col.Exchange(from, addrs)
	}
	out, err := RunPropagation(ctx, pcfg)
	if err != nil {
		return cell, nil, err
	}

	cell.NumUnreachable = out.NumUnreachable
	cell.MeanOutdegree = out.MeanOutdegree
	if len(out.SyncSamples) > 0 {
		cell.MeanSync = stats.Mean(out.SyncSamples)
	}
	if len(out.ObservedSyncSamples) > 0 {
		cell.MeanObservedSync = stats.Mean(out.ObservedSyncSamples)
	}
	if out.DialAttempts > 0 {
		cell.DialSuccessRate = float64(out.DialSuccesses) / float64(out.DialAttempts)
	}
	if len(out.BlockRelays) > 0 {
		var sum, max time.Duration
		for _, o := range out.BlockRelays {
			sum += o.LastDelay
			if o.LastDelay > max {
				max = o.LastDelay
			}
		}
		cell.MeanBlockRelay = sum / time.Duration(len(out.BlockRelays))
		cell.MaxBlockRelay = max
	}

	// Population scoring: the gossip-visible non-reachable population is
	// the dead address pool plus the unreachable nodes (which enter
	// gossip by self-advertisement).
	deadPool := pcfg.DeadAddrPool
	if deadPool == 0 {
		deadPool = int(float64(pcfg.NumReachable) / pcfg.withDefaults().AddrReachableShare)
	}
	cell.PopTruth = float64(deadPool + out.NumUnreachable)
	cell.PopEst = col.PopulationEstimate()
	cell.PopRelErr = estimate.RelativeError(cell.PopEst, cell.PopTruth)

	// Degree scoring against the final addrman sizes (the run's ground
	// truth for each source's table size).
	var degTruthSum, degEstSum, degRelSum float64
	for _, sd := range col.Deg.Estimates() {
		truth, ok := out.AddrManSizes[sd.Source]
		if !ok {
			continue
		}
		degTruthSum += float64(truth)
		degEstSum += sd.Estimate
		degRelSum += estimate.RelativeError(sd.Estimate, float64(truth))
		cell.Sources++
	}
	if cell.Sources > 0 {
		n := float64(cell.Sources)
		cell.DegTruthMean = degTruthSum / n
		cell.DegEstMean = degEstSum / n
		cell.DegRelErr = degRelSum / n
	}

	// Cold-start connection experiment under this cell's policies and
	// churn (where the addressing and peering policies bite).
	if cfg.ColdStartRuns > 0 {
		cold, err := RunConnExperiment(ctx, ConnExperimentConfig{
			Seed:              spec.seed,
			LivePeers:         cfg.Base.NumReachable / 2,
			Duration:          5 * time.Minute,
			PeerChurnPer10Min: spec.churn.DeparturesPer10Min,
			ConnDropEvery:     40 * time.Second,
			Policies:          spec.set,
			Runs:              cfg.ColdStartRuns,
		})
		if err != nil {
			return cell, nil, err
		}
		cell.ColdStartSuccessRate = cold.SuccessRate
	}

	// Cell-qualified sync trajectories, extracted from the run's series
	// so the merged set never collides across cells.
	set := &obs.SeriesSet{}
	for _, ren := range []struct{ from, to string }{
		{"prop.sync.ratio", "interv.sync." + cell.Name},
		{"prop.sync.observed.ratio", "interv.sync.observed." + cell.Name},
	} {
		if s, ok := out.Series.Get(ren.from); ok {
			pts := make([]obs.Point, len(s.Points))
			copy(pts, s.Points)
			set.Series = append(set.Series, obs.Series{Name: ren.to, Points: pts})
		}
	}
	sort.Slice(set.Series, func(i, j int) bool { return set.Series[i].Name < set.Series[j].Name })
	return cell, set, nil
}
