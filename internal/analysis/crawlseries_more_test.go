package analysis

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/netgen"
)

func TestCrawlSeriesScanSampling(t *testing.T) {
	// A sampled scan must estimate the responsive count close to the
	// full scan's, at a fraction of the probes.
	u, err := netgen.Generate(netgen.DefaultParams(31, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunCrawlSeriesOn(context.Background(), u, CrawlSeriesConfig{
		Experiments:            4,
		ScannerStartExperiment: 0,
		ScanSampleFraction:     1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunCrawlSeriesOn(context.Background(), u, CrawlSeriesConfig{
		Experiments:            4,
		ScannerStartExperiment: 0,
		ScanSampleFraction:     0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalResponsive == 0 {
		t.Fatal("full scan found nothing")
	}
	ratio := float64(sampled.TotalResponsive) / float64(full.TotalResponsive)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("sampled/full responsive ratio = %.2f, want ≈1", ratio)
	}
}

func TestCrawlSeriesOnReusedUniverse(t *testing.T) {
	// Two runs on the same universe must agree exactly (determinism).
	u, err := netgen.Generate(netgen.DefaultParams(32, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	cfg := CrawlSeriesConfig{Experiments: 3, ScannerStartExperiment: 99}
	a, err := RunCrawlSeriesOn(context.Background(), u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrawlSeriesOn(context.Background(), u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalUniqueUnreachable != b.TotalUniqueUnreachable {
		t.Errorf("unreachable totals differ: %d vs %d",
			a.TotalUniqueUnreachable, b.TotalUniqueUnreachable)
	}
	if a.UniqueConnected != b.UniqueConnected {
		t.Errorf("connected totals differ: %d vs %d", a.UniqueConnected, b.UniqueConnected)
	}
	for i := range a.Experiments {
		if a.Experiments[i].Connected != b.Experiments[i].Connected {
			t.Fatalf("experiment %d differs between identical runs", i)
		}
	}
}

func TestCrawlSeriesWorkerCountInvariance(t *testing.T) {
	// The golden determinism guarantee for the parallel fan-out: the
	// whole longitudinal study — every per-experiment stat, the
	// cumulative unions, the malicious ranking, the censuses — is
	// byte-identical between sequential and parallel runs.
	u, err := netgen.Generate(netgen.DefaultParams(34, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(workers int) *CrawlSeriesResult {
		res, err := RunCrawlSeriesOn(context.Background(), u, CrawlSeriesConfig{
			Experiments:            4,
			ScannerStartExperiment: 1,
			Workers:                workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par4 := runWith(1), runWith(4)
	if !reflect.DeepEqual(seq, par4) {
		t.Error("series results differ between workers=1 and workers=4")
	}
	// JSON bytes are the artifact format (CSV/report export), so compare
	// those too: equal structs must serialize identically.
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par4)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqJSON) != string(parJSON) {
		t.Error("serialized series differ between workers=1 and workers=4")
	}
}

func TestCrawlSeriesInvalidHorizon(t *testing.T) {
	p := netgen.DefaultParams(33, 0.02)
	p.CrawlInterval = p.Horizon * 2
	if _, err := RunCrawlSeries(context.Background(), CrawlSeriesConfig{Params: p}); err == nil {
		t.Error("want error when horizon is shorter than crawl interval")
	}
}
