// Package analysis implements the paper's measurement pipelines: the
// message-level propagation experiments (synchronization, connection
// stability and success, relay delays, the §V ablation) and the
// snapshot-level studies (crawl series, AS censuses, churn figures). Each
// Fig*/Table* entry point returns plain data that internal/core renders.
package analysis

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// PropagationConfig parameterizes a message-level network experiment.
type PropagationConfig struct {
	// Seed drives all randomness.
	Seed int64
	// NumReachable is the number of live reachable full nodes.
	NumReachable int
	// DeadAddrPool is the number of unreachable/dead addresses mixed
	// into gossip and seeds; dials to them time out, reproducing the
	// §IV-B failure rate.
	DeadAddrPool int
	// AddrReachableShare is the fraction of reachable addresses in each
	// node's seed set (paper: 14.9% in gossip).
	AddrReachableShare float64
	// SeedsPerNode is how many addresses each node starts with.
	SeedsPerNode int
	// Warmup lets the topology form before measurement begins.
	Warmup time.Duration
	// Duration is the measured phase length.
	Duration time.Duration
	// BlockInterval is the mean block production gap (10 min on
	// mainnet).
	BlockInterval time.Duration
	// TxPerBlock is the number of background transactions submitted per
	// block interval (they fill the round-robin queues).
	TxPerBlock int
	// RelayPolicy, CompactBlocks, TriedOnlyGetAddr, and AddrHorizon are
	// forwarded to every node (the §IV-C/§V toggles). RelayPolicy,
	// TriedOnlyGetAddr, and AddrHorizon are the legacy spellings of what
	// Policies expresses compositionally; node.Config folds Policies over
	// them (policies win).
	RelayPolicy      node.RelayPolicy
	CompactBlocks    bool
	TriedOnlyGetAddr bool
	AddrHorizon      time.Duration
	// Policies is the intervention policy set forwarded to every node
	// (reachable and unreachable alike). Empty means stock behaviour.
	Policies node.PolicySet
	// UnreachableShare adds round(share·NumReachable) unreachable (NATed)
	// full nodes to the network. They dial out and participate in relay
	// but refuse inbound connections, reproducing the §IV population mix;
	// the unreachable-tx-relay policy changes whether they forward
	// third-party transactions. 0 keeps the legacy reachable-only
	// network, byte-identical to pre-policy runs.
	UnreachableShare float64
	// ObserverAddrSink receives every multi-address ADDR payload the
	// observer node ingests (GETADDR response chunks; single-address
	// self-advertisements are filtered at the node). It feeds the
	// Grundmann estimators in the intervention grid. When set, the result
	// also carries AddrManSizes as degree ground truth.
	ObserverAddrSink func(from netip.AddrPort, addrs []wire.NetAddress)
	// CompactShare is the fraction of nodes that negotiate BIP-152
	// compact relay when CompactBlocks is set (default 1.0). The 2020
	// network mixed compact and legacy peers; a legacy peer receives the
	// full ~1 MB block body, whose serialization stalls the round-robin
	// loop and produces the long relay tails of Figure 10.
	CompactShare float64
	// ChurnDeparturesPer10Min is the synchronized-node departure rate
	// driven through the network (paper: 3.9 in 2019, 7.6 in 2020 at
	// full scale — scale it with NumReachable).
	ChurnDeparturesPer10Min float64
	// RejoinAfter is the mean offline period before a departed node
	// rejoins.
	RejoinAfter time.Duration
	// ObserverConnSampleEvery samples the observer node's connection
	// count at this cadence (0 disables; Figure 6 uses 1 s).
	ObserverConnSampleEvery time.Duration
	// BlockSizeHint and BytesPerSec forward to the node timing model
	// (BytesPerSec is the effective per-socket rate; lower values deepen
	// the §IV-C queueing delays).
	BlockSizeHint int
	BytesPerSec   int
	// SyncSampleEvery is the cadence at which network synchronization is
	// sampled (the paper's Bitnodes feed is 10-minutely; denser sampling
	// reduces estimator variance without changing the mean). Default
	// 2 minutes.
	SyncSampleEvery time.Duration
	// PollInterval is the Bitnodes-style monitor cadence: each node's
	// height is only observed when the monitor revisits it, so the
	// observed synchronization lags the true one — this is the
	// measurement process behind Figure 1 (0 disables the observed
	// metric).
	PollInterval time.Duration
	// ListingTTL keeps recently-departed nodes in the monitor's listing
	// (they count as unsynchronized until they expire), matching how a
	// crawler's view lags churn.
	ListingTTL time.Duration
	// SampleEvery is the sim-time series sampling cadence (default:
	// SyncSampleEvery). Each tick snapshots every registry metric into
	// the result's Series set.
	SampleEvery time.Duration
	// Metrics optionally supplies the registry the run writes to. Leave
	// nil for a private registry (the default, and required when several
	// runs execute concurrently — the snapshot must be a pure function of
	// this run).
	Metrics *obs.Registry
	// TraceSink optionally receives every trace event at emission time
	// (the -trace-out NDJSON stream). It runs under the tracer lock and
	// must not call back into the tracer. Run it per-experiment: the
	// sink sees only this run's events.
	TraceSink func(obs.Event)
}

func (c PropagationConfig) withDefaults() PropagationConfig {
	if c.NumReachable == 0 {
		c.NumReachable = 200
	}
	if c.AddrReachableShare == 0 {
		c.AddrReachableShare = 0.149
	}
	if c.SeedsPerNode == 0 {
		c.SeedsPerNode = 200
	}
	if c.DeadAddrPool == 0 {
		c.DeadAddrPool = int(float64(c.NumReachable) / c.AddrReachableShare)
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * time.Minute
	}
	if c.Duration == 0 {
		c.Duration = 4 * time.Hour
	}
	if c.BlockInterval == 0 {
		c.BlockInterval = 10 * time.Minute
	}
	// RelayPolicy deliberately not normalized here: node.Config.withDefaults
	// is the single place RelayPolicy(0) becomes RoundRobin.
	if c.RejoinAfter == 0 {
		c.RejoinAfter = 30 * time.Minute
	}
	if c.CompactShare == 0 {
		c.CompactShare = 1.0
	}
	if c.SyncSampleEvery == 0 {
		c.SyncSampleEvery = 2 * time.Minute
	}
	if c.PollInterval == 0 {
		c.PollInterval = 5 * time.Minute
	}
	if c.ListingTTL == 0 {
		c.ListingTTL = time.Hour
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.SyncSampleEvery
	}
	return c
}

// RelayObservation is one node's relay-completion record for one object:
// the delay between receiving it and relaying it to the last connection.
type RelayObservation struct {
	// Node reporting the observation.
	Node netip.AddrPort
	// LastDelay is the receive-to-last-connection delay (Figure 10/11).
	LastDelay time.Duration
	// Fanout is the number of connections relayed to.
	Fanout int
}

// PropagationResult aggregates a propagation experiment.
type PropagationResult struct {
	// SyncSamples is the true fraction of online nodes at the chain
	// tip, sampled every SyncSampleEvery.
	SyncSamples []float64
	// ObservedSyncSamples is the Bitnodes-style measurement: the
	// fraction of *listed* nodes (online or recently departed) whose
	// *last-polled* height equals the tip — Figure 1's actual
	// observable. Polling lag and churn both depress it.
	ObservedSyncSamples []float64
	// BlockRelays and TxRelays hold per-node-per-object relay
	// observations (Figures 10/11).
	BlockRelays []RelayObservation
	TxRelays    []RelayObservation
	// ObserverConns samples the observer's total connection count
	// (Figure 6).
	ObserverConns []int
	// DialAttempts/DialSuccesses count outbound-slot dials summed over
	// all nodes (feelers excluded — they probe the new table by design
	// and would dilute the §V addressing comparisons).
	DialAttempts  int
	DialSuccesses int
	// FeelerAttempts/FeelerSuccesses count feeler dials.
	FeelerAttempts  int
	FeelerSuccesses int
	// ObserverAttempts/ObserverSuccesses cover just the observer node.
	ObserverAttempts  int
	ObserverSuccesses int
	// BlocksMined counts produced blocks.
	BlocksMined int
	// NumUnreachable is the number of unreachable nodes the run added
	// (round(UnreachableShare·NumReachable)).
	NumUnreachable int
	// AddrManSizes maps each host (reachable and unreachable) that was
	// online at run end to its address-manager size — the degree ground
	// truth for the Grundmann estimator. Populated only when
	// ObserverAddrSink is set.
	AddrManSizes map[netip.AddrPort]int
	// MeanOutdegree is the average outbound connection count across
	// online nodes, sampled per block.
	MeanOutdegree float64
	// Series holds the sim-time metric series sampled every SampleEvery
	// during the measured phase (counter deltas, gauge values, histogram
	// quantiles, and the prop.* experiment observables). Same-seed runs
	// produce byte-identical CSV renderings of this set.
	Series *obs.SeriesSet
	// Metrics is the end-of-run registry snapshot (scheduler, network,
	// and node metrics).
	Metrics *obs.Snapshot
	// TraceDigest is the tracer's order-sensitive running digest;
	// TraceTotal and TraceDropped count emitted and ring-evicted events.
	TraceDigest  string
	TraceTotal   uint64
	TraceDropped uint64
}

// RunPropagation executes the experiment and aggregates its events. The
// simulation polls ctx periodically and stops mid-run with ctx.Err()
// when cancelled.
func RunPropagation(ctx context.Context, cfg PropagationConfig) (*PropagationResult, error) {
	cfg = cfg.withDefaults()
	if cfg.NumReachable < 3 {
		return nil, fmt.Errorf("analysis: need at least 3 reachable nodes, got %d", cfg.NumReachable)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Observability: a registry for metrics (private unless the caller
	// supplies one), a tracer for propagation spans, and a sim-time
	// sampler ticking on the scheduler. The relay observations are
	// reconstructed from deliver.*/relay.* span events by a
	// PropagationTree attached as a synchronous tracer stream — ring
	// eviction cannot lose hops, and no per-experiment relay bookkeeping
	// is needed.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	net := simnet.New(simnet.Config{
		Seed:    cfg.Seed,
		Latency: simnet.HashLatency(20*time.Millisecond, 120*time.Millisecond),
		Metrics: reg,
	})
	sched := net.Scheduler()
	genesis := propagationGenesis
	tracer := obs.NewTracer(0, net.Now)
	sampler := obs.NewSampler(reg, obs.DefaultSeriesCapacity)
	tree := obs.NewPropagationTree()
	var measuring bool
	tracer.AddStream(func(ev obs.Event) {
		if measuring {
			tree.Feed(ev)
		}
	})
	if cfg.TraceSink != nil {
		tracer.AddStream(cfg.TraceSink)
	}
	mDepartures := reg.Counter("prop.churn.departures")
	mBlocksMined := reg.Counter("prop.blocks.mined")

	// Address plan: live reachable nodes plus a pool of dead addresses.
	addrs := make([]netip.AddrPort, cfg.NumReachable)
	for i := range addrs {
		addrs[i] = netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 8333)
	}
	dead := make([]netip.AddrPort, cfg.DeadAddrPool)
	for i := range dead {
		dead[i] = netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{172, byte(i >> 16), byte(i >> 8), byte(i)}), 8333)
	}

	res := &PropagationResult{}
	observer := addrs[0]

	sink := node.SinkFunc(func(ev node.Event) {
		if !measuring {
			return
		}
		switch ev.Type {
		case node.EvDialAttempt:
			if ev.Dir == node.Feeler {
				res.FeelerAttempts++
			} else {
				res.DialAttempts++
			}
			if ev.Node == observer {
				res.ObserverAttempts++
			}
		case node.EvDialSuccess:
			if ev.Dir == node.Feeler {
				res.FeelerSuccesses++
			} else {
				res.DialSuccesses++
			}
			if ev.Node == observer {
				res.ObserverSuccesses++
			}
		}
	})

	// Build hosts.
	hosts := make([]*simnet.Host, cfg.NumReachable)
	seedFor := func(self netip.AddrPort) []wire.NetAddress {
		seeds := make([]wire.NetAddress, 0, cfg.SeedsPerNode)
		for len(seeds) < cfg.SeedsPerNode {
			var a netip.AddrPort
			if rng.Float64() < cfg.AddrReachableShare {
				a = addrs[rng.Intn(len(addrs))]
			} else if len(dead) > 0 {
				a = dead[rng.Intn(len(dead))]
			} else {
				a = addrs[rng.Intn(len(addrs))]
			}
			if a == self {
				continue
			}
			seeds = append(seeds, wire.NetAddress{
				Addr: a, Services: wire.SFNodeNetwork, Timestamp: net.Now(),
			})
		}
		return seeds
	}
	for i, a := range addrs {
		compact := cfg.CompactBlocks && rng.Float64() < cfg.CompactShare
		cfgNode := node.Config{
			Self:             wire.NetAddress{Addr: a, Services: wire.SFNodeNetwork},
			Reachable:        true,
			Genesis:          genesis,
			SeedAddrs:        seedFor(a),
			RelayPolicy:      cfg.RelayPolicy,
			CompactBlocks:    compact,
			TriedOnlyGetAddr: cfg.TriedOnlyGetAddr,
			AddrHorizon:      cfg.AddrHorizon,
			Policies:         cfg.Policies,
			BlockSizeHint:    cfg.BlockSizeHint,
			BytesPerSec:      cfg.BytesPerSec,
			AddrManKey:       uint64(cfg.Seed) + uint64(i),
			Sink:             sink,
			Metrics:          reg,
			Tracer:           tracer,
		}
		if i == 0 {
			cfgNode.AddrSink = cfg.ObserverAddrSink
		}
		hosts[i] = net.AddFullNode(cfgNode)
	}
	for _, h := range hosts {
		h.Start()
	}

	// Unreachable (NATed) population: dial-out-only full nodes whose
	// addresses never work for inbound connections. Every rng draw here
	// is gated on numUnreach > 0 so that share-0 runs keep the legacy
	// draw order and stay byte-identical. Unreachable hosts are excluded
	// from the monitor, the churn driver, the sync denominator, and the
	// tx driver — they shape the relay fabric (and, under
	// unreachable-tx-relay, extend it) without being measured nodes.
	numUnreach := int(cfg.UnreachableShare*float64(cfg.NumReachable) + 0.5)
	res.NumUnreachable = numUnreach
	unreach := make([]*simnet.Host, 0, numUnreach)
	if numUnreach > 0 {
		for i := 0; i < numUnreach; i++ {
			a := netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{11, byte(i >> 16), byte(i >> 8), byte(i)}), 8333)
			cfgNode := node.Config{
				Self:             wire.NetAddress{Addr: a, Services: wire.SFNodeNetwork},
				Reachable:        false,
				Genesis:          genesis,
				SeedAddrs:        seedFor(a),
				RelayPolicy:      cfg.RelayPolicy,
				CompactBlocks:    cfg.CompactBlocks,
				TriedOnlyGetAddr: cfg.TriedOnlyGetAddr,
				AddrHorizon:      cfg.AddrHorizon,
				Policies:         cfg.Policies,
				BlockSizeHint:    cfg.BlockSizeHint,
				BytesPerSec:      cfg.BytesPerSec,
				AddrManKey:       uint64(cfg.Seed) + uint64(cfg.NumReachable+i),
				Sink:             sink,
				Metrics:          reg,
				Tracer:           tracer,
			}
			h := net.AddFullNode(cfgNode)
			unreach = append(unreach, h)
			h.Start()
		}
	}

	// Bitnodes-style monitor: each host is revisited on its own cadence
	// (the real crawler's revisit interval varies per node with crawl
	// cycle length and reachability), recording its advertised height
	// and last-seen time.
	polled := make(map[netip.AddrPort]int32, len(hosts))
	lastSeen := make(map[netip.AddrPort]time.Time, len(hosts))
	for i := range hosts {
		h := hosts[i]
		interval := time.Duration(float64(cfg.PollInterval) * (0.5 + 2.0*rng.Float64()))
		var poll func()
		poll = func() {
			if n := h.Node(); n != nil {
				polled[h.Addr()] = n.Chain().Height()
				lastSeen[h.Addr()] = net.Now()
			}
			sched.After(interval, poll)
		}
		stagger := time.Duration(rng.Int63n(int64(interval)))
		sched.After(stagger, poll)
	}

	// Warmup: let the topology form.
	if err := sched.RunForCtx(ctx, cfg.Warmup); err != nil {
		return nil, err
	}
	measuring = true

	end := net.Now().Add(cfg.Duration)

	// Sim-time series sampling over the measured phase: the first tick
	// baselines counters at measurement start (its deltas absorb the
	// warmup), subsequent ticks ride the scheduler at SampleEvery.
	sampler.Tick(net.Now())
	stopSampling := sched.Every(cfg.SampleEvery, func() {
		sampler.Tick(net.Now())
	})
	defer stopSampling()

	// Churn driver: departures at the configured rate; departed hosts
	// rejoin after an exponential offline period with fresh node state.
	if cfg.ChurnDeparturesPer10Min > 0 {
		gap := time.Duration(float64(10*time.Minute) / cfg.ChurnDeparturesPer10Min)
		var churnTick func()
		churnTick = func() {
			if !net.Now().Before(end) {
				return
			}
			// Pick a random online non-observer host to stop.
			for try := 0; try < 10; try++ {
				h := hosts[1+rng.Intn(len(hosts)-1)]
				if !h.Online() {
					continue
				}
				h.Stop()
				mDepartures.Inc()
				cfgNode := h.Config()
				cfgNode.SeedAddrs = seedFor(cfgNode.Self.Addr)
				h.SetConfig(cfgNode)
				off := time.Duration(rng.ExpFloat64() * float64(cfg.RejoinAfter))
				sched.After(off, h.Start)
				break
			}
			sched.After(time.Duration(rng.ExpFloat64()*float64(gap)), churnTick)
		}
		sched.After(time.Duration(rng.ExpFloat64()*float64(gap)), churnTick)
	}

	// Observer connection sampler (Figure 6).
	if cfg.ObserverConnSampleEvery > 0 {
		var sample func()
		sample = func() {
			if !net.Now().Before(end) {
				return
			}
			if n := hosts[0].Node(); n != nil {
				out, in, feelers := n.ConnCounts()
				res.ObserverConns = append(res.ObserverConns, out+feelers)
				_ = in
			}
			sched.After(cfg.ObserverConnSampleEvery, sample)
		}
		sched.After(0, sample)
	}

	// Background transactions: TxPerBlock submissions per block interval.
	if cfg.TxPerBlock > 0 {
		txGap := cfg.BlockInterval / time.Duration(cfg.TxPerBlock)
		txCounter := uint32(0)
		var txTick func()
		txTick = func() {
			if !net.Now().Before(end) {
				return
			}
			h := hosts[rng.Intn(len(hosts))]
			if n := h.Node(); n != nil {
				txCounter++
				tx := &wire.MsgTx{
					Version: 2,
					TxIn: []wire.TxIn{{
						PreviousOutPoint: wire.OutPoint{Index: txCounter},
						SignatureScript:  []byte{byte(txCounter), byte(txCounter >> 8), byte(txCounter >> 16), byte(txCounter >> 24)},
						Sequence:         0xffffffff,
					}},
					TxOut: []wire.TxOut{{Value: int64(txCounter) * 100, PkScript: []byte{0x51}}},
				}
				n.SubmitTx(tx)
			}
			sched.After(time.Duration(rng.ExpFloat64()*float64(txGap)), txTick)
		}
		sched.After(0, txTick)
	}

	// Synchronization sampler: fixed cadence, like the Bitnodes feed.
	var syncSample func()
	syncSample = func() {
		if !net.Now().Before(end) {
			return
		}
		best := int32(-1)
		var online, atTip, outSum int
		for _, h := range hosts {
			n := h.Node()
			if n == nil {
				continue
			}
			if hh := n.Chain().Height(); hh > best {
				best = hh
			}
		}
		for _, h := range hosts {
			n := h.Node()
			if n == nil {
				continue
			}
			online++
			out, _, _ := n.ConnCounts()
			outSum += out
			if n.Chain().Height() == best {
				atTip++
			}
		}
		if online > 0 {
			ratio := float64(atTip) / float64(online)
			outdeg := float64(outSum) / float64(online)
			res.SyncSamples = append(res.SyncSamples, ratio)
			res.MeanOutdegree += outdeg
			sampler.Observe(net.Now(), "prop.sync.ratio", ratio)
			sampler.Observe(net.Now(), "prop.outdegree.mean", outdeg)
		}
		// Observed synchronization: listed nodes whose last-polled
		// height matches the tip.
		var listed, observedSynced int
		now := net.Now()
		for _, h := range hosts {
			seen, ever := lastSeen[h.Addr()]
			if !ever {
				continue
			}
			if !h.Online() && now.Sub(seen) > cfg.ListingTTL {
				continue
			}
			listed++
			if polled[h.Addr()] == best {
				observedSynced++
			}
		}
		if listed > 0 {
			observed := float64(observedSynced) / float64(listed)
			res.ObservedSyncSamples = append(res.ObservedSyncSamples, observed)
			sampler.Observe(now, "prop.sync.observed.ratio", observed)
		}
		sched.After(cfg.SyncSampleEvery, syncSample)
	}
	sched.After(cfg.SyncSampleEvery, syncSample)

	// Mining driver: the block schedule is precomputed from a dedicated
	// random stream, so two runs with the same seed see identical block
	// times regardless of churn — common random numbers that make regime
	// contrasts (Figure 1) directly comparable.
	blockRng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b10c0))
	var blockTimes []time.Time
	for t := net.Now().Add(time.Duration(blockRng.ExpFloat64() * float64(cfg.BlockInterval))); t.Before(end); t = t.Add(time.Duration(blockRng.ExpFloat64() * float64(cfg.BlockInterval))) {
		blockTimes = append(blockTimes, t)
	}
	for _, bt := range blockTimes {
		sched.At(bt, func() {
			best := int32(-1)
			for _, h := range hosts {
				if n := h.Node(); n != nil {
					if hh := n.Chain().Height(); hh > best {
						best = hh
					}
				}
			}
			for try := 0; try < 20; try++ {
				h := hosts[rng.Intn(len(hosts))]
				n := h.Node()
				if n == nil || n.Chain().Height() != best {
					continue
				}
				if _, err := n.MineBlock(2000); err == nil {
					res.BlocksMined++
					mBlocksMined.Inc()
				}
				break
			}
		})
	}

	if err := sched.RunUntilCtx(ctx, end); err != nil {
		return nil, err
	}
	measuring = false

	// Degree ground truth for the Grundmann estimator: the final addrman
	// size of every host still online.
	if cfg.ObserverAddrSink != nil {
		res.AddrManSizes = make(map[netip.AddrPort]int, len(hosts)+len(unreach))
		for _, h := range hosts {
			if n := h.Node(); n != nil {
				res.AddrManSizes[h.Addr()] = n.AddrMan().Size()
			}
		}
		for _, h := range unreach {
			if n := h.Node(); n != nil {
				res.AddrManSizes[h.Addr()] = n.AddrMan().Size()
			}
		}
	}

	// Derive the relay observations from the propagation tree: the
	// per-(node, object) last-delay/fanout aggregates are keyed by the
	// node's delivery span, and RelayStats already returns them in the
	// deterministic (delay, node, fanout) order the figure pipelines
	// consume.
	res.BlockRelays = relayObservations(tree.RelayStats(obs.KindRelayBlock))
	res.TxRelays = relayObservations(tree.RelayStats(obs.KindRelayTx))
	if len(res.SyncSamples) > 0 {
		res.MeanOutdegree /= float64(len(res.SyncSamples))
	}
	tracer.Publish(reg)
	res.Series = sampler.Set()
	res.Metrics = reg.Snapshot()
	res.TraceDigest = tracer.Digest()
	res.TraceTotal = tracer.Total()
	res.TraceDropped = tracer.Dropped()
	return res, nil
}

// relayObservations converts span-derived relay aggregates into the
// result's observation records.
func relayObservations(stats []obs.RelayStat) []RelayObservation {
	if len(stats) == 0 {
		return nil
	}
	out := make([]RelayObservation, len(stats))
	for i, st := range stats {
		out[i] = RelayObservation{
			Node: st.Node, LastDelay: st.LastDelay, Fanout: st.Fanout,
		}
	}
	return out
}

// propagationGenesis is shared by all propagation experiments.
var propagationGenesis = func() *wire.MsgBlock {
	return chainGenesis("propagation")
}()
