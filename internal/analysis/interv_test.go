package analysis

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/node"
)

func smallIntervConfig(seed int64) InterventionGridConfig {
	base := smallPropConfig(seed)
	base.NumReachable = 24
	base.Duration = 30 * time.Minute
	base.Warmup = 8 * time.Minute
	base.TxPerBlock = 8
	return InterventionGridConfig{
		Base: base,
		PolicySets: []node.PolicySet{
			node.MustPolicySet(node.StockPolicyName),
			node.MustPolicySet("tried-only-addr+horizon-17d+priority-relay"),
		},
		Churns:            []IntervChurn{{Name: "2020", DeparturesPer10Min: 1.0}},
		UnreachableShares: []float64{0, 0.25},
		ColdStartRuns:     1,
	}
}

func TestRunInterventionGridSmall(t *testing.T) {
	cfg := smallIntervConfig(3)
	res, err := RunInterventionGrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	wantNames := []string{
		"stock.2020.u0",
		"stock.2020.u25",
		"tried-only-addr+horizon-17d+priority-relay.2020.u0",
		"tried-only-addr+horizon-17d+priority-relay.2020.u25",
	}
	for i, c := range res.Cells {
		if c.Name != wantNames[i] {
			t.Errorf("cell %d = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.MeanObservedSync <= 0 || c.MeanSync <= 0 {
			t.Errorf("%s: no sync measured", c.Name)
		}
		if c.DialSuccessRate <= 0 {
			t.Errorf("%s: no dial successes", c.Name)
		}
		if c.ColdStartSuccessRate <= 0 {
			t.Errorf("%s: no cold-start successes", c.Name)
		}
		if c.PopTruth <= 0 {
			t.Errorf("%s: no population truth", c.Name)
		}
		if c.Sources == 0 {
			t.Errorf("%s: degree estimator observed no sources", c.Name)
		}
		if _, ok := res.Series.Get("interv.sync.observed." + c.Name); !ok {
			t.Errorf("%s: missing observed-sync series", c.Name)
		}
	}
	// The population estimator reads unreachable addresses out of ADDR
	// responses, so it works under stock gossip and is starved to zero by
	// tried-only-addr (responses then carry only verified-reachable
	// addresses) — a measurement side effect of the §V refinement that
	// the grid is expected to surface.
	for _, c := range res.Cells[:2] {
		if c.PopEst <= 0 {
			t.Errorf("%s: population estimator starved under stock gossip", c.Name)
		}
	}
	for _, c := range res.Cells[2:] {
		if c.PopEst != 0 {
			t.Errorf("%s: tried-only gossip still fed the population estimator (est=%v)",
				c.Name, c.PopEst)
		}
	}
	// The u25 cells actually ran unreachable nodes; the u0 cells did not.
	if res.Cells[0].NumUnreachable != 0 {
		t.Errorf("u0 cell ran %d unreachable nodes", res.Cells[0].NumUnreachable)
	}
	if res.Cells[1].NumUnreachable != 6 {
		t.Errorf("u25 cell ran %d unreachable nodes, want 6", res.Cells[1].NumUnreachable)
	}
	// Common random numbers: the same environment seed is shared across
	// policy sets within a (churn, mix) environment.
	if res.Cells[0].Seed != res.Cells[2].Seed || res.Cells[1].Seed != res.Cells[3].Seed {
		t.Error("environment seeds not shared across policy sets")
	}
	if res.Cells[0].Seed == res.Cells[1].Seed {
		t.Error("distinct environments share a seed")
	}
}

// TestRunInterventionGridWorkersInvariant: the grid must be
// byte-identical at any fan-out width.
func TestRunInterventionGridWorkersInvariant(t *testing.T) {
	cfg1 := smallIntervConfig(7)
	cfg1.Workers = 1
	cfg4 := smallIntervConfig(7)
	cfg4.Workers = 4
	a, err := RunInterventionGrid(context.Background(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunInterventionGrid(context.Background(), cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Errorf("cells differ between workers=1 and workers=4:\n%+v\nvs\n%+v", a.Cells, b.Cells)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Error("series differ between workers=1 and workers=4")
	}
}

// TestAblationPolicyEquivalence is the golden equivalence check for the
// policy API: every legacy knob triple and its policy-set re-expression
// must produce byte-identical ablation rows — the policies are a
// refactoring of the knobs, not a behaviour change.
func TestAblationPolicyEquivalence(t *testing.T) {
	legacy := StockVariants()
	reexpr := []AblationVariant{
		{Name: "stock", Policies: node.MustPolicySet(node.StockPolicyName)},
		{Name: "tried-only-addr", Policies: node.MustPolicySet("tried-only-addr")},
		{Name: "17d-horizon", Policies: node.MustPolicySet("horizon-17d")},
		{Name: "priority-relay", Policies: node.MustPolicySet("priority-relay")},
		{Name: "all-refinements", Policies: node.MustPolicySet("tried-only-addr+horizon-17d+priority-relay")},
		{Name: "ideal-broadcast", Policies: node.MustPolicySet("ideal-broadcast")},
	}
	for _, seed := range []int64{5, 11} {
		base := smallPropConfig(seed)
		base.NumReachable = 24
		base.Duration = 30 * time.Minute
		base.Warmup = 8 * time.Minute
		base.TxPerBlock = 8
		base.ChurnDeparturesPer10Min = 0.5
		a, err := RunAblation(context.Background(), base, legacy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunAblation(context.Background(), base, reexpr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Rows {
			ra, rb := a.Rows[i], b.Rows[i]
			// Blank the variant descriptors: only the measured outcome
			// must match.
			ra.Variant, rb.Variant = AblationVariant{}, AblationVariant{}
			if !reflect.DeepEqual(ra, rb) {
				t.Errorf("seed %d row %q: legacy %+v != policy %+v",
					seed, a.Rows[i].Variant.Name, ra, rb)
			}
		}
	}
}
