package analysis

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/netgen"
)

func TestRunEstFigs(t *testing.T) {
	base := netgen.DefaultParams(7, 0.02)
	cfg := EstFigsConfig{Base: base, Rounds: 2, Workers: 1}
	seq, err := RunEstFigs(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunEstFigs(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("estimator sweep differs between 1 and 4 workers")
	}

	if len(seq.Cells) != 8 {
		t.Fatalf("cells = %d, want 8 (churn × flooders × mix grid)", len(seq.Cells))
	}
	names := map[string]bool{}
	for _, c := range seq.Cells {
		if names[c.Name] {
			t.Errorf("duplicate cell name %q", c.Name)
		}
		names[c.Name] = true
		if c.Observations == 0 || c.Sources == 0 {
			t.Errorf("%s: empty measurement (obs=%d sources=%d)", c.Name, c.Observations, c.Sources)
		}
		if c.PopTruthMean <= 0 {
			t.Errorf("%s: population truth %v, want > 0", c.Name, c.PopTruthMean)
		}
		// Tolerances observed well inside these bounds at quick scale:
		// population recurrence inversion lands within a few percent,
		// full-drain degree enumeration is near-exact, and the
		// single-exchange ratio probe is a ~5%-biased lower-bound proxy.
		if c.PopRelErr >= 0.10 {
			t.Errorf("%s: population relative error %v, want < 0.10", c.Name, c.PopRelErr)
		}
		if c.DegRelErr >= 0.05 {
			t.Errorf("%s: degree relative error %v, want < 0.05", c.Name, c.DegRelErr)
		}
		if c.DegRatioRelErr >= 0.15 {
			t.Errorf("%s: ratio-probe relative error %v, want < 0.15", c.Name, c.DegRatioRelErr)
		}
	}
	for _, want := range []string{"low-f0-r15", "high-f73-r40"} {
		if !names[want] {
			t.Errorf("missing grid cell %q", want)
		}
	}

	if seq.Series == nil || len(seq.Series.Series) == 0 {
		t.Fatal("no time-series emitted")
	}
	var qualified, deltas int
	for _, s := range seq.Series.Series {
		if strings.HasPrefix(s.Name, "est.pop.") || strings.HasPrefix(s.Name, "est.deg.") {
			qualified++
			if len(s.Points) != cfg.Rounds {
				t.Errorf("series %s has %d points, want %d", s.Name, len(s.Points), cfg.Rounds)
			}
		}
		if strings.HasSuffix(s.Name, ".delta") {
			deltas++
		}
	}
	if qualified == 0 {
		t.Error("no cell-qualified estimator series")
	}
	if deltas == 0 {
		t.Error("no counter-delta series from the first cell's registry")
	}
}

func TestCellParamsGrid(t *testing.T) {
	base := netgen.DefaultParams(1, 0.02)
	grid := estGrid()
	seeds := map[int64]bool{}
	for i, spec := range grid {
		p := cellParams(base, spec, i, 3)
		if seeds[p.Seed] {
			t.Errorf("cell %d: duplicate seed %d", i, p.Seed)
		}
		seeds[p.Seed] = true
		if p.Horizon != 3*p.CrawlInterval {
			t.Errorf("cell %d: horizon %v, want %v", i, p.Horizon, 3*p.CrawlInterval)
		}
		if !spec.flooders && p.MaliciousCount != 0 {
			t.Errorf("cell %d: flooderless cell has %d malicious", i, p.MaliciousCount)
		}
		if spec.flooders && p.MaliciousCount == 0 {
			t.Errorf("cell %d: flooder cell has no malicious", i)
		}
		if p.ResponsiveFraction != spec.respMix {
			t.Errorf("cell %d: responsive fraction %v, want %v", i, p.ResponsiveFraction, spec.respMix)
		}
		if spec.churn == "low" && p.MeanSessionOn <= base.MeanSessionOn {
			t.Errorf("cell %d: low churn did not lengthen sessions", i)
		}
	}
}
