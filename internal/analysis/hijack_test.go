package analysis

import (
	"context"
	"testing"
	"time"
)

func TestRunHijack(t *testing.T) {
	res, err := RunHijack(context.Background(), HijackConfig{
		Seed:          51,
		NumReachable:  60,
		HijackTopASes: 5,
		At:            20 * time.Minute,
		Observe:       20 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HijackedASes) != 5 {
		t.Fatalf("hijacked ASes = %d, want 5", len(res.HijackedASes))
	}
	if res.IsolatedShare <= 0 || res.IsolatedShare >= 1 {
		t.Errorf("isolated share = %.2f, want in (0,1)", res.IsolatedShare)
	}
	// The hijack must dent the survivors' outdegree (their peers in
	// hijacked ASes vanished); recovery may claw some back.
	if res.SurvivorMeanOutdegreeBefore <= 0 {
		t.Error("no pre-hijack connectivity")
	}
	if res.BlocksMinedAfter == 0 {
		t.Error("no blocks mined after the hijack")
	}
	if res.SurvivorsAtTip < 0.5 {
		t.Errorf("survivors at tip = %.2f; the surviving partition should keep synchronizing", res.SurvivorsAtTip)
	}
}

func TestRunHijackRejectsTiny(t *testing.T) {
	if _, err := RunHijack(context.Background(), HijackConfig{NumReachable: 5}); err == nil {
		t.Error("want error for tiny network")
	}
}
