package analysis

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// TestRunPropagationDeterministic: identical configurations must produce
// bit-identical results — the reproducibility guarantee every experiment
// in this repository rests on.
func TestRunPropagationDeterministic(t *testing.T) {
	cfg := PropagationConfig{
		Seed:                    77,
		NumReachable:            30,
		Duration:                45 * time.Minute,
		TxPerBlock:              20,
		ChurnDeparturesPer10Min: 1,
	}
	a, err := RunPropagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPropagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BlocksMined != b.BlocksMined {
		t.Errorf("blocks: %d vs %d", a.BlocksMined, b.BlocksMined)
	}
	if a.DialAttempts != b.DialAttempts || a.DialSuccesses != b.DialSuccesses {
		t.Errorf("dials: %d/%d vs %d/%d",
			a.DialAttempts, a.DialSuccesses, b.DialAttempts, b.DialSuccesses)
	}
	if len(a.ObservedSyncSamples) != len(b.ObservedSyncSamples) {
		t.Fatalf("sample counts differ: %d vs %d",
			len(a.ObservedSyncSamples), len(b.ObservedSyncSamples))
	}
	for i := range a.ObservedSyncSamples {
		if a.ObservedSyncSamples[i] != b.ObservedSyncSamples[i] {
			t.Fatalf("sync sample %d differs: %v vs %v",
				i, a.ObservedSyncSamples[i], b.ObservedSyncSamples[i])
		}
	}
	if len(a.BlockRelays) != len(b.BlockRelays) {
		t.Errorf("relay observation counts differ: %d vs %d",
			len(a.BlockRelays), len(b.BlockRelays))
	}
	sa := stats.Mean(RelayDelaysSeconds(a.BlockRelays))
	sb := stats.Mean(RelayDelaysSeconds(b.BlockRelays))
	if sa != sb {
		t.Errorf("mean relay delay differs: %v vs %v", sa, sb)
	}
}

// TestSeedChangesOutcome: different seeds must explore different
// trajectories (guards against accidentally ignoring the seed).
func TestSeedChangesOutcome(t *testing.T) {
	base := PropagationConfig{
		NumReachable: 30,
		Duration:     30 * time.Minute,
		TxPerBlock:   10,
	}
	a := base
	a.Seed = 1
	b := base
	b.Seed = 2
	ra, err := RunPropagation(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunPropagation(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.DialAttempts == rb.DialAttempts && ra.BlocksMined == rb.BlocksMined &&
		len(ra.TxRelays) == len(rb.TxRelays) {
		t.Error("different seeds produced identical trajectories")
	}
}
