package analysis

import (
	"context"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestRunPropagationDeterministic: identical configurations must produce
// bit-identical results — the reproducibility guarantee every experiment
// in this repository rests on.
func TestRunPropagationDeterministic(t *testing.T) {
	cfg := PropagationConfig{
		Seed:                    77,
		NumReachable:            30,
		Duration:                45 * time.Minute,
		TxPerBlock:              20,
		ChurnDeparturesPer10Min: 1,
	}
	a, err := RunPropagation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPropagation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BlocksMined != b.BlocksMined {
		t.Errorf("blocks: %d vs %d", a.BlocksMined, b.BlocksMined)
	}
	if a.DialAttempts != b.DialAttempts || a.DialSuccesses != b.DialSuccesses {
		t.Errorf("dials: %d/%d vs %d/%d",
			a.DialAttempts, a.DialSuccesses, b.DialAttempts, b.DialSuccesses)
	}
	if len(a.ObservedSyncSamples) != len(b.ObservedSyncSamples) {
		t.Fatalf("sample counts differ: %d vs %d",
			len(a.ObservedSyncSamples), len(b.ObservedSyncSamples))
	}
	for i := range a.ObservedSyncSamples {
		if a.ObservedSyncSamples[i] != b.ObservedSyncSamples[i] {
			t.Fatalf("sync sample %d differs: %v vs %v",
				i, a.ObservedSyncSamples[i], b.ObservedSyncSamples[i])
		}
	}
	if len(a.BlockRelays) != len(b.BlockRelays) {
		t.Errorf("relay observation counts differ: %d vs %d",
			len(a.BlockRelays), len(b.BlockRelays))
	}
	sa := stats.Mean(RelayDelaysSeconds(a.BlockRelays))
	sb := stats.Mean(RelayDelaysSeconds(b.BlockRelays))
	if sa != sb {
		t.Errorf("mean relay delay differs: %v vs %v", sa, sb)
	}
}

// TestSeedChangesOutcome: different seeds must explore different
// trajectories (guards against accidentally ignoring the seed).
func TestSeedChangesOutcome(t *testing.T) {
	base := PropagationConfig{
		NumReachable: 30,
		Duration:     30 * time.Minute,
		TxPerBlock:   10,
	}
	a := base
	a.Seed = 1
	b := base
	b.Seed = 2
	ra, err := RunPropagation(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunPropagation(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.DialAttempts == rb.DialAttempts && ra.BlocksMined == rb.BlocksMined &&
		len(ra.TxRelays) == len(rb.TxRelays) {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestChaosObservabilityGolden is the determinism golden test for the
// observability layer: two chaos runs with the same seed must emit a
// byte-identical metrics snapshot and the same trace digest, and a
// different seed must change the digest. Any nondeterminism smuggled
// into a metric or trace point (map iteration, wall-clock reads) fails
// here before it can corrupt a published figure.
func TestChaosObservabilityGolden(t *testing.T) {
	cfg := ChaosConfig{
		Seed:     41,
		NumNodes: 8,
		Duration: 25 * time.Minute,
		Drop:     0.05,
		Spike:    0.02,
		CrashAt:  8 * time.Minute,
		CrashFor: 4 * time.Minute,
	}
	a, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MetricsText == "" {
		t.Fatal("chaos run produced an empty metrics snapshot")
	}
	if a.MetricsText != b.MetricsText {
		t.Errorf("same-seed metrics snapshots differ:\n--- run A ---\n%s\n--- run B ---\n%s",
			a.MetricsText, b.MetricsText)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("same-seed trace digests differ: %s vs %s",
			a.TraceDigest, b.TraceDigest)
	}
	if a.TraceTotal == 0 {
		t.Error("chaos run emitted no trace events")
	}
	if a.TraceTotal != b.TraceTotal {
		t.Errorf("same-seed trace totals differ: %d vs %d", a.TraceTotal, b.TraceTotal)
	}

	// The sim-time series must render byte-identically across same-seed
	// runs — the *_timeseries.csv sidecars the runner writes are diffed
	// verbatim by the CI determinism job at -workers 1 vs 4, so any
	// wall-clock read or map-order leak in the sampler fails here first.
	csvA, err := a.Series.EncodeCSV()
	if err != nil {
		t.Fatal(err)
	}
	csvB, err := b.Series.EncodeCSV()
	if err != nil {
		t.Fatal(err)
	}
	if csvA == "" || a.Series.Len() == 0 {
		t.Fatal("chaos run produced no time series")
	}
	if csvA != csvB {
		t.Errorf("same-seed series CSVs differ:\n--- run A ---\n%s\n--- run B ---\n%s", csvA, csvB)
	}

	cfg.Seed = 42
	c, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceDigest == a.TraceDigest {
		t.Error("different seeds produced the same trace digest")
	}
	if c.MetricsText == a.MetricsText {
		t.Error("different seeds produced identical metrics snapshots")
	}
	if csvC, _ := c.Series.EncodeCSV(); csvC == csvA {
		t.Error("different seeds produced identical series CSVs")
	}
}
