package analysis

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/asmap"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// This file extends the paper's §IV-A1 routing-attack revision from a
// counting argument to a live experiment: build a network whose nodes are
// placed in ASes per the Table I distribution, take the top-k ASes off
// the air (a BGP hijack blackholes their prefixes), and measure what
// actually happens to the survivors' connectivity and synchronization —
// not just what fraction of nodes was hosted there.

// HijackConfig parameterizes the partition experiment.
type HijackConfig struct {
	// Seed drives all randomness.
	Seed int64
	// NumReachable is the live network size.
	NumReachable int
	// HijackTopASes is how many of the largest ASes are blackholed.
	HijackTopASes int
	// At is when the hijack strikes, after the topology forms.
	At time.Duration
	// Observe is how long after the hijack the survivors are measured.
	Observe time.Duration
}

func (c HijackConfig) withDefaults() HijackConfig {
	if c.NumReachable == 0 {
		c.NumReachable = 120
	}
	if c.HijackTopASes == 0 {
		c.HijackTopASes = 8
	}
	if c.At == 0 {
		c.At = 30 * time.Minute
	}
	if c.Observe == 0 {
		c.Observe = 30 * time.Minute
	}
	return c
}

// HijackResult reports the partition experiment.
type HijackResult struct {
	// HijackedASes lists the blackholed ASNs.
	HijackedASes []uint32
	// IsolatedShare is the fraction of nodes taken off the air directly.
	IsolatedShare float64
	// SurvivorMeanOutdegreeBefore/After contrast the survivors'
	// connectivity.
	SurvivorMeanOutdegreeBefore, SurvivorMeanOutdegreeAfter float64
	// SurvivorsAtTip is the fraction of surviving nodes at the chain tip
	// at the end of the observation window (blocks keep being mined).
	SurvivorsAtTip float64
	// BlocksMinedAfter counts post-hijack blocks.
	BlocksMinedAfter int
}

// RunHijack executes the partition experiment.
func RunHijack(ctx context.Context, cfg HijackConfig) (*HijackResult, error) {
	cfg = cfg.withDefaults()
	if cfg.NumReachable < 10 {
		return nil, fmt.Errorf("analysis: hijack needs at least 10 nodes, got %d", cfg.NumReachable)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Place nodes in ASes per the paper's reachable distribution.
	weights := asmap.PowerLawWeights(map[uint32]float64{
		3320: .0808, 24940: .0505, 8881: .0460, 16509: .0362, 6805: .0297,
		14061: .0284, 7922: .0255, 16276: .0243, 3209: .0206, 4134: .0076,
	}, 200, 100000, 0.65)
	dist, err := asmap.NewDistribution(weights)
	if err != nil {
		return nil, fmt.Errorf("analysis: hijack distribution: %w", err)
	}
	alloc := asmap.NewIPAllocator(1 << 12)

	net := simnet.New(simnet.Config{
		Seed:    cfg.Seed,
		Latency: simnet.ASLatency(alloc, 8*time.Millisecond, 30*time.Millisecond, 120*time.Millisecond),
	})
	sched := net.Scheduler()
	genesis := chainGenesis("hijack")

	type placed struct {
		host *simnet.Host
		asn  uint32
	}
	var hosts []placed
	var addrs []netip.AddrPort
	for i := 0; i < cfg.NumReachable; i++ {
		asn := dist.Sample(rng)
		ip, err := alloc.Alloc(asn)
		if err != nil {
			return nil, fmt.Errorf("analysis: alloc: %w", err)
		}
		addrs = append(addrs, netip.AddrPortFrom(ip, 8333))
		hosts = append(hosts, placed{asn: asn})
	}
	for i := range hosts {
		seeds := make([]wire.NetAddress, 0, 20)
		for len(seeds) < 20 {
			a := addrs[rng.Intn(len(addrs))]
			if a == addrs[i] {
				continue
			}
			seeds = append(seeds, wire.NetAddress{
				Addr: a, Services: wire.SFNodeNetwork, Timestamp: net.Now(),
			})
		}
		hosts[i].host = net.AddFullNode(node.Config{
			Self:      wire.NetAddress{Addr: addrs[i], Services: wire.SFNodeNetwork},
			Reachable: true,
			Genesis:   genesis,
			SeedAddrs: seeds,
		})
		hosts[i].host.Start()
	}
	if err := sched.RunForCtx(ctx, cfg.At); err != nil {
		return nil, err
	}

	// Identify the top-k ASes by hosted nodes.
	census := asmap.NewCensus()
	for _, p := range hosts {
		census.Add(p.asn)
	}
	top := census.TopN(cfg.HijackTopASes)
	hijacked := make(map[uint32]bool, len(top))
	res := &HijackResult{}
	for _, s := range top {
		hijacked[s.ASN] = true
		res.HijackedASes = append(res.HijackedASes, s.ASN)
	}
	sort.Slice(res.HijackedASes, func(i, j int) bool {
		return res.HijackedASes[i] < res.HijackedASes[j]
	})

	// Measure survivors' outdegree before the hijack.
	var survivors []placed
	for _, p := range hosts {
		if !hijacked[p.asn] {
			survivors = append(survivors, p)
		}
	}
	res.IsolatedShare = 1 - float64(len(survivors))/float64(len(hosts))
	outSum := 0
	for _, p := range survivors {
		if n := p.host.Node(); n != nil {
			out, _, _ := n.ConnCounts()
			outSum += out
		}
	}
	if len(survivors) > 0 {
		res.SurvivorMeanOutdegreeBefore = float64(outSum) / float64(len(survivors))
	}

	// The hijack: every node in a hijacked AS goes dark at once.
	sched.After(0, func() {
		for _, p := range hosts {
			if hijacked[p.asn] {
				p.host.Stop()
			}
		}
	})

	// Keep mining on survivors through the observation window.
	end := net.Now().Add(cfg.Observe)
	var mineTick func()
	mineTick = func() {
		if !net.Now().Before(end) {
			return
		}
		best := int32(-1)
		for _, p := range survivors {
			if n := p.host.Node(); n != nil {
				if h := n.Chain().Height(); h > best {
					best = h
				}
			}
		}
		for try := 0; try < 10; try++ {
			p := survivors[rng.Intn(len(survivors))]
			n := p.host.Node()
			if n == nil || n.Chain().Height() != best {
				continue
			}
			if _, err := n.MineBlock(0); err == nil {
				res.BlocksMinedAfter++
			}
			break
		}
		sched.After(time.Duration(rng.ExpFloat64()*float64(5*time.Minute)), mineTick)
	}
	sched.After(time.Minute, mineTick)
	if err := sched.RunUntilCtx(ctx, end); err != nil {
		return nil, err
	}

	// Post-hijack measurements.
	outSum = 0
	best := int32(-1)
	for _, p := range survivors {
		if n := p.host.Node(); n != nil {
			if h := n.Chain().Height(); h > best {
				best = h
			}
		}
	}
	atTip := 0
	for _, p := range survivors {
		n := p.host.Node()
		if n == nil {
			continue
		}
		out, _, _ := n.ConnCounts()
		outSum += out
		if n.Chain().Height() == best {
			atTip++
		}
	}
	if len(survivors) > 0 {
		res.SurvivorMeanOutdegreeAfter = float64(outSum) / float64(len(survivors))
		res.SurvivorsAtTip = float64(atTip) / float64(len(survivors))
	}
	return res, nil
}
