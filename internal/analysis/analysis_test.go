package analysis

import (
	"context"
	"testing"
	"time"

	"repro/internal/netgen"
	"repro/internal/node"
	"repro/internal/stats"
)

// Small, fast configurations keep the suite under a few seconds per test;
// the full-scale runs live in the repository-level benchmarks.

func smallPropConfig(seed int64) PropagationConfig {
	return PropagationConfig{
		Seed:         seed,
		NumReachable: 40,
		Duration:     time.Hour,
		Warmup:       10 * time.Minute,
		TxPerBlock:   10,
	}
}

func TestRunPropagationBasics(t *testing.T) {
	res, err := RunPropagation(context.Background(), smallPropConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksMined == 0 {
		t.Fatal("no blocks mined")
	}
	if len(res.SyncSamples) == 0 || len(res.ObservedSyncSamples) == 0 {
		t.Fatal("no synchronization samples")
	}
	for _, s := range res.SyncSamples {
		if s < 0 || s > 1 {
			t.Fatalf("sync sample %v out of range", s)
		}
	}
	if res.MeanOutdegree <= 0 || res.MeanOutdegree > 10 {
		t.Errorf("mean outdegree = %v, want (0, 10]", res.MeanOutdegree)
	}
	if res.DialAttempts+res.FeelerAttempts == 0 {
		t.Error("no dial activity recorded")
	}
	if res.DialSuccesses > res.DialAttempts {
		t.Error("more successes than attempts")
	}
	if res.FeelerSuccesses > res.FeelerAttempts {
		t.Error("more feeler successes than attempts")
	}
	if len(res.BlockRelays) == 0 {
		t.Error("no block relay observations")
	}
	if len(res.TxRelays) == 0 {
		t.Error("no tx relay observations")
	}
}

func TestRunPropagationRejectsTinyNetwork(t *testing.T) {
	if _, err := RunPropagation(context.Background(), PropagationConfig{NumReachable: 2}); err == nil {
		t.Error("want error for tiny network")
	}
}

func TestObservedSyncBelowTrueSync(t *testing.T) {
	// The Bitnodes-style observed metric must lag the true one: polling
	// delay guarantees observed <= true on average.
	cfg := smallPropConfig(2)
	cfg.ChurnDeparturesPer10Min = 0.5
	res, err := RunPropagation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	trueMean := stats.Mean(res.SyncSamples)
	obsMean := stats.Mean(res.ObservedSyncSamples)
	if obsMean >= trueMean {
		t.Errorf("observed sync %.3f should lag true sync %.3f", obsMean, trueMean)
	}
	if obsMean < 0.3 {
		t.Errorf("observed sync %.3f implausibly low", obsMean)
	}
}

func TestChurnReducesObservedSync(t *testing.T) {
	lo := smallPropConfig(3)
	lo.ChurnDeparturesPer10Min = 0.2
	hi := smallPropConfig(3)
	hi.ChurnDeparturesPer10Min = 2.0
	resLo, err := RunPropagation(context.Background(), lo)
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := RunPropagation(context.Background(), hi)
	if err != nil {
		t.Fatal(err)
	}
	mLo := stats.Mean(resLo.ObservedSyncSamples)
	mHi := stats.Mean(resHi.ObservedSyncSamples)
	if mHi >= mLo {
		t.Errorf("high churn sync %.3f should be below low churn sync %.3f", mHi, mLo)
	}
}

func TestRunFig1Contrast(t *testing.T) {
	res, err := RunFig1(context.Background(), Fig1Config{
		Seed:         4,
		NumReachable: 40,
		Duration:     4 * time.Hour,
		Churn2019:    0.3,
		Churn2020:    2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y2020.Mean >= res.Y2019.Mean {
		t.Errorf("2020 mean %.3f should be below 2019 mean %.3f",
			res.Y2020.Mean, res.Y2019.Mean)
	}
	// KDE output must be a density over [0, 1].
	for _, regime := range []RegimeSync{res.Y2019, res.Y2020} {
		if len(regime.Grid) != len(regime.Density) {
			t.Fatal("grid/density length mismatch")
		}
		integral := stats.Integrate(regime.Grid, regime.Density)
		if integral < 0.5 || integral > 1.3 {
			t.Errorf("KDE integral over [0,1] = %.3f", integral)
		}
	}
}

func TestRunCrawlSeriesSmall(t *testing.T) {
	p := netgen.DefaultParams(5, 0.02)
	res, err := RunCrawlSeries(context.Background(), CrawlSeriesConfig{
		Params:                 p,
		Experiments:            10,
		ScannerStartExperiment: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 10 {
		t.Fatalf("experiments = %d, want 10", len(res.Experiments))
	}
	// Cumulative series must be non-decreasing and end at the totals.
	prev := 0
	for _, e := range res.Experiments {
		if e.CumulativeUnreachable < prev {
			t.Fatal("cumulative unreachable decreased")
		}
		prev = e.CumulativeUnreachable
		if e.Connected > e.Dialed {
			t.Fatal("connected exceeds dialed")
		}
	}
	if res.TotalUniqueUnreachable != prev {
		t.Errorf("total unreachable %d != final cumulative %d",
			res.TotalUniqueUnreachable, prev)
	}
	// Scanner must be inactive before its start experiment.
	for _, e := range res.Experiments[:3] {
		if e.Responsive != 0 {
			t.Error("responsive counts before scanner start")
		}
	}
	if res.TotalResponsive == 0 {
		t.Error("no responsive nodes found after scanner start")
	}
	// ADDR composition near the planted 14.9%.
	if res.MeanAddrReachableShare < 0.08 || res.MeanAddrReachableShare > 0.25 {
		t.Errorf("addr reachable share = %.3f, want ≈0.149", res.MeanAddrReachableShare)
	}
	// Port share near the planted 88.5%.
	if res.DefaultPortShareUnreachable < 0.83 || res.DefaultPortShareUnreachable > 0.94 {
		t.Errorf("default-port share = %.3f, want ≈0.885", res.DefaultPortShareUnreachable)
	}
	// Censuses populated for all three classes.
	if len(res.Censuses) != 3 {
		t.Fatalf("censuses = %d, want 3", len(res.Censuses))
	}
	for _, c := range res.Censuses {
		if c.Total == 0 {
			t.Errorf("census %q empty", c.Class)
		}
		if c.CoverageFor50Pct <= 0 {
			t.Errorf("census %q coverage = %d", c.Class, c.CoverageFor50Pct)
		}
	}
}

func TestCrawlSeriesFindsMalicious(t *testing.T) {
	p := netgen.DefaultParams(6, 0.2)
	res, err := RunCrawlSeries(context.Background(), CrawlSeriesConfig{
		Params:      p,
		Experiments: 3,
		// Skip the scan: this test only needs the flooder detection.
		ScannerStartExperiment: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Malicious) == 0 {
		t.Fatal("no malicious nodes detected")
	}
	// Sorted by flood volume.
	for i := 1; i < len(res.Malicious); i++ {
		if res.Malicious[i].UnreachableSent > res.Malicious[i-1].UnreachableSent {
			t.Fatal("malicious records not sorted by volume")
		}
	}
	// A plurality should sit in AS3320 (43/73 in the paper).
	in3320 := 0
	for _, m := range res.Malicious {
		if m.ASN == 3320 {
			in3320++
		}
	}
	if in3320 == 0 {
		t.Error("no flooders found in AS3320")
	}
}

func TestRunConnExperiment(t *testing.T) {
	res, err := RunConnExperiment(context.Background(), ConnExperimentConfig{
		Seed:              7,
		LivePeers:         30,
		Duration:          260 * time.Second,
		PeerChurnPer10Min: 2,
		Runs:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	for i, r := range res.Runs {
		if len(r.Samples) == 0 {
			t.Fatalf("run %d: no samples", i)
		}
		if r.Attempts == 0 {
			t.Fatalf("run %d: no attempts", i)
		}
		for _, s := range r.Samples {
			if s < 0 || s > node.DefaultMaxOutbound+node.DefaultMaxFeelers {
				t.Fatalf("run %d: sample %d out of range", i, s)
			}
		}
	}
	// The gossip mix must keep the success rate far below 1 (paper:
	// 11.2%).
	if res.SuccessRate > 0.5 {
		t.Errorf("success rate = %.3f; dead addresses should dominate", res.SuccessRate)
	}
	if res.SuccessRate <= 0 {
		t.Error("success rate = 0; nothing succeeded")
	}
	if res.MeanConns <= 0 {
		t.Error("mean connections = 0")
	}
}

func TestRunResync(t *testing.T) {
	res, err := RunResync(context.Background(), ConnExperimentConfig{
		Seed:      8,
		LivePeers: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ToFirstConnection <= 0 {
		t.Error("first connection time not recorded")
	}
	if res.ToSynced < res.ToFirstConnection {
		t.Error("synced before first connection")
	}
	if res.ToSynced > 30*time.Minute {
		t.Errorf("resync took %v, paper measured ~11 min", res.ToSynced)
	}
}

func TestRunChurnFigs(t *testing.T) {
	res, err := RunChurnFigs(context.Background(), ChurnFigsConfig{
		Params: netgen.DefaultParams(9, 0.02),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueAddresses == 0 {
		t.Fatal("empty matrix")
	}
	if res.PersistentCount <= 0 {
		t.Error("no persistent nodes")
	}
	if res.MeanLifetime <= 0 {
		t.Error("zero mean lifetime")
	}
	if len(res.DailyDepartures) != 59 {
		t.Errorf("daily series = %d pairs, want 59", len(res.DailyDepartures))
	}
	if res.MeanDailyDepartures <= 0 || res.MeanDailyArrivals <= 0 {
		t.Error("no churn measured")
	}
	// Departure share should be in the vicinity of the paper's 8.6%.
	if res.DepartureSharePct < 2 || res.DepartureSharePct > 20 {
		t.Errorf("departure share = %.1f%%, want ≈8.6%%", res.DepartureSharePct)
	}
}

func TestRunSyncDepartures(t *testing.T) {
	res, err := RunSyncDepartures(context.Background(), 10, 0.05, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate2019 <= 0 || res.Rate2020 <= 0 {
		t.Fatal("zero departure rates")
	}
	if res.Ratio < 1.2 {
		t.Errorf("2020/2019 ratio = %.2f, want ≈2", res.Ratio)
	}
}

func TestRunAblation(t *testing.T) {
	base := smallPropConfig(11)
	base.Duration = 45 * time.Minute
	base.ChurnDeparturesPer10Min = 0.5
	variants := []AblationVariant{
		{Name: "stock", RelayPolicy: node.RoundRobin},
		{Name: "priority", RelayPolicy: node.PriorityOutbound},
		{Name: "broadcast", RelayPolicy: node.Broadcast},
	}
	res, err := RunAblation(context.Background(), base, variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant.Name] = r
		if r.MeanObservedSync <= 0 {
			t.Errorf("%s: no observed sync", r.Variant.Name)
		}
	}
	// Broadcast (the idealized model) must not be slower than stock
	// round-robin at relaying blocks.
	if byName["broadcast"].MeanBlockRelay > byName["stock"].MeanBlockRelay {
		t.Errorf("broadcast relay %v slower than stock %v",
			byName["broadcast"].MeanBlockRelay, byName["stock"].MeanBlockRelay)
	}
}

func TestSummarizeRelays(t *testing.T) {
	if got := SummarizeRelays(nil); got.Count != 0 {
		t.Error("empty summary should have zero count")
	}
	obs := []RelayObservation{
		{LastDelay: time.Second},
		{LastDelay: 2 * time.Second},
		{LastDelay: 3 * time.Second},
	}
	s := SummarizeRelays(obs)
	if s.Count != 3 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Mean < 1.99 || s.Mean > 2.01 {
		t.Errorf("mean = %v, want 2", s.Mean)
	}
	if s.Max != 3 {
		t.Errorf("max = %v, want 3", s.Max)
	}
}

func TestStockVariantsCoverRefinements(t *testing.T) {
	vs := StockVariants()
	if len(vs) < 5 {
		t.Fatalf("variants = %d, want >= 5", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"stock", "tried-only-addr", "17d-horizon",
		"priority-relay", "all-refinements"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}
