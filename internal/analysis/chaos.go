package analysis

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/faults"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// This file implements the chaos experiment: a mesh of full nodes
// subjected to the fault layer's message loss, latency spikes,
// duplication, a partition with heal, and a crash/restart wave. The
// measured question is the robustness counterpart of §IV-D: given the
// adversities the paper identifies, do the node-side defences (keepalive,
// stall eviction, reconnect backoff) bring every survivor back to the
// tip, and how long does recovery take once conditions clear?

// ChaosConfig parameterizes the chaos scenario.
type ChaosConfig struct {
	// Seed drives all randomness (network, nodes, and fault schedule).
	Seed int64
	// NumNodes is the full-node population (default 12).
	NumNodes int
	// Duration is the total scenario length (default 40 min).
	Duration time.Duration
	// BlockInterval is the mining cadence at node 0 (default 1 min).
	// Mining stops 5 minutes before the end so the final measurement is
	// not racing an in-flight block.
	BlockInterval time.Duration
	// Drop, Spike, and Duplicate are the link fault probabilities applied
	// from the start until FaultsOffAt (defaults 5%, 5%, 2%).
	Drop, Spike, Duplicate float64
	// PartitionAt/PartitionFor script the partition window (defaults:
	// minute 5, for 5 minutes). PartitionShare is the fraction of nodes
	// isolated from the miner's side (default 0.4).
	PartitionAt    time.Duration
	PartitionFor   time.Duration
	PartitionShare float64
	// CrashAt/CrashFor/CrashCount script the crash wave (defaults:
	// minute 12, 3 minutes down, NumNodes/5 nodes, 30 s stagger).
	CrashAt    time.Duration
	CrashFor   time.Duration
	CrashCount int
	// FaultsOffAt disables the probabilistic faults so the scenario tail
	// converges under clean conditions (default Duration − 15 min).
	FaultsOffAt time.Duration
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.NumNodes == 0 {
		c.NumNodes = 12
	}
	if c.Duration == 0 {
		c.Duration = 40 * time.Minute
	}
	if c.BlockInterval == 0 {
		c.BlockInterval = time.Minute
	}
	if c.Drop == 0 {
		c.Drop = 0.05
	}
	if c.Spike == 0 {
		c.Spike = 0.05
	}
	if c.Duplicate == 0 {
		c.Duplicate = 0.02
	}
	if c.PartitionAt == 0 {
		c.PartitionAt = 5 * time.Minute
	}
	if c.PartitionFor == 0 {
		c.PartitionFor = 5 * time.Minute
	}
	if c.PartitionShare == 0 {
		c.PartitionShare = 0.4
	}
	if c.CrashAt == 0 {
		c.CrashAt = 12 * time.Minute
	}
	if c.CrashFor == 0 {
		c.CrashFor = 3 * time.Minute
	}
	if c.CrashCount == 0 {
		c.CrashCount = c.NumNodes / 5
		if c.CrashCount < 1 {
			c.CrashCount = 1
		}
	}
	if c.FaultsOffAt == 0 {
		c.FaultsOffAt = c.Duration - 15*time.Minute
		if c.FaultsOffAt < c.CrashAt+c.CrashFor {
			c.FaultsOffAt = c.CrashAt + c.CrashFor
		}
	}
	return c
}

// ChaosResult reports the scenario outcome.
type ChaosResult struct {
	// Converged reports whether every node finished synced at the miner's
	// tip.
	Converged bool
	// SyncedNodes of TotalNodes were at the tip with IsSynced at the end.
	SyncedNodes, TotalNodes int
	// MinerHeight is the final chain height at the mining node.
	MinerHeight int32
	// HeightSpread is max−min final height across nodes (0 when
	// converged).
	HeightSpread int32
	// RecoveryTime is how long after the last scripted disruption every
	// node was back at the tip (0 when that never happened).
	RecoveryTime time.Duration
	// FaultCounters is the injector's sorted counter snapshot.
	FaultCounters []obs.NamedValue
	// Metrics is the run's full registry snapshot: scheduler, network,
	// node, and fault metrics in one name-sorted view. MetricsText is
	// its deterministic rendering — two same-seed runs produce
	// byte-identical text (the determinism golden tests pin this).
	Metrics     *obs.Snapshot
	MetricsText string
	// TraceDigest is the event tracer's running digest over every dial,
	// handshake, relay, block-download, and fault event of the run;
	// TraceTotal counts them, TraceDropped counts ring evictions (the
	// digest covers evicted events too). Same-seed runs produce equal
	// digests.
	TraceDigest  string
	TraceTotal   uint64
	TraceDropped uint64
	// Series holds the sim-time metric series sampled every 30 s of
	// virtual time: counter deltas, gauge values, and histogram
	// quantiles for every registry metric. Same-seed runs render it to
	// byte-identical CSV at any worker count.
	Series *obs.SeriesSet
	// Health aggregates every node's robustness counters.
	Health node.HealthStats
	// PersistentShare is the fraction of crash-tracked nodes present in
	// every presence-matrix sample (the Figure 12 observable under
	// scripted churn; < 1 whenever the crash wave ran).
	PersistentShare float64
}

// RunChaos executes the chaos scenario.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	if cfg.NumNodes < 4 {
		return nil, fmt.Errorf("analysis: chaos needs at least 4 nodes, got %d", cfg.NumNodes)
	}
	// One private registry and tracer per run: the snapshot and digest
	// are then pure functions of the seed, never polluted by concurrent
	// experiments.
	reg := obs.NewRegistry()
	net := simnet.New(simnet.Config{Seed: cfg.Seed, Metrics: reg})
	tracer := obs.NewTracer(0, net.Now)
	sched := net.Scheduler()
	sampler := obs.NewSampler(reg, obs.DefaultSeriesCapacity)
	sampler.Tick(net.Now())
	stopSampling := sched.Every(chaosSampleEvery, func() { sampler.Tick(net.Now()) })
	defer stopSampling()
	genesis := chainGenesis("chaos")
	inj := faults.New(net, faults.Config{Seed: cfg.Seed, Default: faults.Profile{
		Drop:      cfg.Drop,
		Spike:     cfg.Spike,
		SpikeMin:  200 * time.Millisecond,
		SpikeMax:  2 * time.Second,
		Duplicate: cfg.Duplicate,
	}, Metrics: reg, Tracer: tracer})

	addrs := make([]netip.AddrPort, cfg.NumNodes)
	for i := range addrs {
		addrs[i] = netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, 4, byte(i >> 8), byte(i)}), 8333)
	}
	seedsFor := func(self netip.AddrPort) []wire.NetAddress {
		var out []wire.NetAddress
		for _, a := range addrs {
			if a != self {
				out = append(out, wire.NetAddress{
					Addr: a, Services: wire.SFNodeNetwork, Timestamp: net.Now(),
				})
			}
		}
		return out
	}
	for _, a := range addrs {
		net.AddFullNode(node.Config{
			Self:      wire.NetAddress{Addr: a, Services: wire.SFNodeNetwork},
			Reachable: true,
			Genesis:   genesis,
			SeedAddrs: seedsFor(a),
			Metrics:   reg,
			Tracer:    tracer,
		}).Start()
	}
	miner := addrs[0]
	epoch := net.Now()

	mineUntil := cfg.Duration - 5*time.Minute
	var mine func()
	mine = func() {
		if h := net.Host(miner); h.Online() && h.Node() != nil {
			_, _ = h.Node().MineBlock(0)
		}
		if net.Now().Sub(epoch)+cfg.BlockInterval < mineUntil {
			sched.After(cfg.BlockInterval, mine)
		}
	}
	sched.After(cfg.BlockInterval, mine)

	// Partition: the isolated share is taken from the tail so the miner
	// (node 0) stays on the majority side.
	isolated := int(float64(cfg.NumNodes) * cfg.PartitionShare)
	if isolated < 1 {
		isolated = 1
	}
	if isolated > cfg.NumNodes-2 {
		isolated = cfg.NumNodes - 2
	}
	split := cfg.NumNodes - isolated
	inj.SchedulePartition(cfg.PartitionAt, cfg.PartitionFor, addrs[:split], addrs[split:])

	// Crash wave from the tail, never the miner.
	crashFrom := cfg.NumNodes - cfg.CrashCount
	if crashFrom < 1 {
		crashFrom = 1
	}
	inj.CrashWave(addrs[crashFrom:], cfg.CrashAt, cfg.CrashFor, 30*time.Second)
	sched.After(cfg.FaultsOffAt, func() { inj.SetEnabled(false) })

	// The last scripted disruption: the final crash's restart.
	lastDisruption := cfg.CrashAt +
		time.Duration(cfg.CrashCount-1)*30*time.Second + cfg.CrashFor
	if h := cfg.PartitionAt + cfg.PartitionFor; h > lastDisruption {
		lastDisruption = h
	}
	atTip := func() bool {
		mh := net.Host(miner)
		if mh.Node() == nil {
			return false
		}
		tip, _ := mh.Node().Chain().Tip()
		for _, a := range addrs {
			h := net.Host(a)
			if !h.Online() || h.Node() == nil {
				return false
			}
			if t, _ := h.Node().Chain().Tip(); t != tip || !h.Node().IsSynced() {
				return false
			}
		}
		return true
	}
	res := &ChaosResult{TotalNodes: cfg.NumNodes}
	var watch func()
	watch = func() {
		if res.RecoveryTime == 0 && net.Now().Sub(epoch) > lastDisruption && atTip() {
			res.RecoveryTime = net.Now().Sub(epoch) - lastDisruption
		}
		if net.Now().Sub(epoch)+15*time.Second < cfg.Duration {
			sched.After(15*time.Second, watch)
		}
	}
	sched.After(15*time.Second, watch)

	if err := sched.RunForCtx(ctx, cfg.Duration); err != nil {
		return nil, err
	}

	tip, minerHeight := net.Host(miner).Node().Chain().Tip()
	res.MinerHeight = minerHeight
	minH, maxH := minerHeight, minerHeight
	for _, a := range addrs {
		h := net.Host(a)
		if !h.Online() || h.Node() == nil {
			continue
		}
		nodeTip, height := h.Node().Chain().Tip()
		if height < minH {
			minH = height
		}
		if height > maxH {
			maxH = height
		}
		if nodeTip == tip && h.Node().IsSynced() {
			res.SyncedNodes++
		}
		hs := h.Node().Health()
		res.Health.PingsSent += hs.PingsSent
		res.Health.StallEvictions += hs.StallEvictions
		res.Health.HandshakeEvictions += hs.HandshakeEvictions
		res.Health.BlockStallEvictions += hs.BlockStallEvictions
		res.Health.BackoffsArmed += hs.BackoffsArmed
	}
	res.HeightSpread = maxH - minH
	res.Converged = res.SyncedNodes == res.TotalNodes
	res.FaultCounters = inj.Counters()
	if m := inj.PresenceMatrix(time.Minute); m.Rows() > 0 {
		res.PersistentShare = float64(m.PersistentCount()) / float64(m.Rows())
		m.Publish(reg)
	}
	tracer.Publish(reg)
	res.Metrics = reg.Snapshot()
	res.MetricsText = res.Metrics.String()
	res.TraceDigest = tracer.Digest()
	res.TraceTotal = tracer.Total()
	res.TraceDropped = tracer.Dropped()
	res.Series = sampler.Set()
	return res, nil
}

// chaosSampleEvery is the chaos scenario's sim-time sampling cadence:
// dense enough to resolve the partition and crash windows on a 40 min
// run, coarse enough that the series stay small.
const chaosSampleEvery = 30 * time.Second
