package analysis

import (
	"context"
	"fmt"
	"time"

	"repro/internal/par"
	"repro/internal/stats"
)

// Fig1Config parameterizes the headline synchronization-contrast
// experiment: two network regimes identical except for churn among
// synchronized nodes, which doubled between 2019 and 2020 (§IV-D).
type Fig1Config struct {
	// Seed drives both regimes (offset for the second).
	Seed int64
	// NumReachable is the per-regime network size. The churn rates below
	// are expressed at this scale; the paper's absolute rates apply to
	// its ~10K-node network.
	NumReachable int
	// Duration is the measured phase per regime.
	Duration time.Duration
	// Churn2019 and Churn2020 are synchronized-node departures per
	// 10 minutes (the paper measured 3.9 and 7.6 on the full network;
	// at reduced scale the same 1:2 ratio is applied to proportionally
	// larger per-node rates so the contrast is resolvable).
	Churn2019 float64
	Churn2020 float64
	// TxPerBlock is the background transaction load.
	TxPerBlock int
	// BlockInterval overrides the mean block gap (10 min default);
	// shorter intervals yield more samples per virtual hour.
	BlockInterval time.Duration
	// Replications runs each regime several times with paired seeds and
	// pools the samples: per-run synchronization means carry ±3-point
	// noise from topology randomness, while the regime *difference* is
	// stable within a pair (default 3).
	Replications int
}

func (c Fig1Config) withDefaults() Fig1Config {
	if c.NumReachable == 0 {
		c.NumReachable = 80
	}
	if c.Duration == 0 {
		c.Duration = 6 * time.Hour
	}
	if c.Churn2019 == 0 {
		c.Churn2019 = 1.0
	}
	if c.Churn2020 == 0 {
		c.Churn2020 = 2.0
	}
	if c.TxPerBlock == 0 {
		c.TxPerBlock = 30
	}
	if c.Replications == 0 {
		c.Replications = 3
	}
	return c
}

// RegimeSync is one year's synchronization distribution.
type RegimeSync struct {
	// Samples are per-block observed synchronization fractions (0–1).
	Samples []float64
	// Mean and Median summarize Samples (paper: 72.02% / 80.38% in
	// 2019, 61.91% / 65.47% in 2020).
	Mean, Median float64
	// Grid and Density trace the kernel density estimate over [0, 1].
	Grid, Density []float64
}

// Fig1Result contrasts the two regimes.
type Fig1Result struct {
	// Y2019 and Y2020 are the regime distributions.
	Y2019, Y2020 RegimeSync
}

// summarizeRegime folds per-block samples into a RegimeSync.
func summarizeRegime(samples []float64) (RegimeSync, error) {
	if len(samples) == 0 {
		return RegimeSync{}, fmt.Errorf("analysis: no synchronization samples")
	}
	s, err := stats.Summarize(samples)
	if err != nil {
		return RegimeSync{}, err
	}
	kde, err := stats.NewKDE(samples, 0)
	if err != nil {
		return RegimeSync{}, err
	}
	grid := stats.Grid(0, 1, 201)
	return RegimeSync{
		Samples: samples,
		Mean:    s.Mean,
		Median:  s.Median,
		Grid:    grid,
		Density: kde.Evaluate(grid),
	}, nil
}

// RunFig1 runs both regimes and returns their synchronization
// distributions. Replications run concurrently (par.Replicate), each on
// its own paired seed and simulator; samples are pooled in replication
// order, so the result is identical to the former sequential loop.
func RunFig1(ctx context.Context, cfg Fig1Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	base := PropagationConfig{
		Seed:          cfg.Seed,
		NumReachable:  cfg.NumReachable,
		Duration:      cfg.Duration,
		TxPerBlock:    cfg.TxPerBlock,
		BlockInterval: cfg.BlockInterval,
	}

	// Within each replication the two regimes run with the same seed:
	// the precomputed block schedule and topology are identical, so the
	// contrast isolates the churn difference (common random numbers).
	// Replications with different seeds are pooled.
	run := func(ctx context.Context, churn float64, seed int64) ([]float64, error) {
		pc := base
		pc.Seed = seed
		pc.ChurnDeparturesPer10Min = churn
		res, err := RunPropagation(ctx, pc)
		if err != nil {
			return nil, err
		}
		return res.ObservedSyncSamples, nil
	}

	rep19 := make([][]float64, cfg.Replications)
	rep20 := make([][]float64, cfg.Replications)
	err := par.Replicate(ctx, cfg.Replications, func(ctx context.Context, r int) error {
		seed := cfg.Seed + int64(r)*7919
		s19, err := run(ctx, cfg.Churn2019, seed)
		if err != nil {
			return fmt.Errorf("analysis: 2019 regime (rep %d): %w", r, err)
		}
		s20, err := run(ctx, cfg.Churn2020, seed)
		if err != nil {
			return fmt.Errorf("analysis: 2020 regime (rep %d): %w", r, err)
		}
		rep19[r], rep20[r] = s19, s20
		return nil
	})
	if err != nil {
		return nil, err
	}
	var samples19, samples20 []float64
	for r := 0; r < cfg.Replications; r++ {
		samples19 = append(samples19, rep19[r]...)
		samples20 = append(samples20, rep20[r]...)
	}
	y19, err := summarizeRegime(samples19)
	if err != nil {
		return nil, err
	}
	y20, err := summarizeRegime(samples20)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Y2019: y19, Y2020: y20}, nil
}
