package analysis

import (
	"context"
	"fmt"
	"time"

	"repro/internal/churn"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// This file implements the §IV-D churn figures over the snapshot-level
// universe: the presence matrix (Figure 12), the daily arrival/departure
// series (Figure 13), and the synchronized-departure contrast between the
// 2019 and 2020 regimes.

// ChurnFigsConfig parameterizes the churn study.
type ChurnFigsConfig struct {
	// Params calibrates the universe (2020 by default).
	Params netgen.Params
	// MatrixInterval is the Figure 12 sampling cadence (daily keeps the
	// matrix readable; the paper sampled at 10 minutes).
	MatrixInterval time.Duration
}

// ChurnFigsResult aggregates Figures 12 and 13.
type ChurnFigsResult struct {
	// Matrix is the Figure 12 presence matrix.
	Matrix *churn.Matrix
	// PersistentCount is the number of always-present nodes
	// (paper: 3,034).
	PersistentCount int
	// MeanLifetime is the average per-node presence (paper: 16.6 days,
	// the basis of the §V 17-day eviction proposal).
	MeanLifetime time.Duration
	// DailyDepartures and DailyArrivals are the Figure 13 series.
	DailyDepartures, DailyArrivals []int
	// MeanDailyDepartures and MeanDailyArrivals summarize them
	// (paper: ≈708 ≈ 8.6% of the network).
	MeanDailyDepartures, MeanDailyArrivals float64
	// DepartureSharePct is departures over the steady network size, in
	// percent (paper: 8.6%).
	DepartureSharePct float64
	// UniqueAddresses is the matrix row count (paper: 28,781).
	UniqueAddresses int
	// Series renders the Figure 13 daily series in the common timeseries
	// shape (churn.daily.departures / churn.daily.arrivals, one point per
	// day from the universe epoch) for CSV sidecars and the HTML report.
	Series *obs.SeriesSet
}

// RunChurnFigs builds the universe, the matrix, and the daily series.
func RunChurnFigs(ctx context.Context, cfg ChurnFigsConfig) (*ChurnFigsResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.MatrixInterval == 0 {
		cfg.MatrixInterval = 24 * time.Hour
	}
	u, err := netgen.Generate(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("analysis: generate universe: %w", err)
	}
	m := churn.FromUniverse(u, cfg.MatrixInterval)
	// Figure 13 is computed from daily snapshots regardless of the
	// matrix cadence.
	daily := m
	if cfg.MatrixInterval != 24*time.Hour {
		daily = churn.FromUniverse(u, 24*time.Hour)
	}
	tr := daily.Transitions()

	res := &ChurnFigsResult{
		Matrix:              m,
		PersistentCount:     m.PersistentCount(),
		MeanLifetime:        m.MeanLifetime(),
		DailyDepartures:     tr.Departures,
		DailyArrivals:       tr.Arrivals,
		MeanDailyDepartures: tr.MeanDepartures(),
		MeanDailyArrivals:   tr.MeanArrivals(),
		UniqueAddresses:     m.Rows(),
	}
	steady := cfg.Params.Scale * float64(cfg.Params.SteadyReachable)
	if steady > 0 {
		res.DepartureSharePct = 100 * res.MeanDailyDepartures / steady
	}
	res.Series = churnSeries(tr)
	return res, nil
}

// churnSeries converts the daily transition counts into the shared
// timeseries shape. Day k is stamped k days after the Unix epoch — the
// universe is synthetic, so only the spacing carries meaning, and a
// fixed origin keeps the CSV rendering deterministic.
func churnSeries(tr *churn.Transitions) *obs.SeriesSet {
	epoch := time.Unix(0, 0).UTC()
	mk := func(name string, counts []int) obs.Series {
		s := obs.Series{Name: name, Points: make([]obs.Point, len(counts))}
		for i, v := range counts {
			s.Points[i] = obs.Point{T: epoch.Add(time.Duration(i+1) * 24 * time.Hour), V: float64(v)}
		}
		return s
	}
	return &obs.SeriesSet{Series: []obs.Series{
		mk("churn.daily.arrivals", tr.Arrivals),
		mk("churn.daily.departures", tr.Departures),
	}}
}

// SyncDepResult contrasts synchronized-node departures between the two
// regimes (§IV-D: 3.9/10 min in 2019 vs 7.6/10 min in 2020).
type SyncDepResult struct {
	// Rate2019 and Rate2020 are mean synchronized departures per
	// sampling interval.
	Rate2019, Rate2020 float64
	// Ratio is Rate2020 / Rate2019 (paper: ≈2).
	Ratio float64
	// Interval is the sampling cadence used.
	Interval time.Duration
}

// RunSyncDepartures measures both regimes at the given cadence (the
// paper's Bitnodes feed is 10-minutely; coarser cadences run faster with
// proportional counts).
func RunSyncDepartures(ctx context.Context, seed int64, scale float64, interval time.Duration) (*SyncDepResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if interval == 0 {
		interval = 10 * time.Minute
	}
	u19, err := netgen.Generate(netgen.Params2019(seed, scale))
	if err != nil {
		return nil, fmt.Errorf("analysis: 2019 universe: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	u20, err := netgen.Generate(netgen.DefaultParams(seed, scale))
	if err != nil {
		return nil, fmt.Errorf("analysis: 2020 universe: %w", err)
	}
	res := &SyncDepResult{
		Rate2019: churn.SyncedDepartures(u19, interval),
		Rate2020: churn.SyncedDepartures(u20, interval),
		Interval: interval,
	}
	if res.Rate2019 > 0 {
		res.Ratio = res.Rate2020 / res.Rate2019
	}
	return res, nil
}
