package analysis

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/node"
	"repro/internal/par"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// This file implements the §IV-B connection experiments: the outgoing
// connection stability trace (Figure 6) and the connection attempt
// success-rate experiments (Figure 7), plus the restart/resync
// measurement from §IV-D.

// ConnExperimentConfig parameterizes the single-node connection
// experiments.
type ConnExperimentConfig struct {
	// Seed drives all randomness.
	Seed int64
	// LivePeers is the number of live reachable nodes in the background
	// network.
	LivePeers int
	// DeadAddrs is the number of dead/unreachable addresses mixed into
	// the observer's address manager; the paper's tables hold 85.1%
	// such addresses.
	DeadAddrs int
	// SeedsPerNode sizes the observer's initial address tables.
	SeedsPerNode int
	// LiveShare is the live fraction among the observer's seeds
	// (paper: the ADDR mix of 14.9%).
	LiveShare float64
	// Duration is the observation window (Figure 6: 260 s;
	// Figure 7: 5 min per run).
	Duration time.Duration
	// SampleEvery is the Figure 6 sampling cadence (1 s).
	SampleEvery time.Duration
	// PeerChurnPer10Min stops/restarts background peers to destabilize
	// the observer's connections.
	PeerChurnPer10Min float64
	// ConnDropEvery injects link failures: at this mean interval one of
	// the observer's outbound connections is torn down (the peer host
	// bounces). The paper attributes connection drops to departures
	// *and* link failures (§IV-B); without injection a short observation
	// window sees too few drops.
	ConnDropEvery time.Duration
	// ObserverWarmup lets the observer run before the sampled window
	// (Figure 6 observes an established node; Figure 7 measures from a
	// cold start and uses zero warmup).
	ObserverWarmup time.Duration
	// TriedOnlyGetAddr and AddrHorizon apply the §V refinements to every
	// node in the experiment (background peers and observer), so the
	// ablation can measure their effect on cold-start success.
	TriedOnlyGetAddr bool
	AddrHorizon      time.Duration
	// Policies is the intervention policy set applied to every node
	// (background peers and observer). Policies fold over the legacy
	// knobs above; empty means stock behaviour.
	Policies node.PolicySet
	// StaleTried seeds the observer's tried table with this many dead
	// addresses before measurement, modelling a restarting node whose
	// persisted peers.dat references long-departed peers — without it
	// the fresh tried table is unrealistically healthy and the success
	// rate overshoots the paper's 11.2%.
	StaleTried int
	// Runs repeats the experiment (Figure 7 uses 5 runs).
	Runs int
}

func (c ConnExperimentConfig) withDefaults() ConnExperimentConfig {
	if c.LivePeers == 0 {
		c.LivePeers = 60
	}
	if c.SeedsPerNode == 0 {
		c.SeedsPerNode = 300
	}
	if c.LiveShare == 0 {
		c.LiveShare = 0.149
	}
	if c.DeadAddrs == 0 {
		c.DeadAddrs = int(float64(c.LivePeers)/c.LiveShare) - c.LivePeers
	}
	if c.Duration == 0 {
		c.Duration = 260 * time.Second
	}
	if c.StaleTried == 0 {
		c.StaleTried = 120
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = time.Second
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	return c
}

// ConnRun is one experiment run.
type ConnRun struct {
	// Samples traces the observer's outgoing connection count
	// (outbound + feelers, Figure 6's 2–10 range).
	Samples []int
	// Attempts and Successes are the Figure 7 observables.
	Attempts, Successes int
}

// ConnExperimentResult aggregates the runs.
type ConnExperimentResult struct {
	// Runs holds each run's trace and dial counts.
	Runs []ConnRun
	// MeanConns is the average sampled connection count (paper: 6.67).
	MeanConns float64
	// FracBelowTarget is the fraction of samples under 8 connections
	// (paper: ≈60%).
	FracBelowTarget float64
	// SuccessRate is successes/attempts across runs (paper: 11.2%).
	SuccessRate float64
}

// RunConnExperiment builds a background network, then starts a fresh
// observer node whose address tables match the measured gossip mix, and
// watches its outgoing connections — the §IV-B experiments. Runs execute
// concurrently (par.Replicate), each on its own paired seed and
// simulator; results land in run-indexed slots and the aggregates are
// folded afterwards, so the result matches the former sequential loop.
func RunConnExperiment(ctx context.Context, cfg ConnExperimentConfig) (*ConnExperimentResult, error) {
	cfg = cfg.withDefaults()
	if cfg.LivePeers < 8 {
		return nil, fmt.Errorf("analysis: need at least 8 live peers, got %d", cfg.LivePeers)
	}
	res := &ConnExperimentResult{Runs: make([]ConnRun, cfg.Runs)}

	err := par.Replicate(ctx, cfg.Runs, func(ctx context.Context, run int) error {
		seed := cfg.Seed + int64(run)*1000
		rng := rand.New(rand.NewSource(seed))
		net := simnet.New(simnet.Config{
			Seed:    seed,
			Latency: simnet.HashLatency(20*time.Millisecond, 120*time.Millisecond),
		})
		sched := net.Scheduler()
		genesis := chainGenesis("conn-experiment")

		live := make([]netip.AddrPort, cfg.LivePeers)
		var liveHosts []*simnet.Host
		for i := range live {
			live[i] = netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}), 8333)
			liveHosts = append(liveHosts, nil) // placeholder; filled below
		}
		dead := make([]netip.AddrPort, cfg.DeadAddrs)
		for i := range dead {
			dead[i] = netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{172, 20, byte(i >> 8), byte(i)}), 8333)
		}
		// Background peers live with the same polluted gossip the paper
		// measured: their tables (and therefore their ADDR responses to
		// the observer) are dominated by dead addresses.
		for i := range live {
			h := net.AddFullNode(node.Config{
				Self:             wire.NetAddress{Addr: live[i], Services: wire.SFNodeNetwork},
				Reachable:        true,
				Genesis:          genesis,
				TriedOnlyGetAddr: cfg.TriedOnlyGetAddr,
				AddrHorizon:      cfg.AddrHorizon,
				Policies:         cfg.Policies,
				SeedAddrs:        seedSample(rng, live, dead, 150, cfg.LiveShare, live[i], net.Now()),
			})
			h.Start()
			liveHosts[i] = h
		}
		// Let the background network interconnect; with an 85% dead mix
		// this takes a while, exactly as in the live network.
		if err := sched.RunForCtx(ctx, 10*time.Minute); err != nil {
			return err
		}

		// Background churn destabilizes the observer's connections.
		if cfg.PeerChurnPer10Min > 0 {
			gap := time.Duration(float64(10*time.Minute) / cfg.PeerChurnPer10Min)
			var churnTick func()
			churnTick = func() {
				h := liveHosts[rng.Intn(len(liveHosts))]
				if h.Online() {
					h.Stop()
					sched.After(5*time.Minute, h.Start)
				}
				sched.After(time.Duration(rng.ExpFloat64()*float64(gap)), churnTick)
			}
			sched.After(0, churnTick)
		}

		// The observer starts now, with gossip-mix address tables.
		observerAddr := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 9, 9}), 8333)
		observer := net.AddFullNode(node.Config{
			Self:             wire.NetAddress{Addr: observerAddr, Services: wire.SFNodeNetwork},
			Reachable:        true,
			Genesis:          genesis,
			TriedOnlyGetAddr: cfg.TriedOnlyGetAddr,
			AddrHorizon:      cfg.AddrHorizon,
			Policies:         cfg.Policies,
			SeedAddrs: seedSample(rng, live, dead, cfg.SeedsPerNode, cfg.LiveShare,
				observerAddr, net.Now()),
		})
		observer.Start()
		seedStaleTried(rng, observer.Node(), dead, live, cfg.StaleTried, net.Now())
		hostByAddr := make(map[netip.AddrPort]*simnet.Host, len(liveHosts))
		for _, h := range liveHosts {
			hostByAddr[h.Addr()] = h
		}
		if cfg.ConnDropEvery > 0 {
			var dropTick func()
			dropTick = func() {
				if n := observer.Node(); n != nil {
					if peers := n.PeerAddrs(node.Outbound); len(peers) > 0 {
						if h := hostByAddr[peers[rng.Intn(len(peers))]]; h != nil && h.Online() {
							h.Stop()
							sched.After(90*time.Second, h.Start)
						}
					}
				}
				sched.After(time.Duration(rng.ExpFloat64()*float64(cfg.ConnDropEvery)), dropTick)
			}
			sched.After(time.Duration(rng.ExpFloat64()*float64(cfg.ConnDropEvery)), dropTick)
		}
		if cfg.ObserverWarmup > 0 {
			if err := sched.RunForCtx(ctx, cfg.ObserverWarmup); err != nil {
				return err
			}
		}

		cr := ConnRun{}
		measureStartAttempts, measureStartSuccesses := 0, 0
		if n := observer.Node(); n != nil {
			measureStartAttempts, measureStartSuccesses = n.DialStats()
		}
		end := net.Now().Add(cfg.Duration)
		var sample func()
		sample = func() {
			if !net.Now().Before(end) {
				return
			}
			if n := observer.Node(); n != nil {
				out, _, feelers := n.ConnCounts()
				cr.Samples = append(cr.Samples, out+feelers)
			}
			sched.After(cfg.SampleEvery, sample)
		}
		sched.After(0, sample)
		if err := sched.RunUntilCtx(ctx, end); err != nil {
			return err
		}

		if n := observer.Node(); n != nil {
			a, su := n.DialStats()
			cr.Attempts, cr.Successes = a-measureStartAttempts, su-measureStartSuccesses
		}
		res.Runs[run] = cr
		return nil
	})
	if err != nil {
		return nil, err
	}

	var attempts, successes, sampleSum, sampleCount, below int
	for _, r := range res.Runs {
		attempts += r.Attempts
		successes += r.Successes
		for _, s := range r.Samples {
			sampleSum += s
			sampleCount++
			if s < node.DefaultMaxOutbound {
				below++
			}
		}
	}
	if attempts > 0 {
		res.SuccessRate = float64(successes) / float64(attempts)
	}
	if sampleCount > 0 {
		res.MeanConns = float64(sampleSum) / float64(sampleCount)
		res.FracBelowTarget = float64(below) / float64(sampleCount)
	}
	return res, nil
}

// seedStaleTried plants tried-table entries that mostly point at departed
// peers: the address manager state a node restarts with after its peers
// churned away (≈85% of tried entries go stale at the paper's measured
// churn).
func seedStaleTried(rng *rand.Rand, n *node.Node, dead, live []netip.AddrPort,
	count int, now time.Time) {
	if n == nil || count <= 0 || len(dead) == 0 {
		return
	}
	am := n.AddrMan()
	for i := 0; i < count; i++ {
		var a netip.AddrPort
		if rng.Float64() < 0.10 && len(live) > 0 {
			a = live[rng.Intn(len(live))]
		} else {
			a = dead[rng.Intn(len(dead))]
		}
		am.Add([]wire.NetAddress{{
			Addr: a, Services: wire.SFNodeNetwork, Timestamp: now,
		}}, a.Addr())
		am.Good(a)
	}
}

// gossipOnlineFraction is the share of gossiped reachable addresses that
// are still online when dialed: the network gossips ~50% more reachable
// addresses than are concurrently up (28,781 uniques against ~10K online
// in the paper's data), so a "reachable" ADDR entry is dead about a third
// of the time.
const gossipOnlineFraction = 0.67

// seedSample builds a seed list mixing live and dead addresses at the
// given live share (discounted by gossipOnlineFraction).
func seedSample(rng *rand.Rand, live, dead []netip.AddrPort, n int,
	liveShare float64, self netip.AddrPort, now time.Time) []wire.NetAddress {
	out := make([]wire.NetAddress, 0, n)
	effective := liveShare
	if len(dead) > 0 && liveShare < 1 {
		effective = liveShare * gossipOnlineFraction
	}
	for len(out) < n {
		var a netip.AddrPort
		if len(dead) == 0 || rng.Float64() < effective {
			a = live[rng.Intn(len(live))]
		} else {
			a = dead[rng.Intn(len(dead))]
		}
		if a == self {
			continue
		}
		out = append(out, wire.NetAddress{
			Addr: a, Services: wire.SFNodeNetwork, Timestamp: now,
		})
	}
	return out
}

// ResyncResult measures a restarted node's recovery (§IV-D: the paper
// measured 11 min 14 s to resynchronize and resume relaying).
type ResyncResult struct {
	// ToFirstConnection is the time until the first outbound handshake.
	ToFirstConnection time.Duration
	// ToSynced is the time until IBD completed.
	ToSynced time.Duration
	// ToFullSlots is the time until all 8 outbound slots filled (0 if
	// never within the window).
	ToFullSlots time.Duration
}

// RunResync restarts a node inside a live network and measures its
// recovery milestones.
func RunResync(ctx context.Context, cfg ConnExperimentConfig) (*ResyncResult, error) {
	cfg = cfg.withDefaults()
	if cfg.LivePeers < 8 {
		return nil, fmt.Errorf("analysis: need at least 8 live peers, got %d", cfg.LivePeers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := simnet.New(simnet.Config{
		Seed:    cfg.Seed,
		Latency: simnet.HashLatency(20*time.Millisecond, 120*time.Millisecond),
	})
	sched := net.Scheduler()
	genesis := chainGenesis("resync")

	live := make([]netip.AddrPort, cfg.LivePeers)
	var hosts []*simnet.Host
	for i := range live {
		live[i] = netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, 2, byte(i >> 8), byte(i)}), 8333)
		h := net.AddFullNode(node.Config{
			Self:      wire.NetAddress{Addr: live[i], Services: wire.SFNodeNetwork},
			Reachable: true,
			Genesis:   genesis,
			SeedAddrs: seedSample(rng, live, nil, 20, 1.0, live[i], net.Now()),
		})
		h.Start()
		hosts = append(hosts, h)
	}
	dead := make([]netip.AddrPort, cfg.DeadAddrs)
	for i := range dead {
		dead[i] = netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{172, 21, byte(i >> 8), byte(i)}), 8333)
	}
	if err := sched.RunForCtx(ctx, time.Minute); err != nil {
		return nil, err
	}
	// Build some chain history the restarted node must catch up on.
	// (The restarted observer below also gets a stale tried table, the
	// address-manager state a real restart inherits.)
	for i := 0; i < 12; i++ {
		h := hosts[rng.Intn(len(hosts))]
		sched.After(0, func() {
			if n := h.Node(); n != nil {
				_, _ = n.MineBlock(0)
			}
		})
		if err := sched.RunForCtx(ctx, 30*time.Second); err != nil {
			return nil, err
		}
	}

	res := &ResyncResult{}
	restartAt := net.Now()
	observerAddr := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 9, 8}), 8333)
	var observer *simnet.Host
	observer = net.AddFullNode(node.Config{
		Self:      wire.NetAddress{Addr: observerAddr, Services: wire.SFNodeNetwork},
		Reachable: true,
		Genesis:   genesis,
		// Bitcoin Core restarts dial serially (ThreadOpenConnections):
		// most of the paper's 11-minute recovery is spent here.
		MaxPendingDials: 1,
		SeedAddrs: seedSample(rng, live, dead, cfg.SeedsPerNode, cfg.LiveShare,
			observerAddr, net.Now()),
		Sink: node.SinkFunc(func(ev node.Event) {
			switch ev.Type {
			case node.EvHandshake:
				if ev.Dir == node.Outbound && res.ToFirstConnection == 0 {
					res.ToFirstConnection = ev.Time.Sub(restartAt)
				}
			case node.EvSyncDone:
				if res.ToSynced == 0 {
					res.ToSynced = ev.Time.Sub(restartAt)
				}
			}
		}),
	})
	observer.Start()
	seedStaleTried(rng, observer.Node(), dead, live, cfg.StaleTried, net.Now())

	end := net.Now().Add(30 * time.Minute)
	var watch func()
	watch = func() {
		if !net.Now().Before(end) {
			return
		}
		if n := observer.Node(); n != nil && res.ToFullSlots == 0 {
			if out, _, _ := n.ConnCounts(); out >= node.DefaultMaxOutbound {
				res.ToFullSlots = net.Now().Sub(restartAt)
			}
		}
		sched.After(time.Second, watch)
	}
	sched.After(0, watch)
	if err := sched.RunUntilCtx(ctx, end); err != nil {
		return nil, err
	}

	if res.ToSynced == 0 {
		return nil, fmt.Errorf("analysis: node failed to resync within 30 minutes")
	}
	return res, nil
}
