package analysis

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/crawler"
	"repro/internal/estimate"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
)

// This file implements the estimator validation lab (ROADMAP item 4,
// the fig_est_* family): the Grundmann unreachable-population and
// peer-degree estimators run as observers on crawls over universes
// whose true population and true per-station out-degree are known, and
// their error is reported across a churn × flooder × NAT-mix grid —
// an experiment family no live-network measurement could produce.

// EstFigsConfig parameterizes the estimator sweep.
type EstFigsConfig struct {
	// Base is the universe calibration every grid cell derives from.
	// Each cell overrides the churn, flooder, and responsive-mix knobs,
	// reseeds itself deterministically from Base.Seed, and truncates the
	// horizon to Rounds crawl intervals.
	Base netgen.Params
	// Rounds is the number of crawl experiments per cell.
	Rounds int
	// Workers is the fan-out width across grid cells (0 = GOMAXPROCS);
	// each cell's inner crawl fans out with the same width. Results are
	// byte-identical at any width: cells land in private slots merged in
	// grid order, and the crawl itself is order-invariant.
	Workers int
}

// EstCell is one grid cell's estimator-error outcome. All means are
// across the cell's rounds (population) or across every observed
// source in every round (degree); relative errors use the
// zero-observation-safe estimate.RelativeError convention.
type EstCell struct {
	// Name is the compact cell label ("low-f0-r15": low churn, no
	// flooders, 15% responsive mix).
	Name string
	// Churn labels the churn regime ("low" or "high").
	Churn string
	// Flooders is the unscaled malicious-node count planted in the cell.
	Flooders int
	// ResponsiveMix is the NAT/silent split of the unreachable
	// population.
	ResponsiveMix float64
	// Seed is the cell's derived universe seed.
	Seed int64
	// Rounds is the number of crawl rounds run.
	Rounds int

	// PopTruthMean and PopEstMean average the true gossip-visible
	// unreachable population and its announcement-recurrence estimate
	// over the rounds; PopRelErr is the mean per-round relative error.
	PopTruthMean, PopEstMean, PopRelErr float64
	// Observations is the total number of counted announcement draws.
	Observations int

	// DegTruthMean and DegEstMean average the true distinct-address
	// degree and its address-return-sampling estimate over every
	// (source, round) pair; DegRelErr is the mean per-source relative
	// error and DegRatioRelErr the same for the single-exchange ratio
	// probe.
	DegTruthMean, DegEstMean, DegRelErr, DegRatioRelErr float64
	// Sources is the number of (source, round) pairs measured.
	Sources int
}

// EstFigsResult aggregates the sweep.
type EstFigsResult struct {
	// Cells holds the grid in deterministic grid order (churn-major).
	Cells []EstCell
	// Series holds per-round error time-series, cell-qualified
	// (est.pop.relerr.<cell>, est.deg.relerr.<cell>, …); the first cell
	// additionally carries the est.* counter-delta series from its
	// metrics registry.
	Series *obs.SeriesSet
}

// estCellSpec is one point of the sweep grid.
type estCellSpec struct {
	churn    string
	flooders bool
	respMix  float64
}

// estGrid returns the churn × flooder × NAT-mix grid in deterministic
// order.
func estGrid() []estCellSpec {
	var out []estCellSpec
	for _, churn := range []string{"low", "high"} {
		for _, flooders := range []bool{false, true} {
			for _, mix := range []float64{0.15, 0.40} {
				out = append(out, estCellSpec{churn: churn, flooders: flooders, respMix: mix})
			}
		}
	}
	return out
}

// cellParams derives one cell's universe calibration.
func cellParams(base netgen.Params, spec estCellSpec, idx, rounds int) netgen.Params {
	p := base
	// Deterministic per-cell seed: cells are independent universes, not
	// replications of one.
	p.Seed = base.Seed + int64(idx+1)*7919
	p.Horizon = time.Duration(rounds) * p.CrawlInterval
	if spec.churn == "low" {
		// The 2019-style regime: longer sessions, fewer flappers, half
		// the arrival churn on both sides of the reachability split.
		p.MeanSessionOn = 24 * 24 * time.Hour
		p.MeanSessionOff = 48 * 24 * time.Hour
		p.FlapperFraction = 0.06
		p.FreshPerDay = 90
		p.UnreachablePerDay = base.UnreachablePerDay / 2
	}
	if !spec.flooders {
		p.MaliciousCount = 0
		p.MaliciousInAS3320 = 0
		p.MaliciousHeavyCount = 0
	}
	p.ResponsiveFraction = spec.respMix
	return p
}

// cellName renders the compact cell label.
func cellName(spec estCellSpec, p netgen.Params) string {
	return fmt.Sprintf("%s-f%d-r%.0f", spec.churn, p.MaliciousCount, spec.respMix*100)
}

// RunEstFigs runs the estimator sweep: every grid cell generates its
// universe, runs Rounds crawls with an estimate.Collector attached
// through the crawler's Observer seam, and scores both estimators
// against the simulator's ground truth.
func RunEstFigs(ctx context.Context, cfg EstFigsConfig) (*EstFigsResult, error) {
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	grid := estGrid()
	cells := make([]EstCell, len(grid))
	sets := make([]*obs.SeriesSet, len(grid))
	err := par.ForEach(ctx, par.Workers(cfg.Workers), len(grid), func(ctx context.Context, i int) error {
		cell, set, err := runEstCell(ctx, cfg, grid[i], i)
		if err != nil {
			return fmt.Errorf("analysis: est cell %d (%s): %w", i, grid[i].churn, err)
		}
		cells[i], sets[i] = cell, set
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &EstFigsResult{Cells: cells, Series: obs.MergeSeriesSets(sets...)}, nil
}

// runEstCell runs one grid cell.
func runEstCell(ctx context.Context, cfg EstFigsConfig, spec estCellSpec, idx int) (EstCell, *obs.SeriesSet, error) {
	params := cellParams(cfg.Base, spec, idx, cfg.Rounds)
	cell := EstCell{
		Name:          cellName(spec, params),
		Churn:         spec.churn,
		Flooders:      params.MaliciousCount,
		ResponsiveMix: spec.respMix,
		Seed:          params.Seed,
		Rounds:        cfg.Rounds,
	}
	u, err := netgen.Generate(params)
	if err != nil {
		return cell, nil, err
	}

	// The first cell carries a metrics registry so the est.* counter
	// deltas land in the merged series exactly once; qualified per-cell
	// series never collide across cells. The registry is deliberately
	// NOT shared with the crawler: its crawl.workers gauge reflects the
	// fan-out width and would break worker-count invariance.
	var reg *obs.Registry
	if idx == 0 {
		reg = obs.NewRegistry()
	}
	sampler := obs.NewSampler(reg, 0)

	var popRelSum float64
	var degTruthSum, degEstSum, degRelSum, degRatioRelSum float64
	for i := 0; i < cfg.Rounds; i++ {
		if err := ctx.Err(); err != nil {
			return cell, nil, err
		}
		at := params.Epoch.Add(time.Duration(i) * params.CrawlInterval)
		view := crawler.NewUniverseView(u, at)
		seedView := u.SeedViewAt(at)
		targets := crawler.TargetsOf(seedView)
		known := crawler.ReachableReference(seedView)

		// Fresh collector per round: books are resampled every crawl
		// interval and the population churns, so each round is an
		// independent measurement of that round's truth.
		col := estimate.NewCollector(estimate.Config{
			IsReachable: func(a netip.AddrPort) bool { _, ok := known[a]; return ok },
			Metrics:     reg,
		})
		c := crawler.New(crawler.Config{
			Workers:  cfg.Workers,
			Index:    u.Index,
			Observer: func(ex crawler.Exchange) { col.Exchange(ex.Source, ex.Addrs) },
		}, view)
		if _, err := c.Crawl(ctx, at, targets, known); err != nil {
			return cell, nil, err
		}

		// Population scoring against the true visible census.
		popTruth := float64(view.VisibleCount())
		popEst := col.PopulationEstimate()
		popRel := estimate.RelativeError(popEst, popTruth)
		cell.PopTruthMean += popTruth
		cell.PopEstMean += popEst
		popRelSum += popRel
		cell.Observations += col.Pop.Total()

		// Degree scoring: every crawled source against its true
		// distinct-address book degree at this round.
		online := u.OnlineReachable(at)
		visible := u.VisibleUnreachable(at)
		for _, sd := range col.Deg.Estimates() {
			st := u.ByAddr(sd.Source)
			if st == nil {
				continue
			}
			truth := float64(u.TrueDegreeFrom(st, at, online, visible))
			degTruthSum += truth
			degEstSum += sd.Estimate
			degRelSum += estimate.RelativeError(sd.Estimate, truth)
			degRatioRelSum += estimate.RelativeError(sd.Ratio, truth)
			cell.Sources++
		}

		sampler.Observe(at, "est.pop.truth."+cell.Name, popTruth)
		sampler.Observe(at, "est.pop.estimate."+cell.Name, popEst)
		sampler.Observe(at, "est.pop.relerr."+cell.Name, popRel)
		if cell.Sources > 0 {
			sampler.Observe(at, "est.deg.relerr."+cell.Name, degRelSum/float64(cell.Sources))
		}
		sampler.Tick(at)
	}

	r := float64(cell.Rounds)
	cell.PopTruthMean /= r
	cell.PopEstMean /= r
	cell.PopRelErr = popRelSum / r
	if cell.Sources > 0 {
		n := float64(cell.Sources)
		cell.DegTruthMean = degTruthSum / n
		cell.DegEstMean = degEstSum / n
		cell.DegRelErr = degRelSum / n
		cell.DegRatioRelErr = degRatioRelSum / n
	}
	return cell, sampler.Set(), nil
}
