package asmap

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestNewDistributionErrors(t *testing.T) {
	if _, err := NewDistribution(nil); err == nil {
		t.Error("empty weights: want error")
	}
	if _, err := NewDistribution(map[uint32]float64{1: 0, 2: -3}); err == nil {
		t.Error("non-positive weights: want error")
	}
}

func TestDistributionSampleFrequencies(t *testing.T) {
	d, err := NewDistribution(map[uint32]float64{
		100: 0.7,
		200: 0.2,
		300: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumASes() != 3 {
		t.Fatalf("NumASes = %d, want 3", d.NumASes())
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[uint32]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	frac100 := float64(counts[100]) / n
	frac200 := float64(counts[200]) / n
	frac300 := float64(counts[300]) / n
	if frac100 < 0.67 || frac100 > 0.73 {
		t.Errorf("AS100 frequency = %.3f, want ~0.7", frac100)
	}
	if frac200 < 0.17 || frac200 > 0.23 {
		t.Errorf("AS200 frequency = %.3f, want ~0.2", frac200)
	}
	if frac300 < 0.08 || frac300 > 0.12 {
		t.Errorf("AS300 frequency = %.3f, want ~0.1", frac300)
	}
}

func TestPowerLawWeights(t *testing.T) {
	head := map[uint32]float64{
		3320: 0.08,
		4134: 0.05,
	}
	w := PowerLawWeights(head, 100, 60000, 1.0)
	if len(w) != 102 {
		t.Fatalf("len = %d, want 102", len(w))
	}
	total := 0.0
	for _, v := range w {
		if v <= 0 {
			t.Fatal("non-positive weight in result")
		}
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("total mass = %v, want 1", total)
	}
	// Head shares preserved exactly.
	if w[3320] != 0.08 || w[4134] != 0.05 {
		t.Error("head shares altered")
	}
	// Tail is decreasing in rank.
	if w[60000] <= w[60001] {
		t.Error("tail weights must decrease with rank")
	}
}

func TestPowerLawWeightsFullHead(t *testing.T) {
	head := map[uint32]float64{1: 1.0}
	w := PowerLawWeights(head, 50, 60000, 1.0)
	if len(w) != 1 {
		t.Errorf("no tail expected when head consumes all mass; len = %d", len(w))
	}
}

func TestIPAllocatorRoundTrip(t *testing.T) {
	al := NewIPAllocator(1024)
	asns := []uint32{3320, 4134, 24940}
	seen := map[netip.Addr]uint32{}
	for round := 0; round < 100; round++ {
		for _, asn := range asns {
			ip, err := al.Alloc(asn)
			if err != nil {
				t.Fatal(err)
			}
			if prior, dup := seen[ip]; dup {
				t.Fatalf("duplicate IP %v (AS%d then AS%d)", ip, prior, asn)
			}
			seen[ip] = asn
			got, ok := al.ASNOf(ip)
			if !ok || got != asn {
				t.Fatalf("ASNOf(%v) = %d/%v, want %d", ip, got, ok, asn)
			}
		}
	}
}

func TestIPAllocatorExhaustion(t *testing.T) {
	al := NewIPAllocator(2)
	if _, err := al.Alloc(7); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc(7); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc(7); err == nil {
		t.Error("block exhaustion: want error")
	}
}

func TestASNOfForeignAddress(t *testing.T) {
	al := NewIPAllocator(16)
	if _, ok := al.ASNOf(netip.MustParseAddr("0.0.0.1")); ok {
		t.Error("address below base must not resolve")
	}
	if _, ok := al.ASNOf(netip.MustParseAddr("200.0.0.1")); ok {
		t.Error("unallocated block must not resolve")
	}
	if _, ok := al.ASNOf(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 must not resolve")
	}
}

func TestCensusTopNAndCoverage(t *testing.T) {
	c := NewCensus()
	// AS1: 50 nodes, AS2: 30, AS3: 15, AS4: 5.
	for i := 0; i < 50; i++ {
		c.Add(1)
	}
	for i := 0; i < 30; i++ {
		c.Add(2)
	}
	for i := 0; i < 15; i++ {
		c.Add(3)
	}
	for i := 0; i < 5; i++ {
		c.Add(4)
	}
	if c.Total() != 100 {
		t.Fatalf("Total = %d, want 100", c.Total())
	}
	if c.NumASes() != 4 {
		t.Fatalf("NumASes = %d, want 4", c.NumASes())
	}
	top := c.TopN(2)
	if len(top) != 2 || top[0].ASN != 1 || top[1].ASN != 2 {
		t.Fatalf("TopN(2) = %+v", top)
	}
	if top[0].Pct != 50 {
		t.Errorf("top share = %v, want 50", top[0].Pct)
	}
	if got := c.CoverageCount(0.5); got != 1 {
		t.Errorf("CoverageCount(0.5) = %d, want 1", got)
	}
	if got := c.CoverageCount(0.8); got != 2 {
		t.Errorf("CoverageCount(0.8) = %d, want 2", got)
	}
	if got := c.CoverageCount(0.99); got != 4 {
		t.Errorf("CoverageCount(0.99) = %d, want 4", got)
	}
	if got := c.Share(1); got != 50 {
		t.Errorf("Share(1) = %v, want 50", got)
	}
	if got := c.Share(999); got != 0 {
		t.Errorf("Share(unknown) = %v, want 0", got)
	}
}

func TestCensusEmpty(t *testing.T) {
	c := NewCensus()
	if c.CoverageCount(0.5) != 0 {
		t.Error("empty census coverage should be 0")
	}
	if len(c.TopN(5)) != 0 {
		t.Error("empty census TopN should be empty")
	}
	if c.Share(1) != 0 {
		t.Error("empty census share should be 0")
	}
}

func TestCensusTopNMoreThanASes(t *testing.T) {
	c := NewCensus()
	c.Add(1)
	if got := c.TopN(10); len(got) != 1 {
		t.Errorf("TopN(10) over 1 AS = %d entries, want 1", len(got))
	}
}

func TestCensusDeterministicTieBreak(t *testing.T) {
	c := NewCensus()
	c.Add(30)
	c.Add(10)
	c.Add(20)
	top := c.TopN(3)
	if top[0].ASN != 10 || top[1].ASN != 20 || top[2].ASN != 30 {
		t.Errorf("ties must break by ASN ascending: %+v", top)
	}
}

func TestEndToEndPlacement(t *testing.T) {
	// A sampler + allocator pipeline recovers approximately the planted
	// distribution via a census over bare IPs, which is exactly the
	// Table I analysis flow.
	head := map[uint32]float64{3320: 0.30, 4134: 0.20}
	weights := PowerLawWeights(head, 50, 60000, 1.2)
	d, err := NewDistribution(weights)
	if err != nil {
		t.Fatal(err)
	}
	al := NewIPAllocator(1 << 16)
	rng := rand.New(rand.NewSource(5))
	census := NewCensus()
	var ips []netip.Addr
	for i := 0; i < 20000; i++ {
		asn := d.Sample(rng)
		ip, err := al.Alloc(asn)
		if err != nil {
			t.Fatal(err)
		}
		ips = append(ips, ip)
	}
	for _, ip := range ips {
		asn, ok := al.ASNOf(ip)
		if !ok {
			t.Fatalf("ASNOf(%v) failed", ip)
		}
		census.Add(asn)
	}
	if got := census.Share(3320); got < 27 || got > 33 {
		t.Errorf("AS3320 share = %.2f%%, want ~30%%", got)
	}
	if got := census.Share(4134); got < 17 || got > 23 {
		t.Errorf("AS4134 share = %.2f%%, want ~20%%", got)
	}
	if top := census.TopN(1); top[0].ASN != 3320 {
		t.Errorf("largest AS = %d, want 3320", top[0].ASN)
	}
}

func BenchmarkDistributionSample(b *testing.B) {
	weights := PowerLawWeights(map[uint32]float64{1: 0.1}, 8000, 60000, 1.1)
	d, err := NewDistribution(weights)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
