// Package asmap provides the autonomous-system substrate for the
// simulated network: a weighted AS sampler for placing nodes, a
// deterministic IP allocator that embeds the AS assignment into the
// address space (so analyses can recover ASNs from bare IPs, as the paper
// does with real BGP data), and census/coverage analytics used to
// reproduce Table I and the §IV-A1 routing-attack revision.
package asmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
)

// Distribution is a weighted sampler over ASNs.
type Distribution struct {
	asns []uint32
	cum  []float64 // cumulative weights, last element is the total
}

// NewDistribution builds a sampler from per-ASN weights. Weights need not
// sum to 1; non-positive weights are ignored. It returns an error when no
// positive weight remains.
func NewDistribution(weights map[uint32]float64) (*Distribution, error) {
	asns := make([]uint32, 0, len(weights))
	for asn, w := range weights {
		if w > 0 {
			asns = append(asns, asn)
		}
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("asmap: no positive weights among %d ASNs", len(weights))
	}
	// Deterministic ordering so identical inputs build identical samplers.
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	cum := make([]float64, len(asns))
	total := 0.0
	for i, asn := range asns {
		total += weights[asn]
		cum[i] = total
	}
	return &Distribution{asns: asns, cum: cum}, nil
}

// Sample draws an ASN according to the weights.
func (d *Distribution) Sample(rng *rand.Rand) uint32 {
	target := rng.Float64() * d.cum[len(d.cum)-1]
	idx := sort.SearchFloat64s(d.cum, target)
	if idx >= len(d.asns) {
		idx = len(d.asns) - 1
	}
	return d.asns[idx]
}

// NumASes returns the number of sampleable ASes.
func (d *Distribution) NumASes() int { return len(d.asns) }

// PowerLawWeights builds an AS weight map with a fixed "head" (ASN →
// fractional share, e.g. the paper's Table I top-20) and a Zipf-like tail
// of tailCount synthetic ASes (ASNs starting at tailBase) sharing the
// remaining mass with weight ∝ 1/rank^alpha.
func PowerLawWeights(head map[uint32]float64, tailCount int, tailBase uint32, alpha float64) map[uint32]float64 {
	weights := make(map[uint32]float64, len(head)+tailCount)
	headMass := 0.0
	for asn, share := range head {
		weights[asn] = share
		headMass += share
	}
	tailMass := 1.0 - headMass
	if tailMass <= 0 || tailCount <= 0 {
		return weights
	}
	// Normalize the zipf tail to tailMass.
	raw := make([]float64, tailCount)
	sum := 0.0
	for i := range raw {
		raw[i] = 1.0 / math.Pow(float64(i+1), alpha)
		sum += raw[i]
	}
	for i, w := range raw {
		weights[tailBase+uint32(i)] = tailMass * w / sum
	}
	return weights
}

// IPAllocator deterministically allocates IPv4 addresses such that the
// owning AS is recoverable from the address alone. Address layout:
// addresses for the i-th registered AS occupy the contiguous block
// [base + i*hostsPerAS, base + (i+1)*hostsPerAS).
type IPAllocator struct {
	mu         sync.Mutex
	asns       []uint32
	index      map[uint32]int
	next       map[uint32]uint32
	hostsPerAS uint32
	base       uint32
}

// DefaultHostsPerAS is the default per-AS address block size.
const DefaultHostsPerAS = 1 << 17 // 131072 hosts per AS

// ipBase is 1.0.0.0; keeps allocations out of the 0.0.0.0/8 range.
const ipBase = uint32(1) << 24

// NewIPAllocator creates an allocator with the given per-AS block size
// (DefaultHostsPerAS when 0).
func NewIPAllocator(hostsPerAS uint32) *IPAllocator {
	if hostsPerAS == 0 {
		hostsPerAS = DefaultHostsPerAS
	}
	return &IPAllocator{
		index:      make(map[uint32]int),
		next:       make(map[uint32]uint32),
		hostsPerAS: hostsPerAS,
		base:       ipBase,
	}
}

// Alloc returns a fresh IPv4 address within asn's block. It returns an
// error when the block is exhausted or the address space overflows.
func (al *IPAllocator) Alloc(asn uint32) (netip.Addr, error) {
	al.mu.Lock()
	defer al.mu.Unlock()
	idx, ok := al.index[asn]
	if !ok {
		idx = len(al.asns)
		al.index[asn] = idx
		al.asns = append(al.asns, asn)
	}
	host := al.next[asn]
	if host >= al.hostsPerAS {
		return netip.Addr{}, fmt.Errorf("asmap: AS%d block exhausted (%d hosts)", asn, al.hostsPerAS)
	}
	al.next[asn] = host + 1
	v := al.base + uint32(idx)*al.hostsPerAS + host
	if v < al.base {
		return netip.Addr{}, fmt.Errorf("asmap: IPv4 space exhausted for AS%d", asn)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b), nil
}

// ASNOf recovers the AS owning ip, if ip was produced by this allocator.
func (al *IPAllocator) ASNOf(ip netip.Addr) (uint32, bool) {
	if !ip.Is4() {
		return 0, false
	}
	b := ip.As4()
	v := binary.BigEndian.Uint32(b[:])
	if v < al.base {
		return 0, false
	}
	al.mu.Lock()
	defer al.mu.Unlock()
	idx := int((v - al.base) / al.hostsPerAS)
	if idx >= len(al.asns) {
		return 0, false
	}
	return al.asns[idx], true
}

// ASShare is one row of an AS census: an AS and its node share.
type ASShare struct {
	// ASN is the autonomous system number.
	ASN uint32
	// Count is the number of nodes hosted.
	Count int
	// Pct is the percentage of the census total.
	Pct float64
}

// Census counts nodes per AS and answers the coverage questions the paper
// asks (how many ASes must be hijacked to isolate X% of nodes).
type Census struct {
	counts map[uint32]int
	total  int
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{counts: make(map[uint32]int)}
}

// Add records one node hosted in asn.
func (c *Census) Add(asn uint32) {
	c.counts[asn]++
	c.total++
}

// Total returns the number of recorded nodes.
func (c *Census) Total() int { return c.total }

// NumASes returns the number of distinct ASes observed.
func (c *Census) NumASes() int { return len(c.counts) }

// sorted returns shares ordered by count descending (ASN ascending on
// ties, for determinism).
func (c *Census) sorted() []ASShare {
	out := make([]ASShare, 0, len(c.counts))
	for asn, n := range c.counts {
		pct := 0.0
		if c.total > 0 {
			pct = 100 * float64(n) / float64(c.total)
		}
		out = append(out, ASShare{ASN: asn, Count: n, Pct: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// TopN returns the n largest ASes by hosted-node count.
func (c *Census) TopN(n int) []ASShare {
	s := c.sorted()
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// CoverageCount returns how many of the largest ASes are needed to host
// at least frac (0..1) of all nodes — the paper's hijack-budget metric.
func (c *Census) CoverageCount(frac float64) int {
	if c.total == 0 {
		return 0
	}
	need := frac * float64(c.total)
	acc := 0.0
	for i, s := range c.sorted() {
		acc += float64(s.Count)
		if acc >= need {
			return i + 1
		}
	}
	return len(c.counts)
}

// Share returns the percentage of nodes hosted by asn.
func (c *Census) Share(asn uint32) float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.counts[asn]) / float64(c.total)
}
