// Package faults is a deterministic, seeded fault-injection layer for
// the simulated network. It implements simnet.Injector, intercepting the
// dial and transmit paths with per-link message drop, duplication,
// latency spikes (which double as reordering, since unspiked messages
// overtake spiked ones), and dial failures; on top of that it scripts
// network partitions with heal and node crash/restart schedules.
//
// The paper's root causes — churned peers, black-holed routes, and
// messages that silently vanish — are exactly the adversities this layer
// reproduces, so the chaos tests can demonstrate that the node-side
// defences (keepalive, stall eviction, reconnect backoff) recover
// synchronization once conditions improve.
//
// Determinism: the injector draws from its own seeded source, and the
// simnet scheduler invokes it in a deterministic order, so a given seed
// always produces the identical fault schedule, event trace, and
// counters. The chaos tests pin this by running scenarios twice and
// comparing traces.
package faults

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Profile sets the probabilistic fault rates for a link (or, as
// Config.Default, for every link without an override). Probabilities are
// in [0, 1]; the zero Profile injects nothing.
type Profile struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice, the
	// copy arriving DuplicateDelay after the original (50 ms when zero).
	Duplicate      float64
	DuplicateDelay time.Duration
	// Spike is the probability a message suffers an extra latency spike
	// drawn uniformly from [SpikeMin, SpikeMax]. Because only the spiked
	// message is delayed, later traffic on the link overtakes it:
	// spikes double as reordering faults.
	Spike    float64
	SpikeMin time.Duration
	SpikeMax time.Duration
	// DialFail is the probability a connection attempt is refused at
	// the fault layer before reaching the target.
	DialFail float64
}

// zero reports whether the profile injects nothing.
func (p Profile) zero() bool {
	return p.Drop == 0 && p.Duplicate == 0 && p.Spike == 0 && p.DialFail == 0
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives all fault randomness.
	Seed int64
	// Default is the profile applied to links without an override.
	Default Profile
	// TraceLimit bounds the retained trace (default 20000); events past
	// the limit are dropped but still counted.
	TraceLimit int
}

// TraceEvent is one recorded fault or scenario action. Traces from two
// same-seed runs of a deterministic scenario compare equal.
type TraceEvent struct {
	// Time is the virtual time of the event.
	Time time.Time
	// Kind labels the event: drop, dup, spike, dial-refuse, blocked,
	// dial-blocked, partition, heal, blackhole, restore, crash, restart.
	Kind string
	// From and To are the endpoints, when applicable.
	From, To netip.AddrPort
	// Detail carries the message command or extra context.
	Detail string
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%s %s %v->%v %s",
		e.Time.Format("15:04:05.000"), e.Kind, e.From, e.To, e.Detail)
}

// linkKey identifies an unordered address pair.
type linkKey struct{ lo, hi netip.Addr }

func keyFor(a, b netip.Addr) linkKey {
	if b.Less(a) {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Injector is the fault layer. Construct with New; all methods must be
// called from the scheduler goroutine (scenario setup before Run, or
// scheduled callbacks), like everything else touching a simnet.
type Injector struct {
	net *simnet.Network
	cfg Config
	rng *rand.Rand

	disabled bool
	links    map[linkKey]Profile
	// groups is the active partition: addresses in different non-zero
	// groups cannot exchange anything. Absent addresses (group 0) are
	// unrestricted.
	groups map[netip.Addr]int
	// blackholed addresses lose every message and dial in both
	// directions, modelling a fully black-holed route to the host.
	blackholed map[netip.Addr]bool

	counters     stats.Counters
	trace        []TraceEvent
	traceDropped int

	// Crash/restart presence tracking for PresenceMatrix.
	start   time.Time
	tracked []netip.AddrPort
	isDown  map[netip.AddrPort]bool
	down    map[netip.AddrPort][]downInterval
}

// downInterval is one offline stretch of a tracked host. End is zero
// while the host is still down.
type downInterval struct{ from, to time.Time }

var _ simnet.Injector = (*Injector)(nil)

// New creates an injector and installs it on the network.
func New(net *simnet.Network, cfg Config) *Injector {
	if cfg.TraceLimit == 0 {
		cfg.TraceLimit = 20000
	}
	inj := &Injector{
		net:        net,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		links:      make(map[linkKey]Profile),
		groups:     make(map[netip.Addr]int),
		blackholed: make(map[netip.Addr]bool),
		start:      net.Now(),
		isDown:     make(map[netip.AddrPort]bool),
		down:       make(map[netip.AddrPort][]downInterval),
	}
	net.SetInjector(inj)
	return inj
}

// SetEnabled turns the whole fault layer on or off (it starts enabled).
// Scenarios disable it near the end so the tail of the run converges
// under clean conditions.
func (inj *Injector) SetEnabled(enabled bool) { inj.disabled = !enabled }

// SetDefault replaces the default link profile.
func (inj *Injector) SetDefault(p Profile) { inj.cfg.Default = p }

// SetLinkProfile overrides the profile for the link between a and b (both
// directions). Use a zero Profile to make one link clean under a lossy
// default.
func (inj *Injector) SetLinkProfile(a, b netip.Addr, p Profile) {
	inj.links[keyFor(a, b)] = p
}

// Partition splits the network: addresses in different groups cannot
// dial or message each other. Addresses in no group are unrestricted
// (they talk to everyone). A new call replaces the previous partition.
func (inj *Injector) Partition(groups ...[]netip.AddrPort) {
	inj.groups = make(map[netip.Addr]int)
	for i, g := range groups {
		for _, a := range g {
			inj.groups[a.Addr()] = i + 1
		}
	}
	inj.counters.Inc("partition")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "partition",
		Detail: fmt.Sprintf("groups=%d", len(groups)),
	})
}

// Heal removes the active partition.
func (inj *Injector) Heal() {
	inj.groups = make(map[netip.Addr]int)
	inj.counters.Inc("heal")
	inj.record(TraceEvent{Time: inj.net.Now(), Kind: "heal"})
}

// Blackhole makes every route to and from addr lose everything: dials
// time out, established links go silent, but nothing is closed — the
// host looks alive to itself and dead to everyone else.
func (inj *Injector) Blackhole(addr netip.Addr) {
	inj.blackholed[addr] = true
	inj.counters.Inc("blackhole")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "blackhole",
		From: netip.AddrPortFrom(addr, 0),
	})
}

// Restore lifts a Blackhole.
func (inj *Injector) Restore(addr netip.Addr) {
	delete(inj.blackholed, addr)
	inj.counters.Inc("restore")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "restore",
		From: netip.AddrPortFrom(addr, 0),
	})
}

// blocked reports whether the route between from and to is severed by a
// partition or blackhole.
func (inj *Injector) blocked(from, to netip.AddrPort) bool {
	if inj.blackholed[from.Addr()] || inj.blackholed[to.Addr()] {
		return true
	}
	gf, gt := inj.groups[from.Addr()], inj.groups[to.Addr()]
	return gf != 0 && gt != 0 && gf != gt
}

// profileFor returns the effective profile for a route.
func (inj *Injector) profileFor(from, to netip.AddrPort) Profile {
	if p, ok := inj.links[keyFor(from.Addr(), to.Addr())]; ok {
		return p
	}
	return inj.cfg.Default
}

// FilterDial implements simnet.Injector.
func (inj *Injector) FilterDial(from, to netip.AddrPort) simnet.DialVerdict {
	if inj.disabled {
		return simnet.DialProceed
	}
	if inj.blocked(from, to) {
		inj.counters.Inc("dial.blocked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dial-blocked", From: from, To: to,
		})
		return simnet.DialBlock
	}
	p := inj.profileFor(from, to)
	if p.DialFail > 0 && inj.rng.Float64() < p.DialFail {
		inj.counters.Inc("dial.refused")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dial-refuse", From: from, To: to,
		})
		return simnet.DialRefuse
	}
	return simnet.DialProceed
}

// FilterTransmit implements simnet.Injector.
func (inj *Injector) FilterTransmit(from, to netip.AddrPort, msg wire.Message) simnet.TransmitVerdict {
	if inj.disabled {
		return simnet.TransmitVerdict{}
	}
	if inj.blocked(from, to) {
		inj.counters.Inc("transmit.blocked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "blocked", From: from, To: to,
			Detail: msg.Command(),
		})
		return simnet.TransmitVerdict{Drop: true}
	}
	p := inj.profileFor(from, to)
	if p.zero() {
		return simnet.TransmitVerdict{}
	}
	if p.Drop > 0 && inj.rng.Float64() < p.Drop {
		inj.counters.Inc("transmit.dropped")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "drop", From: from, To: to,
			Detail: msg.Command(),
		})
		return simnet.TransmitVerdict{Drop: true}
	}
	var verdict simnet.TransmitVerdict
	if p.Spike > 0 && inj.rng.Float64() < p.Spike {
		span := p.SpikeMax - p.SpikeMin
		extra := p.SpikeMin
		if span > 0 {
			extra += time.Duration(inj.rng.Int63n(int64(span)))
		}
		verdict.ExtraDelay = extra
		inj.counters.Inc("transmit.spiked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "spike", From: from, To: to,
			Detail: fmt.Sprintf("%s +%v", msg.Command(), extra),
		})
	}
	if p.Duplicate > 0 && inj.rng.Float64() < p.Duplicate {
		verdict.Duplicate = true
		verdict.DuplicateDelay = p.DuplicateDelay
		if verdict.DuplicateDelay == 0 {
			verdict.DuplicateDelay = 50 * time.Millisecond
		}
		inj.counters.Inc("transmit.duplicated")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dup", From: from, To: to,
			Detail: msg.Command(),
		})
	}
	return verdict
}

// record appends a trace event, bounded by TraceLimit.
func (inj *Injector) record(ev TraceEvent) {
	if len(inj.trace) >= inj.cfg.TraceLimit {
		inj.traceDropped++
		inj.counters.Inc("trace.dropped")
		return
	}
	inj.trace = append(inj.trace, ev)
}

// Trace returns the recorded events (bounded by Config.TraceLimit).
func (inj *Injector) Trace() []TraceEvent { return inj.trace }

// Counters returns a sorted snapshot of the fault counters.
func (inj *Injector) Counters() []stats.Counter { return inj.counters.Snapshot() }

// CountersString renders the counters as a deterministic one-line
// summary, suitable for reports and same-seed comparisons.
func (inj *Injector) CountersString() string { return inj.counters.String() }
