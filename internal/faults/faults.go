// Package faults is a deterministic, seeded fault-injection layer for
// the simulated network. It implements simnet.Injector, intercepting the
// dial and transmit paths with per-link message drop, duplication,
// latency spikes (which double as reordering, since unspiked messages
// overtake spiked ones), and dial failures; on top of that it scripts
// network partitions with heal and node crash/restart schedules.
//
// The paper's root causes — churned peers, black-holed routes, and
// messages that silently vanish — are exactly the adversities this layer
// reproduces, so the chaos tests can demonstrate that the node-side
// defences (keepalive, stall eviction, reconnect backoff) recover
// synchronization once conditions improve.
//
// Determinism: the injector draws from its own seeded source, and the
// simnet scheduler invokes it in a deterministic order, so a given seed
// always produces the identical fault schedule, event trace, and
// counters. The chaos tests pin this by running scenarios twice and
// comparing traces.
package faults

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Profile sets the probabilistic fault rates for a link (or, as
// Config.Default, for every link without an override). Probabilities are
// in [0, 1]; the zero Profile injects nothing.
type Profile struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice, the
	// copy arriving DuplicateDelay after the original (50 ms when zero).
	Duplicate      float64
	DuplicateDelay time.Duration
	// Spike is the probability a message suffers an extra latency spike
	// drawn uniformly from [SpikeMin, SpikeMax]. Because only the spiked
	// message is delayed, later traffic on the link overtakes it:
	// spikes double as reordering faults.
	Spike    float64
	SpikeMin time.Duration
	SpikeMax time.Duration
	// DialFail is the probability a connection attempt is refused at
	// the fault layer before reaching the target.
	DialFail float64
}

// zero reports whether the profile injects nothing.
func (p Profile) zero() bool {
	return p.Drop == 0 && p.Duplicate == 0 && p.Spike == 0 && p.DialFail == 0
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives all fault randomness.
	Seed int64
	// Default is the profile applied to links without an override.
	Default Profile
	// TraceLimit bounds the retained trace ring when the injector builds
	// its own tracer (default obs.DefaultTraceCapacity); events past the
	// limit are evicted oldest-first but still counted and digested.
	// Ignored when Tracer is provided.
	TraceLimit int
	// Metrics, when set, hosts the fault counters (faults.* names) so
	// one registry covers the whole experiment. When nil the injector
	// keeps a private registry — Counters and CounterValue still work.
	Metrics *obs.Registry
	// Tracer, when set, receives the fault events, interleaving them
	// with node and network events in one timeline. When nil the
	// injector keeps a private ring sized by TraceLimit.
	Tracer *obs.Tracer
}

// TraceEvent is one recorded fault or scenario action — an alias of the
// observability layer's event record, so fault events interleave with
// node spans in one shared trace. Traces from two same-seed runs of a
// deterministic scenario compare equal. Kinds emitted here: drop, dup,
// spike, dial-refuse, blocked, dial-blocked, partition, heal, blackhole,
// restore, crash, restart.
type TraceEvent = obs.Event

// faultCounterNames lists every counter the injector maintains, sorted;
// Counters walks it so snapshots stay sorted without a per-call sort.
var faultCounterNames = []string{
	"faults.blackhole",
	"faults.crash",
	"faults.dial.blocked",
	"faults.dial.refused",
	"faults.heal",
	"faults.partition",
	"faults.restart",
	"faults.restore",
	"faults.transmit.blocked",
	"faults.transmit.dropped",
	"faults.transmit.duplicated",
	"faults.transmit.spiked",
}

// linkKey identifies an unordered address pair.
type linkKey struct{ lo, hi netip.Addr }

func keyFor(a, b netip.Addr) linkKey {
	if b.Less(a) {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Injector is the fault layer. Construct with New; all methods must be
// called from the scheduler goroutine (scenario setup before Run, or
// scheduled callbacks), like everything else touching a simnet.
type Injector struct {
	net *simnet.Network
	cfg Config
	rng *rand.Rand

	disabled bool
	links    map[linkKey]Profile
	// groups is the active partition: addresses in different non-zero
	// groups cannot exchange anything. Absent addresses (group 0) are
	// unrestricted.
	groups map[netip.Addr]int
	// blackholed addresses lose every message and dial in both
	// directions, modelling a fully black-holed route to the host.
	blackholed map[netip.Addr]bool

	counters map[string]*obs.Counter
	tracer   *obs.Tracer

	// Crash/restart presence tracking for PresenceMatrix.
	start   time.Time
	tracked []netip.AddrPort
	isDown  map[netip.AddrPort]bool
	down    map[netip.AddrPort][]downInterval
}

// downInterval is one offline stretch of a tracked host. End is zero
// while the host is still down.
type downInterval struct{ from, to time.Time }

var _ simnet.Injector = (*Injector)(nil)

// New creates an injector and installs it on the network.
func New(net *simnet.Network, cfg Config) *Injector {
	if cfg.TraceLimit == 0 {
		cfg.TraceLimit = obs.DefaultTraceCapacity
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(cfg.TraceLimit, net.Now)
	}
	reg := cfg.Metrics
	if reg == nil {
		// Private registry: the injector's own bookkeeping still works
		// when the caller has no experiment-wide registry.
		reg = obs.NewRegistry()
	}
	counters := make(map[string]*obs.Counter, len(faultCounterNames))
	for _, name := range faultCounterNames {
		counters[name] = reg.Counter(name)
	}
	inj := &Injector{
		net:        net,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		links:      make(map[linkKey]Profile),
		groups:     make(map[netip.Addr]int),
		blackholed: make(map[netip.Addr]bool),
		counters:   counters,
		tracer:     tracer,
		start:      net.Now(),
		isDown:     make(map[netip.AddrPort]bool),
		down:       make(map[netip.AddrPort][]downInterval),
	}
	net.SetInjector(inj)
	return inj
}

// SetEnabled turns the whole fault layer on or off (it starts enabled).
// Scenarios disable it near the end so the tail of the run converges
// under clean conditions.
func (inj *Injector) SetEnabled(enabled bool) { inj.disabled = !enabled }

// SetDefault replaces the default link profile.
func (inj *Injector) SetDefault(p Profile) { inj.cfg.Default = p }

// SetLinkProfile overrides the profile for the link between a and b (both
// directions). Use a zero Profile to make one link clean under a lossy
// default.
func (inj *Injector) SetLinkProfile(a, b netip.Addr, p Profile) {
	inj.links[keyFor(a, b)] = p
}

// Partition splits the network: addresses in different groups cannot
// dial or message each other. Addresses in no group are unrestricted
// (they talk to everyone). A new call replaces the previous partition.
func (inj *Injector) Partition(groups ...[]netip.AddrPort) {
	inj.groups = make(map[netip.Addr]int)
	for i, g := range groups {
		for _, a := range g {
			inj.groups[a.Addr()] = i + 1
		}
	}
	inj.inc("faults.partition")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "partition",
		Detail: fmt.Sprintf("groups=%d", len(groups)),
	})
}

// Heal removes the active partition.
func (inj *Injector) Heal() {
	inj.groups = make(map[netip.Addr]int)
	inj.inc("faults.heal")
	inj.record(TraceEvent{Time: inj.net.Now(), Kind: "heal"})
}

// Blackhole makes every route to and from addr lose everything: dials
// time out, established links go silent, but nothing is closed — the
// host looks alive to itself and dead to everyone else.
func (inj *Injector) Blackhole(addr netip.Addr) {
	inj.blackholed[addr] = true
	inj.inc("faults.blackhole")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "blackhole",
		From: netip.AddrPortFrom(addr, 0),
	})
}

// Restore lifts a Blackhole.
func (inj *Injector) Restore(addr netip.Addr) {
	delete(inj.blackholed, addr)
	inj.inc("faults.restore")
	inj.record(TraceEvent{
		Time: inj.net.Now(), Kind: "restore",
		From: netip.AddrPortFrom(addr, 0),
	})
}

// blocked reports whether the route between from and to is severed by a
// partition or blackhole.
func (inj *Injector) blocked(from, to netip.AddrPort) bool {
	if inj.blackholed[from.Addr()] || inj.blackholed[to.Addr()] {
		return true
	}
	gf, gt := inj.groups[from.Addr()], inj.groups[to.Addr()]
	return gf != 0 && gt != 0 && gf != gt
}

// profileFor returns the effective profile for a route.
func (inj *Injector) profileFor(from, to netip.AddrPort) Profile {
	if p, ok := inj.links[keyFor(from.Addr(), to.Addr())]; ok {
		return p
	}
	return inj.cfg.Default
}

// FilterDial implements simnet.Injector.
func (inj *Injector) FilterDial(from, to netip.AddrPort) simnet.DialVerdict {
	if inj.disabled {
		return simnet.DialProceed
	}
	if inj.blocked(from, to) {
		inj.inc("faults.dial.blocked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dial-blocked", From: from, To: to,
		})
		return simnet.DialBlock
	}
	p := inj.profileFor(from, to)
	if p.DialFail > 0 && inj.rng.Float64() < p.DialFail {
		inj.inc("faults.dial.refused")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dial-refuse", From: from, To: to,
		})
		return simnet.DialRefuse
	}
	return simnet.DialProceed
}

// FilterTransmit implements simnet.Injector.
func (inj *Injector) FilterTransmit(from, to netip.AddrPort, msg wire.Message) simnet.TransmitVerdict {
	if inj.disabled {
		return simnet.TransmitVerdict{}
	}
	if inj.blocked(from, to) {
		inj.inc("faults.transmit.blocked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "blocked", From: from, To: to,
			Detail: msg.Command(),
		})
		return simnet.TransmitVerdict{Drop: true}
	}
	p := inj.profileFor(from, to)
	if p.zero() {
		return simnet.TransmitVerdict{}
	}
	if p.Drop > 0 && inj.rng.Float64() < p.Drop {
		inj.inc("faults.transmit.dropped")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "drop", From: from, To: to,
			Detail: msg.Command(),
		})
		return simnet.TransmitVerdict{Drop: true}
	}
	var verdict simnet.TransmitVerdict
	if p.Spike > 0 && inj.rng.Float64() < p.Spike {
		span := p.SpikeMax - p.SpikeMin
		extra := p.SpikeMin
		if span > 0 {
			extra += time.Duration(inj.rng.Int63n(int64(span)))
		}
		verdict.ExtraDelay = extra
		inj.inc("faults.transmit.spiked")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "spike", From: from, To: to,
			Detail: fmt.Sprintf("%s +%v", msg.Command(), extra),
		})
	}
	if p.Duplicate > 0 && inj.rng.Float64() < p.Duplicate {
		verdict.Duplicate = true
		verdict.DuplicateDelay = p.DuplicateDelay
		if verdict.DuplicateDelay == 0 {
			verdict.DuplicateDelay = 50 * time.Millisecond
		}
		inj.inc("faults.transmit.duplicated")
		inj.record(TraceEvent{
			Time: inj.net.Now(), Kind: "dup", From: from, To: to,
			Detail: msg.Command(),
		})
	}
	return verdict
}

// inc bumps one of the pre-registered fault counters.
func (inj *Injector) inc(name string) { inj.counters[name].Inc() }

// record emits a trace event into the (possibly shared) tracer.
func (inj *Injector) record(ev TraceEvent) { inj.tracer.Emit(ev) }

// Trace returns the retained trace events, oldest first. With a shared
// Config.Tracer the slice interleaves fault events with whatever else
// the experiment traced; the ring bounds retention, but TraceDigest
// still covers everything ever emitted.
func (inj *Injector) Trace() []TraceEvent { return inj.tracer.Events() }

// TraceDigest returns the tracer's running digest over every event ever
// emitted — the compact same-seed comparison handle (ring eviction does
// not change it).
func (inj *Injector) TraceDigest() string { return inj.tracer.Digest() }

// Tracer exposes the event tracer (shared or private).
func (inj *Injector) Tracer() *obs.Tracer { return inj.tracer }

// Counters returns a name-sorted snapshot of the fault counters. The
// order is fixed at compile time (faultCounterNames), so no allocation
// beyond the result and no sorting happens per call — and with a shared
// Config.Metrics registry only the fault layer's own counters are
// returned, never the rest of the experiment's.
func (inj *Injector) Counters() []obs.NamedValue {
	out := make([]obs.NamedValue, len(faultCounterNames))
	for i, name := range faultCounterNames {
		out[i] = obs.NamedValue{Name: name, Value: inj.counters[name].Value()}
	}
	return out
}

// CounterValue returns one fault counter by its registry name
// ("faults.crash", "faults.transmit.dropped", …). Unknown names read 0.
func (inj *Injector) CounterValue(name string) int64 {
	return inj.counters[name].Value()
}

// CountersString renders the non-zero counters as a deterministic
// one-line "name=value" summary, suitable for reports and same-seed
// comparisons.
func (inj *Injector) CountersString() string {
	var parts []string
	for _, nv := range inj.Counters() {
		if nv.Value != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", nv.Name, nv.Value))
		}
	}
	return strings.Join(parts, " ")
}
