package faults

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// The chaos suite is the tentpole acceptance test: a network subjected to
// message loss, latency spikes, duplication, a partition with heal, and a
// crash/restart wave must re-converge — every surviving full node reaches
// IsSynced at the miner's tip within bounded virtual time — and the same
// seed must reproduce the identical fault schedule, event trace, and
// counters.

// chaosResult captures everything a same-seed rerun must reproduce.
type chaosResult struct {
	heights  []int32
	synced   []bool
	tipMatch []bool
	trace    []TraceEvent
	digest   string
	counters []obs.NamedValue
}

// runChaosScenario drives the full scenario at the given seed:
//   - 10 full nodes in a mesh, node 0 mining one block per minute;
//   - 5% drop / 5% spike / 2% duplication on every link from the start;
//   - minutes 5–10: partition 6 nodes (with the miner) from the other 4;
//   - minute 12: crash wave takes nodes 7 and 8 down for 3 minutes;
//   - minute 20: faults off (clean tail); mining stops after minute 24;
//   - minute 35: measure.
func runChaosScenario(t *testing.T, seed int64) chaosResult {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: seed})
	inj := New(net, Config{Seed: seed, Default: Profile{
		Drop:      0.05,
		Spike:     0.05,
		SpikeMin:  200 * time.Millisecond,
		SpikeMax:  2 * time.Second,
		Duplicate: 0.02,
	}})
	addrs := buildMesh(net, 10)
	miner := addrs[0]
	sched := net.Scheduler()

	const lastBlockMinute = 24
	mined := 0
	var mine func()
	mine = func() {
		if h := net.Host(miner); h.Online() && h.Node() != nil {
			_, _ = h.Node().MineBlock(0)
		}
		mined++
		if mined < lastBlockMinute {
			sched.After(time.Minute, mine)
		}
	}
	sched.After(time.Minute, mine)

	inj.SchedulePartition(5*time.Minute, 5*time.Minute, addrs[:6], addrs[6:])
	inj.CrashWave(addrs[7:9], 12*time.Minute, 3*time.Minute, 30*time.Second)
	sched.After(20*time.Minute, func() { inj.SetEnabled(false) })

	sched.RunFor(35 * time.Minute)

	tip, wantHeight := net.Host(miner).Node().Chain().Tip()
	res := chaosResult{
		trace:    inj.Trace(),
		digest:   inj.TraceDigest(),
		counters: inj.Counters(),
	}
	for _, a := range addrs {
		h := net.Host(a)
		if !h.Online() || h.Node() == nil {
			t.Fatalf("host %v offline at scenario end", a)
		}
		nodeTip, height := h.Node().Chain().Tip()
		res.heights = append(res.heights, height)
		res.synced = append(res.synced, h.Node().IsSynced())
		res.tipMatch = append(res.tipMatch, nodeTip == tip)
	}
	if wantHeight < lastBlockMinute-2 {
		t.Fatalf("miner only reached height %d; the scenario barely mined", wantHeight)
	}
	return res
}

func TestChaosNetworkReconverges(t *testing.T) {
	res := runChaosScenario(t, 1001)
	for i, h := range res.heights {
		if h != res.heights[0] || !res.tipMatch[i] {
			t.Errorf("node %d: height %d, tipMatch=%v — network did not converge (heights %v)",
				i, h, res.tipMatch[i], res.heights)
		}
		if !res.synced[i] {
			t.Errorf("node %d: IsSynced() = false after recovery window", i)
		}
	}
	// The scenario must actually have exercised the fault machinery.
	c := make(map[string]int64, len(res.counters))
	for _, ctr := range res.counters {
		c[ctr.Name] = ctr.Value
	}
	for _, name := range []string{
		"faults.transmit.dropped", "faults.transmit.spiked",
		"faults.transmit.duplicated", "faults.transmit.blocked",
		"faults.partition", "faults.heal", "faults.crash", "faults.restart",
	} {
		if c[name] == 0 {
			t.Errorf("counter %q = 0 — scenario never exercised it", name)
		}
	}
	if c["faults.crash"] != 2 || c["faults.restart"] != 2 {
		t.Errorf("crash/restart = %d/%d, want 2/2",
			c["faults.crash"], c["faults.restart"])
	}
}

func TestChaosScenarioIsSeedReproducible(t *testing.T) {
	a := runChaosScenario(t, 7_777)
	b := runChaosScenario(t, 7_777)
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Error("same-seed runs produced different fault traces")
	}
	if a.digest != b.digest {
		t.Errorf("same-seed runs produced different trace digests: %s vs %s",
			a.digest, b.digest)
	}
	if !reflect.DeepEqual(a.counters, b.counters) {
		t.Error("same-seed runs produced different counters")
	}
	if !reflect.DeepEqual(a.heights, b.heights) {
		t.Errorf("same-seed runs produced different heights: %v vs %v",
			a.heights, b.heights)
	}
	c := runChaosScenario(t, 7_778)
	if reflect.DeepEqual(a.trace, c.trace) {
		t.Error("different seeds produced the identical fault trace")
	}
	if a.digest == c.digest {
		t.Error("different seeds produced the identical trace digest")
	}
}

// TestChaosRecoveryFromBlackholedMiner pins the keepalive path end to
// end: the miner's routes are black-holed mid-run, its peers' pings go
// unanswered, and after restore the network (including the miner's
// backlog of solo-mined blocks) converges.
func TestChaosRecoveryFromBlackholedMiner(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 55})
	inj := New(net, Config{Seed: 55})
	addrs := buildMesh(net, 6)
	miner := addrs[0]
	sched := net.Scheduler()

	stop := false
	var mine func()
	mine = func() {
		if stop {
			return
		}
		if h := net.Host(miner); h.Online() && h.Node() != nil {
			_, _ = h.Node().MineBlock(0)
		}
		sched.After(time.Minute, mine)
	}
	sched.After(time.Minute, mine)

	sched.After(4*time.Minute, func() { inj.Blackhole(miner.Addr()) })
	sched.After(10*time.Minute, func() { inj.Restore(miner.Addr()) })
	sched.After(16*time.Minute, func() { stop = true })
	sched.RunFor(25 * time.Minute)

	tip, minerHeight := net.Host(miner).Node().Chain().Tip()
	if minerHeight < 10 {
		t.Fatalf("miner height = %d, want at least 10", minerHeight)
	}
	for _, a := range addrs[1:] {
		nodeTip, h := net.Host(a).Node().Chain().Tip()
		if nodeTip != tip || h != minerHeight {
			t.Errorf("node %v at height %d (want %d, tip match %v) after restore",
				a, h, minerHeight, nodeTip == tip)
		}
	}
	// During the blackhole the peers' keepalives went unanswered; pings
	// must have been sent (the stall timeout is longer than the outage,
	// so eviction is not required — recovery through the healed link is).
	pings := 0
	for _, a := range addrs {
		pings += net.Host(a).Node().Health().PingsSent
	}
	if pings == 0 {
		t.Error("no keepalive pings sent across the blackhole window")
	}
}
