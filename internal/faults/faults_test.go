package faults

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/wire"
)

var testGenesis = chain.GenesisBlock("faults-test")

func addr4(a, b, c, d byte, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{a, b, c, d}), port)
}

// seedsOf builds a seed list for every address except self.
func seedsOf(now time.Time, self netip.AddrPort, addrs []netip.AddrPort) []wire.NetAddress {
	var out []wire.NetAddress
	for _, a := range addrs {
		if a == self {
			continue
		}
		out = append(out, wire.NetAddress{
			Addr: a, Services: wire.SFNodeNetwork, Timestamp: now,
		})
	}
	return out
}

func nodeCfg(self netip.AddrPort, seeds []wire.NetAddress) node.Config {
	return node.Config{
		Self:      wire.NetAddress{Addr: self, Services: wire.SFNodeNetwork},
		Reachable: true,
		Genesis:   testGenesis,
		SeedAddrs: seeds,
	}
}

// buildMesh starts n full nodes that all know each other.
func buildMesh(net *simnet.Network, n int) []netip.AddrPort {
	addrs := make([]netip.AddrPort, n)
	for i := range addrs {
		addrs[i] = addr4(10, 0, byte(i>>8), byte(i), 8333)
	}
	for _, a := range addrs {
		net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), a, addrs))).Start()
	}
	return addrs
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	inj := New(net, Config{Seed: 1})
	addrs := buildMesh(net, 6)

	inj.Partition(addrs[:3], addrs[3:])
	net.Scheduler().RunFor(3 * time.Minute)

	// No connection may span the partition.
	for _, a := range addrs[:3] {
		n := net.Host(a).Node()
		for _, peer := range n.PeerAddrs(0) {
			for _, b := range addrs[3:] {
				if peer == b {
					t.Fatalf("connection %v-%v spans the partition", a, b)
				}
			}
		}
	}
	if got := inj.CounterValue("faults.dial.blocked"); got == 0 {
		t.Error("partition never blocked a dial")
	}

	inj.Heal()
	net.Scheduler().RunFor(10 * time.Minute)
	crossCount := 0
	for _, a := range addrs[:3] {
		for _, peer := range net.Host(a).Node().PeerAddrs(0) {
			for _, b := range addrs[3:] {
				if peer == b {
					crossCount++
				}
			}
		}
	}
	if crossCount == 0 {
		t.Error("no cross-partition connection formed after heal")
	}
}

func TestDropProfileLosesMessages(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 2})
	inj := New(net, Config{Seed: 2, Default: Profile{Drop: 0.3}})
	buildMesh(net, 4)
	net.Scheduler().RunFor(5 * time.Minute)
	if got := inj.CounterValue("faults.transmit.dropped"); got == 0 {
		t.Error("30% drop profile never dropped a message")
	}
}

func TestLinkProfileOverridesDefault(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 3})
	// Default drops everything; the a-b link override is clean.
	inj := New(net, Config{Seed: 3, Default: Profile{Drop: 1}})
	a := addr4(10, 0, 0, 1, 8333)
	b := addr4(10, 0, 0, 2, 8333)
	inj.SetLinkProfile(a.Addr(), b.Addr(), Profile{})
	net.AddFullNode(nodeCfg(b, nil)).Start()
	ha := net.AddFullNode(nodeCfg(a, seedsOf(net.Now(), a, []netip.AddrPort{b})))
	ha.Start()
	net.Scheduler().RunFor(time.Minute)
	if !ha.Node().AddrMan().InTried(b) {
		t.Error("handshake failed on a clean link override")
	}
}

func TestBlackholeSilencesHost(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 4})
	inj := New(net, Config{Seed: 4})
	addrs := buildMesh(net, 4)
	net.Scheduler().RunFor(2 * time.Minute)

	victim := addrs[0]
	inj.Blackhole(victim.Addr())
	before := inj.CounterValue("faults.transmit.blocked")
	net.Scheduler().RunFor(5 * time.Minute)
	if inj.CounterValue("faults.transmit.blocked") == before {
		t.Error("blackholed host's traffic was not blocked")
	}
	inj.Restore(victim.Addr())
}

func TestScheduleCrashAndPresenceMatrix(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 5})
	inj := New(net, Config{Seed: 5})
	addrs := buildMesh(net, 3)

	inj.ScheduleCrash(addrs[1], 2*time.Minute, 3*time.Minute)
	sched := net.Scheduler()

	sched.RunFor(3 * time.Minute) // inside the outage
	if net.Host(addrs[1]).Online() {
		t.Fatal("host still online during scheduled outage")
	}
	sched.RunFor(3 * time.Minute) // past the restart
	if !net.Host(addrs[1]).Online() {
		t.Fatal("host did not restart after outage")
	}
	if inj.CounterValue("faults.crash") != 1 || inj.CounterValue("faults.restart") != 1 {
		t.Errorf("crash/restart counters = %d/%d, want 1/1",
			inj.CounterValue("faults.crash"), inj.CounterValue("faults.restart"))
	}

	m := inj.PresenceMatrix(time.Minute)
	if m.Rows() != 1 {
		t.Fatalf("matrix rows = %d, want 1 (only crashed hosts are tracked)", m.Rows())
	}
	ones, cols := m.RowOnes(0), m.Cols()
	if ones == 0 || ones == cols {
		t.Errorf("presence row ones = %d of %d, want a partial outage", ones, cols)
	}
}

func TestCrashWaveStaggers(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 6})
	inj := New(net, Config{Seed: 6})
	addrs := buildMesh(net, 5)

	inj.CrashWave(addrs[1:4], time.Minute, 2*time.Minute, 30*time.Second)
	net.Scheduler().RunFor(90 * time.Second)
	// At t=90s: addrs[1] (t=60s) down, addrs[2] (t=90s) down, addrs[3]
	// (t=120s) still up.
	if net.Host(addrs[1]).Online() || net.Host(addrs[2]).Online() {
		t.Error("first wave members still online")
	}
	if !net.Host(addrs[3]).Online() {
		t.Error("staggered member crashed early")
	}
	net.Scheduler().RunFor(5 * time.Minute)
	for _, a := range addrs {
		if !net.Host(a).Online() {
			t.Errorf("host %v never restarted", a)
		}
	}
}

func TestChurnScriptIsDeterministic(t *testing.T) {
	run := func(seed int64) []TraceEvent {
		net := simnet.New(simnet.Config{Seed: 7})
		inj := New(net, Config{Seed: seed})
		addrs := buildMesh(net, 6)
		inj.ChurnScript(addrs, time.Minute, 20*time.Minute, 6, time.Minute)
		net.Scheduler().RunFor(25 * time.Minute)
		var out []TraceEvent
		for _, ev := range inj.Trace() {
			if ev.Kind == "crash" || ev.Kind == "restart" {
				out = append(out, ev)
			}
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("churn script produced no crash/restart events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed churn scripts diverged")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical churn schedule")
	}
}

func TestDisabledInjectorIsTransparent(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 8})
	inj := New(net, Config{Seed: 8, Default: Profile{Drop: 1, DialFail: 1}})
	inj.SetEnabled(false)
	addrs := buildMesh(net, 2)
	net.Scheduler().RunFor(time.Minute)
	if !net.Host(addrs[0]).Node().AddrMan().InTried(addrs[1]) {
		t.Error("disabled injector still interfered with the handshake")
	}
	if len(inj.Trace()) != 0 {
		t.Errorf("disabled injector recorded %d events", len(inj.Trace()))
	}
}
