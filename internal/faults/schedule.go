package faults

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/churn"
)

// This file scripts scenario timelines on top of the injector: scheduled
// crash/restart of hosts, crash waves, random churn, and timed
// partitions. Crash tracking feeds a churn.Matrix so chaos scenarios can
// be analyzed with the same presence-matrix machinery as the paper's
// §IV-D measurements.

// ScheduleCrash stops the host at addr after the given delay and
// restarts it downFor later (a restart rebuilds the node from its
// configured seeds and genesis, exactly like a real rejoin). A downFor
// of zero or less leaves the host down.
func (inj *Injector) ScheduleCrash(addr netip.AddrPort, at, downFor time.Duration) {
	inj.track(addr)
	sched := inj.net.Scheduler()
	sched.After(at, func() {
		h := inj.net.Host(addr)
		if h == nil || !h.Online() {
			return
		}
		h.Stop()
		inj.inc("faults.crash")
		inj.record(TraceEvent{Time: inj.net.Now(), Kind: "crash", From: addr})
		inj.markDown(addr)
		if downFor <= 0 {
			return
		}
		sched.After(downFor, func() {
			h.Start()
			inj.inc("faults.restart")
			inj.record(TraceEvent{Time: inj.net.Now(), Kind: "restart", From: addr})
			inj.markUp(addr)
		})
	})
}

// CrashWave schedules a crash for every address, staggered so restarts
// do not land on one scheduler instant: address i crashes at
// at + i×stagger, each down for downFor.
func (inj *Injector) CrashWave(addrs []netip.AddrPort, at, downFor, stagger time.Duration) {
	for i, a := range addrs {
		inj.ScheduleCrash(a, at+time.Duration(i)*stagger, downFor)
	}
}

// ChurnScript schedules random crash/restart events among addrs over the
// window [start, end): on average per10Min events per 10 minutes, with
// exponentially distributed downtimes of mean meanDown (floored at 10 s).
// All draws happen now, from the injector's seeded source, so the
// schedule is fixed the moment this returns.
func (inj *Injector) ChurnScript(addrs []netip.AddrPort, start, end time.Duration,
	per10Min float64, meanDown time.Duration) {
	if len(addrs) == 0 || per10Min <= 0 || end <= start {
		return
	}
	window := end - start
	events := int(per10Min * float64(window) / float64(10*time.Minute))
	for i := 0; i < events; i++ {
		addr := addrs[inj.rng.Intn(len(addrs))]
		at := start + time.Duration(inj.rng.Int63n(int64(window)))
		down := time.Duration(inj.rng.ExpFloat64() * float64(meanDown))
		if down < 10*time.Second {
			down = 10 * time.Second
		}
		inj.ScheduleCrash(addr, at, down)
	}
}

// SchedulePartition applies the partition after the given delay and
// heals it healAfter later.
func (inj *Injector) SchedulePartition(at, healAfter time.Duration, groups ...[]netip.AddrPort) {
	sched := inj.net.Scheduler()
	sched.After(at, func() { inj.Partition(groups...) })
	sched.After(at+healAfter, func() { inj.Heal() })
}

// track registers addr for presence bookkeeping.
func (inj *Injector) track(addr netip.AddrPort) {
	if _, ok := inj.isDown[addr]; ok {
		return
	}
	inj.isDown[addr] = false
	inj.tracked = append(inj.tracked, addr)
}

// markDown opens a downtime interval for addr.
func (inj *Injector) markDown(addr netip.AddrPort) {
	if inj.isDown[addr] {
		return
	}
	inj.isDown[addr] = true
	inj.down[addr] = append(inj.down[addr], downInterval{from: inj.net.Now()})
}

// markUp closes the open downtime interval for addr.
func (inj *Injector) markUp(addr netip.AddrPort) {
	if !inj.isDown[addr] {
		return
	}
	inj.isDown[addr] = false
	ivs := inj.down[addr]
	ivs[len(ivs)-1].to = inj.net.Now()
}

// downAt reports whether addr was inside a recorded downtime at t.
func (inj *Injector) downAt(addr netip.AddrPort, t time.Time) bool {
	for _, iv := range inj.down[addr] {
		if t.Before(iv.from) {
			continue
		}
		if iv.to.IsZero() || t.Before(iv.to) {
			return true
		}
	}
	return false
}

// PresenceMatrix samples the crash-tracked hosts at the given cadence
// from injector creation until now, producing the paper's Algorithm 4
// binary presence matrix: the bridge between scripted chaos and the
// §IV-D churn analyses (persistent counts, transitions, lifetimes).
func (inj *Injector) PresenceMatrix(interval time.Duration) *churn.Matrix {
	addrs := make([]netip.AddrPort, len(inj.tracked))
	copy(addrs, inj.tracked)
	sort.Slice(addrs, func(i, j int) bool {
		if c := addrs[i].Addr().Compare(addrs[j].Addr()); c != 0 {
			return c < 0
		}
		return addrs[i].Port() < addrs[j].Port()
	})
	var times []time.Time
	for t := inj.start; !t.After(inj.net.Now()); t = t.Add(interval) {
		times = append(times, t)
	}
	return churn.Build(addrs, times, interval, func(i, j int) bool {
		return !inj.downAt(addrs[i], times[j])
	})
}
