package reprod

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

// Config tunes a Server.
type Config struct {
	// CacheDir roots the content-addressed artifact cache.
	CacheDir string
	// MaxActive bounds concurrently executing runs (0 = GOMAXPROCS).
	MaxActive int
	// MaxQueue bounds admitted requests waiting for a slot; arrivals
	// beyond it are shed with 429 (0 = shed whenever all slots busy;
	// the cmd default is 64).
	MaxQueue int
	// RunTimeout is the per-run wall-clock ceiling (0 = 10 minutes). A
	// spec's timeout_ms can lower it, never raise it.
	RunTimeout time.Duration
	// ForceGrace bounds how long Drain waits for cancelled runs to
	// unwind after the drain deadline fires (0 = 5 seconds).
	ForceGrace time.Duration
	// Registry receives the reprod.* service metrics (nil = private).
	Registry *obs.Registry
	// FlightDir, when non-empty, enables the crash flight recorder:
	// runs that die by panic or deadline dump their tracer ring and
	// resource watermarks to flightrec-<key>.json under this directory.
	FlightDir string
	// Lookup resolves experiment IDs (nil = core.ByID). Tests inject
	// synthetic registries with panicking or blocking experiments.
	Lookup func(id string) (core.Experiment, bool)
	// Version keys the cache (empty = CodeVersion()).
	Version string
}

// RunError is a run failure as reported to clients: structured, with a
// machine-readable kind, so a crashed or timed-out experiment is an
// HTTP response, never a crashed server.
type RunError struct {
	// Kind classifies the failure: "panic", "deadline", "canceled",
	// "failed", "queue_full", or "internal".
	Kind string `json:"kind"`
	// Experiment is the spec's experiment ID.
	Experiment string `json:"experiment,omitempty"`
	// Message is the human-readable cause (for panics: the panic value
	// and a truncated stack).
	Message string `json:"message"`
}

// Error renders the failure.
func (e *RunError) Error() string {
	return fmt.Sprintf("reprod: %s: %s: %s", e.Experiment, e.Kind, e.Message)
}

// status maps the failure kind onto an HTTP status.
func (e *RunError) status() int {
	switch e.Kind {
	case "queue_full":
		return http.StatusTooManyRequests
	case "deadline":
		return http.StatusGatewayTimeout
	case "canceled":
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Server is the reproduce-as-a-service HTTP layer. Zero trust in the
// workload: every run is admitted through a bounded queue, deadline-
// bounded, panic-contained, and deduplicated; artifacts are served from
// the crash-safe cache. The server itself never dies with a spec.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *Cache
	adm     *Admission
	flights *flightGroup
	mux     *http.ServeMux

	runCtx   context.Context
	stopRuns context.CancelFunc

	// resources is the process-wide sampler behind the proc.* gauges on
	// /metrics and the per-run windows attached to bundle manifests;
	// flightRec receives crash dumps when Config.FlightDir is set.
	resources     *obs.ResourceSampler
	stopResources func()
	flightRec     *obs.FlightRecorder
	httpInflight  *obs.Gauge

	draining atomic.Bool
	inflight sync.WaitGroup

	executed        *obs.Counter
	panics          *obs.Counter
	deadlines       *obs.Counter
	failures        *obs.Counter
	progressDropped *obs.Counter
	runMS           *obs.Histogram
	drainGauge      *obs.Gauge
}

// isDraining reports whether Drain has started.
func (s *Server) isDraining() bool { return s.draining.Load() }

// setDraining flips the server into drain mode: readyz degrades and
// new submissions are rejected.
func (s *Server) setDraining() {
	s.draining.Store(true)
	s.drainGauge.Set(1)
}

// New builds a Server: opens (and crash-sweeps) the cache, constructs
// the admission gate, and wires the routes.
func New(cfg Config) (*Server, error) {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = runtime.GOMAXPROCS(0)
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 10 * time.Minute
	}
	if cfg.ForceGrace <= 0 {
		cfg.ForceGrace = 5 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Lookup == nil {
		cfg.Lookup = core.ByID
	}
	if cfg.Version == "" {
		cfg.Version = CodeVersion()
	}
	reg := cfg.Registry
	cache, err := OpenCache(cfg.CacheDir, reg)
	if err != nil {
		return nil, err
	}
	var flightRec *obs.FlightRecorder
	if cfg.FlightDir != "" {
		flightRec, err = obs.OpenFlightRecorder(cfg.FlightDir)
		if err != nil {
			return nil, err
		}
	}
	resources := obs.NewResourceSampler(reg)
	runCtx, stopRuns := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		cache:     cache,
		adm:       NewAdmission(cfg.MaxActive, cfg.MaxQueue, reg),
		flights:   newFlightGroup(reg),
		runCtx:    runCtx,
		stopRuns:  stopRuns,
		resources: resources,
		// The wall ticker keeps the proc.* gauges fresh for scrapes and
		// raises run-window peaks even mid-experiment; Drain stops it.
		stopResources: resources.Start(resourceSampleInterval),
		flightRec:     flightRec,
		httpInflight:  httpInflightGauge(reg),

		executed:        reg.Counter("reprod.runs.executed"),
		panics:          reg.Counter("reprod.runs.panics"),
		deadlines:       reg.Counter("reprod.runs.deadline"),
		failures:        reg.Counter("reprod.runs.failed"),
		progressDropped: reg.Counter("reprod.progress.dropped"),
		runMS:           reg.Histogram("reprod.run.ms"),
		drainGauge:      reg.Gauge("reprod.draining"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.instrument("run", s.handleRun))
	s.mux.HandleFunc("GET /runs/{key}", s.instrument("manifest", s.handleManifest))
	s.mux.HandleFunc("GET /runs/{key}/report", s.instrument("report", s.handleArtifact("report")))
	s.mux.HandleFunc("GET /runs/{key}/report.html", s.instrument("report_html", s.handleArtifact("html")))
	s.mux.HandleFunc("GET /runs/{key}/csv/{name}", s.instrument("csv", s.handleCSV))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrument("metrics", obs.PrometheusHandler(reg).ServeHTTP))
	return s, nil
}

// resourceSampleInterval paces the server's background resource ticker.
// Run windows also sample at their own open/close, so this only bounds
// how stale the live gauges and mid-run peaks can get.
const resourceSampleInterval = 5 * time.Second

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the artifact store (tests and the drain path use it).
func (s *Server) Cache() *Cache { return s.cache }

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// apiError is the JSON error envelope for non-run errors (bad specs,
// unknown routes); run failures reuse RunError inside the same shape.
type apiError struct {
	Error RunError `json:"error"`
}

// writeJSONError emits the envelope with the given status.
func writeJSONError(w http.ResponseWriter, status int, e RunError) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "5")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: e})
}

// handleRun is the submission endpoint: POST a Spec, get the rendered
// report back (or, with ?stream=1, a live NDJSON progress stream ending
// in a run.result event).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSONError(w, http.StatusServiceUnavailable,
			RunError{Kind: "draining", Message: "server is draining; retry against another replica"})
		return
	}

	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSONError(w, http.StatusBadRequest,
			RunError{Kind: "bad_request", Message: "invalid spec: " + err.Error()})
		return
	}
	if err := spec.Validate(s.cfg.Lookup); err != nil {
		writeJSONError(w, http.StatusBadRequest,
			RunError{Kind: "bad_request", Experiment: spec.ID, Message: err.Error()})
		return
	}
	key := spec.Key(s.cfg.Version)
	stream := r.URL.Query().Get("stream") == "1"

	// Cache fast path: repeat requests are a file read, no admission.
	if b, ok := s.cache.Get(key); ok {
		if stream {
			s.streamCached(w, b)
			return
		}
		s.serveBundleReport(w, b, "hit")
		return
	}

	// Dedup: one execution per key, however many clients are asking.
	c, leader := s.flights.get(key, func() *call {
		timeout := s.cfg.RunTimeout
		if spec.TimeoutMS > 0 {
			if d := time.Duration(spec.TimeoutMS) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
		ctx, cancel := context.WithTimeout(s.runCtx, timeout)
		hub := newProgressHub(s.progressDropped)
		tracer := obs.NewTracer(2048, nil)
		tracer.AddStream(hub.publish)
		return &call{
			done:     make(chan struct{}),
			ctx:      ctx,
			cancel:   cancel,
			progress: hub,
			tracer:   tracer,
		}
	})
	leave := c.join()
	defer leave()

	if leader {
		s.inflight.Add(1)
		go s.execute(c, spec, key)
	}

	if stream {
		s.streamProgress(w, r, c, key)
		return
	}

	source := "join"
	if leader {
		source = "miss"
	}
	select {
	case <-c.done:
	case <-r.Context().Done():
		// Client gone; leave() may cancel the run if it was the last.
		return
	}
	if c.err != nil {
		s.writeRunError(w, c.err)
		return
	}
	s.serveBundleReport(w, c.bundle, source)
}

// execute is the leader goroutine for one call: admission, deadline,
// panic containment, artifact build, cache commit, result publication.
func (s *Server) execute(c *call, spec Spec, key string) {
	defer s.inflight.Done()
	defer c.cancel()

	finish := func(b *Bundle, err error) {
		// Forget before finish: once the result is out, later arrivals
		// must go through the cache (success) or retry fresh (failure)
		// rather than joining a dead call.
		s.flights.forget(key)
		status := "ok key=" + key
		if err != nil {
			status = "error: " + summarizeError(err)
		}
		c.tracer.Emit(obs.Event{Kind: "run.result", Detail: status})
		c.finish(b, err)
	}

	release, err := s.adm.Acquire(c.ctx)
	if err != nil {
		finish(nil, s.classify(spec, err))
		return
	}
	defer release()

	// A predecessor may have committed this key between our cache miss
	// and our slot grant; serving it beats recomputing it.
	if b, ok := s.cache.Get(key); ok {
		finish(b, nil)
		return
	}

	exp, ok := s.cfg.Lookup(spec.ID)
	if !ok { // validated earlier; defensive
		finish(nil, &RunError{Kind: "failed", Experiment: spec.ID, Message: "experiment vanished"})
		return
	}

	s.executed.Inc()
	begin := time.Now()
	var out bytes.Buffer
	var reports []*core.Report
	runner := core.Runner{
		Workers: spec.Workers,
		Options: spec.Options(),
		Trace:   c.tracer,
		Collect: func(r *core.Report) { reports = append(reports, r) },
		// The runner opens a nested window per experiment and dumps the
		// flight record itself on panic/deadline, keyed by our cache key
		// so the crash artifact shares the run's address.
		Resources:      s.resources,
		FlightRecorder: s.flightRec,
		FlightKey:      key,
	}
	endRes := s.resources.StartRun()
	runErr := runner.Run(c.ctx, []core.Experiment{exp}, &out)
	res := endRes()
	s.runMS.Observe(time.Since(begin).Milliseconds())
	if runErr != nil {
		finish(nil, s.classify(spec, runErr))
		return
	}
	for _, rep := range reports {
		res.EventsProcessed += core.EventsProcessed(rep)
	}

	bundle, err := s.buildBundle(spec, key, out.Bytes(), reports, &res)
	if err != nil {
		s.failures.Inc()
		finish(nil, &RunError{Kind: "internal", Experiment: spec.ID, Message: err.Error()})
		return
	}
	if err := s.cache.Put(bundle); err != nil {
		// The run succeeded; serve the result even if persisting failed.
		finish(bundle, nil)
		return
	}
	finish(bundle, nil)
}

// buildBundle renders the full artifact set from the finished reports.
// res, when non-nil, becomes the bundle's Resources provenance and the
// HTML page's Resources section.
func (s *Server) buildBundle(spec Spec, key string, report []byte, reports []*core.Report, res *obs.ResourceStats) (*Bundle, error) {
	var html bytes.Buffer
	if err := core.RenderHTMLReportWithResources(&html, reports, res); err != nil {
		return nil, fmt.Errorf("render html: %w", err)
	}
	var csvs []core.CSVFile
	for _, rep := range reports {
		files, err := rep.CSVFiles()
		if err != nil {
			return nil, fmt.Errorf("render csv: %w", err)
		}
		csvs = append(csvs, files...)
	}
	return &Bundle{
		Key:       key,
		Version:   s.cfg.Version,
		Spec:      spec,
		Report:    string(report),
		HTML:      html.String(),
		CSV:       csvs,
		Resources: res,
	}, nil
}

// classify converts an execution error into the structured RunError the
// client sees, bumping the matching failure counter.
func (s *Server) classify(spec Spec, err error) *RunError {
	var re *RunError
	if errors.As(err, &re) {
		return re
	}
	var pe *par.PanicError
	switch {
	case errors.Is(err, ErrShed):
		return &RunError{Kind: "queue_full", Experiment: spec.ID,
			Message: "admission queue full; retry later"}
	case errors.As(err, &pe):
		s.panics.Inc()
		return &RunError{Kind: "panic", Experiment: spec.ID,
			Message: fmt.Sprintf("experiment panicked: %v\n%s", pe.Value, truncate(string(pe.Stack), 4096))}
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlines.Inc()
		return &RunError{Kind: "deadline", Experiment: spec.ID,
			Message: "run exceeded its wall-clock deadline"}
	case errors.Is(err, context.Canceled):
		return &RunError{Kind: "canceled", Experiment: spec.ID,
			Message: "run cancelled (client disconnect or server drain)"}
	default:
		s.failures.Inc()
		return &RunError{Kind: "failed", Experiment: spec.ID, Message: err.Error()}
	}
}

// summarizeError compresses an error for the run.result trace event.
func summarizeError(err error) string {
	var re *RunError
	if errors.As(err, &re) {
		return re.Kind + ": " + truncate(firstLine(re.Message), 200)
	}
	return truncate(firstLine(err.Error()), 200)
}

// writeRunError emits a run failure with its mapped status.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var re *RunError
	if !errors.As(err, &re) {
		re = &RunError{Kind: "internal", Message: err.Error()}
	}
	writeJSONError(w, re.status(), *re)
}

// serveBundleReport writes the bundle's rendered report as the response
// body — byte-identical to the reproduce CLI's stdout for the same
// spec, whichever of hit/miss/join produced it.
func (s *Server) serveBundleReport(w http.ResponseWriter, b *Bundle, source string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Reprod-Key", b.Key)
	w.Header().Set("X-Reprod-Cache", source)
	_, _ = w.Write([]byte(b.Report))
}

// streamCached answers a ?stream=1 request whose artifact is already
// cached: a single run.result event.
func (s *Server) streamCached(w http.ResponseWriter, b *Bundle) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Reprod-Key", b.Key)
	w.Header().Set("X-Reprod-Cache", "hit")
	nd := obs.NewNDJSONWriter(nopCloser{w})
	nd.AutoFlush(true)
	nd.Sink()(obs.Event{Time: time.Now(), Kind: "run.result", Detail: "ok key=" + b.Key})
}

// streamProgress streams the call's live trace events as NDJSON until
// the run finishes (final event: run.result) or the client leaves.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request, c *call, key string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Reprod-Key", key)
	nd := obs.NewNDJSONWriter(nopCloser{w})
	nd.AutoFlush(true)
	sink := nd.Sink()

	ch, unsub := c.progress.subscribe()
	defer unsub()

	for {
		select {
		case ev := <-ch:
			sink(ev)
			if ev.Kind == "run.result" {
				return
			}
		case <-c.done:
			// Drain whatever the hub already queued, then stop; the
			// run.result event was published before done closed.
			for {
				select {
				case ev := <-ch:
					sink(ev)
					if ev.Kind == "run.result" {
						return
					}
				default:
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// nopCloser hides the http.ResponseWriter's lack of Close from the
// NDJSON writer while preserving its Flush.
type nopCloser struct{ w http.ResponseWriter }

func (n nopCloser) Write(p []byte) (int, error) { return n.w.Write(p) }
func (n nopCloser) Flush() {
	if f, ok := n.w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleManifest describes a cached artifact set.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := s.cache.Get(key)
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			RunError{Kind: "not_found", Message: "no artifact under key " + key})
		return
	}
	type manifest struct {
		Key       string             `json:"key"`
		Version   string             `json:"version"`
		Spec      Spec               `json:"spec"`
		Report    string             `json:"report"`
		HTML      string             `json:"html"`
		CSVs      []string           `json:"csvs"`
		CSVPrefix string             `json:"csv_prefix"`
		Resources *obs.ResourceStats `json:"resources,omitempty"`
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(manifest{
		Key:       b.Key,
		Version:   b.Version,
		Spec:      b.Spec,
		Report:    "/runs/" + key + "/report",
		HTML:      "/runs/" + key + "/report.html",
		CSVs:      b.CSVNames(),
		CSVPrefix: "/runs/" + key + "/csv/",
		Resources: b.Resources,
	})
}

// handleArtifact serves the report text or HTML page for a cached key.
func (s *Server) handleArtifact(which string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		b, ok := s.cache.Get(key)
		if !ok {
			writeJSONError(w, http.StatusNotFound,
				RunError{Kind: "not_found", Message: "no artifact under key " + key})
			return
		}
		w.Header().Set("X-Reprod-Key", b.Key)
		switch which {
		case "html":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(b.HTML))
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(b.Report))
		}
	}
}

// handleCSV serves one CSV sidecar.
func (s *Server) handleCSV(w http.ResponseWriter, r *http.Request) {
	key, name := r.PathValue("key"), r.PathValue("name")
	b, ok := s.cache.Get(key)
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			RunError{Kind: "not_found", Message: "no artifact under key " + key})
		return
	}
	f, ok := b.CSVByName(name)
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			RunError{Kind: "not_found", Message: "no CSV " + name + " under key " + key})
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_, _ = w.Write(f.Data)
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing new work here while in-flight runs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

// Drain performs the graceful shutdown sequence: stop admitting, let
// in-flight runs finish until ctx expires, then cancel them and wait a
// bounded grace for the pool to unwind, and finally flush the cache
// index. It returns nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.setDraining()
	s.stopResources()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Past the drain deadline: cancel every run (they poll their
		// contexts) and give the pool a bounded grace to unwind.
		s.stopRuns()
		select {
		case <-done:
		case <-time.After(s.cfg.ForceGrace):
			err = errors.New("reprod: in-flight runs did not stop within the drain grace")
		}
	}
	if ferr := s.cache.FlushIndex(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// truncate clips s to max bytes.
func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + "…(truncated)"
}

// firstLine clips s at the first newline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
