package reprod

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// call is one in-flight execution of a spec key. Every handler serving
// that key — the leader that created it and any followers that joined —
// waits on done and then reads the immutable result fields. waiters
// counts the clients still interested; when the last one leaves before
// the run finishes, cancel fires and the execution stops, so a run
// whose every client disconnected never burns a slot to completion
// (unless it already finished, in which case the result is cached
// anyway).
type call struct {
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc

	waiters  atomic.Int64
	finished atomic.Bool

	// progress fans trace events out to streaming subscribers.
	progress *progressHub
	// tracer is the run's live progress tracer (core.Runner.Trace).
	tracer *obs.Tracer

	// Results, valid after done closes.
	bundle *Bundle
	err    error
}

// join registers one interested client. The returned leave function
// must be called when the client stops waiting (served, disconnected,
// or timed out); the last leaver of an unfinished call cancels the run.
func (c *call) join() (leave func()) {
	c.waiters.Add(1)
	var left atomic.Bool
	return func() {
		if left.Swap(true) {
			return
		}
		if c.waiters.Add(-1) == 0 && !c.finished.Load() {
			c.cancel()
		}
	}
}

// finish publishes the result and wakes every waiter.
func (c *call) finish(b *Bundle, err error) {
	c.bundle = b
	c.err = err
	c.finished.Store(true)
	close(c.done)
}

// flightGroup deduplicates concurrent executions by key: the first
// request for a key becomes the leader and executes; requests arriving
// while it runs join the same call and receive the identical result.
// This is the singleflight half of the millions-of-users story — a
// thundering herd of identical specs costs one run.
type flightGroup struct {
	mu     sync.Mutex
	flight map[string]*call
	joined *obs.Counter
}

func newFlightGroup(reg *obs.Registry) *flightGroup {
	return &flightGroup{
		flight: make(map[string]*call),
		joined: reg.Counter("reprod.singleflight.joined"),
	}
}

// get returns the call for key, creating it (leader == true) when no
// execution is in flight. newCall constructs the call under the group
// lock so two leaders can never race for one key.
func (g *flightGroup) get(key string, newCall func() *call) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.flight[key]; ok {
		g.joined.Inc()
		return c, false
	}
	c = newCall()
	g.flight[key] = c
	return c, true
}

// forget removes a completed call so future requests go back through
// the cache (hits) or start a fresh execution (e.g. after a failure).
func (g *flightGroup) forget(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.flight, key)
}

// progressHub broadcasts trace events to a dynamic set of subscribers.
// Publishing never blocks: a subscriber that cannot keep up has events
// dropped (counted per hub), mirroring the bounded-ring overload policy
// of the tracer itself — a slow streaming client cannot stall the run.
type progressHub struct {
	mu      sync.Mutex
	nextID  int
	subs    map[int]chan obs.Event
	dropped *obs.Counter
}

func newProgressHub(dropped *obs.Counter) *progressHub {
	return &progressHub{subs: make(map[int]chan obs.Event), dropped: dropped}
}

// publish fans one event out, dropping per-subscriber on overflow.
func (h *progressHub) publish(ev obs.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Inc()
		}
	}
}

// subscribe registers a buffered event channel; unsubscribe via the
// returned function (safe to call once the subscriber stops reading).
func (h *progressHub) subscribe() (<-chan obs.Event, func()) {
	ch := make(chan obs.Event, 256)
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.subs[id] = ch
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, id)
		h.mu.Unlock()
	}
}
