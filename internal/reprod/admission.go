package reprod

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrShed is returned by Admission.Acquire when the waiting queue is
// full: the request is rejected immediately (HTTP 429 + Retry-After)
// instead of piling up an unbounded goroutine backlog.
var ErrShed = errors.New("reprod: admission queue full")

// Admission is a bounded two-stage gate in front of the run engine: at
// most maxActive runs execute concurrently, at most maxQueue admitted
// requests wait for an execution slot, and everything beyond that is
// shed explicitly. The gate is the service's overload valve — under
// flood the server's memory use stays proportional to
// maxActive + maxQueue, never to the offered load.
type Admission struct {
	maxQueue int64
	tokens   chan struct{}
	waiting  atomic.Int64

	queueDepth *obs.Gauge
	active     *obs.Gauge
	shed       *obs.Counter
}

// NewAdmission builds a gate with the given limits (maxActive < 1 is
// raised to 1; maxQueue < 0 is treated as 0, i.e. shed whenever all
// slots are busy). reg, when non-nil, receives reprod.queue.depth,
// reprod.runs.active, and reprod.shed.total.
func NewAdmission(maxActive, maxQueue int, reg *obs.Registry) *Admission {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		maxQueue:   int64(maxQueue),
		tokens:     make(chan struct{}, maxActive),
		queueDepth: reg.Gauge("reprod.queue.depth"),
		active:     reg.Gauge("reprod.runs.active"),
		shed:       reg.Counter("reprod.shed.total"),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns a release function on success; ErrShed
// when the queue is already full (the caller should reply 429); or
// ctx.Err() when the caller gave up (disconnect, deadline, drain)
// before a slot freed. release must be called exactly once.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free right now, no queueing involved.
	select {
	case a.tokens <- struct{}{}:
		return a.claimed(), nil
	default:
	}

	// Slow path: all slots busy — join the bounded queue or shed. The
	// atomic counter caps the waiter population exactly at maxQueue,
	// whatever the arrival concurrency.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.shed.Inc()
		return nil, ErrShed
	}
	a.queueDepth.Set(a.waiting.Load())
	defer func() {
		a.waiting.Add(-1)
		a.queueDepth.Set(a.waiting.Load())
	}()

	select {
	case a.tokens <- struct{}{}:
		return a.claimed(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// claimed finalises a successful token grab, returning the idempotent
// release function.
func (a *Admission) claimed() func() {
	a.active.Add(1)
	var released atomic.Bool
	return func() {
		if released.Swap(true) {
			return
		}
		a.active.Add(-1)
		<-a.tokens
	}
}

// Active reports how many runs hold slots right now.
func (a *Admission) Active() int64 { return a.active.Value() }

// Waiting reports how many requests are parked in the queue.
func (a *Admission) Waiting() int64 { return a.waiting.Load() }
