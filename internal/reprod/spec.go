// Package reprod is the reproduce-as-a-service layer: a hardened HTTP
// server that accepts experiment specs, executes them through the
// core.Runner engine, and serves the finished artifacts (rendered
// report, HTML page, CSV sidecars) out of a crash-safe content-addressed
// cache.
//
// The design is robustness-first, because the service exists to absorb
// exactly the abuse the paper documents on the live network (88.8%
// connection-failure rates, churn, ADDR flooders): admission is bounded
// and sheds load explicitly with 429 + Retry-After, every run carries a
// wall-clock deadline and is cancelled when the last interested client
// disconnects, a panicking experiment becomes a structured error
// response while the server keeps serving, and identical concurrent
// specs are deduplicated through a singleflight group so N submissions
// cost one execution. Results are deterministic functions of
// (code version, spec), so artifacts are keyed by a content hash and
// persisted with a temp-file + fsync + rename protocol that a kill -9
// can never tear.
package reprod

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/node"
)

// Spec is one client-submitted experiment request. The result-relevant
// fields (ID, Seed, Scale, NetSize, Quick, Policies) form the cache
// identity; Workers and TimeoutMS tune execution without changing the
// artifact (results are byte-identical at any worker count, and a
// deadline either produces the full artifact or no artifact), so they
// stay out of the key.
type Spec struct {
	// ID names the experiment (core registry: "fig1" … "chaos").
	ID string `json:"id"`
	// Seed drives all randomness (0 means the engine default, 1).
	Seed int64 `json:"seed,omitempty"`
	// Scale multiplies the snapshot-study population sizes.
	Scale float64 `json:"scale,omitempty"`
	// NetSize is the live-node count for message-level simulations.
	NetSize int `json:"netsize,omitempty"`
	// Quick selects the reduced smoke-run sizes.
	Quick bool `json:"quick,omitempty"`
	// Policies restricts the intervention-grid experiment (fig_interv)
	// to stock versus this policy set. It must be a canonical
	// node.ParsePolicySet encoding ("tried-only-addr+horizon-17d", or
	// "stock"); other experiments ignore it but it still keys the cache.
	Policies string `json:"policies,omitempty"`
	// Workers is the intra-experiment fan-out width (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS, when positive, lowers the server's per-run deadline for
	// this spec (it can never raise it past the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Validate rejects specs the server must not run: unknown experiment
// IDs and parameters outside the ranges the simulator is calibrated
// for. lookup resolves experiment IDs (the server injects core.ByID;
// tests inject synthetic registries).
func (s Spec) Validate(lookup func(string) (core.Experiment, bool)) error {
	if s.ID == "" {
		return fmt.Errorf("reprod: spec has no experiment id")
	}
	if _, ok := lookup(s.ID); !ok {
		return fmt.Errorf("reprod: unknown experiment %q", s.ID)
	}
	if s.Seed < 0 {
		return fmt.Errorf("reprod: negative seed %d", s.Seed)
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("reprod: scale %g out of range [0, 1]", s.Scale)
	}
	if s.NetSize < 0 || s.NetSize > 5000 {
		return fmt.Errorf("reprod: netsize %d out of range [0, 5000]", s.NetSize)
	}
	if s.Workers < 0 || s.Workers > 64 {
		return fmt.Errorf("reprod: workers %d out of range [0, 64]", s.Workers)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("reprod: negative timeout_ms %d", s.TimeoutMS)
	}
	if s.Policies != "" {
		set, err := node.ParsePolicySet(s.Policies)
		if err != nil {
			return fmt.Errorf("reprod: %w", err)
		}
		// The key hashes the string verbatim, so only the canonical
		// encoding is admitted — otherwise equivalent spellings would
		// fragment the cache.
		if set.String() != s.Policies {
			return fmt.Errorf("reprod: policies %q is not canonical (use %q)",
				s.Policies, set.String())
		}
	}
	return nil
}

// Options maps the spec onto engine options.
func (s Spec) Options() core.Options {
	return core.Options{
		Seed:     s.Seed,
		Scale:    s.Scale,
		NetSize:  s.NetSize,
		Quick:    s.Quick,
		Workers:  s.Workers,
		Policies: s.Policies,
	}
}

// Key derives the spec's content address: a SHA-256 over the code
// version and the result-relevant fields in a fixed canonical encoding.
// Two requests share a key exactly when they are guaranteed to produce
// byte-identical artifacts.
func (s Spec) Key(version string) string {
	canonical := fmt.Sprintf("v=%s|id=%s|seed=%d|scale=%g|netsize=%d|quick=%t",
		version, s.ID, s.Seed, s.Scale, s.NetSize, s.Quick)
	// The policies field is appended only when set: every pre-policy
	// spec keeps the exact key it had before the field existed, so a
	// populated cache survives the upgrade. Validate admits only the
	// canonical encoding, so equivalent spellings cannot fragment the
	// cache, and "" (absent) versus "stock" (explicit) are the only two
	// spellings of stock — the legacy one stays the default.
	if s.Policies != "" {
		canonical += "|policies=" + s.Policies
	}
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// CodeVersion identifies the running build for cache keying: the VCS
// revision when the binary carries one (suffixed when the worktree was
// dirty), otherwise the main module version, otherwise "dev". A cache
// shared across deployments can therefore never serve artifacts from a
// different code version.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		return rev + modified
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}
