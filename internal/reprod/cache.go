package reprod

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Bundle is the complete artifact set for one spec: everything a client
// can fetch, rendered once and stored as a single JSON document so the
// whole result is committed (or not) atomically.
type Bundle struct {
	// Key is the content address the bundle is stored under.
	Key string `json:"key"`
	// Version is the code version that produced it.
	Version string `json:"version"`
	// Spec is the request that produced it.
	Spec Spec `json:"spec"`
	// Report is the rendered text report — byte-identical to what
	// `reproduce -id <id>` writes to stdout for the same options.
	Report string `json:"report"`
	// HTML is the self-contained HTML page for the run.
	HTML string `json:"html"`
	// CSV holds the CSV sidecars ([]byte fields serialize as base64).
	CSV []core.CSVFile `json:"csv,omitempty"`
	// Resources is the process accounting of the execution that produced
	// this bundle (peak heap, CPU time, events processed). It describes
	// the one run that filled the cache entry — a provenance record, not
	// part of the deterministic result surface — so it lives only in the
	// manifest and the HTML Resources section, never in Report or CSV.
	Resources *obs.ResourceStats `json:"resources,omitempty"`
}

// CSVNames lists the bundle's CSV artifact names in order.
func (b *Bundle) CSVNames() []string {
	names := make([]string, len(b.CSV))
	for i, f := range b.CSV {
		names[i] = f.Name
	}
	return names
}

// CSVByName finds one CSV artifact.
func (b *Bundle) CSVByName(name string) (core.CSVFile, bool) {
	for _, f := range b.CSV {
		if f.Name == name {
			return f, true
		}
	}
	return core.CSVFile{}, false
}

// indexEntry is one cache entry's bookkeeping in the persisted index.
type indexEntry struct {
	Size int64 `json:"size"`
	Hits int64 `json:"hits"`
}

// Cache is the crash-safe content-addressed artifact store. Every
// bundle lives in one file named <key>.json; writes go through a
// temp-file + fsync + rename protocol, so a reader can only ever
// observe a complete bundle or no bundle — a kill -9 mid-write leaves a
// .tmp- leftover that the next Open sweeps, never a torn final file.
// As defence in depth, a final file that fails to decode (manual
// corruption, partial copy from elsewhere) is treated as a miss and
// removed rather than served.
type Cache struct {
	dir string

	mu    sync.Mutex
	index map[string]indexEntry

	hits, misses *obs.Counter
	entries      *obs.Gauge
}

// tmpPrefix marks in-progress writes; Open deletes leftovers. It is the
// shared obs prefix so the cache and the flight recorder speak the same
// crash-sweep protocol.
const tmpPrefix = obs.AtomicTempPrefix

// indexName is the advisory index file flushed on drain. The directory
// scan is authoritative on open — the index only carries hit counters
// across restarts — so losing it is harmless.
const indexName = "index.json"

// OpenCache opens (creating if needed) the cache rooted at dir,
// sweeps torn temp files from a previous crash, and rebuilds the entry
// index from the directory contents. reg, when non-nil, receives the
// reprod.cache.* metrics.
func OpenCache(dir string, reg *obs.Registry) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reprod: create cache dir %s: %w", dir, err)
	}
	c := &Cache{
		dir:     dir,
		index:   make(map[string]indexEntry),
		hits:    reg.Counter("reprod.cache.hits"),
		misses:  reg.Counter("reprod.cache.misses"),
		entries: reg.Gauge("reprod.cache.entries"),
	}

	// Merge hit counters from a previous drain's index, if one survives.
	prior := make(map[string]indexEntry)
	if data, err := os.ReadFile(filepath.Join(dir, indexName)); err == nil {
		_ = json.Unmarshal(data, &prior) // advisory: a corrupt index is ignored
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reprod: scan cache dir %s: %w", dir, err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			// A write that died mid-flight; the final file was never
			// renamed into place, so this is garbage by construction.
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".json") && name != indexName:
			key := strings.TrimSuffix(name, ".json")
			info, err := ent.Info()
			if err != nil {
				continue
			}
			e := indexEntry{Size: info.Size()}
			if p, ok := prior[key]; ok {
				e.Hits = p.Hits
			}
			c.index[key] = e
		}
	}
	c.entries.Set(int64(len(c.index)))
	return c, nil
}

// path returns the final file for key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the bundle for key. A missing, torn, or undecodable file is
// a miss (the latter is also removed); only a fully committed bundle is
// ever returned.
func (c *Cache) Get(key string) (*Bundle, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil || b.Key != key {
		// Corrupt or foreign content under this key: drop it so the next
		// request recomputes instead of serving garbage forever.
		_ = os.Remove(c.path(key))
		c.mu.Lock()
		delete(c.index, key)
		c.entries.Set(int64(len(c.index)))
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	e := c.index[key]
	e.Hits++
	e.Size = int64(len(data))
	c.index[key] = e
	c.mu.Unlock()
	c.hits.Inc()
	return &b, true
}

// Put commits the bundle under its key: marshal, write to a temp file
// in the same directory, fsync the file, rename over the final name,
// and fsync the directory so the rename itself survives a crash. A
// concurrent Get during any point of this sequence sees either the old
// state or the complete new bundle, never a prefix.
func (c *Cache) Put(b *Bundle) error {
	data, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("reprod: marshal bundle %s: %w", b.Key, err)
	}
	if err := obs.AtomicWriteFile(c.dir, b.Key+".json", data); err != nil {
		return err
	}
	c.mu.Lock()
	e := c.index[b.Key]
	e.Size = int64(len(data))
	c.index[b.Key] = e
	c.entries.Set(int64(len(c.index)))
	c.mu.Unlock()
	return nil
}

// Len reports the number of committed entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// FlushIndex persists the advisory index (sizes and hit counters) with
// the same atomic protocol as bundles — the drain path calls this so
// hit statistics survive orderly restarts.
func (c *Cache) FlushIndex() error {
	c.mu.Lock()
	data, err := json.Marshal(c.index)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("reprod: marshal cache index: %w", err)
	}
	return obs.AtomicWriteFile(c.dir, indexName, data)
}
