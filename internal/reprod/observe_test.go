package reprod

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// fetchMetrics scrapes the test server's /metrics endpoint.
func fetchMetrics(t *testing.T, ts *testServer) string {
	t.Helper()
	resp, err := http.Get(ts.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

// TestServerHTTPSLOMetrics: every route is instrumented, so one run, one
// health probe, and the scrape itself all show up with request counters,
// latency histograms, the shared in-flight gauge, and the process proc.*
// gauges the resource sampler publishes.
func TestServerHTTPSLOMetrics(t *testing.T) {
	ts := newTestServer(t, nil)

	if resp, body := ts.postSpec(t, `{"id":"tiny","seed":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d, body %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		"reprod_http_run_requests 1",
		"reprod_http_healthz_requests 1",
		"reprod_http_run_ms_count 1",
		// The scrape in flight is the only request in flight.
		"reprod_http_inflight 1",
		// No 5xx anywhere in this scenario.
		"reprod_http_run_errors 0",
		// The resource sampler's live view rides the same registry.
		"proc_heap_alloc_bytes",
		"proc_goroutines",
		"proc_heap_alloc_max_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestServerHTTPErrorCounter: only 5xx responses count as errors — a 400
// bad spec is the service working as designed, a panic 500 is not.
func TestServerHTTPErrorCounter(t *testing.T) {
	ts := newTestServer(t, nil)

	if resp, _ := ts.postSpec(t, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	if got := ts.reg.Counter("reprod.http.run.errors").Value(); got != 0 {
		t.Errorf("errors after 400 = %d, want 0", got)
	}
	if resp, _ := ts.postSpec(t, `{"id":"angry"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("angry status = %d, want 500", resp.StatusCode)
	}
	if got := ts.reg.Counter("reprod.http.run.errors").Value(); got != 1 {
		t.Errorf("errors after panic 500 = %d, want 1", got)
	}
	if got := ts.reg.Counter("reprod.http.run.requests").Value(); got != 2 {
		t.Errorf("requests = %d, want 2", got)
	}
}

// TestServerStreamStillFlushesInstrumented: the SLO wrapper must pass
// http.Flusher through, or NDJSON progress would buffer until the end.
// The stream test elsewhere covers content; this pins the Flush plumbing
// by checking a streamed response still carries the NDJSON content type
// and ends in run.result under the instrumented mux.
func TestServerStreamStillFlushesInstrumented(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, err := http.Post(ts.http.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"id":"tiny","seed":11}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "run.result") {
		t.Errorf("instrumented stream lost its trailing run.result:\n%s", body)
	}
}

// TestServerFlightRecordOnPanic: with FlightDir set, a panicking spec
// leaves a well-formed crash artifact named by the run's cache key — the
// same address the artifact endpoints would have used on success.
func TestServerFlightRecordOnPanic(t *testing.T) {
	flightDir := filepath.Join(t.TempDir(), "flightrec")
	ts := newTestServer(t, func(c *Config) { c.FlightDir = flightDir })

	resp, body := ts.postSpec(t, `{"id":"angry","seed":3}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if e := decodeRunError(t, body); e.Kind != "panic" {
		t.Fatalf("kind = %q, want panic", e.Kind)
	}

	key := (&Spec{ID: "angry", Seed: 3}).Key("test-v1")
	rec, err := obs.ReadFlightRecord(filepath.Join(flightDir, obs.FlightRecordName(key)))
	if err != nil {
		t.Fatalf("flight record unreadable: %v", err)
	}
	if rec.Key != key || rec.Cause != "panic" {
		t.Errorf("record key/cause = %q/%q, want %q/panic", rec.Key, rec.Cause, key)
	}
	if !strings.Contains(rec.Panic, "experiment meltdown") {
		t.Errorf("record panic = %q", rec.Panic)
	}
	if rec.Resources.PeakHeapBytes == 0 {
		t.Errorf("record resources empty: %+v", rec.Resources)
	}
	// The ring captured the run's lifecycle up to the crash.
	if rec.EventsTotal == 0 {
		t.Error("record has no trace events")
	}
}

// TestServerManifestAndHTMLResources: a successful run's provenance — the
// resource window of the one execution that filled the cache entry —
// lands in the manifest JSON and the bundle HTML's Resources section,
// while the text report (the determinism-checked surface shared with the
// CLI) stays free of it.
func TestServerManifestAndHTMLResources(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, report := ts.postSpec(t, `{"id":"tiny","seed":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	key := resp.Header.Get("X-Reprod-Key")
	if strings.Contains(report, "Resources") || strings.Contains(report, "peak") {
		t.Errorf("resource data leaked into the text report:\n%s", report)
	}

	mresp, err := http.Get(ts.http.URL + "/runs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var m struct {
		Resources *obs.ResourceStats `json:"resources"`
	}
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.Resources == nil || m.Resources.PeakHeapBytes == 0 || m.Resources.PeakGoroutines == 0 {
		t.Fatalf("manifest resources missing or empty: %s", mbody)
	}

	hresp, err := http.Get(ts.http.URL + "/runs/" + key + "/report.html")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(html), "<h2>Resources</h2>") {
		t.Error("bundle HTML lacks the Resources section")
	}
	if !strings.Contains(string(html), "peak heap") {
		t.Error("Resources section lacks the peak-heap row")
	}
}
