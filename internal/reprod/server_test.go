package reprod

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// testExperiments is the synthetic registry the server tests inject via
// Config.Lookup: a deterministic experiment, a panicking one, one that
// blocks until released, and one that sleeps until its context dies.
type testExperiments struct {
	// blockGate, when non-nil, gates the "block" experiment: its Run
	// waits here (or for ctx) before completing.
	blockGate chan struct{}
	// blockStarted receives one value each time "block" begins running.
	blockStarted chan struct{}
	// blockCancelled closes when a "block" run observes ctx cancellation.
	blockCancelled chan struct{}
	once           sync.Once
}

func newTestExperiments() *testExperiments {
	return &testExperiments{
		blockGate:      make(chan struct{}),
		blockStarted:   make(chan struct{}, 16),
		blockCancelled: make(chan struct{}),
	}
}

func (te *testExperiments) lookup(id string) (core.Experiment, bool) {
	switch id {
	case "tiny":
		return core.Experiment{ID: "tiny", Title: "tiny deterministic", Run: func(_ context.Context, o core.Options) (*core.Report, error) {
			r := &core.Report{ID: "tiny", Title: "tiny deterministic"}
			r.AddMetric("seed", fmt.Sprintf("%d", o.Seed), "")
			r.AddMetric("netsize", fmt.Sprintf("%d", o.NetSize), "")
			r.Tables = append(r.Tables, core.Table{
				Name:   "points",
				Header: []string{"x", "y"},
				Rows:   [][]string{{"1", fmt.Sprintf("%d", o.Seed*2)}},
			})
			return r, nil
		}}, true
	case "angry":
		return core.Experiment{ID: "angry", Title: "always panics", Run: func(context.Context, core.Options) (*core.Report, error) {
			panic("experiment meltdown")
		}}, true
	case "block":
		return core.Experiment{ID: "block", Title: "blocks until released", Run: func(ctx context.Context, _ core.Options) (*core.Report, error) {
			te.blockStarted <- struct{}{}
			select {
			case <-te.blockGate:
				return &core.Report{ID: "block", Title: "blocks until released"}, nil
			case <-ctx.Done():
				te.once.Do(func() { close(te.blockCancelled) })
				return nil, ctx.Err()
			}
		}}, true
	case "sleepy":
		return core.Experiment{ID: "sleepy", Title: "sleeps past any deadline", Run: func(ctx context.Context, _ core.Options) (*core.Report, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}}, true
	}
	return core.Experiment{}, false
}

// testServer wires a Server with the synthetic registry onto an
// httptest listener.
type testServer struct {
	*Server
	exps *testExperiments
	http *httptest.Server
	reg  *obs.Registry
}

func newTestServer(t *testing.T, mutate func(*Config)) *testServer {
	t.Helper()
	exps := newTestExperiments()
	reg := obs.NewRegistry()
	cfg := Config{
		CacheDir: filepath.Join(t.TempDir(), "cache"),
		Registry: reg,
		Lookup:   exps.lookup,
		Version:  "test-v1",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &testServer{Server: srv, exps: exps, http: hs, reg: reg}
}

// postSpec submits a spec and returns the response with its body read.
func (ts *testServer) postSpec(t *testing.T, spec string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.http.URL+"/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// decodeRunError parses the JSON error envelope.
func decodeRunError(t *testing.T, body string) RunError {
	t.Helper()
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body does not parse as the envelope: %v\n%s", err, body)
	}
	return env.Error
}

func TestServerRunMissThenHit(t *testing.T) {
	ts := newTestServer(t, nil)

	resp, body := ts.postSpec(t, `{"id":"tiny","seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Reprod-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	if !strings.Contains(body, "== tiny — tiny deterministic ==") || !strings.Contains(body, "seed") {
		t.Errorf("unexpected report body:\n%s", body)
	}
	key := resp.Header.Get("X-Reprod-Key")
	if len(key) != 64 {
		t.Errorf("X-Reprod-Key = %q, want a sha256 hex", key)
	}

	resp2, body2 := ts.postSpec(t, `{"id":"tiny","seed":7}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Reprod-Cache"); got != "hit" {
		t.Errorf("repeat cache header = %q, want hit", got)
	}
	if body2 != body {
		t.Errorf("cache hit body differs from the original:\n%q\n%q", body2, body)
	}
	if got := ts.reg.Counter("reprod.runs.executed").Value(); got != 1 {
		t.Errorf("executed = %d, want 1 (second request must be a cache hit)", got)
	}

	// Different seed → different key → separate execution.
	resp3, _ := ts.postSpec(t, `{"id":"tiny","seed":8}`)
	if resp3.Header.Get("X-Reprod-Key") == key {
		t.Error("different seed produced the same content key")
	}
}

// TestServerWorkersExcludedFromKey checks the execution-only knobs share
// one cache entry: same result-relevant fields at different worker
// counts or timeouts must not recompute.
func TestServerWorkersExcludedFromKey(t *testing.T) {
	ts := newTestServer(t, nil)
	resp1, body1 := ts.postSpec(t, `{"id":"tiny","seed":3,"workers":1}`)
	resp2, body2 := ts.postSpec(t, `{"id":"tiny","seed":3,"workers":4,"timeout_ms":60000}`)
	if resp1.Header.Get("X-Reprod-Key") != resp2.Header.Get("X-Reprod-Key") {
		t.Error("workers/timeout_ms changed the content key")
	}
	if resp2.Header.Get("X-Reprod-Cache") != "hit" {
		t.Errorf("second request = %q, want hit", resp2.Header.Get("X-Reprod-Cache"))
	}
	if body1 != body2 {
		t.Error("bodies differ across worker counts")
	}
	if got := ts.reg.Counter("reprod.runs.executed").Value(); got != 1 {
		t.Errorf("executed = %d, want 1", got)
	}
}

func TestServerBadRequests(t *testing.T) {
	ts := newTestServer(t, nil)
	for _, tc := range []struct {
		name, spec, wantIn string
	}{
		{"unknown id", `{"id":"nope"}`, "unknown experiment"},
		{"missing id", `{}`, "no experiment id"},
		{"unknown field", `{"id":"tiny","bogus":1}`, "invalid spec"},
		{"bad scale", `{"id":"tiny","scale":2}`, "out of range"},
		{"negative seed", `{"id":"tiny","seed":-1}`, "negative seed"},
		{"not json", `hello`, "invalid spec"},
	} {
		resp, body := ts.postSpec(t, tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if e := decodeRunError(t, body); !strings.Contains(e.Message, tc.wantIn) {
			t.Errorf("%s: message %q does not mention %q", tc.name, e.Message, tc.wantIn)
		}
	}
}

// TestServerConcurrentDedup fires N identical specs at a gated
// experiment: exactly one executes, the rest join its flight, and every
// client receives byte-identical bytes.
func TestServerConcurrentDedup(t *testing.T) {
	ts := newTestServer(t, nil)
	const n = 6

	type result struct {
		status int
		cache  string
		body   string
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.http.URL+"/run", "application/json",
				strings.NewReader(`{"id":"block","seed":1}`))
			if err != nil {
				t.Error(err)
				results <- result{}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("X-Reprod-Cache"), string(body)}
		}()
	}

	// One run starts; the other five join it while it blocks.
	select {
	case <-ts.exps.blockStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("no run ever started")
	}
	waitFor(t, func() bool { return ts.reg.Counter("reprod.singleflight.joined").Value() == n-1 })
	close(ts.exps.blockGate)

	first := ""
	var hits, misses, joins int
	for i := 0; i < n; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status = %d", r.status)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Error("responses are not byte-identical")
		}
		switch r.cache {
		case "hit":
			hits++
		case "miss":
			misses++
		case "join":
			joins++
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 leader", misses)
	}
	if joins != n-1 {
		t.Errorf("joins = %d, want %d", joins, n-1)
	}
	if got := ts.reg.Counter("reprod.runs.executed").Value(); got != 1 {
		t.Errorf("executed = %d, want 1 for %d concurrent identical specs", got, n)
	}
	select {
	case <-ts.exps.blockStarted:
		t.Error("a second run started despite the singleflight")
	default:
	}
}

// TestServerShedsWhenSaturated fills the single slot and the zero-length
// queue, then checks the overflow spec is rejected with a structured 429
// rather than queued forever.
func TestServerShedsWhenSaturated(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.MaxActive, c.MaxQueue = 1, 0 })

	holder := make(chan string, 1)
	go func() {
		_, body := ts.postSpec(t, `{"id":"block","seed":1}`)
		holder <- body
	}()
	select {
	case <-ts.exps.blockStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("slot-holding run never started")
	}

	resp, body := ts.postSpec(t, `{"id":"tiny","seed":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e := decodeRunError(t, body); e.Kind != "queue_full" {
		t.Errorf("kind = %q, want queue_full", e.Kind)
	}
	if got := ts.reg.Counter("reprod.shed.total").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// Free the slot; service recovers without restart.
	close(ts.exps.blockGate)
	<-holder
	if resp, _ := ts.postSpec(t, `{"id":"tiny","seed":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("post-shed request status = %d, want 200", resp.StatusCode)
	}
}

// TestServerPanicIsolation checks a panicking experiment becomes a
// structured 500 while the server keeps serving other specs.
func TestServerPanicIsolation(t *testing.T) {
	ts := newTestServer(t, nil)

	resp, body := ts.postSpec(t, `{"id":"angry"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	e := decodeRunError(t, body)
	if e.Kind != "panic" || e.Experiment != "angry" {
		t.Errorf("error = %+v, want kind panic for angry", e)
	}
	if !strings.Contains(e.Message, "experiment meltdown") || !strings.Contains(e.Message, "goroutine") {
		t.Errorf("panic message lacks value or stack:\n%s", e.Message)
	}
	if got := ts.reg.Counter("reprod.runs.panics").Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}

	// The panic is not cached and not sticky: the server still works.
	if resp, _ := ts.postSpec(t, `{"id":"tiny","seed":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("request after panic = %d, want 200", resp.StatusCode)
	}
	if resp, _ := ts.postSpec(t, `{"id":"angry"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("repeat angry = %d, want 500 again (failures are never cached)", resp.StatusCode)
	}
}

// TestServerDeadline checks a spec-level timeout turns a hung experiment
// into a 504 with kind "deadline".
func TestServerDeadline(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, body := ts.postSpec(t, `{"id":"sleepy","timeout_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if e := decodeRunError(t, body); e.Kind != "deadline" {
		t.Errorf("kind = %q, want deadline", e.Kind)
	}
	if got := ts.reg.Counter("reprod.runs.deadline").Value(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

// TestServerClientDisconnectCancelsRun checks the last client walking
// away cancels the execution instead of burning the slot to completion.
func TestServerClientDisconnectCancelsRun(t *testing.T) {
	ts := newTestServer(t, nil)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.http.URL+"/run",
		strings.NewReader(`{"id":"block","seed":9}`))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-ts.exps.blockStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	cancel()
	<-errc

	select {
	case <-ts.exps.blockCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("run context never cancelled after the only client left")
	}
	// The aborted run must not have poisoned the cache.
	waitFor(t, func() bool { return ts.Cache().Len() == 0 })
}

// TestServerStreamProgress checks ?stream=1 delivers NDJSON progress
// events ending in run.result.
func TestServerStreamProgress(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, err := http.Post(ts.http.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"id":"tiny","seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line is not JSON: %v\n%s", err, sc.Text())
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "run.result" && !strings.HasPrefix(ev.Detail, "ok key=") {
			t.Errorf("run.result detail = %q, want ok key=...", ev.Detail)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "run.result" {
		t.Fatalf("stream kinds = %v, want a trailing run.result", kinds)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "exp.start") || !strings.Contains(joined, "exp.done") {
		t.Errorf("stream lacks lifecycle events: %v", kinds)
	}

	// Streaming a cached spec yields a single run.result.
	resp2, err := http.Post(ts.http.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"id":"tiny","seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(cached)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "run.result") {
		t.Errorf("cached stream = %q, want one run.result line", string(cached))
	}
}

// TestServerArtifactEndpoints checks the manifest and artifact routes
// serve what the run produced.
func TestServerArtifactEndpoints(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, body := ts.postSpec(t, `{"id":"tiny","seed":2}`)
	key := resp.Header.Get("X-Reprod-Key")

	get := func(path string) (int, string) {
		r, err := http.Get(ts.http.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(b)
	}

	code, manifest := get("/runs/" + key)
	if code != http.StatusOK {
		t.Fatalf("manifest status = %d", code)
	}
	var m struct {
		Key  string   `json:"key"`
		CSVs []string `json:"csvs"`
	}
	if err := json.Unmarshal([]byte(manifest), &m); err != nil {
		t.Fatal(err)
	}
	if m.Key != key {
		t.Errorf("manifest key = %q, want %q", m.Key, key)
	}
	wantCSVs := []string{"tiny_points.csv", "tiny_metrics.csv"}
	if fmt.Sprint(m.CSVs) != fmt.Sprint(wantCSVs) {
		t.Errorf("manifest csvs = %v, want %v", m.CSVs, wantCSVs)
	}

	if code, rep := get("/runs/" + key + "/report"); code != http.StatusOK || rep != body {
		t.Errorf("report artifact differs from the POST body (status %d)", code)
	}
	if code, html := get("/runs/" + key + "/report.html"); code != http.StatusOK || !strings.Contains(html, "<!DOCTYPE html>") {
		t.Errorf("html artifact status %d or not a page", code)
	}
	if code, csvBody := get("/runs/" + key + "/csv/tiny_points.csv"); code != http.StatusOK || !strings.HasPrefix(csvBody, "x,y\n") {
		t.Errorf("csv artifact status %d, body %q", code, csvBody)
	}
	if code, _ := get("/runs/" + key + "/csv/nope.csv"); code != http.StatusNotFound {
		t.Errorf("missing csv status = %d, want 404", code)
	}
	if code, _ := get("/runs/" + strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("unknown key status = %d, want 404", code)
	}
}

// TestServerCrashRestartServesCachedByteIdentical simulates a kill -9:
// a new server process (same cache dir) must sweep torn temp files and
// serve the committed artifact byte-for-byte without re-executing.
func TestServerCrashRestartServesCachedByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	exps := newTestExperiments()

	s1, err := New(Config{CacheDir: dir, Lookup: exps.lookup, Version: "test-v1", Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(s1.Handler())
	resp, err := http.Post(h1.URL+"/run", "application/json", strings.NewReader(`{"id":"tiny","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	key := resp.Header.Get("X-Reprod-Key")
	h1.Close() // kill -9: no Drain, no FlushIndex

	// The crash interrupted an unrelated write mid-flight...
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"torn.json-99"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and corrupted a different (also unrelated) final file.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("f", 64)+".json"), []byte(`{"key":"f`), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	s2, err := New(Config{CacheDir: dir, Lookup: exps.lookup, Version: "test-v1", Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	h2 := httptest.NewServer(s2.Handler())
	defer h2.Close()

	resp2, err := http.Post(h2.URL+"/run", "application/json", strings.NewReader(`{"id":"tiny","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Reprod-Cache") != "hit" {
		t.Errorf("restart request = %q, want hit", resp2.Header.Get("X-Reprod-Cache"))
	}
	if resp2.Header.Get("X-Reprod-Key") != key {
		t.Errorf("restart key changed: %q vs %q", resp2.Header.Get("X-Reprod-Key"), key)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restart body differs:\n%q\n%q", got, want)
	}
	if exec := reg2.Counter("reprod.runs.executed").Value(); exec != 0 {
		t.Errorf("restart executed = %d, want 0 (must serve from cache)", exec)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"torn.json-99")); !os.IsNotExist(err) {
		t.Error("torn temp file survived the restart sweep")
	}
}

// TestServerDrain checks the graceful shutdown sequence: readiness
// degrades, new submissions are refused, a hung in-flight run is
// cancelled at the deadline, and the cache index lands on disk.
func TestServerDrain(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.ForceGrace = 2 * time.Second })

	// Park a run that only its context can stop.
	done := make(chan RunError, 1)
	go func() {
		_, body := ts.postSpec(t, `{"id":"sleepy","seed":1}`)
		done <- decodeRunError(t, body)
	}()
	select {
	case <-time.After(50 * time.Millisecond):
	}
	waitFor(t, func() bool { return ts.adm.Active() == 1 })

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := ts.Drain(drainCtx); err != nil {
		t.Fatalf("Drain = %v, want clean forced drain", err)
	}

	select {
	case e := <-done:
		if e.Kind != "canceled" && e.Kind != "deadline" {
			t.Errorf("drained run error kind = %q, want canceled/deadline", e.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight run never resolved during drain")
	}

	// Readiness and admission are both off.
	resp, err := http.Get(ts.http.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp2, body := ts.postSpec(t, `{"id":"tiny","seed":1}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", resp2.StatusCode)
	}
	if e := decodeRunError(t, body); e.Kind != "draining" {
		t.Errorf("kind = %q, want draining", e.Kind)
	}
	// Liveness stays green — the process is healthy, just not admitting.
	resp3, _ := http.Get(ts.http.URL + "/healthz")
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", resp3.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(ts.cfg.CacheDir, indexName)); err != nil {
		t.Errorf("drain did not flush the cache index: %v", err)
	}
}

// TestServerChaosDrill is the acceptance scenario: concurrent load with
// a panicking spec and a past-deadline spec mixed in. The two poisoned
// specs produce structured errors, every healthy spec produces a
// correct report, and the server answers health checks throughout.
func TestServerChaosDrill(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.MaxActive, c.MaxQueue = 2, 16 })

	type outcome struct {
		spec   string
		status int
		kind   string
		body   string
	}
	specs := []string{
		`{"id":"tiny","seed":1}`,
		`{"id":"tiny","seed":2}`,
		`{"id":"tiny","seed":3}`,
		`{"id":"tiny","seed":4}`,
		`{"id":"angry","seed":1}`,
		`{"id":"sleepy","seed":1,"timeout_ms":50}`,
		`{"id":"tiny","seed":5}`,
		`{"id":"tiny","seed":6}`,
	}
	results := make(chan outcome, len(specs))
	for _, spec := range specs {
		spec := spec
		go func() {
			resp, err := http.Post(ts.http.URL+"/run", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				results <- outcome{spec: spec}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o := outcome{spec: spec, status: resp.StatusCode, body: string(body)}
			if resp.StatusCode != http.StatusOK {
				var env apiError
				if json.Unmarshal(body, &env) == nil {
					o.kind = env.Error.Kind
				}
			}
			results <- o
		}()
	}

	// The server must stay responsive while the drill is in flight.
	resp, err := http.Get(ts.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during chaos = %d", resp.StatusCode)
	}

	var okCount, panicCount, deadlineCount int
	for range specs {
		o := <-results
		switch {
		case strings.Contains(o.spec, "angry"):
			if o.status != http.StatusInternalServerError || o.kind != "panic" {
				t.Errorf("angry spec: status %d kind %q, want 500/panic", o.status, o.kind)
			} else {
				panicCount++
			}
		case strings.Contains(o.spec, "sleepy"):
			if o.status != http.StatusGatewayTimeout || o.kind != "deadline" {
				t.Errorf("sleepy spec: status %d kind %q, want 504/deadline", o.status, o.kind)
			} else {
				deadlineCount++
			}
		default:
			if o.status != http.StatusOK {
				t.Errorf("healthy spec %s: status %d body %s", o.spec, o.status, o.body)
				continue
			}
			if !strings.Contains(o.body, "== tiny — tiny deterministic ==") {
				t.Errorf("healthy spec %s: malformed report:\n%s", o.spec, o.body)
				continue
			}
			okCount++
		}
	}
	if okCount != 6 || panicCount != 1 || deadlineCount != 1 {
		t.Fatalf("ok/panic/deadline = %d/%d/%d, want 6/1/1", okCount, panicCount, deadlineCount)
	}

	// Every healthy artifact is now cache-resident and survives a replay.
	for _, seed := range []int{1, 2, 3, 4, 5, 6} {
		resp, _ := ts.postSpec(t, fmt.Sprintf(`{"id":"tiny","seed":%d}`, seed))
		if resp.Header.Get("X-Reprod-Cache") != "hit" {
			t.Errorf("seed %d not cached after the drill", seed)
		}
	}
	if got := ts.Cache().Len(); got != 6 {
		t.Errorf("cache entries = %d, want 6 (failures are never cached)", got)
	}
	// /metrics exposes the drill's ledger.
	mresp, err := http.Get(ts.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"reprod_runs_executed", "reprod_runs_panics 1", "reprod_runs_deadline 1", "reprod_cache_entries 6"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestSpecKeyCanonicalization(t *testing.T) {
	base := Spec{ID: "fig1", Seed: 7, Scale: 0.5, NetSize: 100, Quick: true}
	k := base.Key("v1")

	same := base
	same.Workers = 32
	same.TimeoutMS = 99999
	if same.Key("v1") != k {
		t.Error("Workers/TimeoutMS changed the key; they must not affect artifacts")
	}

	for name, mutate := range map[string]func(*Spec){
		"id":      func(s *Spec) { s.ID = "fig3" },
		"seed":    func(s *Spec) { s.Seed = 8 },
		"scale":   func(s *Spec) { s.Scale = 0.25 },
		"netsize": func(s *Spec) { s.NetSize = 101 },
		"quick":   func(s *Spec) { s.Quick = false },
	} {
		m := base
		mutate(&m)
		if m.Key("v1") == k {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if base.Key("v2") == k {
		t.Error("changing the code version did not change the key")
	}
	if len(k) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(k))
	}
}

// TestSpecKeyPolicies pins the policy field's cache-key semantics: the
// field always participates in the key when set, and a spec without it
// keeps the exact key it had before the field existed (a populated
// cache survives the upgrade).
func TestSpecKeyPolicies(t *testing.T) {
	base := Spec{ID: "fig1", Seed: 7, Scale: 0.5, NetSize: 100, Quick: true}
	// Golden legacy key: sha256 of
	// "v=v1|id=fig1|seed=7|scale=0.5|netsize=100|quick=true". If this
	// changes, every pre-policy cache entry is orphaned.
	const legacy = "dae6a2e832047fc62886f7af6b873b29c19382a7012483232afd30e13148b37e"
	if k := base.Key("v1"); k != legacy {
		t.Errorf("no-policy key drifted: %s, want %s", k, legacy)
	}

	a, b, c := base, base, base
	a.Policies = "tried-only-addr"
	b.Policies = "tried-only-addr+horizon-17d"
	c.Policies = "stock"
	keys := map[string]string{
		"":         base.Key("v1"),
		a.Policies: a.Key("v1"),
		b.Policies: b.Key("v1"),
		c.Policies: c.Key("v1"),
	}
	seen := map[string]string{}
	for policies, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("specs with policies %q and %q collide on key %s", policies, prev, k)
		}
		seen[k] = policies
	}
}

// TestSpecValidatePolicies: only canonical policy-set encodings are
// admitted — anything else would fragment the content-addressed cache.
func TestSpecValidatePolicies(t *testing.T) {
	lookup := newTestExperiments().lookup
	for _, good := range []string{"", "stock", "tried-only-addr",
		"tried-only-addr+horizon-17d+priority-relay"} {
		s := Spec{ID: "tiny", Policies: good}
		if err := s.Validate(lookup); err != nil {
			t.Errorf("canonical policies %q rejected: %v", good, err)
		}
	}
	for _, bad := range []string{"nope", "stock+tried-only-addr",
		"tried-only-addr+tried-only-addr", "horizon-017d", "HORIZON-17D"} {
		s := Spec{ID: "tiny", Policies: bad}
		if err := s.Validate(lookup); err == nil {
			t.Errorf("non-canonical policies %q accepted", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	lookup := newTestExperiments().lookup
	ok := Spec{ID: "tiny", Seed: 1, Scale: 0.5, NetSize: 50, Workers: 4, TimeoutMS: 1000}
	if err := ok.Validate(lookup); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, s := range map[string]Spec{
		"empty id":    {},
		"unknown id":  {ID: "nope"},
		"neg seed":    {ID: "tiny", Seed: -1},
		"scale high":  {ID: "tiny", Scale: 1.5},
		"scale neg":   {ID: "tiny", Scale: -0.1},
		"netsize big": {ID: "tiny", NetSize: 9999},
		"workers big": {ID: "tiny", Workers: 100},
		"neg timeout": {ID: "tiny", TimeoutMS: -5},
	} {
		if err := s.Validate(lookup); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}
