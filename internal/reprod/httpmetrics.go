package reprod

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// This file is the service's SLO instrumentation: every route is wrapped
// so /metrics exposes, per endpoint, a request counter, an error counter
// (5xx only — a 404 or a shed 429 is the service working as designed),
// and a latency histogram, plus one process-wide in-flight gauge. Names
// follow the reprod.http.<route>.* scheme documented in README.

// statusWriter captures the response status for the error counter while
// passing Flush through — the NDJSON progress stream type-asserts its
// writer to http.Flusher, so the wrapper must not hide it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps h with the per-route SLO metrics. route is the short
// metric label ("run", "manifest", …), not the URL pattern.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter("reprod.http." + route + ".requests")
	errors := s.reg.Counter("reprod.http." + route + ".errors")
	latency := s.reg.Histogram("reprod.http." + route + ".ms")
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		s.httpInflight.Add(1)
		begin := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			s.httpInflight.Add(-1)
			latency.Observe(time.Since(begin).Milliseconds())
			if sw.status >= 500 {
				errors.Inc()
			}
		}()
		h(sw, r)
	}
}

// httpInflightGauge names the process-wide in-flight request gauge.
func httpInflightGauge(reg *obs.Registry) *obs.Gauge {
	return reg.Gauge("reprod.http.inflight")
}
