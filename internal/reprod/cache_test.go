package reprod

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func testBundle(key string) *Bundle {
	return &Bundle{
		Key:     key,
		Version: "test",
		Spec:    Spec{ID: "tiny", Seed: 5},
		Report:  "== tiny — tiny ==\n  seed  5\n\n",
		HTML:    "<!DOCTYPE html>\n",
		CSV: []core.CSVFile{
			{Name: "tiny_metrics.csv", Data: []byte("metric,measured,paper\nseed,5,\n")},
		},
	}
}

// fakeKey builds a syntactically plausible cache key.
func fakeKey(seed string) string {
	return strings.Repeat("0", 64-len(seed)) + seed
}

func TestCacheRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := OpenCache(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey("ab")
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache returned a bundle")
	}
	want := testBundle(key)
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Report != want.Report || got.HTML != want.HTML || len(got.CSV) != 1 ||
		!bytes.Equal(got.CSV[0].Data, want.CSV[0].Data) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if h, m := reg.Counter("reprod.cache.hits").Value(), reg.Counter("reprod.cache.misses").Value(); h != 1 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", h, m)
	}
}

// TestCacheSweepsTornTemp checks a temp file left by a crashed writer
// is deleted on open and never indexed.
func TestCacheSweepsTornTemp(t *testing.T) {
	dir := t.TempDir()
	torn := filepath.Join(dir, tmpPrefix+"half.json-123")
	if err := os.WriteFile(torn, []byte(`{"key":"half","report":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("torn temp file survived the open sweep")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// TestCacheCorruptEntryIsMissAndRemoved checks a torn or foreign final
// file is never served: it reads as a miss and is dropped.
func TestCacheCorruptEntryIsMissAndRemoved(t *testing.T) {
	dir := t.TempDir()
	key := fakeKey("bad")
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(`{"key":"bad","rep`), 0o644); err != nil {
		t.Fatal(err)
	}
	// An entry whose content is valid JSON but for a different key must
	// also be rejected — the content address is part of the contract.
	other := fakeKey("ee")
	data, _ := json.Marshal(testBundle(fakeKey("ff")))
	if err := os.WriteFile(filepath.Join(dir, other+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{key, other} {
		if _, ok := c.Get(k); ok {
			t.Errorf("corrupt entry %s was served", k)
		}
		if _, err := os.Stat(filepath.Join(dir, k+".json")); !os.IsNotExist(err) {
			t.Errorf("corrupt entry %s not removed", k)
		}
	}
}

// TestCacheIndexSurvivesReopen checks FlushIndex + reopen carries hit
// counters across an orderly restart, and that entries are re-indexed
// from the directory scan.
func TestCacheIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey("11")
	if err := c1.Put(testBundle(key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c1.Get(key); !ok {
		t.Fatal("miss after Put")
	}
	if err := c1.FlushIndex(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		t.Fatalf("index not written: %v", err)
	}
	var idx map[string]indexEntry
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatalf("index does not parse: %v", err)
	}
	if idx[key].Hits != 1 {
		t.Errorf("persisted hits = %d, want 1", idx[key].Hits)
	}

	c2, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", c2.Len())
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("reopened cache missed a committed entry")
	}
	if err := c2.FlushIndex(); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(filepath.Join(dir, indexName))
	_ = json.Unmarshal(data, &idx)
	if idx[key].Hits != 2 {
		t.Errorf("hits after reopen = %d, want 2 (carried + new)", idx[key].Hits)
	}
}

// TestCacheConcurrentPutGet hammers one key from writers and readers;
// under -race this checks the locking, and every successful Get must
// return a complete bundle.
func TestCacheConcurrentPutGet(t *testing.T) {
	c, err := OpenCache(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey("cc")
	want := testBundle(key)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := c.Put(want); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if b, ok := c.Get(key); ok && b.Report != want.Report {
					t.Error("Get returned a torn bundle")
					return
				}
			}
		}()
	}
	wg.Wait()
}
