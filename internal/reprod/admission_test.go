package reprod

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestAdmissionFastPathAndShed(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(2, 0, reg)
	ctx := context.Background()

	r1, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.Active() != 2 {
		t.Errorf("Active = %d, want 2", a.Active())
	}

	// Both slots busy and maxQueue is 0: the next arrival is shed, not
	// parked.
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with full slots and zero queue = %v, want ErrShed", err)
	}
	if got := reg.Counter("reprod.shed.total").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	r1()
	r3, err := a.Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire after release = %v", err)
	}
	r2()
	r3()
	if a.Active() != 0 {
		t.Errorf("Active after releases = %d, want 0", a.Active())
	}
}

func TestAdmissionQueueGrantsInOrderOfAvailability(t *testing.T) {
	a := NewAdmission(1, 1, nil)
	ctx := context.Background()

	r1, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	granted := make(chan func(), 1)
	go func() {
		r, err := a.Acquire(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		granted <- r
	}()

	// Wait until the second acquirer is parked in the queue.
	waitFor(t, func() bool { return a.Waiting() == 1 })

	// The queue is full now: a third arrival sheds.
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with full queue = %v, want ErrShed", err)
	}

	r1()
	select {
	case r2 := <-granted:
		r2()
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquirer never got the freed slot")
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4, nil)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return a.Waiting() == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Acquire after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled acquirer never returned")
	}
	waitFor(t, func() bool { return a.Waiting() == 0 })
}

func TestAdmissionReleaseIsIdempotent(t *testing.T) {
	a := NewAdmission(1, 0, nil)
	r, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r()
	r() // double release must not free a phantom slot
	if a.Active() != 0 {
		t.Fatalf("Active = %d, want 0", a.Active())
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
	// With the single slot free again, a second Acquire must still be the
	// only grant — a leaked token from the double release would allow two.
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second concurrent Acquire = %v, want ErrShed (slot cap 1)", err)
	}
	r3()
}

// TestAdmissionFloodInvariant throws a burst at a small gate and checks
// the conservation law: every request is granted or shed, concurrent
// grants never exceed maxActive, and the gate is empty afterwards.
func TestAdmissionFloodInvariant(t *testing.T) {
	reg := obs.NewRegistry()
	const maxActive, maxQueue, n = 3, 5, 200
	a := NewAdmission(maxActive, maxQueue, reg)

	var granted, shed, peak atomic.Int64
	var inUse atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			if errors.Is(err, ErrShed) {
				shed.Add(1)
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			cur := inUse.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			granted.Add(1)
			time.Sleep(time.Millisecond)
			inUse.Add(-1)
			release()
		}()
	}
	wg.Wait()

	if got := granted.Load() + shed.Load(); got != n {
		t.Errorf("granted+shed = %d, want %d", got, n)
	}
	if peak.Load() > maxActive {
		t.Errorf("peak concurrent grants = %d, exceeds maxActive %d", peak.Load(), maxActive)
	}
	if granted.Load() < maxActive {
		t.Errorf("granted = %d, want at least %d", granted.Load(), maxActive)
	}
	if a.Active() != 0 || a.Waiting() != 0 {
		t.Errorf("gate not empty after flood: active=%d waiting=%d", a.Active(), a.Waiting())
	}
	if got := reg.Counter("reprod.shed.total").Value(); got != shed.Load() {
		t.Errorf("shed counter = %d, observed %d", got, shed.Load())
	}
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
