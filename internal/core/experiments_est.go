package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// The fig_est_* experiments are the estimator validation lab (ROADMAP
// item 4): the Grundmann unreachable-population estimator
// (arXiv:2102.12774) and peer-degree estimator (arXiv:2108.00815) —
// the techniques the paper leans on for its unreachable-node root
// cause analysis — are run against simulated universes whose ground
// truth is known, across a churn × flooder × NAT-mix grid. Both
// figures derive from one sweep, memoized like the crawl series.

// estKey identifies a cached estimator sweep.
type estKey struct {
	seed  int64
	scale float64
	quick bool
}

var (
	estMu    sync.Mutex
	estCache = map[estKey]*analysis.EstFigsResult{}
)

// estFor returns the (possibly cached) estimator sweep for opts.
func estFor(ctx context.Context, opts Options) (*analysis.EstFigsResult, error) {
	opts = opts.withDefaults()
	key := estKey{seed: opts.Seed, scale: opts.Scale, quick: opts.Quick}
	estMu.Lock()
	defer estMu.Unlock()
	if res, ok := estCache[key]; ok {
		return res, nil
	}
	// The sweep builds eight universes, so the per-cell scale is capped
	// below the single-universe experiments' full scale. The cap is a
	// function of the cache key, never of Workers, so it cannot break
	// memoization or determinism.
	scale := opts.Scale
	if scale > 0.10 {
		scale = 0.10
	}
	rounds := 6
	if opts.Quick {
		rounds = 3
	}
	cfg := analysis.EstFigsConfig{
		Base:    netgen.DefaultParams(opts.Seed, scale),
		Rounds:  rounds,
		Workers: opts.Workers,
	}
	res, err := analysis.RunEstFigs(ctx, cfg)
	if err != nil {
		return nil, err
	}
	estCache[key] = res
	return res, nil
}

// estSeriesSplit filters the sweep's merged series for one figure:
// degree-prefixed series for fig_est_degree, everything else
// (population series plus the est.* counter deltas) for fig_est_pop.
func estSeriesSplit(set *obs.SeriesSet, degree bool) *obs.SeriesSet {
	if set == nil {
		return nil
	}
	out := &obs.SeriesSet{}
	for _, s := range set.Series {
		if strings.HasPrefix(s.Name, "est.deg.") == degree {
			out.Series = append(out.Series, s)
		}
	}
	return out
}

// figEstPopExperiment validates the unreachable-population estimator.
func figEstPopExperiment() Experiment {
	return Experiment{
		ID:      "fig_est_pop",
		Title:   "Unreachable-population estimator vs ground truth",
		Section: "estimator lab (arXiv:2102.12774)",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := estFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig_est_pop", Title: "Population estimate error across the grid"}
			var relSum, relMax float64
			var draws int
			for _, c := range res.Cells {
				relSum += c.PopRelErr
				if c.PopRelErr > relMax {
					relMax = c.PopRelErr
				}
				draws += c.Observations
			}
			n := float64(len(res.Cells))
			rep.AddMetricf("mean relative error", 100*relSum/n, "%.2f%%", "≤ ~5% expected")
			rep.AddMetricf("max cell relative error", 100*relMax, "%.2f%%", "≤ ~10% expected")
			rep.AddMetricf("announcement draws counted", float64(draws), "%.0f", "")

			t := Table{
				Name:   "cells",
				Header: []string{"cell", "churn", "flooders", "resp-mix", "truth", "estimate", "rel-err", "draws"},
			}
			for _, c := range res.Cells {
				t.Rows = append(t.Rows, []string{
					c.Name, c.Churn, fmt.Sprint(c.Flooders),
					fmt.Sprintf("%.2f", c.ResponsiveMix),
					fmt.Sprintf("%.1f", c.PopTruthMean),
					fmt.Sprintf("%.1f", c.PopEstMean),
					fmt.Sprintf("%.4f", c.PopRelErr),
					fmt.Sprint(c.Observations),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Series = estSeriesSplit(res.Series, false)
			rep.Notes = append(rep.Notes,
				"truth is the gossip-visible unreachable census; the estimate inverts ADDR announcement recurrence",
				"flooder cells skew high: duplicate-laden malicious books add recurrence the closed form attributes to coverage")
			return rep, nil
		},
	}
}

// figEstDegreeExperiment validates the peer-degree estimator.
func figEstDegreeExperiment() Experiment {
	return Experiment{
		ID:      "fig_est_degree",
		Title:   "Peer-degree estimator vs ground truth",
		Section: "estimator lab (arXiv:2108.00815)",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := estFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig_est_degree", Title: "Degree estimate error across the grid"}
			var relSum, ratioSum float64
			var sources int
			for _, c := range res.Cells {
				relSum += c.DegRelErr
				ratioSum += c.DegRatioRelErr
				sources += c.Sources
			}
			n := float64(len(res.Cells))
			rep.AddMetricf("mean relative error (full drain)", 100*relSum/n, "%.2f%%", "≤ ~1% expected")
			rep.AddMetricf("mean relative error (ratio probe)", 100*ratioSum/n, "%.2f%%", "≤ ~10% expected")
			rep.AddMetricf("source-rounds measured", float64(sources), "%.0f", "")

			t := Table{
				Name:   "cells",
				Header: []string{"cell", "truth", "estimate", "rel-err", "ratio-rel-err", "sources"},
			}
			for _, c := range res.Cells {
				t.Rows = append(t.Rows, []string{
					c.Name,
					fmt.Sprintf("%.2f", c.DegTruthMean),
					fmt.Sprintf("%.2f", c.DegEstMean),
					fmt.Sprintf("%.4f", c.DegRelErr),
					fmt.Sprintf("%.4f", c.DegRatioRelErr),
					fmt.Sprint(c.Sources),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Series = estSeriesSplit(res.Series, true)
			rep.Notes = append(rep.Notes,
				"truth is the distinct-address degree of each station's regenerated addr book",
				"the crawler drains books to the repeat page, so the max(enumeration, ratio) estimate is near-exact; the ratio column shows the single-exchange getaddr-contract bound alone")
			return rep, nil
		},
	}
}
