package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
)

// chaosExperiment runs the fault-injection chaos scenario: the
// robustness counterpart of §IV-D. It answers whether, under the
// adversities the paper identifies (message loss, latency spikes,
// partitions, crash/restart churn), the node-side defences — keepalive
// with stall eviction, block-download stall detection, handshake
// timeouts, reconnect backoff — return every node to the network tip
// once conditions clear, and how long the recovery takes.
func chaosExperiment() Experiment {
	return Experiment{
		ID:      "chaos",
		Title:   "Fault-injection chaos scenario: partition, crash wave, lossy links",
		Section: "§IV-D (robustness extension)",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			cfg := analysis.ChaosConfig{
				Seed:     opts.Seed,
				NumNodes: opts.NetSize / 8,
			}
			if opts.Quick {
				cfg.NumNodes = 8
				cfg.Duration = 30 * time.Minute
			}
			res, err := analysis.RunChaos(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "chaos", Title: "Chaos recovery"}
			rep.AddMetric("converged",
				fmt.Sprintf("%v (%d/%d nodes at tip)",
					res.Converged, res.SyncedNodes, res.TotalNodes), "")
			rep.AddMetricf("miner height", float64(res.MinerHeight), "%.0f", "")
			rep.AddMetricf("height spread", float64(res.HeightSpread), "%.0f", "")
			recovery := "not within window"
			if res.RecoveryTime > 0 {
				recovery = res.RecoveryTime.Round(time.Second).String()
			}
			rep.AddMetric("recovery after last disruption", recovery, "")
			rep.AddMetricf("persistent share (crash-tracked)",
				100*res.PersistentShare, "%.0f%%", "")
			rep.AddMetricf("keepalive pings", float64(res.Health.PingsSent), "%.0f", "")
			rep.AddMetricf("stall evictions", float64(res.Health.StallEvictions), "%.0f", "")
			rep.AddMetricf("block-stall evictions",
				float64(res.Health.BlockStallEvictions), "%.0f", "")
			rep.AddMetricf("handshake evictions",
				float64(res.Health.HandshakeEvictions), "%.0f", "")
			rep.AddMetricf("dial backoffs armed",
				float64(res.Health.BackoffsArmed), "%.0f", "")

			rep.AddMetric("trace digest", res.TraceDigest, "")
			rep.AddMetricf("trace events", float64(res.TraceTotal), "%.0f", "")
			rep.AddMetricf("trace events dropped (ring)",
				float64(res.TraceDropped), "%.0f", "")
			rep.Series = res.Series

			t := Table{Name: "fault-counters", Header: []string{"counter", "count"}}
			for _, c := range res.FaultCounters {
				t.Rows = append(t.Rows, []string{c.Name, fmt.Sprint(c.Value)})
			}
			rep.Tables = append(rep.Tables, t)

			// Full registry snapshot as a CSV sidecar: scheduler, dial,
			// transmit, node-health, and churn series in one table. Named
			// obs-metrics: WriteCSV reserves <id>_metrics.csv for the
			// report's own metric list.
			mt := Table{Name: "obs-metrics", Header: []string{"kind", "name", "value"}}
			mt.Rows = res.Metrics.Rows()
			rep.Tables = append(rep.Tables, mt)
			rep.Notes = append(rep.Notes,
				"fault schedule and trace are fully determined by the seed (same seed → identical run)",
				"the scenario heals and disables faults before the end; convergence demonstrates the recovery machinery, not fault-free luck")
			return rep, nil
		},
	}
}
