package core

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// CSVFile is one rendered CSV artifact of a report: the file name
// WriteCSV would use and its exact bytes.
type CSVFile struct {
	// Name is the file name ("<id>_<table>.csv", "<id>_timeseries.csv",
	// "<id>_metrics.csv").
	Name string
	// Data is the rendered CSV content.
	Data []byte
}

// CSVFiles renders every CSV sidecar of the report in memory: one file
// per table, the sim-time series sidecar, and the metrics summary, in
// that order. WriteCSV writes exactly these bytes to disk, so callers
// that bundle artifacts (the reprod service cache) and callers that
// write directories produce byte-identical content.
func (r *Report) CSVFiles() ([]CSVFile, error) {
	var out []CSVFile
	for i := range r.Tables {
		t := &r.Tables[i]
		name := fmt.Sprintf("%s_%s.csv", r.ID, sanitize(t.Name))
		data, err := renderOneCSV(t)
		if err != nil {
			return nil, fmt.Errorf("core: render %s: %w", name, err)
		}
		out = append(out, CSVFile{Name: name, Data: data})
	}
	// Sim-time series land in a timeseries sidecar next to the tables.
	if r.Series != nil && r.Series.Len() > 0 {
		name := fmt.Sprintf("%s_timeseries.csv", r.ID)
		var buf bytes.Buffer
		if err := r.Series.WriteCSV(&buf); err != nil {
			return nil, fmt.Errorf("core: render %s: %w", name, err)
		}
		out = append(out, CSVFile{Name: name, Data: buf.Bytes()})
	}
	// The metrics themselves also land in a summary CSV.
	if len(r.Metrics) > 0 {
		name := fmt.Sprintf("%s_metrics.csv", r.ID)
		t := Table{
			Header: []string{"metric", "measured", "paper"},
		}
		for _, m := range r.Metrics {
			t.Rows = append(t.Rows, []string{m.Name, m.Value, m.Paper})
		}
		data, err := renderOneCSV(&t)
		if err != nil {
			return nil, fmt.Errorf("core: render %s: %w", name, err)
		}
		out = append(out, CSVFile{Name: name, Data: data})
	}
	return out, nil
}

// WriteCSV writes every CSV sidecar of the report into dir, creating
// dir if needed. The files are the ones CSVFiles renders.
func (r *Report) WriteCSV(dir string) error {
	files, err := r.CSVFiles()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create %s: %w", dir, err)
	}
	for _, f := range files {
		path := filepath.Join(dir, f.Name)
		if err := os.WriteFile(path, f.Data, 0o644); err != nil {
			return fmt.Errorf("core: write %s: %w", path, err)
		}
	}
	return nil
}

// renderOneCSV renders one table to bytes.
func renderOneCSV(t *Table) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(t.Header); err != nil {
		return nil, err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// sanitize makes a table name filesystem-friendly.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '-' || r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
