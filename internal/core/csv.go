package core

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// WriteCSV writes every table of the report into dir as
// <id>_<table>.csv, creating dir if needed.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create %s: %w", dir, err)
	}
	for i := range r.Tables {
		t := &r.Tables[i]
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, sanitize(t.Name)))
		if err := writeOneCSV(path, t); err != nil {
			return err
		}
	}
	// Sim-time series land in a timeseries sidecar next to the tables.
	if r.Series != nil && r.Series.Len() > 0 {
		path := filepath.Join(dir, fmt.Sprintf("%s_timeseries.csv", r.ID))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create %s: %w", path, err)
		}
		if err := r.Series.WriteCSV(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("core: write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("core: close %s: %w", path, err)
		}
	}
	// The metrics themselves also land in a summary CSV.
	if len(r.Metrics) > 0 {
		path := filepath.Join(dir, fmt.Sprintf("%s_metrics.csv", r.ID))
		t := Table{
			Header: []string{"metric", "measured", "paper"},
		}
		for _, m := range r.Metrics {
			t.Rows = append(t.Rows, []string{m.Name, m.Value, m.Paper})
		}
		if err := writeOneCSV(path, &t); err != nil {
			return err
		}
	}
	return nil
}

// writeOneCSV writes one table to path.
func writeOneCSV(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		_ = f.Close()
		return fmt.Errorf("core: write %s: %w", path, err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			_ = f.Close()
			return fmt.Errorf("core: write %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return fmt.Errorf("core: flush %s: %w", path, err)
	}
	return f.Close()
}

// sanitize makes a table name filesystem-friendly.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '-' || r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
