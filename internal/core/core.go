// Package core is the orchestration layer of the reproduction: a registry
// of every experiment in the paper's evaluation (each figure and table),
// shared configuration, result reporting, and text/CSV rendering. The
// cmd/ binaries, the examples, and the repository-level benchmarks all
// drive experiments through this package.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/par"
)

// Options tune an experiment run.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Scale multiplies the snapshot-study population sizes relative to
	// the paper's measured network (1.0 = full 694K-address scale).
	Scale float64
	// NetSize is the live-node count for message-level simulations.
	NetSize int
	// Quick selects reduced durations/populations for smoke runs.
	Quick bool
	// Workers is the intra-experiment fan-out width for the crawl and
	// scan loops (0 = GOMAXPROCS). Results are identical at any width,
	// so it is not part of any result cache key.
	Workers int
	// Policies optionally restricts the intervention-grid experiment
	// (fig_interv) to stock versus this policy set (a canonical
	// node.ParsePolicySet encoding, e.g. "tried-only-addr+horizon-17d").
	// Empty runs the full policy axis. Unlike Workers it changes
	// results, so it participates in result cache keys.
	Policies string
}

// withDefaults fills the zero Options.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		if o.Quick {
			o.Scale = 0.02
		} else {
			o.Scale = 0.30
		}
	}
	if o.NetSize == 0 {
		if o.Quick {
			o.NetSize = 40
		} else {
			o.NetSize = 120
		}
	}
	return o
}

// Metric is one reported quantity with its paper-side counterpart.
type Metric struct {
	// Name identifies the quantity.
	Name string
	// Value is the measured result.
	Value string
	// Paper is the value the paper reports (empty when the paper gives
	// none).
	Paper string
}

// Table is a rectangular result suitable for CSV output.
type Table struct {
	// Name labels the table (used as the CSV file stem).
	Name string
	// Header holds the column names.
	Header []string
	// Rows holds the data.
	Rows [][]string
}

// Report is an experiment's outcome.
type Report struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Metrics are the headline paper-vs-measured comparisons.
	Metrics []Metric
	// Tables carry the series/figure data.
	Tables []Table
	// Notes carries free-form commentary (calibration caveats etc.).
	Notes []string
	// Profile is the run's wall/alloc measurement, filled by RunAll (or
	// any harness that wraps Run with obs.StartProfile). Render omits it
	// and WriteCSV never sees it: wall time is nondeterministic, and both
	// surfaces promise byte-identical output for identical seeds. CLI
	// front-ends print it to stderr instead.
	Profile obs.Profile
	// Series holds the experiment's sim-time metric series, written by
	// WriteCSV as the <id>_timeseries.csv sidecar and rendered as
	// sparklines by WriteHTMLReport. Like Tables, it is deterministic:
	// same-seed runs produce byte-identical CSV at any worker count.
	Series *obs.SeriesSet
}

// AddMetric appends a metric.
func (r *Report) AddMetric(name, value, paper string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Paper: paper})
}

// AddMetricf formats a float metric.
func (r *Report) AddMetricf(name string, value float64, format, paper string) {
	r.AddMetric(name, fmt.Sprintf(format, value), paper)
}

// Render writes a human-readable report.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	nameWidth := 0
	for _, m := range r.Metrics {
		if len(m.Name) > nameWidth {
			nameWidth = len(m.Name)
		}
	}
	for _, m := range r.Metrics {
		line := fmt.Sprintf("  %-*s  %s", nameWidth, m.Name, m.Value)
		if m.Paper != "" {
			line += fmt.Sprintf("   (paper: %s)", m.Paper)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	for i := range r.Tables {
		if err := renderTable(w, &r.Tables[i]); err != nil {
			return err
		}
	}
	return nil
}

// renderTable pretty-prints one table, truncating long series.
func renderTable(w io.Writer, t *Table) error {
	const maxRows = 24
	if _, err := fmt.Fprintf(w, "  -- %s --\n", t.Name); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	shown := t.Rows
	truncated := 0
	if len(shown) > maxRows {
		truncated = len(shown) - maxRows
		shown = shown[:maxRows]
	}
	for _, row := range shown {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		b.WriteString("  ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range shown {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if truncated > 0 {
		if _, err := fmt.Fprintf(w, "  ... (%d more rows)\n", truncated); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the figure/table identifier ("fig1" … "table1", "ablation").
	ID string
	// Title describes the experiment.
	Title string
	// Section cites the paper section.
	Section string
	// Run executes the experiment. It honours ctx: long simulations poll
	// it periodically and return ctx.Err() mid-run when cancelled.
	Run func(context.Context, Options) (*Report, error)
}

// Replicate runs fn(ctx, rep) for every replication in [0, n)
// concurrently and deterministically; it is par.Replicate re-exported so
// experiment code layered on core need not import the engine package.
// Callers derive per-replication seeds from rep and write results into
// rep-indexed slots.
func Replicate(ctx context.Context, n int, fn func(ctx context.Context, rep int) error) error {
	return par.Replicate(ctx, n, fn)
}

// registry returns all experiments, built lazily so the experiment files
// can live alongside their implementations.
func registry() []Experiment {
	return []Experiment{
		fig1Experiment(),
		fig3Experiment(),
		fig4Experiment(),
		fig5Experiment(),
		table1Experiment(),
		fig6Experiment(),
		fig7Experiment(),
		fig8Experiment(),
		fig10Experiment(),
		fig11Experiment(),
		fig12Experiment(),
		fig13Experiment(),
		addrMixExperiment(),
		figEstPopExperiment(),
		figEstDegreeExperiment(),
		resyncExperiment(),
		syncDepExperiment(),
		ablationExperiment(),
		figIntervExperiment(),
		hijackExperiment(),
		chaosExperiment(),
	}
}

// Experiments lists every registered experiment sorted by ID.
func Experiments() []Experiment {
	out := registry()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment. Besides the public registry it resolves the
// hidden crash-drill experiment (SelftestCrashID), which is addressable
// by ID but never part of Experiments() batches.
func ByID(id string) (Experiment, bool) {
	if id == SelftestCrashID {
		return selftestCrashExperiment(), true
	}
	for _, e := range registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment sequentially, rendering each to w as
// it completes.
//
// Deprecated: RunAll is a thin shim over Runner for callers predating
// the parallel engine; use Runner{...}.Run(ctx, Experiments(), w) to
// control worker count and cancellation.
func RunAll(opts Options, w io.Writer) error {
	r := Runner{Workers: 1, Options: opts}
	return r.Run(context.Background(), Experiments(), w)
}

// RunExperiment executes one experiment without cancellation support.
//
// Deprecated: shim for callers predating the context-aware Run
// signature; call e.Run(ctx, opts) directly.
func RunExperiment(e Experiment, opts Options) (*Report, error) {
	return e.Run(context.Background(), opts)
}
