package core

import (
	"context"
	"fmt"
)

// EventsProcessed returns the number of virtual-time scheduler events a
// report's simulation executed, by summing the deterministic
// simnet.sched.executed.delta series. Unlike wall-clock resource stats
// this is a pure function of the seeded run — the same at any worker
// count — so it is safe to attach to cached manifests and reports.
// Snapshot-style experiments that run no event loop report zero.
func EventsProcessed(r *Report) uint64 {
	if r == nil {
		return 0
	}
	s, ok := r.Series.Get("simnet.sched.executed.delta")
	if !ok {
		return 0
	}
	var total float64
	for _, p := range s.Points {
		total += p.V
	}
	if total < 0 {
		return 0
	}
	return uint64(total)
}

// SelftestCrashID names the hidden crash-drill experiment: it panics
// mid-run by design, exercising the panic containment, error
// classification, and flight-recorder paths end to end. It resolves via
// ByID (so the reprod service and -id accept it) but is excluded from
// Experiments(), keeping it out of -all batches and the report corpus.
const SelftestCrashID = "selftest_crash"

// selftestCrashExperiment builds the crash drill. It does a little real
// allocation first so the dumped resource watermarks are non-trivial.
func selftestCrashExperiment() Experiment {
	return Experiment{
		ID:      SelftestCrashID,
		Title:   "crash drill (panics by design; exercises the flight recorder)",
		Section: "—",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			ballast := make([][]byte, 0, 32)
			for i := 0; i < 32; i++ {
				ballast = append(ballast, make([]byte, 64<<10))
			}
			panic(fmt.Sprintf("selftest_crash: induced panic (ballast=%d blocks)", len(ballast)))
		},
	}
}
