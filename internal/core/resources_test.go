package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEventsProcessed pins the deterministic event-count extraction: it
// sums the simnet.sched.executed.delta series and tolerates reports with
// no series at all.
func TestEventsProcessed(t *testing.T) {
	if got := EventsProcessed(nil); got != 0 {
		t.Errorf("nil report = %d, want 0", got)
	}
	if got := EventsProcessed(&Report{ID: "bare"}); got != 0 {
		t.Errorf("report without series = %d, want 0", got)
	}
	rep := &Report{ID: "sim", Series: &obs.SeriesSet{Series: []obs.Series{
		{Name: "other.metric", Points: []obs.Point{{V: 999}}},
		{Name: "simnet.sched.executed.delta", Points: []obs.Point{{V: 100}, {V: 250}, {V: 50}}},
	}}}
	if got := EventsProcessed(rep); got != 400 {
		t.Errorf("EventsProcessed = %d, want 400", got)
	}
}

// TestSelftestCrashHidden: the crash drill resolves by ID (the service
// and -id accept it) but never appears in Experiments(), so -all batches
// and the report corpus cannot trip over it.
func TestSelftestCrashHidden(t *testing.T) {
	e, ok := ByID(SelftestCrashID)
	if !ok || e.ID != SelftestCrashID {
		t.Fatalf("ByID(%q) = %+v, %v", SelftestCrashID, e, ok)
	}
	for _, listed := range Experiments() {
		if listed.ID == SelftestCrashID {
			t.Fatalf("%q leaked into Experiments()", SelftestCrashID)
		}
	}
}

// TestRunnerFlightRecordOnPanic drives the hidden crash drill through a
// fully wired Runner and checks the dumped flight record is well-formed:
// cause panic, a stack, trace events in emit order, and non-trivial
// resource watermarks from the drill's ballast.
func TestRunnerFlightRecordOnPanic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	fr, err := obs.OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	crash, _ := ByID(SelftestCrashID)
	healthy := Experiment{ID: "ok", Run: func(context.Context, Options) (*Report, error) {
		return &Report{ID: "ok", Title: "ok"}, nil
	}}

	tracer := obs.NewTracer(256, nil)
	var out, profs bytes.Buffer
	r := Runner{
		Workers:        2,
		Options:        Options{Quick: true},
		KeepGoing:      true,
		Trace:          tracer,
		Profiles:       &profs,
		Resources:      obs.NewResourceSampler(nil),
		FlightRecorder: fr,
	}
	err = r.Run(context.Background(), []Experiment{healthy, crash}, &out)
	var batch *BatchError
	if !errors.As(err, &batch) || len(batch.Failures) != 1 {
		t.Fatalf("Run = %v, want a BatchError with the one crash", err)
	}
	if !bytes.Contains(out.Bytes(), []byte("== ok —")) {
		t.Error("healthy report missing from a KeepGoing batch")
	}

	rec, err := obs.ReadFlightRecord(filepath.Join(dir, obs.FlightRecordName(SelftestCrashID)))
	if err != nil {
		t.Fatalf("flight record unreadable: %v", err)
	}
	if rec.Cause != "panic" || rec.Key != SelftestCrashID {
		t.Errorf("record cause/key = %q/%q, want panic/%s", rec.Cause, rec.Key, SelftestCrashID)
	}
	if !strings.Contains(rec.Panic, "selftest_crash: induced panic") {
		t.Errorf("record panic value = %q", rec.Panic)
	}
	if !strings.Contains(rec.Stack, "goroutine") {
		t.Errorf("record stack missing:\n%s", rec.Stack)
	}
	// The drill allocates 2 MiB of ballast before panicking; the closing
	// window sample must have seen it.
	if rec.Resources.PeakHeapBytes == 0 || rec.Resources.AllocBytes < 2<<20 {
		t.Errorf("record resources too small: %+v", rec.Resources)
	}
	// Tracer ring rides along, oldest first.
	if rec.EventsTotal == 0 || len(rec.Events) == 0 {
		t.Fatalf("record carries no trace events: total=%d len=%d", rec.EventsTotal, len(rec.Events))
	}
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time.Before(rec.Events[i-1].Time) {
			t.Errorf("trace events out of emit order at %d", i)
		}
	}
	// The dump itself is traced, so operators can find the artifact.
	var dumped bool
	for _, ev := range tracer.Events() {
		if ev.Kind == "flightrec.dump" && strings.Contains(ev.Detail, obs.FlightRecordName(SelftestCrashID)) {
			dumped = true
		}
	}
	if !dumped {
		t.Error("no flightrec.dump trace event naming the artifact")
	}
}

// TestRunnerFlightRecordOnDeadline: an experiment killed by its context
// deadline dumps a record with cause "deadline" and no panic fields.
func TestRunnerFlightRecordOnDeadline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	fr, err := obs.OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	sleepy := Experiment{ID: "sleepy", Run: func(ctx context.Context, _ Options) (*Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var out bytes.Buffer
	r := Runner{Workers: 1, Options: Options{Quick: true}, KeepGoing: true, FlightRecorder: fr}
	if err := r.Run(ctx, []Experiment{sleepy}, &out); err == nil {
		t.Fatal("expected the deadline to surface as an error")
	}
	rec, err := obs.ReadFlightRecord(filepath.Join(dir, obs.FlightRecordName("sleepy")))
	if err != nil {
		t.Fatalf("flight record unreadable: %v", err)
	}
	if rec.Cause != "deadline" {
		t.Errorf("cause = %q, want deadline", rec.Cause)
	}
	if rec.Panic != "" || rec.Stack != "" {
		t.Errorf("deadline record carries panic fields: %q / %q", rec.Panic, rec.Stack)
	}
}

// TestRunnerFlightRecordWithoutSampler: arming only the recorder (the
// CLI's -flightrec without -resources) must still yield a record with
// live watermarks — the Runner samples on an unpublished fallback for
// the crash window.
func TestRunnerFlightRecordWithoutSampler(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	fr, err := obs.OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	crash, ok := ByID(SelftestCrashID)
	if !ok {
		t.Fatalf("ByID(%q) not found", SelftestCrashID)
	}
	var out, prof bytes.Buffer
	r := Runner{Workers: 1, Options: Options{Quick: true}, KeepGoing: true,
		FlightRecorder: fr, Profiles: &prof}
	if err := r.Run(context.Background(), []Experiment{crash}, &out); err == nil {
		t.Fatal("expected the induced panic to surface as an error")
	}
	rec, err := obs.ReadFlightRecord(filepath.Join(dir, obs.FlightRecordName(SelftestCrashID)))
	if err != nil {
		t.Fatalf("flight record unreadable: %v", err)
	}
	if rec.Resources.PeakHeapBytes == 0 || rec.Resources.AllocBytes == 0 {
		t.Errorf("record sampled nothing without an explicit sampler: %+v", rec.Resources)
	}
	// The fallback sampler must not switch the Profiles surface on.
	if strings.Contains(prof.String(), "resources:") {
		t.Errorf("fallback sampler leaked resource lines onto Profiles:\n%s", prof.String())
	}
}

// TestRunnerNoFlightRecordOnPlainFailure: ordinary experiment errors are
// not crashes; the recorder must stay quiet for them.
func TestRunnerNoFlightRecordOnPlainFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	fr, err := obs.OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := Experiment{ID: "bad", Run: func(context.Context, Options) (*Report, error) {
		return nil, fmt.Errorf("ordinary failure")
	}}
	var out bytes.Buffer
	r := Runner{Workers: 1, Options: Options{Quick: true}, KeepGoing: true, FlightRecorder: fr}
	if err := r.Run(context.Background(), []Experiment{bad}, &out); err == nil {
		t.Fatal("expected the failure to surface")
	}
	if _, err := obs.ReadFlightRecord(filepath.Join(dir, obs.FlightRecordName("bad"))); err == nil {
		t.Error("plain failure produced a flight record")
	}
}

// TestRunnerResourcesWorkerInvariance is the resource observatory's
// determinism contract: with the sampler enabled, Workers: 1 and
// Workers: 4 still produce byte-identical report output and CSVs, and
// the "  resources:" lines appear only on the Profiles channel.
func TestRunnerResourcesWorkerInvariance(t *testing.T) {
	mk := func(id string, seed int64) Experiment {
		return Experiment{ID: id, Run: func(_ context.Context, o Options) (*Report, error) {
			// A little real allocation so the window stats are non-trivial.
			buf := make([]byte, 256<<10)
			_ = buf
			rep := &Report{ID: id, Title: id}
			rep.AddMetric("seed", fmt.Sprintf("%d", o.Seed+seed), "")
			rep.Tables = append(rep.Tables, Table{
				Name:   "points",
				Header: []string{"x", "y"},
				Rows:   [][]string{{"1", fmt.Sprintf("%d", seed*2)}},
			})
			return rep, nil
		}}
	}
	exps := []Experiment{mk("r1", 1), mk("r2", 2), mk("r3", 3), mk("r4", 4), mk("r5", 5)}
	opts := Options{Seed: 9, Quick: true}

	run := func(workers int) (string, map[string]string, string) {
		var out, profs bytes.Buffer
		dir := t.TempDir()
		r := Runner{
			Workers:   workers,
			Options:   opts,
			CSVDir:    dir,
			Profiles:  &profs,
			Resources: obs.NewResourceSampler(nil),
		}
		if err := r.Run(context.Background(), exps, &out); err != nil {
			t.Fatal(err)
		}
		return out.String(), readDir(t, dir), profs.String()
	}

	out1, csv1, prof1 := run(1)
	out4, csv4, prof4 := run(4)

	if out1 != out4 {
		t.Errorf("report output differs between worker counts with resources enabled:\n%q\n%q", out1, out4)
	}
	if len(csv1) == 0 || len(csv1) != len(csv4) {
		t.Fatalf("CSV counts differ: %d vs %d", len(csv1), len(csv4))
	}
	for name, want := range csv1 {
		if csv4[name] != want {
			t.Errorf("CSV %s differs between worker counts", name)
		}
	}
	for _, p := range []string{prof1, prof4} {
		if n := strings.Count(p, "  resources: "); n != len(exps) {
			t.Errorf("%d resources lines on Profiles, want %d:\n%s", n, len(exps), p)
		}
		if !strings.Contains(p, "peak-heap=") {
			t.Errorf("resources line lacks watermarks:\n%s", p)
		}
	}
	if strings.Contains(out1, "resources:") {
		t.Error("resources line leaked into the deterministic report stream")
	}
}
