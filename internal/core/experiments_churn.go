package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/netgen"
)

// Snapshot-level churn experiments: Figures 12 and 13 and the
// synchronized-departure contrast.

// fig12Experiment reproduces the binary presence matrix.
func fig12Experiment() Experiment {
	return Experiment{
		ID:      "fig12",
		Title:   "Binary presence matrix of reachable addresses",
		Section: "§IV-D, Figure 12 / Algorithm 4",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			res, err := analysis.RunChurnFigs(ctx, analysis.ChurnFigsConfig{
				Params: netgen.DefaultParams(opts.Seed, opts.Scale),
			})
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig12", Title: "Presence matrix"}
			rep.AddMetricf("unique reachable addresses",
				float64(res.UniqueAddresses), "%.0f", scaledPaper(opts, 28781))
			rep.AddMetricf("always-present nodes",
				float64(res.PersistentCount), "%.0f", scaledPaper(opts, 3034))
			rep.AddMetricf("mean node lifetime (days)",
				res.MeanLifetime.Hours()/24, "%.1f", "16.6")
			rep.Notes = append(rep.Notes,
				"render the matrix with `reproduce -render fig12` or churn.Matrix.Render")
			return rep, nil
		},
	}
}

// fig13Experiment reproduces the daily arrival/departure series.
func fig13Experiment() Experiment {
	return Experiment{
		ID:      "fig13",
		Title:   "Daily node arrivals and departures",
		Section: "§IV-D, Figure 13",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			res, err := analysis.RunChurnFigs(ctx, analysis.ChurnFigsConfig{
				Params: netgen.DefaultParams(opts.Seed, opts.Scale),
			})
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig13", Title: "Daily churn"}
			rep.AddMetricf("mean daily departures", res.MeanDailyDepartures,
				"%.0f", scaledPaper(opts, 708))
			rep.AddMetricf("mean daily arrivals", res.MeanDailyArrivals,
				"%.0f", scaledPaper(opts, 708))
			rep.AddMetricf("daily departure share", res.DepartureSharePct,
				"%.1f%%", "8.6%")

			t := Table{Name: "series", Header: []string{"day", "departures", "arrivals"}}
			for i := range res.DailyDepartures {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(i + 1),
					fmt.Sprint(res.DailyDepartures[i]),
					fmt.Sprint(res.DailyArrivals[i]),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Series = res.Series
			return rep, nil
		},
	}
}

// syncDepExperiment reproduces the synchronized-departure contrast.
func syncDepExperiment() Experiment {
	return Experiment{
		ID:      "syncdep",
		Title:   "Synchronized-node departures, 2019 vs 2020",
		Section: "§IV-D",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			interval := 10 * time.Minute
			if opts.Quick {
				interval = time.Hour
			}
			res, err := analysis.RunSyncDepartures(ctx, opts.Seed, opts.Scale, interval)
			if err != nil {
				return nil, err
			}
			// The paper reports per-10-minute rates; renormalize coarser
			// sampling for comparability.
			factor := float64(10*time.Minute) / float64(res.Interval)
			rep := &Report{ID: "syncdep", Title: "Synchronized departures"}
			rep.AddMetricf("2019 rate (/10 min)", res.Rate2019*factor, "%.2f",
				scaledPaper(opts, 3.9))
			rep.AddMetricf("2020 rate (/10 min)", res.Rate2020*factor, "%.2f",
				scaledPaper(opts, 7.6))
			rep.AddMetricf("2020/2019 ratio", res.Ratio, "%.2f", "≈2 (doubled)")
			return rep, nil
		},
	}
}
