package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
)

// This file implements the intervention grid experiment (fig_interv):
// the §V refinements and two related-work remedies as composable
// node.PolicySet values, swept against the paper's 2019/2020 churn
// regimes and an unreachable-population mix, with the Grundmann
// estimators scored inside every cell. It is the policy-API successor
// to the fixed six-row ablation ladder.

// figIntervExperiment builds the fig_interv registry entry.
func figIntervExperiment() Experiment {
	return Experiment{
		ID:      "fig_interv",
		Title:   "Intervention grid: policy set × churn regime × population mix",
		Section: "§V",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			base := analysis.PropagationConfig{
				Seed:          opts.Seed,
				NumReachable:  opts.NetSize,
				Duration:      2 * time.Hour,
				TxPerBlock:    150,
				CompactBlocks: true,
				BytesPerSec:   200 << 10,
			}
			coldRuns := 2
			if opts.Quick {
				base.Duration = 20 * time.Minute
				base.Warmup = 6 * time.Minute
				base.TxPerBlock = 60
				coldRuns = 1
			}
			gcfg := analysis.InterventionGridConfig{
				Base: base,
				Churns: []analysis.IntervChurn{
					{Name: "2019", DeparturesPer10Min: churnScaled(opts.NetSize, 0.9)},
					{Name: "2020", DeparturesPer10Min: churnScaled(opts.NetSize, 3.0)},
				},
				UnreachableShares: []float64{0, 0.3},
				ColdStartRuns:     coldRuns,
				Workers:           opts.Workers,
			}
			if opts.Policies != "" {
				// Restricted grid: stock versus the requested set, both
				// churn regimes, both population mixes.
				set, err := node.ParsePolicySet(opts.Policies)
				if err != nil {
					return nil, fmt.Errorf("core: fig_interv: %w", err)
				}
				gcfg.PolicySets = []node.PolicySet{
					node.MustPolicySet(node.StockPolicyName),
				}
				if set.String() != node.StockPolicyName {
					gcfg.PolicySets = append(gcfg.PolicySets, set)
				}
			}
			res, err := analysis.RunInterventionGrid(ctx, gcfg)
			if err != nil {
				return nil, err
			}

			rep := &Report{ID: "fig_interv", Title: "Intervention grid", Series: res.Series}
			t := Table{
				Name: "grid",
				Header: []string{"policy-set", "churn", "unreach-share", "sync",
					"observed-sync", "dial-success", "cold-start-success",
					"mean-block-relay", "max-block-relay", "outdegree",
					"pop-relerr", "deg-relerr"},
			}
			// byCell indexes rows for the headline recovery contrasts.
			type cellKey struct {
				set, churn string
				share      float64
			}
			byCell := make(map[cellKey]analysis.IntervCell, len(res.Cells))
			for _, c := range res.Cells {
				byCell[cellKey{c.PolicySet, c.Churn, c.UnreachableShare}] = c
				t.Rows = append(t.Rows, []string{
					c.PolicySet,
					c.Churn,
					fmt.Sprintf("%.0f%%", 100*c.UnreachableShare),
					fmt.Sprintf("%.1f%%", 100*c.MeanSync),
					fmt.Sprintf("%.1f%%", 100*c.MeanObservedSync),
					fmt.Sprintf("%.1f%%", 100*c.DialSuccessRate),
					fmt.Sprintf("%.1f%%", 100*c.ColdStartSuccessRate),
					fmt.Sprintf("%.2fs", c.MeanBlockRelay.Seconds()),
					fmt.Sprintf("%.2fs", c.MaxBlockRelay.Seconds()),
					fmt.Sprintf("%.2f", c.MeanOutdegree),
					fmt.Sprintf("%.3f", c.PopRelErr),
					fmt.Sprintf("%.3f", c.DegRelErr),
				})
			}
			rep.Tables = append(rep.Tables, t)

			// Headline: the 2020-regime recovery of the combined §V set
			// over stock, on the reachable-only mix (the Figure 1 setting).
			const allV = "tried-only-addr+horizon-17d+priority-relay"
			stock2020 := byCell[cellKey{node.StockPolicyName, "2020", 0}]
			rep.AddMetricf("stock observed sync (2020 churn)",
				100*stock2020.MeanObservedSync, "%.1f%%", "≈90%")
			if all, ok := byCell[cellKey{allV, "2020", 0}]; ok {
				rep.AddMetricf("all-§V observed sync (2020 churn)",
					100*all.MeanObservedSync, "%.1f%%", "")
				rep.AddMetricf("all-§V sync recovery (pts)",
					100*(all.MeanObservedSync-stock2020.MeanObservedSync), "%+.1f", "")
				rep.AddMetricf("all-§V cold-start recovery (pts)",
					100*(all.ColdStartSuccessRate-stock2020.ColdStartSuccessRate), "%+.1f", "")
			}
			rep.Notes = append(rep.Notes,
				"every (churn, mix) environment reuses one seed across policy sets (common random numbers): recovery columns are paired contrasts",
				"tried-only-addr starves the Grundmann population estimator (ADDR responses stop carrying unreachable addresses), so pop-relerr ≈ 1 in those cells is the measurement side effect, not an estimator bug")
			return rep, nil
		},
	}
}
