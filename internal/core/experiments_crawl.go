package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/netgen"
)

// The crawl-series experiments (Figures 3, 4, 5, 8, Table I, and the
// ADDR-composition scalar) all derive from one longitudinal study, which
// is memoized per (seed, scale, quick) so `reproduce all` pays for it
// once.

// crawlKey identifies a cached crawl series.
type crawlKey struct {
	seed  int64
	scale float64
	quick bool
}

var (
	crawlMu    sync.Mutex
	crawlCache = map[crawlKey]*analysis.CrawlSeriesResult{}
)

// crawlSeriesFor returns the (possibly cached) longitudinal study for
// opts.
func crawlSeriesFor(ctx context.Context, opts Options) (*analysis.CrawlSeriesResult, error) {
	opts = opts.withDefaults()
	key := crawlKey{seed: opts.Seed, scale: opts.Scale, quick: opts.Quick}
	crawlMu.Lock()
	defer crawlMu.Unlock()
	if res, ok := crawlCache[key]; ok {
		return res, nil
	}
	params := netgen.DefaultParams(opts.Seed, opts.Scale)
	// Workers is deliberately absent from the cache key: the study is
	// byte-identical at any fan-out width, so width never invalidates.
	cfg := analysis.CrawlSeriesConfig{
		Params:                 params,
		ScannerStartExperiment: 14, // the paper's two-week scanner delay
		ScanSampleFraction:     1.0,
		Workers:                opts.Workers,
	}
	if opts.Quick {
		cfg.Experiments = 12
		cfg.ScannerStartExperiment = 3
	}
	res, err := analysis.RunCrawlSeries(ctx, cfg)
	if err != nil {
		return nil, err
	}
	crawlCache[key] = res
	return res, nil
}

// scaledPaper renders a paper-scale count at the run's scale for honest
// comparisons.
func scaledPaper(opts Options, paperValue float64) string {
	opts = opts.withDefaults()
	return fmt.Sprintf("%.0f at this scale (%.0f at full scale)",
		paperValue*opts.Scale, paperValue)
}

// fig3Experiment reproduces the seed-source statistics.
func fig3Experiment() Experiment {
	return Experiment{
		ID:      "fig3",
		Title:   "Seed databases, exclusions, and crawler connections",
		Section: "§III-A, Figure 3",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			opts = opts.withDefaults()
			n := float64(len(res.Experiments))
			var bitnodes, dns, common, exB, exD, exC, connected, dnsOnly float64
			for _, e := range res.Experiments {
				bitnodes += float64(e.Bitnodes)
				dns += float64(e.DNS)
				common += float64(e.Common)
				exB += float64(e.BitnodesExcluded)
				exD += float64(e.DNSExcluded)
				exC += float64(e.CommonExcluded)
				connected += float64(e.Connected)
				dnsOnly += float64(e.ConnectedDNSOnly)
			}
			rep := &Report{ID: "fig3", Title: "Seed sources (averages per experiment)"}
			rep.AddMetricf("bitnodes addresses", bitnodes/n, "%.0f", scaledPaper(opts, 10114))
			rep.AddMetricf("dns addresses", dns/n, "%.0f", scaledPaper(opts, 6637))
			rep.AddMetricf("common addresses", common/n, "%.0f", scaledPaper(opts, 6078))
			rep.AddMetricf("bitnodes excluded", exB/n, "%.0f", scaledPaper(opts, 439))
			rep.AddMetricf("dns excluded", exD/n, "%.0f", scaledPaper(opts, 342))
			rep.AddMetricf("common excluded", exC/n, "%.0f", scaledPaper(opts, 329))
			rep.AddMetricf("connected nodes", connected/n, "%.0f", scaledPaper(opts, 8270))
			rep.AddMetricf("connected, missed by bitnodes", dnsOnly/n, "%.0f", scaledPaper(opts, 404))
			rep.AddMetricf("unique reachable over horizon", float64(res.UniqueConnected),
				"%.0f", scaledPaper(opts, 28781))

			t := Table{
				Name:   "per-experiment",
				Header: []string{"exp", "bitnodes", "dns", "common", "connected", "dns-only"},
			}
			for _, e := range res.Experiments {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(e.Index), fmt.Sprint(e.Bitnodes), fmt.Sprint(e.DNS),
					fmt.Sprint(e.Common), fmt.Sprint(e.Connected),
					fmt.Sprint(e.ConnectedDNSOnly),
				})
			}
			rep.Tables = append(rep.Tables, t)
			return rep, nil
		},
	}
}

// fig4Experiment reproduces the unreachable-address collection series.
func fig4Experiment() Experiment {
	return Experiment{
		ID:      "fig4",
		Title:   "Unreachable addresses per experiment and cumulative",
		Section: "§IV-A, Figure 4",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			opts = opts.withDefaults()
			var perExp float64
			for _, e := range res.Experiments {
				perExp += float64(e.UniqueUnreachable)
			}
			perExp /= float64(len(res.Experiments))
			rep := &Report{ID: "fig4", Title: "Unreachable address collection"}
			rep.AddMetricf("unique unreachable per experiment", perExp, "%.0f",
				scaledPaper(opts, 195000))
			rep.AddMetricf("cumulative unique unreachable",
				float64(res.TotalUniqueUnreachable), "%.0f", scaledPaper(opts, 694696))
			rep.AddMetricf("port-8333 share", 100*res.DefaultPortShareUnreachable,
				"%.2f%%", "88.54%")

			t := Table{
				Name:   "series",
				Header: []string{"exp", "unique", "cumulative"},
			}
			for _, e := range res.Experiments {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(e.Index), fmt.Sprint(e.UniqueUnreachable),
					fmt.Sprint(e.CumulativeUnreachable),
				})
			}
			rep.Tables = append(rep.Tables, t)
			return rep, nil
		},
	}
}

// fig5Experiment reproduces the responsive-node scan series.
func fig5Experiment() Experiment {
	return Experiment{
		ID:      "fig5",
		Title:   "Responsive unreachable nodes per experiment and cumulative",
		Section: "§IV-A, Figure 5",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			opts = opts.withDefaults()
			var perExp, scans float64
			for _, e := range res.Experiments {
				if e.Responsive > 0 {
					perExp += float64(e.Responsive)
					scans++
				}
			}
			if scans > 0 {
				perExp /= scans
			}
			rep := &Report{ID: "fig5", Title: "Responsive scan (Algorithm 2)"}
			rep.AddMetricf("responsive per experiment", perExp, "%.0f",
				scaledPaper(opts, 54000))
			rep.AddMetricf("cumulative responsive", float64(res.TotalResponsive),
				"%.0f", scaledPaper(opts, 163496))
			if res.TotalUniqueUnreachable > 0 {
				rep.AddMetricf("responsive share of unreachable",
					100*float64(res.TotalResponsive)/float64(res.TotalUniqueUnreachable),
					"%.2f%%", "23.54%")
			}
			t := Table{
				Name:   "series",
				Header: []string{"exp", "responsive", "cumulative"},
			}
			for _, e := range res.Experiments {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(e.Index), fmt.Sprint(e.Responsive),
					fmt.Sprint(e.CumulativeResponsive),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Notes = append(rep.Notes,
				"scanner starts after the configured delay, reproducing the paper's two-week gap")
			return rep, nil
		},
	}
}

// fig8Experiment reproduces the malicious-flooder detection.
func fig8Experiment() Experiment {
	return Experiment{
		ID:      "fig8",
		Title:   "Reachable nodes flooding unreachable-only ADDR responses",
		Section: "§IV-B, Figure 8",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			opts = opts.withDefaults()
			heavy := 0
			in3320 := 0
			maxSent := 0
			for _, m := range res.Malicious {
				if float64(m.UnreachableSent) > 100000*opts.Scale {
					heavy++
				}
				if m.ASN == 3320 {
					in3320++
				}
				if m.UnreachableSent > maxSent {
					maxSent = m.UnreachableSent
				}
			}
			rep := &Report{ID: "fig8", Title: "Malicious flooders detected"}
			rep.AddMetricf("flagged nodes", float64(len(res.Malicious)), "%.0f",
				scaledPaper(opts, 73))
			rep.AddMetricf("nodes above 100K (scaled)", float64(heavy), "%.0f",
				scaledPaper(opts, 8))
			rep.AddMetricf("max addresses from one node", float64(maxSent), "%.0f",
				scaledPaper(opts, 400000))
			rep.AddMetricf("flagged nodes in AS3320", float64(in3320), "%.0f",
				scaledPaper(opts, 43))

			t := Table{
				Name:   "flooders",
				Header: []string{"rank", "asn", "unreachable-sent", "experiments"},
			}
			for i, m := range res.Malicious {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(i + 1), fmt.Sprint(m.ASN),
					fmt.Sprint(m.UnreachableSent), fmt.Sprint(m.Experiments),
				})
			}
			rep.Tables = append(rep.Tables, t)
			return rep, nil
		},
	}
}

// table1Experiment reproduces the AS-hosting censuses.
func table1Experiment() Experiment {
	return Experiment{
		ID:      "table1",
		Title:   "Top-20 ASes per node class and hijack coverage",
		Section: "§IV-A1, Table I",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "table1", Title: "AS censuses"}
			paperCoverage := map[string]string{
				"reachable": "25", "unreachable": "36", "responsive": "24",
			}
			paperASes := map[string]string{
				"reachable": "2000", "unreachable": "8494", "responsive": "4453",
			}
			for _, c := range res.Censuses {
				rep.AddMetric(fmt.Sprintf("%s: ASes hosting 50%%", c.Class),
					fmt.Sprint(c.CoverageFor50Pct), paperCoverage[c.Class])
				rep.AddMetric(fmt.Sprintf("%s: distinct ASes", c.Class),
					fmt.Sprint(c.NumASes), paperASes[c.Class]+" (population-limited at reduced scale)")
				t := Table{
					Name:   "top20-" + c.Class,
					Header: []string{"rank", "asn", "count", "pct"},
				}
				for i, s := range c.Top {
					t.Rows = append(t.Rows, []string{
						fmt.Sprint(i + 1), fmt.Sprint(s.ASN),
						fmt.Sprint(s.Count), fmt.Sprintf("%.2f", s.Pct),
					})
				}
				rep.Tables = append(rep.Tables, t)
			}
			rep.Notes = append(rep.Notes,
				"AS shares are planted from the paper's Table I and recovered from IPs by the census")
			return rep, nil
		},
	}
}

// addrMixExperiment reproduces the ADDR-composition scalar.
func addrMixExperiment() Experiment {
	return Experiment{
		ID:      "addrmix",
		Title:   "Reachable/unreachable composition of ADDR messages",
		Section: "§IV-A2",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := crawlSeriesFor(ctx, opts)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "addrmix", Title: "ADDR message composition"}
			rep.AddMetricf("reachable share", 100*res.MeanAddrReachableShare,
				"%.1f%%", "14.9%")
			rep.AddMetricf("unreachable share", 100*(1-res.MeanAddrReachableShare),
				"%.1f%%", "85.1%")
			return rep, nil
		},
	}
}
