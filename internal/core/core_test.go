package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13",
		"fig_est_pop", "fig_est_degree", "fig_interv",
		"table1", "addrmix", "resync", "syncdep", "ablation", "hijack",
		"chaos",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		if e.Title == "" || e.Section == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely described", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

func TestExperimentsSorted(t *testing.T) {
	es := Experiments()
	for i := 1; i < len(es); i++ {
		if es[i].ID < es[i-1].ID {
			t.Fatal("Experiments() not sorted by ID")
		}
	}
}

// TestRunEveryExperimentQuick exercises the full registry at smoke scale.
// This is the repository's broadest integration test: every substrate
// (wire, addrman, node, simnet, netgen, crawler, churn, stats) runs under
// every experiment.
func TestRunEveryExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take tens of seconds")
	}
	opts := Options{Seed: 3, Quick: true}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(context.Background(), opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if len(rep.Metrics) == 0 && len(rep.Tables) == 0 {
				t.Error("empty report")
			}
			var sb strings.Builder
			if err := rep.Render(&sb); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("render lacks experiment ID")
			}
		})
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	rep := &Report{ID: "demo", Title: "Demo"}
	rep.AddMetric("alpha", "1", "2")
	rep.AddMetricf("beta", 3.14159, "%.2f", "")
	rep.Notes = append(rep.Notes, "a note")
	rep.Tables = append(rep.Tables, Table{
		Name:   "series one",
		Header: []string{"x", "y"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	})

	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "alpha", "paper: 2", "3.14", "a note", "series one"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	table, err := os.ReadFile(filepath.Join(dir, "demo_series_one.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "x,y") {
		t.Errorf("csv content: %q", table)
	}
	metrics, err := os.ReadFile(filepath.Join(dir, "demo_metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "alpha,1,2") {
		t.Errorf("metrics csv content: %q", metrics)
	}
}

func TestRenderTruncatesLongTables(t *testing.T) {
	rep := &Report{ID: "big", Title: "Big"}
	tbl := Table{Name: "long", Header: []string{"i"}}
	for i := 0; i < 100; i++ {
		tbl.Rows = append(tbl.Rows, []string{"row"})
	}
	rep.Tables = append(rep.Tables, tbl)
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "more rows") {
		t.Error("long table not truncated in render")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 || o.Scale != 0.30 || o.NetSize != 120 {
		t.Errorf("full defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Scale != 0.02 || q.NetSize != 40 {
		t.Errorf("quick defaults = %+v", q)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b/c:d-e_f"); got != "a_b_c_d-e_f" {
		t.Errorf("sanitize = %q", got)
	}
}
