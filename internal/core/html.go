package core

import (
	"fmt"
	"html"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

// This file renders a batch of reports as one self-contained HTML page:
// headline metrics per experiment plus inline SVG sparklines of the
// sim-time series (no external assets, so the file works as a CI
// artifact or an email attachment). The rendering is deterministic —
// reports arrive in slice order from the Runner's merge loop and series
// are name-sorted — so same-seed pages are byte-identical.

// keySeries are rendered first in each experiment's sparkline grid:
// the four panels the reproduction is judged by (synchronization,
// churn pressure, relay tail latency, scheduler load).
var keySeries = []string{
	"prop.sync.ratio",
	"prop.sync.observed.ratio",
	"prop.churn.departures.delta",
	"churn.daily.departures",
	"node.relay.block.delay.p99",
	"node.relay.tx.delay.p99",
	"simnet.sched.depth",
}

// maxSparklines bounds the per-experiment sparkline grid; remaining
// series are listed by name so nothing is silently hidden.
const maxSparklines = 24

// RenderHTMLReport writes reports as a single self-contained HTML page
// to w — the in-memory twin of WriteHTMLReport, used by the reprod
// service to bundle the page into its content-addressed artifact cache.
func RenderHTMLReport(w io.Writer, reports []*Report) error {
	return renderHTML(w, reports, nil)
}

// RenderHTMLReportWithResources is RenderHTMLReport plus a trailing
// "Resources" section showing the run's process accounting (peak heap,
// CPU time, events processed). Resource stats are wall-clock derived and
// vary run to run, so only per-run surfaces may use this variant: the
// reprod service renders it into each cached bundle, while the CLI
// determinism path (reports compared across worker counts) stays on
// RenderHTMLReport.
func RenderHTMLReportWithResources(w io.Writer, reports []*Report, res *obs.ResourceStats) error {
	return renderHTML(w, reports, res)
}

// WriteHTMLReport writes reports as a single HTML page at path.
func WriteHTMLReport(path string, reports []*Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", path, err)
	}
	if err := renderHTML(f, reports, nil); err != nil {
		_ = f.Close()
		return fmt.Errorf("core: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close %s: %w", path, err)
	}
	return nil
}

// renderHTML writes the full page, appending a Resources section when
// res is non-nil.
func renderHTML(w io.Writer, reports []*Report, res *obs.ResourceStats) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Reproduction report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #1a1a1a; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; border-bottom: 1px solid #ddd; }
table.metrics { border-collapse: collapse; margin: 0.5em 0; }
table.metrics td, table.metrics th { border: 1px solid #ddd; padding: 0.2em 0.6em; text-align: left; }
table.metrics th { background: #f4f4f4; }
.spark { display: inline-block; margin: 0.4em 1em 0.4em 0; vertical-align: top; }
.spark figcaption { font-size: 0.8em; color: #555; max-width: 240px; overflow-wrap: anywhere; }
.note { color: #666; font-size: 0.9em; }
svg { background: #fafafa; border: 1px solid #e5e5e5; }
</style></head><body>
<h1>Reproduction report</h1>
`)
	for _, r := range reports {
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "<h2>%s — %s</h2>\n", html.EscapeString(r.ID), html.EscapeString(r.Title))
		if len(r.Metrics) > 0 {
			b.WriteString("<table class=\"metrics\"><tr><th>metric</th><th>measured</th><th>paper</th></tr>\n")
			for _, m := range r.Metrics {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
					html.EscapeString(m.Name), html.EscapeString(m.Value), html.EscapeString(m.Paper))
			}
			b.WriteString("</table>\n")
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "<p class=\"note\">%s</p>\n", html.EscapeString(n))
		}
		renderSparklines(&b, r.Series)
	}
	if res != nil {
		renderResources(&b, res)
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// renderSparklines writes the sparkline grid for one series set: key
// series first, then the rest in name order up to maxSparklines, then a
// name list of anything omitted.
func renderSparklines(b *strings.Builder, set *obs.SeriesSet) {
	if set == nil || set.Len() == 0 {
		return
	}
	ordered := make([]obs.Series, 0, set.Len())
	taken := make(map[string]bool, set.Len())
	for _, name := range keySeries {
		if s, ok := set.Get(name); ok && len(s.Points) > 0 {
			ordered = append(ordered, *s)
			taken[name] = true
		}
	}
	for _, s := range set.Series {
		if !taken[s.Name] && len(s.Points) > 0 {
			ordered = append(ordered, s)
		}
	}
	shown := ordered
	if len(shown) > maxSparklines {
		shown = shown[:maxSparklines]
	}
	for i := range shown {
		sparkline(b, &shown[i])
	}
	if omitted := len(ordered) - len(shown); omitted > 0 {
		b.WriteString("<p class=\"note\">omitted series: ")
		for i, s := range ordered[len(shown):] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(html.EscapeString(s.Name))
		}
		b.WriteString("</p>\n")
	}
}

// sparkline renders one series as an inline SVG polyline with its range
// in the caption.
func sparkline(b *strings.Builder, s *obs.Series) {
	const width, height, pad = 240, 56, 3.0
	minV, maxV := s.Points[0].V, s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V < minV {
			minV = p.V
		}
		if p.V > maxV {
			maxV = p.V
		}
	}
	t0 := s.Points[0].T
	tSpan := s.Points[len(s.Points)-1].T.Sub(t0).Seconds()
	vSpan := maxV - minV
	var pts strings.Builder
	for i, p := range s.Points {
		x := pad + (width-2*pad)*0.5
		if tSpan > 0 {
			x = pad + (width-2*pad)*p.T.Sub(t0).Seconds()/tSpan
		}
		y := height / 2.0
		if vSpan > 0 {
			y = (height - pad) - (height-2*pad)*(p.V-minV)/vSpan
		}
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(b, `<figure class="spark"><svg width="%d" height="%d" viewBox="0 0 %d %d">`+
		`<polyline fill="none" stroke="#2563eb" stroke-width="1.2" points="%s"/></svg>`,
		width, height, width, height, pts.String())
	fmt.Fprintf(b, "<figcaption>%s<br>min %s · max %s · n=%d</figcaption></figure>\n",
		html.EscapeString(s.Name), trimFloat(minV), trimFloat(maxV), len(s.Points))
}

// renderResources writes the run-level Resources section: the process
// accounting measured while this batch ran.
func renderResources(b *strings.Builder, res *obs.ResourceStats) {
	b.WriteString("<h2>Resources</h2>\n<table class=\"metrics\"><tr><th>resource</th><th>value</th></tr>\n")
	row := func(name, value string) {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(name), html.EscapeString(value))
	}
	row("peak heap", fmt.Sprintf("%d bytes", res.PeakHeapBytes))
	row("peak goroutines", fmt.Sprintf("%d", res.PeakGoroutines))
	row("allocated", fmt.Sprintf("%d bytes (%d objects)", res.AllocBytes, res.Mallocs))
	row("gc cycles", fmt.Sprintf("%d (max pause %d ns)", res.NumGC, res.GCPauseMaxNS))
	row("cpu time", fmt.Sprintf("%d ns", res.CPUNS))
	row("wall time", fmt.Sprintf("%d ns", res.WallNS))
	row("events processed", fmt.Sprintf("%d", res.EventsProcessed))
	b.WriteString("</table>\n")
}

// trimFloat renders a value compactly for captions.
func trimFloat(v float64) string {
	out := fmt.Sprintf("%.4g", v)
	return out
}
