package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// Runner is the parallel experiment engine: it executes a slice of
// experiments on a worker pool and merges their output deterministically.
//
// Each experiment runs on its own goroutine with its own seed-derived
// randomness, registry, and tracer (experiments construct those
// per-run), renders into a private buffer, and writes its CSV sidecars
// to files keyed by its ID — no mutable state is shared across workers.
// Reports are then emitted to the output writer in slice order, so the
// rendered stream, the CSV directory, and every trace digest are
// byte-identical whatever Workers is set to. Only the profile lines
// (wall/alloc measurements, written to Profiles) are nondeterministic,
// which is why they are kept off the report surface.
type Runner struct {
	// Workers is the pool size; zero or negative means GOMAXPROCS.
	Workers int
	// Options tune every experiment in the batch.
	Options Options
	// CSVDir, when non-empty, receives each report's CSV sidecars.
	CSVDir string
	// Profiles, when non-nil, receives one "  profile: ..." line per
	// experiment as its report is emitted. Wall times are real time, so
	// this stream is nondeterministic and must stay separate from w.
	Profiles io.Writer
	// Collect, when non-nil, receives every finished report in slice
	// order from the merge loop (never concurrently) — the hook the HTML
	// report writer hangs off.
	Collect func(*Report)
	// Trace, when non-nil, receives lifecycle progress events: exp.start
	// when a worker picks an experiment up, exp.done (with wall-clock
	// Dur) when it finishes, exp.fail when it errors or panics. Events
	// are wall-clock timed and worker-ordered, so they are a live
	// progress surface (the reprod service streams them as NDJSON), not
	// part of the deterministic report output.
	Trace *obs.Tracer
	// Resources, when non-nil, opens a per-experiment measurement window
	// on the shared process sampler and appends one "  resources: ..."
	// line per experiment to Profiles. Like the profile lines, resource
	// stats are wall-clock derived and nondeterministic, so they never
	// touch the report writer, the CSV sidecars, or Report itself.
	Resources *obs.ResourceSampler
	// FlightRecorder, when non-nil, receives a crash dump — tracer ring,
	// resource watermarks, panic value and stack — whenever an experiment
	// dies by panic or deadline, keyed by the experiment ID. Watermarks
	// are captured even when Resources is nil: arming the recorder arms
	// an unpublished sampler for the crash window, so a record is never
	// dumped with empty resource data.
	FlightRecorder *obs.FlightRecorder
	// FlightKey, when non-empty, keys flight records instead of the
	// experiment ID — the reprod service passes its cache key so the
	// crash artifact and the run it belongs to share an address.
	FlightKey string
	// KeepGoing, when true, stops a failing (or panicking) experiment
	// from cancelling the rest of the batch: every experiment runs,
	// successes are emitted in order exactly as usual, and Run returns a
	// *BatchError aggregating the per-experiment failures. When false
	// (the default) the first failure cancels outstanding work and is
	// returned alone, preserving the historical contract.
	KeepGoing bool
}

// JobError is one failed experiment inside a KeepGoing batch.
type JobError struct {
	// Index is the experiment's slice position.
	Index int
	// ID is the experiment identifier.
	ID string
	// Err is the failure, already wrapped with the ID.
	Err error
}

// BatchError aggregates every experiment failure of a KeepGoing run.
type BatchError struct {
	// Failures holds one entry per failed experiment, in slice order.
	Failures []JobError
	// Total is the batch size the failures came out of.
	Total int
}

// Error summarises the batch failure count and the failing IDs.
func (e *BatchError) Error() string {
	ids := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		ids[i] = f.ID
	}
	return fmt.Sprintf("core: %d of %d experiments failed: %s",
		len(e.Failures), e.Total, strings.Join(ids, ", "))
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// runnerJob is one experiment's private result, handed from its worker
// to the in-order merge loop. Both the rendered report and the profile
// line are buffered worker-side: the merge loop only copies bytes, so
// neither stream can interleave across workers whatever the pool size.
type runnerJob struct {
	buf     bytes.Buffer
	profBuf bytes.Buffer
	rep     *Report
	err     error
	ok      bool
	done    chan struct{}
}

// emitTrace publishes one lifecycle event on the progress tracer. The
// tracer stamps wall-clock time; a nil Trace makes this a no-op.
func (r *Runner) emitTrace(kind, id, detail string, dur time.Duration) {
	if r.Trace == nil {
		return
	}
	r.Trace.Emit(obs.Event{Kind: kind, Detail: id + detail, Dur: dur})
}

// runOne executes experiment e with panic containment: a panicking
// Run is recovered into a *par.PanicError carrying the job index and
// the faulting stack, so under KeepGoing (or behind the reprod service)
// one crashed experiment cannot take the batch or the process down.
func (r *Runner) runOne(ctx context.Context, i int, e Experiment) (rep *Report, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rep = nil
			err = &par.PanicError{Index: i, Value: rec, Stack: debug.Stack()}
		}
	}()
	return e.Run(ctx, r.Options)
}

// recordFlight dumps a crash record for experiment id when err is a
// death worth preserving: a contained panic or a context deadline. The
// dump carries the progress-tracer ring and the sampler's watermarks;
// dump failures are reported on the trace stream, never allowed to mask
// the original error.
func (r *Runner) recordFlight(id string, err error, res obs.ResourceStats) {
	if r.FlightRecorder == nil || err == nil {
		return
	}
	var cause string
	var panicValue any
	var stack []byte
	var pe *par.PanicError
	switch {
	case errors.As(err, &pe):
		cause, panicValue, stack = "panic", pe.Value, pe.Stack
	case errors.Is(err, context.DeadlineExceeded):
		cause = "deadline"
	default:
		return
	}
	key := id
	if r.FlightKey != "" {
		key = r.FlightKey
	}
	rec := obs.CaptureFlightRecord(key, cause, panicValue, stack, r.Trace, nil, res)
	if path, dumpErr := r.FlightRecorder.Dump(rec); dumpErr != nil {
		r.emitTrace("flightrec.fail", id, ": "+dumpErr.Error(), 0)
	} else {
		r.emitTrace("flightrec.dump", id, ": "+path, 0)
	}
}

// Run executes exps on the pool and renders each report to w in slice
// order. The first failure cancels outstanding work and is returned
// wrapped with its experiment ID (unless KeepGoing is set, which runs
// everything and aggregates failures into a *BatchError); if ctx is
// cancelled, Run stops mid-simulation and returns ctx.Err(). Output is
// streamed: a report is written as soon as it and all its predecessors
// are done, and a report is always written whole or not at all — the
// merge loop never copies a failed or half-rendered buffer.
func (r *Runner) Run(ctx context.Context, exps []Experiment, w io.Writer) error {
	jobs := make([]runnerJob, len(exps))
	for i := range jobs {
		jobs[i].done = make(chan struct{})
	}

	// Flight records must carry watermarks even when the caller never
	// asked for resource lines; sample on an unpublished fallback then.
	// Printing stays keyed on r.Resources so the Profiles surface is
	// untouched.
	sampler := r.Resources
	if sampler == nil && r.FlightRecorder != nil {
		sampler = obs.NewResourceSampler(nil)
	}

	forEachErr := make(chan error, 1)
	go func() {
		forEachErr <- par.ForEach(ctx, r.Workers, len(exps), func(ctx context.Context, i int) error {
			defer close(jobs[i].done)
			e := exps[i]
			r.emitTrace("exp.start", e.ID, "", 0)
			begin := time.Now()
			stop := obs.StartProfile()
			endRes := sampler.StartRun()
			rep, err := r.runOne(ctx, i, e)
			res := endRes()
			if err != nil {
				jobs[i].err = fmt.Errorf("core: %s: %w", e.ID, err)
				r.recordFlight(e.ID, err, res)
				r.emitTrace("exp.fail", e.ID, ": "+err.Error(), time.Since(begin))
				if r.KeepGoing {
					return nil
				}
				return jobs[i].err
			}
			rep.Profile = stop()
			fmt.Fprintf(&jobs[i].profBuf, "  profile: %s\n", rep.Profile)
			if r.Resources != nil {
				res.EventsProcessed = EventsProcessed(rep)
				fmt.Fprintf(&jobs[i].profBuf, "  resources: %s\n", res)
			}
			if err := rep.Render(&jobs[i].buf); err != nil {
				jobs[i].err = fmt.Errorf("core: %s: %w", e.ID, err)
				r.emitTrace("exp.fail", e.ID, ": "+err.Error(), time.Since(begin))
				if r.KeepGoing {
					return nil
				}
				return jobs[i].err
			}
			fmt.Fprintln(&jobs[i].buf)
			if r.CSVDir != "" {
				if err := rep.WriteCSV(r.CSVDir); err != nil {
					jobs[i].err = fmt.Errorf("core: %s: %w", e.ID, err)
					r.emitTrace("exp.fail", e.ID, ": "+err.Error(), time.Since(begin))
					if r.KeepGoing {
						return nil
					}
					return jobs[i].err
				}
			}
			jobs[i].rep = rep
			jobs[i].ok = true
			r.emitTrace("exp.done", e.ID, "", time.Since(begin))
			return nil
		})
	}()

	// Merge loop: emit buffered reports in slice order. A job that
	// failed (or was interrupted by the induced cancellation) stops the
	// emission — or, under KeepGoing, is recorded and skipped; the
	// pool's deterministic error — the lowest-index real failure, or
	// ctx.Err() — is what the caller sees. Jobs skipped after
	// cancellation never close done, but they are all beyond the
	// failing index, which the loop below never passes.
	var batch *BatchError
	emitted := func() error {
		for i := range jobs {
			select {
			case <-jobs[i].done:
			case <-ctx.Done():
				return ctx.Err()
			}
			if !jobs[i].ok {
				if r.KeepGoing {
					err := jobs[i].err
					if err == nil {
						err = fmt.Errorf("core: %s failed", exps[i].ID)
					}
					if batch == nil {
						batch = &BatchError{Total: len(exps)}
					}
					batch.Failures = append(batch.Failures,
						JobError{Index: i, ID: exps[i].ID, Err: err})
					continue
				}
				return fmt.Errorf("core: %s failed", exps[i].ID)
			}
			if _, err := w.Write(jobs[i].buf.Bytes()); err != nil {
				return err
			}
			if r.Profiles != nil {
				if _, err := r.Profiles.Write(jobs[i].profBuf.Bytes()); err != nil {
					return err
				}
			}
			if r.Collect != nil {
				r.Collect(jobs[i].rep)
			}
		}
		return nil
	}

	emitErr := emitted()
	if err := <-forEachErr; err != nil {
		return err
	}
	if emitErr != nil {
		return emitErr
	}
	if batch != nil {
		return batch
	}
	return nil
}
