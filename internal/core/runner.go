package core

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/par"
)

// Runner is the parallel experiment engine: it executes a slice of
// experiments on a worker pool and merges their output deterministically.
//
// Each experiment runs on its own goroutine with its own seed-derived
// randomness, registry, and tracer (experiments construct those
// per-run), renders into a private buffer, and writes its CSV sidecars
// to files keyed by its ID — no mutable state is shared across workers.
// Reports are then emitted to the output writer in slice order, so the
// rendered stream, the CSV directory, and every trace digest are
// byte-identical whatever Workers is set to. Only the profile lines
// (wall/alloc measurements, written to Profiles) are nondeterministic,
// which is why they are kept off the report surface.
type Runner struct {
	// Workers is the pool size; zero or negative means GOMAXPROCS.
	Workers int
	// Options tune every experiment in the batch.
	Options Options
	// CSVDir, when non-empty, receives each report's CSV sidecars.
	CSVDir string
	// Profiles, when non-nil, receives one "  profile: ..." line per
	// experiment as its report is emitted. Wall times are real time, so
	// this stream is nondeterministic and must stay separate from w.
	Profiles io.Writer
	// Collect, when non-nil, receives every finished report in slice
	// order from the merge loop (never concurrently) — the hook the HTML
	// report writer hangs off.
	Collect func(*Report)
}

// runnerJob is one experiment's private result, handed from its worker
// to the in-order merge loop. Both the rendered report and the profile
// line are buffered worker-side: the merge loop only copies bytes, so
// neither stream can interleave across workers whatever the pool size.
type runnerJob struct {
	buf     bytes.Buffer
	profBuf bytes.Buffer
	rep     *Report
	ok      bool
	done    chan struct{}
}

// Run executes exps on the pool and renders each report to w in slice
// order. The first failure cancels outstanding work and is returned
// wrapped with its experiment ID; if ctx is cancelled, Run stops
// mid-simulation and returns ctx.Err(). Output is streamed: a report is
// written as soon as it and all its predecessors are done.
func (r *Runner) Run(ctx context.Context, exps []Experiment, w io.Writer) error {
	jobs := make([]runnerJob, len(exps))
	for i := range jobs {
		jobs[i].done = make(chan struct{})
	}

	forEachErr := make(chan error, 1)
	go func() {
		forEachErr <- par.ForEach(ctx, r.Workers, len(exps), func(ctx context.Context, i int) error {
			defer close(jobs[i].done)
			e := exps[i]
			stop := obs.StartProfile()
			rep, err := e.Run(ctx, r.Options)
			if err != nil {
				return fmt.Errorf("core: %s: %w", e.ID, err)
			}
			rep.Profile = stop()
			fmt.Fprintf(&jobs[i].profBuf, "  profile: %s\n", rep.Profile)
			if err := rep.Render(&jobs[i].buf); err != nil {
				return fmt.Errorf("core: %s: %w", e.ID, err)
			}
			fmt.Fprintln(&jobs[i].buf)
			if r.CSVDir != "" {
				if err := rep.WriteCSV(r.CSVDir); err != nil {
					return fmt.Errorf("core: %s: %w", e.ID, err)
				}
			}
			jobs[i].rep = rep
			jobs[i].ok = true
			return nil
		})
	}()

	// Merge loop: emit buffered reports in slice order. A job that
	// failed (or was interrupted by the induced cancellation) stops the
	// emission; the pool's deterministic error — the lowest-index real
	// failure, or ctx.Err() — is what the caller sees. Jobs skipped
	// after cancellation never close done, but they are all beyond the
	// failing index, which the loop below never passes.
	emitted := func() error {
		for i := range jobs {
			select {
			case <-jobs[i].done:
			case <-ctx.Done():
				return ctx.Err()
			}
			if !jobs[i].ok {
				return fmt.Errorf("core: %s failed", exps[i].ID)
			}
			if _, err := w.Write(jobs[i].buf.Bytes()); err != nil {
				return err
			}
			if r.Profiles != nil {
				if _, err := r.Profiles.Write(jobs[i].profBuf.Bytes()); err != nil {
					return err
				}
			}
			if r.Collect != nil {
				r.Collect(jobs[i].rep)
			}
		}
		return nil
	}

	emitErr := emitted()
	if err := <-forEachErr; err != nil {
		return err
	}
	return emitErr
}
