package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
	"repro/internal/stats"
)

// Message-level simulation experiments: Figures 1, 6, 7, 10, 11, the
// restart/resync measurement, and the §V ablation.

// fig1Experiment reproduces the synchronization KDE contrast.
func fig1Experiment() Experiment {
	return Experiment{
		ID:      "fig1",
		Title:   "Network synchronization in 2019 vs 2020 (kernel density)",
		Section: "§I, Figure 1",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			cfg := analysis.Fig1Config{
				Seed:         opts.Seed,
				NumReachable: opts.NetSize,
				Duration:     8 * time.Hour,
				Churn2019:    churnScaled(opts.NetSize, 0.9),
				Churn2020:    churnScaled(opts.NetSize, 3.0),
				Replications: 3,
			}
			if opts.Quick {
				cfg.Duration = 3 * time.Hour
				cfg.Replications = 1
			}
			res, err := analysis.RunFig1(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig1", Title: "Synchronization distributions"}
			rep.AddMetricf("2019 mean sync", 100*res.Y2019.Mean, "%.2f%%", "72.02%")
			rep.AddMetricf("2019 median sync", 100*res.Y2019.Median, "%.2f%%", "80.38%")
			rep.AddMetricf("2020 mean sync", 100*res.Y2020.Mean, "%.2f%%", "61.91%")
			rep.AddMetricf("2020 median sync", 100*res.Y2020.Median, "%.2f%%", "65.47%")
			rep.AddMetricf("mean drop (points)",
				100*(res.Y2019.Mean-res.Y2020.Mean), "%.2f", "≈10")

			t := Table{Name: "kde", Header: []string{"sync", "density2019", "density2020"}}
			for i := range res.Y2019.Grid {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.3f", res.Y2019.Grid[i]),
					fmt.Sprintf("%.4f", res.Y2019.Density[i]),
					fmt.Sprintf("%.4f", res.Y2020.Density[i]),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Notes = append(rep.Notes,
				"total churn-event rates follow the netgen 2019/2020 calibration (ratio ≈3 at 10-minute granularity; the paper's ≈2 ratio is for synchronized departures only)",
				"both regimes share block schedules and topology per replication (common random numbers)",
				"the drop magnitude compresses at simulation scale; direction and distribution shape are the reproduced claims")
			return rep, nil
		},
	}
}

// churnScaled maps the paper's full-network churn (at ~10K nodes) to the
// simulated population, with a floor that keeps the process active at
// small scale.
func churnScaled(netSize int, multiplier float64) float64 {
	// The 80-node calibration run reproduces the paper's means at 1.0/2.0
	// departures per 10 minutes; scale linearly with population.
	rate := multiplier * float64(netSize) / 80
	if rate < 0.25 {
		rate = 0.25
	}
	return rate
}

// fig6Experiment reproduces the outgoing-connection stability trace.
func fig6Experiment() Experiment {
	return Experiment{
		ID:      "fig6",
		Title:   "Outgoing connection stability over 260 seconds",
		Section: "§IV-B, Figure 6",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			cfg := analysis.ConnExperimentConfig{
				Seed:              opts.Seed,
				LivePeers:         opts.NetSize / 2,
				Duration:          260 * time.Second,
				SampleEvery:       time.Second,
				ObserverWarmup:    12 * time.Minute,
				PeerChurnPer10Min: 4,
				ConnDropEvery:     45 * time.Second,
				Runs:              1,
			}
			res, err := analysis.RunConnExperiment(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig6", Title: "Connection stability"}
			rep.AddMetricf("mean outgoing connections", res.MeanConns, "%.2f", "6.67")
			rep.AddMetricf("time below 8 connections", 100*res.FracBelowTarget,
				"%.0f%%", "≈60%")
			lo, hi := 99, 0
			for _, s := range res.Runs[0].Samples {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			rep.AddMetric("range", fmt.Sprintf("%d–%d", lo, hi), "2–10")

			t := Table{Name: "trace", Header: []string{"second", "connections"}}
			for i, s := range res.Runs[0].Samples {
				t.Rows = append(t.Rows, []string{fmt.Sprint(i), fmt.Sprint(s)})
			}
			rep.Tables = append(rep.Tables, t)
			return rep, nil
		},
	}
}

// fig7Experiment reproduces the connection success-rate runs.
func fig7Experiment() Experiment {
	return Experiment{
		ID:      "fig7",
		Title:   "Outgoing connection attempts vs successes (5 runs)",
		Section: "§IV-B, Figure 7",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			cfg := analysis.ConnExperimentConfig{
				Seed:              opts.Seed,
				LivePeers:         opts.NetSize / 2,
				Duration:          5 * time.Minute,
				SampleEvery:       5 * time.Second,
				PeerChurnPer10Min: 2,
				ConnDropEvery:     40 * time.Second,
				Runs:              5,
			}
			res, err := analysis.RunConnExperiment(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig7", Title: "Connection success rate"}
			rep.AddMetricf("success rate", 100*res.SuccessRate, "%.1f%%", "11.2%")
			rep.AddMetricf("failure rate", 100*(1-res.SuccessRate), "%.1f%%", "88.8%")

			t := Table{Name: "runs", Header: []string{"run", "attempts", "successes"}}
			for i, r := range res.Runs {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(i + 1), fmt.Sprint(r.Attempts), fmt.Sprint(r.Successes),
				})
			}
			rep.Tables = append(rep.Tables, t)
			return rep, nil
		},
	}
}

// relayExperiment shares the Figure 10/11 workload.
func relayExperiment(ctx context.Context, opts Options) (*analysis.PropagationResult, error) {
	opts = opts.withDefaults()
	cfg := analysis.PropagationConfig{
		Seed:                    opts.Seed,
		NumReachable:            opts.NetSize,
		Duration:                6 * time.Hour,
		TxPerBlock:              400,
		CompactBlocks:           true,
		CompactShare:            0.8, // the 2020 network mixed compact and legacy peers
		RelayPolicy:             node.RoundRobin,
		BytesPerSec:             320 << 10, // a residential uplink share
		ChurnDeparturesPer10Min: churnScaled(opts.NetSize, 1.5),
	}
	if opts.Quick {
		cfg.Duration = 90 * time.Minute
		cfg.TxPerBlock = 150
	}
	return analysis.RunPropagation(ctx, cfg)
}

// fig10Experiment reproduces the block relay-delay distribution.
func fig10Experiment() Experiment {
	return Experiment{
		ID:      "fig10",
		Title:   "Block relay delay to the last connection",
		Section: "§IV-C, Figure 10",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := relayExperiment(ctx, opts)
			if err != nil {
				return nil, err
			}
			s := analysis.SummarizeRelays(res.BlockRelays)
			rep := &Report{ID: "fig10", Title: "Block relay delay"}
			rep.AddMetricf("mean delay", s.Mean, "%.2f s", "1.39 s")
			rep.AddMetricf("max delay (paper-size sample)", s.P997, "%.2f s", "17 s")
			rep.AddMetricf("max delay (all observations)", s.Max, "%.2f s", "")
			rep.AddMetricf("p90 delay", s.P90, "%.2f s", "")
			rep.AddMetricf("p99 delay", s.P99, "%.2f s", "")
			rep.AddMetricf("observations", float64(s.Count), "%.0f", "")
			rep.Tables = append(rep.Tables, delayTable("delays", s.Series))
			rep.Series = res.Series
			return rep, nil
		},
	}
}

// fig11Experiment reproduces the transaction relay-delay distribution.
func fig11Experiment() Experiment {
	return Experiment{
		ID:      "fig11",
		Title:   "Transaction relay delay to the last connection",
		Section: "§IV-C, Figure 11",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			res, err := relayExperiment(ctx, opts)
			if err != nil {
				return nil, err
			}
			s := analysis.SummarizeRelays(res.TxRelays)
			rep := &Report{ID: "fig11", Title: "Transaction relay delay"}
			rep.AddMetricf("mean delay", s.Mean, "%.2f s", "0.45 s")
			rep.AddMetricf("p99.9 delay", stats.Quantile(s.Series, 0.999), "%.2f s", "8 s (paper max)")
			rep.AddMetricf("max delay (all observations)", s.Max, "%.2f s", "")
			rep.AddMetricf("p90 delay", s.P90, "%.2f s", "")
			rep.AddMetricf("observations", float64(s.Count), "%.0f", "")
			rep.Tables = append(rep.Tables, delayTable("delays", s.Series))
			rep.Series = res.Series
			return rep, nil
		},
	}
}

// delayTable folds a delay series into a CDF table (delays are numerous;
// the CDF is the useful artifact).
func delayTable(name string, series []float64) Table {
	t := Table{Name: name + "-cdf", Header: []string{"delay_s", "cdf"}}
	if len(series) == 0 {
		return t
	}
	s := stats.MustSummarize(series)
	grid := stats.Grid(0, s.Max, 51)
	cdf := stats.ECDF(series, grid)
	for i := range grid {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", grid[i]), fmt.Sprintf("%.4f", cdf[i]),
		})
	}
	return t
}

// resyncExperiment reproduces the restart/resync measurement.
func resyncExperiment() Experiment {
	return Experiment{
		ID:      "resync",
		Title:   "Time for a restarted node to resynchronize",
		Section: "§IV-D",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			res, err := analysis.RunResync(ctx, analysis.ConnExperimentConfig{
				Seed:      opts.Seed,
				LivePeers: opts.NetSize / 2,
			})
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "resync", Title: "Restart recovery milestones"}
			rep.AddMetric("first outbound handshake",
				res.ToFirstConnection.Round(time.Second).String(), "")
			rep.AddMetric("chain tip reached (IBD done)",
				res.ToSynced.Round(time.Second).String(), "")
			full := "never (within 30m window)"
			if res.ToFullSlots > 0 {
				full = res.ToFullSlots.Round(time.Second).String()
			}
			rep.AddMetric("stable outbound slots restored", full, "11m14s")
			rep.Notes = append(rep.Notes,
				"the paper reports 11m14s until the node relayed blocks again, mostly spent establishing stable outgoing connections — compare the slot-restoration milestone",
				"the restarted node dials serially (MaxPendingDials=1), matching ThreadOpenConnections")
			return rep, nil
		},
	}
}

// hijackExperiment extends §IV-A1: a live AS-hijack partition rather
// than the paper's hosting-share counting argument.
func hijackExperiment() Experiment {
	return Experiment{
		ID:      "hijack",
		Title:   "AS-hijack partition experiment (extension of §IV-A1)",
		Section: "§IV-A1 (extension)",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			cfg := analysis.HijackConfig{
				Seed:          opts.Seed,
				NumReachable:  opts.NetSize,
				HijackTopASes: 8,
			}
			if opts.Quick {
				cfg.At = 15 * time.Minute
				cfg.Observe = 15 * time.Minute
			}
			res, err := analysis.RunHijack(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "hijack", Title: "AS-hijack partition"}
			rep.AddMetricf("nodes isolated directly", 100*res.IsolatedShare,
				"%.1f%%", "≈50% when hijacking the top ASes ([22] via Table I shares)")
			rep.AddMetricf("survivor outdegree before", res.SurvivorMeanOutdegreeBefore, "%.2f", "")
			rep.AddMetricf("survivor outdegree after", res.SurvivorMeanOutdegreeAfter, "%.2f", "")
			rep.AddMetricf("survivors at tip after observation", 100*res.SurvivorsAtTip, "%.1f%%", "")
			rep.AddMetricf("blocks mined after hijack", float64(res.BlocksMinedAfter), "%.0f", "")
			asList := Table{Name: "hijacked-ases", Header: []string{"asn"}}
			for _, a := range res.HijackedASes {
				asList.Rows = append(asList.Rows, []string{fmt.Sprint(a)})
			}
			rep.Tables = append(rep.Tables, asList)
			return rep, nil
		},
	}
}

// ablationExperiment measures the §V refinements.
func ablationExperiment() Experiment {
	return Experiment{
		ID:      "ablation",
		Title:   "§V refinements: tried-only ADDR, 17-day horizon, priority relay",
		Section: "§V",
		Run: func(ctx context.Context, opts Options) (*Report, error) {
			opts = opts.withDefaults()
			base := analysis.PropagationConfig{
				Seed:                    opts.Seed,
				NumReachable:            opts.NetSize,
				Duration:                4 * time.Hour,
				TxPerBlock:              200,
				CompactBlocks:           true,
				BytesPerSec:             200 << 10,
				ChurnDeparturesPer10Min: churnScaled(opts.NetSize, 2.0),
			}
			if opts.Quick {
				base.Duration = time.Hour
				base.TxPerBlock = 80
			}
			res, err := analysis.RunAblation(ctx, base, nil)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "ablation", Title: "Refinement ablation"}
			t := Table{
				Name: "variants",
				Header: []string{"variant", "dial-success", "cold-start-success",
					"observed-sync", "mean-block-relay", "max-block-relay", "outdegree"},
			}
			for _, row := range res.Rows {
				t.Rows = append(t.Rows, []string{
					row.Variant.Name,
					fmt.Sprintf("%.1f%%", 100*row.DialSuccessRate),
					fmt.Sprintf("%.1f%%", 100*row.ColdStartSuccessRate),
					fmt.Sprintf("%.1f%%", 100*row.MeanObservedSync),
					fmt.Sprintf("%.2fs", row.MeanBlockRelay.Seconds()),
					fmt.Sprintf("%.2fs", row.MaxBlockRelay.Seconds()),
					fmt.Sprintf("%.2f", row.MeanOutdegree),
				})
			}
			rep.Tables = append(rep.Tables, t)
			rep.Notes = append(rep.Notes,
				"the paper predicts the refinements raise dial success and cut block relay delay (§V)")
			return rep, nil
		},
	}
}
