package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// runnerSubset is a fast cross-section of the registry for the
// parallel-vs-sequential golden test: the two snapshot churn figures,
// the synchronized-departure contrast, the crawl-backed ADDR mix, and
// the chaos scenario (whose report carries a trace digest, extending the
// determinism check to the obs layer).
func runnerSubset(t *testing.T) []Experiment {
	ids := []string{"fig12", "fig13", "syncdep", "addrmix", "chaos"}
	if testing.Short() {
		ids = []string{"fig12", "fig13", "syncdep"}
	}
	var exps []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// readDir returns a map of file name to contents for a flat directory.
func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[ent.Name()] = string(data)
	}
	return out
}

// TestRunnerParallelMatchesSequential is the engine's determinism
// contract: Workers: 4 must produce byte-identical rendered output and
// CSV sidecars (including the chaos trace digest) to Workers: 1.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	exps := runnerSubset(t)
	opts := Options{Seed: 3, Quick: true}

	var seqOut, parOut bytes.Buffer
	seqDir, parDir := t.TempDir(), t.TempDir()

	seq := Runner{Workers: 1, Options: opts, CSVDir: seqDir}
	if err := seq.Run(context.Background(), exps, &seqOut); err != nil {
		t.Fatal(err)
	}
	par := Runner{Workers: 4, Options: opts, CSVDir: parDir}
	if err := par.Run(context.Background(), exps, &parOut); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("rendered output differs between Workers=1 (%d bytes) and Workers=4 (%d bytes)",
			seqOut.Len(), parOut.Len())
	}
	seqCSV, parCSV := readDir(t, seqDir), readDir(t, parDir)
	if len(seqCSV) == 0 {
		t.Fatal("sequential run wrote no CSVs")
	}
	if len(seqCSV) != len(parCSV) {
		t.Fatalf("CSV file count differs: %d sequential vs %d parallel", len(seqCSV), len(parCSV))
	}
	for name, want := range seqCSV {
		if got, ok := parCSV[name]; !ok {
			t.Errorf("parallel run missing CSV %s", name)
		} else if got != want {
			t.Errorf("CSV %s differs between worker counts", name)
		}
	}
}

// TestRunnerCancellation checks Runner.Run returns promptly with
// ctx.Err() when cancelled mid-run, even while experiments block.
func TestRunnerCancellation(t *testing.T) {
	started := make(chan struct{}, 4)
	blocking := func(id string) Experiment {
		return Experiment{
			ID: id,
			Run: func(ctx context.Context, _ Options) (*Report, error) {
				started <- struct{}{}
				<-ctx.Done()
				return nil, ctx.Err()
			},
		}
	}
	exps := []Experiment{blocking("a"), blocking("b"), blocking("c"), blocking("d")}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		r := Runner{Workers: 2, Options: Options{Quick: true}}
		done <- r.Run(ctx, exps, &out)
	}()
	<-started
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Runner.Run did not return after cancellation")
	}
	if out.Len() != 0 {
		t.Errorf("cancelled run emitted %d bytes", out.Len())
	}
}

// TestRunnerCancellationMidMerge cancels after some reports have been
// emitted and checks two robustness properties the reprod service
// depends on: emitted output consists only of whole reports (a blocked
// job's buffer is never partially copied), and the Runner's worker
// goroutines all exit once the blocked experiments observe the
// cancellation — no leak survives.
func TestRunnerCancellationMidMerge(t *testing.T) {
	before := runtime.NumGoroutine()

	fast := Experiment{ID: "fast", Run: func(context.Context, Options) (*Report, error) {
		rep := &Report{ID: "fast", Title: "fast"}
		rep.AddMetric("v", "1", "")
		return rep, nil
	}}
	blockedStarted := make(chan struct{})
	blocked := Experiment{ID: "blocked", Run: func(ctx context.Context, _ Options) (*Report, error) {
		close(blockedStarted)
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	exps := []Experiment{fast, blocked, fast, fast}

	ctx, cancel := context.WithCancel(context.Background())
	var out safeBuffer
	done := make(chan error, 1)
	go func() {
		r := Runner{Workers: 2, Options: Options{Quick: true}}
		done <- r.Run(ctx, exps, &out)
	}()

	// Wait until the first report has been merged and the blocker is
	// mid-run, then cancel: the merge loop is now parked on job 1.
	<-blockedStarted
	waitFor(t, func() bool { return out.Len() > 0 })
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Runner.Run did not return after mid-merge cancellation")
	}

	// Whole-report invariant: everything emitted is the fast report,
	// nothing from the blocked job, no torn tail.
	got := out.String()
	if !strings.HasPrefix(got, "== fast —") || !strings.HasSuffix(got, "\n\n") {
		t.Errorf("emitted output is not a whole report:\n%q", got)
	}
	if strings.Contains(got, "blocked") {
		t.Errorf("cancelled job leaked output:\n%q", got)
	}

	// Leak check: all pool goroutines exit once their ctx fires.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// safeBuffer is a mutex-guarded bytes.Buffer: the merge loop writes it
// while the test polls Len.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunnerKeepGoing checks a failing and a panicking experiment are
// both contained: every healthy report is still emitted in order, and
// the aggregate *BatchError names the failures.
func TestRunnerKeepGoing(t *testing.T) {
	sentinel := errors.New("boom")
	ok := func(id string) Experiment {
		return Experiment{ID: id, Run: func(context.Context, Options) (*Report, error) {
			return &Report{ID: id, Title: id}, nil
		}}
	}
	bad := Experiment{ID: "bad", Run: func(context.Context, Options) (*Report, error) {
		return nil, sentinel
	}}
	angry := Experiment{ID: "angry", Run: func(context.Context, Options) (*Report, error) {
		panic("kaboom")
	}}
	exps := []Experiment{ok("a"), bad, ok("c"), angry, ok("e")}

	for _, workers := range []int{1, 3} {
		var out bytes.Buffer
		r := Runner{Workers: workers, Options: Options{Quick: true}, KeepGoing: true}
		err := r.Run(context.Background(), exps, &out)

		var batch *BatchError
		if !errors.As(err, &batch) {
			t.Fatalf("workers=%d: got %v (%T), want *BatchError", workers, err, err)
		}
		if len(batch.Failures) != 2 || batch.Total != 5 {
			t.Fatalf("workers=%d: failures = %+v, total = %d", workers, batch.Failures, batch.Total)
		}
		if batch.Failures[0].ID != "bad" || batch.Failures[1].ID != "angry" {
			t.Errorf("workers=%d: failure IDs = %s, %s", workers,
				batch.Failures[0].ID, batch.Failures[1].ID)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: errors.Is(err, sentinel) = false", workers)
		}
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("workers=%d: panic not surfaced via errors.As", workers)
		}
		for _, id := range []string{"a", "c", "e"} {
			if !bytes.Contains(out.Bytes(), []byte("== "+id+" —")) {
				t.Errorf("workers=%d: healthy report %s missing", workers, id)
			}
		}
		if bytes.Contains(out.Bytes(), []byte("bad")) || bytes.Contains(out.Bytes(), []byte("angry")) {
			t.Errorf("workers=%d: failed experiment leaked into output", workers)
		}
	}
}

// TestRunnerTraceEvents checks the progress tracer sees one start and
// one terminal event per experiment, with failures labelled exp.fail.
func TestRunnerTraceEvents(t *testing.T) {
	exps := []Experiment{
		{ID: "x", Run: func(context.Context, Options) (*Report, error) {
			return &Report{ID: "x", Title: "x"}, nil
		}},
		{ID: "y", Run: func(context.Context, Options) (*Report, error) {
			return nil, errors.New("nope")
		}},
	}
	tracer := obs.NewTracer(64, nil)
	var out bytes.Buffer
	r := Runner{Workers: 2, Options: Options{Quick: true}, Trace: tracer, KeepGoing: true}
	if err := r.Run(context.Background(), exps, &out); err == nil {
		t.Fatal("expected a BatchError")
	}
	counts := map[string]int{}
	var failDetail string
	for _, ev := range tracer.Events() {
		counts[ev.Kind]++
		if ev.Kind == "exp.fail" {
			failDetail = ev.Detail
		}
	}
	if counts["exp.start"] != 2 || counts["exp.done"] != 1 || counts["exp.fail"] != 1 {
		t.Errorf("event counts = %v", counts)
	}
	if !strings.Contains(failDetail, "y") || !strings.Contains(failDetail, "nope") {
		t.Errorf("exp.fail detail = %q", failDetail)
	}
}

// TestCSVFilesMatchWriteCSV checks the in-memory artifact renderer and
// the directory writer produce identical file sets.
func TestCSVFilesMatchWriteCSV(t *testing.T) {
	rep := &Report{ID: "art", Title: "artifacts"}
	rep.AddMetric("m", "1", "2")
	rep.Tables = append(rep.Tables, Table{
		Name:   "series one",
		Header: []string{"x", "y"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	})
	files, err := rep.CSVFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("CSVFiles returned %d files, want 2", len(files))
	}
	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	onDisk := readDir(t, dir)
	if len(onDisk) != len(files) {
		t.Fatalf("disk has %d files, CSVFiles %d", len(onDisk), len(files))
	}
	for _, f := range files {
		if got, ok := onDisk[f.Name]; !ok {
			t.Errorf("WriteCSV missing %s", f.Name)
		} else if got != string(f.Data) {
			t.Errorf("%s differs between CSVFiles and WriteCSV", f.Name)
		}
	}
}

// TestRunnerErrorPropagation checks the first failing experiment's error
// is returned wrapped with its ID and that later reports are withheld.
func TestRunnerErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	ok := func(id string) Experiment {
		return Experiment{
			ID: id,
			Run: func(context.Context, Options) (*Report, error) {
				return &Report{ID: id, Title: id}, nil
			},
		}
	}
	bad := Experiment{
		ID: "bad",
		Run: func(context.Context, Options) (*Report, error) {
			return nil, sentinel
		},
	}
	exps := []Experiment{ok("a"), bad, ok("c")}

	for _, workers := range []int{1, 3} {
		var out bytes.Buffer
		r := Runner{Workers: workers, Options: Options{Quick: true}}
		err := r.Run(context.Background(), exps, &out)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got %v, want wrapped sentinel", workers, err)
		}
		if got := err.Error(); got != "core: bad: boom" {
			t.Errorf("workers=%d: error = %q, want %q", workers, got, "core: bad: boom")
		}
		if !bytes.Contains(out.Bytes(), []byte("== a —")) {
			t.Errorf("workers=%d: report before the failure was not emitted", workers)
		}
		if bytes.Contains(out.Bytes(), []byte("== c —")) {
			t.Errorf("workers=%d: report after the failure was emitted", workers)
		}
	}
}

// TestRunnerProfiles checks profile lines go to the Profiles writer, one
// per experiment, and never into the report stream.
func TestRunnerProfiles(t *testing.T) {
	exps := []Experiment{
		{ID: "x", Run: func(context.Context, Options) (*Report, error) {
			return &Report{ID: "x", Title: "x"}, nil
		}},
		{ID: "y", Run: func(context.Context, Options) (*Report, error) {
			return &Report{ID: "y", Title: "y"}, nil
		}},
	}
	var out, profs bytes.Buffer
	r := Runner{Workers: 2, Options: Options{Quick: true}, Profiles: &profs}
	if err := r.Run(context.Background(), exps, &out); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(profs.Bytes(), []byte("  profile: ")); n != 2 {
		t.Errorf("%d profile lines, want 2", n)
	}
	if bytes.Contains(out.Bytes(), []byte("profile:")) {
		t.Error("profile leaked into the report stream")
	}
}

// TestRunAllShim checks the deprecated sequential shim still renders
// every experiment the way the old RunAll did.
func TestRunAllShim(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick registry")
	}
	// The shim is exercised against synthetic experiments elsewhere;
	// here it only needs to prove the plumbing: a failing experiment
	// surfaces, and RunExperiment forwards to Run.
	e := Experiment{ID: "z", Run: func(_ context.Context, opts Options) (*Report, error) {
		return &Report{ID: "z", Title: fmt.Sprintf("seed %d", opts.Seed)}, nil
	}}
	rep, err := RunExperiment(e, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Title != "seed 5" {
		t.Errorf("Title = %q", rep.Title)
	}
}

// BenchmarkRunnerFanOut measures the engine's per-experiment overhead:
// dispatch, buffering, and in-order merge over cheap synthetic jobs on
// four workers.
func BenchmarkRunnerFanOut(b *testing.B) {
	exps := make([]Experiment, 16)
	for i := range exps {
		id := fmt.Sprintf("synth%02d", i)
		exps[i] = Experiment{ID: id, Run: func(context.Context, Options) (*Report, error) {
			rep := &Report{ID: id, Title: "synthetic"}
			rep.AddMetric("value", "1", "")
			return rep, nil
		}}
	}
	r := Runner{Workers: 4, Options: Options{Quick: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := r.Run(context.Background(), exps, &out); err != nil {
			b.Fatal(err)
		}
	}
}
