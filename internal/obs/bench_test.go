package obs

import (
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % int64(20*time.Second))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(counterName(i)).Add(int64(i))
	}
	r.Histogram("lat").Observe(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func counterName(i int) string {
	const names = "abcdefghijklmnopqrstuvwxyz"
	return "c." + string(names[i%26]) + string(names[(i/26)%26])
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity, virtualClock())
	ev := Event{Kind: "relay", From: addrPort(1), To: addrPort(2), Detail: "block"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
