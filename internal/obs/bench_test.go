package obs

import (
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % int64(20*time.Second))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(counterName(i)).Add(int64(i))
	}
	r.Histogram("lat").Observe(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func counterName(i int) string {
	const names = "abcdefghijklmnopqrstuvwxyz"
	return "c." + string(names[i%26]) + string(names[(i/26)%26])
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity, virtualClock())
	ev := Event{Kind: "relay", From: addrPort(1), To: addrPort(2), Detail: "block"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

// BenchmarkSamplerTick is the per-sample cost the scheduler pays on
// every sampling interval: one snapshot plus ring pushes over a
// registry sized like a mid-size simulation.
func BenchmarkSamplerTick(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 48; i++ {
		reg.Counter(counterName(i)).Add(int64(i))
	}
	reg.Gauge("sched.depth").Set(17)
	h := reg.Histogram("relay.delay")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * int64(time.Millisecond))
	}
	s := NewSampler(reg, DefaultSeriesCapacity)
	now := time.Unix(1585958400, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(2 * time.Minute)
		s.Tick(now)
	}
}

// BenchmarkSpanEmit is the per-hop cost of the propagation span
// instrumentation: one SpanKey derivation plus a traced emit, as the
// deliver/relay paths pay it.
func BenchmarkSpanEmit(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity, virtualClock())
	self, peer := addrPort(1), addrPort(2)
	hash := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04,
		0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c,
		0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14,
		0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{
			Kind: KindDeliverBlock, From: peer, To: self, Detail: "deadbeef01020304",
			Span:   SpanKey(self, hash),
			Parent: SpanKey(peer, hash),
		})
	}
}
