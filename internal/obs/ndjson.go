package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// NDJSONWriter streams trace events as newline-delimited JSON, one
// object per event — the -trace-out surface. It buffers internally and
// is safe for concurrent sinks (parallel replications share one file),
// so the output is a valid NDJSON stream whatever the interleaving; the
// event order across concurrent runs is wall-clock racing and therefore
// not deterministic, unlike the per-run digests.
type NDJSONWriter struct {
	mu        sync.Mutex
	bw        *bufio.Writer
	c         io.Closer
	fl        flusher
	autoFlush bool
	err       error
}

// flusher matches http.Flusher (and http.ResponseWriter) without
// importing net/http: a Flush with no results. *bufio.Writer's
// error-returning Flush deliberately does not match.
type flusher interface{ Flush() }

// eventJSON is the serialized event shape. Span identifiers are emitted
// only when present, keeping point events compact.
type eventJSON struct {
	TimeNS int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Detail string `json:"detail,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// NewNDJSONWriter wraps w. If w is also an io.Closer, Close closes it
// after flushing.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	n := &NDJSONWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		n.c = c
	}
	if f, ok := w.(flusher); ok {
		n.fl = f
	}
	return n
}

// AutoFlush switches the writer into live-streaming mode: every event
// is flushed through the internal buffer — and, when the underlying
// writer is an http.Flusher (a streaming HTTP response), through that
// too — as soon as it is written. File sinks keep the default batched
// mode; the reprod progress stream turns this on so clients see each
// event the moment it happens.
func (n *NDJSONWriter) AutoFlush(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.autoFlush = on
}

// Sink returns a tracer stream callback writing each event as one JSON
// line. Errors are sticky and reported by Close.
func (n *NDJSONWriter) Sink() func(Event) {
	return func(ev Event) {
		var from, to string
		if ev.From.IsValid() {
			from = ev.From.String()
		}
		if ev.To.IsValid() {
			to = ev.To.String()
		}
		line, err := json.Marshal(eventJSON{
			TimeNS: ev.Time.UnixNano(),
			Kind:   ev.Kind,
			From:   from,
			To:     to,
			Detail: ev.Detail,
			DurNS:  int64(ev.Dur),
			Span:   ev.Span,
			Parent: ev.Parent,
		})
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.err != nil {
			return
		}
		if err != nil {
			n.err = err
			return
		}
		if _, err := n.bw.Write(line); err != nil {
			n.err = err
			return
		}
		if err := n.bw.WriteByte('\n'); err != nil {
			n.err = err
			return
		}
		if n.autoFlush {
			if err := n.bw.Flush(); err != nil {
				n.err = err
				return
			}
			if n.fl != nil {
				n.fl.Flush()
			}
		}
	}
}

// Close flushes the buffer, closes the underlying writer when it is a
// Closer, and returns the first error encountered anywhere in the
// stream.
func (n *NDJSONWriter) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.bw.Flush(); err != nil && n.err == nil {
		n.err = err
	}
	if n.c != nil {
		if err := n.c.Close(); err != nil && n.err == nil {
			n.err = err
		}
	}
	return n.err
}
