package obs

import (
	"strings"
	"testing"
	"time"
)

// ballast defeats the optimizer so allocations inside tests are real.
var ballast [][]byte

func allocSome(n int) {
	for i := 0; i < n; i++ {
		ballast = append(ballast, make([]byte, 64<<10))
	}
	ballast = ballast[:0]
}

func TestResourceSamplerWatermarksMonotone(t *testing.T) {
	reg := NewRegistry()
	rs := NewResourceSampler(reg)
	prev := rs.Watermarks()
	for i := 0; i < 5; i++ {
		allocSome(8)
		rs.Sample()
		w := rs.Watermarks()
		if w.PeakHeapBytes < prev.PeakHeapBytes {
			t.Fatalf("peak heap regressed: %d -> %d", prev.PeakHeapBytes, w.PeakHeapBytes)
		}
		if w.PeakGoroutines < prev.PeakGoroutines {
			t.Fatalf("peak goroutines regressed: %d -> %d", prev.PeakGoroutines, w.PeakGoroutines)
		}
		if w.AllocBytes < prev.AllocBytes {
			t.Fatalf("alloc bytes regressed: %d -> %d", prev.AllocBytes, w.AllocBytes)
		}
		prev = w
	}
	if prev.PeakHeapBytes == 0 || prev.PeakGoroutines == 0 {
		t.Fatalf("watermarks not populated: %+v", prev)
	}
	if prev.AllocBytes == 0 {
		t.Fatal("expected nonzero alloc delta after allocations")
	}
}

func TestResourceSamplerLiveGauges(t *testing.T) {
	reg := NewRegistry()
	rs := NewResourceSampler(reg)
	rs.Sample()
	snap := reg.Snapshot()
	want := map[string]bool{
		"proc.heap.alloc.bytes":     false,
		"proc.heap.sys.bytes":       false,
		"proc.heap.objects":         false,
		"proc.heap.alloc.max.bytes": false,
		"proc.goroutines":           false,
		"proc.gc.num":               false,
	}
	for _, g := range snap.Gauges {
		if _, ok := want[g.Name]; ok {
			want[g.Name] = true
			if g.Value <= 0 && g.Name != "proc.gc.num" {
				t.Errorf("gauge %s not populated: %d", g.Name, g.Value)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing live gauge %s", name)
		}
	}
}

func TestResourceSamplerRunWindow(t *testing.T) {
	rs := NewResourceSampler(nil)
	stop := rs.StartRun()
	allocSome(16)
	rs.Sample()
	st := stop()
	if st.AllocBytes == 0 {
		t.Fatal("run window recorded no allocations")
	}
	if st.PeakHeapBytes == 0 || st.PeakGoroutines == 0 {
		t.Fatalf("run window peaks not populated: %+v", st)
	}
	if st.WallNS <= 0 {
		t.Fatalf("run window wall time not positive: %d", st.WallNS)
	}
}

func TestResourceSamplerOverlappingWindows(t *testing.T) {
	rs := NewResourceSampler(nil)
	stopA := rs.StartRun()
	stopB := rs.StartRun()
	allocSome(8)
	rs.Sample()
	a, b := stopA(), stopB()
	// The heap is process-wide, so both windows saw the same samples.
	if a.PeakHeapBytes == 0 || b.PeakHeapBytes == 0 {
		t.Fatalf("overlapping windows missed peaks: a=%+v b=%+v", a, b)
	}
}

func TestResourceSamplerNilSafe(t *testing.T) {
	var rs *ResourceSampler
	rs.Sample()
	stop := rs.Start(time.Millisecond)
	stop()
	end := rs.StartRun()
	if st := end(); st != (ResourceStats{}) {
		t.Fatalf("nil sampler returned non-zero stats: %+v", st)
	}
	if w := rs.Watermarks(); w != (ResourceStats{}) {
		t.Fatalf("nil sampler watermarks non-zero: %+v", w)
	}
}

func TestResourceSamplerTicker(t *testing.T) {
	rs := NewResourceSampler(nil)
	stop := rs.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for rs.Watermarks().PeakHeapBytes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestResourceStatsString(t *testing.T) {
	s := ResourceStats{
		PeakHeapBytes:   2 << 20,
		PeakGoroutines:  7,
		AllocBytes:      1 << 20,
		NumGC:           3,
		GCPauseMaxNS:    1500,
		CPUNS:           int64(20 * time.Millisecond),
		EventsProcessed: 42,
	}
	out := s.String()
	for _, want := range []string{"peak-heap=2.0MiB", "peak-goroutines=7", "gc=3", "events=42", "cpu="} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q, missing %q", out, want)
		}
	}
	// Optional fields stay out when zero.
	brief := ResourceStats{PeakHeapBytes: 1}.String()
	for _, absent := range []string{"cpu=", "events=", "gc-pause-max="} {
		if strings.Contains(brief, absent) {
			t.Errorf("String() = %q, should omit %q", brief, absent)
		}
	}
}

func TestCPUDeltaNeverNegative(t *testing.T) {
	if d := cpuDelta(1 << 62); d != 0 {
		t.Fatalf("cpuDelta with future base = %d, want 0", d)
	}
}
