package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofServer is a live profiling endpoint started by StartPprof.
// Additional handlers (the Prometheus /metrics surface) mount onto the
// same mux with Handle.
type PprofServer struct {
	// Addr is the actual listen address (useful with port 0).
	Addr string

	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// StartPprof serves the standard net/http/pprof handlers on addr
// ("127.0.0.1:6060"-style; port 0 picks a free port) and returns
// immediately. The process gains live CPU, heap, goroutine, and
// execution traces at /debug/pprof/ — the opt-in profiling hook behind
// the cmd/btcsim and cmd/btccrawl -pprof flags.
func StartPprof(addr string) (*PprofServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &PprofServer{Addr: ln.Addr().String(), mux: mux, srv: srv, ln: ln}, nil
}

// Handle mounts an additional handler on the server's mux — typically
// Handle("/metrics", PrometheusHandler(reg)). Safe before any request
// arrives at the pattern; a nil server is a no-op.
func (p *PprofServer) Handle(pattern string, h http.Handler) {
	if p == nil || p.mux == nil {
		return
	}
	p.mux.Handle(pattern, h)
}

// Close shuts the endpoint down.
func (p *PprofServer) Close() error {
	if p == nil || p.srv == nil {
		return nil
	}
	return p.srv.Close()
}
