package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// This file holds the crash-safe file commit protocol shared by the
// reprod bundle cache and the flight recorder: write to a temp file in
// the destination directory, fsync the file, rename over the final
// name, and fsync the directory so the rename itself survives a crash.
// A reader can only ever observe a complete file or no file — a kill -9
// mid-write leaves a temp-prefixed leftover that SweepTempFiles removes
// on the next open, never a torn final file.

// AtomicTempPrefix marks in-progress atomic writes. Writers create temp
// files under it; SweepTempFiles deletes leftovers after a crash.
const AtomicTempPrefix = ".tmp-"

// AtomicWriteFile commits data under dir/name with the temp + fsync +
// rename + dir-fsync protocol. The temp file lives in dir (same
// filesystem, so the rename is atomic) and is removed on any failure.
func AtomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, AtomicTempPrefix+name+"-")
	if err != nil {
		return fmt.Errorf("obs: create temp for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	// Any failure below removes the temp so crash sweep has less to do.
	fail := func(step string, err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("obs: %s %s: %w", step, name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("obs: rename %s: %w", name, err)
	}
	// fsync the directory so the rename is durable, not just atomic.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// SweepTempFiles deletes AtomicTempPrefix leftovers in dir — writes that
// died mid-flight whose final file was never renamed into place, garbage
// by construction. It returns how many were removed.
func SweepTempFiles(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("obs: sweep %s: %w", dir, err)
	}
	swept := 0
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), AtomicTempPrefix) {
			if os.Remove(filepath.Join(dir, ent.Name())) == nil {
				swept++
			}
		}
	}
	return swept, nil
}
