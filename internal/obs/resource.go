package obs

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file is the process side of the resource observatory: where the
// registry/sampler pair measures the *simulation* (deterministic, sim
// time), the ResourceSampler measures the *process running it* — heap,
// goroutines, GC pauses, CPU time. Those values are wall-clock derived
// and vary run to run, so they are routed exclusively onto the
// nondeterministic surfaces (the Runner's Profiles channel, the live
// /metrics registry, flight records, run manifests) and never into the
// deterministic report stream or CSV sidecars.

// ResourceStats is one measured window of process resource use: deltas
// (allocations, GC cycles, CPU) over the window plus high-watermarks
// (peak heap, peak goroutines) observed inside it. Fields are stable
// JSON so flight records and run manifests can embed it.
type ResourceStats struct {
	// WallNS is the window's elapsed wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// CPUNS is the process CPU time (user+system) consumed during the
	// window, in nanoseconds; zero on platforms without rusage.
	CPUNS int64 `json:"cpu_ns"`
	// AllocBytes is the total bytes allocated during the window (from
	// runtime.MemStats.TotalAlloc, so frees do not subtract).
	AllocBytes uint64 `json:"alloc_bytes"`
	// Mallocs counts heap objects allocated during the window.
	Mallocs uint64 `json:"mallocs"`
	// NumGC counts garbage-collection cycles completed in the window.
	NumGC uint32 `json:"num_gc"`
	// GCPauseMaxNS is the longest stop-the-world pause observed in the
	// window, in nanoseconds.
	GCPauseMaxNS int64 `json:"gc_pause_max_ns"`
	// PeakHeapBytes is the highest live-heap (HeapAlloc) sample seen in
	// the window. The heap is process-wide: concurrent experiments in
	// the same process share one allocator, so overlapping windows see
	// each other's mass.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// PeakGoroutines is the highest goroutine count sampled in the window.
	PeakGoroutines int `json:"peak_goroutines"`
	// EventsProcessed carries the deterministic scheduler event count the
	// window's work executed, when the caller knows it (core.
	// EventsProcessed sums it out of the report series).
	EventsProcessed uint64 `json:"events_processed,omitempty"`
}

// String renders the stats compactly for the Profiles channel.
func (s ResourceStats) String() string {
	out := fmt.Sprintf("peak-heap=%s peak-goroutines=%d alloc=%s gc=%d",
		formatBytes(s.PeakHeapBytes), s.PeakGoroutines, formatBytes(s.AllocBytes), s.NumGC)
	if s.GCPauseMaxNS > 0 {
		out += fmt.Sprintf(" gc-pause-max=%v", time.Duration(s.GCPauseMaxNS).Round(time.Microsecond))
	}
	if s.CPUNS > 0 {
		out += fmt.Sprintf(" cpu=%v", time.Duration(s.CPUNS).Round(time.Millisecond))
	}
	if s.EventsProcessed > 0 {
		out += fmt.Sprintf(" events=%d", s.EventsProcessed)
	}
	return out
}

// ResourceSampler snapshots process resource state — runtime.MemStats,
// goroutine counts, GC pause deltas — on demand or on a wall ticker,
// maintaining lifetime high-watermarks and any number of concurrent
// per-run measurement windows. When constructed over a registry it also
// publishes live proc.* gauges and a proc.gc.pause.ns histogram, giving
// /metrics scrapes the same view.
//
// The nil sampler is a no-op, so wiring can be unconditional.
type ResourceSampler struct {
	mu        sync.Mutex
	lastNumGC uint32
	peak      ResourceStats // lifetime watermarks + cumulative deltas
	base      runtime.MemStats
	baseCPU   int64
	start     time.Time
	windows   map[*resourceWindow]struct{}

	// Live registry handles (nil when no registry was supplied).
	gHeap       *Gauge
	gHeapSys    *Gauge
	gHeapObjs   *Gauge
	gHeapPeak   *Gauge
	gGoroutines *Gauge
	gGCNum      *Gauge
	hGCPause    *Histogram
}

// resourceWindow accumulates the peaks seen while a run window is open.
type resourceWindow struct {
	peakHeap       uint64
	peakGoroutines int
	gcPauseMax     int64
	begin          time.Time
	beginCPU       int64
	base           runtime.MemStats
}

// NewResourceSampler creates a sampler. reg may be nil (watermarks and
// run windows still work); when non-nil it receives the live gauges
// proc.heap.alloc.bytes, proc.heap.sys.bytes, proc.heap.objects,
// proc.heap.alloc.max.bytes, proc.goroutines, proc.gc.num, and the
// proc.gc.pause.ns histogram. The first sample is taken immediately so
// deltas have a baseline.
func NewResourceSampler(reg *Registry) *ResourceSampler {
	rs := &ResourceSampler{
		windows:     make(map[*resourceWindow]struct{}),
		start:       time.Now(),
		gHeap:       reg.Gauge("proc.heap.alloc.bytes"),
		gHeapSys:    reg.Gauge("proc.heap.sys.bytes"),
		gHeapObjs:   reg.Gauge("proc.heap.objects"),
		gHeapPeak:   reg.Gauge("proc.heap.alloc.max.bytes"),
		gGoroutines: reg.Gauge("proc.goroutines"),
		gGCNum:      reg.Gauge("proc.gc.num"),
		hGCPause:    reg.Histogram("proc.gc.pause.ns"),
	}
	runtime.ReadMemStats(&rs.base)
	rs.lastNumGC = rs.base.NumGC
	rs.baseCPU = processCPUNanos()
	rs.sampleLocked(&rs.base, runtime.NumGoroutine())
	return rs
}

// Sample takes one snapshot now: live gauges are refreshed, watermarks
// raised, GC pauses since the previous sample observed into the
// histogram, and every open run window updated. Safe for concurrent use.
func (rs *ResourceSampler) Sample() {
	if rs == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := runtime.NumGoroutine()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.sampleLocked(&ms, n)
}

// sampleLocked folds one MemStats reading into gauges, watermarks, and
// open windows. Callers hold mu (or are the constructor).
func (rs *ResourceSampler) sampleLocked(ms *runtime.MemStats, goroutines int) {
	rs.gHeap.Set(int64(ms.HeapAlloc))
	rs.gHeapSys.Set(int64(ms.HeapSys))
	rs.gHeapObjs.Set(int64(ms.HeapObjects))
	rs.gHeapPeak.SetMax(int64(ms.HeapAlloc))
	rs.gGoroutines.Set(int64(goroutines))
	rs.gGCNum.Set(int64(ms.NumGC))

	// New GC pauses since the previous sample: PauseNs is a ring of the
	// last 256 pauses indexed by (cycle+255)%256; cycles further back
	// than the ring are lost (undercounting, never double-counting).
	var pauseMax int64
	first := rs.lastNumGC
	if ms.NumGC > first+256 {
		first = ms.NumGC - 256
	}
	for c := first; c < ms.NumGC; c++ {
		p := int64(ms.PauseNs[(c+255)%256])
		rs.hGCPause.Observe(p)
		if p > pauseMax {
			pauseMax = p
		}
	}
	rs.lastNumGC = ms.NumGC

	if ms.HeapAlloc > rs.peak.PeakHeapBytes {
		rs.peak.PeakHeapBytes = ms.HeapAlloc
	}
	if goroutines > rs.peak.PeakGoroutines {
		rs.peak.PeakGoroutines = goroutines
	}
	if pauseMax > rs.peak.GCPauseMaxNS {
		rs.peak.GCPauseMaxNS = pauseMax
	}
	for w := range rs.windows {
		if ms.HeapAlloc > w.peakHeap {
			w.peakHeap = ms.HeapAlloc
		}
		if goroutines > w.peakGoroutines {
			w.peakGoroutines = goroutines
		}
		if pauseMax > w.gcPauseMax {
			w.gcPauseMax = pauseMax
		}
	}
}

// Start drives Sample from a wall-clock ticker; the returned stop
// function halts it. Resource samples are wall-time measurements by
// nature, so unlike the metrics Sampler there is no sim-clock variant.
func (rs *ResourceSampler) Start(interval time.Duration) (stop func()) {
	if rs == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rs.Sample()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// StartRun opens a per-run measurement window: the returned function
// closes it and reports the window's ResourceStats. Windows may overlap
// freely (the service measures concurrent runs); each one sees the
// process-wide peaks sampled while it was open. Both ends of the window
// take a full sample, so stats are meaningful even without a ticker.
func (rs *ResourceSampler) StartRun() func() ResourceStats {
	if rs == nil {
		return func() ResourceStats { return ResourceStats{} }
	}
	w := &resourceWindow{begin: time.Now(), beginCPU: processCPUNanos()}
	runtime.ReadMemStats(&w.base)
	n := runtime.NumGoroutine()
	rs.mu.Lock()
	rs.windows[w] = struct{}{}
	rs.sampleLocked(&w.base, n)
	rs.mu.Unlock()
	return func() ResourceStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		n := runtime.NumGoroutine()
		rs.mu.Lock()
		rs.sampleLocked(&ms, n)
		delete(rs.windows, w)
		rs.mu.Unlock()
		return ResourceStats{
			WallNS:         time.Since(w.begin).Nanoseconds(),
			CPUNS:          cpuDelta(w.beginCPU),
			AllocBytes:     ms.TotalAlloc - w.base.TotalAlloc,
			Mallocs:        ms.Mallocs - w.base.Mallocs,
			NumGC:          ms.NumGC - w.base.NumGC,
			GCPauseMaxNS:   w.gcPauseMax,
			PeakHeapBytes:  w.peakHeap,
			PeakGoroutines: w.peakGoroutines,
		}
	}
}

// Watermarks reports the sampler's lifetime view: cumulative deltas
// since construction plus the high-watermarks across every sample
// taken. It takes a fresh sample first, so the result is current.
func (rs *ResourceSampler) Watermarks() ResourceStats {
	if rs == nil {
		return ResourceStats{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := runtime.NumGoroutine()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.sampleLocked(&ms, n)
	out := rs.peak
	out.WallNS = time.Since(rs.start).Nanoseconds()
	out.CPUNS = cpuDelta(rs.baseCPU)
	out.AllocBytes = ms.TotalAlloc - rs.base.TotalAlloc
	out.Mallocs = ms.Mallocs - rs.base.Mallocs
	out.NumGC = ms.NumGC - rs.base.NumGC
	return out
}

// cpuDelta returns process CPU nanoseconds consumed since base, zero
// when rusage is unavailable (base and current both read as zero).
func cpuDelta(base int64) int64 {
	now := processCPUNanos()
	if now <= base {
		return 0
	}
	return now - base
}
