package obs

import (
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testTracer(t *testing.T, capacity, emit int) *Tracer {
	t.Helper()
	base := time.Unix(0, 0).UTC()
	i := 0
	tr := NewTracer(capacity, func() time.Time {
		i++
		return base.Add(time.Duration(i) * time.Millisecond)
	})
	from := netip.MustParseAddrPort("10.0.0.1:8333")
	to := netip.MustParseAddrPort("10.0.0.2:8333")
	for n := 0; n < emit; n++ {
		tr.Emit(Event{Kind: "relay.block", From: from, To: to, Detail: string(rune('a' + n%26))})
	}
	return tr
}

func TestFlightRecorderDumpAndRead(t *testing.T) {
	dir := t.TempDir()
	fr, err := OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTracer(t, 8, 12) // ring smaller than emitted: 4 evicted
	reg := NewRegistry()
	reg.Counter("x.count").Add(5)
	rec := CaptureFlightRecord("fig_interv", "panic", "boom: index out of range", nil, tr, reg.Snapshot(), ResourceStats{PeakHeapBytes: 123456, PeakGoroutines: 9})
	path, err := fr.Dump(rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "flightrec-fig_interv.json" {
		t.Fatalf("unexpected artifact name %s", path)
	}

	got, err := ReadFlightRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cause != "panic" || got.Panic == "" || got.Stack == "" {
		t.Fatalf("panic metadata incomplete: cause=%q panic=%q stackLen=%d", got.Cause, got.Panic, len(got.Stack))
	}
	if got.EventsTotal != 12 || got.EventsDropped != 4 {
		t.Fatalf("event accounting: total=%d dropped=%d, want 12/4", got.EventsTotal, got.EventsDropped)
	}
	if len(got.Events) != 8 {
		t.Fatalf("retained %d events, want 8", len(got.Events))
	}
	// Ring must round-trip in emit order: times strictly increase.
	for i := 1; i < len(got.Events); i++ {
		if !got.Events[i].Time.After(got.Events[i-1].Time) {
			t.Fatalf("events out of emit order at %d: %v !> %v", i, got.Events[i].Time, got.Events[i-1].Time)
		}
	}
	if got.Events[0].From.String() != "10.0.0.1:8333" {
		t.Fatalf("endpoint did not round-trip: %v", got.Events[0].From)
	}
	if got.TraceDigest != tr.Digest() {
		t.Fatalf("digest mismatch: %q vs %q", got.TraceDigest, tr.Digest())
	}
	if got.Snapshot == nil || len(got.Snapshot.Counters) == 0 || got.Snapshot.Counters[0].Value != 5 {
		t.Fatalf("snapshot did not round-trip: %+v", got.Snapshot)
	}
	if got.Resources.PeakHeapBytes != 123456 {
		t.Fatalf("resources did not round-trip: %+v", got.Resources)
	}
}

func TestFlightRecordIsValidJSON(t *testing.T) {
	dir := t.TempDir()
	fr, _ := OpenFlightRecorder(dir)
	path, err := fr.Dump(CaptureFlightRecord("k", "deadline", nil, nil, testTracer(t, 4, 2), nil, ResourceStats{}))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var any map[string]json.RawMessage
	if err := json.Unmarshal(raw, &any); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if _, ok := any["resources"]; !ok {
		t.Fatal("artifact missing resources field")
	}
	for _, absent := range []string{"panic", "stack"} {
		if _, ok := any[absent]; ok {
			t.Errorf("non-panic record should omit %q", absent)
		}
	}
}

func TestOpenFlightRecorderSweepsTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	// Simulate a dump killed mid-write: a temp file exists, no final file.
	torn := filepath.Join(dir, AtomicTempPrefix+"flightrec-dead.json-123")
	if err := os.WriteFile(torn, []byte(`{"key":"dead","trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenFlightRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("temp leftover survived reopen")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("directory not clean after sweep: %v", entries)
	}
	// Recorder still works after the sweep.
	if _, err := fr.Dump(FlightRecord{Key: "alive", Cause: "panic"}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicWriteFileOverwrite(t *testing.T) {
	dir := t.TempDir()
	if err := AtomicWriteFile(dir, "f.json", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(dir, "f.json", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "f.json"))
	if err != nil || string(got) != "two" {
		t.Fatalf("got %q, %v; want two", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestSweepTempFilesCountsOnlyTemps(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, AtomicTempPrefix+"a"), nil, 0o644)
	os.WriteFile(filepath.Join(dir, AtomicTempPrefix+"b"), nil, 0o644)
	os.WriteFile(filepath.Join(dir, "keep.json"), []byte("{}"), 0o644)
	n, err := SweepTempFiles(dir)
	if err != nil || n != 2 {
		t.Fatalf("swept %d, %v; want 2", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.json")); err != nil {
		t.Fatal("sweep removed a committed file")
	}
}

func TestFlightRecordName(t *testing.T) {
	cases := map[string]string{
		"fig_interv":       "flightrec-fig_interv.json",
		"../../etc/passwd": "flightrec-.._.._etc_passwd.json",
		"a b/c":            "flightrec-a_b_c.json",
		"":                 "flightrec-unknown.json",
	}
	for in, want := range cases {
		if got := FlightRecordName(in); got != want {
			t.Errorf("FlightRecordName(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("x", 300)
	if got := FlightRecordName(long); len(got) > 140 {
		t.Errorf("long key not truncated: %d chars", len(got))
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var fr *FlightRecorder
	if path, err := fr.Dump(FlightRecord{Key: "k"}); err != nil || path != "" {
		t.Fatalf("nil recorder: %q, %v", path, err)
	}
	if fr.Dir() != "" {
		t.Fatal("nil recorder Dir() non-empty")
	}
}
