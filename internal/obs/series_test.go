package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func testSeriesSet() *SeriesSet {
	t0 := time.Unix(1585958400, 0).UTC()
	return &SeriesSet{Series: []Series{
		{Name: "a.delta", Points: []Point{
			{T: t0, V: 0},
			{T: t0.Add(2 * time.Minute), V: 3.25},
			{T: t0.Add(4 * time.Minute), V: -1e-9},
		}},
		{Name: "b.p99", Points: []Point{
			{T: t0, V: math.Pi},
			{T: t0.Add(time.Minute), V: 1.0 / 3.0},
		}},
	}}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	set := testSeriesSet()
	enc, err := set.EncodeCSV()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ReadSeriesCSV(strings.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	re, err := dec.EncodeCSV()
	if err != nil {
		t.Fatal(err)
	}
	if re != enc {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", enc, re)
	}
	// Values must survive exactly, including irrationals and tiny
	// negatives — 'g'/-1 formatting is ParseFloat's exact inverse.
	b, ok := dec.Get("b.p99")
	if !ok || b.Points[0].V != math.Pi {
		t.Errorf("pi did not round-trip: %+v", b)
	}
	a, _ := dec.Get("a.delta")
	if a.Points[2].V != -1e-9 {
		t.Errorf("small negative did not round-trip: %v", a.Points[2].V)
	}
}

func TestReadSeriesCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":   "wrong,t_ns,value\n",
		"short row":    "series,t_ns,value\nx,1\n",
		"bad time":     "series,t_ns,value\nx,notanint,1\n",
		"bad value":    "series,t_ns,value\nx,1,notafloat\n",
		"empty name":   "series,t_ns,value\n,1,2\n",
		"empty stream": "",
	}
	for label, in := range cases {
		if _, err := ReadSeriesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted %q", label, in)
		}
	}
}

func TestSeriesSetGetAndLen(t *testing.T) {
	set := testSeriesSet()
	if set.Len() != 5 {
		t.Errorf("Len = %d, want 5", set.Len())
	}
	if _, ok := set.Get("missing"); ok {
		t.Error("Get found a missing series")
	}
	if s, ok := set.Get("a.delta"); !ok || len(s.Points) != 3 {
		t.Errorf("Get(a.delta) = %+v, %v", s, ok)
	}
	var nilSet *SeriesSet
	if nilSet.Len() != 0 {
		t.Error("nil set has nonzero Len")
	}
	if _, ok := nilSet.Get("x"); ok {
		t.Error("nil set Get succeeded")
	}
	var empty Series
	if p := empty.Last(); p != (Point{}) {
		t.Errorf("empty Last = %+v", p)
	}
	full := set.Series[0]
	if p := full.Last(); p.V != -1e-9 {
		t.Errorf("Last = %+v", p)
	}
}

// FuzzSeriesCSVRoundTrip pins the decoder against untrusted sidecar
// bytes (it must error or succeed, never panic) and, when a parse
// succeeds, pins encode∘decode as a fixpoint: re-encoding the decoded
// set and decoding again must reproduce the same bytes.
func FuzzSeriesCSVRoundTrip(f *testing.F) {
	if enc, err := testSeriesSet().EncodeCSV(); err == nil {
		f.Add([]byte(enc))
	}
	f.Add([]byte("series,t_ns,value\nx,1,2\n"))
	f.Add([]byte("series,t_ns,value\nx,1,NaN\nx,2,+Inf\n"))
	f.Add([]byte("series,t_ns,value\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := ReadSeriesCSV(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		enc, err := set.EncodeCSV()
		if err != nil {
			t.Fatalf("encode of decoded set failed: %v", err)
		}
		set2, err := ReadSeriesCSV(strings.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical form did not re-decode: %v\n%s", err, enc)
		}
		enc2, err := set2.EncodeCSV()
		if err != nil {
			t.Fatal(err)
		}
		if enc2 != enc {
			t.Fatalf("encode∘decode is not a fixpoint:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
