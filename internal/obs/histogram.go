package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default histogram bounds, in nanoseconds:
// exponential from 1 ms to ~17 min, sized for the latencies this
// simulator produces (link delays, relay queue delays, dial timeouts,
// block downloads). Values above the last bound land in the overflow
// bucket and are reported via Max.
var DurationBuckets = func() []int64 {
	var bounds []int64
	for d := time.Millisecond; d <= 1024*time.Second; d *= 2 {
		bounds = append(bounds, int64(d))
	}
	return bounds
}()

// Histogram is a fixed-bucket streaming histogram over int64 samples
// (by convention nanoseconds for latencies). Updates are lock-free
// atomics; quantiles are deterministic upper-bound estimates, so two
// runs observing the same sample sequence report identical stats. The
// nil histogram discards observations.
type Histogram struct {
	bounds []int64        // sorted upper bounds, len >= 1
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

// NewHistogram creates a histogram with the given sorted upper bounds
// (DurationBuckets when none are given).
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples (zero for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q-th sample — deterministic, and exact to one
// bucket width. Samples past the last bound are estimated by the
// observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// Stat summarizes the histogram under the given name.
func (h *Histogram) Stat(name string) HistogramStat {
	st := HistogramStat{Name: name}
	if h == nil {
		return st
	}
	st.Count = h.count.Load()
	if st.Count == 0 {
		return st
	}
	st.Sum = h.sum.Load()
	st.Min = h.min.Load()
	st.Max = h.max.Load()
	st.P50 = h.Quantile(0.50)
	st.P90 = h.Quantile(0.90)
	st.P99 = h.Quantile(0.99)
	return st
}
