package obs

import (
	"sort"
	"sync"
	"time"
)

// Sampler records registry metrics into fixed-capacity ring series at
// caller-driven instants: counters as per-tick deltas (name.delta),
// gauges as instantaneous values, and histograms as running quantile
// estimates (name.p50/.p90/.p99). Ad-hoc quantities that live outside
// the registry (a computed sync ratio, a windowed departure count) are
// appended directly with Observe.
//
// The sampler never reads a clock: every Tick and Observe takes the
// sample time from the caller. Simulations drive it from the simnet
// scheduler with virtual time, so two same-seed runs produce
// byte-identical series CSVs — the sampler half of the determinism
// golden test. Live (tcpnet/crawler) runs drive it from a wall-clock
// ticker via StartWall; those series are real measurements and make no
// determinism promise.
//
// The nil sampler discards samples, so wiring can be unconditional.
type Sampler struct {
	mu       sync.Mutex
	reg      *Registry
	capacity int
	last     map[string]int64 // previous counter values, for deltas
	rings    map[string]*seriesRing
	names    []string // sorted ring names
}

// DefaultSeriesCapacity bounds each series ring when NewSampler is given
// a non-positive capacity: at the default 2-minute tick it retains more
// than five simulated days.
const DefaultSeriesCapacity = 4096

// NewSampler creates a sampler over reg (which may be nil: only Observe
// series are recorded then). capacity bounds each series ring;
// non-positive means DefaultSeriesCapacity.
func NewSampler(reg *Registry, capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Sampler{
		reg:      reg,
		capacity: capacity,
		last:     make(map[string]int64),
		rings:    make(map[string]*seriesRing),
	}
}

// seriesRing is one fixed-capacity ring of points.
type seriesRing struct {
	buf   []Point
	start int
	n     int
}

// push appends a point, evicting the oldest when full.
func (r *seriesRing) push(p Point, capacity int) {
	if len(r.buf) < capacity {
		r.buf = append(r.buf, p)
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % len(r.buf)
}

// points returns the retained points, oldest first.
func (r *seriesRing) points() []Point {
	out := make([]Point, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// ring returns the named ring, creating it on first use. Callers hold mu.
func (s *Sampler) ringLocked(name string) *seriesRing {
	r := s.rings[name]
	if r == nil {
		r = &seriesRing{}
		s.rings[name] = r
		s.names = insertSorted(s.names, name)
	}
	return r
}

// Observe appends one point to the named series at the given time.
func (s *Sampler) Observe(now time.Time, name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ringLocked(name).push(Point{T: now, V: v}, s.capacity)
}

// Tick samples every registry metric at the given instant. Counters
// record the delta since the previous tick (the first tick records the
// delta from zero), gauges their current value, histograms their
// deterministic p50/p90/p99 estimates. Metrics registered after earlier
// ticks simply start their series late.
func (s *Sampler) Tick(now time.Time) {
	if s == nil || s.reg == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range snap.Counters {
		delta := c.Value - s.last[c.Name]
		s.last[c.Name] = c.Value
		s.ringLocked(c.Name+".delta").push(Point{T: now, V: float64(delta)}, s.capacity)
	}
	for _, g := range snap.Gauges {
		s.ringLocked(g.Name).push(Point{T: now, V: float64(g.Value)}, s.capacity)
	}
	for _, h := range snap.Histograms {
		s.ringLocked(h.Name+".p50").push(Point{T: now, V: float64(h.P50)}, s.capacity)
		s.ringLocked(h.Name+".p90").push(Point{T: now, V: float64(h.P90)}, s.capacity)
		s.ringLocked(h.Name+".p99").push(Point{T: now, V: float64(h.P99)}, s.capacity)
	}
}

// Set returns the recorded series, name-sorted, as plain copied data.
func (s *Sampler) Set() *SeriesSet {
	ss := &SeriesSet{}
	if s == nil {
		return ss
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ss.Series = make([]Series, 0, len(s.names))
	for _, name := range s.names {
		ss.Series = append(ss.Series, Series{Name: name, Points: s.rings[name].points()})
	}
	return ss
}

// StartWall drives Tick from a wall-clock ticker for live runs; the
// returned stop function halts it. Sim runs must never use this — they
// schedule Tick(net.Now()) on the virtual scheduler instead, keeping
// wall time out of the series entirely.
func (s *Sampler) StartWall(interval time.Duration) (stop func()) {
	if s == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.Tick(now)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// MergeSeriesSets concatenates several sets into one name-sorted set,
// joining same-named series by appending points in argument order. The
// result order is a pure function of the inputs, so per-job sets merged
// in registry order stay byte-identical at any worker count.
func MergeSeriesSets(sets ...*SeriesSet) *SeriesSet {
	byName := make(map[string]*Series)
	var names []string
	for _, set := range sets {
		if set == nil {
			continue
		}
		for i := range set.Series {
			in := &set.Series[i]
			s := byName[in.Name]
			if s == nil {
				s = &Series{Name: in.Name}
				byName[in.Name] = s
				names = append(names, in.Name)
			}
			s.Points = append(s.Points, in.Points...)
		}
	}
	sort.Strings(names)
	out := &SeriesSet{Series: make([]Series, 0, len(names))}
	for _, name := range names {
		out.Series = append(out.Series, *byName[name])
	}
	return out
}
