package obs

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40, 50)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v % 50)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Values 0..49 twice: p50 falls in the bucket bounded by 30
	// (cumulative through 30 covers ranks 1..62).
	if got := h.Quantile(0.5); got != 30 {
		t.Errorf("p50 = %d, want 30", got)
	}
	if got := h.Quantile(0.99); got != 50 {
		t.Errorf("p99 = %d, want 50", got)
	}
	st := h.Stat("lat")
	if st.Min != 0 || st.Max != 49 {
		t.Errorf("min/max = %d/%d, want 0/49", st.Min, st.Max)
	}
	if st.Sum == 0 || st.P50 != 30 {
		t.Errorf("stat = %+v", st)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(5)
	h.Observe(1000)
	h.Observe(2000)
	// Two of three samples exceed every bound; the top quantile reports
	// the observed maximum.
	if got := h.Quantile(1.0); got != 2000 {
		t.Errorf("p100 = %d, want 2000", got)
	}
	if got := h.Quantile(0.25); got != 10 {
		t.Errorf("p25 = %d, want 10", got)
	}
}

func TestHistogramEmptyStat(t *testing.T) {
	h := NewHistogram()
	st := h.Stat("empty")
	if st.Count != 0 || st.Min != 0 || st.Max != 0 || st.P50 != 0 {
		t.Errorf("empty stat = %+v", st)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

func TestHistogramDefaultBucketsCoverSimLatencies(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(45 * time.Millisecond) // link latency
	h.ObserveDuration(5 * time.Second)       // dial timeout
	h.ObserveDuration(17 * time.Second)      // paper's max relay delay
	st := h.Stat("d")
	if st.Count != 3 {
		t.Fatalf("count = %d", st.Count)
	}
	// The median sample is 5 s; the estimate reports its power-of-two
	// bucket bound, so it must land within [5s, 8.192s].
	if st.P50 < int64(5*time.Second) || st.P50 > int64(8192*time.Millisecond) {
		t.Errorf("p50 = %v", time.Duration(st.P50))
	}
	// Nothing falls in the overflow bucket: max bound covers 17 s.
	if st.Max != int64(17*time.Second) {
		t.Errorf("max = %v", time.Duration(st.Max))
	}
}
