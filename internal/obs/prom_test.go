package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"node.dial.attempt": "node_dial_attempt",
		"already_legal":     "already_legal",
		"with:colon":        "with:colon",
		"9starts.digit":     "_starts_digit",
		"dash-π":            "dash__", // the dash and the rune each become one '_'
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("crawl.dials").Add(42)
	reg.Gauge("sched.depth").Set(-3)
	h := reg.Histogram("relay.delay")
	for i := int64(1); i <= 10; i++ {
		h.Observe(i * int64(time.Millisecond))
	}

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE crawl_dials counter\ncrawl_dials 42\n",
		"# TYPE sched_depth gauge\nsched_depth -3\n",
		"# TYPE relay_delay summary\n",
		`relay_delay{quantile="0.5"} `,
		`relay_delay{quantile="0.99"} `,
		"relay_delay_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := WritePrometheus(&b, nil); err != nil {
		t.Errorf("nil snapshot: %v", err)
	}
}

func TestPrometheusHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Inc()
	rec := httptest.NewRecorder()
	PrometheusHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits 1\n") {
		t.Errorf("body = %q", rec.Body.String())
	}
	// A nil registry serves an empty, valid response.
	rec = httptest.NewRecorder()
	PrometheusHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil registry: code %d body %q", rec.Code, rec.Body.String())
	}
}
