package obs

import (
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

func addrPort(b byte) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, b}), 8333)
}

// virtualClock is a deterministic test clock advancing 1 ms per call.
func virtualClock() func() time.Time {
	t := time.Unix(1585958400, 0).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestTracerRecordsAndStamps(t *testing.T) {
	tr := NewTracer(8, virtualClock())
	tr.Emit(Event{Kind: "drop", From: addrPort(1), To: addrPort(2), Detail: "ping"})
	tr.Emit(Event{Kind: "spike", Time: time.Unix(99, 0).UTC()})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Time.IsZero() {
		t.Error("Emit did not stamp the clock time")
	}
	if !evs[1].Time.Equal(time.Unix(99, 0).UTC()) {
		t.Error("Emit overwrote an explicit time")
	}
	if s := evs[0].String(); !strings.Contains(s, "drop") || !strings.Contains(s, "ping") {
		t.Errorf("event rendering: %q", s)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4, virtualClock())
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: "e", Detail: fmt.Sprint(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprint(6 + i); ev.Detail != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first order)", i, ev.Detail, want)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
}

func TestTracerDigestDeterministicAndEvictionFree(t *testing.T) {
	run := func(capacity int) string {
		tr := NewTracer(capacity, virtualClock())
		for i := 0; i < 50; i++ {
			tr.Emit(Event{Kind: "k", From: addrPort(byte(i)), Detail: fmt.Sprint(i)})
		}
		return tr.Digest()
	}
	if run(100) != run(100) {
		t.Error("same sequence produced different digests")
	}
	// Digest covers evicted events too: capacity must not matter.
	if run(100) != run(4) {
		t.Error("ring capacity changed the digest")
	}
	// Order matters.
	a := NewTracer(10, virtualClock())
	b := NewTracer(10, virtualClock())
	a.Emit(Event{Kind: "x"})
	a.Emit(Event{Kind: "y"})
	b.Emit(Event{Kind: "y"})
	b.Emit(Event{Kind: "x"})
	if a.Digest() == b.Digest() {
		t.Error("digest ignored event order")
	}
}

func TestSpanMeasuresVirtualTime(t *testing.T) {
	tr := NewTracer(8, virtualClock())
	sp := tr.Span("dial", addrPort(1), addrPort(2))
	// Clock advances 1 ms per call: Span took one tick, End takes another.
	sp.End("ok")
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("span emitted %d events", len(evs))
	}
	ev := evs[0]
	if ev.Kind != "dial" || ev.Detail != "ok" {
		t.Errorf("span event = %+v", ev)
	}
	if ev.Dur != time.Millisecond {
		t.Errorf("span dur = %v, want 1ms", ev.Dur)
	}
	if !strings.Contains(ev.String(), "dur=") {
		t.Errorf("span rendering lacks duration: %q", ev.String())
	}
}

func TestTracerEventsCopy(t *testing.T) {
	tr := NewTracer(4, virtualClock())
	tr.Emit(Event{Kind: "a"})
	evs := tr.Events()
	evs[0].Kind = "mutated"
	if got := tr.Events()[0].Kind; got != "a" {
		t.Errorf("Events returned aliased storage: %q", got)
	}
	if !reflect.DeepEqual(tr.Events(), tr.Events()) {
		t.Error("repeated Events calls differ")
	}
}
