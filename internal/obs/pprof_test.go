package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestStartPprofServesIndex(t *testing.T) {
	srv, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartPprof: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("index does not list profiles: %.120s", body)
	}
	resp, err = http.Get("http://" + srv.Addr + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatalf("GET heap: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("heap status = %d", resp.StatusCode)
	}
}

func TestStartPprofBadAddr(t *testing.T) {
	if _, err := StartPprof("256.0.0.1:http"); err == nil {
		t.Error("expected listen error")
	}
	var nilSrv *PprofServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
