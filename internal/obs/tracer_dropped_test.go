package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTracerDroppedConcurrentWrap checks the overload accounting stays
// exact while the ring wraps under concurrent publishers: every emitted
// event is either retained or counted as dropped, never both, never
// lost. This is the counter the reprod service's overload dashboards
// trust, so it must not drift under contention.
func TestTracerDroppedConcurrentWrap(t *testing.T) {
	const (
		capacity   = 64
		publishers = 8
		perPub     = 5000
	)
	tr := NewTracer(capacity, func() time.Time { return time.Unix(0, 0) })

	var wg sync.WaitGroup
	wg.Add(publishers)
	for p := 0; p < publishers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				tr.Emit(Event{Kind: "load", Detail: fmt.Sprintf("p%d-%d", p, i)})
			}
		}(p)
	}
	wg.Wait()

	const total = publishers * perPub
	if got := tr.Total(); got != total {
		t.Errorf("Total = %d, want %d", got, total)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Errorf("Dropped = %d, want %d (total %d - capacity %d)",
			got, total-capacity, total, capacity)
	}
	if got := len(tr.Events()); got != capacity {
		t.Errorf("retained %d events, want %d", got, capacity)
	}

	// The published gauges must mirror the counters exactly.
	reg := NewRegistry()
	tr.Publish(reg)
	if got := reg.Gauge("obs.trace.total").Value(); got != total {
		t.Errorf("obs.trace.total = %d, want %d", got, total)
	}
	if got := reg.Gauge("obs.trace.dropped").Value(); got != total-capacity {
		t.Errorf("obs.trace.dropped = %d, want %d", got, total-capacity)
	}
}

// TestTracerDroppedSingleWrapBoundary pins the wrap boundary: a ring of
// capacity C with exactly C events drops nothing; the C+1st event drops
// exactly one.
func TestTracerDroppedSingleWrapBoundary(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity, func() time.Time { return time.Unix(0, 0) })
	for i := 0; i < capacity; i++ {
		tr.Emit(Event{Kind: "k"})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d before wrap, want 0", got)
	}
	tr.Emit(Event{Kind: "k"})
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d after first wrap, want 1", got)
	}
	if got := tr.Total(); got != capacity+1 {
		t.Fatalf("Total = %d, want %d", got, capacity+1)
	}
}
