package obs

import (
	"testing"
)

func TestTracerStreamsSeeEveryEvent(t *testing.T) {
	tr := NewTracer(2, virtualClock())
	var seen []Event
	tr.AddStream(func(ev Event) { seen = append(seen, ev) })
	tr.AddStream(nil) // ignored
	var nilTr *Tracer
	nilTr.AddStream(func(Event) {}) // no-op

	for i := 0; i < 7; i++ {
		tr.Emit(Event{Kind: "k"})
	}
	if len(seen) != 7 {
		t.Fatalf("stream saw %d events, want 7 (pre-eviction delivery)", len(seen))
	}
	if seen[0].Time.IsZero() {
		t.Error("stream received unstamped event times")
	}
	if tr.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5", tr.Dropped())
	}
}

func TestTracerPublish(t *testing.T) {
	tr := NewTracer(2, virtualClock())
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: "k"})
	}
	reg := NewRegistry()
	tr.Publish(reg)
	snap := reg.Snapshot()
	got := map[string]int64{}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	if got["obs.trace.total"] != 5 || got["obs.trace.dropped"] != 3 {
		t.Errorf("published gauges = %v, want total 5 dropped 3", got)
	}
	// Nil receiver and nil registry are no-ops.
	var nilTr *Tracer
	nilTr.Publish(reg)
	tr.Publish(nil)
}

func TestSpanChildHierarchy(t *testing.T) {
	tr := NewTracer(8, virtualClock())
	root := tr.Span("download", addrPort(1), addrPort(2))
	child := root.Child("chunk", addrPort(1), addrPort(2))
	child.End("done")
	root.End("ok")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Parent != root.ID() {
		t.Errorf("child parent = %d, want root %d", evs[0].Parent, root.ID())
	}
	if evs[1].Span != root.ID() || evs[1].Parent != 0 {
		t.Errorf("root event = %+v", evs[1])
	}
	var nilSpan *Span
	if nilSpan.Child("x", addrPort(1), addrPort(2)) != nil {
		t.Error("nil span child is not nil")
	}
	if nilSpan.ID() != 0 {
		t.Error("nil span has nonzero ID")
	}
	nilSpan.End("noop")
}
