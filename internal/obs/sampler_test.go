package obs

import (
	"testing"
	"time"
)

// sampleAt is a fixed virtual instant generator: t0 + n*step.
func sampleAt(n int) time.Time {
	return time.Unix(1585958400, 0).UTC().Add(time.Duration(n) * 2 * time.Minute)
}

func TestSamplerCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dial.attempt")
	s := NewSampler(reg, 0)

	c.Add(3)
	s.Tick(sampleAt(0))
	c.Add(5)
	s.Tick(sampleAt(1))
	s.Tick(sampleAt(2)) // no change: delta 0

	set := s.Set()
	sr, ok := set.Get("dial.attempt.delta")
	if !ok {
		t.Fatal("counter delta series missing")
	}
	want := []float64{3, 5, 0}
	if len(sr.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(sr.Points), len(want))
	}
	for i, p := range sr.Points {
		if p.V != want[i] {
			t.Errorf("delta[%d] = %v, want %v", i, p.V, want[i])
		}
		if !p.T.Equal(sampleAt(i)) {
			t.Errorf("time[%d] = %v, want %v", i, p.T, sampleAt(i))
		}
	}
}

func TestSamplerGaugeAndHistogram(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("sched.depth")
	h := reg.Histogram("relay.delay")
	s := NewSampler(reg, 0)

	g.Set(7)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * int64(time.Millisecond))
	}
	s.Tick(sampleAt(0))
	g.Set(2)
	s.Tick(sampleAt(1))

	set := s.Set()
	if sr, ok := set.Get("sched.depth"); !ok || sr.Points[0].V != 7 || sr.Points[1].V != 2 {
		t.Errorf("gauge series wrong: %+v", sr)
	}
	for _, name := range []string{"relay.delay.p50", "relay.delay.p90", "relay.delay.p99"} {
		sr, ok := set.Get(name)
		if !ok || len(sr.Points) != 2 {
			t.Fatalf("histogram series %s missing or short", name)
		}
		if sr.Points[0].V <= 0 {
			t.Errorf("%s sampled %v, want > 0", name, sr.Points[0].V)
		}
	}
	p50, _ := set.Get("relay.delay.p50")
	p99, _ := set.Get("relay.delay.p99")
	if p50.Points[0].V > p99.Points[0].V {
		t.Errorf("p50 %v above p99 %v", p50.Points[0].V, p99.Points[0].V)
	}
}

// TestSamplerDeterministic pins the sampler half of the determinism
// story: identically-driven registries sampled at identical virtual
// instants encode to byte-identical CSV.
func TestSamplerDeterministic(t *testing.T) {
	run := func() string {
		reg := NewRegistry()
		c := reg.Counter("a")
		g := reg.Gauge("b")
		h := reg.Histogram("c")
		s := NewSampler(reg, 0)
		for i := 0; i < 20; i++ {
			c.Add(int64(i))
			g.Set(int64(i * i))
			h.Observe(int64(i+1) * int64(time.Millisecond))
			s.Tick(sampleAt(i))
			s.Observe(sampleAt(i), "adhoc.ratio", float64(i)/7)
		}
		csv, err := s.Set().EncodeCSV()
		if err != nil {
			t.Fatal(err)
		}
		return csv
	}
	a, b := run(), run()
	if a == "" || a != b {
		t.Fatalf("same drive produced different CSVs:\n%s\nvs\n%s", a, b)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	s := NewSampler(reg, 4)
	for i := 0; i < 10; i++ {
		g.Set(int64(i))
		s.Tick(sampleAt(i))
	}
	sr, ok := s.Set().Get("depth")
	if !ok || len(sr.Points) != 4 {
		t.Fatalf("retained %d points, want 4", len(sr.Points))
	}
	for i, p := range sr.Points {
		if want := float64(6 + i); p.V != want {
			t.Errorf("ring[%d] = %v, want %v (oldest-first)", i, p.V, want)
		}
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.Tick(sampleAt(0))
	s.Observe(sampleAt(0), "x", 1)
	if set := s.Set(); set.Len() != 0 {
		t.Errorf("nil sampler recorded %d points", set.Len())
	}
	stop := s.StartWall(time.Second)
	stop()
	stop() // idempotent

	// A sampler without a registry records Observe series only.
	s2 := NewSampler(nil, 0)
	s2.Tick(sampleAt(0))
	s2.Observe(sampleAt(0), "only", 42)
	if set := s2.Set(); set.Len() != 1 {
		t.Errorf("registry-less sampler recorded %d points, want 1", set.Len())
	}
}

func TestSamplerSetNameSorted(t *testing.T) {
	s := NewSampler(nil, 0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		s.Observe(sampleAt(0), name, 1)
	}
	set := s.Set()
	for i := 1; i < len(set.Series); i++ {
		if set.Series[i-1].Name >= set.Series[i].Name {
			t.Fatalf("series not name-sorted: %q before %q",
				set.Series[i-1].Name, set.Series[i].Name)
		}
	}
}

func TestMergeSeriesSets(t *testing.T) {
	a := &SeriesSet{Series: []Series{
		{Name: "x", Points: []Point{{T: sampleAt(0), V: 1}}},
		{Name: "z", Points: []Point{{T: sampleAt(0), V: 9}}},
	}}
	b := &SeriesSet{Series: []Series{
		{Name: "x", Points: []Point{{T: sampleAt(1), V: 2}}},
		{Name: "a", Points: []Point{{T: sampleAt(0), V: 5}}},
	}}
	m := MergeSeriesSets(a, nil, b)
	if len(m.Series) != 3 {
		t.Fatalf("merged series = %d, want 3", len(m.Series))
	}
	if m.Series[0].Name != "a" || m.Series[1].Name != "x" || m.Series[2].Name != "z" {
		t.Fatalf("merged order: %q %q %q", m.Series[0].Name, m.Series[1].Name, m.Series[2].Name)
	}
	x, _ := m.Get("x")
	if len(x.Points) != 2 || x.Points[0].V != 1 || x.Points[1].V != 2 {
		t.Errorf("same-name series not joined in argument order: %+v", x.Points)
	}
}
