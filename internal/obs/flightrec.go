package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// The flight recorder is the crash side of the resource observatory: when
// a run dies by panic or deadline, the in-memory evidence — the tracer
// ring, the metrics snapshot, the resource high-watermarks — would vanish
// with the process. Dump commits it to flightrec-<key>.json with the same
// temp+fsync+rename discipline as the bundle cache, so a reader only ever
// sees a complete record or none, even across a kill -9 mid-dump.

// FlightRecord is everything worth keeping from a run that died. Events
// hold the tracer ring oldest-first (the last-N window before death);
// EventsTotal and EventsDropped say how much history the ring evicted.
type FlightRecord struct {
	// Key identifies the run (a cache key, an experiment ID, …); it also
	// names the artifact file.
	Key string `json:"key"`
	// Time is the wall-clock moment the record was captured.
	Time time.Time `json:"time"`
	// Cause classifies the death: "panic", "deadline", or a caller label.
	Cause string `json:"cause"`
	// Panic is the rendered panic value, empty for non-panic causes.
	Panic string `json:"panic,omitempty"`
	// Stack is the goroutine stack at capture, when one was available.
	Stack string `json:"stack,omitempty"`
	// EventsTotal and EventsDropped are the tracer's lifetime counters:
	// total ever emitted and how many the ring evicted before capture.
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`
	// TraceDigest is the tracer's chained digest over all emitted events.
	TraceDigest string `json:"trace_digest,omitempty"`
	// Events is the retained tracer ring, oldest first.
	Events []Event `json:"events,omitempty"`
	// Snapshot is the metrics registry state at capture.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Resources holds the run's resource accounting (peak heap, CPU,
	// alloc deltas) as measured by the ResourceSampler.
	Resources ResourceStats `json:"resources"`
}

// CaptureFlightRecord assembles a record from the live pieces. Any of
// tracer/snap may be nil; panicValue nil means a non-panic cause; stack
// nil captures the current goroutine's stack for panic causes.
func CaptureFlightRecord(key, cause string, panicValue any, stack []byte, tr *Tracer, snap *Snapshot, res ResourceStats) FlightRecord {
	rec := FlightRecord{
		Key:       key,
		Time:      time.Now().UTC(),
		Cause:     cause,
		Resources: res,
		Snapshot:  snap,
	}
	if panicValue != nil {
		rec.Panic = fmt.Sprint(panicValue)
		if stack == nil {
			buf := make([]byte, 64<<10)
			stack = buf[:runtime.Stack(buf, false)]
		}
	}
	rec.Stack = string(stack)
	if tr != nil {
		rec.Events = tr.Events()
		rec.EventsTotal = tr.Total()
		rec.EventsDropped = tr.Dropped()
		rec.TraceDigest = tr.Digest()
	}
	return rec
}

// FlightRecorder writes FlightRecords into a directory. The nil recorder
// discards dumps, so crash paths call it unconditionally.
type FlightRecorder struct {
	dir string
}

// OpenFlightRecorder prepares dir for flight records, creating it if
// needed and sweeping temp leftovers from dumps that died mid-write.
func OpenFlightRecorder(dir string) (*FlightRecorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder dir: %w", err)
	}
	if _, err := SweepTempFiles(dir); err != nil {
		return nil, err
	}
	return &FlightRecorder{dir: dir}, nil
}

// Dir returns the recorder's directory ("" for nil).
func (fr *FlightRecorder) Dir() string {
	if fr == nil {
		return ""
	}
	return fr.dir
}

// Dump commits rec as flightrec-<key>.json and returns the artifact
// path. A zero Time is stamped with the current wall clock. The write is
// atomic and durable; a crash mid-dump leaves only a swept-on-reopen
// temp file, never a torn record.
func (fr *FlightRecorder) Dump(rec FlightRecord) (string, error) {
	if fr == nil {
		return "", nil
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: encode flight record %s: %w", rec.Key, err)
	}
	name := FlightRecordName(rec.Key)
	if err := AtomicWriteFile(fr.dir, name, data); err != nil {
		return "", err
	}
	return filepath.Join(fr.dir, name), nil
}

// FlightRecordName maps a run key to its artifact file name, replacing
// anything path-hostile so arbitrary keys (experiment IDs, cache hashes)
// stay confined to one flat directory.
func FlightRecordName(key string) string {
	const maxKey = 120
	b := make([]byte, 0, len(key))
	for i := 0; i < len(key) && i < maxKey; i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		b = append(b, "unknown"...)
	}
	return "flightrec-" + string(b) + ".json"
}

// ReadFlightRecord loads one artifact back.
func ReadFlightRecord(path string) (*FlightRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read flight record: %w", err)
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("obs: decode flight record %s: %w", filepath.Base(path), err)
	}
	return &rec, nil
}
