// Package obs is the process-wide observability layer: a typed metrics
// registry (atomic counters, gauges, and streaming histograms), a
// low-overhead ring-buffered event tracer with spans, and profiling
// helpers (pprof endpoints, per-experiment wall/alloc capture).
//
// The paper's root-cause method is fundamentally measurement: it
// attributes the 2020 synchronization drop to churn and relay latency
// only because it can observe dial failures, ADDR composition,
// round-robin relay delay, and departure rates (§III–§IV). This package
// gives the reproduction one uniform surface for the same longitudinal
// instrumentation — every experiment consumes registry snapshots instead
// of private bookkeeping, and every later performance PR has a baseline
// to beat.
//
// Determinism: metric values and trace digests are pure functions of the
// instrumented computation. Under the simnet virtual clock a seeded run
// produces a byte-identical Snapshot.String() and Tracer.Digest(); the
// analysis determinism tests pin this. All handle methods are nil-safe
// (a nil *Counter/*Gauge/*Histogram/*Tracer is a no-op), so hot paths
// instrument unconditionally and pay one predictable branch when
// observability is off.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil counter
// discards updates, so callers need no enable/disable branches.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The nil gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is greater — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (zero for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. Handles are created once
// (get-or-create) and then read and written lock-free through atomics;
// the name index is kept sorted at registration time, so Snapshot walks
// a pre-sorted list instead of sorting on every call — the allocation
// and sort cost that made the since-removed stats.Counters type
// unsuitable for hot paths.
//
// A Registry is safe for concurrent use. Experiments that must produce
// byte-identical snapshots across same-seed runs use one private
// Registry per run rather than a process global, so unrelated work never
// bleeds into the comparison.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// Sorted name indexes, maintained on insert.
	counterNames   []string
	gaugeNames     []string
	histogramNames []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// insertSorted places name into the sorted index.
func insertSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
	return names
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.counterNames = insertSorted(r.counterNames, name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeNames = insertSorted(r.gaugeNames, name)
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (DurationBuckets when bounds is empty).
// A nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
		r.histogramNames = insertSorted(r.histogramNames, name)
	}
	return h
}

// NamedValue is one name/value pair of a snapshot.
type NamedValue struct {
	Name  string
	Value int64
}

// HistogramStat is one histogram's summary in a snapshot. Quantiles are
// deterministic bucket-bound estimates (see Histogram.Quantile).
type HistogramStat struct {
	Name          string
	Count         int64
	Sum           int64
	Min, Max      int64
	P50, P90, P99 int64
}

// Snapshot is a consistent, name-sorted view of a registry. It is plain
// data: safe to retain, compare, and render after the run ends.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []HistogramStat
}

// Snapshot captures every metric, sorted by name within each kind. No
// sorting happens here — the indexes are maintained at registration —
// and values are read through atomics, so concurrent writers are never
// blocked. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s.Counters = make([]NamedValue, len(r.counterNames))
	for i, name := range r.counterNames {
		s.Counters[i] = NamedValue{Name: name, Value: r.counters[name].Value()}
	}
	s.Gauges = make([]NamedValue, len(r.gaugeNames))
	for i, name := range r.gaugeNames {
		s.Gauges[i] = NamedValue{Name: name, Value: r.gauges[name].Value()}
	}
	s.Histograms = make([]HistogramStat, len(r.histogramNames))
	for i, name := range r.histogramNames {
		s.Histograms[i] = r.histograms[name].Stat(name)
	}
	return s
}
