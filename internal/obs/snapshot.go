package obs

import (
	"fmt"
	"strings"
)

// Counter returns the named counter value from the snapshot (zero when
// absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, nv := range s.Counters {
		if nv.Name == name {
			return nv.Value
		}
	}
	return 0
}

// Gauge returns the named gauge value from the snapshot (zero when
// absent).
func (s *Snapshot) Gauge(name string) int64 {
	for _, nv := range s.Gauges {
		if nv.Name == name {
			return nv.Value
		}
	}
	return 0
}

// Histogram returns the named histogram stat and whether it exists.
func (s *Snapshot) Histogram(name string) (HistogramStat, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramStat{}, false
}

// String renders the snapshot deterministically, one metric per line,
// sorted by kind then name. Two same-seed experiment runs must produce
// byte-identical output — the property the determinism golden tests
// compare.
func (s *Snapshot) String() string {
	var b strings.Builder
	for _, nv := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", nv.Name, nv.Value)
	}
	for _, nv := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %d\n", nv.Name, nv.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d min=%d max=%d p50=%d p90=%d p99=%d\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P90, h.P99)
	}
	return b.String()
}

// Rows flattens the snapshot into (kind, name, value) rows for CSV
// sidecars; histograms expand into one row per summary statistic.
func (s *Snapshot) Rows() [][]string {
	var rows [][]string
	for _, nv := range s.Counters {
		rows = append(rows, []string{"counter", nv.Name, fmt.Sprint(nv.Value)})
	}
	for _, nv := range s.Gauges {
		rows = append(rows, []string{"gauge", nv.Name, fmt.Sprint(nv.Value)})
	}
	for _, h := range s.Histograms {
		for _, stat := range []struct {
			suffix string
			value  int64
		}{
			{"count", h.Count}, {"sum", h.Sum}, {"min", h.Min},
			{"max", h.Max}, {"p50", h.P50}, {"p90", h.P90}, {"p99", h.P99},
		} {
			rows = append(rows, []string{
				"histogram", h.Name + "." + stat.suffix, fmt.Sprint(stat.value),
			})
		}
	}
	return rows
}
