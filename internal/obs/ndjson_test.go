package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNDJSONWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	sink := w.Sink()
	a, b := addrPort(1), addrPort(2)
	sink(Event{Time: time.Unix(5, 0).UTC(), Kind: KindRelayBlock,
		From: a, To: b, Detail: "abcd", Dur: time.Second, Span: 7, Parent: 3})
	sink(Event{Time: time.Unix(6, 0).UTC(), Kind: "drop"}) // point event, zero endpoints
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["kind"] != KindRelayBlock || first["from"] != a.String() ||
		first["detail"] != "abcd" || first["span"] != float64(7) {
		t.Errorf("line 0 = %v", first)
	}
	if first["t_ns"] != float64(5*time.Second) {
		t.Errorf("t_ns = %v", first["t_ns"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	// Zero-valued optional fields are omitted to keep point events compact.
	for _, key := range []string{"from", "to", "dur_ns", "span", "parent", "detail"} {
		if _, ok := second[key]; ok {
			t.Errorf("point event serialized zero field %q: %v", key, second)
		}
	}
}

// errWriter fails after n bytes and records whether Close was called.
type errWriter struct {
	n      int
	closed bool
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n -= len(p); e.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func (e *errWriter) Close() error {
	e.closed = true
	return nil
}

func TestNDJSONWriterStickyErrorAndClose(t *testing.T) {
	ew := &errWriter{n: 10}
	w := NewNDJSONWriter(ew)
	sink := w.Sink()
	// Enough events to overflow the bufio buffer and hit the error.
	big := strings.Repeat("x", bufio.NewWriter(nil).Size())
	sink(Event{Kind: "a", Detail: big})
	sink(Event{Kind: "b", Detail: big})
	err := w.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close error = %v, want disk full", err)
	}
	if !ew.closed {
		t.Error("Close did not close the underlying writer")
	}
}

// TestNDJSONAsTracerStream pins the -trace-out wiring: a sink attached
// with AddStream records every emitted event as one JSON line.
func TestNDJSONAsTracerStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	tr := NewTracer(2, virtualClock()) // smaller than the emit count
	tr.AddStream(w.Sink())
	for i := 0; i < 9; i++ {
		tr.Emit(Event{Kind: "k", From: addrPort(byte(i + 1))})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 9 {
		t.Errorf("trace file has %d lines, want 9 (ring eviction must not drop streamed events)", got)
	}
}
