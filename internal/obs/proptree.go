package obs

import (
	"net/netip"
	"sort"
	"time"
)

// This file reconstructs object propagation from the flat trace-event
// stream. Nodes emit two event families per relayed object (block or
// transaction):
//
//   - deliver.block / deliver.tx — the object was accepted at a node.
//     Span is the node's delivery span (SpanKey(node, hash)), Parent the
//     sender's delivery span (zero at the origin), From the sender, To
//     the accepting node.
//   - relay.block / relay.tx — an announcement of the object left a node
//     for one peer. Parent is the local delivery span, Dur the paper's
//     receive-to-relay delay for that connection.
//
// Because the identifiers are SpanKey-derived, parent/child edges line up
// across hops without any state shared between nodes, and the tree is a
// pure function of the trace — the replacement for the per-experiment
// relay bookkeeping that used to live in internal/analysis.

// Trace event kinds for the propagation span families.
const (
	KindDeliverBlock = "deliver.block"
	KindDeliverTx    = "deliver.tx"
	KindRelayBlock   = "relay.block"
	KindRelayTx      = "relay.tx"
)

// Delivery is one node's receipt of one object.
type Delivery struct {
	// Node is the accepting endpoint.
	Node netip.AddrPort
	// From is the endpoint the object arrived from (the node itself at
	// the origin).
	From netip.AddrPort
	// Time is the acceptance (first-seen) time.
	Time time.Time
	// Span and Parent are the delivery span identifiers.
	Span, Parent uint64
	// Object labels the delivered object (hash prefix).
	Object string
	// HopLatency is the delivery-to-delivery latency from the parent
	// node (zero at the origin or when the parent's delivery was not
	// observed).
	HopLatency time.Duration
}

// RelayStat aggregates one node's relay activity for one object — the
// unit behind the paper's Figures 10/11.
type RelayStat struct {
	// Node is the relaying endpoint.
	Node netip.AddrPort
	// Span is the node's delivery span for the object.
	Span uint64
	// LastDelay is the receive-to-last-connection delay: the maximum
	// per-connection relay delay the node recorded for the object.
	LastDelay time.Duration
	// Fanout is the number of connections relayed to.
	Fanout int
}

// ObjectStat summarizes one object's spread through the network.
type ObjectStat struct {
	// Object labels the object (hash prefix from the trace detail).
	Object string
	// Origin is the first node that held the object.
	Origin netip.AddrPort
	// FirstSeen is the origin delivery time.
	FirstSeen time.Time
	// Nodes is how many nodes the object reached.
	Nodes int
	// TimeToLastNode is the origin-to-final-delivery latency — the
	// network-wide propagation span.
	TimeToLastNode time.Duration
	// MaxHopLatency is the slowest observed single hop.
	MaxHopLatency time.Duration
}

// PropagationTree reconstructs per-object propagation trees from
// deliver.*/relay.* trace events. Feed it from a tracer stream
// (tracer.AddStream(tree.Feed)) so ring eviction cannot lose hops; it
// is not itself locked, relying on the tracer's emission lock for
// serialization. All derived views are deterministically ordered.
type PropagationTree struct {
	deliveries map[uint64]*Delivery // delivery span → first delivery
	relays     map[uint64]*relayAgg // delivery span → relay aggregate
}

// relayAgg accumulates relay events under one delivery span.
type relayAgg struct {
	node   netip.AddrPort
	kind   string
	last   time.Duration
	fanout int
}

// NewPropagationTree creates an empty reconstructor.
func NewPropagationTree() *PropagationTree {
	return &PropagationTree{
		deliveries: make(map[uint64]*Delivery),
		relays:     make(map[uint64]*relayAgg),
	}
}

// Feed consumes one trace event, ignoring kinds outside the propagation
// families. Safe to attach directly as a tracer stream.
func (pt *PropagationTree) Feed(ev Event) {
	switch ev.Kind {
	case KindDeliverBlock, KindDeliverTx:
		if ev.Span == 0 {
			return
		}
		if _, ok := pt.deliveries[ev.Span]; ok {
			return // duplicate delivery (re-announcement); keep the first
		}
		pt.deliveries[ev.Span] = &Delivery{
			Node:   ev.To,
			From:   ev.From,
			Time:   ev.Time,
			Span:   ev.Span,
			Parent: ev.Parent,
			Object: ev.Detail,
		}
	case KindRelayBlock, KindRelayTx:
		if ev.Parent == 0 {
			return
		}
		agg := pt.relays[ev.Parent]
		if agg == nil {
			agg = &relayAgg{node: ev.From, kind: ev.Kind}
			pt.relays[ev.Parent] = agg
		}
		if ev.Dur > agg.last {
			agg.last = ev.Dur
		}
		agg.fanout++
	}
}

// RelayStats returns the per-(node, object) relay aggregates for one
// relay kind (KindRelayBlock or KindRelayTx), sorted by last delay, then
// node, then fanout — the deterministic order the figure pipelines
// consume. A relay whose delivery predates measurement still appears:
// the aggregate is keyed by the span identifier alone.
func (pt *PropagationTree) RelayStats(kind string) []RelayStat {
	out := make([]RelayStat, 0, len(pt.relays))
	for span, agg := range pt.relays {
		if agg.kind != kind {
			continue
		}
		out = append(out, RelayStat{
			Node: agg.node, Span: span, LastDelay: agg.last, Fanout: agg.fanout,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastDelay != out[j].LastDelay {
			return out[i].LastDelay < out[j].LastDelay
		}
		if c := compareAddrPort(out[i].Node, out[j].Node); c != 0 {
			return c < 0
		}
		return out[i].Fanout < out[j].Fanout
	})
	return out
}

// Deliveries returns every observed delivery with hop latencies
// resolved against parent deliveries, sorted by time, then node.
func (pt *PropagationTree) Deliveries() []Delivery {
	out := make([]Delivery, 0, len(pt.deliveries))
	for _, d := range pt.deliveries {
		dd := *d
		if parent, ok := pt.deliveries[d.Parent]; ok && d.Parent != 0 {
			dd.HopLatency = d.Time.Sub(parent.Time)
		}
		out = append(out, dd)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return compareAddrPort(out[i].Node, out[j].Node) < 0
	})
	return out
}

// Objects summarizes propagation per object: origin, reach, and
// time-to-last-node, sorted by first-seen time then object label.
func (pt *PropagationTree) Objects() []ObjectStat {
	byObject := make(map[string]*ObjectStat)
	for _, d := range pt.Deliveries() { // time-sorted: first hit is the origin
		st := byObject[d.Object]
		if st == nil {
			st = &ObjectStat{
				Object:    d.Object,
				Origin:    d.Node,
				FirstSeen: d.Time,
			}
			byObject[d.Object] = st
		}
		st.Nodes++
		if ttl := d.Time.Sub(st.FirstSeen); ttl > st.TimeToLastNode {
			st.TimeToLastNode = ttl
		}
		if d.HopLatency > st.MaxHopLatency {
			st.MaxHopLatency = d.HopLatency
		}
	}
	out := make([]ObjectStat, 0, len(byObject))
	for _, st := range byObject {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// compareAddrPort orders endpoints by address then port.
func compareAddrPort(a, b netip.AddrPort) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Port() < b.Port():
		return -1
	case a.Port() > b.Port():
		return 1
	}
	return 0
}
