//go:build unix

package obs

import "syscall"

// processCPUNanos returns cumulative process CPU time (user + system)
// in nanoseconds via getrusage, or 0 when the syscall fails.
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
