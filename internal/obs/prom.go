package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// This file renders registry snapshots in the Prometheus text exposition
// format, giving live runs (btcsim, btccrawl) a real scrape surface on
// the same server that already serves pprof. Deterministic experiments
// keep using Snapshot/SeriesSet sidecars; the /metrics endpoint is the
// live view of the same registry.

// PrometheusName maps a registry metric name onto the Prometheus
// identifier charset: dots and any other illegal runes become
// underscores (node.dial.attempt → node_dial_attempt).
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the text exposition format:
// counters and gauges as single samples, histograms as summaries with
// deterministic quantile estimates plus _sum, _count, _min, and _max.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		name := PrometheusName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := PrometheusName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := PrometheusName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			value int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", name, q.label, q.value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n%s_min %d\n%s_max %d\n",
			name, h.Sum, name, h.Count, name, h.Min, name, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves live snapshots of reg in the text exposition
// format — mount it at /metrics (see PprofServer.Handle). A nil registry
// serves empty (but valid) responses.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
}
