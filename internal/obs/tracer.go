package obs

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sync"
	"time"
)

// Event is one structured trace record. The same type serves fault
// injections, node protocol transitions, and span completions; Kind
// discriminates, Detail carries free-form context, and Dur is non-zero
// for span events.
type Event struct {
	// Time is the (virtual) time of the event.
	Time time.Time
	// Kind labels the event: drop, dup, spike, dial-refuse, partition,
	// heal, crash, restart, dial, handshake, relay, block-download, ….
	Kind string
	// From and To are the endpoints, when applicable.
	From, To netip.AddrPort
	// Detail carries the message command or extra context.
	Detail string
	// Dur is the span duration for span-completion events (zero for
	// point events).
	Dur time.Duration
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s %v->%v %s",
		e.Time.Format("15:04:05.000"), e.Kind, e.From, e.To, e.Detail)
	if e.Dur != 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur)
	}
	return s
}

// Tracer is a low-overhead structured event recorder: a fixed-capacity
// ring buffer retaining the most recent events, plus a running FNV-64a
// digest over every event ever emitted (eviction does not change the
// digest). Under the simnet virtual clock the scheduler invokes all
// instrumented code in a deterministic order, so a seeded run always
// produces the identical event sequence and digest — the property the
// determinism golden tests compare.
//
// The nil tracer discards events, so hot paths emit unconditionally.
// Methods are mutex-guarded for the tcpnet (real socket) backends;
// under simnet the lock is uncontended.
type Tracer struct {
	mu    sync.Mutex
	clock func() time.Time
	ring  []Event
	start int // index of the oldest retained event
	n     int // retained events
	total uint64
	hash  uint64 // running FNV-64a
}

// DefaultTraceCapacity bounds the retained trace when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 20000

// NewTracer creates a tracer retaining up to capacity events. clock
// supplies event times for Emit calls with a zero Time and span
// durations; nil defaults to time.Now (simulations pass the virtual
// clock).
func NewTracer(capacity int, clock func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	const offset64 = 14695981039346656037
	return &Tracer{
		clock: clock,
		ring:  make([]Event, 0, capacity),
		hash:  offset64,
	}
}

// Emit records one event, stamping Time from the clock when zero.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Time.IsZero() {
		ev.Time = t.clock()
	}
	t.total++
	t.mixLocked(ev)
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		t.n++
		return
	}
	// Ring full: overwrite the oldest.
	t.ring[t.start] = ev
	t.start = (t.start + 1) % len(t.ring)
}

// mixLocked folds ev into the running digest.
func (t *Tracer) mixLocked(ev Event) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%v|%v|%s|%d",
		ev.Time.UnixNano(), ev.Kind, ev.From, ev.To, ev.Detail, ev.Dur)
	// Chain the per-event hash into the running digest so order matters.
	t.hash = (t.hash ^ h.Sum64()) * 1099511628211
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// Total returns the number of events ever emitted (including evicted
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}

// Digest returns a hex digest over every event ever emitted, in order.
// Same-seed deterministic runs produce identical digests; the ring
// capacity does not affect it.
func (t *Tracer) Digest() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("%016x", t.hash)
}

// Span is an in-progress timed operation. End emits a completion event
// whose Dur is the elapsed (possibly virtual) time since Span was
// created. The nil span is a no-op.
type Span struct {
	tr    *Tracer
	ev    Event
	begin time.Time
}

// Span starts a timed operation of the given kind between from and to.
func (t *Tracer) Span(kind string, from, to netip.AddrPort) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:    t,
		ev:    Event{Kind: kind, From: from, To: to},
		begin: t.clock(),
	}
}

// End completes the span, recording detail and the elapsed duration.
func (s *Span) End(detail string) {
	if s == nil {
		return
	}
	now := s.tr.clock()
	s.ev.Time = now
	s.ev.Detail = detail
	s.ev.Dur = now.Sub(s.begin)
	s.tr.Emit(s.ev)
}
