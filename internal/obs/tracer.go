package obs

import (
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// Event is one structured trace record. The same type serves fault
// injections, node protocol transitions, and span completions; Kind
// discriminates, Detail carries free-form context, and Dur is non-zero
// for span events. Span and Parent carry hierarchical span identifiers:
// Span is this event's own span when it opens or closes one, Parent is
// the enclosing span (zero when the event is a root or a plain point
// event). Propagation instrumentation derives both deterministically
// with SpanKey, so same-seed runs produce identical identifier streams.
type Event struct {
	// Time is the (virtual) time of the event.
	Time time.Time
	// Kind labels the event: drop, dup, spike, dial-refuse, partition,
	// heal, crash, restart, dial, handshake, relay.block, relay.tx,
	// deliver.block, deliver.tx, block-download, ….
	Kind string
	// From and To are the endpoints, when applicable.
	From, To netip.AddrPort
	// Detail carries the message command or extra context.
	Detail string
	// Dur is the span duration for span-completion events (zero for
	// point events).
	Dur time.Duration
	// Span identifies the span this event opens or completes (zero for
	// plain point events).
	Span uint64
	// Parent identifies the enclosing span (zero at the root).
	Parent uint64
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s %v->%v %s",
		e.Time.Format("15:04:05.000"), e.Kind, e.From, e.To, e.Detail)
	if e.Dur != 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur)
	}
	if e.Span != 0 {
		s += fmt.Sprintf(" span=%x", e.Span)
	}
	if e.Parent != 0 {
		s += fmt.Sprintf(" parent=%x", e.Parent)
	}
	return s
}

// FNV-64a parameters, shared by the digest and SpanKey.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 folds an integer into an FNV-64a state byte by byte.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// fnvString folds a string into an FNV-64a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvAddr folds an address/port into an FNV-64a state.
func fnvAddr(h uint64, a netip.AddrPort) uint64 {
	b := a.Addr().As16()
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return fnvUint64(h, uint64(a.Port()))
}

// SpanKey derives a deterministic span identifier from an endpoint and an
// object key (typically a block or transaction hash). Instrumented code
// that cannot carry span identifiers across the wire uses SpanKey on both
// sides of a hop: the receiver's delivery span for object k is
// SpanKey(receiver, k), and its parent is SpanKey(sender, k) — the
// sender's own delivery span of the same object. The identifier is a pure
// function of its inputs, so same-seed runs agree without shared state.
func SpanKey(a netip.AddrPort, key []byte) uint64 {
	h := uint64(fnvOffset64)
	h = fnvAddr(h, a)
	for _, c := range key {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	if h == 0 {
		h = fnvPrime64 // zero is the "no span" sentinel
	}
	return h
}

// Tracer is a low-overhead structured event recorder: a fixed-capacity
// ring buffer retaining the most recent events, plus a running FNV-64a
// digest over every event ever emitted (eviction does not change the
// digest). Under the simnet virtual clock the scheduler invokes all
// instrumented code in a deterministic order, so a seeded run always
// produces the identical event sequence and digest — the property the
// determinism golden tests compare.
//
// Streaming consumers registered with AddStream see every event before it
// can be evicted, which is how unbounded analyses (PropagationTree,
// NDJSON trace files) coexist with the bounded ring.
//
// The nil tracer discards events, so hot paths emit unconditionally.
// Methods are mutex-guarded for the tcpnet (real socket) backends;
// under simnet the lock is uncontended.
type Tracer struct {
	mu       sync.Mutex
	clock    func() time.Time
	ring     []Event
	start    int // index of the oldest retained event
	n        int // retained events
	total    uint64
	dropped  uint64 // events evicted from the ring
	hash     uint64 // running FNV-64a
	nextSpan uint64 // sequential span IDs for Span()
	sinks    []func(Event)
}

// DefaultTraceCapacity bounds the retained trace when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 20000

// NewTracer creates a tracer retaining up to capacity events. clock
// supplies event times for Emit calls with a zero Time and span
// durations; nil defaults to time.Now (simulations pass the virtual
// clock).
func NewTracer(capacity int, clock func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{
		clock: clock,
		ring:  make([]Event, 0, capacity),
		hash:  fnvOffset64,
	}
}

// AddStream registers a synchronous consumer invoked for every event at
// emission time, before ring eviction can lose it. The callback runs
// under the tracer lock — it must be fast and must not call back into
// the tracer. Streams cannot be removed; attach them for the tracer's
// lifetime (one experiment run).
func (t *Tracer) AddStream(fn func(Event)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sinks = append(t.sinks, fn)
}

// Emit records one event, stamping Time from the clock when zero.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Time.IsZero() {
		ev.Time = t.clock()
	}
	t.total++
	t.mixLocked(ev)
	for _, fn := range t.sinks {
		fn(ev)
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		t.n++
		return
	}
	// Ring full: overwrite the oldest.
	t.ring[t.start] = ev
	t.start = (t.start + 1) % len(t.ring)
	t.dropped++
}

// mixLocked folds ev into the running digest. Hand-rolled FNV-64a over
// the raw field bytes: the tracer is on the relay hot path of multi-hour
// simulations, so this must not allocate or format.
func (t *Tracer) mixLocked(ev Event) {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(ev.Time.UnixNano()))
	h = fnvString(h, ev.Kind)
	h = fnvAddr(h, ev.From)
	h = fnvAddr(h, ev.To)
	h = fnvString(h, ev.Detail)
	h = fnvUint64(h, uint64(ev.Dur))
	h = fnvUint64(h, ev.Span)
	h = fnvUint64(h, ev.Parent)
	// Chain the per-event hash into the running digest so order matters.
	t.hash = (t.hash ^ h) * fnvPrime64
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// Total returns the number of events ever emitted (including evicted
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring has evicted. Two runs can
// share a digest yet differ here only if their ring capacities differ,
// so snapshots that publish it (see Publish) let trace comparisons
// distinguish "identical" from "identically truncated".
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Publish surfaces the tracer's lifetime counters as registry gauges
// (obs.trace.total, obs.trace.dropped), so metric snapshots record not
// just what the ring retained but how much it evicted.
func (t *Tracer) Publish(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	total, dropped := t.total, t.dropped
	t.mu.Unlock()
	reg.Gauge("obs.trace.total").Set(int64(total))
	reg.Gauge("obs.trace.dropped").Set(int64(dropped))
}

// Digest returns a hex digest over every event ever emitted, in order.
// Same-seed deterministic runs produce identical digests; the ring
// capacity does not affect it.
func (t *Tracer) Digest() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("%016x", t.hash)
}

// Span is an in-progress timed operation. End emits a completion event
// whose Dur is the elapsed (possibly virtual) time since Span was
// created. The nil span is a no-op.
type Span struct {
	tr     *Tracer
	ev     Event
	begin  time.Time
	id     uint64
	parent uint64
}

// Span starts a timed root operation of the given kind between from and
// to, with a fresh sequential span identifier.
func (t *Tracer) Span(kind string, from, to netip.AddrPort) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	t.mu.Unlock()
	return &Span{
		tr:    t,
		ev:    Event{Kind: kind, From: from, To: to},
		begin: t.clock(),
		id:    id,
	}
}

// Child starts a sub-span nested under s. The child's completion event
// carries s's identifier as Parent, so reconstruction (for example
// PropagationTree) can rebuild the hierarchy from the flat event stream.
// The nil span returns a nil (no-op) child.
func (s *Span) Child(kind string, from, to netip.AddrPort) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.Span(kind, from, to)
	c.parent = s.id
	return c
}

// ID returns the span's identifier (zero for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End completes the span, recording detail and the elapsed duration.
func (s *Span) End(detail string) {
	if s == nil {
		return
	}
	now := s.tr.clock()
	s.ev.Time = now
	s.ev.Detail = detail
	s.ev.Dur = now.Sub(s.begin)
	s.ev.Span = s.id
	s.ev.Parent = s.parent
	s.tr.Emit(s.ev)
}
