package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Point is one time-series sample. Times are (virtual) timestamps, so
// under the simnet clock two same-seed runs produce identical points.
type Point struct {
	// T is the sample time.
	T time.Time
	// V is the sampled value.
	V float64
}

// Series is one named sequence of points, oldest first. It is plain
// data: safe to retain, compare, and render after the run ends.
type Series struct {
	// Name identifies the series (metric name plus a .delta/.p50/...
	// suffix for sampled registry metrics).
	Name string
	// Points holds the samples, oldest first.
	Points []Point
}

// Last returns the most recent point (zero when empty).
func (s *Series) Last() Point {
	if s == nil || len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// SeriesSet is a name-sorted collection of series — the time-resolved
// counterpart of a Snapshot.
type SeriesSet struct {
	// Series holds the member series sorted by name.
	Series []Series
}

// Get returns the named series and whether it exists.
func (ss *SeriesSet) Get(name string) (*Series, bool) {
	if ss == nil {
		return nil, false
	}
	i := sort.Search(len(ss.Series), func(i int) bool { return ss.Series[i].Name >= name })
	if i < len(ss.Series) && ss.Series[i].Name == name {
		return &ss.Series[i], true
	}
	return nil, false
}

// Len returns the total point count across all series.
func (ss *SeriesSet) Len() int {
	if ss == nil {
		return 0
	}
	n := 0
	for i := range ss.Series {
		n += len(ss.Series[i].Points)
	}
	return n
}

// seriesCSVHeader is the sidecar header row. t_ns is the absolute sample
// time in Unix nanoseconds: the simnet epoch is deterministic, so the
// column round-trips byte-identically across same-seed runs.
var seriesCSVHeader = []string{"series", "t_ns", "value"}

// WriteCSV encodes the set in the *_timeseries.csv sidecar format: one
// row per point, series sorted by name, points oldest first. Values are
// rendered with strconv 'g'/-1 formatting, which ParseFloat inverts
// exactly — the encoder and decoder round-trip bit-for-bit, a property
// FuzzSeriesCSVRoundTrip pins.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(seriesCSVHeader); err != nil {
		return fmt.Errorf("obs: series header: %w", err)
	}
	if ss != nil {
		for i := range ss.Series {
			s := &ss.Series[i]
			for _, p := range s.Points {
				row := []string{
					s.Name,
					strconv.FormatInt(p.T.UnixNano(), 10),
					strconv.FormatFloat(p.V, 'g', -1, 64),
				}
				if err := cw.Write(row); err != nil {
					return fmt.Errorf("obs: series %s: %w", s.Name, err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// EncodeCSV renders the sidecar into a string (for comparisons and
// report embedding).
func (ss *SeriesSet) EncodeCSV() (string, error) {
	var b strings.Builder
	if err := ss.WriteCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// maxSeriesCSVPoints bounds what the decoder will accept, so untrusted
// sidecar bytes cannot balloon memory.
const maxSeriesCSVPoints = 1 << 22

// ReadSeriesCSV decodes a *_timeseries.csv sidecar. The input is
// untrusted: rows must match the header shape, timestamps must be valid
// integers, and values valid floats, or an error is returned. Series are
// returned name-sorted regardless of input order; points keep their
// input order within each series.
func ReadSeriesCSV(r io.Reader) (*SeriesSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(seriesCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("obs: series csv header: %w", err)
	}
	for i, want := range seriesCSVHeader {
		if header[i] != want {
			return nil, fmt.Errorf("obs: series csv: bad header column %d: %q", i, header[i])
		}
	}
	byName := make(map[string]*Series)
	var order []string
	points := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("obs: series csv: %w", err)
		}
		name := row[0]
		if name == "" {
			return nil, fmt.Errorf("obs: series csv: empty series name")
		}
		ns, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: series csv: bad t_ns %q: %w", row[1], err)
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: series csv: bad value %q: %w", row[2], err)
		}
		if points++; points > maxSeriesCSVPoints {
			return nil, fmt.Errorf("obs: series csv: more than %d points", maxSeriesCSVPoints)
		}
		s := byName[name]
		if s == nil {
			s = &Series{Name: name}
			byName[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, Point{T: time.Unix(0, ns).UTC(), V: v})
	}
	sort.Strings(order)
	ss := &SeriesSet{Series: make([]Series, 0, len(order))}
	for _, name := range order {
		ss.Series = append(ss.Series, *byName[name])
	}
	return ss, nil
}
