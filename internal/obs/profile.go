package obs

import (
	"fmt"
	"runtime"
	"time"
)

// Profile is one measured execution: wall time and allocator activity.
// It reports on the run that produced a result, so it lives beside the
// deterministic metrics, never inside them — wall time varies run to
// run and must not pollute snapshot comparisons.
type Profile struct {
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// AllocBytes is the total bytes allocated during the run (from
	// runtime.MemStats.TotalAlloc, so frees do not subtract).
	AllocBytes uint64
	// NumGC is the number of garbage-collection cycles completed.
	NumGC uint32
}

// String renders the profile compactly ("wall=1.2s alloc=34MB gc=3").
func (p Profile) String() string {
	return fmt.Sprintf("wall=%v alloc=%s gc=%d",
		p.Wall.Round(time.Millisecond), formatBytes(p.AllocBytes), p.NumGC)
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// StartProfile begins a wall/alloc measurement; the returned function
// stops it and reports. Usage:
//
//	stop := obs.StartProfile()
//	… run the experiment …
//	profile := stop()
func StartProfile() func() Profile {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	return func() Profile {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		return Profile{
			Wall:       time.Since(start),
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			NumGC:      after.NumGC - before.NumGC,
		}
	}
}
