package obs

import (
	"net/netip"
	"testing"
	"time"
)

// feedChain emits a three-node propagation A → B → C of one object into
// the tree: deliveries at each node with SpanKey-derived identifiers,
// plus per-connection relay events under each delivery span.
func feedChain(pt *PropagationTree, hash []byte, t0 time.Time) (a, b, c netip.AddrPort) {
	a, b, c = addrPort(1), addrPort(2), addrPort(3)
	// Origin: A mines/holds the object (no parent).
	pt.Feed(Event{Time: t0, Kind: KindDeliverBlock, From: a, To: a,
		Detail: "obj1", Span: SpanKey(a, hash)})
	// A relays to B and C, 100ms and 300ms after receipt.
	pt.Feed(Event{Time: t0.Add(100 * time.Millisecond), Kind: KindRelayBlock,
		From: a, To: b, Detail: "obj1", Dur: 100 * time.Millisecond, Parent: SpanKey(a, hash)})
	pt.Feed(Event{Time: t0.Add(300 * time.Millisecond), Kind: KindRelayBlock,
		From: a, To: c, Detail: "obj1", Dur: 300 * time.Millisecond, Parent: SpanKey(a, hash)})
	// B accepts 150ms after the origin, then relays once.
	pt.Feed(Event{Time: t0.Add(150 * time.Millisecond), Kind: KindDeliverBlock,
		From: a, To: b, Detail: "obj1", Span: SpanKey(b, hash), Parent: SpanKey(a, hash)})
	pt.Feed(Event{Time: t0.Add(200 * time.Millisecond), Kind: KindRelayBlock,
		From: b, To: c, Detail: "obj1", Dur: 50 * time.Millisecond, Parent: SpanKey(b, hash)})
	// C accepts last, 400ms after the origin.
	pt.Feed(Event{Time: t0.Add(400 * time.Millisecond), Kind: KindDeliverBlock,
		From: a, To: c, Detail: "obj1", Span: SpanKey(c, hash), Parent: SpanKey(a, hash)})
	return a, b, c
}

func TestPropagationTreeMultiHop(t *testing.T) {
	pt := NewPropagationTree()
	t0 := time.Unix(1585958400, 0).UTC()
	hash := []byte{0xab, 0xcd}
	a, b, c := feedChain(pt, hash, t0)

	ds := pt.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(ds))
	}
	if ds[0].Node != a || ds[1].Node != b || ds[2].Node != c {
		t.Fatalf("delivery order: %v %v %v", ds[0].Node, ds[1].Node, ds[2].Node)
	}
	if ds[0].HopLatency != 0 {
		t.Errorf("origin hop latency = %v, want 0", ds[0].HopLatency)
	}
	if ds[1].HopLatency != 150*time.Millisecond {
		t.Errorf("B hop latency = %v, want 150ms", ds[1].HopLatency)
	}
	if ds[1].Parent != SpanKey(a, hash) {
		t.Error("B's parent is not A's delivery span")
	}

	stats := pt.RelayStats(KindRelayBlock)
	if len(stats) != 2 {
		t.Fatalf("relay stats = %d, want 2 (A and B)", len(stats))
	}
	// Sorted by last delay: B (50ms, fanout 1) before A (300ms, fanout 2).
	if stats[0].Node != b || stats[0].LastDelay != 50*time.Millisecond || stats[0].Fanout != 1 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[1].Node != a || stats[1].LastDelay != 300*time.Millisecond || stats[1].Fanout != 2 {
		t.Errorf("stats[1] = %+v", stats[1])
	}
	if got := pt.RelayStats(KindRelayTx); len(got) != 0 {
		t.Errorf("tx relay stats leaked from block kind: %+v", got)
	}

	objs := pt.Objects()
	if len(objs) != 1 {
		t.Fatalf("objects = %d, want 1", len(objs))
	}
	o := objs[0]
	if o.Origin != a || o.Nodes != 3 {
		t.Errorf("object = %+v", o)
	}
	if o.TimeToLastNode != 400*time.Millisecond {
		t.Errorf("time to last node = %v, want 400ms", o.TimeToLastNode)
	}
	if o.MaxHopLatency != 400*time.Millisecond {
		t.Errorf("max hop latency = %v, want 400ms (A→C)", o.MaxHopLatency)
	}
}

func TestPropagationTreeDuplicatesAndPointEvents(t *testing.T) {
	pt := NewPropagationTree()
	t0 := time.Unix(0, 0).UTC()
	hash := []byte{1}
	a := addrPort(1)
	pt.Feed(Event{Time: t0, Kind: KindDeliverTx, To: a, Span: SpanKey(a, hash)})
	// Re-announcement: the first delivery wins.
	pt.Feed(Event{Time: t0.Add(time.Hour), Kind: KindDeliverTx, To: addrPort(9), Span: SpanKey(a, hash)})
	// Non-propagation kinds and zero identifiers are ignored.
	pt.Feed(Event{Time: t0, Kind: "drop", Span: 77})
	pt.Feed(Event{Time: t0, Kind: KindDeliverTx, To: a}) // Span 0
	pt.Feed(Event{Time: t0, Kind: KindRelayTx, From: a}) // Parent 0

	ds := pt.Deliveries()
	if len(ds) != 1 || ds[0].Node != a || !ds[0].Time.Equal(t0) {
		t.Fatalf("deliveries = %+v", ds)
	}
	if len(pt.RelayStats(KindRelayTx)) != 0 {
		t.Error("parentless relay was aggregated")
	}
}

// TestPropagationTreeFromTracerStream pins the intended wiring: the tree
// fed as a tracer stream sees every event even when the ring evicts.
func TestPropagationTreeFromTracerStream(t *testing.T) {
	tr := NewTracer(2, virtualClock()) // tiny ring: everything evicts
	pt := NewPropagationTree()
	tr.AddStream(pt.Feed)
	hash := []byte{9}
	for i := 0; i < 20; i++ {
		n := addrPort(byte(i + 1))
		tr.Emit(Event{Kind: KindDeliverBlock, To: n, Detail: "o", Span: SpanKey(n, hash)})
	}
	if got := len(pt.Deliveries()); got != 20 {
		t.Fatalf("stream saw %d deliveries, want 20 (eviction must not lose hops)", got)
	}
}

func TestSpanKeyProperties(t *testing.T) {
	a, b := addrPort(1), addrPort(2)
	k1, k2 := []byte{1, 2, 3}, []byte{1, 2, 4}
	if SpanKey(a, k1) == 0 || SpanKey(a, nil) == 0 {
		t.Error("SpanKey produced the zero sentinel")
	}
	if SpanKey(a, k1) != SpanKey(a, k1) {
		t.Error("SpanKey is not a pure function")
	}
	if SpanKey(a, k1) == SpanKey(b, k1) {
		t.Error("different endpoints collided")
	}
	if SpanKey(a, k1) == SpanKey(a, k2) {
		t.Error("different keys collided")
	}
}
