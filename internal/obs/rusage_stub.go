//go:build !unix

package obs

// processCPUNanos reports 0 on platforms without getrusage; CPU fields
// in ResourceStats read as zero there.
func processCPUNanos() int64 { return 0 }
