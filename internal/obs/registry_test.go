package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dials")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("dials") != c {
		t.Error("get-or-create returned a different handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("SetMax = %d, want 11", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter retained a value")
	}
	g := r.Gauge("y")
	g.Set(9)
	g.SetMax(10)
	if g.Value() != 0 {
		t.Error("nil gauge retained a value")
	}
	h := r.Histogram("z")
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram retained samples")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Emit(Event{Kind: "x"})
	tr.Span("s", addrPort(1), addrPort(2)).End("done")
	if tr.Total() != 0 || tr.Digest() != "" || tr.Events() != nil {
		t.Error("nil tracer retained events")
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	// Register out of order; the snapshot must come back sorted without
	// sorting at snapshot time.
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		r.Counter(name).Inc()
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	r.Histogram("h2").Observe(10)
	r.Histogram("h1").Observe(20)
	snap := r.Snapshot()
	wantCounters := []string{"alpha", "beta", "mid", "zeta"}
	for i, nv := range snap.Counters {
		if nv.Name != wantCounters[i] {
			t.Fatalf("counter order %v, want %v", snap.Counters, wantCounters)
		}
	}
	if snap.Gauges[0].Name != "g1" || snap.Gauges[1].Name != "g2" {
		t.Errorf("gauge order: %v", snap.Gauges)
	}
	if snap.Histograms[0].Name != "h1" || snap.Histograms[1].Name != "h2" {
		t.Errorf("histogram order: %+v", snap.Histograms)
	}
	if snap.Counter("mid") != 1 || snap.Gauge("g2") != 2 {
		t.Error("snapshot lookup helpers wrong")
	}
	if _, ok := snap.Histogram("h1"); !ok {
		t.Error("snapshot histogram lookup missed")
	}
	// Two snapshots of an unchanged registry render identically.
	if a, b := r.Snapshot().String(), r.Snapshot().String(); a != b {
		t.Errorf("unstable rendering:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentAddSnapshot is the -race coverage replacing the removed
// stats.Counters type requires: many goroutines adding while others snapshot
// and create new metrics. Correctness: no race, and the final snapshot
// sees every update.
func TestConcurrentAddSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", g)).Inc()
				r.Gauge("depth").Set(int64(i))
				r.Histogram("lat").Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	// Concurrent snapshot reader.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			_ = snap.String()
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	if got := snap.Counter("shared"); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := snap.Counter(fmt.Sprintf("own.%d", g)); got != perG {
			t.Errorf("own.%d = %d, want %d", g, got, perG)
		}
	}
	if h, _ := snap.Histogram("lat"); h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
}

func TestProfileCapture(t *testing.T) {
	stop := StartProfile()
	// Allocate something measurable.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	p := stop()
	_ = sink
	if p.AllocBytes < 64*16<<10/2 {
		t.Errorf("profile missed allocations: %+v", p)
	}
	if p.String() == "" {
		t.Error("empty profile rendering")
	}
	for _, c := range []struct {
		b    uint64
		want string
	}{{512, "512B"}, {4 << 10, "4.0KiB"}, {3 << 20, "3.0MiB"}, {2 << 30, "2.0GiB"}} {
		if got := formatBytes(c.b); got != c.want {
			t.Errorf("formatBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}
