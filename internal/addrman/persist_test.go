package addrman

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	var addrs []netip.AddrPort
	for i := 0; i < 300; i++ {
		a := ap(byte(i>>8)+1, byte(i), 7, 1, 8333)
		am.Add([]wire.NetAddress{{Addr: a, Services: wire.SFNodeNetwork,
			Timestamp: clk.now}}, src)
		addrs = append(addrs, a)
	}
	for i := 0; i < 50; i++ {
		am.Good(addrs[i])
	}
	for i := 50; i < 80; i++ {
		am.Attempt(addrs[i])
	}

	var buf bytes.Buffer
	if err := am.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(Config{
		Key:  42,
		Now:  clk.Now,
		Rand: rand.New(rand.NewSource(7)),
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Size() != am.Size() {
		t.Errorf("size = %d, want %d", loaded.Size(), am.Size())
	}
	numNewA, numTriedA := am.Counts()
	numNewB, numTriedB := loaded.Counts()
	if numNewA != numNewB || numTriedA != numTriedB {
		t.Errorf("counts = %d/%d, want %d/%d", numNewB, numTriedB, numNewA, numTriedA)
	}
	// Tried membership preserved.
	for i := 0; i < 50; i++ {
		if !loaded.InTried(addrs[i]) {
			t.Fatalf("%v lost its tried status on reload", addrs[i])
		}
	}
	// Every reloaded address is selectable and known.
	for i := 0; i < 20; i++ {
		na, ok := loaded.Select(false)
		if !ok {
			t.Fatal("Select failed after reload")
		}
		if !loaded.Have(na.Addr) {
			t.Fatal("Select returned unknown address after reload")
		}
	}
}

func TestSaveLoadPreservesEvictionState(t *testing.T) {
	// An address saved with old timestamps must be evictable after load.
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	old := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{{Addr: old, Timestamp: clk.now}}, src)

	var buf bytes.Buffer
	if err := am.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Reload 31 days later: the address is beyond the horizon.
	clk.advance(31 * 24 * time.Hour)
	loaded, err := Load(Config{Key: 42, Now: clk.Now,
		Rand: rand.New(rand.NewSource(7))}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.IsTerrible(old) {
		t.Error("stale reloaded address should be terrible")
	}
	if removed := loaded.Evict(); removed != 1 {
		t.Errorf("Evict removed %d, want 1", removed)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad-magic": "NOPE\x01\x00\x00\x00\x00\x00",
		"truncated": "ADRM\x01\x00\xff\x00\x00\x00",
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Load(Config{Key: 1}, strings.NewReader(raw))
			if err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}

func TestLoadRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("ADRM")
	buf.Write([]byte{1, 0})                   // version
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // count ~4B
	if _, err := Load(Config{Key: 1}, &buf); err == nil {
		t.Error("hostile count accepted")
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	var buf bytes.Buffer
	if err := am.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(Config{Key: 42, Now: clk.Now}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 {
		t.Errorf("size = %d, want 0", loaded.Size())
	}
}
