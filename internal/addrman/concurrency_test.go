package addrman

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestConcurrentAccess hammers the manager from several goroutines; run
// with -race to validate the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	am := New(Config{Key: 9, Now: func() time.Time {
		return time.Unix(1586000000, 0)
	}})
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				addr := netip.AddrPortFrom(
					netip.AddrFrom4([4]byte{byte(w + 1), byte(i >> 8), byte(i), 1}), 8333)
				am.Add([]wire.NetAddress{{
					Addr: addr, Timestamp: time.Unix(1586000000, 0),
				}}, src)
				switch i % 5 {
				case 0:
					am.Good(addr)
				case 1:
					am.Attempt(addr)
				case 2:
					am.Select(false)
				case 3:
					am.GetAddr()
				case 4:
					am.Counts()
				}
			}
		}()
	}
	wg.Wait()
	if am.Size() == 0 {
		t.Fatal("manager empty after concurrent inserts")
	}
	numNew, numTried := am.Counts()
	if numNew+numTried != am.Size() {
		t.Errorf("counts %d+%d != size %d", numNew, numTried, am.Size())
	}
}
