package addrman

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

// Property-based tests over the address manager's core invariants.

// TestSelectAlwaysReturnsKnownProperty: whatever mix of operations ran,
// Select only ever returns addresses the manager still knows.
func TestSelectAlwaysReturnsKnownProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		clk := &fakeClock{now: time.Unix(1586000000, 0).UTC()}
		am := New(Config{Key: uint64(seed), Now: clk.Now,
			Rand: rand.New(rand.NewSource(seed))})
		rng := rand.New(rand.NewSource(seed ^ 7))
		src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
		var known []netip.AddrPort
		for _, op := range ops {
			switch op % 6 {
			case 0, 1:
				a := netip.AddrPortFrom(netip.AddrFrom4(
					[4]byte{byte(rng.Intn(200) + 1), byte(rng.Intn(255)),
						byte(rng.Intn(255)), 1}), 8333)
				am.Add([]wire.NetAddress{{Addr: a, Timestamp: clk.now}}, src)
				known = append(known, a)
			case 2:
				if len(known) > 0 {
					am.Good(known[rng.Intn(len(known))])
				}
			case 3:
				if len(known) > 0 {
					am.Attempt(known[rng.Intn(len(known))])
				}
			case 4:
				clk.advance(time.Duration(rng.Intn(72)) * time.Hour)
				am.Evict()
			case 5:
				if na, ok := am.Select(rng.Intn(2) == 0); ok {
					if !am.Have(na.Addr) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGetAddrSubsetProperty: GetAddr returns only known, non-terrible,
// distinct addresses, never exceeding the 1000 cap.
func TestGetAddrSubsetProperty(t *testing.T) {
	f := func(n uint16, seed int64) bool {
		clk := &fakeClock{now: time.Unix(1586000000, 0).UTC()}
		am := New(Config{Key: uint64(seed), Now: clk.Now,
			Rand: rand.New(rand.NewSource(seed))})
		src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
		count := int(n%3000) + 1
		for i := 0; i < count; i++ {
			a := netip.AddrPortFrom(netip.AddrFrom4(
				[4]byte{byte(i>>8) + 1, byte(i), 3, 1}), 8333)
			am.Add([]wire.NetAddress{{Addr: a, Timestamp: clk.now}}, src)
		}
		got := am.GetAddr()
		if len(got) > 1000 {
			return false
		}
		seen := make(map[netip.AddrPort]bool, len(got))
		for _, na := range got {
			if seen[na.Addr] || !am.Have(na.Addr) || am.IsTerrible(na.Addr) {
				return false
			}
			seen[na.Addr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCountsConsistentProperty: nNew + nTried always equals the number of
// tracked addresses after any operation sequence.
func TestCountsConsistentProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		clk := &fakeClock{now: time.Unix(1586000000, 0).UTC()}
		am := New(Config{Key: uint64(seed), Now: clk.Now,
			Rand: rand.New(rand.NewSource(seed))})
		rng := rand.New(rand.NewSource(seed ^ 13))
		src := netip.AddrFrom4([4]byte{8, 8, 8, 8})
		var known []netip.AddrPort
		for _, op := range ops {
			switch op % 5 {
			case 0, 1, 2:
				a := netip.AddrPortFrom(netip.AddrFrom4(
					[4]byte{byte(rng.Intn(120) + 1), byte(rng.Intn(255)),
						byte(rng.Intn(255)), 1}), uint16(rng.Intn(65000)+1))
				am.Add([]wire.NetAddress{{Addr: a, Timestamp: clk.now}}, src)
				known = append(known, a)
			case 3:
				if len(known) > 0 {
					am.Good(known[rng.Intn(len(known))])
				}
			case 4:
				clk.advance(time.Duration(rng.Intn(24)) * time.Hour)
				am.Evict()
			}
			numNew, numTried := am.Counts()
			if numNew+numTried != am.Size() {
				return false
			}
			if numNew < 0 || numTried < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
