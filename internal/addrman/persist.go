package addrman

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"

	"repro/internal/wire"
)

// Serialization of the address manager — the peers.dat equivalent. A
// restarting node reloads its tables, which is how the §IV-B stale-tried
// situation arises in practice: the serialized tried table outlives the
// peers it describes.
//
// Format (little-endian): magic "ADRM", u16 version, u32 count, then per
// address: 16-byte IP, u16 port, u64 services, 16-byte source IP,
// i64 timestamp, i64 lastTry, i64 lastGood (unix seconds; 0 = zero time),
// u32 attempts, u8 inTried.

const (
	persistMagic   = "ADRM"
	persistVersion = 1
	// maxPersistEntries bounds allocation when loading untrusted files.
	maxPersistEntries = 1 << 22
)

// Save writes the manager's state to w.
func (a *AddrMan) Save(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("addrman: write magic: %w", err)
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:2], persistVersion)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(a.info)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("addrman: write header: %w", err)
	}
	var rec [16 + 2 + 8 + 16 + 8 + 8 + 8 + 4 + 1]byte
	for key, info := range a.info {
		ip := key.Addr().As16()
		copy(rec[0:16], ip[:])
		binary.LittleEndian.PutUint16(rec[16:18], key.Port())
		binary.LittleEndian.PutUint64(rec[18:26], uint64(info.addr.Services))
		src := info.source.As16()
		copy(rec[26:42], src[:])
		binary.LittleEndian.PutUint64(rec[42:50], uint64(unixOrZero(info.addr.Timestamp)))
		binary.LittleEndian.PutUint64(rec[50:58], uint64(unixOrZero(info.lastTry)))
		binary.LittleEndian.PutUint64(rec[58:66], uint64(unixOrZero(info.lastGood)))
		binary.LittleEndian.PutUint32(rec[66:70], uint32(info.attempts))
		if info.inTried {
			rec[70] = 1
		} else {
			rec[70] = 0
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("addrman: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("addrman: flush: %w", err)
	}
	return nil
}

// unixOrZero maps the zero time to 0 rather than a negative epoch.
func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

// timeOrZero is the inverse of unixOrZero.
func timeOrZero(v int64) time.Time {
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(v, 0).UTC()
}

// Load reconstructs a manager from r using cfg (the cfg.Key governs
// bucket placement, exactly as a fresh manager would place the same
// addresses). Entries colliding on full buckets are dropped, as on a real
// reload.
func Load(cfg Config, r io.Reader) (*AddrMan, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("addrman: read magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("addrman: bad magic %q", magic)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("addrman: read header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != persistVersion {
		return nil, fmt.Errorf("addrman: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(hdr[2:6])
	if count > maxPersistEntries {
		return nil, fmt.Errorf("addrman: %d entries exceeds limit", count)
	}

	am := New(cfg)
	var rec [71]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("addrman: read record %d: %w", i, err)
		}
		var ip16 [16]byte
		copy(ip16[:], rec[0:16])
		ip := netip.AddrFrom16(ip16)
		if ip.Is4In6() {
			ip = ip.Unmap()
		}
		port := binary.LittleEndian.Uint16(rec[16:18])
		key := netip.AddrPortFrom(ip, port)
		if !key.IsValid() || port == 0 {
			continue
		}
		var src16 [16]byte
		copy(src16[:], rec[26:42])
		src := netip.AddrFrom16(src16)
		if src.Is4In6() {
			src = src.Unmap()
		}
		info := &addrInfo{
			addr: wire.NetAddress{
				Addr:      key,
				Services:  wire.ServiceFlag(binary.LittleEndian.Uint64(rec[18:26])),
				Timestamp: timeOrZero(int64(binary.LittleEndian.Uint64(rec[42:50]))),
			},
			source:   src,
			lastTry:  timeOrZero(int64(binary.LittleEndian.Uint64(rec[50:58]))),
			lastGood: timeOrZero(int64(binary.LittleEndian.Uint64(rec[58:66]))),
			attempts: int(binary.LittleEndian.Uint32(rec[66:70])),
			inTried:  rec[70] == 1,
		}
		am.restoreLocked(key, info)
	}
	return am, nil
}

// restoreLocked places a deserialized record into the tables, dropping it
// on collision with a healthier incumbent.
func (a *AddrMan) restoreLocked(key netip.AddrPort, info *addrInfo) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.info[key]; dup {
		return
	}
	if info.inTried {
		bucket := a.triedBucketFor(key)
		slot := a.slotFor(1, bucket, key)
		if a.triedTable[bucket][slot].IsValid() {
			// Collision: demote this record to the new table instead.
			info.inTried = false
		} else {
			a.info[key] = info
			a.triedTable[bucket][slot] = key
			a.nTried++
			a.listAppend(&a.triedList, key, info)
			return
		}
	}
	bucket := a.newBucketFor(key, info.source)
	slot := a.slotFor(0, bucket, key)
	if a.newTable[bucket][slot].IsValid() {
		return // occupied; drop, as Bitcoin Core does on reload collisions
	}
	a.info[key] = info
	a.newTable[bucket][slot] = key
	info.refCount = 1
	info.newSlots = append(info.newSlots[:0], [2]int16{int16(bucket), int16(slot)})
	a.nNew++
	a.listAppend(&a.newList, key, info)
}
