package addrman

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeClock is an adjustable time source for horizon/eviction tests.
type fakeClock struct {
	now time.Time
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestManager(clk *fakeClock) *AddrMan {
	return New(Config{
		Key:  42,
		Now:  clk.Now,
		Rand: rand.New(rand.NewSource(7)),
	})
}

func ap(a, b, c, d byte, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{a, b, c, d}), port)
}

func na(clk *fakeClock, addr netip.AddrPort) wire.NetAddress {
	return wire.NetAddress{Addr: addr, Services: wire.SFNodeNetwork, Timestamp: clk.now}
}

func baseClock() *fakeClock {
	return &fakeClock{now: time.Unix(1586000000, 0).UTC()}
}

func TestAddAndCounts(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addrs := []wire.NetAddress{
		na(clk, ap(1, 2, 3, 4, 8333)),
		na(clk, ap(5, 6, 7, 8, 8333)),
	}
	added := am.Add(addrs, src)
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	numNew, numTried := am.Counts()
	if numNew != 2 || numTried != 0 {
		t.Errorf("counts = %d/%d, want 2/0", numNew, numTried)
	}
	if !am.Have(addrs[0].Addr) {
		t.Error("Have = false for added address")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	bad := []wire.NetAddress{
		{Addr: netip.AddrPort{}},           // invalid
		{Addr: netip.AddrPortFrom(src, 0)}, // port 0
	}
	if added := am.Add(bad, src); added != 0 {
		t.Errorf("added = %d, want 0", added)
	}
}

func TestAddDuplicateNotCounted(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := na(clk, ap(1, 2, 3, 4, 8333))
	am.Add([]wire.NetAddress{addr}, src)
	if added := am.Add([]wire.NetAddress{addr}, src); added != 0 {
		t.Errorf("re-add counted as new: %d", added)
	}
	if am.Size() != 1 {
		t.Errorf("Size = %d, want 1", am.Size())
	}
}

func TestGoodPromotesToTried(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	if am.InTried(addr) {
		t.Fatal("fresh address must start in new")
	}
	am.Good(addr)
	if !am.InTried(addr) {
		t.Fatal("Good must promote to tried")
	}
	numNew, numTried := am.Counts()
	if numNew != 0 || numTried != 1 {
		t.Errorf("counts = %d/%d, want 0/1", numNew, numTried)
	}
	// Promotion must be idempotent.
	am.Good(addr)
	numNew, numTried = am.Counts()
	if numNew != 0 || numTried != 1 {
		t.Errorf("counts after second Good = %d/%d, want 0/1", numNew, numTried)
	}
}

func TestGoodUnknownAddress(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	addr := ap(8, 8, 8, 8, 8333)
	am.Good(addr) // e.g. -connect peer never learned via gossip
	if !am.InTried(addr) {
		t.Error("unknown address marked Good should land in tried")
	}
}

func TestSelectEmpty(t *testing.T) {
	am := newTestManager(baseClock())
	if _, ok := am.Select(false); ok {
		t.Error("Select on empty manager should fail")
	}
	if _, ok := am.Select(true); ok {
		t.Error("Select(newOnly) on empty manager should fail")
	}
}

func TestSelectReturnsKnownAddress(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	want := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, want)}, src)
	got, ok := am.Select(false)
	if !ok {
		t.Fatal("Select failed with one address")
	}
	if got.Addr != want {
		t.Errorf("Select = %v, want %v", got.Addr, want)
	}
}

func TestSelectNewOnlySkipsTried(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	tried := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, tried)}, src)
	am.Good(tried)
	if _, ok := am.Select(true); ok {
		t.Error("Select(newOnly) should fail when only tried entries exist")
	}
	fresh := ap(2, 2, 2, 2, 8333)
	am.Add([]wire.NetAddress{na(clk, fresh)}, src)
	got, ok := am.Select(true)
	if !ok || got.Addr != fresh {
		t.Errorf("Select(newOnly) = %v/%v, want %v", got.Addr, ok, fresh)
	}
}

func TestSelectEqualProbability(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	// One tried address, many new addresses: with equal table probability,
	// the tried address should still be picked roughly half the time —
	// exactly the bias the paper notes (tried is healthier but does not
	// dominate selection).
	tried := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, tried)}, src)
	am.Good(tried)
	for i := 0; i < 200; i++ {
		am.Add([]wire.NetAddress{na(clk, ap(10, byte(i/200), byte(i), 1, 8333))}, src)
	}
	triedHits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		got, ok := am.Select(false)
		if !ok {
			t.Fatal("Select failed")
		}
		if got.Addr == tried {
			triedHits++
		}
	}
	frac := float64(triedHits) / trials
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("tried selection fraction = %.3f, want ~0.5", frac)
	}
}

func TestGetAddrRespectsCapAndPct(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	var batch []wire.NetAddress
	count := 0
	for a := 1; a <= 40 && count < 10000; a++ {
		for b := 0; b < 250 && count < 10000; b++ {
			batch = append(batch, na(clk, ap(byte(a), byte(b), 1, 1, 8333)))
			count++
		}
	}
	am.Add(batch, src)
	got := am.GetAddr()
	if len(got) > 1000 {
		t.Errorf("GetAddr returned %d addresses, cap is 1000", len(got))
	}
	size := am.Size()
	want := size * 23 / 100
	if want > 1000 {
		want = 1000
	}
	if len(got) != want {
		t.Errorf("GetAddr = %d addresses, want %d (23%% of %d capped)", len(got), want, size)
	}
	// No duplicates in the sample.
	seen := make(map[netip.AddrPort]bool, len(got))
	for _, a := range got {
		if seen[a.Addr] {
			t.Fatalf("duplicate %v in GetAddr sample", a.Addr)
		}
		seen[a.Addr] = true
	}
}

func TestGetAddrTriedOnly(t *testing.T) {
	clk := baseClock()
	am := New(Config{
		Key:              1,
		Now:              clk.Now,
		Rand:             rand.New(rand.NewSource(3)),
		TriedOnlyGetAddr: true,
	})
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	tried := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, tried)}, src)
	am.Good(tried)
	for i := 0; i < 50; i++ {
		am.Add([]wire.NetAddress{na(clk, ap(20, byte(i), 1, 1, 8333))}, src)
	}
	got := am.GetAddr()
	for _, a := range got {
		if !am.InTried(a.Addr) {
			t.Fatalf("TriedOnlyGetAddr returned non-tried address %v", a.Addr)
		}
	}
	if len(got) == 0 {
		t.Error("TriedOnlyGetAddr returned nothing despite tried entries")
	}
}

func TestIsTerribleHorizon(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	if am.IsTerrible(addr) {
		t.Fatal("fresh address must not be terrible")
	}
	clk.advance(31 * 24 * time.Hour)
	if !am.IsTerrible(addr) {
		t.Error("address beyond the 30-day horizon must be terrible")
	}
}

func TestIsTerribleCustomHorizon(t *testing.T) {
	// The §V refinement: a 17-day horizon evicts a departed node's address
	// nearly two weeks sooner.
	clk := baseClock()
	am := New(Config{
		Key:     1,
		Horizon: 17 * 24 * time.Hour,
		Now:     clk.Now,
		Rand:    rand.New(rand.NewSource(3)),
	})
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	clk.advance(18 * 24 * time.Hour)
	if !am.IsTerrible(addr) {
		t.Error("address beyond a 17-day horizon must be terrible")
	}
}

func TestIsTerribleFailedAttempts(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	for i := 0; i < retriesBeforeTerrible; i++ {
		am.Attempt(addr)
		clk.advance(5 * time.Minute)
	}
	if !am.IsTerrible(addr) {
		t.Error("never-successful address with 3 failed attempts must be terrible")
	}
}

func TestIsTerribleRecentTryGrace(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	for i := 0; i < 5; i++ {
		am.Attempt(addr)
	}
	// The last attempt was within a minute: grace period applies.
	if am.IsTerrible(addr) {
		t.Error("address tried within the last minute must not be terrible")
	}
}

func TestIsTerribleFutureTimestamp(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 2, 3, 4, 8333)
	future := wire.NetAddress{
		Addr:      addr,
		Timestamp: clk.now.Add(24 * time.Hour),
	}
	am.Add([]wire.NetAddress{future}, src)
	// Timestamps are capped at insert, so this lands at "now" and is fine;
	// simulate a raw record with a future stamp via Good + manual check
	// instead: advancing backwards is not supported, so assert the capped
	// behaviour.
	if am.IsTerrible(addr) {
		t.Error("capped-timestamp address must not be terrible")
	}
}

func TestEvictRemovesExpired(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	old := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, old)}, src)
	clk.advance(20 * 24 * time.Hour)
	fresh := ap(2, 2, 2, 2, 8333)
	am.Add([]wire.NetAddress{na(clk, fresh)}, src)
	clk.advance(15 * 24 * time.Hour) // old is now 35 days, fresh 15 days
	removed := am.Evict()
	if removed != 1 {
		t.Fatalf("Evict removed %d, want 1", removed)
	}
	if am.Have(old) {
		t.Error("expired address still present")
	}
	if !am.Have(fresh) {
		t.Error("fresh address evicted")
	}
}

func TestEvictTriedEntry(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	addr := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, addr)}, src)
	am.Good(addr)
	clk.advance(31 * 24 * time.Hour)
	if removed := am.Evict(); removed != 1 {
		t.Fatalf("Evict removed %d, want 1", removed)
	}
	_, numTried := am.Counts()
	if numTried != 0 {
		t.Errorf("tried count = %d, want 0", numTried)
	}
}

func TestGetAddrExcludesTerrible(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	old := ap(1, 1, 1, 1, 8333)
	am.Add([]wire.NetAddress{na(clk, old)}, src)
	clk.advance(35 * 24 * time.Hour)
	fresh := ap(2, 2, 2, 2, 8333)
	am.Add([]wire.NetAddress{na(clk, fresh)}, src)
	for _, a := range am.GetAddr() {
		if a.Addr == old {
			t.Error("GetAddr returned a terrible address")
		}
	}
}

// Invariant: an address is never simultaneously in both tables, and
// counts match the map contents.
func checkInvariants(t *testing.T, am *AddrMan) {
	t.Helper()
	am.mu.Lock()
	defer am.mu.Unlock()
	numNew, numTried := 0, 0
	for key, info := range am.info {
		if info.inTried {
			numTried++
			if info.refCount != 0 {
				t.Fatalf("%v in tried with refCount %d", key, info.refCount)
			}
			b := am.triedBucketFor(key)
			s := am.slotFor(1, b, key)
			if am.triedTable[b][s] != key {
				t.Fatalf("%v marked tried but absent from its slot", key)
			}
		} else {
			numNew++
			if info.refCount < 1 {
				t.Fatalf("%v in new with refCount %d", key, info.refCount)
			}
		}
	}
	if numNew != am.nNew || numTried != am.nTried {
		t.Fatalf("counts drifted: map %d/%d, counters %d/%d",
			numNew, numTried, am.nNew, am.nTried)
	}
}

// TestInvariantsUnderRandomWorkload hammers the manager with a random
// sequence of Add/Good/Attempt/Evict operations and checks structural
// invariants throughout.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	clk := baseClock()
	am := newTestManager(clk)
	rng := rand.New(rand.NewSource(99))
	var known []netip.AddrPort
	for step := 0; step < 3000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // add
			addr := ap(byte(rng.Intn(200)+1), byte(rng.Intn(256)),
				byte(rng.Intn(256)), byte(rng.Intn(256)), 8333)
			src := netip.AddrFrom4([4]byte{byte(rng.Intn(250) + 1), 0, 0, 1})
			am.Add([]wire.NetAddress{na(clk, addr)}, src)
			known = append(known, addr)
		case 5, 6: // good
			if len(known) > 0 {
				am.Good(known[rng.Intn(len(known))])
			}
		case 7, 8: // attempt
			if len(known) > 0 {
				am.Attempt(known[rng.Intn(len(known))])
			}
		case 9: // time passes, evict
			clk.advance(time.Duration(rng.Intn(48)) * time.Hour)
			am.Evict()
		}
		if step%250 == 0 {
			checkInvariants(t, am)
		}
	}
	checkInvariants(t, am)
}

func BenchmarkAdd(b *testing.B) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := ap(byte(i>>16), byte(i>>8), byte(i), 1, 8333)
		am.Add([]wire.NetAddress{{Addr: addr, Timestamp: clk.now}}, src)
	}
}

func BenchmarkSelect(b *testing.B) {
	clk := baseClock()
	am := newTestManager(clk)
	src := netip.AddrFrom4([4]byte{9, 9, 9, 9})
	for i := 0; i < 5000; i++ {
		addr := ap(byte(i>>8), byte(i), 1, 1, 8333)
		am.Add([]wire.NetAddress{{Addr: addr, Timestamp: clk.now}}, src)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		am.Select(false)
	}
}
