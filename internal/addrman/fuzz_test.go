package addrman

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/wire"
)

// fuzzConfig returns a deterministic manager config: a fixed key and a
// frozen clock, so bucket placement and staleness decisions never depend
// on the machine running the fuzzer.
func fuzzConfig() Config {
	epoch := time.Unix(1585958400, 0).UTC()
	return Config{
		Key: 0xfeedface,
		Now: func() time.Time { return epoch },
	}
}

// fuzzSeedBlob serializes a populated manager, giving the fuzzer a valid
// starting point to mutate.
func fuzzSeedBlob(f *testing.F) []byte {
	am := New(fuzzConfig())
	src := netip.MustParseAddr("203.0.113.1")
	for i := 0; i < 40; i++ {
		addr := netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, 1, byte(i / 256), byte(i%256 + 1)}), 8333)
		am.Add([]wire.NetAddress{{
			Addr:      addr,
			Services:  wire.SFNodeNetwork,
			Timestamp: time.Unix(1585958400, 0).UTC(),
		}}, src)
		if i%3 == 0 {
			am.Attempt(addr)
			am.Good(addr)
		}
	}
	var buf bytes.Buffer
	if err := am.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPersistLoad feeds arbitrary bytes to the peers.dat loader. The
// invariants: Load never panics on untrusted input, and any state it
// accepts survives a Save/Load round trip with identical table counts.
// Byte-level comparison is deliberately avoided — Save iterates a map,
// so two dumps of the same state can order records differently.
func FuzzPersistLoad(f *testing.F) {
	f.Add(fuzzSeedBlob(f))
	f.Add([]byte("ADRM"))
	f.Add([]byte{})
	f.Add([]byte{'A', 'D', 'R', 'M', 1, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		am, err := Load(fuzzConfig(), bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is correct; panicking is not
		}
		newA, triedA := am.Counts()
		if newA < 0 || triedA < 0 || newA+triedA != am.Size() {
			t.Fatalf("inconsistent counts after load: new=%d tried=%d size=%d",
				newA, triedA, am.Size())
		}
		var buf bytes.Buffer
		if err := am.Save(&buf); err != nil {
			t.Fatalf("saving loaded state: %v", err)
		}
		am2, err := Load(fuzzConfig(), bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading saved state: %v", err)
		}
		newB, triedB := am2.Counts()
		if newB != newA || triedB != triedA {
			t.Fatalf("round trip changed counts: new %d->%d tried %d->%d",
				newA, newB, triedA, triedB)
		}
	})
}
